// crash_child: out-of-process worker for the durability harness
// (tests/durability_test.cc). The parent never crashes itself — this binary
// does, via the deterministic abort sites of the storage layer, so SIGKILL
// lands mid-operation exactly where the fault schedule says.
//
//   crash_child init <dir>
//       Creates the persistent database and durably loads the graph
//       (edges + vertexstatus). Exit 0.
//
//   crash_child run <dir> <abort_site|none> <abort_after_hits> <workers>
//       Opens the database (recovery) and runs an iterative SSSP with
//       durable checkpoints every K=2 iterations. With an abort site armed
//       the process SIGKILLs itself entering arrival N+1 of that site; the
//       parent observes death-by-signal. Without one (or when the site is
//       not reached often enough) it prints every node's distance plus a
//       stats line and exits 0:
//
//         row: 7 3
//         ...
//         stats: checkpoints=5 durable=5 restores=1
//
// The query result is the *entire* distance table, so the parent's golden
// comparison is sensitive to any node resumed from a stale or torn
// checkpoint, not just one probe vertex.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "engine/database.h"
#include "graph/generator.h"

namespace {

using dbspinner::Database;
using dbspinner::EngineOptions;
using dbspinner::QueryResult;
using dbspinner::Result;
using dbspinner::Status;
using dbspinner::StringPrintf;

constexpr int kIterations = 12;
constexpr int64_t kSourceNode = 1;

// Same SSSP shape as workloads::SSSPQuery, but the final SELECT returns
// every node so convergence is checked across the whole frontier.
std::string SsspAllQuery() {
  return StringPrintf(
      "WITH ITERATIVE sssp (node, distance, delta)\n"
      "AS (\n"
      "  SELECT src, 9999999, CASE WHEN src = %lld\n"
      "         THEN 0 ELSE 9999999 END\n"
      "  FROM (SELECT src FROM edges\n"
      "        UNION SELECT dst FROM edges)\n"
      "ITERATE\n"
      "  SELECT sssp.node,\n"
      "         LEAST(sssp.distance, sssp.delta),\n"
      "         COALESCE(MIN(incomingdistance.delta\n"
      "                      + incomingedges.weight), 9999999)\n"
      "  FROM sssp\n"
      "    LEFT JOIN edges AS incomingedges\n"
      "      ON sssp.node = incomingedges.dst\n"
      "    LEFT JOIN sssp AS incomingdistance\n"
      "      ON incomingdistance.node = incomingedges.src\n"
      "  WHERE incomingdistance.delta != 9999999\n"
      "  GROUP BY sssp.node,\n"
      "           LEAST(sssp.distance, sssp.delta)\n"
      "UNTIL %d ITERATIONS )\n"
      "SELECT node, distance FROM sssp",
      static_cast<long long>(kSourceNode), kIterations);
}

EngineOptions MakeOptions(const std::string& dir) {
  EngineOptions eo;
  eo.persistence.enabled = true;
  eo.persistence.path = dir;
  eo.persistence.sync = true;
  eo.persistence.block_rows = 32;         // several blocks per extent
  eo.persistence.buffer_pool_blocks = 16; // recovery scans must evict
  eo.persistence.manifest_every = 4;      // manifest swaps mid-program
  eo.persistence.durable_checkpoints = true;
  eo.fault_tolerance.enable_recovery = true;
  eo.fault_tolerance.checkpoint_interval = 2;  // K=2: frequent kill targets
  return eo;
}

int RunInit(const std::string& dir) {
  Database db(MakeOptions(dir));
  // Scale 512 ≈ 620 nodes / 2050 edges: big enough for multi-block extents
  // at block_rows=32, small enough that the sanitizer sweeps of 20+ kill
  // points stay fast.
  dbspinner::graph::EdgeList g =
      dbspinner::graph::Generate(dbspinner::graph::DblpShaped(/*scale=*/512));
  Status st = dbspinner::graph::LoadIntoDatabase(
      &db, g, /*available_fraction=*/0.8, /*status_seed=*/7);
  if (!st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 3;
  }
  return 0;
}

int RunQueryMode(const std::string& dir, const std::string& site,
                 int64_t after_hits, int workers) {
  EngineOptions eo = MakeOptions(dir);
  eo.num_workers = workers;
  if (workers > 1) eo.mpp_min_rows_per_task = 1;
  if (site != "none") {
    eo.fault_injection.enabled = true;
    eo.fault_injection.rate = 0.0;  // abort site only, no transient faults
    eo.fault_injection.abort_site = site;
    eo.fault_injection.abort_after_hits = after_hits;
  }
  Database db(std::move(eo));
  Result<QueryResult> r = db.Execute(SsspAllQuery());
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    return 3;
  }
  std::vector<std::string> rows;
  const dbspinner::Table& t = *r->table;
  rows.reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::string line;
    for (size_t c = 0; c < t.num_columns(); ++c) {
      if (c > 0) line += ' ';
      line += t.GetValue(i, c).ToString();
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  for (const std::string& row : rows) std::printf("row: %s\n", row.c_str());
  std::printf("stats: checkpoints=%lld durable=%lld restores=%lld\n",
              static_cast<long long>(r->stats.checkpoints_taken),
              static_cast<long long>(r->stats.durable_checkpoints),
              static_cast<long long>(r->stats.restores));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "init") == 0) {
    return RunInit(argv[2]);
  }
  if (argc >= 6 && std::strcmp(argv[1], "run") == 0) {
    return RunQueryMode(argv[2], argv[3], std::strtoll(argv[4], nullptr, 10),
                        static_cast<int>(std::strtol(argv[5], nullptr, 10)));
  }
  std::fprintf(stderr,
               "usage: %s init <dir>\n"
               "       %s run <dir> <abort_site|none> <after_hits> <workers>\n",
               argv[0], argv[0]);
  return 2;
}
