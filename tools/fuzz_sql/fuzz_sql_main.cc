// fuzz_sql: differential SQL fuzzer for dbspinner.
//
// Generates deterministic random queries (plain SELECT pipelines, iterative
// and recursive CTEs, canonical workloads) over generated graph schemas and
// runs each under the full oracle matrix (per-optimization toggles, MPP
// widths, procedure lowering, reference algorithms). Any disagreement is
// minimized and printed as a ready-to-paste gtest regression test.
//
//   fuzz_sql --seed 1 --iterations 500
//   fuzz_sql --seed 7 --time-budget 60
//   fuzz_sql --seed 1 --iterations 50 --break-rename   # must find the bug
//
// Exit code: 0 = no mismatch found, 1 = mismatch (repro printed), 2 = usage.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "testing/differential.h"
#include "testing/minimizer.h"
#include "testing/query_generator.h"

namespace {

using dbspinner::fuzz::DifferentialOptions;
using dbspinner::fuzz::DiffReport;
using dbspinner::fuzz::FuzzCase;
using dbspinner::fuzz::MinimizeResult;

struct CliOptions {
  uint64_t seed = 1;
  int64_t iterations = 200;
  int64_t time_budget_s = 0;  ///< 0 = no time limit
  bool break_rename = false;
  bool faults = false;  ///< add recover-vs-clean oracles per case
  double fault_rate = 0.1;
  /// Extra morsel-size oracles per case (--morsel-sizes 1,16,1024).
  std::vector<size_t> morsel_sizes;
  /// Worker widths crossed with the morsel sweep (--morsel-workers 1,2,8):
  /// widths above 1 run the morsel oracles through the fused-parallel
  /// stealing dispatcher.
  std::vector<int> morsel_workers = {1};
  bool verify = true;  ///< enforce the static plan/program verifier
  bool verbose = false;
  /// Concurrent differential mode: run each case on N server sessions
  /// racing over one shared Database, checked against a serial replay.
  /// 0 = off (classic single-session oracle matrix).
  int64_t sessions = 0;
  /// Disk-backed oracles: per case, load into a persistent database under
  /// a scratch directory, reopen it (recovery path) and diff the query run
  /// on recovered tables against the in-memory baseline, at widths 1/2/8.
  bool persistence = false;
  /// Incremental-view differential mode: per case, register the canonical
  /// materialized-view panel, replay a seed-derived mutation schedule, and
  /// after every mutation check each view (read at widths 1/2/8) against
  /// its defining query re-executed from scratch. Composes with --faults.
  bool ivm = false;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--iterations N] [--time-budget SECONDS]"
               " [--break-rename] [--faults] [--fault-rate R]"
               " [--morsel-sizes N,N,...] [--morsel-workers N,N,...]"
               " [--sessions N] [--persistence] [--ivm]"
               " [--verify|--no-verify] [--verbose]\n",
               argv0);
}

bool ParseInt(const char* s, int64_t* out) {
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_int = [&](int64_t* out) {
      return i + 1 < argc && ParseInt(argv[++i], out);
    };
    int64_t v = 0;
    if (arg == "--seed") {
      if (!next_int(&v)) return false;
      opts->seed = static_cast<uint64_t>(v);
    } else if (arg == "--iterations") {
      if (!next_int(&v) || v < 0) return false;
      opts->iterations = v;
    } else if (arg == "--time-budget") {
      if (!next_int(&v) || v < 0) return false;
      opts->time_budget_s = v;
    } else if (arg == "--break-rename") {
      opts->break_rename = true;
    } else if (arg == "--faults") {
      opts->faults = true;
    } else if (arg == "--fault-rate") {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      opts->fault_rate = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || opts->fault_rate < 0 ||
          opts->fault_rate > 1) {
        return false;
      }
      opts->faults = true;
    } else if (arg == "--morsel-sizes") {
      if (i + 1 >= argc) return false;
      const char* list = argv[++i];
      opts->morsel_sizes.clear();
      for (const char* pos = list; *pos != '\0';) {
        char* end = nullptr;
        long long n = std::strtoll(pos, &end, 10);
        if (end == pos || n < 1) return false;
        opts->morsel_sizes.push_back(static_cast<size_t>(n));
        pos = (*end == ',') ? end + 1 : end;
        if (*end != ',' && *end != '\0') return false;
      }
      if (opts->morsel_sizes.empty()) return false;
    } else if (arg == "--morsel-workers") {
      if (i + 1 >= argc) return false;
      const char* list = argv[++i];
      opts->morsel_workers.clear();
      for (const char* pos = list; *pos != '\0';) {
        char* end = nullptr;
        long long n = std::strtoll(pos, &end, 10);
        if (end == pos || n < 1 || n > 64) return false;
        opts->morsel_workers.push_back(static_cast<int>(n));
        pos = (*end == ',') ? end + 1 : end;
        if (*end != ',' && *end != '\0') return false;
      }
      if (opts->morsel_workers.empty()) return false;
    } else if (arg == "--sessions") {
      if (!next_int(&v) || v < 1 || v > 64) return false;
      opts->sessions = v;
    } else if (arg == "--persistence") {
      opts->persistence = true;
    } else if (arg == "--ivm") {
      opts->ivm = true;
    } else if (arg == "--verify") {
      opts->verify = true;
    } else if (arg == "--no-verify") {
      opts->verify = false;
    } else if (arg == "--verbose") {
      opts->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) {
    Usage(argv[0]);
    return 2;
  }

  DifferentialOptions diff_opts;
  diff_opts.break_rename = cli.break_rename;
  diff_opts.verify = cli.verify;
  diff_opts.morsel_sizes = cli.morsel_sizes;
  diff_opts.morsel_workers = cli.morsel_workers;
  if (cli.persistence) {
    // Per-process scratch directory so parallel ctest invocations of this
    // binary never share a database path.
    diff_opts.persistence_dir =
        "fuzz_sql_persist_" + std::to_string(static_cast<long long>(cli.seed));
  }

  dbspinner::fuzz::QueryGenerator generator(cli.seed);
  std::map<std::string, int64_t> family_counts;
  int64_t executed = 0;
  int64_t rejected = 0;  // user-level rejections (consistent across oracles)
  int64_t morsels_stolen = 0;  // across all oracles, sanity-checks stealing
  // IVM-mode totals: a --ivm sweep with ivm_deltas == 0 never exercised the
  // incremental maintenance paths it exists to check.
  int64_t ivm_deltas = 0;
  int64_t ivm_fulls = 0;
  int64_t ivm_fallbacks = 0;

  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&] {
    if (cli.time_budget_s <= 0) return false;
    return std::chrono::steady_clock::now() - start >=
           std::chrono::seconds(cli.time_budget_s);
  };

  std::printf("fuzz_sql: seed=%llu iterations=%lld time-budget=%llds%s%s%s\n",
              static_cast<unsigned long long>(cli.seed),
              static_cast<long long>(cli.iterations),
              static_cast<long long>(cli.time_budget_s),
              cli.break_rename ? " [break-rename fault injection]" : "",
              cli.faults ? " [recover-vs-clean fault oracles]" : "",
              cli.verify ? " [verifier enforced]" : " [verifier off]");
  if (cli.persistence) {
    std::printf("persistence mode: disk-backed reopen oracles at widths "
                "1/2/8 (dir %s)\n", diff_opts.persistence_dir.c_str());
  }
  if (cli.sessions > 0) {
    std::printf("concurrent mode: %lld sessions per case vs serial replay\n",
                static_cast<long long>(cli.sessions));
  }
  if (cli.ivm) {
    std::printf("ivm mode: per-case mutation schedule, every view checked "
                "against its defining query at widths 1/2/8\n");
  }

  for (int64_t i = 0; i < cli.iterations && !out_of_time(); ++i) {
    FuzzCase c = generator.NextCase();
    ++family_counts[dbspinner::fuzz::FamilyName(c.query.family)];
    if (cli.faults) {
      // Per-case fault schedule, derived deterministically from the sweep
      // seed and case index so any mismatch reproduces from the CLI line.
      diff_opts.fault_rate = cli.fault_rate;
      diff_opts.fault_seed = cli.seed * 1000003u + static_cast<uint64_t>(i);
      // Alternate between transient-only and mixed worker-loss schedules so
      // both the retry and the checkpoint-restore paths are exercised.
      diff_opts.worker_lost_fraction = (i % 2 == 0) ? 0.0 : 0.3;
    }
    if (cli.verbose) {
      std::printf("[%lld] %s\n", static_cast<long long>(i),
                  c.Label().c_str());
    }
    DiffReport report =
        cli.ivm ? dbspinner::fuzz::RunIvmDifferential(c, diff_opts)
        : cli.sessions > 0
            ? dbspinner::fuzz::RunConcurrentSessions(
                  c, static_cast<int>(cli.sessions), diff_opts)
            : dbspinner::fuzz::RunDifferential(c, diff_opts);
    ++executed;
    for (const auto& o : report.outcomes) {
      morsels_stolen += o.stats.morsels_stolen;
      ivm_deltas += o.stats.ivm_deltas_applied;
      ivm_fulls += o.stats.ivm_full_refreshes;
      ivm_fallbacks += o.stats.ivm_fallbacks;
    }
    if (report.ok) {
      if (!report.outcomes.empty() && !report.outcomes[0].status.ok()) {
        ++rejected;
      }
      continue;
    }

    std::printf("\n=== ORACLE MISMATCH (case %lld) ===\n%s\n",
                static_cast<long long>(i), report.Describe(c).c_str());
    if (cli.sessions > 0 || cli.ivm) {
      // Concurrent and IVM mismatches are not QuerySpec shrinks (thread
      // schedules / mutation scripts), so the minimizer's shrink loop does
      // not apply. The case label + seed is the repro line; IVM reports
      // embed the full replayable statement script.
      return 1;
    }
    std::printf("minimizing...\n");
    MinimizeResult m = dbspinner::fuzz::Minimize(c, diff_opts);
    std::printf(
        "minimized after %d candidate runs (%d shrinks applied):\n%s\n",
        m.candidates_tried, m.shrinks_applied,
        m.report.Describe(m.minimized).c_str());
    std::printf("--- ready-to-paste regression test ---\n%s",
                dbspinner::fuzz::EmitGtestRepro(m.minimized, m.report)
                    .c_str());
    return 1;
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::printf("ran %lld cases in %.1fs (%lld user-level rejections), "
              "0 oracle mismatches, %lld morsels stolen\n",
              static_cast<long long>(executed), elapsed,
              static_cast<long long>(rejected),
              static_cast<long long>(morsels_stolen));
  if (cli.ivm) {
    std::printf("ivm maintenance: %lld incremental deltas, %lld full "
                "refreshes, %lld fallback recomputes\n",
                static_cast<long long>(ivm_deltas),
                static_cast<long long>(ivm_fulls),
                static_cast<long long>(ivm_fallbacks));
  }
  for (const auto& [family, count] : family_counts) {
    std::printf("  %-16s %lld\n", family.c_str(),
                static_cast<long long>(count));
  }
  return 0;
}
