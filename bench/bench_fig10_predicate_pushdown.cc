// Figure 10: pushing down predicates.
//
// FF runs 25 iterations; the main query samples with MOD(node, X) = 0
// (selectivity 1/X). The baseline evaluates the whole CTE and filters at
// the end: its runtime is flat in X. With pushdown, the predicate moves
// into R0 (and below R0's aggregation, onto the edges scan), so every
// iteration processes ~1/X of the data — more than an order of magnitude
// faster at X = 100, exactly the shape of the paper's Fig 10.
//
// Series: X in {10, 25, 50, 100} x {baseline, pushdown} on the DBLP shape.

#include "bench_util.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr int kIterations = 25;

void Fig10(benchmark::State& state, int64_t mod_x, bool pushdown_enabled) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};
  db->options().optimizer.enable_cte_predicate_pushdown = pushdown_enabled;
  RunQuery(state, db, workloads::FFQuery(kIterations, mod_x, 10));
}

// Vectorized-executor series (DESIGN.md §11): Fig 10's pushed-down sampling
// shape is a scan→filter→project pipeline over edges, so this pair measures
// exactly that chain on the same DBLP dataset with the chunk pipeline on vs
// the legacy operator-at-a-time executor. rows_per_sec uses the fixed
// edges-scanned denominator, so the on/off ratio is pure wall-clock.
void Fig10Vectorized(benchmark::State& state, bool vectorized) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};
  db->options().optimizer.vectorized_exec = vectorized;
  int64_t edge_rows = 0;
  if (auto r = db->Query("SELECT COUNT(*) FROM edges"); r.ok()) {
    edge_rows = (*r)->column(0).Int64At(0);
  }
  const char* sql =
      "SELECT src * 2, src + dst, weight * 0.85 FROM edges "
      "WHERE weight > 0.001 AND src > 10";
  int64_t runs = 0;
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      db->options().optimizer = OptimizerOptions{};
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table);
    ++runs;
  }
  db->options().optimizer = OptimizerOptions{};
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(runs * edge_rows), benchmark::Counter::kIsRate);
}

}  // namespace
}  // namespace bench
}  // namespace dbspinner

using dbspinner::bench::Fig10;
using dbspinner::bench::Fig10Vectorized;

BENCHMARK_CAPTURE(Fig10, x10_baseline, 10, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x10_pushdown, 10, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x25_baseline, 25, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x25_pushdown, 25, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x50_baseline, 50, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x50_pushdown, 50, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x100_baseline, 100, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x100_pushdown, 100, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

BENCHMARK_CAPTURE(Fig10Vectorized, sfp_vectorized, true)
    ->Unit(benchmark::kMillisecond)->Iterations(20);
BENCHMARK_CAPTURE(Fig10Vectorized, sfp_legacy, false)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

BENCHMARK_MAIN();
