// Figure 10: pushing down predicates.
//
// FF runs 25 iterations; the main query samples with MOD(node, X) = 0
// (selectivity 1/X). The baseline evaluates the whole CTE and filters at
// the end: its runtime is flat in X. With pushdown, the predicate moves
// into R0 (and below R0's aggregation, onto the edges scan), so every
// iteration processes ~1/X of the data — more than an order of magnitude
// faster at X = 100, exactly the shape of the paper's Fig 10.
//
// Series: X in {10, 25, 50, 100} x {baseline, pushdown} on the DBLP shape.

#include "bench_util.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr int kIterations = 25;

void Fig10(benchmark::State& state, int64_t mod_x, bool pushdown_enabled) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};
  db->options().optimizer.enable_cte_predicate_pushdown = pushdown_enabled;
  RunQuery(state, db, workloads::FFQuery(kIterations, mod_x, 10));
}

}  // namespace
}  // namespace bench
}  // namespace dbspinner

using dbspinner::bench::Fig10;

BENCHMARK_CAPTURE(Fig10, x10_baseline, 10, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x10_pushdown, 10, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x25_baseline, 25, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x25_pushdown, 25, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x50_baseline, 50, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x50_pushdown, 50, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x100_baseline, 100, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig10, x100_pushdown, 100, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

BENCHMARK_MAIN();
