// Incremental view maintenance benchmark (DESIGN.md §14): cost of serving
// a repeat query from a maintained materialized view vs. re-executing the
// defining query from scratch, after a ~1% mutation of the base data.
//
// The view is a bucketed aggregate over a ~100k-edge graph preset, so the
// incremental path folds a ~2k-row delta (old + new images of the touched
// rows) into a 64-group state while the full re-execution scans and
// re-aggregates every edge: re-query cost should be ~O(|delta|) against
// O(|data|), and the issue's acceptance bar is maintained re-read >= 10x
// cheaper at widths 1/4/16 concurrent sessions.
//
// Each iteration runs one 1%-of-rows UPDATE (whose commit folds the delta
// into the view), then every session reading the result once. The UPDATE
// is excluded from the timed region in both variants — it is the same
// statement either way, and timing it would just add an identical constant
// to both sides of the comparison; the fold cost it carries is reported via
// the ivm_rows_maintained counter (~2 images per touched row, O(|delta|)).
// The paired BM_IvmFullReExecute runs the identical cycle with no view
// registered, re-executing the defining query instead.
//
// Emits per-run counters (reads_per_s, ivm_deltas, ivm_rows_maintained,
// ivm_full_refreshes); run with --benchmark_format=json for machine-
// readable output:
//
//   ./build/bench/bench_ivm --benchmark_format=json

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "server/session.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr const char* kViewBody =
    "SELECT MOD(src, 64) AS bucket, COUNT(*) AS c, SUM(weight) AS s "
    "FROM edges GROUP BY MOD(src, 64)";

/// ~100k-edge preset, downscaled by DBSPINNER_BENCH_SCALE like the figure
/// benchmarks.
std::unique_ptr<Database> MakeBenchDb() {
  const double scale = ScaleFactor();
  graph::GraphSpec spec;
  spec.num_nodes = static_cast<int64_t>(20000 / scale);
  spec.num_edges = static_cast<int64_t>(100000 / scale);
  spec.seed = 29;
  auto db = std::make_unique<Database>();
  graph::EdgeList g = graph::Generate(spec);
  Status st = graph::LoadIntoDatabase(db.get(), g, 0.8, 7);
  if (!st.ok()) {
    fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
    std::abort();
  }
  return db;
}

/// One cycle: mutate ~1% of edges (untimed), then one timed read of
/// `read_sql` on each of `sessions` concurrent sessions. Returns false on
/// any failure.
bool RunCycle(benchmark::State& state, Database* db,
              server::SessionManager* manager, int sessions,
              int* mutation_key, const std::string& read_sql,
              ExecStats* write_stats) {
  state.PauseTiming();
  // MOD(src, 100) touches ~1% of a uniform edge list; rotating the key
  // keeps successive deltas distinct.
  Result<QueryResult> w = db->Execute(StringPrintf(
      "UPDATE edges SET weight = weight + 1.0 WHERE MOD(src, 100) = %d",
      *mutation_key));
  *mutation_key = (*mutation_key + 1) % 100;
  if (!w.ok()) {
    state.ResumeTiming();
    return false;
  }
  if (write_stats != nullptr) {
    write_stats->ivm_deltas_applied += w->stats.ivm_deltas_applied;
    write_stats->ivm_rows_maintained += w->stats.ivm_rows_maintained;
    write_stats->ivm_full_refreshes += w->stats.ivm_full_refreshes;
    write_stats->ivm_fallbacks += w->stats.ivm_fallbacks;
  }
  state.ResumeTiming();

  std::vector<std::thread> threads;
  std::atomic<int64_t> errors{0};
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&] {
      std::shared_ptr<server::Session> session = manager->CreateSession();
      Result<QueryResult> r = session->Execute(read_sql);
      if (!r.ok() || r->table == nullptr) {
        ++errors;
        return;
      }
      benchmark::DoNotOptimize(r->table);
    });
  }
  for (std::thread& t : threads) t.join();
  return errors.load() == 0;
}

void BM_IvmMaintainedReRead(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  std::unique_ptr<Database> db = MakeBenchDb();
  {
    Result<QueryResult> r = db->Execute(
        std::string("CREATE MATERIALIZED VIEW ivm_bench AS ") + kViewBody);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
  }
  server::SchedulerOptions sched;
  sched.max_concurrent_queries = sessions;
  sched.max_queue_depth = sessions * 4;
  server::SessionManager manager(db.get(), sched);

  ExecStats totals;
  int key = 0;
  int64_t reads = 0;
  for (auto _ : state) {
    if (!RunCycle(state, db.get(), &manager, sessions, &key,
                  "SELECT * FROM ivm_bench", &totals)) {
      state.SkipWithError("cycle failed");
      return;
    }
    reads += sessions;
  }

  state.counters["reads_per_s"] = benchmark::Counter(
      static_cast<double>(reads), benchmark::Counter::kIsRate);
  state.counters["ivm_deltas"] =
      static_cast<double>(totals.ivm_deltas_applied);
  state.counters["ivm_rows_maintained"] =
      static_cast<double>(totals.ivm_rows_maintained);
  // Nonzero full refreshes would mean the delta path regressed into
  // recompute and the "maintained" numbers silently measure the wrong
  // thing.
  state.counters["ivm_full_refreshes"] =
      static_cast<double>(totals.ivm_full_refreshes);
}

void BM_IvmFullReExecute(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  std::unique_ptr<Database> db = MakeBenchDb();
  server::SchedulerOptions sched;
  sched.max_concurrent_queries = sessions;
  sched.max_queue_depth = sessions * 4;
  server::SessionManager manager(db.get(), sched);

  int key = 0;
  int64_t reads = 0;
  for (auto _ : state) {
    if (!RunCycle(state, db.get(), &manager, sessions, &key, kViewBody, nullptr)) {
      state.SkipWithError("cycle failed");
      return;
    }
    reads += sessions;
  }
  state.counters["reads_per_s"] = benchmark::Counter(
      static_cast<double>(reads), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_IvmMaintainedReRead)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_IvmFullReExecute)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace dbspinner

BENCHMARK_MAIN();
