// Ablation: anatomy of one loop iteration.
//
// Measures the three update mechanisms in isolation across working-table
// sizes — rename (O(1) pointer move), merge (hash + compare + copy, the
// copy-back baseline), and a plain deep copy — plus the per-iteration cost
// of each termination-condition type. This quantifies *why* Fig 8 behaves
// as it does: the gap between rename and merge is the entire data-movement
// saving.

#include <benchmark/benchmark.h>

#include "exec/merge_update.h"
#include "storage/result_registry.h"
#include "storage/table.h"

namespace dbspinner {
namespace {

TablePtr MakeWide(int64_t rows, double offset) {
  Schema s;
  s.AddColumn("node", TypeId::kInt64);
  s.AddColumn("rank", TypeId::kDouble);
  s.AddColumn("delta", TypeId::kDouble);
  auto node = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto rank = std::make_shared<ColumnVector>(TypeId::kDouble);
  auto delta = std::make_shared<ColumnVector>(TypeId::kDouble);
  for (int64_t i = 0; i < rows; ++i) {
    node->AppendInt64(i);
    rank->AppendDouble(offset + static_cast<double>(i));
    delta->AppendDouble(offset * 0.5);
  }
  return Table::FromColumns(s, {node, rank, delta});
}

void BM_Rename(benchmark::State& state) {
  int64_t rows = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    ResultRegistry reg;
    reg.Put("main", MakeWide(rows, 0));
    reg.Put("working", MakeWide(rows, 1));
    state.ResumeTiming();
    Status st = reg.Rename("working", "main");
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_Rename)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_MergeUpdate(benchmark::State& state) {
  int64_t rows = state.range(0);
  TablePtr main_table = MakeWide(rows, 0);
  TablePtr working = MakeWide(rows, 1);
  for (auto _ : state) {
    auto merged = MergeUpdateTables(*main_table, *working, 0);
    if (!merged.ok()) {
      state.SkipWithError(merged.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(merged->merged);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MergeUpdate)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_DeepCopy(benchmark::State& state) {
  int64_t rows = state.range(0);
  TablePtr t = MakeWide(rows, 0);
  for (auto _ : state) {
    TablePtr copy = t->Clone();
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_DeepCopy)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_DeltaDiff(benchmark::State& state) {
  int64_t rows = state.range(0);
  TablePtr prev = MakeWide(rows, 0);
  TablePtr cur = MakeWide(rows, 1);
  for (auto _ : state) {
    int64_t changed = CountChangedRows(*prev, *cur, 0);
    benchmark::DoNotOptimize(changed);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_DeltaDiff)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
