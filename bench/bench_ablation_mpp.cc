// Ablation: shared-nothing worker scaling.
//
// Runs the PR-VS query with 1/2/4/8 simulated nodes, plus the raw
// distributed kernels (shuffle + co-partitioned join) at increasing widths.
// Not a paper figure — it validates that the MPP substrate behaves like a
// shared-nothing engine (join work scales down per node, shuffle volume
// appears as soon as width > 1).

#include "bench_util.h"
#include "mpp/parallel_ops.h"

namespace dbspinner {
namespace bench {
namespace {

void MppPrVs(benchmark::State& state) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};
  db->options().num_workers = static_cast<int>(state.range(0));
  db->options().mpp_min_rows_per_task = 1024;
  RunQuery(state, db, workloads::PRVSQuery(10));
  db->options().num_workers = 1;
}
BENCHMARK(MppPrVs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

void MppDistributedJoin(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  graph::GraphSpec spec = SpecFor(Dataset::kDblp);
  graph::EdgeList g = graph::Generate(spec);
  TablePtr edges = graph::BuildEdgesTable(g);
  TablePtr vs = graph::BuildVertexStatusTable(g.num_nodes, 0.8, 7);
  ThreadPool pool(static_cast<int>(nodes));
  auto de = DistributedTable::Distribute(*edges, {}, nodes);
  auto dv = DistributedTable::Distribute(*vs, {}, nodes);
  for (auto _ : state) {
    int64_t moved = 0;
    auto joined = DistributedHashJoin(de, /*left_key=*/1, dv, /*right_key=*/0,
                                      &pool, &moved);
    if (!joined.ok()) {
      state.SkipWithError(joined.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(joined->TotalRows());
    state.counters["rows_shuffled"] = static_cast<double>(moved);
  }
}
BENCHMARK(MppDistributedJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void MppShuffle(benchmark::State& state) {
  size_t nodes = static_cast<size_t>(state.range(0));
  graph::GraphSpec spec = SpecFor(Dataset::kDblp);
  graph::EdgeList g = graph::Generate(spec);
  TablePtr edges = graph::BuildEdgesTable(g);
  ThreadPool pool(static_cast<int>(nodes));
  auto dist = DistributedTable::Distribute(*edges, {}, nodes);
  for (auto _ : state) {
    int64_t moved = 0;
    auto shuffled = Exchange::Shuffle(dist, {0}, &pool, &moved);
    benchmark::DoNotOptimize(shuffled->TotalRows());
    state.counters["rows_shuffled"] = static_cast<double>(moved);
  }
}
BENCHMARK(MppShuffle)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dbspinner

BENCHMARK_MAIN();
