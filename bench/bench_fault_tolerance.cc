// Fault-tolerance overhead: what checkpointing costs when nothing fails,
// and what recovery costs when faults actually fire.
//
// Three modes over a converging SSSP:
//   mode 0 — recovery off (baseline)
//   mode 1 — recovery on, checkpoint every K=4 iterations, zero faults:
//            the pure checkpoint overhead. Snapshots are COW TablePtr map
//            copies, so this must stay well under 15% of baseline.
//   mode 2 — recovery on plus a 10% per-step fault rate (mixed transient /
//            worker-loss): retries and checkpoint restores engaged.
// Counters expose the machinery: checkpoints_taken, step_retries, restores,
// faults_seen. Run with --benchmark_format=json for machine-readable output.
//
// BM_SsspDurableCheckpoint prices the DESIGN.md §12 storage layer on top:
// the same K=4 checkpoint cadence, but every checkpoint is additionally
// serialized to compressed extents and committed through the WAL (wal=1) or
// left to manifest folds (wal=0). The delta over mode 1 is the cost of
// durability itself: extent encoding + the commit-point append.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench_util.h"

namespace dbspinner {
namespace {

void BM_SsspFaultTolerance(benchmark::State& state) {
  int mode = static_cast<int>(state.range(0));
  int workers = static_cast<int>(state.range(1));
  Database* db = bench::GetDatabase(bench::Dataset::kDblp);
  db->options().num_workers = workers;
  if (workers > 1) db->options().mpp_min_rows_per_task = 1;
  if (mode >= 1) {
    db->options().fault_tolerance.enable_recovery = true;
    db->options().fault_tolerance.checkpoint_interval = 4;
    db->options().fault_tolerance.max_restores = 100000;
  }
  if (mode == 2) {
    db->options().fault_injection.enabled = true;
    db->options().fault_injection.seed = 17;
    db->options().fault_injection.rate = 0.1;
    db->options().fault_injection.site_filter = "exec.";
    db->options().fault_injection.worker_lost_fraction = 0.3;
  }

  std::string sql = workloads::SSSPQuery(/*iterations=*/25, /*source_node=*/1,
                                         /*target_node=*/2);
  ExecStats last;
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    benchmark::DoNotOptimize(result->table);
  }
  state.counters["checkpoints_taken"] =
      static_cast<double>(last.checkpoints_taken);
  state.counters["step_retries"] = static_cast<double>(last.step_retries);
  state.counters["restores"] = static_cast<double>(last.restores);
  state.counters["faults_seen"] = static_cast<double>(last.faults_seen);
  // Restore defaults for other process-shared benchmarks.
  db->options() = EngineOptions();
}
BENCHMARK(BM_SsspFaultTolerance)
    ->ArgNames({"mode", "workers"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Unit(benchmark::kMillisecond);

void BM_SsspDurableCheckpoint(benchmark::State& state) {
  bool wal = state.range(0) != 0;
  int workers = static_cast<int>(state.range(1));

  // Persistence is fixed at construction, so the durable modes build their
  // own database instead of sharing the process-cached one.
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("dbsp_bench_durable_" + std::to_string(::getpid()) + "_" +
        std::to_string(state.range(0)) + "_" + std::to_string(workers)))
          .string();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  EngineOptions eo;
  eo.num_workers = workers;
  if (workers > 1) eo.mpp_min_rows_per_task = 1;
  eo.fault_tolerance.enable_recovery = true;
  eo.fault_tolerance.checkpoint_interval = 4;
  eo.persistence.enabled = true;
  eo.persistence.path = dir;
  eo.persistence.wal = wal;
  eo.persistence.sync = false;  // isolate encode+append cost from fsync
  eo.persistence.durable_checkpoints = true;
  Database db(std::move(eo));
  {
    graph::EdgeList g = graph::Generate(bench::SpecFor(bench::Dataset::kDblp));
    Status st = graph::LoadIntoDatabase(&db, g, /*available_fraction=*/0.8,
                                        /*status_seed=*/7);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }

  std::string sql = workloads::SSSPQuery(/*iterations=*/25, /*source_node=*/1,
                                         /*target_node=*/2);
  ExecStats last;
  for (auto _ : state) {
    Result<QueryResult> result = db.Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    benchmark::DoNotOptimize(result->table);
  }
  state.counters["checkpoints_taken"] =
      static_cast<double>(last.checkpoints_taken);
  state.counters["durable_checkpoints"] =
      static_cast<double>(last.durable_checkpoints);
  if (db.storage_manager() != nullptr) {
    StorageManager::Counters c = db.storage_manager()->counters();
    state.counters["wal_appends"] = static_cast<double>(c.wal_appends);
    state.counters["extents_written"] =
        static_cast<double>(c.extents_written);
    state.counters["storage_mb_written"] =
        static_cast<double>(c.bytes_written) / (1024.0 * 1024.0);
  }
  std::filesystem::remove_all(dir, ec);
}
BENCHMARK(BM_SsspDurableCheckpoint)
    ->ArgNames({"wal", "workers"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
