// Concurrent serving benchmark (DESIGN.md §10): aggregate throughput and
// latency of the session/scheduler/snapshot-catalog stack at 1, 4, and 16
// concurrent sessions hammering one shared Database with a mixed read
// workload.
//
// Reads are admission-controlled but lock-free against the catalog (each
// query pins a snapshot), so on a multi-core host aggregate QPS should
// scale with session count until the shared worker pool saturates. On a
// single core the numbers show scheduling overhead instead — the counters
// make either case visible.
//
// Emits per-run counters (qps, p50_ms, p99_ms, queue_wait_avg_us,
// queued_fraction); run with --benchmark_format=json for machine-readable
// output:
//
//   ./build/bench/bench_concurrency --benchmark_format=json

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/session.h"

namespace dbspinner {
namespace bench {
namespace {

/// Small shared read-only database: big enough that queries do real work,
/// small enough that a 16-session sweep finishes in seconds.
Database* GetServeDb() {
  static Database* db = [] {
    auto* d = new Database();
    graph::GraphSpec spec;
    spec.num_nodes = 1500;
    spec.num_edges = 6000;
    spec.seed = 17;
    graph::EdgeList g = graph::Generate(spec);
    Status st = graph::LoadIntoDatabase(d, g, 0.8, 7);
    if (!st.ok()) {
      fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    return d;
  }();
  return db;
}

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> mix = {
      // Join-aggregate: one-shot, hash-join + group-by heavy.
      "SELECT e1.src, COUNT(*) FROM edges e1 JOIN edges e2 "
      "ON e1.dst = e2.src GROUP BY e1.src",
      // Iterative: a bounded SSSP loop (merge-by-key updates).
      workloads::SSSPQuery(6, 1, 100),
      // Iterative: a short full-update PageRank.
      workloads::PRQuery(3),
  };
  return mix;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

void BM_ConcurrentServing(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  constexpr int kQueriesPerSession = 6;
  Database* db = GetServeDb();

  server::SchedulerOptions sched;
  // Admission sized to the offered load: this measures the serving stack,
  // not queue-full rejections (those are covered by tests).
  sched.max_concurrent_queries = sessions;
  sched.max_queue_depth = sessions * kQueriesPerSession;
  server::SessionManager manager(db, sched);

  std::mutex lat_mu;
  std::vector<double> latencies_ms;
  std::atomic<int64_t> errors{0};
  int64_t total_queries = 0;
  double total_seconds = 0.0;

  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (int s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        std::shared_ptr<server::Session> session = manager.CreateSession();
        std::vector<double> local;
        local.reserve(kQueriesPerSession);
        for (int q = 0; q < kQueriesPerSession; ++q) {
          const std::string& sql =
              QueryMix()[(s + q) % QueryMix().size()];
          const auto t0 = std::chrono::steady_clock::now();
          Result<QueryResult> r = session->Execute(sql);
          const auto t1 = std::chrono::steady_clock::now();
          if (!r.ok()) {
            ++errors;
            continue;
          }
          benchmark::DoNotOptimize(r->table);
          local.push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
        }
        std::lock_guard<std::mutex> lock(lat_mu);
        latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
      });
    }
    for (std::thread& t : threads) t.join();
    total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begin)
            .count();
    total_queries += static_cast<int64_t>(sessions) * kQueriesPerSession;
  }

  if (errors.load() > 0) {
    state.SkipWithError("query failures during benchmark");
    return;
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  server::SchedulerStats sstats = manager.scheduler().stats();
  state.counters["qps"] =
      total_seconds > 0 ? static_cast<double>(total_queries) / total_seconds
                        : 0.0;
  state.counters["p50_ms"] = Percentile(latencies_ms, 0.50);
  state.counters["p99_ms"] = Percentile(latencies_ms, 0.99);
  state.counters["queue_wait_avg_us"] =
      sstats.queued > 0 ? static_cast<double>(sstats.total_queue_wait_us) /
                              static_cast<double>(sstats.queued)
                        : 0.0;
  state.counters["queued_fraction"] =
      sstats.admitted > 0 ? static_cast<double>(sstats.queued) /
                                static_cast<double>(sstats.admitted)
                          : 0.0;
}

BENCHMARK(BM_ConcurrentServing)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace dbspinner

BENCHMARK_MAIN();
