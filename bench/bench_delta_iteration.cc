// Delta-driven (semi-naive) iteration vs naive full recompute.
//
// Runs a converging SSSP (the frontier settles long before the trip count
// is exhausted) with the delta rewrite on and off, serial and at MPP width
// 8. Counters expose the mechanism behind the speedup: `delta_probe_rows`
// (the semi-naive recompute frontier summed over all iterations) stays far
// below `iterations * |cte|`, `build_cache_hits` counts loop-invariant
// hash-join build sides reused across iterations, and at width 8
// `rows_shuffled` drops because only deltas move between nodes. Run with
// --benchmark_format=json for machine-readable output.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dbspinner {
namespace {

void BM_SsspDeltaVsNaive(benchmark::State& state) {
  bool delta_on = state.range(0) != 0;
  int workers = static_cast<int>(state.range(1));
  Database* db = bench::GetDatabase(bench::Dataset::kDblp);
  db->options().optimizer.enable_delta_iteration = delta_on;
  db->options().optimizer.enable_join_build_cache = delta_on;
  db->options().num_workers = workers;
  db->options().mpp_min_rows_per_task = 1;

  std::string sql = workloads::SSSPQuery(/*iterations=*/25, /*source_node=*/1,
                                         /*target_node=*/2);
  ExecStats last;
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    benchmark::DoNotOptimize(result->table);
  }
  state.counters["loop_iterations"] =
      static_cast<double>(last.loop_iterations);
  state.counters["delta_rows"] = static_cast<double>(last.delta_rows);
  state.counters["delta_probe_rows"] =
      static_cast<double>(last.delta_probe_rows);
  state.counters["build_cache_hits"] =
      static_cast<double>(last.build_cache_hits);
  state.counters["rows_shuffled"] = static_cast<double>(last.rows_shuffled);
  // Fused pre-aggregation: rows consumed directly by partial aggregates
  // never hit the materializer, so rows_materialized drops by exactly
  // agg_rows_preaggregated versus the pre-fusion executor.
  state.counters["rows_materialized"] =
      static_cast<double>(last.rows_materialized);
  state.counters["agg_rows_preaggregated"] =
      static_cast<double>(last.agg_rows_preaggregated);
  state.counters["agg_partials_merged"] =
      static_cast<double>(last.agg_partials_merged);
  // Restore defaults for other process-shared benchmarks.
  db->options() = EngineOptions();
}
BENCHMARK(BM_SsspDeltaVsNaive)
    ->ArgNames({"delta", "workers"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

void BM_PageRankDeltaVsNaive(benchmark::State& state) {
  // PageRank never converges to a fixed point at double precision, so its
  // delta stays full-width: the interesting number here is the
  // build-cache reuse of the invariant edges side, not the probe count.
  bool delta_on = state.range(0) != 0;
  Database* db = bench::GetDatabase(bench::Dataset::kDblp);
  db->options().optimizer.enable_delta_iteration = delta_on;
  db->options().optimizer.enable_join_build_cache = delta_on;

  std::string sql = workloads::PRQuery(/*iterations=*/10);
  ExecStats last;
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    benchmark::DoNotOptimize(result->table);
  }
  state.counters["delta_probe_rows"] =
      static_cast<double>(last.delta_probe_rows);
  state.counters["build_cache_hits"] =
      static_cast<double>(last.build_cache_hits);
  db->options() = EngineOptions();
}
BENCHMARK(BM_PageRankDeltaVsNaive)
    ->ArgNames({"delta"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Parallel-fusion's materialization/movement saving, isolated: the same
// SSSP loop at width 8 with the vectorized executor on vs off. On, small
// builds broadcast (probes fuse, no join repartitioning) and aggregates
// consume chunks straight into per-worker partials instead of
// shuffle-then-aggregate — so both rows_materialized and rows_shuffled
// drop, while agg_rows_preaggregated accounts the (post-filter) aggregate
// input that skipped the materializer entirely.
void BM_SsspAggregateMaterialization(benchmark::State& state) {
  bool vectorized = state.range(0) != 0;
  Database* db = bench::GetDatabase(bench::Dataset::kDblp);
  db->options().optimizer.vectorized_exec = vectorized;
  db->options().num_workers = 8;
  db->options().mpp_min_rows_per_task = 1;

  std::string sql = workloads::SSSPQuery(/*iterations=*/25, /*source_node=*/1,
                                         /*target_node=*/2);
  ExecStats last;
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    last = result->stats;
    benchmark::DoNotOptimize(result->table);
  }
  state.counters["rows_materialized"] =
      static_cast<double>(last.rows_materialized);
  state.counters["rows_shuffled"] = static_cast<double>(last.rows_shuffled);
  state.counters["agg_rows_preaggregated"] =
      static_cast<double>(last.agg_rows_preaggregated);
  state.counters["agg_partials_merged"] =
      static_cast<double>(last.agg_partials_merged);
  db->options() = EngineOptions();
}
BENCHMARK(BM_SsspAggregateMaterialization)
    ->ArgNames({"vectorized"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
