// Figure 9: materializing common results.
//
// PR-VS and SSSP-VS join the loop-invariant pair edges ⋈ vertexstatus in
// every iteration. With the optimization the pair is materialized once
// before the loop (__common#1) and scanned 25 times; the baseline
// recomputes it per iteration. The paper reports ~20% (DBLP) and ~10%
// (Pokec) improvements — DBLP benefits more because vertexstatus is
// proportionally larger there (one row per node, fewer edges per node).
//
// Series: {PR-VS, SSSP-VS} x {dblp, pokec} x {baseline, common-result}.

#include "bench_util.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr int kIterations = 25;

void Fig09(benchmark::State& state, Dataset dataset, bool is_pr,
           bool common_enabled) {
  Database* db = GetDatabase(dataset);
  db->options().optimizer = OptimizerOptions{};
  db->options().optimizer.enable_common_result = common_enabled;
  std::string sql = is_pr ? workloads::PRVSQuery(kIterations)
                          : workloads::SSSPVSQuery(kIterations, 1, 10);
  RunQuery(state, db, sql);
}

}  // namespace
}  // namespace bench
}  // namespace dbspinner

using dbspinner::bench::Dataset;
using dbspinner::bench::Fig09;

BENCHMARK_CAPTURE(Fig09, PRVS_dblp_baseline, Dataset::kDblp, true, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, PRVS_dblp_common, Dataset::kDblp, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, PRVS_pokec_baseline, Dataset::kPokec, true, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, PRVS_pokec_common, Dataset::kPokec, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, SSSPVS_dblp_baseline, Dataset::kDblp, false, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, SSSPVS_dblp_common, Dataset::kDblp, false, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, SSSPVS_pokec_baseline, Dataset::kPokec, false, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig09, SSSPVS_pokec_common, Dataset::kPokec, false, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

BENCHMARK_MAIN();
