// Figure 8: minimizing data movement.
//
// Compares the optimized execution (rename: the working table becomes the
// CTE table, O(1)) against the baseline that moves data from the working
// table back to the main one and identifies updated rows even though the
// whole dataset is replaced. The paper reports up to ~48% improvement for
// FF (whose Ri is cheap, so the copy dominates) and a small win for PR
// (whose Ri's joins dominate).
//
// Series: {FF, PR} x {dblp, pokec} x {baseline, rename}.

#include "bench_util.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr int kIterations = 25;

void Fig08(benchmark::State& state, Dataset dataset, bool is_ff,
           bool rename_enabled) {
  Database* db = GetDatabase(dataset);
  db->options().optimizer = OptimizerOptions{};
  db->options().optimizer.enable_rename_optimization = rename_enabled;
  std::string sql = is_ff ? workloads::FFQuery(kIterations, 1, 10)
                          : workloads::PRQuery(kIterations);
  RunQuery(state, db, sql);
}

}  // namespace
}  // namespace bench
}  // namespace dbspinner

using dbspinner::bench::Dataset;
using dbspinner::bench::Fig08;

BENCHMARK_CAPTURE(Fig08, FF_dblp_baseline, Dataset::kDblp, true, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig08, FF_dblp_rename, Dataset::kDblp, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig08, FF_pokec_baseline, Dataset::kPokec, true, false)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig08, FF_pokec_rename, Dataset::kPokec, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(Fig08, PR_dblp_baseline, Dataset::kDblp, false, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig08, PR_dblp_rename, Dataset::kDblp, false, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig08, PR_pokec_baseline, Dataset::kPokec, false, false)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig08, PR_pokec_rename, Dataset::kPokec, false, true)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

BENCHMARK_MAIN();
