// Micro-benchmarks of the core physical operators (filter, hash join, hash
// aggregate, distinct, sort) — baseline numbers for interpreting the
// figure-level benches.

#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "graph/generator.h"
#include "storage/column_vector.h"

namespace dbspinner {
namespace {

constexpr int64_t kEdgeRows = 100000;

Database* SetupDb(int64_t nodes, int64_t edges) {
  static Database* db = [&] {
    auto* d = new Database();
    graph::GraphSpec spec;
    spec.num_nodes = nodes;
    spec.num_edges = edges;
    spec.seed = 21;
    graph::EdgeList g = graph::Generate(spec);
    Status st = graph::LoadIntoDatabase(d, g, 0.8, 7);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

void RunSql(benchmark::State& state, const char* sql) {
  Database* db = SetupDb(20000, kEdgeRows);
  for (auto _ : state) {
    auto result = db->Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
}

// Runs `sql` with the vectorized pipeline executor on or off and reports
// source rows/sec plus the per-kernel row counters from ExecStats, so a
// JSON bench run (--benchmark_format=json) carries the on-vs-off rows/sec
// comparison directly. The rows denominator is the edges scan size, fixed
// across both series — the ratio is pure wall-clock.
void RunSqlExec(benchmark::State& state, const char* sql, bool vectorized) {
  Database* db = SetupDb(20000, kEdgeRows);
  db->options().optimizer.vectorized_exec = vectorized;
  int64_t runs = 0;
  int64_t kernel_filter = 0, kernel_project = 0, pipelines = 0;
  for (auto _ : state) {
    auto result = db->Execute(sql);
    if (!result.ok()) {
      db->options().optimizer.vectorized_exec = true;
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table);
    ++runs;
    kernel_filter += result->stats.kernel_rows_filter;
    kernel_project += result->stats.kernel_rows_project;
    pipelines += result->stats.pipelines_run;
  }
  db->options().optimizer.vectorized_exec = true;
  state.counters["rows_per_sec"] =
      benchmark::Counter(static_cast<double>(runs * kEdgeRows),
                         benchmark::Counter::kIsRate);
  state.counters["kernel_rows_filter"] =
      benchmark::Counter(static_cast<double>(kernel_filter));
  state.counters["kernel_rows_project"] =
      benchmark::Counter(static_cast<double>(kernel_project));
  state.counters["pipelines_run"] =
      benchmark::Counter(static_cast<double>(pipelines));
}

void BM_Scan(benchmark::State& state) {
  RunSql(state, "SELECT * FROM edges");
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_Filter(benchmark::State& state) {
  RunSql(state, "SELECT src FROM edges WHERE weight > 0.2 AND src % 3 = 0");
}
BENCHMARK(BM_Filter)->Unit(benchmark::kMillisecond);

void BM_Project(benchmark::State& state) {
  RunSql(state, "SELECT src * 2, weight * 0.85, src + dst FROM edges");
}
BENCHMARK(BM_Project)->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM edges e JOIN vertexstatus v "
         "ON e.dst = v.node");
}
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);

void BM_LeftJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM vertexstatus v LEFT JOIN edges e "
         "ON v.node = e.dst");
}
BENCHMARK(BM_LeftJoin)->Unit(benchmark::kMillisecond);

void BM_HashAggregate(benchmark::State& state) {
  RunSql(state, "SELECT src, COUNT(*), SUM(weight) FROM edges GROUP BY src");
}
BENCHMARK(BM_HashAggregate)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  RunSql(state, "SELECT DISTINCT dst FROM edges");
}
BENCHMARK(BM_Distinct)->Unit(benchmark::kMillisecond);

void BM_UnionDistinct(benchmark::State& state) {
  RunSql(state, "SELECT src FROM edges UNION SELECT dst FROM edges");
}
BENCHMARK(BM_UnionDistinct)->Unit(benchmark::kMillisecond);

void BM_Sort(benchmark::State& state) {
  RunSql(state, "SELECT src, weight FROM edges ORDER BY weight DESC, src");
}
BENCHMARK(BM_Sort)->Unit(benchmark::kMillisecond);

void BM_TriangleJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dst = e2.src "
         "WHERE e1.src != e2.dst");
}
BENCHMARK(BM_TriangleJoin)->Unit(benchmark::kMillisecond);

// --- vectorized pipeline vs legacy executor (DESIGN.md §11) -----------------
//
// The same fused scan→filter→project chain, kernelizable predicates only,
// with the chunk pipeline on vs the legacy operator-at-a-time executor.
// Compare the two rows_per_sec counters in a JSON run.

constexpr const char* kScanFilterProjectSql =
    "SELECT src * 2, src + dst, weight * 0.85 FROM edges "
    "WHERE weight > 0.05 AND src > 2500";

void BM_ScanFilterProject_Vectorized(benchmark::State& state) {
  RunSqlExec(state, kScanFilterProjectSql, /*vectorized=*/true);
}
BENCHMARK(BM_ScanFilterProject_Vectorized)->Unit(benchmark::kMillisecond);

void BM_ScanFilterProject_Legacy(benchmark::State& state) {
  RunSqlExec(state, kScanFilterProjectSql, /*vectorized=*/false);
}
BENCHMARK(BM_ScanFilterProject_Legacy)->Unit(benchmark::kMillisecond);

// Mixed predicate: the modulus conjunct is not kernelizable, so the
// pipeline runs its prefix kernel and falls back row-wise on survivors.
constexpr const char* kMixedFilterSql =
    "SELECT src FROM edges WHERE weight > 0.01 AND src % 3 = 0";

void BM_MixedFilter_Vectorized(benchmark::State& state) {
  RunSqlExec(state, kMixedFilterSql, /*vectorized=*/true);
}
BENCHMARK(BM_MixedFilter_Vectorized)->Unit(benchmark::kMillisecond);

void BM_MixedFilter_Legacy(benchmark::State& state) {
  RunSqlExec(state, kMixedFilterSql, /*vectorized=*/false);
}
BENCHMARK(BM_MixedFilter_Legacy)->Unit(benchmark::kMillisecond);

// --- broadcast-fused probe vs breaker at MPP width 8 (DESIGN.md §11) --------
//
// scan→filter→probe with a small (20k-row) build side at 8 workers. The
// fused series broadcasts the build (one shared hash table, probes run
// inside the stealing morsel dispatcher); the breaker series forces the
// legacy repartitioned join by setting broadcast_build_rows = 0. Compare
// the two rows_per_sec counters in a JSON run — the acceptance bar is
// fused >= 1.5x breaker.

constexpr const char* kScanFilterProbeSql =
    "SELECT e.src, e.dst, v.status FROM edges e "
    "JOIN vertexstatus v ON e.dst = v.node WHERE e.weight > 0.05";

void RunSqlMppProbe(benchmark::State& state, bool fuse) {
  Database* db = SetupDb(20000, kEdgeRows);
  db->options().num_workers = 8;
  db->options().mpp_min_rows_per_task = 1;
  db->options().broadcast_build_rows = fuse ? (size_t{1} << 20) : 0;
  int64_t runs = 0, probe_rows = 0, stolen = 0, shuffled = 0;
  for (auto _ : state) {
    auto result = db->Execute(kScanFilterProbeSql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(result->table);
    ++runs;
    probe_rows += result->stats.kernel_rows_probe;
    stolen += result->stats.morsels_stolen;
    shuffled += result->stats.rows_shuffled;
  }
  db->options().num_workers = 1;
  db->options().mpp_min_rows_per_task = 8192;
  db->options().broadcast_build_rows = size_t{1} << 20;
  state.counters["rows_per_sec"] =
      benchmark::Counter(static_cast<double>(runs * kEdgeRows),
                         benchmark::Counter::kIsRate);
  state.counters["kernel_rows_probe"] =
      benchmark::Counter(static_cast<double>(probe_rows));
  state.counters["morsels_stolen"] =
      benchmark::Counter(static_cast<double>(stolen));
  state.counters["rows_shuffled"] =
      benchmark::Counter(static_cast<double>(shuffled));
}

void BM_ScanFilterProbeMpp8_Fused(benchmark::State& state) {
  RunSqlMppProbe(state, /*fuse=*/true);
}
BENCHMARK(BM_ScanFilterProbeMpp8_Fused)->Unit(benchmark::kMillisecond);

void BM_ScanFilterProbeMpp8_Breaker(benchmark::State& state) {
  RunSqlMppProbe(state, /*fuse=*/false);
}
BENCHMARK(BM_ScanFilterProbeMpp8_Breaker)->Unit(benchmark::kMillisecond);

// --- ColumnVector batch gather microbench -----------------------------------
//
// The type-specialized AppendGathered path must beat (and exactly match)
// the per-row AppendFrom loop it replaced; the equivalence is asserted
// here once at setup so a perf run doubles as a regression check.

void BM_GatherBatch(benchmark::State& state) {
  ColumnVector src(TypeId::kInt64);
  std::vector<uint32_t> sel;
  for (int64_t i = 0; i < 100000; ++i) {
    if (i % 17 == 0) {
      src.AppendNull();
    } else {
      src.AppendInt64(i * 3);
    }
    if (i % 2 == 0) sel.push_back(static_cast<uint32_t>(i));
  }
  ColumnVectorPtr batch = src.Gather(sel);
  ColumnVector loop(TypeId::kInt64);
  for (uint32_t i : sel) loop.AppendFrom(src, i);
  if (batch->size() != loop.size()) std::abort();
  for (size_t i = 0; i < loop.size(); ++i) {
    if (batch->IsNull(i) != loop.IsNull(i)) std::abort();
    if (!batch->IsNull(i) && batch->Int64At(i) != loop.Int64At(i))
      std::abort();
  }
  for (auto _ : state) {
    ColumnVectorPtr out = src.Gather(sel);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(sel.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GatherBatch);

void BM_GatherPerRow(benchmark::State& state) {
  ColumnVector src(TypeId::kInt64);
  std::vector<uint32_t> sel;
  for (int64_t i = 0; i < 100000; ++i) {
    if (i % 17 == 0) {
      src.AppendNull();
    } else {
      src.AppendInt64(i * 3);
    }
    if (i % 2 == 0) sel.push_back(static_cast<uint32_t>(i));
  }
  for (auto _ : state) {
    auto out = std::make_shared<ColumnVector>(src.type());
    out->Reserve(sel.size());
    for (uint32_t i : sel) out->AppendFrom(src, i);
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(sel.size()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GatherPerRow);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
