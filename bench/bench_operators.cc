// Micro-benchmarks of the core physical operators (filter, hash join, hash
// aggregate, distinct, sort) — baseline numbers for interpreting the
// figure-level benches.

#include <benchmark/benchmark.h>

#include "engine/database.h"
#include "graph/generator.h"

namespace dbspinner {
namespace {

Database* SetupDb(int64_t nodes, int64_t edges) {
  static Database* db = [&] {
    auto* d = new Database();
    graph::GraphSpec spec;
    spec.num_nodes = nodes;
    spec.num_edges = edges;
    spec.seed = 21;
    graph::EdgeList g = graph::Generate(spec);
    Status st = graph::LoadIntoDatabase(d, g, 0.8, 7);
    if (!st.ok()) std::abort();
    return d;
  }();
  return db;
}

void RunSql(benchmark::State& state, const char* sql) {
  Database* db = SetupDb(20000, 100000);
  for (auto _ : state) {
    auto result = db->Query(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*result);
  }
}

void BM_Scan(benchmark::State& state) {
  RunSql(state, "SELECT * FROM edges");
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_Filter(benchmark::State& state) {
  RunSql(state, "SELECT src FROM edges WHERE weight > 0.2 AND src % 3 = 0");
}
BENCHMARK(BM_Filter)->Unit(benchmark::kMillisecond);

void BM_Project(benchmark::State& state) {
  RunSql(state, "SELECT src * 2, weight * 0.85, src + dst FROM edges");
}
BENCHMARK(BM_Project)->Unit(benchmark::kMillisecond);

void BM_HashJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM edges e JOIN vertexstatus v "
         "ON e.dst = v.node");
}
BENCHMARK(BM_HashJoin)->Unit(benchmark::kMillisecond);

void BM_LeftJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM vertexstatus v LEFT JOIN edges e "
         "ON v.node = e.dst");
}
BENCHMARK(BM_LeftJoin)->Unit(benchmark::kMillisecond);

void BM_HashAggregate(benchmark::State& state) {
  RunSql(state, "SELECT src, COUNT(*), SUM(weight) FROM edges GROUP BY src");
}
BENCHMARK(BM_HashAggregate)->Unit(benchmark::kMillisecond);

void BM_Distinct(benchmark::State& state) {
  RunSql(state, "SELECT DISTINCT dst FROM edges");
}
BENCHMARK(BM_Distinct)->Unit(benchmark::kMillisecond);

void BM_UnionDistinct(benchmark::State& state) {
  RunSql(state, "SELECT src FROM edges UNION SELECT dst FROM edges");
}
BENCHMARK(BM_UnionDistinct)->Unit(benchmark::kMillisecond);

void BM_Sort(benchmark::State& state) {
  RunSql(state, "SELECT src, weight FROM edges ORDER BY weight DESC, src");
}
BENCHMARK(BM_Sort)->Unit(benchmark::kMillisecond);

void BM_TriangleJoin(benchmark::State& state) {
  RunSql(state,
         "SELECT COUNT(*) FROM edges e1 JOIN edges e2 ON e1.dst = e2.src "
         "WHERE e1.src != e2.dst");
}
BENCHMARK(BM_TriangleJoin)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
