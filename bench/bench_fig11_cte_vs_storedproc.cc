// Figure 11: optimized iterative CTEs vs stored procedures.
//
// Each workload runs 25 iterations both ways. The procedure executes the
// Fig 1-style statement sequence — DELETE + INSERT + UPDATE against real
// temp tables, each statement parsed/planned/executed in isolation — while
// the CTE runs as one plan with rename/common-result/pushdown enabled. The
// paper reports CTEs at least ~25% faster for PR/SSSP (mainly common
// results + rename) and much faster for FF with an early-evaluated
// predicate.
//
// Series: {PR-VS, SSSP-VS, FF(50%)} x {procedure, cte} on the DBLP shape.

#include "bench_util.h"

#include "engine/procedure.h"

namespace dbspinner {
namespace bench {
namespace {

constexpr int kIterations = 25;

enum class Workload { kPrVs, kSsspVs, kFf };

void Fig11Cte(benchmark::State& state, Workload w) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};  // everything enabled
  std::string sql;
  switch (w) {
    case Workload::kPrVs:
      sql = workloads::PRVSQuery(kIterations);
      break;
    case Workload::kSsspVs:
      sql = workloads::SSSPVSQuery(kIterations, 1, 10);
      break;
    case Workload::kFf:
      sql = workloads::FFQuery(kIterations, /*mod_x=*/2, 10);  // 50%
      break;
  }
  RunQuery(state, db, sql);
}

void Fig11Procedure(benchmark::State& state, Workload w) {
  Database* db = GetDatabase(Dataset::kDblp);
  db->options().optimizer = OptimizerOptions{};
  Procedure proc;
  switch (w) {
    case Workload::kPrVs:
      proc = workloads::PRVSProcedure(kIterations);
      break;
    case Workload::kSsspVs:
      proc = workloads::SSSPVSProcedure(kIterations, 1, 10);
      break;
    case Workload::kFf:
      proc = workloads::FFProcedure(kIterations, /*mod_x=*/2);
      break;
  }
  for (auto _ : state) {
    Result<QueryResult> result = proc.Run(db);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table);
  }
}

}  // namespace
}  // namespace bench
}  // namespace dbspinner

using dbspinner::bench::Fig11Cte;
using dbspinner::bench::Fig11Procedure;
using dbspinner::bench::Workload;

BENCHMARK_CAPTURE(Fig11Procedure, PRVS_procedure, Workload::kPrVs)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig11Cte, PRVS_cte, Workload::kPrVs)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig11Procedure, SSSPVS_procedure, Workload::kSsspVs)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig11Cte, SSSPVS_cte, Workload::kSsspVs)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig11Procedure, FF50_procedure, Workload::kFf)
    ->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK_CAPTURE(Fig11Cte, FF50_cte, Workload::kFf)
    ->Unit(benchmark::kMillisecond)->Iterations(2);

BENCHMARK_MAIN();
