// Persistent storage scan throughput (DESIGN.md §12): rows/sec streaming a
// compressed on-disk table through the buffer manager at three memory
// budgets — 25%, 50% and 100% of the table's decoded blocks resident.
//
// At 100% the second scan is an all-hit pass over the pool (decode cost
// amortized away); below 100% the clock hand must evict mid-scan and every
// pass re-decodes the evicted fraction, which is exactly the
// larger-than-memory regime the extent reader is built for. Counters report
// the buffer pool's hit/miss/eviction behaviour and the on-disk compression
// ratio (raw bytes / compressed payload bytes). JSON output via
// --benchmark_format=json per the bench_util.h conventions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "bench_util.h"
#include "storage/persistent_store.h"

namespace dbspinner {
namespace {

constexpr int64_t kRows = 200'000;
constexpr size_t kBlockRows = 1024;

// Writes the scan corpus once per process: a 4-column table (int id, int
// low-cardinality group, double score, dictionary-friendly string label)
// whose distributions give every codec something to do.
const std::string& CorpusDir() {
  static const std::string dir = [] {
    std::string d = (std::filesystem::temp_directory_path() /
                     ("dbsp_bench_storage_" + std::to_string(::getpid())))
                        .string();
    std::error_code ec;
    std::filesystem::remove_all(d, ec);

    PersistenceOptions p;
    p.enabled = true;
    p.path = d;
    p.sync = false;
    p.block_rows = kBlockRows;
    p.buffer_pool_blocks = 16;
    auto store = StorageManager::Open(p, /*faults=*/nullptr);
    if (!store.ok()) {
      std::fprintf(stderr, "bench_storage setup failed: %s\n",
                   store.status().ToString().c_str());
      std::abort();
    }

    Schema schema;
    schema.AddColumn("id", TypeId::kInt64);
    schema.AddColumn("grp", TypeId::kInt64);
    schema.AddColumn("score", TypeId::kDouble);
    schema.AddColumn("label", TypeId::kString);
    TablePtr t = Table::Make(std::move(schema));
    t->Reserve(kRows);
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    for (int64_t i = 0; i < kRows; ++i) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      t->AppendRow({Value::Int64(i), Value::Int64(static_cast<int64_t>(
                                         (rng >> 33) % 16)),
                    Value::Double(static_cast<double>((rng >> 17) % 1000) / 7.0),
                    Value::String("label-" + std::to_string((rng >> 40) % 8))});
    }
    Status st = store.value()->LogUpsertTable("scan_corpus", 0, *t);
    if (!st.ok()) {
      std::fprintf(stderr, "bench_storage load failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    return d;
  }();
  return dir;
}

void BM_ExtentScan(benchmark::State& state) {
  int budget_pct = static_cast<int>(state.range(0));

  PersistenceOptions p;
  p.enabled = true;
  p.path = CorpusDir();
  p.sync = false;
  p.block_rows = kBlockRows;
  // Budget = pct of the table's decoded blocks (4 columns x rows/block_rows
  // blocks each). 100% holds the whole table after one cold pass.
  const size_t blocks_per_col = (kRows + kBlockRows - 1) / kBlockRows;
  const size_t total_blocks = 4 * blocks_per_col;
  p.buffer_pool_blocks =
      std::max<size_t>(4, total_blocks * budget_pct / 100);

  auto open = StorageManager::Open(p, /*faults=*/nullptr);
  if (!open.ok()) {
    state.SkipWithError(open.status().ToString().c_str());
    return;
  }
  std::unique_ptr<StorageManager> store = std::move(open).value();
  auto tables = store->tables();
  auto it = tables.find("scan_corpus");
  if (it == tables.end()) {
    state.SkipWithError("scan corpus missing");
    return;
  }

  int64_t rows_scanned = 0;
  for (auto _ : state) {
    ExtentTableReader reader(store.get(), it->second);
    int64_t sum = 0;
    while (true) {
      Result<TablePtr> chunk = reader.Next();
      if (!chunk.ok()) {
        state.SkipWithError(chunk.status().ToString().c_str());
        return;
      }
      if (chunk.value() == nullptr) break;
      // Touch one numeric column so decode isn't dead code.
      const ColumnVector& ids = chunk.value()->column(0);
      for (size_t i = 0; i < ids.size(); ++i) sum += ids.Int64At(i);
    }
    benchmark::DoNotOptimize(sum);
    rows_scanned += static_cast<int64_t>(reader.rows_read());
  }

  state.SetItemsProcessed(rows_scanned);  // items/sec == rows/sec
  BufferManager::Stats bs = store->buffer_manager().stats();
  state.counters["pool_blocks"] = static_cast<double>(p.buffer_pool_blocks);
  state.counters["hits"] = static_cast<double>(bs.hits);
  state.counters["misses"] = static_cast<double>(bs.misses);
  state.counters["evictions"] = static_cast<double>(bs.evictions);
  double hits_misses = static_cast<double>(bs.hits + bs.misses);
  state.counters["hit_rate"] =
      hits_misses > 0 ? static_cast<double>(bs.hits) / hits_misses : 0.0;
  // Write-side counters belong to the process that wrote the corpus; report
  // the ratio from the extent directory instead: raw size / on-disk size.
  uint64_t disk_bytes = 0;
  for (auto& e : std::filesystem::directory_iterator(CorpusDir() + "/data")) {
    disk_bytes += e.file_size();
  }
  // Raw: 2 int64 + 1 double + ~8-byte string + null byte per row, per row.
  double raw_bytes = static_cast<double>(kRows) * (8 + 8 + 8 + 12 + 4);
  state.counters["disk_mb"] = static_cast<double>(disk_bytes) / (1 << 20);
  state.counters["compression_ratio"] =
      disk_bytes > 0 ? raw_bytes / static_cast<double>(disk_bytes) : 0.0;
}
BENCHMARK(BM_ExtentScan)
    ->ArgNames({"mem_budget_pct"})
    ->Arg(25)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dbspinner

BENCHMARK_MAIN();
