// Shared setup for the figure-reproduction benchmarks.
//
// Datasets are synthetic stand-ins for the paper's SNAP graphs (see
// DESIGN.md): DBLP-shaped and Pokec-shaped preferential-attachment graphs,
// scaled down so a full bench run finishes in minutes on a laptop. Set
// DBSPINNER_BENCH_SCALE to change the downscale divisor multiplier
// (1 = default sizes, 0.5 = twice as large, 4 = four times smaller).

#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "engine/database.h"
#include "engine/workloads.h"
#include "graph/generator.h"

namespace dbspinner {
namespace bench {

enum class Dataset { kDblp, kPokec };

inline const char* DatasetName(Dataset d) {
  return d == Dataset::kDblp ? "dblp" : "pokec";
}

inline double ScaleFactor() {
  const char* env = std::getenv("DBSPINNER_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline graph::GraphSpec SpecFor(Dataset d) {
  // Default divisors keep the DBLP:Pokec node/edge proportions while making
  // 25-iteration runs tractable for an operator-at-a-time engine.
  double f = ScaleFactor();
  if (d == Dataset::kDblp) {
    return graph::DblpShaped(static_cast<int64_t>(64 * f));
  }
  return graph::PokecShaped(static_cast<int64_t>(768 * f));
}

/// Lazily built, process-cached database per dataset (read-only workloads
/// share it; options are set per run).
inline Database* GetDatabase(Dataset d) {
  static std::map<Dataset, std::unique_ptr<Database>> cache;
  auto it = cache.find(d);
  if (it == cache.end()) {
    auto db = std::make_unique<Database>();
    graph::EdgeList g = graph::Generate(SpecFor(d));
    Status st = graph::LoadIntoDatabase(db.get(), g, /*available_fraction=*/
                                        0.8, /*status_seed=*/7);
    if (!st.ok()) {
      fprintf(stderr, "bench setup failed: %s\n", st.ToString().c_str());
      std::abort();
    }
    it = cache.emplace(d, std::move(db)).first;
  }
  return it->second.get();
}

/// Runs one query per benchmark iteration, aborting on error.
inline void RunQuery(benchmark::State& state, Database* db,
                     const std::string& sql) {
  for (auto _ : state) {
    Result<QueryResult> result = db->Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result->table);
  }
}

}  // namespace bench
}  // namespace dbspinner
