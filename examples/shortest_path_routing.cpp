// Single-source shortest paths on a road-like grid network.
//
//   $ ./build/examples/shortest_path_routing [side]
//
// Uses the paper's SSSP query (Fig 7). Shows both termination styles:
// a fixed iteration budget (metadata) and a data condition (UNTIL ALL)
// that stops exactly when the distances settle.

#include <cstdlib>
#include <iostream>

#include "engine/database.h"
#include "engine/workloads.h"
#include "graph/generator.h"

using namespace dbspinner;

int main(int argc, char** argv) {
  int64_t side = argc > 1 ? std::atoll(argv[1]) : 24;
  Database db;

  graph::GraphSpec spec;
  spec.kind = graph::GraphKind::kGrid;
  spec.num_nodes = side * side;
  graph::EdgeList g = graph::Generate(spec);
  std::cout << "Grid road network: " << g.num_nodes << " intersections, "
            << g.num_edges() << " one-way segments\n";
  Status st = graph::LoadIntoDatabase(&db, g, /*available_fraction=*/0.9);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  int64_t source = 1;
  int64_t target = g.num_nodes;  // opposite corner

  // Fixed iteration budget: enough Bellman-Ford rounds to cross the grid.
  int rounds = static_cast<int>(2 * side);
  Result<QueryResult> fixed =
      db.Execute(workloads::SSSPQuery(rounds, source, target));
  if (!fixed.ok()) {
    std::cerr << fixed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nDistance " << source << " -> " << target << " after "
            << rounds << " iterations:\n"
            << fixed->table->ToString() << fixed->stats.ToString() << "\n";

  // Data-driven termination: UNTIL ANY(node = target AND distance < inf)
  // stops the moment the target becomes reachable — no iteration count
  // needed (the reported distance is the first discovered path's length).
  Result<QueryResult> first_reach =
      db.Execute(workloads::SSSPDataConditionQuery(source, target));
  if (!first_reach.ok()) {
    std::cerr << first_reach.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nFirst path found with a Data termination condition "
            << "(" << first_reach->stats.loop_iterations
            << " iterations used):\n"
            << first_reach->table->ToString();

  // Restricted routing: avoid unavailable intersections (SSSP-VS).
  Result<QueryResult> restricted =
      db.Execute(workloads::SSSPVSQuery(rounds, source, target));
  if (!restricted.ok()) {
    std::cerr << restricted.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nAvoiding closed intersections (SSSP-VS):\n"
            << restricted->table->ToString();
  return 0;
}
