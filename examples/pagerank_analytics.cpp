// PageRank analytics over a synthetic social network.
//
//   $ ./build/examples/pagerank_analytics [scale]
//
// Generates a DBLP-shaped power-law graph (scaled down by `scale`, default
// 128), runs the paper's PR and PR-VS queries, and shows how the result of
// an iterative CTE composes with further SQL (top-k, joins against the
// vertex status dimension) — the "use the result directly as input to
// another SQL query" scenario from the paper's introduction.

#include <cstdlib>
#include <iostream>

#include "engine/database.h"
#include "engine/workloads.h"
#include "graph/generator.h"

using namespace dbspinner;

int main(int argc, char** argv) {
  int64_t scale = argc > 1 ? std::atoll(argv[1]) : 128;
  Database db;

  graph::GraphSpec spec = graph::DblpShaped(scale);
  std::cout << "Generating DBLP-shaped graph: " << spec.num_nodes
            << " nodes, " << spec.num_edges << " edges (scale 1/" << scale
            << ")\n";
  graph::EdgeList g = graph::Generate(spec);
  Status st = graph::LoadIntoDatabase(&db, g, /*available_fraction=*/0.8);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  // The paper's PR query (Fig 2), 10 iterations, then top-10 by rank.
  std::string pr = workloads::PRQuery(10) + " ORDER BY rank DESC LIMIT 10";
  Result<QueryResult> result = db.Execute(pr);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nTop-10 nodes by PageRank (PR, Fig 2):\n"
            << result->table->ToString() << "\n"
            << result->stats.ToString() << "\n";

  // PR-VS (only available nodes updated). The optimizer hoists the
  // edges-vertexstatus join out of the loop (common result, Fig 5/9).
  std::string prvs = workloads::PRVSQuery(10) + " ORDER BY rank DESC LIMIT 10";
  result = db.Execute(prvs);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nTop-10 available nodes by PageRank (PR-VS):\n"
            << result->table->ToString() << "\n"
            << result->stats.ToString() << "\n";

  // Composing: join the iterative result with the status dimension in the
  // same statement.
  std::string composed =
      "WITH ITERATIVE pagerank (node, rank, delta)\n"
      "AS (\n"
      "  SELECT src, 0, 0.15\n"
      "  FROM (SELECT src FROM edges UNION SELECT dst FROM edges)\n"
      "ITERATE\n"
      "  SELECT pagerank.node,\n"
      "         pagerank.rank + pagerank.delta,\n"
      "         0.85 * SUM(incomingrank.delta * incomingedges.weight)\n"
      "  FROM pagerank\n"
      "    LEFT JOIN edges AS incomingedges\n"
      "      ON pagerank.node = incomingedges.dst\n"
      "    LEFT JOIN pagerank AS incomingrank\n"
      "      ON incomingrank.node = incomingedges.src\n"
      "  GROUP BY pagerank.node, pagerank.rank + pagerank.delta\n"
      "UNTIL 5 ITERATIONS )\n"
      "SELECT vs.status, COUNT(*) AS nodes, AVG(pr.rank) AS avg_rank\n"
      "FROM pagerank pr JOIN vertexstatus vs ON pr.node = vs.node\n"
      "WHERE pr.rank IS NOT NULL\n"
      "GROUP BY vs.status ORDER BY vs.status";
  result = db.Execute(composed);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nAverage rank by availability status:\n"
            << result->table->ToString();
  return 0;
}
