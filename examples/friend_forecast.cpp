// Friend-count forecasting (the paper's FF query, Fig 6).
//
//   $ ./build/examples/friend_forecast [scale]
//
// Projects each user's friend count forward through a geometric growth
// model for 25 iterations, then samples 1% of users. Demonstrates the
// Fig 10 optimization: the MOD(node, 100) = 0 predicate from the final
// query is pushed into the non-iterative part, shrinking every iteration.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "engine/database.h"
#include "engine/workloads.h"
#include "graph/generator.h"

using namespace dbspinner;

namespace {

double RunMs(Database* db, const std::string& sql) {
  auto begin = std::chrono::steady_clock::now();
  Result<QueryResult> result = db->Execute(sql);
  auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t scale = argc > 1 ? std::atoll(argv[1]) : 256;

  graph::GraphSpec spec = graph::DblpShaped(scale);
  graph::EdgeList g = graph::Generate(spec);
  std::cout << "Social graph: " << spec.num_nodes << " users, "
            << spec.num_edges << " friendships\n";

  Database db;
  if (Status st = graph::LoadIntoDatabase(&db, g, -1); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  std::string query = workloads::FFQuery(/*iterations=*/25, /*mod_x=*/100);
  Result<QueryResult> result = db.Execute(query);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "\nTop projected friend counts in a 1% user sample:\n"
            << result->table->ToString() << "\n";

  // The same query with and without cross-block predicate pushdown.
  double on_ms = RunMs(&db, query);
  Database slow;
  if (Status st = graph::LoadIntoDatabase(&slow, g, -1); !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  slow.options().optimizer.enable_cte_predicate_pushdown = false;
  double off_ms = RunMs(&slow, query);
  std::cout << "With predicate pushdown:    " << on_ms << " ms\n"
            << "Without predicate pushdown: " << off_ms << " ms\n"
            << "Speedup: " << (off_ms / on_ms) << "x\n";
  return 0;
}
