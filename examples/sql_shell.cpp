// Interactive SQL shell.
//
//   $ ./build/examples/sql_shell                 # read from stdin
//   $ ./build/examples/sql_shell script.sql      # run a file
//
// Statements end with ';'. Meta-commands: \q quit, \timing toggle per-
// statement timing, \stats toggle executor statistics, \tables list tables,
// \views list materialized views (plan shape, version, queued deltas),
// \demo load a small demo graph (tables `edges` and `vertexstatus`),
// \set [name value] show or override per-session engine options.
//
// The shell is a client of the concurrent serving layer: it opens one
// server::Session, so \set overrides are session-scoped and Ctrl-C
// cooperatively cancels the in-flight statement (kCancelled) instead of
// killing the shell.

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "common/string_util.h"
#include "engine/database.h"
#include "graph/generator.h"
#include "server/session.h"

using namespace dbspinner;

namespace {

// Set by the SIGINT handler; the statement loop polls it and issues the
// cooperative cancel from normal (non-handler) context.
volatile std::sig_atomic_t g_interrupted = 0;

void OnSigint(int) { g_interrupted = 1; }

struct ShellSettings {
  bool timing = false;
  bool stats = false;
  int64_t deadline_ms = 0;  ///< 0 = no per-statement deadline
};

void RunStatement(server::Session* session, const std::string& sql,
                  const ShellSettings& settings) {
  g_interrupted = 0;
  auto begin = std::chrono::steady_clock::now();

  // Execute on a worker so the main thread stays responsive to Ctrl-C: on
  // interrupt it requests cooperative cancellation and keeps waiting — the
  // engine unwinds at the next cancellation point and returns kCancelled.
  std::atomic<bool> done{false};
  Result<QueryResult> result = Status::Internal("statement never ran");
  std::thread worker([&] {
    result = settings.deadline_ms > 0
                 ? session->ExecuteWithDeadline(sql,
                                                settings.deadline_ms * 1000)
                 : session->Execute(sql);
    done = true;
  });
  bool cancel_requested = false;
  while (!done) {
    if (g_interrupted && !cancel_requested) {
      g_interrupted = 0;
      cancel_requested = true;
      session->CancelCurrent();
      std::cout << "\ncancel requested, waiting for the query to unwind...\n";
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  worker.join();
  auto end = std::chrono::steady_clock::now();

  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return;
  }
  if (!result->explain.empty()) {
    std::cout << result->explain;
  } else if (result->table->num_columns() > 0) {
    std::cout << result->table->ToString(200);
    std::cout << "(" << result->table->num_rows() << " rows)\n";
  } else if (result->rows_affected > 0) {
    std::cout << "OK, " << result->rows_affected << " rows affected\n";
  } else {
    std::cout << "OK\n";
  }
  if (settings.stats) std::cout << result->stats.ToString() << "\n";
  if (settings.timing) {
    double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    std::cout << "Time: " << ms << " ms\n";
  }
}

void LoadDemo(Database* db) {
  graph::GraphSpec spec;
  spec.num_nodes = 1000;
  spec.num_edges = 5000;
  spec.seed = 11;
  graph::EdgeList g = graph::Generate(spec);
  Status st = graph::LoadIntoDatabase(db, g, 0.8, 5);
  if (!st.ok()) {
    std::cout << st.ToString() << "\n";
    return;
  }
  std::cout << "Loaded demo graph: tables edges(" << g.num_edges()
            << " rows) and vertexstatus(" << g.num_nodes << " rows)\n";
}

bool ParseOnOff(const std::string& v, bool* out) {
  if (v == "on" || v == "true" || v == "1") {
    *out = true;
    return true;
  }
  if (v == "off" || v == "false" || v == "0") {
    *out = false;
    return true;
  }
  return false;
}

// \set [name value]: show or change per-session overrides. Only this
// session is affected — other sessions (and the database defaults) keep
// their own options.
void HandleSet(server::Session* session, ShellSettings* settings,
               const std::string& args) {
  std::istringstream in(args);
  std::string name, value;
  in >> name >> value;
  EngineOptions& opts = session->options();
  if (name.empty()) {
    std::cout << "workers         " << opts.num_workers << "\n"
              << "morsel_size     " << opts.morsel_size << "\n"
              << "min_task_rows   " << opts.mpp_min_rows_per_task << "\n"
              << "max_iterations  " << opts.max_iterations_guard << "\n"
              << "verify          "
              << (opts.verify.verify_plans ? "on" : "off") << "\n"
              << "rename          "
              << (opts.optimizer.enable_rename_optimization ? "on" : "off")
              << "\n"
              << "deadline_ms     " << settings->deadline_ms
              << (settings->deadline_ms == 0 ? " (off)" : "") << "\n";
    return;
  }
  int64_t n = 0;
  bool flag = false;
  char* end = nullptr;
  if (!value.empty()) n = std::strtoll(value.c_str(), &end, 10);
  bool is_int = !value.empty() && end != nullptr && *end == '\0';
  if (name == "workers" && is_int && n >= 1 && n <= 64) {
    opts.num_workers = static_cast<int>(n);
  } else if (name == "morsel_size" && is_int && n >= 1) {
    opts.morsel_size = static_cast<size_t>(n);
  } else if (name == "min_task_rows" && is_int && n >= 1) {
    opts.mpp_min_rows_per_task = n;
  } else if (name == "max_iterations" && is_int && n >= 1) {
    opts.max_iterations_guard = n;
  } else if (name == "deadline_ms" && is_int && n >= 0) {
    settings->deadline_ms = n;
  } else if (name == "verify" && ParseOnOff(value, &flag)) {
    opts.verify.verify_plans = flag;
  } else if (name == "rename" && ParseOnOff(value, &flag)) {
    opts.optimizer.enable_rename_optimization = flag;
  } else {
    std::cout << "usage: \\set [workers N | morsel_size N | "
                 "min_task_rows N | max_iterations N | "
                 "deadline_ms N | verify on|off | rename on|off]\n";
    return;
  }
  std::cout << name << " = " << value << " (this session only)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  server::SessionManager manager(&db);
  std::shared_ptr<server::Session> session = manager.CreateSession();
  ShellSettings settings;

  std::istream* in = &std::cin;
  std::ifstream file;
  bool interactive = true;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    in = &file;
    interactive = false;
  }

  if (interactive) {
    std::signal(SIGINT, OnSigint);
    std::cout << "dbspinner shell — iterative CTEs in SQL. \\q to quit, "
                 "\\demo for sample data, Ctrl-C cancels the running "
                 "query.\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::cout << (buffer.empty() ? "dbsp> " : "  ... ");
    if (!std::getline(*in, line)) {
      if (interactive && g_interrupted) {
        // Ctrl-C at the prompt: clear the flag and keep reading.
        g_interrupted = 0;
        std::cin.clear();
        std::cout << "\n";
        continue;
      }
      break;
    }
    std::string trimmed = Trim(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\q" || trimmed == "\\quit") break;
      if (trimmed == "\\timing") {
        settings.timing = !settings.timing;
        std::cout << "timing " << (settings.timing ? "on" : "off") << "\n";
      } else if (trimmed == "\\stats") {
        settings.stats = !settings.stats;
        std::cout << "stats " << (settings.stats ? "on" : "off") << "\n";
      } else if (trimmed == "\\tables") {
        for (const auto& name : db.catalog().TableNames()) {
          std::cout << name << "\n";
        }
      } else if (trimmed == "\\views") {
        for (const auto& v : db.ListViews()) {
          std::cout << v.name << " [" << v.plan << "] version=" << v.version
                    << " pending=" << v.pending << "  AS " << v.definition
                    << "\n";
        }
      } else if (trimmed == "\\demo") {
        LoadDemo(&db);
      } else if (trimmed == "\\set" || trimmed.rfind("\\set ", 0) == 0) {
        HandleSet(session.get(), &settings,
                  trimmed.size() > 4 ? trimmed.substr(5) : "");
      } else {
        std::cout << "unknown command: " << trimmed << "\n";
      }
      continue;
    }
    buffer += line + "\n";
    // Execute once the buffer holds a ';'-terminated statement.
    std::string t = Trim(buffer);
    if (!t.empty() && t.back() == ';') {
      RunStatement(session.get(), t, settings);
      buffer.clear();
    }
  }
  // Run any trailing statement without ';' (file mode convenience).
  std::string t = Trim(buffer);
  if (!t.empty()) RunStatement(session.get(), t, settings);
  return 0;
}
