// Interactive SQL shell.
//
//   $ ./build/examples/sql_shell                 # read from stdin
//   $ ./build/examples/sql_shell script.sql      # run a file
//
// Statements end with ';'. Meta-commands: \q quit, \timing toggle per-
// statement timing, \stats toggle executor statistics, \tables list tables,
// \demo load a small demo graph (tables `edges` and `vertexstatus`).

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "engine/database.h"
#include "graph/generator.h"

using namespace dbspinner;

namespace {

void RunStatement(Database* db, const std::string& sql, bool timing,
                  bool stats) {
  auto begin = std::chrono::steady_clock::now();
  Result<QueryResult> result = db->Execute(sql);
  auto end = std::chrono::steady_clock::now();
  if (!result.ok()) {
    std::cout << result.status().ToString() << "\n";
    return;
  }
  if (!result->explain.empty()) {
    std::cout << result->explain;
  } else if (result->table->num_columns() > 0) {
    std::cout << result->table->ToString(200);
    std::cout << "(" << result->table->num_rows() << " rows)\n";
  } else if (result->rows_affected > 0) {
    std::cout << "OK, " << result->rows_affected << " rows affected\n";
  } else {
    std::cout << "OK\n";
  }
  if (stats) std::cout << result->stats.ToString() << "\n";
  if (timing) {
    double ms =
        std::chrono::duration<double, std::milli>(end - begin).count();
    std::cout << "Time: " << ms << " ms\n";
  }
}

void LoadDemo(Database* db) {
  graph::GraphSpec spec;
  spec.num_nodes = 1000;
  spec.num_edges = 5000;
  spec.seed = 11;
  graph::EdgeList g = graph::Generate(spec);
  Status st = graph::LoadIntoDatabase(db, g, 0.8, 5);
  if (!st.ok()) {
    std::cout << st.ToString() << "\n";
    return;
  }
  std::cout << "Loaded demo graph: tables edges(" << g.num_edges()
            << " rows) and vertexstatus(" << g.num_nodes << " rows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  bool timing = false;
  bool stats = false;

  std::istream* in = &std::cin;
  std::ifstream file;
  bool interactive = true;
  if (argc > 1) {
    file.open(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    in = &file;
    interactive = false;
  }

  if (interactive) {
    std::cout << "dbspinner shell — iterative CTEs in SQL. \\q to quit, "
                 "\\demo for sample data.\n";
  }

  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::cout << (buffer.empty() ? "dbsp> " : "  ... ");
    if (!std::getline(*in, line)) break;
    std::string trimmed = Trim(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
      if (trimmed == "\\q" || trimmed == "\\quit") break;
      if (trimmed == "\\timing") {
        timing = !timing;
        std::cout << "timing " << (timing ? "on" : "off") << "\n";
      } else if (trimmed == "\\stats") {
        stats = !stats;
        std::cout << "stats " << (stats ? "on" : "off") << "\n";
      } else if (trimmed == "\\tables") {
        for (const auto& name : db.catalog().TableNames()) {
          std::cout << name << "\n";
        }
      } else if (trimmed == "\\demo") {
        LoadDemo(&db);
      } else {
        std::cout << "unknown command: " << trimmed << "\n";
      }
      continue;
    }
    buffer += line + "\n";
    // Execute once the buffer holds a ';'-terminated statement.
    std::string t = Trim(buffer);
    if (!t.empty() && t.back() == ';') {
      RunStatement(&db, t, timing, stats);
      buffer.clear();
    }
  }
  // Run any trailing statement without ';' (file mode convenience).
  std::string t = Trim(buffer);
  if (!t.empty()) RunStatement(&db, t, timing, stats);
  return 0;
}
