// Quickstart: create tables, load data, and run an iterative CTE.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the core API surface: Database::Execute for DDL/DML/queries,
// QueryResult::table for results, and the WITH ITERATIVE syntax.

#include <cstdio>
#include <iostream>

#include "engine/database.h"

using dbspinner::Database;
using dbspinner::QueryResult;
using dbspinner::Result;

int main() {
  Database db;

  // 1. Regular SQL: a tiny social graph.
  auto check = [](Result<QueryResult> r) {
    if (!r.ok()) {
      std::cerr << "error: " << r.status().ToString() << "\n";
      std::exit(1);
    }
    return std::move(r).value();
  };

  check(db.Execute(
      "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)"));
  check(db.Execute(
      "INSERT INTO edges VALUES "
      "(1, 2, 0.5), (1, 3, 0.5), (2, 3, 1.0), (3, 1, 1.0), (4, 1, 1.0)"));

  QueryResult stats = check(db.Execute(
      "SELECT COUNT(*) AS edges, COUNT(DISTINCT src) AS sources FROM edges"));
  std::cout << "Loaded graph:\n" << stats.table->ToString() << "\n";

  // 2. An iterative CTE: PageRank-style score propagation for 10 rounds.
  //    (COALESCE keeps sources without incoming edges at delta 0.)
  QueryResult ranks = check(db.Execute(R"sql(
      WITH ITERATIVE scores (node, rank, delta) AS (
          SELECT src, 0, 0.15
          FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
        ITERATE
          SELECT scores.node,
                 scores.rank + scores.delta,
                 COALESCE(0.85 * SUM(inrank.delta * inedges.weight), 0)
          FROM scores
            LEFT JOIN edges AS inedges ON scores.node = inedges.dst
            LEFT JOIN scores AS inrank ON inrank.node = inedges.src
          GROUP BY scores.node, scores.rank + scores.delta
        UNTIL 10 ITERATIONS )
      SELECT node, rank FROM scores ORDER BY rank DESC)sql"));

  std::cout << "PageRank after 10 iterations:\n"
            << ranks.table->ToString() << "\n";
  std::cout << "Execution stats: " << ranks.stats.ToString() << "\n";

  // 3. A convergence-driven loop: stop when no row changes any more.
  QueryResult converged = check(db.Execute(R"sql(
      WITH ITERATIVE walk (node, hops) AS (
          SELECT src, CASE WHEN src = 4 THEN 0 ELSE 999 END
          FROM (SELECT src FROM edges UNION SELECT dst FROM edges)
        ITERATE
          SELECT walk.node,
                 LEAST(walk.hops,
                       COALESCE(MIN(nbr.hops + 1), 999))
          FROM walk
            LEFT JOIN edges e ON walk.node = e.dst
            LEFT JOIN walk AS nbr ON nbr.node = e.src
          GROUP BY walk.node, walk.hops
        UNTIL DELTA < 1 )
      SELECT node, hops FROM walk ORDER BY node)sql"));

  std::cout << "Hop counts from node 4 (ran until convergence):\n"
            << converged.table->ToString();
  return 0;
}
