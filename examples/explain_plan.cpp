// EXPLAIN walkthrough: prints the rewritten programs of the paper's queries.
//
//   $ ./build/examples/explain_plan
//
// The output of the PR query reproduces the logical plan of the paper's
// Table I: materialize R0, initialize the loop operator, materialize Ri,
// rename, loop check, final query. PR-VS additionally shows the hoisted
// __common#1 materialization (Fig 5), and FF shows the Qf predicate pushed
// into R0 (Fig 10 / §V-B).

#include <iostream>

#include "engine/database.h"
#include "engine/workloads.h"

using namespace dbspinner;

namespace {

void Show(Database* db, const std::string& title, const std::string& sql) {
  std::cout << "=== " << title << " ===\n";
  Result<QueryResult> result = db->Execute("EXPLAIN " + sql);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    std::exit(1);
  }
  std::cout << result->explain << "\n";
}

}  // namespace

int main() {
  Database db;
  for (const char* ddl :
       {"CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)",
        "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)"}) {
    auto r = db.Execute(ddl);
    if (!r.ok()) {
      std::cerr << r.status().ToString() << "\n";
      return 1;
    }
  }

  Show(&db, "PR (Fig 2 / Table I): rename path, metadata loop",
       workloads::PRQuery(10));
  Show(&db, "PR-VS (Fig 5): common result hoisted out of the loop",
       workloads::PRVSQuery(10));
  Show(&db, "SSSP (Fig 7): merge path (Ri has a WHERE clause)",
       workloads::SSSPQuery(10, 1, 10));
  Show(&db, "FF (Fig 6 / Fig 10): Qf predicate pushed into R0",
       workloads::FFQuery(25, 100));
  Show(&db, "FF with Delta termination", workloads::FFDeltaQuery(1, 100));

  std::cout << "=== Same PR-VS with all optimizations disabled ===\n";
  Database plain;
  plain.options().optimizer.enable_common_result = false;
  plain.options().optimizer.enable_rename_optimization = false;
  plain.options().optimizer.enable_cte_predicate_pushdown = false;
  for (const char* ddl :
       {"CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)",
        "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)"}) {
    auto r = plain.Execute(ddl);
    if (!r.ok()) return 1;
  }
  auto result = plain.Execute("EXPLAIN " + workloads::PRVSQuery(10));
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << result->explain << "\n";
  return 0;
}
