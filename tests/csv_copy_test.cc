// COPY TO / COPY FROM and the CSV round-trip engine.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/csv.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

class CopyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, "CREATE TABLE t (a BIGINT, b DOUBLE, s VARCHAR)");
    MustExecute(&db_,
                "INSERT INTO t VALUES (1, 1.5, 'plain'), "
                "(2, NULL, 'with,comma'), (3, 3.25, 'quote\"inside'), "
                "(4, 4.0, ''), (5, 5.0, NULL)");
  }
  Database db_;
};

TEST_F(CopyTest, RoundTripPreservesEverything) {
  std::string path = TempPath("copy_roundtrip.csv");
  auto out = db_.Execute("COPY t TO '" + path + "'");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->rows_affected, 5);

  MustExecute(&db_, "CREATE TABLE t2 (a BIGINT, b DOUBLE, s VARCHAR)");
  auto in = db_.Execute("COPY t2 FROM '" + path + "'");
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  EXPECT_EQ(in->rows_affected, 5);

  auto original = MustQuery(&db_, "SELECT * FROM t");
  auto copied = MustQuery(&db_, "SELECT * FROM t2");
  testing::ExpectSameRows(original, copied);

  // Empty string and NULL stayed distinct.
  EXPECT_EQ(MustQuery(&db_, "SELECT a FROM t2 WHERE s IS NULL")
                ->GetValue(0, 0)
                .int64_value(),
            5);
  EXPECT_EQ(MustQuery(&db_, "SELECT a FROM t2 WHERE s = ''")
                ->GetValue(0, 0)
                .int64_value(),
            4);
  std::remove(path.c_str());
}

TEST_F(CopyTest, CustomDelimiter) {
  std::string path = TempPath("copy_tab.csv");
  ASSERT_TRUE(db_.Execute("COPY t TO '" + path + "' DELIMITER '\t'").ok());
  MustExecute(&db_, "CREATE TABLE t3 (a BIGINT, b DOUBLE, s VARCHAR)");
  ASSERT_TRUE(db_.Execute("COPY t3 FROM '" + path + "' DELIMITER '\t'").ok());
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) FROM t3")->GetValue(0, 0)
                .int64_value(),
            5);
  std::remove(path.c_str());
}

TEST_F(CopyTest, ImportAppendsToExistingRows) {
  std::string path = TempPath("copy_append.csv");
  ASSERT_TRUE(db_.Execute("COPY t TO '" + path + "'").ok());
  ASSERT_TRUE(db_.Execute("COPY t FROM '" + path + "'").ok());
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) FROM t")->GetValue(0, 0)
                .int64_value(),
            10);
  std::remove(path.c_str());
}

TEST_F(CopyTest, ImportCastsToColumnTypes) {
  std::string path = TempPath("copy_types.csv");
  {
    std::ofstream f(path);
    f << "a,b,s\n42,2.75,\"hello\"\n";
  }
  ASSERT_TRUE(db_.Execute("COPY t FROM '" + path + "'").ok());
  auto row = MustQuery(&db_, "SELECT a, b FROM t WHERE a = 42");
  ASSERT_EQ(row->num_rows(), 1u);
  EXPECT_EQ(row->GetValue(0, 0).type(), TypeId::kInt64);
  EXPECT_DOUBLE_EQ(row->GetValue(0, 1).double_value(), 2.75);
  std::remove(path.c_str());
}

TEST_F(CopyTest, FieldCountMismatchFails) {
  std::string path = TempPath("copy_bad.csv");
  {
    std::ofstream f(path);
    f << "a,b,s\n1,2\n";
  }
  auto result = db_.Execute("COPY t FROM '" + path + "'");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST_F(CopyTest, BadCastFails) {
  std::string path = TempPath("copy_badcast.csv");
  {
    std::ofstream f(path);
    f << "a,b,s\nnot_a_number,2.0,x\n";
  }
  auto result = db_.Execute("COPY t FROM '" + path + "'");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
  std::remove(path.c_str());
}

TEST_F(CopyTest, MissingFileAndTable) {
  EXPECT_FALSE(db_.Execute("COPY t FROM '/no/such/file.csv'").ok());
  EXPECT_FALSE(db_.Execute("COPY nope TO '/tmp/x.csv'").ok());
}

TEST_F(CopyTest, QuotedNewlineRoundTrips) {
  MustExecute(&db_, "CREATE TABLE ml (s VARCHAR)");
  MustExecute(&db_, "INSERT INTO ml VALUES ('line1\nline2')");
  std::string path = TempPath("copy_newline.csv");
  ASSERT_TRUE(db_.Execute("COPY ml TO '" + path + "'").ok());
  MustExecute(&db_, "CREATE TABLE ml2 (s VARCHAR)");
  ASSERT_TRUE(db_.Execute("COPY ml2 FROM '" + path + "'").ok());
  auto t = MustQuery(&db_, "SELECT s FROM ml2");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).string_value(), "line1\nline2");
  std::remove(path.c_str());
}

TEST_F(CopyTest, CopyInsideTransactionRollsBack) {
  std::string path = TempPath("copy_tx.csv");
  ASSERT_TRUE(db_.Execute("COPY t TO '" + path + "'").ok());
  MustExecute(&db_, "BEGIN");
  ASSERT_TRUE(db_.Execute("COPY t FROM '" + path + "'").ok());
  MustExecute(&db_, "ROLLBACK");
  EXPECT_EQ(MustQuery(&db_, "SELECT COUNT(*) FROM t")->GetValue(0, 0)
                .int64_value(),
            5);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbspinner
