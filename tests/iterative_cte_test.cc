// Iterative CTE semantics: Algorithm 1, the loop operator's termination
// conditions (Metadata / Data / Delta), rename vs merge paths, and the
// paper's mandated runtime errors.

#include <gtest/gtest.h>

#include "plan/plan_printer.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

TEST(IterativeCteTest, SimpleCounterIterations) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL 10 ITERATIONS) "
                     "SELECT n FROM c");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 10);
}

TEST(IterativeCteTest, GeometricGrowth) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH ITERATIVE g (v) AS (SELECT 1.0 ITERATE "
                     "SELECT v * 2 FROM g UNTIL 8 ITERATIONS) "
                     "SELECT v FROM g");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).double_value(), 256.0);
}

TEST(IterativeCteTest, MultiRowWholeDatasetUpdate) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 1), (2, 2), (3, 3)");
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 10 FROM it UNTIL 3 ITERATIONS) "
                     "SELECT id, v FROM it ORDER BY id");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 31);
  EXPECT_EQ(t->GetValue(2, 1).int64_value(), 33);
}

TEST(IterativeCteTest, MergePathKeepsUnmatchedRows) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 1), (2, 2), (3, 3)");
  // WHERE id <= 2 makes Ri a partial update: merge semantics.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 10 FROM it WHERE id <= 2 "
                     "UNTIL 2 ITERATIONS) "
                     "SELECT id, v FROM it ORDER BY id");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 21);
  EXPECT_EQ(t->GetValue(1, 1).int64_value(), 22);
  EXPECT_EQ(t->GetValue(2, 1).int64_value(), 3);  // untouched by merges
}

TEST(IterativeCteTest, ExplicitKeyColumn) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (v BIGINT, id BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (5, 1), (6, 2)");
  // Key is the *second* column.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (v, id) KEY (id) AS "
                     "(SELECT v, id FROM base ITERATE "
                     "SELECT v + 1, id FROM it WHERE id = 2 "
                     "UNTIL 4 ITERATIONS) "
                     "SELECT v FROM it ORDER BY id");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 5);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 10);
}

TEST(IterativeCteTest, DuplicateWorkingKeyIsRuntimeError) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 1), (2, 2)");
  // The iterative part maps both rows to id = 1: ambiguous update (§II).
  auto result = db.Query(
      "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT 1, v + 1 FROM it WHERE v < 100 UNTIL 2 ITERATIONS) "
      "SELECT * FROM it");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(IterativeCteTest, UpdatesTermination) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 0), (2, 0), (3, 0)");
  // Each iteration updates all 3 rows (rename path counts full rows);
  // cumulative updates reach 9 >= 7 after iteration 3.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it UNTIL 7 UPDATES) "
                     "SELECT MAX(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 3);
}

TEST(IterativeCteTest, AnyDataTermination) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL ANY(n >= 5)) "
                     "SELECT n FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 5);
}

TEST(IterativeCteTest, AllDataTermination) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 0), (2, 3)");
  // Stops when every row satisfies v >= 4: row 2 reaches it first but the
  // loop continues until row 1 does too.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it UNTIL ALL(v >= 4)) "
                     "SELECT MIN(v), MAX(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 7);
}

TEST(IterativeCteTest, DeltaTermination) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v DOUBLE)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 0.0), (2, 6.0)");
  // v' = LEAST(v + 1, 10) converges to 10 for every row; DELTA < 1 stops
  // once an iteration changes no rows.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, LEAST(v + 1, 10) FROM it "
                     "UNTIL DELTA < 1) "
                     "SELECT MIN(v), MAX(v) FROM it");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).double_value(), 10.0);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).double_value(), 10.0);
}

TEST(IterativeCteTest, SchemaWideningIntToDouble) {
  Database db;
  // R0 yields INT, Ri yields DOUBLE: the CTE schema must widen.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 1 ITERATE "
                     "SELECT n / 2.0 FROM c UNTIL 2 ITERATIONS) "
                     "SELECT n FROM c");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).double_value(), 0.25);
}

TEST(IterativeCteTest, IterativeCteFeedsLaterCte) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL 4 ITERATIONS), "
                     "doubled AS (SELECT n * 2 AS n FROM c) "
                     "SELECT n FROM doubled");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 8);
}

TEST(IterativeCteTest, TwoIterativeCtes) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH ITERATIVE a (x) AS (SELECT 0 ITERATE "
                     "SELECT x + 1 FROM a UNTIL 3 ITERATIONS), "
                     "ITERATIVE b (y) AS (SELECT 0 ITERATE "
                     "SELECT y + 2 FROM b UNTIL 5 ITERATIONS) "
                     "SELECT a.x + b.y FROM a CROSS JOIN b");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 13);
}

TEST(IterativeCteTest, IterativeOverRegularCte) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1), (2), (3)");
  auto t = MustQuery(&db,
                     "WITH src AS (SELECT SUM(v) AS v FROM base), "
                     "ITERATIVE it (v) AS (SELECT v FROM src ITERATE "
                     "SELECT v + 1 FROM it UNTIL 2 ITERATIONS) "
                     "SELECT v FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 8);
}

TEST(IterativeCteTest, IterationGuardTrips) {
  Database db;
  db.options().max_iterations_guard = 50;
  auto result = db.Query(
      "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM c "
      "UNTIL ANY(n < 0)) SELECT n FROM c");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_iterations_guard"),
            std::string::npos);
}

TEST(IterativeCteTest, ExplainShowsTableOneShape) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  auto result = db.Execute(
      "EXPLAIN WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT id, v + 1 FROM it UNTIL 10 ITERATIONS) SELECT * FROM it");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& plan = result->explain;
  // The six-step Table I shape: materialize R0, init loop, materialize Ri,
  // rename, loop check, final.
  EXPECT_NE(plan.find("Materialize 'it'"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Initialize loop <<Type:metadata, N:10 iterations"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Materialize 'it__working'"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Rename 'it__working' to 'it'"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("if continue"), std::string::npos) << plan;
}

TEST(IterativeCteTest, RenameDisabledUsesMerge) {
  Database db;
  db.options().optimizer.enable_rename_optimization = false;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 1), (2, 2)");
  auto result = db.Execute(
      "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT id, v + 1 FROM it UNTIL 3 ITERATIONS) "
      "SELECT MAX(v) FROM it");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->GetValue(0, 0).int64_value(), 5);
  EXPECT_EQ(result->stats.renames, 0);
  EXPECT_GT(result->stats.merge_updates, 0);
}

TEST(IterativeCteTest, RenameEnabledSkipsDataMovement) {
  Database db;
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO base VALUES (1, 1)");
  auto result = db.Execute(
      "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT id, v + 1 FROM it UNTIL 3 ITERATIONS) SELECT v FROM it");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.renames, 3);
  EXPECT_EQ(result->stats.merge_updates, 0);
}

TEST(IterativeCteTest, StatsCountIterations) {
  Database db;
  auto result = db.Execute(
      "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM c "
      "UNTIL 7 ITERATIONS) SELECT n FROM c");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.loop_iterations, 7);
}

}  // namespace
}  // namespace dbspinner
