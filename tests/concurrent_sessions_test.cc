// Concurrent serving tests (DESIGN.md §10): N sessions hammering one
// Database must produce exactly the results serial execution produces, a
// cancelled/deadlined iterative query must die mid-loop with kCancelled and
// leave the engine healthy, and the admission scheduler must bound
// concurrency fairly. Runs under the TSan CI job (DBSPINNER_TSAN).

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "server/session.h"
#include "test_util.h"

namespace dbspinner {
namespace testing {
namespace {

using server::QueryScheduler;
using server::SchedulerOptions;
using server::SessionManager;

std::unique_ptr<Database> MakeGraphDb() {
  auto db = std::make_unique<Database>();
  graph::GraphSpec spec;
  spec.num_nodes = 200;
  spec.num_edges = 800;
  graph::EdgeList g = graph::Generate(spec);
  EXPECT_TRUE(graph::LoadIntoDatabase(db.get(), g, 0.75, 5).ok());
  return db;
}

// --- correctness under concurrency -----------------------------------------

TEST(ConcurrentSessions, ParallelReadsMatchSerialExecution) {
  std::unique_ptr<Database> db = MakeGraphDb();
  SessionManager mgr(db.get());

  // A mixed read workload: two iterative workloads and a join-aggregate.
  const std::vector<std::string> queries = {
      workloads::PRQuery(5),
      workloads::SSSPQuery(8, 1, 50),
      "SELECT e1.src, COUNT(*) FROM edges e1 JOIN edges e2 "
      "ON e1.dst = e2.src GROUP BY e1.src",
  };

  // Serial baseline on the default session.
  std::vector<TablePtr> expected;
  for (const auto& q : queries) expected.push_back(MustQuery(db.get(), q));

  constexpr int kSessions = 4;
  constexpr int kReps = 3;
  std::vector<std::shared_ptr<server::Session>> sessions;
  for (int s = 0; s < kSessions; ++s) sessions.push_back(mgr.CreateSession());

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // results[s][r*queries.size() + q]
  std::vector<std::vector<TablePtr>> results(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (int rep = 0; rep < kReps; ++rep) {
        for (const auto& q : queries) {
          Result<QueryResult> r = sessions[s]->Execute(q);
          if (!r.ok()) {
            ++failures;
            return;
          }
          results[s].push_back(r->table);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0);
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(results[s].size(), queries.size() * kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      for (size_t q = 0; q < queries.size(); ++q) {
        ExpectSameRows(expected[q], results[s][rep * queries.size() + q]);
      }
    }
  }
}

TEST(ConcurrentSessions, ReadersUnaffectedByConcurrentWriters) {
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT, v BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (0, 0)");
  SessionManager mgr(&db);

  constexpr int kWriters = 2;
  constexpr int kRowsEach = 40;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto s = mgr.CreateSession();
      for (int i = 0; i < kRowsEach; ++i) {
        auto r = s->Execute("INSERT INTO t VALUES (" +
                            std::to_string(w * kRowsEach + i + 1) + ", 1)");
        if (!r.ok()) ++failures;
      }
    });
  }
  // Readers: every snapshot must be internally consistent — COUNT(*) and
  // COUNT(id) come from the same pinned version, so they always agree.
  for (int rdr = 0; rdr < 2; ++rdr) {
    threads.emplace_back([&] {
      auto s = mgr.CreateSession();
      for (int i = 0; i < 30; ++i) {
        auto r = s->Execute("SELECT COUNT(*), COUNT(id) FROM t");
        if (!r.ok()) {
          ++failures;
          return;
        }
        int64_t c1 = r->table->GetValue(0, 0).int64_value();
        int64_t c2 = r->table->GetValue(0, 1).int64_value();
        if (c1 != c2) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0);
  TablePtr final_count = MustQuery(&db, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(final_count->GetValue(0, 0).int64_value(),
            1 + kWriters * kRowsEach);
}

TEST(ConcurrentSessions, TransactionBlocksOtherWritersUntilRollback) {
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  SessionManager mgr(&db);

  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  DBSP_ASSERT_OK(a->Execute("BEGIN").status());
  DBSP_ASSERT_OK(a->Execute("INSERT INTO t VALUES (1)").status());

  // B's write must wait for A's transaction, then land on the rolled-back
  // state.
  std::thread writer([&] { (void)b->Execute("INSERT INTO t VALUES (2)"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  DBSP_ASSERT_OK(a->Execute("ROLLBACK").status());
  writer.join();

  TablePtr rows = MustQuery(&db, "SELECT id FROM t");
  ASSERT_EQ(rows->num_rows(), 1u);
  EXPECT_EQ(rows->GetValue(0, 0).int64_value(), 2);
}

TEST(ConcurrentSessions, CommitRunsWhileAdmissionSlotsBlockOnCommitLock) {
  // Regression: with one admission slot, a writer from another session is
  // admitted and then blocks on the commit lock held by A's transaction. If
  // A's COMMIT had to pass admission it would queue behind that writer
  // forever — admission slots occupied by waiters only the queued COMMIT
  // can unblock. The in-transaction admission bypass breaks the cycle.
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  SchedulerOptions sched;
  sched.max_concurrent_queries = 1;
  SessionManager mgr(&db, sched);

  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  DBSP_ASSERT_OK(a->Execute("BEGIN").status());
  DBSP_ASSERT_OK(a->Execute("INSERT INTO t VALUES (1)").status());

  // B occupies the only admission slot, then blocks on the commit lock.
  std::thread writer([&] { (void)b->Execute("INSERT INTO t VALUES (2)"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  DBSP_ASSERT_OK(a->Execute("COMMIT").status());
  writer.join();

  TablePtr rows = MustQuery(&db, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(rows->GetValue(0, 0).int64_value(), 2);
}

TEST(ConcurrentSessions, CommitOnDifferentThreadThanBegin) {
  // The commit lock is thread-agnostic: BEGIN on one thread, COMMIT on
  // another (a connection handler may hop threads between statements).
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  SessionManager mgr(&db);
  auto s = mgr.CreateSession();

  std::thread t1([&] {
    DBSP_ASSERT_OK(s->Execute("BEGIN").status());
    DBSP_ASSERT_OK(s->Execute("INSERT INTO t VALUES (7)").status());
  });
  t1.join();
  std::thread t2([&] { DBSP_ASSERT_OK(s->Execute("COMMIT").status()); });
  t2.join();

  TablePtr rows = MustQuery(&db, "SELECT id FROM t");
  ASSERT_EQ(rows->num_rows(), 1u);
  EXPECT_EQ(rows->GetValue(0, 0).int64_value(), 7);
}

TEST(ConcurrentSessions, WriterBlockedOnTransactionIsCancellable) {
  // A writer queued behind an open transaction must die with kCancelled
  // when its deadline fires: the commit-lock wait polls the token instead
  // of blocking uninterruptibly.
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  SessionManager mgr(&db);

  auto a = mgr.CreateSession();
  auto b = mgr.CreateSession();
  DBSP_ASSERT_OK(a->Execute("BEGIN").status());

  Result<QueryResult> blocked =
      b->ExecuteWithDeadline("INSERT INTO t VALUES (1)", 30'000);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kCancelled);

  DBSP_ASSERT_OK(a->Execute("ROLLBACK").status());
  // The engine is healthy: the cancelled writer left no lock held.
  DBSP_ASSERT_OK(b->Execute("INSERT INTO t VALUES (2)").status());
  TablePtr rows = MustQuery(&db, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(rows->GetValue(0, 0).int64_value(), 1);
}

TEST(ConcurrentSessions, RegisterTableSerializesWithOpenTransaction) {
  // RegisterTable takes the commit lock: it must wait out an open
  // transaction instead of publishing a catalog version under it.
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  SessionManager mgr(&db);
  auto a = mgr.CreateSession();
  DBSP_ASSERT_OK(a->Execute("BEGIN").status());

  std::atomic<bool> registered{false};
  std::thread reg([&] {
    Schema schema;
    schema.AddColumn("x", TypeId::kInt64);
    DBSP_ASSERT_OK(db.RegisterTable("ext", Table::Make(schema)));
    registered = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(registered.load());

  DBSP_ASSERT_OK(a->Execute("ROLLBACK").status());
  reg.join();
  EXPECT_TRUE(registered.load());
  // ROLLBACK's catalog restore and the registration both survived.
  EXPECT_TRUE(db.catalog().Exists("ext"));
  EXPECT_TRUE(db.catalog().Exists("t"));
}

TEST(ConcurrentSessions, PerSessionOptionOverridesAreIsolated) {
  std::unique_ptr<Database> db = MakeGraphDb();
  SessionManager mgr(db.get());

  auto tweaked = mgr.CreateSession();
  auto plain = mgr.CreateSession();
  tweaked->options().optimizer.enable_rename_optimization = false;
  tweaked->options().num_workers = 2;

  TablePtr expected = MustQuery(db.get(), workloads::PRQuery(4));
  QueryResult from_tweaked = Unwrap(tweaked->Execute(workloads::PRQuery(4)));
  QueryResult from_plain = Unwrap(plain->Execute(workloads::PRQuery(4)));
  ExpectSameRows(expected, from_tweaked.table);
  ExpectSameRows(expected, from_plain.table);
  // The default session's options were not touched by the overrides.
  EXPECT_TRUE(db->options().optimizer.enable_rename_optimization);
  EXPECT_EQ(db->options().num_workers, 1);
}

// --- cancellation and deadlines --------------------------------------------

TEST(ConcurrentSessions, CancelKillsIterativeQueryMidLoop) {
  std::unique_ptr<Database> db = MakeGraphDb();
  SessionManager mgr(db.get());
  auto s = mgr.CreateSession();

  // An UNTIL-bounded loop far larger than could finish quickly: the cancel
  // must cut it off at a step boundary mid-flight.
  const std::string long_query = workloads::PRQuery(100000);

  std::atomic<bool> started{false};
  Result<QueryResult> result = Status::Internal("query never ran");
  std::thread runner([&] {
    started = true;
    result = s->Execute(long_query);
  });
  while (!started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s->CancelCurrent();
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  // The engine is not corrupted: the same session immediately serves a
  // correct query, and the cancelled loop leaked nothing into the catalog.
  TablePtr expected = MustQuery(db.get(), workloads::PRQuery(3));
  TablePtr after = Unwrap(s->Execute(workloads::PRQuery(3))).table;
  ExpectSameRows(expected, after);
}

// Mid-morsel cancellation: with a 1-row morsel size the vectorized pipeline
// checks the cancellation token between every pair of rows, so a cancel
// lands inside a single operator's scan rather than only at step
// boundaries. The query must still die with kCancelled and leak nothing.
TEST(ConcurrentSessions, CancelLandsAtMorselBoundaryInsidePipeline) {
  std::unique_ptr<Database> db = MakeGraphDb();
  db->options().optimizer.vectorized_exec = true;
  db->options().morsel_size = 1;
  SessionManager mgr(db.get());
  auto s = mgr.CreateSession();

  const std::string long_query = workloads::PRQuery(100000);

  std::atomic<bool> started{false};
  Result<QueryResult> result = Status::Internal("query never ran");
  std::thread runner([&] {
    started = true;
    result = s->Execute(long_query);
  });
  while (!started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s->CancelCurrent();
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  // The session serves a correct query afterwards, and the extra per-morsel
  // checks were really taken (far more than the per-step count alone).
  TablePtr expected = MustQuery(db.get(), workloads::PRQuery(3));
  auto after = Unwrap(s->Execute(workloads::PRQuery(3)));
  ExpectSameRows(expected, after.table);
  EXPECT_GT(after.stats.cancel_checks, 0);
  EXPECT_GT(after.stats.morsels_dispatched, after.stats.pipelines_run);
}

TEST(ConcurrentSessions, DeadlineExpiresIterativeQuery) {
  std::unique_ptr<Database> db = MakeGraphDb();
  SessionManager mgr(db.get());
  auto s = mgr.CreateSession();

  Result<QueryResult> result =
      s->ExecuteWithDeadline(workloads::PRQuery(100000), /*micros=*/50000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  // Subsequent statements on the session run normally (the expired token
  // was statement-scoped).
  TablePtr t = Unwrap(s->Execute("SELECT COUNT(*) FROM edges")).table;
  EXPECT_EQ(t->num_rows(), 1u);
}

// --- admission control (direct scheduler tests: deterministic) -------------

TEST(QuerySchedulerTest, RejectsWhenQueueFull) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 0;
  QueryScheduler sched(opts);

  CancellationToken inert;
  Result<QueryScheduler::Slot> first = sched.Admit(1, inert);
  DBSP_ASSERT_OK(first.status());
  Result<QueryScheduler::Slot> second = sched.Admit(2, inert);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(sched.stats().rejected_queue_full, 1);

  // Releasing the slot makes room again.
  first = Status::Unavailable("drop");  // destroys the held slot
  Result<QueryScheduler::Slot> third = sched.Admit(2, inert);
  DBSP_ASSERT_OK(third.status());
}

TEST(QuerySchedulerTest, CancelledWhileQueuedReturnsCancelled) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 1;
  opts.max_queue_depth = 4;
  QueryScheduler sched(opts);

  CancellationToken inert;
  Result<QueryScheduler::Slot> holder = sched.Admit(1, inert);
  DBSP_ASSERT_OK(holder.status());

  CancellationToken cancel = CancellationToken::Make();
  Result<QueryScheduler::Slot> waited = Status::Internal("never admitted");
  std::thread waiter([&] { waited = sched.Admit(2, cancel); });
  // Let it enqueue, then kill it while it waits.
  while (sched.stats().queued < 1) std::this_thread::yield();
  cancel.RequestCancel();
  waiter.join();

  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(sched.stats().cancelled_while_queued, 1);
}

TEST(QuerySchedulerTest, FairnessPrefersLeastLoadedSession) {
  SchedulerOptions opts;
  opts.max_concurrent_queries = 2;
  opts.max_queue_depth = 4;
  QueryScheduler sched(opts);

  CancellationToken inert;
  // Session 1 occupies both slots.
  Result<QueryScheduler::Slot> a1 = sched.Admit(1, inert);
  Result<QueryScheduler::Slot> a2 = sched.Admit(1, inert);
  DBSP_ASSERT_OK(a1.status());
  DBSP_ASSERT_OK(a2.status());

  // Session 1 queues a third query FIRST, then session 2 queues its first.
  std::atomic<int> order{0};
  std::atomic<int> first_granted{0};
  std::thread t1([&] {
    Result<QueryScheduler::Slot> s = sched.Admit(1, inert);
    int expected = 0;
    first_granted.compare_exchange_strong(expected, 1);
    (void)s;
    (void)order;
  });
  while (sched.stats().queued < 1) std::this_thread::yield();
  std::thread t2([&] {
    Result<QueryScheduler::Slot> s = sched.Admit(2, inert);
    int expected = 0;
    first_granted.compare_exchange_strong(expected, 2);
    // Hold briefly so t1 cannot win by recycling this slot instantly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)s;
  });
  while (sched.stats().queued < 2) std::this_thread::yield();

  // Free ONE of session 1's slots: session 2 (0 running) must beat session
  // 1's third query (1 still running) despite arriving later.
  a1 = Status::Unavailable("drop");
  t2.join();
  a2 = Status::Unavailable("drop");
  t1.join();

  EXPECT_EQ(first_granted.load(), 2);
  EXPECT_EQ(sched.stats().admitted, 4);
}

TEST(ConcurrentSessions, QueueWaitSurfacesInStats) {
  SchedulerOptions sched;
  sched.max_concurrent_queries = 1;
  Database db;
  MustExecute(&db, "CREATE TABLE t (id BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (1), (2), (3)");
  SessionManager mgr(&db, sched);

  // With one slot, some of these concurrent queries must queue; the waits
  // show up in the scheduler counters and in per-query ExecStats.
  constexpr int kThreads = 3;
  std::atomic<int64_t> max_queue_wait{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      auto s = mgr.CreateSession();
      for (int r = 0; r < 5; ++r) {
        auto res = s->Execute("SELECT COUNT(*) FROM t");
        if (!res.ok()) {
          ++failures;
          return;
        }
        int64_t w = res->stats.queue_wait_us;
        int64_t cur = max_queue_wait.load();
        while (w > cur && !max_queue_wait.compare_exchange_weak(cur, w)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(failures.load(), 0);
  server::SchedulerStats stats = mgr.scheduler().stats();
  EXPECT_EQ(stats.admitted, kThreads * 5);
  // At least one query should have queued behind the single slot; its wait
  // must be accounted both globally and in its own stats.
  if (stats.queued > 0) {
    EXPECT_GT(stats.total_queue_wait_us, 0);
    EXPECT_GT(max_queue_wait.load(), 0);
  }
}

}  // namespace
}  // namespace testing
}  // namespace dbspinner
