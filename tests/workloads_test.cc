// Integration tests: the paper's PR / PR-VS / SSSP / SSSP-VS / FF queries
// executed through SQL must match the reference implementations exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "graph/reference_algorithms.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using graph::EdgeList;
using testing::MustQuery;

constexpr int kIters = 5;

class WorkloadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphSpec spec;
    spec.kind = graph::GraphKind::kPreferentialAttachment;
    spec.num_nodes = 200;
    spec.num_edges = 800;
    spec.seed = 123;
    graph_ = graph::Generate(spec);
    ASSERT_TRUE(graph::LoadIntoDatabase(&db_, graph_, 0.8, 99).ok());
    auto vs = db_.catalog().Get("vertexstatus");
    ASSERT_TRUE(vs.ok());
    status_ = graph::StatusMap(*(*vs)->table);
  }

  Database db_;
  EdgeList graph_;
  std::unordered_map<int64_t, int64_t> status_;
};

TEST_F(WorkloadsTest, PageRankMatchesReference) {
  auto sql = MustQuery(&db_, workloads::PRQuery(kIters));
  auto ref = graph::ReferencePageRank(graph_, kIters);
  std::map<int64_t, std::optional<double>> expected;
  for (const auto& row : ref) expected[row.node] = row.rank;

  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    Value rank = sql->GetValue(i, 1);
    ASSERT_TRUE(expected.count(node)) << "unexpected node " << node;
    const auto& want = expected[node];
    ASSERT_EQ(rank.is_null(), !want.has_value()) << "node " << node;
    if (want.has_value()) {
      EXPECT_NEAR(rank.AsDouble(), *want, 1e-9) << "node " << node;
    }
  }
}

TEST_F(WorkloadsTest, PageRankVsMatchesReference) {
  auto sql = MustQuery(&db_, workloads::PRVSQuery(kIters));
  auto ref = graph::ReferencePageRank(graph_, kIters, &status_);
  std::map<int64_t, std::optional<double>> expected;
  for (const auto& row : ref) expected[row.node] = row.rank;

  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    Value rank = sql->GetValue(i, 1);
    const auto& want = expected[node];
    ASSERT_EQ(rank.is_null(), !want.has_value()) << "node " << node;
    if (want.has_value()) {
      EXPECT_NEAR(rank.AsDouble(), *want, 1e-9) << "node " << node;
    }
  }
}

TEST_F(WorkloadsTest, SsspMatchesReference) {
  // Check the full distance table via a modified Qf.
  std::string sql_text = workloads::SSSPQuery(kIters, 1, 2);
  // Replace the final projection with the full table.
  size_t pos = sql_text.rfind("SELECT distance");
  sql_text = sql_text.substr(0, pos) +
             "SELECT node, distance, delta FROM sssp";
  auto sql = MustQuery(&db_, sql_text);
  auto ref = graph::ReferenceSssp(graph_, kIters, 1);
  std::map<int64_t, std::pair<double, double>> expected;
  for (const auto& row : ref) {
    expected[row.node] = {row.distance, row.delta};
  }
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    EXPECT_NEAR(sql->GetValue(i, 1).AsDouble(), expected[node].first, 1e-9)
        << "distance of node " << node;
    EXPECT_NEAR(sql->GetValue(i, 2).AsDouble(), expected[node].second, 1e-9)
        << "delta of node " << node;
  }
}

TEST_F(WorkloadsTest, SsspVsMatchesReference) {
  std::string sql_text = workloads::SSSPVSQuery(kIters, 1, 2);
  size_t pos = sql_text.rfind("SELECT distance");
  sql_text = sql_text.substr(0, pos) + "SELECT node, distance FROM sssp";
  auto sql = MustQuery(&db_, sql_text);
  auto ref = graph::ReferenceSssp(graph_, kIters, 1, &status_);
  std::map<int64_t, double> expected;
  for (const auto& row : ref) expected[row.node] = row.distance;
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    EXPECT_NEAR(sql->GetValue(i, 1).AsDouble(), expected[node], 1e-9)
        << "node " << node;
  }
}

TEST_F(WorkloadsTest, ForecastMatchesReference) {
  // Use mod_x = 1 (keep everything) and a large limit to compare all rows.
  auto sql = MustQuery(&db_, workloads::FFQuery(kIters, 1, 1000000));
  auto ref = graph::ReferenceForecast(graph_, kIters);
  std::map<int64_t, double> expected;
  for (const auto& row : ref) expected[row.node] = row.friends;
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    EXPECT_NEAR(sql->GetValue(i, 1).AsDouble(), expected[node],
                1e-6 * std::max(1.0, std::fabs(expected[node])))
        << "node " << node;
  }
}

TEST_F(WorkloadsTest, ForecastSelectivityFilters) {
  auto all = MustQuery(&db_, workloads::FFQuery(2, 1, 1000000));
  auto tenth = MustQuery(&db_, workloads::FFQuery(2, 10, 1000000));
  EXPECT_LT(tenth->num_rows(), all->num_rows());
  for (size_t i = 0; i < tenth->num_rows(); ++i) {
    EXPECT_EQ(tenth->GetValue(i, 0).int64_value() % 10, 0);
  }
}

TEST_F(WorkloadsTest, FfDeltaQueryConverges) {
  // FF with nodes whose growth ratio is exactly 1 stabilizes; ratio > 1
  // grows forever. Guard with a sane bound: the query must terminate via
  // DELTA only if it converges — use a graph where all src % 10 == 0 so
  // friendsprev == friends initially (ratio 1, immediate convergence).
  Database db;
  graph::EdgeList g;
  g.num_nodes = 30;
  for (int64_t s = 10; s <= 30; s += 10) {
    for (int64_t d = 1; d <= 3; ++d) {
      if (s != d) {
        g.src.push_back(s);
        g.dst.push_back(d);
      }
    }
  }
  g.weight.assign(g.src.size(), 1.0);
  ASSERT_TRUE(graph::LoadIntoDatabase(&db, g, 0.8, 1).ok());
  auto t = MustQuery(&db, workloads::FFDeltaQuery(1, 1));
  EXPECT_GT(t->num_rows(), 0u);
}

TEST_F(WorkloadsTest, SsspDataConditionTerminates) {
  auto t = MustQuery(&db_, workloads::SSSPDataConditionQuery(1, 2));
  ASSERT_EQ(t->num_rows(), 1u);
}

TEST_F(WorkloadsTest, SsspDistancesAreShortestPathsOnGrid) {
  // On a small grid with unit-ish weights, enough iterations give true
  // shortest path lengths (Bellman-Ford rounds).
  Database db;
  graph::GraphSpec spec;
  spec.kind = graph::GraphKind::kGrid;
  spec.num_nodes = 16;  // 4x4 grid, ids 1..16
  graph_ = graph::Generate(spec);
  ASSERT_TRUE(graph::LoadIntoDatabase(&db, graph_, -1).ok());
  std::string q = workloads::SSSPQuery(12, 1, 16);
  auto t = MustQuery(&db, q);
  ASSERT_EQ(t->num_rows(), 1u);
  // Path 1 -> 16 takes 6 hops; every edge weight is 1/outdeg(src) > 0.
  EXPECT_LT(t->GetValue(0, 0).AsDouble(), 9999999.0);
}

}  // namespace
}  // namespace dbspinner
