// Tests for the extended SQL surface: EXCEPT / INTERSECT, LIMIT OFFSET,
// CREATE TABLE AS SELECT, and LIKE.

#include <gtest/gtest.h>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, "CREATE TABLE a (x BIGINT)");
    MustExecute(&db_, "CREATE TABLE b (x BIGINT)");
    MustExecute(&db_, "INSERT INTO a VALUES (1), (2), (2), (3), (4)");
    MustExecute(&db_, "INSERT INTO b VALUES (2), (4), (5)");
  }
  Database db_;
};

TEST_F(SqlFeaturesTest, Except) {
  auto t = MustQuery(&db_, "SELECT x FROM a EXCEPT SELECT x FROM b "
                           "ORDER BY x");
  ASSERT_EQ(t->num_rows(), 2u);  // {1, 3}, deduped
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 3);
}

TEST_F(SqlFeaturesTest, Intersect) {
  auto t = MustQuery(&db_, "SELECT x FROM a INTERSECT SELECT x FROM b "
                           "ORDER BY x");
  ASSERT_EQ(t->num_rows(), 2u);  // {2, 4}
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 4);
}

TEST_F(SqlFeaturesTest, ExceptDedupesLeft) {
  auto t = MustQuery(&db_, "SELECT x FROM a EXCEPT SELECT x FROM b "
                           "WHERE x > 100");
  EXPECT_EQ(t->num_rows(), 4u);  // distinct {1,2,3,4}
}

TEST_F(SqlFeaturesTest, SetOpsChain) {
  // (a EXCEPT b) INTERSECT a  ==  {1, 3}
  auto t = MustQuery(&db_,
                     "SELECT x FROM a EXCEPT SELECT x FROM b "
                     "INTERSECT SELECT x FROM a ORDER BY x");
  ASSERT_EQ(t->num_rows(), 2u);
}

TEST_F(SqlFeaturesTest, ExceptWidensTypes) {
  MustExecute(&db_, "CREATE TABLE d (x DOUBLE)");
  MustExecute(&db_, "INSERT INTO d VALUES (2.0)");
  auto t = MustQuery(&db_, "SELECT x FROM a EXCEPT SELECT x FROM d");
  EXPECT_EQ(t->schema().column(0).type, TypeId::kDouble);
  EXPECT_EQ(t->num_rows(), 3u);  // {1, 3, 4}
}

TEST_F(SqlFeaturesTest, LimitOffset) {
  auto t = MustQuery(&db_, "SELECT x FROM a ORDER BY x LIMIT 2 OFFSET 1");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 2);
}

TEST_F(SqlFeaturesTest, OffsetOnly) {
  auto t = MustQuery(&db_, "SELECT x FROM a ORDER BY x OFFSET 3");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 3);
}

TEST_F(SqlFeaturesTest, OffsetPastEnd) {
  auto t = MustQuery(&db_, "SELECT x FROM a LIMIT 10 OFFSET 100");
  EXPECT_EQ(t->num_rows(), 0u);
}

TEST_F(SqlFeaturesTest, CreateTableAsSelect) {
  MustExecute(&db_,
              "CREATE TABLE doubled AS SELECT x * 2 AS x2 FROM a WHERE x < 3");
  auto t = MustQuery(&db_, "SELECT x2 FROM doubled ORDER BY x2");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
  EXPECT_EQ(t->schema().column(0).name, "x2");
}

TEST_F(SqlFeaturesTest, CtasReportsRowCount) {
  auto result = db_.Execute("CREATE TABLE copy AS SELECT x FROM a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 5);
}

TEST_F(SqlFeaturesTest, CtasFromIterativeCte) {
  // An iterative CTE result persisted as a table: the "use the result as
  // input to another query" workflow without re-running the loop.
  MustExecute(&db_,
              "CREATE TABLE grown AS "
              "WITH ITERATIVE g (v) AS (SELECT 1 ITERATE SELECT v * 2 FROM g "
              "UNTIL 5 ITERATIONS) SELECT v FROM g");
  auto t = MustQuery(&db_, "SELECT v FROM grown");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 32);
}

TEST_F(SqlFeaturesTest, CtasDuplicateNameFails) {
  auto result = db_.Execute("CREATE TABLE a AS SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

class LikeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, "CREATE TABLE s (v VARCHAR)");
    MustExecute(&db_,
                "INSERT INTO s VALUES ('apple'), ('apricot'), ('banana'), "
                "('grape'), (NULL)");
  }
  Database db_;
};

TEST_F(LikeTest, PrefixPattern) {
  auto t = MustQuery(&db_, "SELECT v FROM s WHERE v LIKE 'ap%' ORDER BY v");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).string_value(), "apple");
}

TEST_F(LikeTest, SuffixAndInfix) {
  EXPECT_EQ(MustQuery(&db_, "SELECT v FROM s WHERE v LIKE '%ana'")->num_rows(),
            1u);
  EXPECT_EQ(MustQuery(&db_, "SELECT v FROM s WHERE v LIKE '%ap%'")->num_rows(),
            3u);
}

TEST_F(LikeTest, UnderscoreMatchesOneChar) {
  EXPECT_EQ(
      MustQuery(&db_, "SELECT v FROM s WHERE v LIKE 'gr_pe'")->num_rows(),
      1u);
  EXPECT_EQ(
      MustQuery(&db_, "SELECT v FROM s WHERE v LIKE 'gr_p'")->num_rows(), 0u);
}

TEST_F(LikeTest, NotLike) {
  // NULL rows fail both LIKE and NOT LIKE.
  EXPECT_EQ(
      MustQuery(&db_, "SELECT v FROM s WHERE v NOT LIKE 'ap%'")->num_rows(),
      2u);
}

TEST_F(LikeTest, ExactMatchNoWildcards) {
  EXPECT_EQ(
      MustQuery(&db_, "SELECT v FROM s WHERE v LIKE 'apple'")->num_rows(),
      1u);
}

TEST_F(LikeTest, PercentBacktracking) {
  MustExecute(&db_, "INSERT INTO s VALUES ('aXbXbXc')");
  EXPECT_EQ(
      MustQuery(&db_, "SELECT v FROM s WHERE v LIKE 'a%b%c'")->num_rows(),
      1u);
}

TEST_F(LikeTest, LikeOnNumberFails) {
  MustExecute(&db_, "CREATE TABLE n (x BIGINT)");
  auto result = db_.Query("SELECT x FROM n WHERE x LIKE '1%'");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

}  // namespace
}  // namespace dbspinner
