// Kill-and-restart durability harness (DESIGN.md §12).
//
// The system under test is the whole commit protocol: extents-before-WAL-
// before-publish, atomic manifest swaps, and durable executor checkpoints.
// The proof is out-of-process: a helper binary (tools/crash_child) loads a
// graph into a persistent database, then runs an iterative SSSP with an
// abort site armed — the storage layer SIGKILLs the process the moment the
// fault schedule's arrival is reached, i.e. mid-WAL-append, mid-extent-
// flush, or between a manifest's tmp write and its rename. The parent then
// re-runs the same query against the survived directory and requires the
// full distance table to equal the fault-free golden run, with the resumed
// run's `restores` counter recording recovery when a durable checkpoint was
// available.
//
// SIGKILL does not drop the page cache, so a killed write is simulated by
// dying at operation *entry* (see FaultInjectionConfig::abort_site); torn
// tails are covered separately by explicit truncation in codec/WAL unit
// tests (codec_test.cc, storage additions in buffer_manager_test.cc).
//
// Skipped under TSan (tests/CMakeLists.txt): the harness forks dozens of
// children and TSan's interceptors make that pathologically slow; the same
// binary runs under ASan/UBSan in CI.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace {

std::string ChildBinary() {
  const char* env = std::getenv("DBSP_CRASH_CHILD");
  if (env != nullptr && *env != '\0') return env;
  return "tools/crash_child/crash_child";  // ctest runs from the build dir
}

struct ChildResult {
  bool ran = false;     ///< process was spawned and reaped
  bool killed = false;  ///< died by SIGKILL (the armed abort site fired)
  int exit_code = -1;   ///< when !killed
  std::vector<std::string> rows;  ///< sorted "row:" lines
  std::string stats;              ///< the "stats:" line
};

ChildResult RunChild(const std::string& args) {
  ChildResult r;
  const std::string cmd = ChildBinary() + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char line[4096];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    if (s.rfind("row: ", 0) == 0) {
      r.rows.push_back(s.substr(5));
    } else if (s.rfind("stats: ", 0) == 0) {
      r.stats = s.substr(7);
    }
  }
  int status = pclose(pipe);
  if (status < 0) return r;
  r.ran = true;
  if (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) {
    r.killed = true;
  } else if (WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
    // popen goes through /bin/sh, which reports a SIGKILLed child as 137.
    if (r.exit_code == 128 + SIGKILL) r.killed = true;
  }
  return r;
}

int64_t StatCounter(const std::string& stats, const std::string& key) {
  auto pos = stats.find(key + "=");
  if (pos == std::string::npos) return -1;
  return std::strtoll(stats.c_str() + pos + key.size() + 1, nullptr, 10);
}

/// One kill point: arm `site`, let it complete `hits` arrivals, die
/// entering the next one.
struct KillPoint {
  const char* site;
  int64_t hits;
};

// >= 20 points spread over all three storage abort sites, front-loaded on
// the WAL append (every durable operation crosses it) and covering the
// rarer extent-flush and manifest-swap arrivals.
const KillPoint kKillPoints[] = {
    {"storage.wal.append", 0},    {"storage.wal.append", 1},
    {"storage.wal.append", 2},    {"storage.wal.append", 3},
    {"storage.wal.append", 4},    {"storage.wal.append", 5},
    {"storage.wal.append", 6},    {"storage.wal.append", 7},
    {"storage.wal.append", 9},    {"storage.wal.append", 11},
    {"storage.extent.flush", 0},  {"storage.extent.flush", 1},
    {"storage.extent.flush", 3},  {"storage.extent.flush", 7},
    {"storage.extent.flush", 15}, {"storage.extent.flush", 31},
    {"storage.extent.flush", 63}, {"storage.manifest.swap", 0},
    {"storage.manifest.swap", 1}, {"storage.manifest.swap", 2},
};

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::error_code ec;
    root_ = std::filesystem::temp_directory_path() /
            ("dbsp_durability_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_, ec);
    std::filesystem::create_directories(root_);
    template_dir_ = (root_ / "template").string();
    ChildResult init = RunChild("init " + template_dir_);
    ASSERT_TRUE(init.ran);
    ASSERT_FALSE(init.killed);
    ASSERT_EQ(init.exit_code, 0) << "crash_child init failed";
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  /// Copies the loaded template database into a fresh working directory.
  std::string FreshWorkDir(const std::string& label) {
    std::string dir = (root_ / label).string();
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    std::filesystem::copy(template_dir_, dir,
                          std::filesystem::copy_options::recursive, ec);
    EXPECT_FALSE(ec) << "copying template database failed";
    return dir;
  }

  void SweepKillPoints(int workers) {
    const std::string w = std::to_string(workers);

    // Golden: the fault-free answer, computed on an untouched copy.
    std::string golden_dir = FreshWorkDir("golden_w" + w);
    ChildResult golden = RunChild("run " + golden_dir + " none 0 " + w);
    ASSERT_TRUE(golden.ran);
    ASSERT_FALSE(golden.killed);
    ASSERT_EQ(golden.exit_code, 0);
    ASSERT_GT(golden.rows.size(), 100u) << "golden run produced no result";
    ASSERT_EQ(StatCounter(golden.stats, "restores"), 0);
    ASSERT_GT(StatCounter(golden.stats, "durable"), 0)
        << "durable checkpointing never engaged: " << golden.stats;

    int killed = 0;
    int resumed = 0;
    for (size_t i = 0; i < std::size(kKillPoints); ++i) {
      const KillPoint& kp = kKillPoints[i];
      SCOPED_TRACE(std::string(kp.site) + " after " +
                   std::to_string(kp.hits) + " hits, workers=" + w);
      std::string dir = FreshWorkDir("kp" + std::to_string(i) + "_w" + w);

      ChildResult crash = RunChild("run " + dir + " " + kp.site + " " +
                                   std::to_string(kp.hits) + " " + w);
      ASSERT_TRUE(crash.ran);
      if (crash.killed) {
        ++killed;
      } else {
        // The site was not reached hits+1 times; the run must then have
        // completed correctly (and the sweep still reopens below).
        ASSERT_EQ(crash.exit_code, 0);
        EXPECT_EQ(crash.rows, golden.rows);
      }

      // Reopen + resume: recovery must reconstruct a state from which the
      // re-issued query converges to the exact fault-free answer.
      ChildResult resume = RunChild("run " + dir + " none 0 " + w);
      ASSERT_TRUE(resume.ran);
      ASSERT_FALSE(resume.killed);
      ASSERT_EQ(resume.exit_code, 0)
          << "resume after kill at " << kp.site << " failed";
      EXPECT_EQ(resume.rows, golden.rows)
          << "resumed result diverges from the fault-free run";
      int64_t restores = StatCounter(resume.stats, "restores");
      ASSERT_GE(restores, 0) << "unparsable stats: " << resume.stats;
      if (crash.killed && restores > 0) {
        ++resumed;
        // A durable-checkpoint resume re-runs only the tail of the loop.
        EXPECT_GE(StatCounter(resume.stats, "checkpoints"), 1);
      }
    }

    // The schedule must actually exercise the crash path, and at least the
    // late kill points must resume from a durable checkpoint rather than
    // recompute from scratch.
    EXPECT_GE(killed, 10) << "too few kill points fired; schedule is stale";
    EXPECT_GE(resumed, 3) << "no kill point resumed from a durable checkpoint";
  }

  std::filesystem::path root_;
  std::string template_dir_;
};

TEST_F(DurabilityTest, KillAndRestartSweepSerial) { SweepKillPoints(1); }

TEST_F(DurabilityTest, KillAndRestartSweepMpp8) { SweepKillPoints(8); }

// A database directory that was never crashed reopens with zero WAL replay
// surprises: the recovered tables must answer a plain scan identically
// before and after a clean close. (Cheap sanity on top of the kill sweep —
// catches manifest/WAL drift that the crash path might mask.)
TEST_F(DurabilityTest, CleanReopenIsStable) {
  std::string dir = FreshWorkDir("clean");
  ChildResult a = RunChild("run " + dir + " none 0 1");
  ASSERT_TRUE(a.ran);
  ASSERT_EQ(a.exit_code, 0);
  ChildResult b = RunChild("run " + dir + " none 0 1");
  ASSERT_TRUE(b.ran);
  ASSERT_EQ(b.exit_code, 0);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(StatCounter(b.stats, "restores"), 0);
}

}  // namespace
