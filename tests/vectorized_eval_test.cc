// Property tests: the vectorized numeric kernels in EvaluateExprBatch /
// EvaluatePredicate must agree with the row-wise evaluator for every
// operator, type mix, and NULL placement (TEST_P sweep).

#include <gtest/gtest.h>

#include <random>

#include "expr/expr.h"

namespace dbspinner {
namespace {

struct Case {
  BinaryOp op;
  bool left_int;
  bool right_int;
  bool right_const;
  const char* name;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  return info.param.name;
}

class VectorizedEvalTest : public ::testing::TestWithParam<Case> {
 protected:
  // Builds a two-column numeric table with NULLs sprinkled in.
  TablePtr MakeInput(uint64_t seed, bool left_int, bool right_int) {
    Schema s;
    s.AddColumn("a", left_int ? TypeId::kInt64 : TypeId::kDouble);
    s.AddColumn("b", right_int ? TypeId::kInt64 : TypeId::kDouble);
    auto t = Table::Make(s);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> small(-5, 5);
    for (int i = 0; i < 500; ++i) {
      Value a = small(rng) == 0
                    ? Value::Null()
                    : (left_int ? Value::Int64(small(rng))
                                : Value::Double(small(rng) * 0.5));
      Value b = small(rng) == 0
                    ? Value::Null()
                    : (right_int ? Value::Int64(small(rng))
                                 : Value::Double(small(rng) * 0.5));
      t->AppendRow({a, b});
    }
    return t;
  }

  // Builds the expression `a <op> (b | const)`.
  BoundExprPtr MakeExpr(const Case& c) {
    TypeId lt = c.left_int ? TypeId::kInt64 : TypeId::kDouble;
    TypeId rt = c.right_int ? TypeId::kInt64 : TypeId::kDouble;
    BoundExprPtr left = MakeBoundColumnRef(0, lt, "a");
    BoundExprPtr right =
        c.right_const
            ? MakeBoundConstant(c.right_int ? Value::Int64(2)
                                            : Value::Double(1.5))
            : MakeBoundColumnRef(1, rt, "b");
    bool is_cmp = c.op == BinaryOp::kEq || c.op == BinaryOp::kNe ||
                  c.op == BinaryOp::kLt || c.op == BinaryOp::kLe ||
                  c.op == BinaryOp::kGt || c.op == BinaryOp::kGe;
    TypeId out = is_cmp ? TypeId::kBool
                        : ((c.left_int && c.right_int) ? TypeId::kInt64
                                                       : TypeId::kDouble);
    return MakeBoundBinary(c.op, std::move(left), std::move(right), out);
  }
};

TEST_P(VectorizedEvalTest, BatchMatchesRowWise) {
  const Case& c = GetParam();
  TablePtr input = MakeInput(7 + static_cast<uint64_t>(c.op), c.left_int,
                             c.right_int);
  BoundExprPtr expr = MakeExpr(c);

  auto batch = EvaluateExprBatch(*expr, *input);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ((*batch)->size(), input->num_rows());

  for (size_t i = 0; i < input->num_rows(); ++i) {
    auto row = EvaluateExpr(*expr, *input, i);
    ASSERT_TRUE(row.ok());
    Value batch_v = (*batch)->GetValue(i);
    ASSERT_EQ(batch_v.is_null(), row->is_null()) << "row " << i;
    if (!row->is_null()) {
      EXPECT_TRUE(batch_v.Equals(*row))
          << "row " << i << ": " << batch_v.ToString() << " vs "
          << row->ToString();
    }
  }
}

TEST_P(VectorizedEvalTest, PredicateMatchesRowWise) {
  const Case& c = GetParam();
  bool is_cmp = c.op == BinaryOp::kEq || c.op == BinaryOp::kNe ||
                c.op == BinaryOp::kLt || c.op == BinaryOp::kLe ||
                c.op == BinaryOp::kGt || c.op == BinaryOp::kGe;
  if (!is_cmp) GTEST_SKIP() << "predicates are comparisons";
  TablePtr input = MakeInput(99, c.left_int, c.right_int);
  BoundExprPtr expr = MakeExpr(c);

  auto sel = EvaluatePredicate(*expr, *input);
  ASSERT_TRUE(sel.ok());
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < input->num_rows(); ++i) {
    auto v = EvaluateExpr(*expr, *input, i);
    ASSERT_TRUE(v.ok());
    if (!v->is_null() && v->bool_value()) {
      expected.push_back(static_cast<uint32_t>(i));
    }
  }
  EXPECT_EQ(*sel, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, VectorizedEvalTest,
    ::testing::Values(
        Case{BinaryOp::kAdd, true, true, false, "add_ii"},
        Case{BinaryOp::kAdd, true, false, false, "add_id"},
        Case{BinaryOp::kAdd, false, false, false, "add_dd"},
        Case{BinaryOp::kSub, true, true, true, "sub_ic"},
        Case{BinaryOp::kSub, false, true, false, "sub_di"},
        Case{BinaryOp::kMul, true, true, false, "mul_ii"},
        Case{BinaryOp::kMul, false, false, true, "mul_dc"},
        Case{BinaryOp::kEq, true, true, false, "eq_ii"},
        Case{BinaryOp::kEq, true, false, false, "eq_id"},
        Case{BinaryOp::kNe, true, true, true, "ne_ic"},
        Case{BinaryOp::kLt, false, false, false, "lt_dd"},
        Case{BinaryOp::kLe, true, true, false, "le_ii"},
        Case{BinaryOp::kGt, true, false, true, "gt_ic"},
        Case{BinaryOp::kGe, false, true, false, "ge_di"}),
    CaseName);

TEST(VectorizedEvalEdge, NullConstantShortCircuits) {
  Schema s;
  s.AddColumn("a", TypeId::kInt64);
  auto t = Table::Make(s);
  t->AppendRow({Value::Int64(1)});
  t->AppendRow({Value::Int64(2)});
  auto expr = MakeBoundBinary(BinaryOp::kAdd,
                              MakeBoundColumnRef(0, TypeId::kInt64, "a"),
                              MakeBoundConstant(Value::Null()),
                              TypeId::kInt64);
  auto batch = EvaluateExprBatch(*expr, *t);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE((*batch)->IsNull(0));
  EXPECT_TRUE((*batch)->IsNull(1));
}

TEST(VectorizedEvalEdge, DivisionStaysOnSlowPathAndErrors) {
  Schema s;
  s.AddColumn("a", TypeId::kInt64);
  auto t = Table::Make(s);
  t->AppendRow({Value::Int64(1)});
  auto expr = MakeBoundBinary(BinaryOp::kDiv,
                              MakeBoundColumnRef(0, TypeId::kInt64, "a"),
                              MakeBoundConstant(Value::Int64(0)),
                              TypeId::kInt64);
  auto batch = EvaluateExprBatch(*expr, *t);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace dbspinner
