// StorageManager integration tests (DESIGN.md §12): the commit protocol,
// manifest folds, WAL replay, torn-tail tolerance, durable checkpoints, and
// extent GC — all in-process so the TSan job covers the store's locking.
// (The out-of-process SIGKILL proof lives in durability_test.cc.)

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/persistent_store.h"
#include "storage/table.h"

namespace dbspinner {
namespace {

class PersistentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::error_code ec;
    dir_ = (std::filesystem::temp_directory_path() /
            ("dbsp_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_, ec);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  PersistenceOptions Options() {
    PersistenceOptions p;
    p.enabled = true;
    p.path = dir_;
    p.sync = false;  // unit tests don't kill the process
    p.block_rows = 16;
    p.buffer_pool_blocks = 4;
    p.manifest_every = 1000;  // folds only when a test forces them
    return p;
  }

  std::unique_ptr<StorageManager> OpenStore(PersistenceOptions p) {
    auto r = StorageManager::Open(p, /*faults=*/nullptr);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  static TablePtr MakeTable(int64_t rows, int64_t salt) {
    Schema schema;
    schema.AddColumn("id", TypeId::kInt64);
    schema.AddColumn("score", TypeId::kDouble);
    schema.AddColumn("label", TypeId::kString);
    TablePtr t = Table::Make(std::move(schema));
    for (int64_t i = 0; i < rows; ++i) {
      t->AppendRow({Value::Int64(i + salt),
                    Value::Double(static_cast<double>(i) / 3.0),
                    Value::String("row-" + std::to_string(i % 9))});
    }
    return t;
  }

  static void ExpectSameRows(const TablePtr& a, const TablePtr& b) {
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->num_rows(), b->num_rows());
    EXPECT_TRUE(Table::SameRows(*a, *b))
        << a->ToString(10) << "\nvs\n"
        << b->ToString(10);
  }

  std::string dir_;
};

TEST_F(PersistentStoreTest, UpsertSurvivesReopenViaWalReplay) {
  TablePtr t = MakeTable(100, 0);
  {
    auto store = OpenStore(Options());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->LogUpsertTable("t", 0, *t).ok());
    // manifest_every is huge: durability must come from the WAL alone.
  }
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  auto tables = store->tables();
  ASSERT_EQ(tables.count("t"), 1u);
  EXPECT_EQ(tables["t"].rows, 100u);
  EXPECT_EQ(tables["t"].primary_key_col, std::optional<size_t>(0));
  auto read = store->ReadTable(tables["t"]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectSameRows(t, read.value());
  EXPECT_GE(store->counters().wal_records_replayed, 1);
}

TEST_F(PersistentStoreTest, UpsertSurvivesReopenViaManifest) {
  PersistenceOptions p = Options();
  p.manifest_every = 1;  // fold after every append
  TablePtr t = MakeTable(50, 7);
  {
    auto store = OpenStore(p);
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->LogUpsertTable("t", std::nullopt, *t).ok());
    EXPECT_GE(store->counters().manifests_written, 1);
  }
  auto store = OpenStore(p);
  ASSERT_NE(store, nullptr);
  auto tables = store->tables();
  ASSERT_EQ(tables.count("t"), 1u);
  auto read = store->ReadTable(tables["t"]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectSameRows(t, read.value());
  // Nothing should have needed replay: the manifest carried it all.
  EXPECT_EQ(store->counters().wal_records_replayed, 0);
}

TEST_F(PersistentStoreTest, LatestUpsertWinsAndDropIsDurable) {
  TablePtr v1 = MakeTable(30, 0);
  TablePtr v2 = MakeTable(60, 1000);
  {
    auto store = OpenStore(Options());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->LogUpsertTable("a", std::nullopt, *v1).ok());
    ASSERT_TRUE(store->LogUpsertTable("a", std::nullopt, *v2).ok());
    ASSERT_TRUE(store->LogUpsertTable("b", std::nullopt, *v1).ok());
    ASSERT_TRUE(store->LogDropTable("b").ok());
  }
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  auto tables = store->tables();
  EXPECT_EQ(tables.count("b"), 0u);
  ASSERT_EQ(tables.count("a"), 1u);
  auto read = store->ReadTable(tables["a"]);
  ASSERT_TRUE(read.ok());
  ExpectSameRows(v2, read.value());
}

TEST_F(PersistentStoreTest, TornWalTailIsIgnoredNotFatal) {
  TablePtr t1 = MakeTable(20, 0);
  TablePtr t2 = MakeTable(20, 500);
  {
    auto store = OpenStore(Options());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->LogUpsertTable("first", std::nullopt, *t1).ok());
    ASSERT_TRUE(store->LogUpsertTable("second", std::nullopt, *t2).ok());
  }
  // Chop bytes off the WAL tail: the last frame becomes torn. Recovery must
  // keep everything before it and ignore the tail — the exact guarantee a
  // crash mid-append relies on.
  std::string wal = dir_ + "/wal.log";
  auto size = std::filesystem::file_size(wal);
  ASSERT_GT(size, 8u);
  std::filesystem::resize_file(wal, size - 7);

  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  auto tables = store->tables();
  EXPECT_EQ(tables.count("first"), 1u);
  EXPECT_EQ(tables.count("second"), 0u) << "torn frame was applied";
  auto read = store->ReadTable(tables["first"]);
  ASSERT_TRUE(read.ok());
  ExpectSameRows(t1, read.value());
}

TEST_F(PersistentStoreTest, CorruptedExtentReadsAsCorruption) {
  TablePtr t = MakeTable(64, 0);
  uint64_t extent_id = 0;
  {
    auto store = OpenStore(Options());
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->LogUpsertTable("t", std::nullopt, *t).ok());
    extent_id = store->tables()["t"].extent_ids[0];
  }
  // Flip a byte in the middle of the extent's payload region.
  std::string path = dir_ + "/data/e" + std::to_string(extent_id) + ".col";
  ASSERT_TRUE(std::filesystem::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(std::filesystem::file_size(path) / 2));
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x40);
    f.write(&b, 1);
  }
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  auto read = store->ReadTable(store->tables()["t"]);
  ASSERT_FALSE(read.ok()) << "corrupted extent decoded cleanly";
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption)
      << read.status().ToString();
}

TEST_F(PersistentStoreTest, CheckpointRoundTripAndClear) {
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  TablePtr reg = MakeTable(40, 0);
  auto img = store->WriteTableExtents(*reg);
  ASSERT_TRUE(img.ok()) << img.status().ToString();

  CheckpointImage cp;
  cp.fingerprint = 0xfeedface;
  cp.pc = 5;
  LoopImage loop;
  loop.id = 1;
  loop.iteration = 3;
  loop.last_update_count = 17;
  loop.cumulative_updates = 99;
  loop.previous = img.value();
  cp.loops.push_back(loop);
  cp.registry.emplace_back("loop:1:result", img.value());
  ASSERT_TRUE(store->SaveCheckpoint(0xabc, cp).ok());

  // Reopen: the checkpoint must survive with structure intact.
  store.reset();
  store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  auto found = store->FindCheckpoint(0xabc);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->fingerprint, 0xfeedfaceu);
  EXPECT_EQ(found->pc, 5u);
  ASSERT_EQ(found->loops.size(), 1u);
  EXPECT_EQ(found->loops[0].iteration, 3);
  EXPECT_EQ(found->loops[0].cumulative_updates, 99);
  ASSERT_TRUE(found->loops[0].previous.has_value());
  ASSERT_EQ(found->registry.size(), 1u);
  EXPECT_EQ(found->registry[0].first, "loop:1:result");
  auto read = store->ReadTable(found->registry[0].second);
  ASSERT_TRUE(read.ok());
  ExpectSameRows(reg, read.value());
  EXPECT_GE(store->counters().checkpoints_recovered, 1);

  // Clear is durable too.
  ASSERT_TRUE(store->ClearCheckpoint(0xabc).ok());
  EXPECT_FALSE(store->FindCheckpoint(0xabc).has_value());
  store.reset();
  store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(store->FindCheckpoint(0xabc).has_value());
}

TEST_F(PersistentStoreTest, ManifestFoldCollectsUnreferencedExtents) {
  PersistenceOptions p = Options();
  p.manifest_every = 2;
  auto store = OpenStore(p);
  ASSERT_NE(store, nullptr);
  TablePtr t = MakeTable(32, 0);
  // Each upsert of the same name strands the previous version's extents;
  // folds must unlink them.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store->LogUpsertTable("t", std::nullopt, *t).ok());
  }
  EXPECT_GT(store->counters().extents_collected, 0);
  // The data directory holds only what the live image references (plus
  // nothing stranded: every collected extent's file is gone).
  size_t files = 0;
  for (auto& e : std::filesystem::directory_iterator(dir_ + "/data")) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, store->tables()["t"].extent_ids.size());
  auto read = store->ReadTable(store->tables()["t"]);
  ASSERT_TRUE(read.ok());
  ExpectSameRows(t, read.value());
}

TEST_F(PersistentStoreTest, ConcurrentReadersOverSharedStore) {
  // Writers and readers race on one store: upserts of distinct tables on 2
  // threads, full-table reads on 4. TSan-enforced; assertions are sanity.
  auto store = OpenStore(Options());
  ASSERT_NE(store, nullptr);
  TablePtr seed = MakeTable(64, 0);
  ASSERT_TRUE(store->LogUpsertTable("shared", std::nullopt, *seed).ok());

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 20; ++i) {
        TablePtr t = MakeTable(32, w * 10000 + i);
        if (!store->LogUpsertTable("w" + std::to_string(w), std::nullopt, *t)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < 30; ++i) {
        auto tables = store->tables();
        auto it = tables.find("shared");
        if (it == tables.end()) {
          errors.fetch_add(1);
          continue;
        }
        auto read = store->ReadTable(it->second);
        if (!read.ok() || read.value()->num_rows() != 64) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(PersistentStoreTest, ExtentReaderStreamsInBlocks) {
  auto store = OpenStore(Options());  // block_rows = 16
  ASSERT_NE(store, nullptr);
  TablePtr t = MakeTable(100, 0);
  ASSERT_TRUE(store->LogUpsertTable("t", std::nullopt, *t).ok());
  ExtentTableReader reader(store.get(), store->tables()["t"]);
  TablePtr rebuilt;
  uint64_t blocks = 0;
  while (true) {
    auto chunk = reader.Next();
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    if (chunk.value() == nullptr) break;
    ++blocks;
    EXPECT_LE(chunk.value()->num_rows(), 16u);
    if (rebuilt == nullptr) {
      rebuilt = chunk.value()->Clone();
    } else {
      rebuilt->AppendAll(*chunk.value());
    }
  }
  EXPECT_EQ(blocks, (100 + 15) / 16u);
  EXPECT_EQ(reader.rows_read(), 100u);
  ExpectSameRows(t, rebuilt);
}

}  // namespace
}  // namespace dbspinner
