// Physical operator and program-executor unit tests (below the SQL layer).

#include <gtest/gtest.h>

#include "exec/merge_update.h"
#include "exec/physical_plan.h"
#include "exec/physical_planner.h"
#include "exec/program_executor.h"
#include "test_util.h"

namespace dbspinner {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", TypeId::kInt64);
  s.AddColumn("v", TypeId::kDouble);
  return s;
}

TablePtr MakeKV(std::vector<std::pair<int64_t, double>> rows) {
  auto t = Table::Make(KV());
  for (auto& [k, v] : rows) {
    t->AppendRow({Value::Int64(k), Value::Double(v)});
  }
  return t;
}

struct Env {
  Catalog catalog;
  ResultRegistry registry;
  EngineOptions options;
  ExecContext ctx;

  Env() {
    ctx.catalog = &catalog;
    ctx.registry = &registry;
    ctx.options = &options;
  }
};

TEST(MergeUpdateTest, MatchedRowsTakeWorkingValues) {
  auto cte = MakeKV({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  auto working = MakeKV({{2, 20.0}, {3, 3.0}});
  auto result = MergeUpdateTables(*cte, *working, 0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->merged->num_rows(), 3u);
  // Only key 2 actually changed (key 3 got identical values).
  EXPECT_EQ(result->updated_rows, 1);
  auto expected = MakeKV({{1, 1.0}, {2, 20.0}, {3, 3.0}});
  EXPECT_TRUE(Table::SameRows(*result->merged, *expected));
}

TEST(MergeUpdateTest, WorkingKeysNotInCteAreIgnored) {
  auto cte = MakeKV({{1, 1.0}});
  auto working = MakeKV({{9, 9.0}});
  auto result = MergeUpdateTables(*cte, *working, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->merged->num_rows(), 1u);
  EXPECT_EQ(result->updated_rows, 0);
}

TEST(MergeUpdateTest, DuplicateKeyFails) {
  auto cte = MakeKV({{1, 1.0}});
  auto working = MakeKV({{1, 2.0}, {1, 3.0}});
  auto result = MergeUpdateTables(*cte, *working, 0);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

TEST(MergeUpdateTest, CountChangedRows) {
  auto prev = MakeKV({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  auto cur = MakeKV({{1, 1.0}, {2, 9.0}, {4, 4.0}});
  // key 2 changed, key 4 new, key 3 disappeared => 3 changes.
  EXPECT_EQ(CountChangedRows(*prev, *cur, 0), 3);
  EXPECT_EQ(CountChangedRows(*prev, *prev, 0), 0);
}

TEST(ProgramExecutorTest, JumpLoopRunsBodyNTimes) {
  // Hand-built program: materialize 1-row table, loop 5 iterations over a
  // body that replaces it with v + 1 (via plan Scan -> Project).
  Env env;
  env.registry.Put("acc", MakeKV({{1, 0.0}}));

  Program program;
  Schema kv = KV();

  auto scan = MakeScan(ScanSource::kResult, "acc", kv);
  std::vector<BoundExprPtr> projections;
  projections.push_back(MakeBoundColumnRef(0, TypeId::kInt64, "k"));
  projections.push_back(MakeBoundBinary(
      BinaryOp::kAdd, MakeBoundColumnRef(1, TypeId::kDouble, "v"),
      MakeBoundConstant(Value::Double(1)), TypeId::kDouble));
  auto body_plan =
      MakeProject(std::move(projections), {"k", "v"}, std::move(scan));

  LoopSpec spec;
  spec.kind = LoopSpec::Kind::kIterations;
  spec.n = 5;
  spec.cte_name = "acc";

  Step init;
  init.kind = Step::Kind::kInitLoop;
  init.id = program.NewId();
  init.loop_id = 1;
  init.loop = spec.Clone();
  program.steps.push_back(std::move(init));

  Step body;
  body.kind = Step::Kind::kMaterialize;
  body.id = program.NewId();
  body.target = "working";
  body.plan = std::move(body_plan);
  int body_id = body.id;
  program.steps.push_back(std::move(body));

  Step rename;
  rename.kind = Step::Kind::kRename;
  rename.id = program.NewId();
  rename.source = "working";
  rename.target = "acc";
  rename.loop_id = 1;
  program.steps.push_back(std::move(rename));

  Step check;
  check.kind = Step::Kind::kLoopCheck;
  check.id = program.NewId();
  check.loop_id = 1;
  check.loop = spec.Clone();
  check.jump_to_id = body_id;
  program.steps.push_back(std::move(check));

  Step final_step;
  final_step.kind = Step::Kind::kFinal;
  final_step.id = program.NewId();
  final_step.plan = MakeScan(ScanSource::kResult, "acc", kv);
  program.steps.push_back(std::move(final_step));

  ASSERT_TRUE(PlanProgram(&program).ok());
  auto result = RunProgram(program, &env.ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ((*result)->GetValue(0, 1).double_value(), 5.0);
  EXPECT_EQ(env.ctx.stats.loop_iterations, 5);
  EXPECT_EQ(env.ctx.stats.renames, 5);
}

TEST(HashJoinExecTest, InnerAndLeftViaSql) {
  Database db;
  testing::MustExecute(&db, "CREATE TABLE l (k BIGINT, v DOUBLE)");
  testing::MustExecute(&db, "CREATE TABLE r (k BIGINT, w DOUBLE)");
  testing::MustExecute(&db, "INSERT INTO l VALUES (1, 1.0), (2, 2.0), "
                            "(NULL, 0.0)");
  testing::MustExecute(&db, "INSERT INTO r VALUES (1, 10.0), (1, 11.0), "
                            "(NULL, 99.0)");

  // NULL keys never match (SQL semantics), duplicates multiply.
  auto inner = testing::MustQuery(
      &db, "SELECT l.k, r.w FROM l JOIN r ON l.k = r.k ORDER BY r.w");
  ASSERT_EQ(inner->num_rows(), 2u);

  auto left = testing::MustQuery(
      &db, "SELECT l.v, r.w FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.v");
  ASSERT_EQ(left->num_rows(), 4u);  // 2 matches for k=1, pads for k=2 & NULL
  EXPECT_TRUE(left->GetValue(0, 1).is_null());  // v=0.0 row (NULL key)
}

TEST(DistinctExecTest, CrossTypeDuplicates) {
  Database db;
  testing::MustExecute(&db, "CREATE TABLE t (v DOUBLE)");
  testing::MustExecute(&db, "INSERT INTO t VALUES (1.0), (1.0), (2.0)");
  auto result =
      testing::MustQuery(&db, "SELECT DISTINCT v FROM t");
  EXPECT_EQ(result->num_rows(), 2u);
}

TEST(SortExecTest, StableMultiKey) {
  Database db;
  testing::MustExecute(&db, "CREATE TABLE t (a BIGINT, b BIGINT)");
  testing::MustExecute(&db,
                       "INSERT INTO t VALUES (1, 3), (2, 1), (1, 1), (2, 2)");
  auto result = testing::MustQuery(
      &db, "SELECT a, b FROM t ORDER BY a ASC, b DESC");
  ASSERT_EQ(result->num_rows(), 4u);
  EXPECT_EQ(result->GetValue(0, 0).int64_value(), 1);
  EXPECT_EQ(result->GetValue(0, 1).int64_value(), 3);
  EXPECT_EQ(result->GetValue(3, 1).int64_value(), 1);
}

TEST(StatsTest, MaterializedRowsTracked) {
  Database db;
  testing::MustExecute(&db, "CREATE TABLE t (a BIGINT)");
  testing::MustExecute(&db, "INSERT INTO t VALUES (1), (2), (3)");
  auto result = db.Execute("SELECT a + 1 FROM t WHERE a > 1");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.rows_materialized, 0);
  EXPECT_GT(result->stats.steps_executed, 0);
}

}  // namespace
}  // namespace dbspinner
