// Shared helpers for the dbspinner test suite.

#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace dbspinner {
namespace testing {

// Asserts a Status/Result is OK, printing the message on failure.
#define DBSP_ASSERT_OK(expr)                                  \
  do {                                                        \
    auto _st = (expr);                                        \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

#define DBSP_EXPECT_OK(expr)                                  \
  do {                                                        \
    auto _st = (expr);                                        \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                  \
  } while (0)

// Unwraps a Result<T> or fails the test.
template <typename T>
T Unwrap(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return T{};
  return std::move(result).value();
}

// Runs a query and returns its table, failing the test on error.
inline TablePtr MustQuery(Database* db, const std::string& sql) {
  Result<TablePtr> result = db->Query(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
  if (!result.ok()) return Table::Make(Schema());
  return std::move(result).value();
}

// Executes a statement expecting success.
inline void MustExecute(Database* db, const std::string& sql) {
  Result<QueryResult> result = db->Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
}

// Small deterministic edges table:
//
//     1 -> 2 (0.5)   1 -> 3 (0.5)   2 -> 3 (1.0)   3 -> 1 (1.0)
//
// Node 4 exists only as a destination: 2 has an edge there in the wide
// variant. Weights are 1/outdeg.
inline void LoadTinyGraph(Database* db) {
  MustExecute(db,
              "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
  MustExecute(db,
              "INSERT INTO edges VALUES (1, 2, 0.5), (1, 3, 0.5), "
              "(2, 3, 1.0), (3, 1, 1.0)");
}

// Compares two tables as row multisets with numeric tolerance.
inline void ExpectSameRows(const TablePtr& a, const TablePtr& b,
                           double eps = 1e-9) {
  ASSERT_EQ(a->num_columns(), b->num_columns());
  ASSERT_EQ(a->num_rows(), b->num_rows());
  std::vector<uint32_t> oa = a->SortedOrder();
  std::vector<uint32_t> ob = b->SortedOrder();
  for (size_t r = 0; r < oa.size(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      Value va = a->GetValue(oa[r], c);
      Value vb = b->GetValue(ob[r], c);
      ASSERT_EQ(va.is_null(), vb.is_null())
          << "row " << r << " col " << c << ": " << va.ToString() << " vs "
          << vb.ToString();
      if (va.is_null()) continue;
      if (IsNumeric(va.type()) && IsNumeric(vb.type())) {
        ASSERT_NEAR(va.AsDouble(), vb.AsDouble(), eps)
            << "row " << r << " col " << c;
      } else {
        ASSERT_EQ(va.ToString(), vb.ToString())
            << "row " << r << " col " << c;
      }
    }
  }
}

}  // namespace testing
}  // namespace dbspinner
