// Crash/recovery equivalence: every built-in workload, executed under
// injected-fault schedules with retry + checkpoint/restore recovery enabled,
// must produce exactly the fault-free result — serial and at MPP width 8,
// with delta iteration on and off — and the recovery counters must show the
// machinery actually engaged.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustQuery;

struct FaultSchedule {
  const char* label;
  std::string site_filter;
  double rate;
  double worker_lost_fraction;
  int64_t checkpoint_interval;
};

// The three schedule shapes from the issue: exchange/shuffle failures,
// loop-body (materialize) failures, and a checkpoint-boundary schedule
// (K = 1 with pure worker loss, so every restore lands exactly one
// checkpoint back).
const FaultSchedule kSchedules[] = {
    {"shuffle-failure", "shuffle", 0.25, 0.0, 4},
    {"loop-body-failure", "exec.materialize", 0.25, 0.2, 4},
    {"checkpoint-boundary", "", 0.05, 1.0, 1},
};

void ConfigureFaults(Database* db, const FaultSchedule& s, uint64_t seed) {
  db->options().fault_injection.enabled = true;
  db->options().fault_injection.seed = seed;
  db->options().fault_injection.rate = s.rate;
  db->options().fault_injection.site_filter = s.site_filter;
  db->options().fault_injection.worker_lost_fraction = s.worker_lost_fraction;
  db->options().fault_tolerance.enable_recovery = true;
  db->options().fault_tolerance.checkpoint_interval = s.checkpoint_interval;
  db->options().fault_tolerance.max_restores = 100000;
}

void SetMpp(Database* db, int workers) {
  db->options().num_workers = workers;
  db->options().mpp_min_rows_per_task = workers > 1 ? 1 : 8192;
}

void SetDelta(Database* db, bool on) {
  db->options().optimizer.enable_delta_iteration = on;
  db->options().optimizer.enable_join_build_cache = on;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphSpec spec;
    spec.kind = graph::GraphKind::kPreferentialAttachment;
    spec.num_nodes = 200;
    spec.num_edges = 900;
    spec.seed = 23;
    graph_ = graph::Generate(spec);
    ASSERT_TRUE(graph::LoadIntoDatabase(&clean_db_, graph_, 0.7, 24).ok());
    ASSERT_TRUE(graph::LoadIntoDatabase(&faulty_db_, graph_, 0.7, 24).ok());
  }

  // Runs `sql` fault-free on clean_db_ and under every schedule x
  // {serial, MPP 8} x {delta on, off} on faulty_db_; all results must match.
  void ExpectRecoveredEquivalence(const std::string& sql, double eps = 1e-6) {
    for (bool delta : {true, false}) {
      SetDelta(&clean_db_, delta);
      SetDelta(&faulty_db_, delta);
      for (int workers : {1, 8}) {
        SetMpp(&clean_db_, workers);
        SetMpp(&faulty_db_, workers);
        TablePtr expected = MustQuery(&clean_db_, sql);
        uint64_t seed = 100;
        for (const FaultSchedule& s : kSchedules) {
          SCOPED_TRACE(std::string(s.label) + " workers=" +
                       std::to_string(workers) +
                       " delta=" + (delta ? "on" : "off"));
          ConfigureFaults(&faulty_db_, s, ++seed);
          TablePtr recovered = MustQuery(&faulty_db_, sql);
          ExpectSameRows(recovered, expected, eps);
        }
      }
    }
  }

  graph::EdgeList graph_;
  Database clean_db_;
  Database faulty_db_;
};

TEST_F(FaultRecoveryTest, PageRank) {
  ExpectRecoveredEquivalence(workloads::PRQuery(8));
}

TEST_F(FaultRecoveryTest, PageRankVertexStatus) {
  ExpectRecoveredEquivalence(workloads::PRVSQuery(8));
}

TEST_F(FaultRecoveryTest, Sssp) {
  ExpectRecoveredEquivalence(workloads::SSSPQuery(12, 1, 2));
}

TEST_F(FaultRecoveryTest, SsspDataCondition) {
  ExpectRecoveredEquivalence(workloads::SSSPDataConditionQuery(1, 2));
}

TEST_F(FaultRecoveryTest, ForecastOfFriends) {
  ExpectRecoveredEquivalence(workloads::FFQuery(6, 1, 1000000));
}

TEST_F(FaultRecoveryTest, ForecastDeltaTermination) {
  ExpectRecoveredEquivalence(workloads::FFDeltaQuery(1, 1));
}

TEST_F(FaultRecoveryTest, RecoveryCountersShowTheMachineryEngaged) {
  std::string sql = workloads::SSSPQuery(12, 1, 2);

  // Transient faults on the loop body: retries, no restores needed.
  ConfigureFaults(&faulty_db_, kSchedules[1], /*seed=*/5);
  faulty_db_.options().fault_injection.worker_lost_fraction = 0.0;
  auto retried = faulty_db_.Execute(sql);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_GT(retried->stats.faults_seen, 0);
  EXPECT_GT(retried->stats.step_retries, 0);
  EXPECT_GT(retried->stats.checkpoints_taken, 0);
  EXPECT_EQ(retried->stats.restores, 0);

  // Pure worker loss: no in-place retries, only checkpoint restores.
  ConfigureFaults(&faulty_db_, kSchedules[2], /*seed=*/6);
  auto restored = faulty_db_.Execute(sql);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(restored->stats.faults_seen, 0);
  EXPECT_GT(restored->stats.restores, 0);
  EXPECT_EQ(restored->stats.step_retries, 0);

  // Fault-free run on the same database: counters stay clean except the
  // checkpoints recovery mode always takes.
  faulty_db_.options().fault_injection.enabled = false;
  auto clean = faulty_db_.Execute(sql);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->stats.faults_seen, 0);
  EXPECT_EQ(clean->stats.step_retries, 0);
  EXPECT_EQ(clean->stats.restores, 0);
  EXPECT_GT(clean->stats.checkpoints_taken, 0);

  ExpectSameRows(retried->table, clean->table, 1e-6);
  ExpectSameRows(restored->table, clean->table, 1e-6);
}

TEST_F(FaultRecoveryTest, RecoveryIsDeterministicUnderAFixedSeed) {
  std::string sql = workloads::SSSPQuery(12, 1, 2);
  ConfigureFaults(&faulty_db_, kSchedules[1], /*seed=*/9);
  auto first = faulty_db_.Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // The schedule restarts at hit 0 for every program execution, so simply
  // re-running the statement must see the identical fault set and counters.
  auto second = faulty_db_.Execute(sql);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  EXPECT_EQ(first->stats.faults_seen, second->stats.faults_seen);
  EXPECT_EQ(first->stats.step_retries, second->stats.step_retries);
  EXPECT_EQ(first->stats.restores, second->stats.restores);
  ExpectSameRows(first->table, second->table, 1e-9);
}

// The issue's acceptance bar: SSSP at MPP width 8 under a 10% per-step
// fault rate, with recovery, matches the fault-free result across >= 200
// differential cases (here: 200 distinct fault schedules, alternating
// transient-only and mixed worker-loss).
TEST_F(FaultRecoveryTest, SsspMppWidth8TenPercentRate200Cases) {
  std::string sql = workloads::SSSPQuery(12, 1, 2);
  SetMpp(&clean_db_, 8);
  SetMpp(&faulty_db_, 8);
  TablePtr expected = MustQuery(&clean_db_, sql);

  int64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    // Site filter "exec." scopes the 10% rate to the executor's per-step
    // sites (materialize/final/merge/delta plus the per-operator shuffle
    // entry points) — i.e. a true per-step rate. Unfiltered, the rate
    // would also apply to each of the 8 per-task dispatch hits of every
    // parallel operator, compounding into a near-certain fault per step.
    FaultSchedule s{"sweep", "exec.", /*rate=*/0.1,
                    /*worker_lost_fraction=*/seed % 2 == 0 ? 0.3 : 0.0,
                    /*checkpoint_interval=*/4};
    ConfigureFaults(&faulty_db_, s, seed);
    auto result = faulty_db_.Execute(sql);
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    ExpectSameRows(result->table, expected, 1e-6);
    total_faults += result->stats.faults_seen;
  }
  // The sweep must actually have injected a meaningful number of faults.
  EXPECT_GT(total_faults, 200);
}

// Recovery sweep through the vectorized pipeline's own fault site: a small
// morsel size under MPP width 8 forces multi-morsel parallel dispatch, so
// the per-task "exec.pipeline.morsel" injection point actually fires, and
// every injected loss must recover to the fault-free result — with both
// the vectorized executor (explicitly on) and the legacy baseline agreeing.
TEST_F(FaultRecoveryTest, MorselTaskFaultsRecoverAtSmallMorselSize) {
  std::string sql = workloads::PRQuery(6);

  clean_db_.options().optimizer.vectorized_exec = true;
  clean_db_.options().morsel_size = 16;
  SetMpp(&clean_db_, 8);
  TablePtr expected = MustQuery(&clean_db_, sql);

  clean_db_.options().optimizer.vectorized_exec = false;
  TablePtr legacy = MustQuery(&clean_db_, sql);
  ExpectSameRows(legacy, expected, 1e-6);

  faulty_db_.options().optimizer.vectorized_exec = true;
  faulty_db_.options().morsel_size = 16;
  SetMpp(&faulty_db_, 8);
  int64_t total_faults = 0;
  for (uint64_t seed = 300; seed < 310; ++seed) {
    // The per-task rate compounds across every morsel of a pipeline
    // (~13 tasks at 200 rows / morsel 16), so it must stay small for the
    // per-pipeline fault probability to be a rate the bounded
    // retry/restore recovery can absorb — exactly the mpp.dispatch
    // per-task-rate caveat from the 200-case sweep above.
    FaultSchedule s{"morsel-task-failure", "exec.pipeline.morsel",
                    /*rate=*/0.02,
                    /*worker_lost_fraction=*/seed % 2 == 0 ? 0.2 : 0.0,
                    /*checkpoint_interval=*/4};
    ConfigureFaults(&faulty_db_, s, seed);
    auto result = faulty_db_.Execute(sql);
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": " << result.status().ToString();
    ExpectSameRows(result->table, expected, 1e-6);
    total_faults += result->stats.faults_seen;
  }
  // The site-filtered schedule must really have hit the morsel tasks.
  EXPECT_GT(total_faults, 0);
}

// Replayed work must not double-count. After any mix of in-place retries and
// checkpoint restores, every work-proportional counter must be exactly what
// the fault-free run reports — not merely the same rows. The executor
// snapshots ExecStats into each checkpoint and rewinds on every failed
// attempt and restore (DESIGN.md §8, §11). Excluded from the comparison:
// pipeline_ns (wall time), build_cache_hits (a restore replays probes
// against builds cached by the failed attempt), and morsels_stolen
// (scheduling-dependent).
TEST_F(FaultRecoveryTest, WorkCountersExactAfterRetriesAndRestores) {
  std::string sql = workloads::SSSPQuery(12, 1, 2);
  auto work_counters = [](const ExecStats& s) {
    return std::vector<int64_t>{
        s.steps_executed,     s.loop_iterations,
        s.rows_materialized,  s.rows_shuffled,
        s.renames,            s.merge_updates,
        s.delta_rows,         s.delta_probe_rows,
        s.pipelines_run,      s.morsels_dispatched,
        s.pipeline_rows_in,   s.pipeline_rows_out,
        s.kernel_rows_filter, s.kernel_rows_project,
        s.kernel_rows_probe,  s.agg_partials_merged,
        s.agg_rows_preaggregated};
  };
  for (int workers : {1, 8}) {
    SetMpp(&clean_db_, workers);
    SetMpp(&faulty_db_, workers);
    // Fault-free baseline with recovery on so the checkpoint cadence (and
    // therefore any cadence-coupled work) matches the recovered runs.
    ConfigureFaults(&clean_db_, kSchedules[2], /*seed=*/1);
    clean_db_.options().fault_injection.enabled = false;
    auto clean = clean_db_.Execute(sql);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();

    // kSchedules[1] exercises the retry path (plus some restores),
    // kSchedules[2] the pure checkpoint-restore path.
    for (size_t i : {size_t{1}, size_t{2}}) {
      SCOPED_TRACE(std::string(kSchedules[i].label) +
                   " workers=" + std::to_string(workers));
      ConfigureFaults(&faulty_db_, kSchedules[i],
                      /*seed=*/40 + static_cast<uint64_t>(i));
      auto faulty = faulty_db_.Execute(sql);
      ASSERT_TRUE(faulty.ok()) << faulty.status().ToString();
      ASSERT_GT(faulty->stats.faults_seen, 0);
      ExpectSameRows(faulty->table, clean->table, 1e-6);
      EXPECT_EQ(work_counters(faulty->stats), work_counters(clean->stats))
          << "recovered: " << faulty->stats.ToString()
          << "\nfault-free: " << clean->stats.ToString();
    }
  }
}

}  // namespace
}  // namespace dbspinner
