// Optimizer rule tests: constant folding, outer->inner conversion, predicate
// pushdown (within-block and Qf->R0), common-result extraction.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "optimizer/optimizer.h"
#include "plan/plan_printer.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db_,
                "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)");
  }

  // Plans a query and renders the program for structural assertions.
  std::string Explain(const std::string& sql) {
    auto program = db_.Plan(sql);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    if (!program.ok()) return "";
    return ExplainProgram(*program, /*verbose=*/true);
  }

  Database db_;
};

TEST_F(OptimizerTest, ConstantFoldingFoldsArithmetic) {
  std::string plan = Explain("SELECT 1 + 2 * 3 FROM edges");
  EXPECT_NE(plan.find("=7"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, AlwaysTrueFilterRemoved) {
  std::string plan = Explain("SELECT src FROM edges WHERE 1 = 1");
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, AlwaysFalseFilterBecomesEmptyValues) {
  std::string plan = Explain("SELECT src FROM edges WHERE 1 = 2");
  EXPECT_EQ(plan.find("Filter"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Values rows:0"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, PushdownMovesFilterBelowJoin) {
  std::string plan = Explain(
      "SELECT e.src FROM edges e JOIN vertexstatus v ON e.dst = v.node "
      "WHERE e.src > 5 AND v.status = 1");
  // Both conjuncts sink below the join: the Filter lines must appear after
  // (deeper than) the HashJoin-producing Join node, directly over scans.
  size_t join_pos = plan.find("Join");
  size_t filter1 = plan.find("src#0 > 5)");
  size_t filter2 = plan.find("status#1 = 1)");
  ASSERT_NE(join_pos, std::string::npos) << plan;
  EXPECT_NE(filter1, std::string::npos) << plan;
  EXPECT_NE(filter2, std::string::npos) << plan;
  EXPECT_GT(filter1, join_pos);
  EXPECT_GT(filter2, join_pos);
}

TEST_F(OptimizerTest, PushdownDisabledKeepsFilterAboveJoin) {
  db_.options().optimizer.enable_predicate_pushdown = false;
  std::string plan = Explain(
      "SELECT e.src FROM edges e JOIN vertexstatus v ON e.dst = v.node "
      "WHERE e.src > 5");
  size_t join_pos = plan.find("Join");
  size_t filter = plan.find("Filter");
  ASSERT_NE(filter, std::string::npos) << plan;
  EXPECT_LT(filter, join_pos) << plan;
}

TEST_F(OptimizerTest, NullRejectingFilterConvertsLeftJoin) {
  std::string plan = Explain(
      "SELECT e.src FROM edges e LEFT JOIN vertexstatus v ON e.dst = v.node "
      "WHERE v.status = 1");
  EXPECT_EQ(plan.find("LEFT"), std::string::npos) << plan;
  EXPECT_NE(plan.find("INNER"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, NonRejectingFilterKeepsLeftJoin) {
  std::string plan = Explain(
      "SELECT e.src FROM edges e LEFT JOIN vertexstatus v ON e.dst = v.node "
      "WHERE v.status IS NULL");
  EXPECT_NE(plan.find("LEFT"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, JoinSimplifyDisabledKeepsLeftJoin) {
  db_.options().optimizer.enable_join_simplification = false;
  std::string plan = Explain(
      "SELECT e.src FROM edges e LEFT JOIN vertexstatus v ON e.dst = v.node "
      "WHERE v.status = 1");
  EXPECT_NE(plan.find("LEFT"), std::string::npos) << plan;
}

// --- Fig 10: cross-block pushdown -------------------------------------------

TEST_F(OptimizerTest, CtePushdownAppliesToFF) {
  std::string plan = Explain(workloads::FFQuery(5, 100));
  // R0's materialize step gets the pushed predicate annotation.
  EXPECT_NE(plan.find("[predicate pushed down from Qf]"), std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, CtePushdownSinksBelowAggregate) {
  std::string plan = Explain(workloads::FFQuery(5, 100));
  // After local pushdown, the filter must reference edges' src (the group
  // expression), i.e. the filter sits below the Aggregate on the raw scan.
  size_t agg = plan.find("Aggregate");
  size_t filter = plan.find("mod(src#0");
  ASSERT_NE(agg, std::string::npos) << plan;
  ASSERT_NE(filter, std::string::npos) << plan;
  EXPECT_GT(filter, agg) << plan;
}

TEST_F(OptimizerTest, CtePushdownIllegalForPR) {
  // PR's Ri has joins + aggregation over the iterative reference: pushing
  // the Qf predicate would change neighbours' ranks. Must not fire.
  std::string pr = workloads::PRQuery(3);
  pr += " WHERE node = 10";
  // (append to Qf: SELECT node, rank FROM pagerank WHERE node = 10)
  std::string plan = Explain(pr);
  EXPECT_EQ(plan.find("[predicate pushed down from Qf]"), std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, CtePushdownDisabledByOption) {
  db_.options().optimizer.enable_cte_predicate_pushdown = false;
  std::string plan = Explain(workloads::FFQuery(5, 100));
  EXPECT_EQ(plan.find("[predicate pushed down from Qf]"), std::string::npos);
}

TEST_F(OptimizerTest, CtePushdownSkipsNonPassThroughColumns) {
  // The predicate references `friends`, which Ri rewrites every iteration:
  // pushing it into R0 would be wrong and must not happen.
  std::string sql =
      "WITH ITERATIVE forecast (node, friends) AS ("
      "  SELECT src, COUNT(dst) FROM edges GROUP BY src "
      "ITERATE "
      "  SELECT node, friends * 2 FROM forecast "
      "UNTIL 3 ITERATIONS) "
      "SELECT node FROM forecast WHERE friends > 100";
  std::string plan = Explain(sql);
  EXPECT_EQ(plan.find("[predicate pushed down from Qf]"), std::string::npos)
      << plan;
}

// --- Fig 9: common-result extraction ------------------------------------------

TEST_F(OptimizerTest, CommonResultHoistsEdgesVertexstatusJoin) {
  std::string plan = Explain(workloads::PRVSQuery(3));
  EXPECT_NE(plan.find("__common#"), std::string::npos) << plan;
  EXPECT_NE(plan.find("loop-invariant common result"), std::string::npos)
      << plan;
  // The hoisted materialize step must come before the loop init.
  size_t common = plan.find("loop-invariant common result");
  size_t init = plan.find("Initialize loop");
  EXPECT_LT(common, init) << plan;
}

TEST_F(OptimizerTest, CommonResultAppliesToSsspVs) {
  std::string plan = Explain(workloads::SSSPVSQuery(3, 1, 10));
  EXPECT_NE(plan.find("__common#"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, CommonResultSkipsPlainPR) {
  // Plain PR has no invariant join pair (the lone edges scan is not worth
  // hoisting, matching the paper's evaluation design).
  std::string plan = Explain(workloads::PRQuery(3));
  EXPECT_EQ(plan.find("__common#"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, CommonResultDisabledByOption) {
  db_.options().optimizer.enable_common_result = false;
  std::string plan = Explain(workloads::PRVSQuery(3));
  EXPECT_EQ(plan.find("__common#"), std::string::npos) << plan;
}

TEST_F(OptimizerTest, RenameStepForWholeDatasetUpdates) {
  std::string plan = Explain(workloads::PRQuery(3));
  EXPECT_NE(plan.find("Rename 'pagerank__working' to 'pagerank'"),
            std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, MergeStepForPartialUpdates) {
  std::string plan = Explain(workloads::SSSPQuery(3, 1, 10));
  EXPECT_NE(plan.find("Merge 'sssp__working' into 'sssp'"), std::string::npos)
      << plan;
}

TEST_F(OptimizerTest, RenameDisabledEmitsMergeForPR) {
  db_.options().optimizer.enable_rename_optimization = false;
  std::string plan = Explain(workloads::PRQuery(3));
  EXPECT_EQ(plan.find("Rename"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Merge 'pagerank__working'"), std::string::npos) << plan;
}

}  // namespace
}  // namespace dbspinner
