// Unit tests for the bound-expression evaluator, SQL NULL semantics, the
// scalar/aggregate function registries, and null-rejection analysis.

#include <gtest/gtest.h>

#include "expr/aggregate_functions.h"
#include "expr/expr.h"
#include "expr/scalar_functions.h"

namespace dbspinner {
namespace {

TablePtr OneRowTable() {
  Schema s;
  s.AddColumn("a", TypeId::kInt64);
  s.AddColumn("b", TypeId::kDouble);
  s.AddColumn("n", TypeId::kInt64);  // null
  auto t = Table::Make(s);
  t->AppendRow({Value::Int64(4), Value::Double(2.5), Value::Null()});
  return t;
}

Value Eval(const BoundExpr& e) {
  auto t = OneRowTable();
  Result<Value> v = EvaluateExpr(e, *t, 0);
  EXPECT_TRUE(v.ok()) << v.status().ToString();
  return v.ok() ? *v : Value();
}

BoundExprPtr Col(size_t i, TypeId t) { return MakeBoundColumnRef(i, t, "c"); }
BoundExprPtr Lit(Value v) { return MakeBoundConstant(std::move(v)); }

TEST(ExprEvalTest, Arithmetic) {
  auto e = MakeBoundBinary(BinaryOp::kAdd, Col(0, TypeId::kInt64),
                           Lit(Value::Int64(3)), TypeId::kInt64);
  EXPECT_EQ(Eval(*e).int64_value(), 7);

  e = MakeBoundBinary(BinaryOp::kMul, Col(0, TypeId::kInt64),
                      Col(1, TypeId::kDouble), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(Eval(*e).double_value(), 10.0);
}

TEST(ExprEvalTest, NullPropagatesThroughArithmetic) {
  auto e = MakeBoundBinary(BinaryOp::kAdd, Col(0, TypeId::kInt64),
                           Col(2, TypeId::kInt64), TypeId::kInt64);
  EXPECT_TRUE(Eval(*e).is_null());
}

TEST(ExprEvalTest, ThreeValuedAnd) {
  // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
  auto null_cmp = MakeBoundBinary(BinaryOp::kEq, Col(2, TypeId::kInt64),
                                  Lit(Value::Int64(1)), TypeId::kBool);
  auto e = MakeBoundBinary(BinaryOp::kAnd, Lit(Value::Bool(false)),
                           null_cmp->Clone(), TypeId::kBool);
  EXPECT_FALSE(Eval(*e).is_null());
  EXPECT_FALSE(Eval(*e).bool_value());
  e = MakeBoundBinary(BinaryOp::kAnd, Lit(Value::Bool(true)),
                      null_cmp->Clone(), TypeId::kBool);
  EXPECT_TRUE(Eval(*e).is_null());
}

TEST(ExprEvalTest, ThreeValuedOr) {
  auto null_cmp = MakeBoundBinary(BinaryOp::kEq, Col(2, TypeId::kInt64),
                                  Lit(Value::Int64(1)), TypeId::kBool);
  auto e = MakeBoundBinary(BinaryOp::kOr, Lit(Value::Bool(true)),
                           null_cmp->Clone(), TypeId::kBool);
  EXPECT_TRUE(Eval(*e).bool_value());
  e = MakeBoundBinary(BinaryOp::kOr, Lit(Value::Bool(false)),
                      null_cmp->Clone(), TypeId::kBool);
  EXPECT_TRUE(Eval(*e).is_null());
}

TEST(ExprEvalTest, ComparisonWithNullIsNull) {
  auto e = MakeBoundBinary(BinaryOp::kLt, Col(2, TypeId::kInt64),
                           Lit(Value::Int64(100)), TypeId::kBool);
  EXPECT_TRUE(Eval(*e).is_null());
}

TEST(ExprEvalTest, PredicateTreatsNullAsFalse) {
  auto t = OneRowTable();
  auto e = MakeBoundBinary(BinaryOp::kLt, Col(2, TypeId::kInt64),
                           Lit(Value::Int64(100)), TypeId::kBool);
  auto sel = EvaluatePredicate(*e, *t);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
}

TEST(ExprEvalTest, BatchFastPathSharesColumn) {
  auto t = OneRowTable();
  auto e = Col(0, TypeId::kInt64);
  auto col = EvaluateExprBatch(*e, *t);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(col->get(), &t->column(0));
}

TEST(ScalarFunctionTest, LeastGreatestIgnoreNulls) {
  const ScalarFunction* least = GetScalarFunction("least");
  ASSERT_NE(least, nullptr);
  Value v = *least->eval({Value::Int64(5), Value::Null(), Value::Int64(2)});
  EXPECT_EQ(v.int64_value(), 2);
  const ScalarFunction* greatest = GetScalarFunction("greatest");
  v = *greatest->eval({Value::Null(), Value::Null()});
  EXPECT_TRUE(v.is_null());
}

TEST(ScalarFunctionTest, Coalesce) {
  const ScalarFunction* fn = GetScalarFunction("coalesce");
  EXPECT_EQ(fn->eval({Value::Null(), Value::Int64(7)})->int64_value(), 7);
  EXPECT_TRUE(fn->eval({Value::Null(), Value::Null()})->is_null());
}

TEST(ScalarFunctionTest, RoundWithDigits) {
  const ScalarFunction* fn = GetScalarFunction("round");
  EXPECT_DOUBLE_EQ(fn->eval({Value::Double(1.23456), Value::Int64(2)})
                       ->double_value(),
                   1.23);
  EXPECT_DOUBLE_EQ(fn->eval({Value::Double(2.5)})->double_value(), 3.0);
}

TEST(ScalarFunctionTest, ModByZeroFails) {
  const ScalarFunction* fn = GetScalarFunction("mod");
  EXPECT_FALSE(fn->eval({Value::Int64(3), Value::Int64(0)}).ok());
}

TEST(ScalarFunctionTest, UnknownFunctionIsNull) {
  EXPECT_EQ(GetScalarFunction("no_such_fn"), nullptr);
}

TEST(ScalarFunctionTest, StringFunctions) {
  EXPECT_EQ(GetScalarFunction("upper")->eval({Value::String("ab")})
                ->string_value(),
            "AB");
  EXPECT_EQ(GetScalarFunction("substr")
                ->eval({Value::String("hello"), Value::Int64(2),
                        Value::Int64(3)})
                ->string_value(),
            "ell");
  EXPECT_EQ(GetScalarFunction("length")->eval({Value::String("abc")})
                ->int64_value(),
            3);
}

TEST(AggregateTest, SumSkipsNullsAndKeepsIntType) {
  AggState s(AggKind::kSum);
  s.Update(Value::Int64(1));
  s.Update(Value::Null());
  s.Update(Value::Int64(2));
  EXPECT_EQ(s.Finalize(TypeId::kInt64).int64_value(), 3);
}

TEST(AggregateTest, SumOfNothingIsNull) {
  AggState s(AggKind::kSum);
  s.Update(Value::Null());
  EXPECT_TRUE(s.Finalize(TypeId::kInt64).is_null());
}

TEST(AggregateTest, CountStarCountsNulls) {
  AggState star(AggKind::kCountStar);
  AggState count(AggKind::kCount);
  star.Update(Value::Null());
  count.Update(Value::Null());
  EXPECT_EQ(star.Finalize(TypeId::kInt64).int64_value(), 1);
  EXPECT_EQ(count.Finalize(TypeId::kInt64).int64_value(), 0);
}

TEST(AggregateTest, MinMax) {
  AggState mn(AggKind::kMin);
  AggState mx(AggKind::kMax);
  for (int v : {3, 1, 2}) {
    mn.Update(Value::Int64(v));
    mx.Update(Value::Int64(v));
  }
  EXPECT_EQ(mn.Finalize(TypeId::kInt64).int64_value(), 1);
  EXPECT_EQ(mx.Finalize(TypeId::kInt64).int64_value(), 3);
}

TEST(AggregateTest, Avg) {
  AggState s(AggKind::kAvg);
  s.Update(Value::Int64(1));
  s.Update(Value::Int64(2));
  EXPECT_DOUBLE_EQ(s.Finalize(TypeId::kDouble).double_value(), 1.5);
}

TEST(AggregateTest, DistinctFilter) {
  DistinctFilter f;
  EXPECT_TRUE(f.Insert(Value::Int64(1)));
  EXPECT_FALSE(f.Insert(Value::Int64(1)));
  EXPECT_FALSE(f.Insert(Value::Double(1.0)));  // cross-type equality
  EXPECT_TRUE(f.Insert(Value::Int64(2)));
}

TEST(AggregateTest, ResolveKinds) {
  EXPECT_EQ(*ResolveAggKind("count", true), AggKind::kCountStar);
  EXPECT_EQ(*ResolveAggKind("SUM", false), AggKind::kSum);
  EXPECT_FALSE(ResolveAggKind("median", false).ok());
  EXPECT_FALSE(ResolveAggKind("sum", true).ok());  // SUM(*) invalid
}

// --- null-rejection analysis (drives outer-join simplification) -------------

TEST(NullRejectionTest, ComparisonRejectsBothSides) {
  auto e = MakeBoundBinary(BinaryOp::kEq, Col(0, TypeId::kInt64),
                           Col(1, TypeId::kDouble), TypeId::kBool);
  std::vector<size_t> nr = NullRejectedColumns(*e);
  EXPECT_EQ(nr, (std::vector<size_t>{0, 1}));
}

TEST(NullRejectionTest, AndUnionsOrIntersects) {
  auto cmp0 = MakeBoundBinary(BinaryOp::kGt, Col(0, TypeId::kInt64),
                              Lit(Value::Int64(0)), TypeId::kBool);
  auto cmp1 = MakeBoundBinary(BinaryOp::kGt, Col(1, TypeId::kDouble),
                              Lit(Value::Int64(0)), TypeId::kBool);
  auto both = MakeBoundBinary(BinaryOp::kAnd, cmp0->Clone(), cmp1->Clone(),
                              TypeId::kBool);
  EXPECT_EQ(NullRejectedColumns(*both), (std::vector<size_t>{0, 1}));
  auto either = MakeBoundBinary(BinaryOp::kOr, cmp0->Clone(), cmp1->Clone(),
                                TypeId::kBool);
  EXPECT_TRUE(NullRejectedColumns(*either).empty());
  auto same = MakeBoundBinary(BinaryOp::kOr, cmp0->Clone(), cmp0->Clone(),
                              TypeId::kBool);
  EXPECT_EQ(NullRejectedColumns(*same), (std::vector<size_t>{0}));
}

TEST(NullRejectionTest, IsNullAndCoalesceRejectNothing) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = BoundExprKind::kIsNull;
  e->type = TypeId::kBool;
  e->children.push_back(Col(0, TypeId::kInt64));
  EXPECT_TRUE(NullRejectedColumns(*e).empty());
}

TEST(ConjunctTest, SplitAndCombine) {
  auto a = MakeBoundBinary(BinaryOp::kGt, Col(0, TypeId::kInt64),
                           Lit(Value::Int64(0)), TypeId::kBool);
  auto b = MakeBoundBinary(BinaryOp::kLt, Col(1, TypeId::kDouble),
                           Lit(Value::Int64(9)), TypeId::kBool);
  auto both = MakeBoundBinary(BinaryOp::kAnd, a->Clone(), b->Clone(),
                              TypeId::kBool);
  std::vector<BoundExprPtr> conjs;
  SplitConjuncts(*both, &conjs);
  ASSERT_EQ(conjs.size(), 2u);
  EXPECT_TRUE(BoundExprEquals(*conjs[0], *a));
  auto recombined = CombineConjuncts(std::move(conjs));
  EXPECT_TRUE(BoundExprEquals(*recombined, *both));
}

TEST(BoundExprTest, RemapAndShift) {
  auto e = MakeBoundBinary(BinaryOp::kAdd, Col(0, TypeId::kInt64),
                           Col(2, TypeId::kInt64), TypeId::kInt64);
  e->RemapColumns({5, 6, 7});
  std::vector<size_t> refs;
  e->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<size_t>{5, 7}));
  e->ShiftColumns(-5);
  refs.clear();
  e->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(e->RefsWithin(0, 3));
  EXPECT_FALSE(e->RefsWithin(1, 3));
}

}  // namespace
}  // namespace dbspinner
