// Recursive CTE (WITH RECURSIVE) semantics: fixed-point union evaluation.

#include <gtest/gtest.h>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

TEST(RecursiveCteTest, CountToTen) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL "
                     "SELECT n + 1 FROM r WHERE n < 10) "
                     "SELECT COUNT(*), MAX(n) FROM r");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 10);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 10);
}

TEST(RecursiveCteTest, UnionDistinctReachesFixpoint) {
  Database db;
  MustExecute(&db, "CREATE TABLE edge (a BIGINT, b BIGINT)");
  // A cycle: 1->2->3->1. UNION (distinct) terminates despite the cycle.
  MustExecute(&db, "INSERT INTO edge VALUES (1, 2), (2, 3), (3, 1)");
  auto t = MustQuery(&db,
                     "WITH RECURSIVE reach (n) AS (SELECT 1 UNION "
                     "SELECT edge.b FROM reach JOIN edge ON reach.n = edge.a) "
                     "SELECT n FROM reach ORDER BY n");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
  EXPECT_EQ(t->GetValue(2, 0).int64_value(), 3);
}

TEST(RecursiveCteTest, TransitiveClosure) {
  Database db;
  MustExecute(&db, "CREATE TABLE edge (a BIGINT, b BIGINT)");
  MustExecute(&db,
              "INSERT INTO edge VALUES (1, 2), (2, 3), (3, 4), (10, 11)");
  auto t = MustQuery(&db,
                     "WITH RECURSIVE reach (n) AS (SELECT 1 UNION "
                     "SELECT edge.b FROM reach JOIN edge ON reach.n = edge.a) "
                     "SELECT COUNT(*) FROM reach");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);  // 1,2,3,4; not 10/11
}

TEST(RecursiveCteTest, BillOfMaterials) {
  // The paper's canonical recursive use case: hierarchical aggregation done
  // after the recursion (aggregates are not allowed inside it).
  Database db;
  MustExecute(&db,
              "CREATE TABLE parts (parent VARCHAR, child VARCHAR, "
              "qty BIGINT)");
  MustExecute(&db,
              "INSERT INTO parts VALUES ('car', 'wheel', 4), "
              "('car', 'engine', 1), ('engine', 'piston', 6), "
              "('wheel', 'bolt', 5)");
  auto t = MustQuery(
      &db,
      "WITH RECURSIVE bom (part, qty) AS ("
      "  SELECT child, qty FROM parts WHERE parent = 'car' "
      "UNION ALL "
      "  SELECT parts.child, bom.qty * parts.qty FROM bom "
      "  JOIN parts ON parts.parent = bom.part) "
      "SELECT part, SUM(qty) FROM bom GROUP BY part ORDER BY part");
  ASSERT_EQ(t->num_rows(), 4u);
  // bolt: 4 wheels * 5 bolts = 20.
  EXPECT_EQ(t->GetValue(0, 0).string_value(), "bolt");
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 20);
  // piston: 1 engine * 6 = 6.
  EXPECT_EQ(t->GetValue(2, 0).string_value(), "piston");
  EXPECT_EQ(t->GetValue(2, 1).int64_value(), 6);
}

TEST(RecursiveCteTest, NonSelfReferentialFallsBackToRegular) {
  Database db;
  auto t = MustQuery(&db,
                     "WITH RECURSIVE c (x) AS (SELECT 5 UNION ALL SELECT 6) "
                     "SELECT SUM(x) FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 11);
}

TEST(RecursiveCteTest, BaseMustNotReferenceSelf) {
  Database db;
  auto result = db.Query(
      "WITH RECURSIVE r (n) AS (SELECT n FROM r UNION ALL SELECT 1) "
      "SELECT * FROM r");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST(RecursiveCteTest, NonUnionBodyFails) {
  Database db;
  MustExecute(&db, "CREATE TABLE t (n BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (1)");
  auto result = db.Query(
      "WITH RECURSIVE r (n) AS (SELECT n + 1 FROM r) SELECT * FROM r");
  ASSERT_FALSE(result.ok());
}

TEST(RecursiveCteTest, GuardStopsRunawayUnionAll) {
  Database db;
  db.options().max_iterations_guard = 100;
  auto result = db.Query(
      "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n FROM r) "
      "SELECT COUNT(*) FROM r");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("max_iterations_guard"),
            std::string::npos);
}

TEST(RecursiveCteTest, RecursiveFeedsIterative) {
  // Recursive and iterative CTEs compose in one statement.
  Database db;
  MustExecute(&db, "CREATE TABLE edge (a BIGINT, b BIGINT)");
  MustExecute(&db, "INSERT INTO edge VALUES (1, 2), (2, 3)");
  auto t = MustQuery(
      &db,
      "WITH RECURSIVE reach (n) AS (SELECT 1 UNION "
      "  SELECT edge.b FROM reach JOIN edge ON reach.n = edge.a), "
      "ITERATIVE grow (total) AS (SELECT COUNT(*) FROM reach ITERATE "
      "  SELECT total * 2 FROM grow UNTIL 2 ITERATIONS) "
      "SELECT total FROM grow");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 12);  // 3 nodes * 2 * 2
}

}  // namespace
}  // namespace dbspinner
