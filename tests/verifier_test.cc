// Tests for the static plan & program verifier (src/verify/, DESIGN.md §9).
//
// Coverage contract: every defect code in AllDefectCodes() has a
// deliberately broken plan or program here that makes exactly that code
// fire (BrokenReport), and the clean-corpus test proves the verifier stays
// silent — in enforcing mode — across every workload under every optimizer
// toggle combination.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include <cmath>
#include <limits>

#include "engine/database.h"
#include "engine/workloads.h"
#include "exec/physical_plan.h"
#include "exec/physical_planner.h"
#include "expr/expr.h"
#include "graph/generator.h"
#include "plan/logical_plan.h"
#include "plan/program.h"
#include "test_util.h"
#include "verify/verify.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using verify::AllDefectCodes;
using verify::DefectCode;
using verify::DefectCodeName;
using verify::EnforceOrCount;
using verify::VerifyContext;
using verify::VerifyPhysicalPlan;
using verify::VerifyPlan;
using verify::VerifyProgram;
using verify::VerifyReport;

Schema OneInt() { return Schema({{"x", TypeId::kInt64}}); }
Schema OneString() { return Schema({{"s", TypeId::kString}}); }

LogicalOpPtr Values(Schema schema) {
  auto op = std::make_unique<LogicalOp>();
  op->kind = LogicalOpKind::kValues;
  op->output_schema = std::move(schema);
  return op;
}

LogicalOpPtr ScanResult(const std::string& name, Schema schema) {
  return MakeScan(ScanSource::kResult, name, std::move(schema));
}

Step MakeStep(Step::Kind kind, int id) {
  Step s;
  s.kind = kind;
  s.id = id;
  return s;
}

Step Mat(int id, const std::string& target, LogicalOpPtr plan) {
  Step s = MakeStep(Step::Kind::kMaterialize, id);
  s.target = target;
  s.plan = std::move(plan);
  return s;
}

Step Final(int id, LogicalOpPtr plan) {
  Step s = MakeStep(Step::Kind::kFinal, id);
  s.plan = std::move(plan);
  return s;
}

Step InitLoop(int id, int loop_id, LoopSpec spec) {
  Step s = MakeStep(Step::Kind::kInitLoop, id);
  s.loop_id = loop_id;
  s.loop = std::move(spec);
  return s;
}

Step LoopCheck(int id, int loop_id, LoopSpec spec, int jump_to_id) {
  Step s = MakeStep(Step::Kind::kLoopCheck, id);
  s.loop_id = loop_id;
  s.loop = std::move(spec);
  s.jump_to_id = jump_to_id;
  return s;
}

Step Rename(int id, const std::string& source, const std::string& target,
            int loop_id = 0) {
  Step s = MakeStep(Step::Kind::kRename, id);
  s.source = source;
  s.target = target;
  s.loop_id = loop_id;
  return s;
}

LoopSpec Iterations(int64_t n) {
  LoopSpec spec;
  spec.kind = LoopSpec::Kind::kIterations;
  spec.n = n;
  return spec;
}

Program MakeProgram(std::vector<Step> steps,
                    std::vector<IterativeCteInfo> ctes = {}) {
  Program p;
  p.steps = std::move(steps);
  p.iterative_ctes = std::move(ctes);
  int max_id = 0;
  for (const Step& s : p.steps) max_id = std::max(max_id, s.id);
  p.next_id = max_id + 1;
  return p;
}

PhysicalOpPtr PhysValues(Schema schema) {
  return std::make_unique<PhysicalValues>(std::move(schema),
                                          std::vector<std::vector<Value>>{});
}

/// A custom operator claiming the source role without being a leaf
/// materializer — the V203 pipeline-shape artifact.
class FakeSourceOp final : public PhysicalOp {
 public:
  explicit FakeSourceOp(Schema s) : PhysicalOp(std::move(s)) {}
  Result<TablePtr> Execute(ExecContext&) const override {
    return Status::Internal("verifier artifact, never executed");
  }
  const char* Name() const override { return "FakeSource"; }
  PipelineRole pipeline_role() const override { return PipelineRole::kSource; }
};

/// A custom operator claiming a fused streaming role the chunk kernels
/// would static_cast to PhysicalFilter — the V207 morsel-safety artifact.
class RogueStreamingOp final : public PhysicalOp {
 public:
  explicit RogueStreamingOp(Schema s) : PhysicalOp(std::move(s)) {}
  Result<TablePtr> Execute(ExecContext&) const override {
    return Status::Internal("verifier artifact, never executed");
  }
  const char* Name() const override { return "RogueStage"; }
  PipelineRole pipeline_role() const override { return PipelineRole::kFilter; }
};

bool HasCode(const VerifyReport& report, DefectCode code) {
  for (const auto& d : report.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

/// Builds a minimal artifact whose only intended defect is `code` and
/// returns its verification report. Some cases emit extra collateral
/// diagnostics (e.g. a dead body store next to a non-terminating loop);
/// callers assert the target code is present, not that it is alone.
VerifyReport BrokenReport(DefectCode code) {
  switch (code) {
    case DefectCode::kV001: {  // filter with no child
      LogicalOp op;
      op.kind = LogicalOpKind::kFilter;
      op.output_schema = OneInt();
      op.predicate = MakeBoundConstant(Value::Bool(true));
      return VerifyPlan(op);
    }
    case DefectCode::kV002: {  // filter output schema != child schema
      LogicalOp op;
      op.kind = LogicalOpKind::kFilter;
      op.output_schema = Schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}});
      op.predicate = MakeBoundConstant(Value::Bool(true));
      op.children.push_back(Values(OneInt()));
      return VerifyPlan(op);
    }
    case DefectCode::kV003: {  // predicate refs column 5 of a 1-col input
      LogicalOp op;
      op.kind = LogicalOpKind::kFilter;
      op.output_schema = OneInt();
      op.predicate = MakeBoundColumnRef(5, TypeId::kBool, "ghost");
      op.children.push_back(Values(OneInt()));
      return VerifyPlan(op);
    }
    case DefectCode::kV004: {  // non-boolean filter predicate
      LogicalOp op;
      op.kind = LogicalOpKind::kFilter;
      op.output_schema = OneInt();
      op.predicate = MakeBoundConstant(Value::Int64(7));
      op.children.push_back(Values(OneInt()));
      return VerifyPlan(op);
    }
    case DefectCode::kV005: {  // join comparing BIGINT with VARCHAR
      LogicalOp op;
      op.kind = LogicalOpKind::kJoin;
      op.output_schema = Schema({{"x", TypeId::kInt64}, {"s", TypeId::kString}});
      op.children.push_back(Values(OneInt()));
      op.children.push_back(Values(OneString()));
      op.join_condition = MakeBoundBinary(
          BinaryOp::kEq, MakeBoundColumnRef(0, TypeId::kInt64, "x"),
          MakeBoundColumnRef(1, TypeId::kString, "s"), TypeId::kBool);
      return VerifyPlan(op);
    }
    case DefectCode::kV006: {  // SUM with no argument
      LogicalOp op;
      op.kind = LogicalOpKind::kAggregate;
      op.output_schema = Schema({{"total", TypeId::kInt64}});
      op.children.push_back(Values(OneInt()));
      AggregateSpec agg;
      agg.kind = AggKind::kSum;
      agg.arg = nullptr;  // only COUNT(*) may omit the argument
      agg.result_type = TypeId::kInt64;
      op.aggregates.push_back(std::move(agg));
      return VerifyPlan(op);
    }
    case DefectCode::kV007: {  // EXCEPT over incompatible children
      LogicalOp op;
      op.kind = LogicalOpKind::kExcept;
      op.output_schema = OneInt();
      op.children.push_back(Values(OneInt()));
      op.children.push_back(Values(OneString()));
      return VerifyPlan(op);
    }
    case DefectCode::kV008: {  // scan of a table the catalog does not have
      Database db;
      VerifyContext ctx;
      ctx.catalog = &db.catalog();
      LogicalOpPtr scan =
          MakeScan(ScanSource::kCatalog, "no_such_table", OneInt());
      return VerifyPlan(*scan, ctx);
    }
    case DefectCode::kV009: {  // VALUES row wider than the declared schema
      LogicalOp op;
      op.kind = LogicalOpKind::kValues;
      op.output_schema = OneInt();
      op.rows.push_back({Value::Int64(1), Value::Int64(2)});
      return VerifyPlan(op);
    }
    case DefectCode::kV010: {  // negative LIMIT (only -1 means "none")
      LogicalOp op;
      op.kind = LogicalOpKind::kLimit;
      op.output_schema = OneInt();
      op.children.push_back(Values(OneInt()));
      op.limit = -5;
      return VerifyPlan(op);
    }
    case DefectCode::kV011: {  // delta-restrict with no source result
      LogicalOp op;
      op.kind = LogicalOpKind::kDeltaRestrict;
      op.output_schema = OneInt();
      op.children.push_back(Values(OneInt()));
      op.delta_source = "";
      return VerifyPlan(op);
    }
    case DefectCode::kV101: {  // copy of a name nothing ever bound
      std::vector<Step> steps;
      Step copy = MakeStep(Step::Kind::kCopyResult, 1);
      copy.source = "ghost";
      copy.target = "g";
      steps.push_back(std::move(copy));
      steps.push_back(Final(2, ScanResult("g", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV102: {  // read after a rename consumed the name
      std::vector<Step> steps;
      steps.push_back(Mat(1, "a", Values(OneInt())));
      steps.push_back(Rename(2, "a", "b"));
      Step copy = MakeStep(Step::Kind::kCopyResult, 3);
      copy.source = "a";
      copy.target = "c";
      steps.push_back(std::move(copy));
      steps.push_back(Final(4, ScanResult("b", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV103: {  // rebind with the first value never read
      std::vector<Step> steps;
      steps.push_back(Mat(1, "a", Values(OneInt())));
      steps.push_back(Mat(2, "a", Values(OneInt())));
      steps.push_back(Final(3, ScanResult("a", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV104: {  // loop-body materialization nobody consumes
      std::vector<Step> steps;
      steps.push_back(Mat(1, "cte", Values(OneInt())));
      steps.push_back(InitLoop(2, 1, Iterations(2)));
      steps.push_back(Mat(3, "junk", Values(OneInt())));
      steps.push_back(LoopCheck(4, 1, Iterations(2), /*jump_to_id=*/3));
      steps.push_back(Final(5, ScanResult("cte", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV105: {  // loop check jumping to a missing step id
      std::vector<Step> steps;
      steps.push_back(Mat(1, "cte", Values(OneInt())));
      steps.push_back(InitLoop(2, 1, Iterations(2)));
      steps.push_back(LoopCheck(3, 1, Iterations(2), /*jump_to_id=*/99));
      steps.push_back(Final(4, ScanResult("cte", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV106: {  // UNTIL DELTA < 0 can never hold
      LoopSpec spec;
      spec.kind = LoopSpec::Kind::kDeltaLess;
      spec.n = 0;
      spec.cte_name = "cte";
      std::vector<Step> steps;
      steps.push_back(Mat(1, "cte", Values(OneInt())));
      steps.push_back(InitLoop(2, 1, spec.Clone()));
      steps.push_back(Mat(3, "cte", Values(OneInt())));
      steps.push_back(LoopCheck(4, 1, spec.Clone(), /*jump_to_id=*/3));
      steps.push_back(Final(5, ScanResult("cte", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV107: {  // "hoisted" step reads a name the body rebinds
      std::vector<Step> steps;
      steps.push_back(Mat(1, "x", Values(OneInt())));
      steps.push_back(Mat(2, "h", ScanResult("x", OneInt())));
      steps.push_back(InitLoop(3, 1, Iterations(2)));
      steps.push_back(Mat(4, "x", Values(OneInt())));
      steps.push_back(LoopCheck(5, 1, Iterations(2), /*jump_to_id=*/4));
      steps.push_back(Final(6, ScanResult("h", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV108: {  // pushdown_legal fact vs an Ri with aggregation
      auto ri_plan = std::make_unique<LogicalOp>();
      ri_plan->kind = LogicalOpKind::kAggregate;
      ri_plan->output_schema = OneInt();
      ri_plan->children.push_back(ScanResult("cte", OneInt()));
      ri_plan->group_exprs.push_back(
          MakeBoundColumnRef(0, TypeId::kInt64, "x"));
      std::vector<Step> steps;
      steps.push_back(Mat(1, "cte", Values(OneInt())));
      steps.push_back(InitLoop(2, 1, Iterations(2)));
      steps.push_back(Mat(3, "working", std::move(ri_plan)));
      steps.push_back(Rename(4, "working", "cte", /*loop_id=*/1));
      steps.push_back(LoopCheck(5, 1, Iterations(2), /*jump_to_id=*/3));
      steps.push_back(Final(6, ScanResult("cte", OneInt())));
      IterativeCteInfo info;
      info.cte_name = "cte";
      info.working_name = "working";
      info.cte_schema = OneInt();
      info.r0_step_id = 1;
      info.init_step_id = 2;
      info.ri_step_id = 3;
      info.check_step_id = 5;
      info.pushdown_legal = true;  // contradicted by the aggregate in Ri
      info.pass_through = {false};
      return VerifyProgram(MakeProgram(std::move(steps), {std::move(info)}));
    }
    case DefectCode::kV109: {  // rename onto itself
      std::vector<Step> steps;
      steps.push_back(Mat(1, "a", Values(OneInt())));
      steps.push_back(Rename(2, "a", "a"));
      steps.push_back(Final(3, ScanResult("a", OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV110: {  // materialize without a plan
      std::vector<Step> steps;
      Step bad = MakeStep(Step::Kind::kMaterialize, 1);
      bad.target = "x";
      steps.push_back(std::move(bad));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV111: {  // final step that is not last
      std::vector<Step> steps;
      steps.push_back(Final(1, Values(OneInt())));
      steps.push_back(Mat(2, "x", Values(OneInt())));
      return VerifyProgram(MakeProgram(std::move(steps)));
    }
    case DefectCode::kV201: {  // physical filter with no child
      PhysicalFilter op(OneInt(), MakeBoundConstant(Value::Bool(true)));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV202: {  // physical schema disagrees with logical node
      LogicalOpPtr logical = Values(OneInt());
      PhysicalOpPtr phys = PhysValues(OneString());
      return VerifyPhysicalPlan(*phys, logical.get());
    }
    case DefectCode::kV203: {  // source-role operator that is not a leaf
      FakeSourceOp op(OneInt());
      op.AddChild(PhysValues(OneInt()));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV204: {  // filter kernel reads column 5 of a 1-col chunk
      PhysicalFilter op(OneInt(), MakeBoundColumnRef(5, TypeId::kBool, "ghost"));
      op.AddChild(PhysValues(OneInt()));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV205: {  // NaN build estimate: fusion undecidable
      PhysicalHashJoin op(Schema({{"x", TypeId::kInt64}, {"y", TypeId::kInt64}}),
                          JoinType::kInner, {0}, {0}, nullptr);
      op.set_build_rows_estimate(std::numeric_limits<double>::quiet_NaN());
      op.AddChild(PhysValues(Schema({{"x", TypeId::kInt64}})));
      op.AddChild(PhysValues(Schema({{"y", TypeId::kInt64}})));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV206: {  // COUNT(DISTINCT *): no deferral path
      AggregateSpec spec;
      spec.kind = AggKind::kCountStar;
      spec.distinct = true;
      std::vector<AggregateSpec> specs;
      specs.push_back(std::move(spec));
      PhysicalHashAggregate op(Schema({{"n", TypeId::kInt64}}), {},
                               std::move(specs));
      op.AddChild(PhysValues(OneInt()));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV207: {  // streaming role on a type the kernels can't cast
      RogueStreamingOp op(OneInt());
      op.AddChild(PhysValues(OneInt()));
      return VerifyPhysicalPlan(op);
    }
    case DefectCode::kV208: {  // physical scan of a table the catalog lacks
      Database db;
      VerifyContext ctx;
      ctx.catalog = &db.catalog();
      PhysicalScan op(OneInt(), /*from_catalog=*/true, "no_such_table");
      return VerifyPhysicalPlan(op, nullptr, ctx);
    }
  }
  return VerifyReport();
}

// ---------------------------------------------------------------------------
// Per-code firing cases
// ---------------------------------------------------------------------------

TEST(VerifierDefects, EveryDefectCodeHasAFailingCase) {
  for (DefectCode code : AllDefectCodes()) {
    VerifyReport report = BrokenReport(code);
    EXPECT_FALSE(report.ok()) << DefectCodeName(code);
    EXPECT_TRUE(HasCode(report, code))
        << DefectCodeName(code) << " expected in:\n"
        << report.ToString();
  }
}

TEST(VerifierDefects, DefectTableIsWellFormed) {
  const std::vector<DefectCode>& codes = AllDefectCodes();
  EXPECT_EQ(codes.size(), 30u);
  std::vector<std::string> names;
  for (DefectCode code : codes) {
    names.push_back(DefectCodeName(code));
    EXPECT_FALSE(std::string(verify::DefectCodeDescription(code)).empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) == names.end())
      << "duplicate defect code names";
}

TEST(VerifierDefects, DiagnosticRenderingCarriesCodeStepAndExcerpt) {
  VerifyReport report = BrokenReport(DefectCode::kV103);
  ASSERT_FALSE(report.ok());
  const auto& d = report.diagnostics[0];
  EXPECT_EQ(std::string(DefectCodeName(d.code)), "V103");
  EXPECT_EQ(d.step_id, 2);
  std::string line = d.ToString();
  EXPECT_NE(line.find("V103"), std::string::npos);
  EXPECT_NE(line.find("[step 2]"), std::string::npos);
  report.phase = "after-binding";
  EXPECT_NE(report.ToString().find("after-binding"), std::string::npos);
}

TEST(VerifierDefects, CleanPlanAndProgramProduceEmptyReports) {
  LogicalOpPtr plan = Values(OneInt());
  EXPECT_TRUE(VerifyPlan(*plan).ok());

  std::vector<Step> steps;
  steps.push_back(Mat(1, "a", Values(OneInt())));
  steps.push_back(Final(2, ScanResult("a", OneInt())));
  VerifyReport report = VerifyProgram(MakeProgram(std::move(steps)));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// The physical checker must stay silent on trees the planner actually
// produces: compile a filter-over-values plan and verify it against its own
// logical source, with the MPP options that arm every option-dependent
// V2xx check.
TEST(VerifierDefects, CleanCompiledPhysicalPlanProducesEmptyReport) {
  LogicalOpPtr child = Values(OneInt());
  LogicalOpPtr plan =
      MakeFilter(MakeBoundBinary(BinaryOp::kEq,
                                 MakeBoundColumnRef(0, TypeId::kInt64, "x"),
                                 MakeBoundConstant(Value::Int64(1)),
                                 TypeId::kBool),
                 std::move(child));
  Result<PhysicalOpPtr> phys = CreatePhysicalPlan(*plan);
  ASSERT_TRUE(phys.ok()) << phys.status().ToString();
  EngineOptions eo;
  eo.num_workers = 8;
  VerifyContext ctx;
  ctx.options = &eo;
  VerifyReport report = VerifyPhysicalPlan(**phys, plan.get(), ctx);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// A step that consumes its own target before rebinding it (append/merge/
// dedupe) must NOT be flagged as a dead store of the previous binding —
// the regression behind the verifier's own first field bug.
TEST(VerifierDefects, AppendToOwnTargetIsNotADeadStore) {
  std::vector<Step> steps;
  steps.push_back(Mat(1, "acc", Values(OneInt())));
  steps.push_back(Mat(2, "delta", Values(OneInt())));
  Step append = MakeStep(Step::Kind::kAppendResult, 3);
  append.target = "acc";
  append.source = "delta";
  steps.push_back(std::move(append));
  steps.push_back(Final(4, ScanResult("acc", OneInt())));
  VerifyReport report = VerifyProgram(MakeProgram(std::move(steps)));
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// Escape-hatch policy
// ---------------------------------------------------------------------------

TEST(VerifierPolicy, EnforceOrCountContract) {
  int64_t counter = 0;
  VerifyReport clean;
  EXPECT_TRUE(EnforceOrCount(clean, /*enforce=*/true, &counter).ok());
  EXPECT_EQ(counter, 0);

  VerifyReport broken = BrokenReport(DefectCode::kV103);
  Status enforced = EnforceOrCount(broken, /*enforce=*/true, &counter);
  EXPECT_EQ(enforced.code(), StatusCode::kInternal);
  EXPECT_NE(enforced.message().find("V103"), std::string::npos);
  EXPECT_EQ(counter, static_cast<int64_t>(broken.diagnostics.size()));

  // Release posture: log-and-continue, but the counter still advances so
  // ExecStats::verify_violations surfaces the event.
  int64_t release_counter = 0;
  EXPECT_TRUE(EnforceOrCount(broken, /*enforce=*/false, &release_counter).ok());
  EXPECT_EQ(release_counter, static_cast<int64_t>(broken.diagnostics.size()));
}

TEST(VerifierPolicy, ExecStatsRendersViolationCounter) {
  ExecStats stats;
  stats.verify_violations = 3;
  EXPECT_NE(stats.ToString().find("verify_violations=3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipeline integration (Database hooks, EXPLAIN surfaces)
// ---------------------------------------------------------------------------

TEST(VerifierPipeline, ExplainVerifyAppendsReport) {
  Database db;
  MustExecute(&db, "CREATE TABLE t (x BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (1), (2)");
  Result<QueryResult> r = db.Execute("EXPLAIN (VERIFY) SELECT * FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->explain.find("verify (final program): ok"), std::string::npos)
      << r->explain;
  // Plain EXPLAIN (VERIFY) also compiles the program (without running it)
  // so the post-physical-compilation V2xx stage renders alongside the
  // logical report.
  EXPECT_NE(r->explain.find("verify (after-compile): ok"), std::string::npos)
      << r->explain;
}

TEST(VerifierPipeline, ExplainAnalyzeVerifyCombination) {
  Database db;
  MustExecute(&db, "CREATE TABLE t (x BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (1), (2)");
  Result<QueryResult> r =
      db.Execute("EXPLAIN (ANALYZE, VERIFY) SELECT * FROM t WHERE x > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->explain.find("verify (final program): ok"), std::string::npos)
      << r->explain;
  // The golden stats line: a clean run reports zero counted violations.
  EXPECT_NE(r->explain.find("verify_violations=0"), std::string::npos)
      << r->explain;
}

TEST(VerifierPipeline, StatsCounterIsZeroOnCleanQueries) {
  Database db;
  db.options().verify.enforce = true;
  MustExecute(&db, "CREATE TABLE t (x BIGINT)");
  MustExecute(&db, "INSERT INTO t VALUES (1), (2), (3)");
  Result<QueryResult> r =
      db.Execute("SELECT x FROM t WHERE x > 1 ORDER BY x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.verify_violations, 0);
}

TEST(VerifierPipeline, VerifyCanBeDisabled) {
  Database db;
  db.options().verify.verify_plans = false;
  MustExecute(&db, "CREATE TABLE t (x BIGINT)");
  Result<QueryResult> r = db.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.verify_violations, 0);
}

// ---------------------------------------------------------------------------
// Clean corpus: every workload under every optimizer toggle combination,
// verifier enforcing. A diagnostic anywhere fails the query with kInternal.
// ---------------------------------------------------------------------------

class VerifierCleanCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphSpec spec;
    spec.kind = graph::GraphKind::kPreferentialAttachment;
    spec.num_nodes = 40;
    spec.num_edges = 120;
    spec.seed = 7;
    graph_ = graph::Generate(spec);
  }

  graph::EdgeList graph_;
};

TEST_F(VerifierCleanCorpusTest, AllWorkloadsAllToggleCombinations) {
  const std::vector<std::string> queries = {
      workloads::PRQuery(2),
      workloads::PRVSQuery(2),
      workloads::SSSPQuery(3, 1, 2),
      workloads::SSSPVSQuery(3, 1, 2),
      workloads::FFQuery(2, 2, 1000000),
      workloads::FFDeltaQuery(1, 2),
      workloads::SSSPDataConditionQuery(1, 2),
      // Recursive CTE and plain pipelines round out the program shapes.
      "WITH RECURSIVE reach (node) AS (SELECT src FROM edges WHERE src = 1 "
      "UNION SELECT e.dst FROM edges e JOIN reach r ON e.src = r.node) "
      "SELECT COUNT(*) FROM reach",
      "SELECT src, COUNT(*) AS deg FROM edges GROUP BY src "
      "ORDER BY deg DESC LIMIT 5",
  };

  // The five structural rules reshape the Program itself; sweep their full
  // cross product. The remaining plan-local toggles ride along pinned to
  // the bit pattern so both settings of each are exercised many times.
  for (int mask = 0; mask < 32; ++mask) {
    EngineOptions eo;
    eo.verify.verify_plans = true;
    eo.verify.enforce = true;
    eo.optimizer.enable_cte_predicate_pushdown = (mask & 1) != 0;
    eo.optimizer.enable_common_result = (mask & 2) != 0;
    eo.optimizer.enable_rename_optimization = (mask & 4) != 0;
    eo.optimizer.enable_delta_iteration = (mask & 8) != 0;
    eo.optimizer.enable_predicate_pushdown = (mask & 16) != 0;
    eo.optimizer.enable_constant_folding = (mask & 1) != 0;
    eo.optimizer.enable_join_simplification = (mask & 2) != 0;
    eo.optimizer.enable_join_build_cache = (mask & 4) != 0;

    Database db(eo);
    ASSERT_TRUE(graph::LoadIntoDatabase(&db, graph_, 0.8, 99).ok());
    for (const std::string& sql : queries) {
      Result<QueryResult> r = db.Execute(sql);
      ASSERT_TRUE(r.ok()) << "toggles=" << mask << "\n"
                          << r.status().ToString() << "\nSQL: " << sql;
      EXPECT_EQ(r->stats.verify_violations, 0)
          << "toggles=" << mask << "\nSQL: " << sql;
    }
  }
}

// The V2xx clean corpus: the same workloads swept across vectorized
// execution on/off and MPP widths 1/2/8, verifier enforcing, with the
// thresholds lowered so parallel fused pipelines (broadcast probes, fused
// pre-aggregation, morsel stealing) actually engage on the small test
// graph. The "after-compile" stage runs the pipeline checker on every
// step's physical plan, so any V2xx diagnostic fails the query with
// kInternal.
TEST_F(VerifierCleanCorpusTest, VectorizedAndWidthSweepIsV2xxClean) {
  const std::vector<std::string> queries = {
      workloads::PRQuery(2),
      workloads::PRVSQuery(2),
      workloads::SSSPQuery(3, 1, 2),
      workloads::SSSPVSQuery(3, 1, 2),
      workloads::FFQuery(2, 2, 1000000),
      workloads::FFDeltaQuery(1, 2),
      workloads::SSSPDataConditionQuery(1, 2),
      "WITH RECURSIVE reach (node) AS (SELECT src FROM edges WHERE src = 1 "
      "UNION SELECT e.dst FROM edges e JOIN reach r ON e.src = r.node) "
      "SELECT COUNT(*) FROM reach",
      "SELECT src, COUNT(*) AS deg FROM edges GROUP BY src "
      "ORDER BY deg DESC LIMIT 5",
  };

  for (bool vectorized : {false, true}) {
    for (int width : {1, 2, 8}) {
      EngineOptions eo;
      eo.verify.verify_plans = true;
      eo.verify.enforce = true;
      eo.optimizer.vectorized_exec = vectorized;
      eo.num_workers = width;
      eo.mpp_min_rows_per_task = 1;
      eo.morsel_size = 16;

      Database db(eo);
      ASSERT_TRUE(graph::LoadIntoDatabase(&db, graph_, 0.8, 99).ok());
      for (const std::string& sql : queries) {
        Result<QueryResult> r = db.Execute(sql);
        ASSERT_TRUE(r.ok())
            << "vectorized=" << vectorized << " width=" << width << "\n"
            << r.status().ToString() << "\nSQL: " << sql;
        EXPECT_EQ(r->stats.verify_violations, 0)
            << "vectorized=" << vectorized << " width=" << width
            << "\nSQL: " << sql;
      }
    }
  }
}

}  // namespace
}  // namespace dbspinner
