// Negative lock-discipline artifact — this file MUST NOT compile under the
// CI thread-safety job (clang, -Wthread-safety -Wthread-safety-beta, both
// promoted to errors). It is never added to any CMake target; the CI step
// compiles it standalone and asserts clang rejects every violation below.
// If this file ever compiles cleanly, the annotation pass has regressed
// (macros expanding to nothing under clang, or the analysis flags dropped).
//
// Three intentional violations of the engine's lock discipline
// (DESIGN.md §13):
//   1. Reading a DBSP_GUARDED_BY member without holding its mutex.
//   2. Calling a DBSP_REQUIRES helper without the lock (the "Locked"-suffix
//      contract every storage-layer helper uses).
//   3. A misordered acquisition: taking the WAL-append-stand-in lock while
//      already holding the buffer-latch-stand-in, against their declared
//      DBSP_ACQUIRED_AFTER order — the same inner-before-outer inversion
//      the engine-wide table (commit lock -> catalog publish -> WAL append
//      -> buffer latch) forbids.

#include "common/thread_annotations.h"

namespace dbspinner {
namespace {

class LockDisciplineArtifact {
 public:
  // Violation 1: unguarded read of a guarded member.
  int ReadWithoutLock() { return balance_; }

  // Violation 2: REQUIRES helper invoked lock-free.
  void CallLockedHelperWithoutLock() { MutateLocked(); }

  // Violation 3: acquisition against the declared order. The checked
  // discipline says wal_mu_ is acquired before buffer_mu_; this takes them
  // inner-first.
  void MisorderedAcquisition() {
    MutexLock inner(buffer_mu_);
    MutexLock outer(wal_mu_);  // -Wthread-safety-beta: wrong order
    balance_ = 0;              // (guarded by wal_mu_, held — not the bug here)
  }

 private:
  void MutateLocked() DBSP_REQUIRES(wal_mu_) { ++balance_; }

  Mutex wal_mu_ DBSP_ACQUIRED_BEFORE(buffer_mu_);
  Mutex buffer_mu_;
  int balance_ DBSP_GUARDED_BY(wal_mu_) = 0;
};

}  // namespace
}  // namespace dbspinner
