// Parameterized property sweep: for every graph shape x seed x iteration
// count, the SQL workloads must match the reference implementations and the
// engine's invariants must hold (row counts, key uniqueness, monotonicity).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <optional>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "graph/reference_algorithms.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using graph::EdgeList;
using testing::MustQuery;

struct Sweep {
  graph::GraphKind kind;
  int64_t nodes;
  int64_t edges;
  uint64_t seed;
  int iterations;
};

std::string SweepName(const ::testing::TestParamInfo<Sweep>& info) {
  const Sweep& s = info.param;
  std::string kind =
      s.kind == graph::GraphKind::kPreferentialAttachment
          ? "pa"
          : (s.kind == graph::GraphKind::kUniform ? "uni" : "grid");
  return kind + "_n" + std::to_string(s.nodes) + "_s" +
         std::to_string(s.seed) + "_i" + std::to_string(s.iterations);
}

class WorkloadPropertyTest : public ::testing::TestWithParam<Sweep> {
 protected:
  void SetUp() override {
    const Sweep& s = GetParam();
    graph::GraphSpec spec;
    spec.kind = s.kind;
    spec.num_nodes = s.nodes;
    spec.num_edges = s.edges;
    spec.seed = s.seed;
    graph_ = graph::Generate(spec);
    ASSERT_TRUE(graph::LoadIntoDatabase(&db_, graph_, 0.7, s.seed + 1).ok());
  }

  Database db_;
  EdgeList graph_;
};

TEST_P(WorkloadPropertyTest, PageRankMatchesReference) {
  int iters = GetParam().iterations;
  auto sql = MustQuery(&db_, workloads::PRQuery(iters));
  auto ref = graph::ReferencePageRank(graph_, iters);
  std::map<int64_t, std::optional<double>> expected;
  for (const auto& row : ref) expected[row.node] = row.rank;
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    Value rank = sql->GetValue(i, 1);
    ASSERT_TRUE(expected.count(node));
    ASSERT_EQ(rank.is_null(), !expected[node].has_value()) << "node " << node;
    if (expected[node].has_value()) {
      EXPECT_NEAR(rank.AsDouble(), *expected[node], 1e-9) << "node " << node;
    }
  }
}

TEST_P(WorkloadPropertyTest, SsspMatchesReferenceAndIsMonotone) {
  int iters = GetParam().iterations;
  std::string sql_text = workloads::SSSPQuery(iters, 1, 2);
  size_t pos = sql_text.rfind("SELECT distance");
  sql_text = sql_text.substr(0, pos) + "SELECT node, distance FROM sssp";
  auto sql = MustQuery(&db_, sql_text);
  auto ref = graph::ReferenceSssp(graph_, iters, 1);
  std::map<int64_t, double> expected;
  for (const auto& row : ref) expected[row.node] = row.distance;
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    double d = sql->GetValue(i, 1).AsDouble();
    EXPECT_NEAR(d, expected[node], 1e-9) << "node " << node;
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 9999999.0);
  }
}

TEST_P(WorkloadPropertyTest, ForecastMatchesReference) {
  int iters = GetParam().iterations;
  auto sql = MustQuery(&db_, workloads::FFQuery(iters, 1, 10000000));
  auto ref = graph::ReferenceForecast(graph_, iters);
  std::map<int64_t, double> expected;
  for (const auto& row : ref) expected[row.node] = row.friends;
  ASSERT_EQ(sql->num_rows(), expected.size());
  for (size_t i = 0; i < sql->num_rows(); ++i) {
    int64_t node = sql->GetValue(i, 0).int64_value();
    double want = expected[node];
    EXPECT_NEAR(sql->GetValue(i, 1).AsDouble(), want,
                1e-6 * std::max(1.0, std::fabs(want)))
        << "node " << node;
  }
}

TEST_P(WorkloadPropertyTest, CteKeysStayUnique) {
  // Invariant: the CTE table always keeps one row per node.
  int iters = GetParam().iterations;
  std::string sql_text = workloads::PRQuery(iters);
  size_t pos = sql_text.rfind("SELECT node, rank");
  sql_text = sql_text.substr(0, pos) +
             "SELECT COUNT(*) - COUNT(DISTINCT node) FROM pagerank";
  auto t = MustQuery(&db_, sql_text);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 0);
}

TEST_P(WorkloadPropertyTest, MoreIterationsNeverLosesRows) {
  int iters = GetParam().iterations;
  auto few = MustQuery(&db_, workloads::PRQuery(1));
  auto more = MustQuery(&db_, workloads::PRQuery(iters));
  EXPECT_EQ(few->num_rows(), more->num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, WorkloadPropertyTest,
    ::testing::Values(
        Sweep{graph::GraphKind::kPreferentialAttachment, 60, 200, 11, 2},
        Sweep{graph::GraphKind::kPreferentialAttachment, 150, 700, 12, 5},
        Sweep{graph::GraphKind::kPreferentialAttachment, 300, 1500, 13, 8},
        Sweep{graph::GraphKind::kUniform, 100, 300, 14, 3},
        Sweep{graph::GraphKind::kUniform, 200, 1200, 15, 6},
        Sweep{graph::GraphKind::kGrid, 49, 0, 16, 7},
        Sweep{graph::GraphKind::kGrid, 100, 0, 17, 12}),
    SweepName);

}  // namespace
}  // namespace dbspinner
