// Block codec property tests (DESIGN.md §12): every distribution the
// compressor specializes for must round-trip exactly, and every malformed
// payload must surface a typed kCorruption — never UB, never a crash.

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/value.h"
#include "storage/codec.h"
#include "storage/column_vector.h"

namespace dbspinner {
namespace {

// Encode all of `col`, decode into a fresh vector, and require row-exact
// equality (NULLs included). Returns the codec chosen, so distribution
// tests can assert the compressor actually specialized.
BlockCodec RoundTrip(const ColumnVector& col) {
  EncodedBlock blk = EncodeBlock(col, 0, col.size());
  EXPECT_EQ(blk.rows, col.size());
  ColumnVector out(col.type());
  Status st = DecodeBlock(blk.codec, col.type(), blk.rows,
                          reinterpret_cast<const uint8_t*>(blk.payload.data()),
                          blk.payload.size(), &out);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(out.size(), col.size());
  for (size_t i = 0; i < col.size() && i < out.size(); ++i) {
    EXPECT_EQ(col.IsNull(i), out.IsNull(i)) << "null mismatch at row " << i;
    if (!col.IsNull(i)) {
      EXPECT_TRUE(col.EqualsAt(i, out, i))
          << "row " << i << ": " << col.GetValue(i).ToString() << " vs "
          << out.GetValue(i).ToString() << " (codec "
          << BlockCodecName(blk.codec) << ")";
    }
  }
  return blk.codec;
}

TEST(CodecTest, EmptyBlock) {
  for (TypeId t :
       {TypeId::kInt64, TypeId::kDouble, TypeId::kString, TypeId::kBool}) {
    ColumnVector col(t);
    RoundTrip(col);
  }
}

TEST(CodecTest, AllEqualIntsCompressTightly) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 1000; ++i) col.AppendInt64(42);
  EncodedBlock blk = EncodeBlock(col, 0, col.size());
  // A constant column is the compressor's best case: one RLE run or a
  // width-0 bit-pack frame both shrink 8000 raw bytes to a few dozen.
  EXPECT_NE(blk.codec, BlockCodec::kRaw);
  EXPECT_LT(blk.payload.size(), 100u);
  RoundTrip(col);
}

TEST(CodecTest, AllDistinctSmallRangeBitPacks) {
  // Dense distinct values in a narrow range: FOR bit-packing beats both the
  // dictionary (distinct count == row count) and raw.
  ColumnVector col(TypeId::kInt64);
  for (int64_t i = 0; i < 1024; ++i) col.AppendInt64(1'000'000 + i);
  BlockCodec codec = RoundTrip(col);
  EXPECT_EQ(codec, BlockCodec::kBitPack);
}

TEST(CodecTest, LongRunsCompressToRle) {
  ColumnVector col(TypeId::kInt64);
  for (int run = 0; run < 8; ++run) {
    for (int i = 0; i < 100; ++i) col.AppendInt64(run);
  }
  EXPECT_EQ(RoundTrip(col), BlockCodec::kRle);
}

TEST(CodecTest, LowCardinalityStringsUseDictionary) {
  ColumnVector col(TypeId::kString);
  const char* vals[] = {"alpha", "beta", "gamma"};
  std::mt19937 rng(11);
  for (int i = 0; i < 600; ++i) col.AppendString(vals[rng() % 3]);
  EXPECT_EQ(RoundTrip(col), BlockCodec::kDict);
}

TEST(CodecTest, NullHeavyColumns) {
  std::mt19937 rng(7);
  for (TypeId t : {TypeId::kInt64, TypeId::kDouble, TypeId::kString}) {
    ColumnVector col(t);
    for (int i = 0; i < 500; ++i) {
      if (rng() % 10 != 0) {  // 90% NULL
        col.AppendNull();
      } else if (t == TypeId::kInt64) {
        col.AppendInt64(static_cast<int64_t>(rng()));
      } else if (t == TypeId::kDouble) {
        col.AppendDouble(static_cast<double>(rng()) / 3.0);
      } else {
        col.AppendString("v" + std::to_string(rng() % 100));
      }
    }
    RoundTrip(col);
  }
}

TEST(CodecTest, Int64ExtremesSurviveEveryPath) {
  // min/max deltas overflow any frame-of-reference subtraction done in
  // signed arithmetic — the encoder must either use unsigned deltas or fall
  // back; either way the round-trip must be exact.
  ColumnVector col(TypeId::kInt64);
  col.AppendInt64(std::numeric_limits<int64_t>::min());
  col.AppendInt64(std::numeric_limits<int64_t>::max());
  col.AppendInt64(0);
  col.AppendInt64(-1);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(std::numeric_limits<int64_t>::min() + 1);
  col.AppendInt64(std::numeric_limits<int64_t>::max() - 1);
  RoundTrip(col);
}

TEST(CodecTest, DoubleSpecialValues) {
  ColumnVector col(TypeId::kDouble);
  col.AppendDouble(0.0);
  col.AppendDouble(-0.0);
  for (int i = 0; i < 50; ++i) col.AppendDouble(1.5);  // an RLE-worthy run
  col.AppendDouble(std::numeric_limits<double>::infinity());
  col.AppendDouble(-std::numeric_limits<double>::infinity());
  col.AppendDouble(std::numeric_limits<double>::denorm_min());
  col.AppendDouble(std::numeric_limits<double>::max());
  // NaN: compare bit patterns via round-trip of the surrounding rows; the
  // NaN row itself can't use EqualsAt, so check it manually.
  EncodedBlock blk = EncodeBlock(col, 0, col.size());
  ColumnVector out(TypeId::kDouble);
  ASSERT_TRUE(DecodeBlock(blk.codec, TypeId::kDouble, blk.rows,
                          reinterpret_cast<const uint8_t*>(blk.payload.data()),
                          blk.payload.size(), &out)
                  .ok());
  ASSERT_EQ(out.size(), col.size());
  EXPECT_EQ(out.DoubleAt(0), 0.0);
  EXPECT_TRUE(std::signbit(out.DoubleAt(1)));  // -0.0 preserved
  EXPECT_EQ(out.DoubleAt(52),
            std::numeric_limits<double>::infinity());
}

TEST(CodecTest, BoolColumns) {
  ColumnVector col(TypeId::kBool);
  std::mt19937 rng(3);
  for (int i = 0; i < 300; ++i) {
    if (rng() % 8 == 0) {
      col.AppendNull();
    } else {
      col.AppendBool((rng() & 1) != 0);
    }
  }
  RoundTrip(col);
}

TEST(CodecTest, RandomStringsWithEmbeddedNulBytes) {
  ColumnVector col(TypeId::kString);
  col.AppendString("");
  col.AppendString(std::string("a\0b", 3));
  col.AppendString(std::string(1000, 'x'));
  std::mt19937 rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string s(rng() % 32, '\0');
    for (char& c : s) c = static_cast<char>(rng() & 0xff);
    col.AppendString(std::move(s));
  }
  RoundTrip(col);
}

TEST(CodecTest, MidBlockSlices) {
  // EncodeBlock over [begin, begin+count) must be position-independent.
  ColumnVector col(TypeId::kInt64);
  for (int64_t i = 0; i < 500; ++i) col.AppendInt64(i % 17);
  EncodedBlock blk = EncodeBlock(col, 123, 200);
  ColumnVector out(TypeId::kInt64);
  ASSERT_TRUE(DecodeBlock(blk.codec, TypeId::kInt64, blk.rows,
                          reinterpret_cast<const uint8_t*>(blk.payload.data()),
                          blk.payload.size(), &out)
                  .ok());
  ASSERT_EQ(out.size(), 200u);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(out.Int64At(i), static_cast<int64_t>((123 + i) % 17));
  }
}

TEST(CodecTest, RandomizedRoundTripSweep) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 50; ++iter) {
    constexpr TypeId kTypes[] = {TypeId::kInt64, TypeId::kDouble,
                                 TypeId::kString, TypeId::kBool};
    TypeId t = kTypes[rng() % 4];
    ColumnVector col(t);
    size_t n = rng() % 700;
    int64_t base = static_cast<int64_t>(rng());
    int width = 1 + rng() % 20;
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 13 == 0) {
        col.AppendNull();
        continue;
      }
      switch (t) {
        case TypeId::kInt64:
          col.AppendInt64(base + static_cast<int64_t>(rng() % (1u << width)));
          break;
        case TypeId::kDouble:
          col.AppendDouble(static_cast<double>(rng() % 97) / 7.0);
          break;
        case TypeId::kString:
          col.AppendString("s" + std::to_string(rng() % (1u << (width / 3))));
          break;
        default:
          col.AppendBool((rng() & 1) != 0);
      }
    }
    RoundTrip(col);
  }
}

// --- corruption: every mutation of a valid payload must yield kCorruption
// or a clean decode (if the flipped bits happen to stay in-spec), never a
// crash or an out-of-range read.

void ExpectDecodesOrCorruption(const EncodedBlock& blk, TypeId type,
                               const std::string& payload) {
  ColumnVector out(type);
  Status st = DecodeBlock(blk.codec, type, blk.rows,
                          reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size(), &out);
  if (!st.ok()) {
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  } else {
    EXPECT_EQ(out.size(), blk.rows);
  }
}

TEST(CodecTest, TruncatedPayloadsAreCorruption) {
  ColumnVector col(TypeId::kString);
  for (int i = 0; i < 100; ++i) {
    col.AppendString("value-" + std::to_string(i % 7));
  }
  EncodedBlock blk = EncodeBlock(col, 0, col.size());
  // Every prefix, including the empty one.
  for (size_t len = 0; len < blk.payload.size(); ++len) {
    ColumnVector out(TypeId::kString);
    Status st =
        DecodeBlock(blk.codec, TypeId::kString, blk.rows,
                    reinterpret_cast<const uint8_t*>(blk.payload.data()), len,
                    &out);
    EXPECT_FALSE(st.ok()) << "truncation to " << len << " bytes decoded";
    if (!st.ok()) EXPECT_EQ(st.code(), StatusCode::kCorruption);
  }
}

TEST(CodecTest, BitFlippedPayloadsNeverCrash) {
  std::mt19937 rng(99);
  ColumnVector ints(TypeId::kInt64);
  for (int i = 0; i < 256; ++i) ints.AppendInt64(i % 11);
  ColumnVector strs(TypeId::kString);
  for (int i = 0; i < 256; ++i) strs.AppendString("k" + std::to_string(i % 5));

  for (const auto* col : {&ints, &strs}) {
    EncodedBlock blk = EncodeBlock(*col, 0, col->size());
    for (int flip = 0; flip < 200; ++flip) {
      std::string mutated = blk.payload;
      size_t byte = rng() % mutated.size();
      mutated[byte] ^= static_cast<char>(1u << (rng() % 8));
      ExpectDecodesOrCorruption(blk, col->type(), mutated);
    }
  }
}

TEST(CodecTest, WrongRowCountIsCorruption) {
  ColumnVector col(TypeId::kInt64);
  for (int i = 0; i < 64; ++i) col.AppendInt64(i);
  EncodedBlock blk = EncodeBlock(col, 0, col.size());
  ColumnVector out(TypeId::kInt64);
  // Claiming more rows than the payload carries must fail, not over-read.
  Status st = DecodeBlock(blk.codec, TypeId::kInt64, blk.rows * 2,
                          reinterpret_cast<const uint8_t*>(blk.payload.data()),
                          blk.payload.size(), &out);
  EXPECT_FALSE(st.ok());
  if (!st.ok()) EXPECT_EQ(st.code(), StatusCode::kCorruption);
}

TEST(CodecTest, ChecksumDetectsSingleBitFlips) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint64_t base = BlockChecksum(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string m = data;
      m[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(BlockChecksum(m.data(), m.size()), base);
    }
  }
  EXPECT_EQ(BlockChecksum(data.data(), data.size()), base);
}

}  // namespace
}  // namespace dbspinner
