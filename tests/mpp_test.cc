// Shared-nothing simulation tests: partitioning, exchange/shuffle,
// distributed kernels, and parallel SQL execution equivalence.

#include <gtest/gtest.h>

#include <atomic>
#include <unordered_map>

#include "mpp/exchange.h"
#include "mpp/parallel_ops.h"
#include "mpp/partition.h"
#include "mpp/thread_pool.h"
#include "test_util.h"

namespace dbspinner {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", TypeId::kInt64);
  s.AddColumn("v", TypeId::kDouble);
  return s;
}

TablePtr MakeKV(int64_t n, uint64_t mult = 1) {
  auto t = Table::Make(KV());
  for (int64_t i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(i % 17), Value::Double(
                      static_cast<double>(i * mult))});
  }
  return t;
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForStatusPropagatesFirstError) {
  ThreadPool pool(4);
  Status st = pool.ParallelForStatus(10, [&](size_t i) -> Status {
    if (i == 7) return Status::ExecutionError("boom");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "boom");
}

TEST(PartitionTest, HashPartitionKeepsEqualKeysTogether) {
  auto t = MakeKV(500);
  auto parts = HashPartition(*t, {0}, 4);
  ASSERT_EQ(parts.size(), 4u);
  size_t total = 0;
  // Each key appears in exactly one partition.
  std::unordered_map<int64_t, size_t> owner;
  for (size_t p = 0; p < parts.size(); ++p) {
    total += parts[p]->num_rows();
    for (size_t r = 0; r < parts[p]->num_rows(); ++r) {
      int64_t k = parts[p]->GetValue(r, 0).int64_value();
      auto it = owner.find(k);
      if (it == owner.end()) {
        owner[k] = p;
      } else {
        EXPECT_EQ(it->second, p) << "key " << k << " split across partitions";
      }
    }
  }
  EXPECT_EQ(total, t->num_rows());
}

TEST(PartitionTest, RangePartitionPreservesOrder) {
  auto t = MakeKV(10);
  auto parts = RangePartition(*t, 3);
  TablePtr back = Gather(parts);
  ASSERT_EQ(back->num_rows(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(back->GetValue(i, 1).double_value(),
                     static_cast<double>(i));
  }
}

TEST(ExchangeTest, ShuffleRedistributesByKey) {
  auto t = MakeKV(300);
  DistributedTable dist = DistributedTable::Distribute(*t, {}, 4);
  int64_t moved = 0;
  auto shuffled_r = Exchange::Shuffle(dist, {0}, nullptr, &moved);
  ASSERT_TRUE(shuffled_r.ok()) << shuffled_r.status().ToString();
  DistributedTable shuffled = std::move(*shuffled_r);
  EXPECT_EQ(shuffled.TotalRows(), 300u);
  EXPECT_GT(moved, 0);
  EXPECT_TRUE(Table::SameRows(*t, *shuffled.ToTable()));
  // Keys co-located after the shuffle.
  std::unordered_map<int64_t, size_t> owner;
  for (size_t p = 0; p < shuffled.num_nodes(); ++p) {
    const Table& part = *shuffled.partition(p);
    for (size_t r = 0; r < part.num_rows(); ++r) {
      int64_t k = part.GetValue(r, 0).int64_value();
      auto it = owner.find(k);
      if (it == owner.end()) {
        owner[k] = p;
      } else {
        EXPECT_EQ(it->second, p);
      }
    }
  }
}

TEST(ExchangeTest, BroadcastReplicates) {
  auto t = MakeKV(10);
  int64_t moved = 0;
  auto copies_r = Exchange::Broadcast(t, 3, &moved);
  ASSERT_TRUE(copies_r.ok()) << copies_r.status().ToString();
  std::vector<TablePtr> copies = std::move(*copies_r);
  ASSERT_EQ(copies.size(), 3u);
  EXPECT_EQ(moved, 20);  // 10 rows to each of 2 other nodes
}

TEST(DistributedOpsTest, FilterMatchesSerial) {
  auto t = MakeKV(200);
  ThreadPool pool(3);
  DistributedTable dist = DistributedTable::Distribute(*t, {0}, 3);
  auto pred = MakeBoundBinary(BinaryOp::kGt,
                              MakeBoundColumnRef(1, TypeId::kDouble, "v"),
                              MakeBoundConstant(Value::Double(100)),
                              TypeId::kBool);
  auto result = DistributedFilter(dist, *pred, &pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto sel = EvaluatePredicate(*pred, *t);
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(Table::SameRows(*t->Gather(*sel), *result->ToTable()));
}

TEST(DistributedOpsTest, HashJoinMatchesSingleNode) {
  auto l = MakeKV(120, 1);
  auto r = MakeKV(60, 2);
  ThreadPool pool(4);
  int64_t moved = 0;
  auto dl = DistributedTable::Distribute(*l, {}, 4);
  auto dr = DistributedTable::Distribute(*r, {}, 4);
  auto joined = DistributedHashJoin(dl, 0, dr, 0, &pool, &moved);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  // Serial comparison via the SQL engine.
  Database db;
  ASSERT_TRUE(db.RegisterTable("l", l).ok());
  ASSERT_TRUE(db.RegisterTable("r", r).ok());
  auto expected = testing::MustQuery(
      &db, "SELECT l.k, l.v, r.k, r.v FROM l JOIN r ON l.k = r.k");
  EXPECT_TRUE(Table::SameRows(*expected, *joined->ToTable()));
  EXPECT_GT(moved, 0);
}

TEST(DistributedOpsTest, SumAggregateMatchesSingleNode) {
  auto t = MakeKV(250);
  ThreadPool pool(4);
  int64_t moved = 0;
  auto dist = DistributedTable::Distribute(*t, {}, 4);
  auto agg = DistributedSumAggregate(dist, 0, 1, &pool, &moved);
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();

  Database db;
  ASSERT_TRUE(db.RegisterTable("t", t).ok());
  auto expected = testing::MustQuery(
      &db, "SELECT k, CAST(SUM(v) AS DOUBLE) FROM t GROUP BY k");
  EXPECT_TRUE(Table::SameRows(*expected, *agg->ToTable()));
}

TEST(MppSqlTest, ParallelQueriesMatchSerial) {
  Database serial;
  testing::MustExecute(&serial, "CREATE TABLE t (k BIGINT, v DOUBLE)");
  for (int chunk = 0; chunk < 4; ++chunk) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 500; ++i) {
      int id = chunk * 500 + i;
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(id % 13) + ", " +
                std::to_string(id * 0.5) + ")";
    }
    testing::MustExecute(&serial, insert);
  }
  Database parallel;
  parallel.options().num_workers = 4;
  parallel.options().mpp_min_rows_per_task = 16;
  auto entry = serial.catalog().Get("t");
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(parallel.RegisterTable("t", (*entry)->table).ok());

  const char* queries[] = {
      "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k",
      "SELECT v FROM t WHERE v > 250 AND k < 7",
      "SELECT a.k, COUNT(*) FROM t a JOIN t b ON a.k = b.k GROUP BY a.k",
      "SELECT DISTINCT k FROM t",
  };
  for (const char* q : queries) {
    TablePtr a = testing::MustQuery(&serial, q);
    TablePtr b = testing::MustQuery(&parallel, q);
    EXPECT_TRUE(Table::SameRows(*a, *b)) << q;
  }
}

TEST(MppSqlTest, ShuffleStatsReported) {
  Database db;
  db.options().num_workers = 4;
  db.options().mpp_min_rows_per_task = 8;
  // The legacy repartitioned aggregate is only reachable with the fused
  // pre-aggregation pipeline off; the default path never shuffles.
  db.options().optimizer.vectorized_exec = false;
  testing::MustExecute(&db, "CREATE TABLE t (k BIGINT)");
  std::string insert = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 400; ++i) insert += ", (" + std::to_string(i % 5) + ")";
  testing::MustExecute(&db, insert);
  auto result = db.Execute("SELECT k, COUNT(*) FROM t GROUP BY k");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.rows_shuffled, 0);
}

// With the vectorized executor on (default), a parallel GROUP BY is served
// by fused pre-aggregation: per-worker partial hash tables merged once at
// the breaker, no key repartitioning. The shuffle counter must stay zero,
// the new pre-aggregation counters must engage, and the rows must equal the
// serial (and legacy shuffled) answer exactly.
TEST(MppSqlTest, FusedPreAggregationSkipsShuffle) {
  Database db;
  db.options().num_workers = 4;
  db.options().mpp_min_rows_per_task = 8;
  db.options().morsel_size = 64;  // 400 rows -> several morsels per worker
  testing::MustExecute(&db, "CREATE TABLE t (k BIGINT)");
  std::string insert = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 400; ++i) insert += ", (" + std::to_string(i % 5) + ")";
  testing::MustExecute(&db, insert);

  const std::string q = "SELECT k, COUNT(*), SUM(k) FROM t GROUP BY k";
  auto fused = db.Execute(q);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_EQ(fused->stats.rows_shuffled, 0);
  EXPECT_GT(fused->stats.agg_partials_merged, 0);
  EXPECT_EQ(fused->stats.agg_rows_preaggregated, 400);

  db.options().optimizer.vectorized_exec = false;
  auto legacy = db.Execute(q);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_GT(legacy->stats.rows_shuffled, 0);
  EXPECT_TRUE(Table::SameRows(*fused->table, *legacy->table));
}

}  // namespace
}  // namespace dbspinner
