// The deterministic fault-injection framework itself: schedule determinism
// under a fixed seed, fire-count accounting, site filtering, the max-fault
// cap, worker-loss typing, reset semantics, and the end-to-end contract that
// a disabled toggle injects nothing while an un-recovered injection surfaces
// its original typed Status to the caller.

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "engine/workloads.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::LoadTinyGraph;
using testing::MustQuery;

FaultInjectionConfig Config(double rate, uint64_t seed = 7) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.seed = seed;
  config.rate = rate;
  return config;
}

constexpr const char* kSites[] = {"exchange.shuffle", "exec.materialize",
                                  "mpp.dispatch"};

// Drives `hits` arrivals at each site and records which of them faulted.
std::vector<bool> DriveSchedule(FaultInjector* injector, int hits) {
  std::vector<bool> fired;
  for (int h = 0; h < hits; ++h) {
    for (const char* site : kSites) {
      fired.push_back(!injector->MaybeInject(site).ok());
    }
  }
  return fired;
}

TEST(FaultInjectionFrameworkTest, FixedSeedReproducesSchedule) {
  FaultInjector a(Config(0.3));
  FaultInjector b(Config(0.3));
  EXPECT_EQ(DriveSchedule(&a, 50), DriveSchedule(&b, 50));
  EXPECT_EQ(a.total_faults(), b.total_faults());
  for (const char* site : kSites) {
    EXPECT_EQ(a.site_faults(site), b.site_faults(site)) << site;
  }
}

TEST(FaultInjectionFrameworkTest, LiveScheduleMatchesPureDecisionFunction) {
  FaultInjectionConfig config = Config(0.3);
  FaultInjector injector(config);
  for (int64_t hit = 0; hit < 50; ++hit) {
    for (const char* site : kSites) {
      EXPECT_EQ(!injector.MaybeInject(site).ok(),
                FaultInjector::WouldFault(config, site, hit))
          << site << " hit " << hit;
    }
  }
}

TEST(FaultInjectionFrameworkTest, DifferentSeedsGiveDifferentSchedules) {
  FaultInjector a(Config(0.3, /*seed=*/1));
  FaultInjector b(Config(0.3, /*seed=*/2));
  EXPECT_NE(DriveSchedule(&a, 100), DriveSchedule(&b, 100));
}

TEST(FaultInjectionFrameworkTest, FireCountsFollowRate) {
  FaultInjector always(Config(1.0));
  FaultInjector never(Config(0.0));
  DriveSchedule(&always, 20);
  DriveSchedule(&never, 20);
  EXPECT_EQ(always.total_faults(), always.total_hits());
  EXPECT_EQ(always.total_hits(), 60);
  EXPECT_EQ(never.total_faults(), 0);
  EXPECT_EQ(never.total_hits(), 60);
}

TEST(FaultInjectionFrameworkTest, SiteFilterRestrictsSchedule) {
  FaultInjectionConfig config = Config(1.0);
  config.site_filter = "shuffle";
  FaultInjector injector(config);
  DriveSchedule(&injector, 10);
  EXPECT_EQ(injector.site_faults("exchange.shuffle"), 10);
  EXPECT_EQ(injector.site_faults("exec.materialize"), 0);
  EXPECT_EQ(injector.site_faults("mpp.dispatch"), 0);
  EXPECT_EQ(injector.site_hits("exec.materialize"), 10);  // still counted
}

TEST(FaultInjectionFrameworkTest, MaxFaultsCapsTheTotal) {
  FaultInjectionConfig config = Config(1.0);
  config.max_faults = 3;
  FaultInjector injector(config);
  int fired = 0;
  for (int h = 0; h < 10; ++h) {
    if (!injector.MaybeInject("exec.materialize").ok()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(injector.total_faults(), 3);
  EXPECT_EQ(injector.total_hits(), 10);
}

TEST(FaultInjectionFrameworkTest, WorkerLostFractionTypesTheFaults) {
  FaultInjectionConfig lost = Config(1.0);
  lost.worker_lost_fraction = 1.0;
  FaultInjector all_lost(lost);
  for (int h = 0; h < 10; ++h) {
    Status st = all_lost.MaybeInject("exchange.shuffle");
    EXPECT_EQ(st.code(), StatusCode::kWorkerLost) << st.ToString();
    EXPECT_FALSE(st.IsRetryable());
    EXPECT_TRUE(st.IsRecoverable());
  }
  FaultInjector all_transient(Config(1.0));
  for (int h = 0; h < 10; ++h) {
    Status st = all_transient.MaybeInject("exchange.shuffle");
    EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
    EXPECT_TRUE(st.IsRetryable());
    EXPECT_TRUE(st.IsRecoverable());
  }
}

TEST(FaultInjectionFrameworkTest, DisabledInjectorIsANoOp) {
  FaultInjectionConfig config = Config(1.0);
  config.enabled = false;
  FaultInjector injector(config);
  for (int h = 0; h < 10; ++h) {
    EXPECT_TRUE(injector.MaybeInject("exec.materialize").ok());
  }
  EXPECT_EQ(injector.total_hits(), 0);
  EXPECT_EQ(injector.total_faults(), 0);
}

TEST(FaultInjectionFrameworkTest, ResetRestartsTheSchedule) {
  FaultInjector injector(Config(0.3));
  std::vector<bool> first = DriveSchedule(&injector, 30);
  injector.Reset();
  EXPECT_EQ(injector.total_hits(), 0);
  EXPECT_EQ(DriveSchedule(&injector, 30), first);
}

TEST(FaultInjectionFrameworkTest, ReportListsSitesSorted) {
  FaultInjector injector(Config(1.0));
  DriveSchedule(&injector, 2);
  std::vector<FaultInjector::SiteReport> report = injector.Report();
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report[0].site, "exchange.shuffle");
  EXPECT_EQ(report[1].site, "exec.materialize");
  EXPECT_EQ(report[2].site, "mpp.dispatch");
  for (const auto& r : report) {
    EXPECT_EQ(r.hits, 2);
    EXPECT_EQ(r.faults, 2);
  }
}

// --- end-to-end through the Database ---------------------------------------

TEST(FaultInjectionEndToEndTest, DisabledToggleInjectsNothing) {
  Database db;  // fault_injection.enabled defaults to false
  LoadTinyGraph(&db);
  auto result = db.Execute(workloads::SSSPQuery(6, 1, 3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.faults_seen, 0);
  EXPECT_EQ(result->stats.step_retries, 0);
  EXPECT_EQ(result->stats.checkpoints_taken, 0);  // recovery off by default
  EXPECT_EQ(result->stats.restores, 0);
}

TEST(FaultInjectionEndToEndTest, FaultSurfacesTypedWhenRecoveryOff) {
  Database db;
  db.options().fault_injection = Config(1.0);
  db.options().fault_injection.site_filter = "exec.materialize";
  LoadTinyGraph(&db);
  auto result = db.Execute(workloads::SSSPQuery(6, 1, 3));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("injected fault"),
            std::string::npos)
      << result.status().ToString();
}

TEST(FaultInjectionEndToEndTest, RetryExhaustionSurfacesOriginalStatus) {
  // A saturating schedule (every materialize fails, forever): retries
  // exhaust, every restore re-fails, and after max_restores the executor
  // must give up with the original typed status — not mask it, not loop.
  Database db;
  db.options().fault_injection = Config(1.0);
  db.options().fault_injection.site_filter = "exec.materialize";
  db.options().fault_tolerance.enable_recovery = true;
  db.options().fault_tolerance.max_step_retries = 2;
  db.options().fault_tolerance.max_restores = 3;
  LoadTinyGraph(&db);
  auto result = db.Execute(workloads::SSSPQuery(6, 1, 3));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
}

TEST(FaultInjectionEndToEndTest, WorkerLostExhaustionSurfacesWorkerLost) {
  Database db;
  db.options().fault_injection = Config(1.0);
  db.options().fault_injection.site_filter = "exec.materialize";
  db.options().fault_injection.worker_lost_fraction = 1.0;
  db.options().fault_tolerance.enable_recovery = true;
  db.options().fault_tolerance.max_restores = 3;
  LoadTinyGraph(&db);
  auto result = db.Execute(workloads::SSSPQuery(6, 1, 3));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kWorkerLost)
      << result.status().ToString();
}

TEST(FaultInjectionEndToEndTest, GenuineErrorsAreNeverRecovered) {
  // Recovery must react only to injected infrastructure faults; a genuine
  // query error (division by zero) surfaces unchanged even with recovery on
  // and a live injector.
  Database db;
  db.options().fault_injection = Config(0.0);  // enabled, but never fires
  db.options().fault_tolerance.enable_recovery = true;
  LoadTinyGraph(&db);
  auto result = db.Execute("SELECT src / 0 FROM edges");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError)
      << result.status().ToString();
}

}  // namespace
}  // namespace dbspinner
