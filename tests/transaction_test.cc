// BEGIN / COMMIT / ROLLBACK: snapshot transactions over the copy-on-write
// catalog. Single-session semantics — the paper's motivation is that native
// iterative CTEs avoid the *long multi-statement transactions* an external
// middleware needs; this layer makes that contrast executable.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, "CREATE TABLE t (x BIGINT)");
    MustExecute(&db_, "INSERT INTO t VALUES (1), (2)");
  }

  int64_t CountT() {
    return MustQuery(&db_, "SELECT COUNT(*) FROM t")->GetValue(0, 0)
        .int64_value();
  }

  Database db_;
};

TEST_F(TransactionTest, RollbackUndoesInsert) {
  MustExecute(&db_, "BEGIN");
  EXPECT_TRUE(db_.InTransaction());
  MustExecute(&db_, "INSERT INTO t VALUES (3), (4)");
  EXPECT_EQ(CountT(), 4);
  MustExecute(&db_, "ROLLBACK");
  EXPECT_FALSE(db_.InTransaction());
  EXPECT_EQ(CountT(), 2);
}

TEST_F(TransactionTest, CommitKeepsChanges) {
  MustExecute(&db_, "BEGIN TRANSACTION");
  MustExecute(&db_, "INSERT INTO t VALUES (3)");
  MustExecute(&db_, "COMMIT");
  EXPECT_EQ(CountT(), 3);
}

TEST_F(TransactionTest, RollbackUndoesUpdateAndDelete) {
  MustExecute(&db_, "BEGIN");
  MustExecute(&db_, "UPDATE t SET x = x * 100");
  MustExecute(&db_, "DELETE FROM t WHERE x = 200");
  EXPECT_EQ(CountT(), 1);
  MustExecute(&db_, "ROLLBACK");
  auto t = MustQuery(&db_, "SELECT x FROM t ORDER BY x");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 2);
}

TEST_F(TransactionTest, RollbackUndoesDdl) {
  MustExecute(&db_, "BEGIN");
  MustExecute(&db_, "CREATE TABLE u (y BIGINT)");
  MustExecute(&db_, "DROP TABLE t");
  EXPECT_FALSE(db_.Query("SELECT * FROM t").ok());
  MustExecute(&db_, "ROLLBACK");
  EXPECT_EQ(CountT(), 2);                       // t restored
  EXPECT_FALSE(db_.Query("SELECT * FROM u").ok());  // u gone
}

TEST_F(TransactionTest, NestedBeginFails) {
  MustExecute(&db_, "BEGIN");
  auto result = db_.Execute("BEGIN");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  MustExecute(&db_, "ROLLBACK");
}

TEST_F(TransactionTest, CommitWithoutBeginFails) {
  EXPECT_FALSE(db_.Execute("COMMIT").ok());
  EXPECT_FALSE(db_.Execute("ROLLBACK").ok());
}

TEST_F(TransactionTest, SnapshotIsolatedFromPriorReads) {
  // Results returned before the transaction stay stable across rollback.
  auto before = MustQuery(&db_, "SELECT x FROM t ORDER BY x");
  MustExecute(&db_, "BEGIN");
  MustExecute(&db_, "UPDATE t SET x = 999");
  MustExecute(&db_, "ROLLBACK");
  ASSERT_EQ(before->num_rows(), 2u);
  EXPECT_EQ(before->GetValue(0, 0).int64_value(), 1);
}

TEST_F(TransactionTest, IterativeCteInsideTransaction) {
  // A whole iterative-CTE query is one statement inside the transaction —
  // exactly the "no long multi-statement transaction needed" property.
  MustExecute(&db_, "BEGIN");
  auto t = MustQuery(&db_,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL 5 ITERATIONS) "
                     "SELECT n FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 5);
  MustExecute(&db_, "COMMIT");
}

TEST_F(TransactionTest, ProcedureRollsBackAtomically) {
  // A multi-statement procedure mutates tables statement by statement;
  // wrapping it in a transaction and rolling back must erase every side
  // effect at once — the paper's "long transaction" scenario for external
  // solutions, which the engine supports but native CTEs don't need.
  MustExecute(&db_, "BEGIN");
  Procedure proc;
  proc.Add("CREATE TABLE work (v BIGINT)")
      .Add("INSERT INTO work SELECT x FROM t")
      .BeginLoop(3)
      .Add("UPDATE work SET v = v * 2")
      .Add("UPDATE t SET x = x + 1")
      .EndLoop();
  auto result = proc.Run(&db_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(MustQuery(&db_, "SELECT MAX(x) FROM t")->GetValue(0, 0)
                .int64_value(),
            5);
  MustExecute(&db_, "ROLLBACK");
  EXPECT_FALSE(db_.Query("SELECT * FROM work").ok());
  EXPECT_EQ(MustQuery(&db_, "SELECT MAX(x) FROM t")->GetValue(0, 0)
                .int64_value(),
            2);
}

}  // namespace
}  // namespace dbspinner
