// Legality suppression of the Fig 10 cross-block pushdown (Qf -> R0),
// verified structurally via EXPLAIN: the optimizer annotates R0 with
// "[predicate pushed down from Qf]" exactly when the rewrite fired. Pushing
// into R0 shrinks the working set for every iteration, which is only sound
// when Ri is a pass-through over the filtered columns (no self-join, no
// aggregation, no DISTINCT) and the termination condition cannot observe
// the removed rows (counted iterations only — an UPDATES/DELTA/ANY/ALL
// condition counts or inspects rows, so filtering changes when the loop
// stops; found by the differential fuzzer).

#include <gtest/gtest.h>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustExecute;
using testing::MustQuery;

constexpr char kPushdownMarker[] = "[predicate pushed down from Qf]";

class PushdownLegalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db_,
                "INSERT INTO edges VALUES (1, 2, 0.5), (1, 3, 0.5), "
                "(2, 3, 1.0), (3, 1, 1.0), (4, 1, 1.0)");
  }

  std::string ExplainText(const std::string& sql) {
    auto result = db_.Execute("EXPLAIN " + sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
    return result.ok() ? result->explain : "";
  }

  // FF-shaped iterative CTE with a parameterized Ri and UNTIL clause;
  // Qf filters on the pass-through `node` column.
  static std::string Cte(const std::string& ri, const std::string& until) {
    return "WITH ITERATIVE f (node, v) AS ("
           "  SELECT src, CAST(COUNT(dst) AS DOUBLE) FROM edges GROUP BY src "
           "ITERATE " +
           ri + " UNTIL " + until +
           ") SELECT node, v FROM f WHERE MOD(node, 2) = 0";
  }

  Database db_;
};

TEST_F(PushdownLegalityTest, AppliedForPassThroughRi) {
  std::string plan =
      ExplainText(Cte("SELECT node, v * 2 FROM f", "3 ITERATIONS"));
  EXPECT_NE(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiHasSelfJoin) {
  // Ri references the CTE twice: rows filtered out of R0 would still be
  // needed as join partners, so the rewrite must not fire.
  std::string plan = ExplainText(
      Cte("SELECT f.node, other.v + 1 FROM f "
          "JOIN f AS other ON f.node = other.node",
          "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiJoinsAnotherTable) {
  std::string plan = ExplainText(
      Cte("SELECT f.node, f.v + e.weight FROM f "
          "JOIN edges AS e ON f.node = e.src",
          "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiAggregates) {
  // GROUP BY over the self-scan: each output row aggregates over rows the
  // filter would have removed.
  std::string plan = ExplainText(
      Cte("SELECT node, SUM(v) FROM f GROUP BY node", "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiHasBareAggregate) {
  std::string plan = ExplainText(
      Cte("SELECT 1, MAX(v) FROM f", "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiIsDistinct) {
  std::string plan = ExplainText(
      Cte("SELECT DISTINCT node, v FROM f", "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

// --- termination-condition sensitivity (fuzzer-found regression) -------------

TEST_F(PushdownLegalityTest, NotAppliedUnderUpdatesTermination) {
  // UNTIL n UPDATES counts updated rows per iteration; filtering R0 changes
  // the counts and therefore the iteration the loop stops at.
  std::string plan =
      ExplainText(Cte("SELECT node, v * 2 FROM f", "9 UPDATES"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedUnderDeltaTermination) {
  std::string plan =
      ExplainText(Cte("SELECT node, LEAST(v * 2, 100) FROM f", "DELTA < 1"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedUnderDataCondition) {
  std::string plan =
      ExplainText(Cte("SELECT node, v * 2 FROM f", "ANY(v > 50)"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, NotAppliedWhenRiHasLimit) {
  // LIMIT is a row-sensitive cutoff: filtering R0 changes *which* rows
  // survive the cutoff in every iteration, not just how many reach Qf.
  // Found by the static verifier's V108 re-derivation of the legality fact.
  std::string plan = ExplainText(
      Cte("SELECT node, v * 2 FROM f LIMIT 3", "3 ITERATIONS"));
  EXPECT_EQ(plan.find(kPushdownMarker), std::string::npos) << plan;
}

TEST_F(PushdownLegalityTest, LimitInRiResultsMatchWithRuleOnAndOff) {
  const std::string sql =
      Cte("SELECT node, v * 2 FROM f ORDER BY node LIMIT 3", "3 ITERATIONS");
  TablePtr with_rule = MustQuery(&db_, sql);
  db_.options().optimizer.enable_cte_predicate_pushdown = false;
  TablePtr without_rule = MustQuery(&db_, sql);
  ExpectSameRows(with_rule, without_rule);
}

TEST_F(PushdownLegalityTest, UpdatesTerminationResultsMatchWithRuleOnAndOff) {
  // The minimized shape the fuzzer reported: with pushdown (wrongly) applied
  // the filtered working set reaches n cumulative updates later, running
  // more iterations. Verify end-to-end equivalence now that legality
  // suppresses the rewrite.
  const std::string sql = Cte("SELECT node, v * 2 FROM f", "4 UPDATES");
  TablePtr with_rule = MustQuery(&db_, sql);
  db_.options().optimizer.enable_cte_predicate_pushdown = false;
  TablePtr without_rule = MustQuery(&db_, sql);
  ExpectSameRows(with_rule, without_rule);
}

}  // namespace
}  // namespace dbspinner
