// BufferManager unit tests (DESIGN.md §12): clock eviction under memory
// pressure, pin-count protection, overcommit instead of deadlock, and
// race-free concurrent access (this file is in the TSan job's filter).

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/column_vector.h"

namespace dbspinner {
namespace {

// A loader that fabricates a one-row block carrying its key, so tests can
// verify the cache returns the *right* block after any eviction churn.
BufferManager::Loader MakeLoader(const BlockKey& key,
                                 std::atomic<int64_t>* loads = nullptr) {
  return [key, loads]() -> Result<ColumnVectorPtr> {
    if (loads != nullptr) loads->fetch_add(1, std::memory_order_relaxed);
    auto col = std::make_shared<ColumnVector>(TypeId::kInt64);
    col->AppendInt64(static_cast<int64_t>(key.extent_id * 1000 +
                                          key.block_index));
    return col;
  };
}

int64_t BlockValue(const PinnedBlock& b) { return b.data()->Int64At(0); }

TEST(BufferManagerTest, HitReturnsCachedBlockWithoutReload) {
  BufferManager bm(4);
  std::atomic<int64_t> loads{0};
  BlockKey key{7, 3};
  {
    auto p = bm.Pin(key, MakeLoader(key, &loads));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(BlockValue(p.value()), 7003);
  }
  {
    auto p = bm.Pin(key, MakeLoader(key, &loads));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(BlockValue(p.value()), 7003);
  }
  EXPECT_EQ(loads.load(), 1);
  auto stats = bm.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(BufferManagerTest, EvictionUnderPressure) {
  // Capacity 2, stream 100 distinct blocks: the pool must stay at 2
  // resident frames and every block must still come back with its own
  // payload (no stale frame reuse).
  BufferManager bm(2);
  for (uint32_t i = 0; i < 100; ++i) {
    BlockKey key{1, i};
    auto p = bm.Pin(key, MakeLoader(key));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(BlockValue(p.value()), 1000 + i);
    EXPECT_LE(bm.resident(), 2u);
  }
  auto stats = bm.stats();
  EXPECT_EQ(stats.misses, 100);
  EXPECT_EQ(stats.evictions, 98);  // 100 admitted, 2 still resident
  EXPECT_EQ(stats.overcommits, 0);
  EXPECT_EQ(bm.resident(), 2u);
}

TEST(BufferManagerTest, SecondChanceKeepsHotBlock) {
  // Re-referencing block A between faults should keep A resident while the
  // cold blocks cycle through the other frames. Capacity 4: the clock needs
  // at least one frame that was NOT referenced since the last sweep (an old
  // cold block) to absorb the eviction — at capacity 2 every frame is
  // re-referenced each round and second chance degenerates to FIFO.
  BufferManager bm(4);
  std::atomic<int64_t> a_loads{0};
  BlockKey a{9, 0};
  for (uint32_t i = 1; i <= 20; ++i) {
    { auto p = bm.Pin(a, MakeLoader(a, &a_loads)); ASSERT_TRUE(p.ok()); }
    BlockKey cold{9, i};
    auto p = bm.Pin(cold, MakeLoader(cold));
    ASSERT_TRUE(p.ok());
  }
  // The second-chance bit must spare the hot block most rounds; a FIFO
  // would reload it every iteration (20 loads).
  EXPECT_LT(a_loads.load(), 10);
}

TEST(BufferManagerTest, PinnedFramesAreNeverEvicted) {
  BufferManager bm(2);
  BlockKey a{1, 0}, b{1, 1};
  auto pa = bm.Pin(a, MakeLoader(a));
  auto pb = bm.Pin(b, MakeLoader(b));
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());

  // Pool full, both pinned: new blocks must overcommit, not evict a or b.
  for (uint32_t i = 2; i < 12; ++i) {
    BlockKey key{1, i};
    auto p = bm.Pin(key, MakeLoader(key));
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(BlockValue(p.value()), 1000 + i);
  }
  EXPECT_GT(bm.stats().overcommits, 0);

  // The pinned blocks are still served from cache.
  std::atomic<int64_t> reloads{0};
  { auto p = bm.Pin(a, MakeLoader(a, &reloads)); ASSERT_TRUE(p.ok()); }
  { auto p = bm.Pin(b, MakeLoader(b, &reloads)); ASSERT_TRUE(p.ok()); }
  EXPECT_EQ(reloads.load(), 0);

  // After unpinning, pressure may evict them again and the pool drains back
  // to capacity.
  pa = Result<PinnedBlock>(PinnedBlock());
  pb = Result<PinnedBlock>(PinnedBlock());
  for (uint32_t i = 20; i < 40; ++i) {
    BlockKey key{1, i};
    ASSERT_TRUE(bm.Pin(key, MakeLoader(key)).ok());
  }
  EXPECT_LE(bm.resident(), 2u);
}

TEST(BufferManagerTest, DataOutlivesEviction) {
  // A released PinnedBlock's shared_ptr keeps the decoded rows alive even
  // after the frame is evicted and replaced.
  BufferManager bm(1);
  BlockKey a{3, 0};
  auto pa = bm.Pin(a, MakeLoader(a));
  ASSERT_TRUE(pa.ok());
  ColumnVectorPtr held = pa.value().data();
  pa = Result<PinnedBlock>(PinnedBlock());  // unpin
  BlockKey b{3, 1};
  auto pb = bm.Pin(b, MakeLoader(b));  // evicts a
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(held->Int64At(0), 3000);  // still valid
}

TEST(BufferManagerTest, LoaderFailurePropagatesAndCachesNothing) {
  BufferManager bm(2);
  BlockKey key{5, 5};
  auto failing = []() -> Result<ColumnVectorPtr> {
    return Status::Corruption("bad block");
  };
  auto p = bm.Pin(key, failing);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(bm.resident(), 0u);
  // A subsequent good load succeeds — the failure was not negatively cached.
  auto p2 = bm.Pin(key, MakeLoader(key));
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(BlockValue(p2.value()), 5005);
}

TEST(BufferManagerTest, ConcurrentReadersAreRaceFree) {
  // 8 threads hammer a 64-block working set through a 8-frame pool: heavy
  // miss/evict churn with overlapping pins. Run under TSan in CI; the
  // assertions here check only payload integrity and counter sanity.
  BufferManager bm(8);
  constexpr int kThreads = 8;
  constexpr uint32_t kBlocks = 64;
  constexpr int kIters = 400;
  std::atomic<int64_t> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bm, &errors, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        BlockKey key{2, static_cast<uint32_t>((state >> 33) % kBlocks)};
        auto p = bm.Pin(key, MakeLoader(key));
        if (!p.ok() ||
            BlockValue(p.value()) != 2000 + key.block_index) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  auto stats = bm.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
  EXPECT_GT(stats.evictions, 0);
}

}  // namespace
}  // namespace dbspinner
