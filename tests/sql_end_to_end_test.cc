// End-to-end SQL tests through the Database facade: scans, filters,
// projections, joins, aggregates, unions, sorting, DDL/DML.

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustExecute;
using testing::MustQuery;

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::MustExecute(&db_, "CREATE TABLE t (a BIGINT, b DOUBLE, s VARCHAR)");
    testing::MustExecute(
        &db_,
        "INSERT INTO t VALUES (1, 1.5, 'x'), (2, 2.5, 'y'), (3, NULL, 'x'), "
        "(4, 4.5, NULL)");
  }
  Database db_;
};

TEST_F(SqlTest, SelectConstant) {
  auto t = MustQuery(&db_, "SELECT 1 + 2 AS three, 'a' || 'b'");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 3);
  EXPECT_EQ(t->GetValue(0, 1).string_value(), "ab");
}

TEST_F(SqlTest, SelectStar) {
  auto t = MustQuery(&db_, "SELECT * FROM t");
  EXPECT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->num_columns(), 3u);
}

TEST_F(SqlTest, WhereFiltersNullAsFalse) {
  auto t = MustQuery(&db_, "SELECT a FROM t WHERE b > 2");
  // b NULL rows excluded.
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST_F(SqlTest, IsNullPredicates) {
  EXPECT_EQ(MustQuery(&db_, "SELECT a FROM t WHERE b IS NULL")->num_rows(),
            1u);
  EXPECT_EQ(MustQuery(&db_, "SELECT a FROM t WHERE s IS NOT NULL")->num_rows(),
            3u);
}

TEST_F(SqlTest, Projection) {
  auto t = MustQuery(&db_, "SELECT a * 10 AS a10, b + a FROM t WHERE a = 2");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 20);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).double_value(), 4.5);
}

TEST_F(SqlTest, OrderByAndLimit) {
  auto t = MustQuery(&db_, "SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
  EXPECT_EQ(t->GetValue(1, 0).int64_value(), 3);
}

TEST_F(SqlTest, OrderByNullsFirst) {
  auto t = MustQuery(&db_, "SELECT b FROM t ORDER BY b");
  EXPECT_TRUE(t->GetValue(0, 0).is_null());
}

TEST_F(SqlTest, OrderByPosition) {
  auto t = MustQuery(&db_, "SELECT a, b FROM t ORDER BY 1 DESC LIMIT 1");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
}

TEST_F(SqlTest, Distinct) {
  auto t = MustQuery(&db_, "SELECT DISTINCT s FROM t");
  EXPECT_EQ(t->num_rows(), 3u);  // 'x', 'y', NULL
}

TEST_F(SqlTest, GlobalAggregates) {
  auto t = MustQuery(&db_,
                     "SELECT COUNT(*), COUNT(b), SUM(a), AVG(b), MIN(a), "
                     "MAX(b) FROM t");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 3);  // NULL skipped
  EXPECT_EQ(t->GetValue(0, 2).int64_value(), 10);
  EXPECT_NEAR(t->GetValue(0, 3).double_value(), (1.5 + 2.5 + 4.5) / 3, 1e-12);
  EXPECT_EQ(t->GetValue(0, 4).int64_value(), 1);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 5).double_value(), 4.5);
}

TEST_F(SqlTest, GlobalAggregateOnEmptyInput) {
  auto t = MustQuery(&db_, "SELECT COUNT(*), SUM(a) FROM t WHERE a > 100");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 0);
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
}

TEST_F(SqlTest, GroupBy) {
  auto t = MustQuery(&db_,
                     "SELECT s, COUNT(*), SUM(a) FROM t GROUP BY s "
                     "ORDER BY s");
  ASSERT_EQ(t->num_rows(), 3u);  // NULL group first
  EXPECT_TRUE(t->GetValue(0, 0).is_null());
  EXPECT_EQ(t->GetValue(1, 0).string_value(), "x");
  EXPECT_EQ(t->GetValue(1, 1).int64_value(), 2);
  EXPECT_EQ(t->GetValue(1, 2).int64_value(), 4);
}

TEST_F(SqlTest, GroupByExpression) {
  auto t = MustQuery(&db_,
                     "SELECT a % 2, COUNT(*) FROM t GROUP BY a % 2 "
                     "ORDER BY 1");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 2);
}

TEST_F(SqlTest, Having) {
  auto t = MustQuery(&db_,
                     "SELECT s, COUNT(*) AS c FROM t GROUP BY s "
                     "HAVING COUNT(*) > 1");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->GetValue(0, 0).string_value(), "x");
}

TEST_F(SqlTest, CountDistinct) {
  auto t = MustQuery(&db_, "SELECT COUNT(DISTINCT s) FROM t");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);  // NULL not counted
}

TEST_F(SqlTest, StdDevAndVariance) {
  // b values: 1.5, 2.5, 4.5 (NULL skipped). Sample variance of those is
  // ((1.5-a)^2 + (2.5-a)^2 + (4.5-a)^2) / 2 with a = 17/6.
  auto t = MustQuery(&db_, "SELECT VARIANCE(b), STDDEV(b) FROM t");
  double mean = (1.5 + 2.5 + 4.5) / 3.0;
  double var = ((1.5 - mean) * (1.5 - mean) + (2.5 - mean) * (2.5 - mean) +
                (4.5 - mean) * (4.5 - mean)) /
               2.0;
  EXPECT_NEAR(t->GetValue(0, 0).double_value(), var, 1e-9);
  EXPECT_NEAR(t->GetValue(0, 1).double_value(), std::sqrt(var), 1e-9);
}

TEST_F(SqlTest, StdDevOfSingleValueIsNull) {
  auto t = MustQuery(&db_, "SELECT STDDEV(b) FROM t WHERE a = 1");
  EXPECT_TRUE(t->GetValue(0, 0).is_null());
}

TEST_F(SqlTest, AggregateInsideExpression) {
  auto t = MustQuery(&db_, "SELECT 0.85 * SUM(b) FROM t");
  EXPECT_NEAR(t->GetValue(0, 0).double_value(), 0.85 * 8.5, 1e-12);
}

TEST_F(SqlTest, NonGroupedColumnFails) {
  auto result = db_.Query("SELECT a, COUNT(*) FROM t GROUP BY s");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
}

TEST_F(SqlTest, InnerJoin) {
  MustExecute(&db_, "CREATE TABLE u (a BIGINT, tag VARCHAR)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 'one'), (3, 'three'), (9, 'n')");
  auto t = MustQuery(&db_,
                     "SELECT t.a, u.tag FROM t JOIN u ON t.a = u.a "
                     "ORDER BY t.a");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 1).string_value(), "one");
  EXPECT_EQ(t->GetValue(1, 1).string_value(), "three");
}

TEST_F(SqlTest, LeftJoinPadsNulls) {
  MustExecute(&db_, "CREATE TABLE u (a BIGINT, tag VARCHAR)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 'one')");
  auto t = MustQuery(&db_,
                     "SELECT t.a, u.tag FROM t LEFT JOIN u ON t.a = u.a "
                     "ORDER BY t.a");
  ASSERT_EQ(t->num_rows(), 4u);
  EXPECT_EQ(t->GetValue(0, 1).string_value(), "one");
  EXPECT_TRUE(t->GetValue(1, 1).is_null());
}

TEST_F(SqlTest, JoinWithResidualPredicate) {
  MustExecute(&db_, "CREATE TABLE u (a BIGINT, v BIGINT)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 10), (1, 0), (2, 5)");
  auto t = MustQuery(&db_,
                     "SELECT t.a, u.v FROM t JOIN u ON t.a = u.a AND u.v > 1 "
                     "ORDER BY t.a, u.v");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 10);
  EXPECT_EQ(t->GetValue(1, 1).int64_value(), 5);
}

TEST_F(SqlTest, NonEquiJoinUsesNestedLoop) {
  MustExecute(&db_, "CREATE TABLE u (lo BIGINT, hi BIGINT)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 2), (3, 4)");
  auto t = MustQuery(&db_,
                     "SELECT t.a, u.lo FROM t JOIN u ON t.a BETWEEN u.lo AND "
                     "u.hi ORDER BY t.a");
  EXPECT_EQ(t->num_rows(), 4u);
}

TEST_F(SqlTest, CrossJoin) {
  MustExecute(&db_, "CREATE TABLE u (x BIGINT)");
  MustExecute(&db_, "INSERT INTO u VALUES (1), (2)");
  auto t = MustQuery(&db_, "SELECT t.a, u.x FROM t CROSS JOIN u");
  EXPECT_EQ(t->num_rows(), 8u);
}

TEST_F(SqlTest, SelfJoinWithAliases) {
  auto t = MustQuery(&db_,
                     "SELECT x.a, y.a FROM t AS x JOIN t AS y "
                     "ON x.a = y.a + 1 ORDER BY x.a");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
}

TEST_F(SqlTest, UnionDedupes) {
  auto t = MustQuery(&db_, "SELECT s FROM t UNION SELECT s FROM t");
  EXPECT_EQ(t->num_rows(), 3u);
}

TEST_F(SqlTest, UnionAllKeeps) {
  auto t = MustQuery(&db_, "SELECT s FROM t UNION ALL SELECT s FROM t");
  EXPECT_EQ(t->num_rows(), 8u);
}

TEST_F(SqlTest, UnionWidensTypes) {
  auto t = MustQuery(&db_, "SELECT a FROM t UNION ALL SELECT b FROM t");
  EXPECT_EQ(t->schema().column(0).type, TypeId::kDouble);
  EXPECT_EQ(t->num_rows(), 8u);
}

TEST_F(SqlTest, DerivedTableQuery) {
  auto t = MustQuery(&db_,
                     "SELECT sub.c FROM (SELECT COUNT(*) AS c FROM t) sub");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
}

TEST_F(SqlTest, RegularCte) {
  auto t = MustQuery(&db_,
                     "WITH big AS (SELECT a FROM t WHERE a >= 3) "
                     "SELECT COUNT(*) FROM big");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
}

TEST_F(SqlTest, CteReferencedTwice) {
  auto t = MustQuery(&db_,
                     "WITH c AS (SELECT a FROM t) "
                     "SELECT COUNT(*) FROM c AS x JOIN c AS y ON x.a = y.a");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 4);
}

TEST_F(SqlTest, ChainedCtes) {
  auto t = MustQuery(&db_,
                     "WITH c1 AS (SELECT a FROM t), "
                     "c2 AS (SELECT a + 1 AS a FROM c1) "
                     "SELECT MAX(a) FROM c2");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 5);
}

TEST_F(SqlTest, CaseExpression) {
  auto t = MustQuery(&db_,
                     "SELECT CASE WHEN a < 3 THEN 'small' ELSE 'big' END "
                     "FROM t ORDER BY a");
  EXPECT_EQ(t->GetValue(0, 0).string_value(), "small");
  EXPECT_EQ(t->GetValue(3, 0).string_value(), "big");
}

TEST_F(SqlTest, ScalarFunctions) {
  auto t = MustQuery(
      &db_,
      "SELECT LEAST(3, 1, 2), GREATEST(3, 1, 2), COALESCE(NULL, 5), "
      "CEILING(1.2), FLOOR(1.8), ROUND(1.23456, 2), MOD(7, 3), ABS(-4)");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 3);
  EXPECT_EQ(t->GetValue(0, 2).int64_value(), 5);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 3).double_value(), 2.0);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 4).double_value(), 1.0);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 5).double_value(), 1.23);
  EXPECT_EQ(t->GetValue(0, 6).int64_value(), 1);
  EXPECT_EQ(t->GetValue(0, 7).int64_value(), 4);
}

TEST_F(SqlTest, IntegerDivisionTruncates) {
  auto t = MustQuery(&db_, "SELECT 7 / 2, 7.0 / 2");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 3);
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).double_value(), 3.5);
}

TEST_F(SqlTest, DivisionByZeroFails) {
  auto result = db_.Query("SELECT a / 0 FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
}

// --- DDL / DML ---------------------------------------------------------------

TEST_F(SqlTest, UpdateSimple) {
  auto result = db_.Execute("UPDATE t SET b = b * 2 WHERE a <= 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 2);
  auto t = MustQuery(&db_, "SELECT b FROM t WHERE a = 1");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 0).double_value(), 3.0);
}

TEST_F(SqlTest, UpdateWithFromJoin) {
  MustExecute(&db_, "CREATE TABLE w (a BIGINT, nb DOUBLE)");
  MustExecute(&db_, "INSERT INTO w VALUES (1, 100.0), (3, 300.0)");
  auto result = db_.Execute(
      "UPDATE t SET b = w.nb FROM w WHERE t.a = w.a");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 2);
  auto t = MustQuery(&db_, "SELECT a, b FROM t ORDER BY a");
  EXPECT_DOUBLE_EQ(t->GetValue(0, 1).double_value(), 100.0);
  EXPECT_DOUBLE_EQ(t->GetValue(2, 1).double_value(), 300.0);
  EXPECT_DOUBLE_EQ(t->GetValue(1, 1).double_value(), 2.5);  // untouched
}

TEST_F(SqlTest, DeleteRows) {
  auto result = db_.Execute("DELETE FROM t WHERE s = 'x'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 2);
  EXPECT_EQ(MustQuery(&db_, "SELECT * FROM t")->num_rows(), 2u);
}

TEST_F(SqlTest, InsertSelectWithColumnSubset) {
  MustExecute(&db_, "CREATE TABLE u (a BIGINT, b DOUBLE, s VARCHAR)");
  MustExecute(&db_, "INSERT INTO u (a) SELECT a * 100 FROM t WHERE a <= 2");
  auto t = MustQuery(&db_, "SELECT a, b FROM u ORDER BY a");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 100);
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
}

TEST_F(SqlTest, InsertDoesNotMutatePriorResults) {
  auto before = MustQuery(&db_, "SELECT * FROM t");
  size_t rows_before = before->num_rows();
  MustExecute(&db_, "INSERT INTO t VALUES (99, 9.9, 'z')");
  EXPECT_EQ(before->num_rows(), rows_before);  // COW protects old readers
  EXPECT_EQ(MustQuery(&db_, "SELECT * FROM t")->num_rows(), rows_before + 1);
}

TEST_F(SqlTest, DropTable) {
  MustExecute(&db_, "DROP TABLE t");
  EXPECT_FALSE(db_.Query("SELECT * FROM t").ok());
}

TEST_F(SqlTest, ExecuteScriptReturnsLastResult) {
  auto result = db_.ExecuteScript(
      "CREATE TABLE z (x BIGINT); INSERT INTO z VALUES (1), (2); "
      "SELECT SUM(x) FROM z");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->GetValue(0, 0).int64_value(), 3);
}

TEST_F(SqlTest, ExplainProducesSteps) {
  auto result = db_.Execute("EXPLAIN SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->explain.find("Final query"), std::string::npos);
}

}  // namespace
}  // namespace dbspinner
