// Stored-procedure runner tests, including equivalence between the Fig 11
// procedure baselines and the iterative-CTE queries they mirror.

#include <gtest/gtest.h>

#include "engine/procedure.h"
#include "engine/workloads.h"
#include "graph/generator.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustExecute;
using testing::MustQuery;

TEST(ProcedureTest, StatementsRunInOrder) {
  Database db;
  Procedure p;
  p.Add("CREATE TABLE t (x BIGINT)")
      .Add("INSERT INTO t VALUES (1)")
      .Add("SELECT SUM(x) FROM t");
  auto result = p.Run(&db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table->GetValue(0, 0).int64_value(), 1);
}

TEST(ProcedureTest, LoopRepeatsBody) {
  Database db;
  Procedure p;
  p.Add("CREATE TABLE t (x BIGINT)")
      .Add("INSERT INTO t VALUES (0)")
      .BeginLoop(5)
      .Add("UPDATE t SET x = x + 1")
      .EndLoop()
      .Add("SELECT x FROM t");
  auto result = p.Run(&db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->GetValue(0, 0).int64_value(), 5);
}

TEST(ProcedureTest, NestedLoops) {
  Database db;
  Procedure p;
  p.Add("CREATE TABLE t (x BIGINT)")
      .Add("INSERT INTO t VALUES (0)")
      .BeginLoop(3)
      .BeginLoop(4)
      .Add("UPDATE t SET x = x + 1")
      .EndLoop()
      .EndLoop()
      .Add("SELECT x FROM t");
  auto result = p.Run(&db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table->GetValue(0, 0).int64_value(), 12);
}

TEST(ProcedureTest, TotalStatementsExpandsLoops) {
  Procedure p;
  p.Add("SELECT 1").BeginLoop(10).Add("SELECT 2").Add("SELECT 3").EndLoop();
  EXPECT_EQ(p.TotalStatements(), 21);
}

TEST(ProcedureTest, UnbalancedLoopFails) {
  Database db;
  Procedure p;
  p.BeginLoop(2).Add("SELECT 1");
  auto result = p.Run(&db);
  ASSERT_FALSE(result.ok());
}

TEST(ProcedureTest, FailedStatementAborts) {
  Database db;
  Procedure p;
  p.Add("SELECT * FROM missing_table").Add("SELECT 1");
  auto result = p.Run(&db);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

class ProcedureWorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphSpec spec;
    spec.num_nodes = 120;
    spec.num_edges = 500;
    spec.seed = 77;
    graph_ = graph::Generate(spec);
    ASSERT_TRUE(graph::LoadIntoDatabase(&db_, graph_, 0.8, 3).ok());
  }
  Database db_;
  graph::EdgeList graph_;
};

TEST_F(ProcedureWorkloadTest, PrVsProcedureMatchesCte) {
  constexpr int kIters = 4;
  TablePtr cte = MustQuery(&db_, workloads::PRVSQuery(kIters));
  // The canonical procedure must run end-to-end (it drops its temp tables,
  // so its Run() result is the final DROP's empty table).
  auto proc_result = workloads::PRVSProcedure(kIters).Run(&db_);
  ASSERT_TRUE(proc_result.ok()) << proc_result.status().ToString();
  // For value comparison, use a drop-free variant whose last statement is
  // the final SELECT:
  Database db2;
  ASSERT_TRUE(graph::LoadIntoDatabase(&db2, graph_, 0.8, 3).ok());
  Procedure keep;
  keep.Add("CREATE TABLE pr_main (node BIGINT, rank DOUBLE, delta DOUBLE)")
      .Add("CREATE TABLE pr_work (node BIGINT, rank DOUBLE, delta DOUBLE)")
      .Add(
          "INSERT INTO pr_main SELECT src, 0, 0.15 FROM "
          "(SELECT src FROM edges UNION SELECT dst FROM edges)")
      .BeginLoop(kIters)
      .Add("DELETE FROM pr_work")
      .Add(
          "INSERT INTO pr_work SELECT pr_main.node, "
          "pr_main.rank + pr_main.delta, "
          "0.85 * SUM(incomingrank.delta * incomingedges.weight) "
          "FROM pr_main LEFT JOIN edges AS incomingedges "
          "ON pr_main.node = incomingedges.dst "
          "JOIN vertexstatus AS avail_pr "
          "ON avail_pr.node = incomingedges.dst "
          "LEFT JOIN pr_main AS incomingrank "
          "ON incomingrank.node = incomingedges.src "
          "WHERE avail_pr.status != 0 "
          "GROUP BY pr_main.node, pr_main.rank + pr_main.delta")
      .Add(
          "UPDATE pr_main SET rank = pr_work.rank, delta = pr_work.delta "
          "FROM pr_work WHERE pr_main.node = pr_work.node")
      .EndLoop()
      .Add("SELECT node, rank FROM pr_main");
  auto kept = keep.Run(&db2);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  ExpectSameRows(cte, kept->table, 1e-9);
}

TEST_F(ProcedureWorkloadTest, FfProcedureMatchesCte) {
  constexpr int kIters = 4;
  TablePtr cte = MustQuery(&db_, workloads::FFQuery(kIters, 2, 1000000));
  Database db2;
  ASSERT_TRUE(graph::LoadIntoDatabase(&db2, graph_, 0.8, 3).ok());
  // The canonical FFProcedure keeps LIMIT 10; compare the top-10 sets by
  // running both with the same limit.
  TablePtr cte10 = MustQuery(&db_, workloads::FFQuery(kIters, 2, 10));
  auto proc = workloads::FFProcedure(kIters, 2).Run(&db2);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  // The procedure result is its last SELECT... which runs before drops; the
  // runner returns the DROP result instead. Re-run the final select shape on
  // a fresh DB via a drop-free procedure:
  Database db3;
  ASSERT_TRUE(graph::LoadIntoDatabase(&db3, graph_, 0.8, 3).ok());
  Procedure keep;
  keep.Add("CREATE TABLE ff_main (node BIGINT, friends DOUBLE, "
           "friendsprev DOUBLE)")
      .Add("CREATE TABLE ff_work (node BIGINT, friends DOUBLE, "
           "friendsprev DOUBLE)")
      .Add("INSERT INTO ff_main SELECT src AS node, COUNT(dst), "
           "CEILING(COUNT(dst) * (1.0 - (src % 10) / 100.0)) "
           "FROM edges GROUP BY src")
      .BeginLoop(kIters)
      .Add("DELETE FROM ff_work")
      .Add("INSERT INTO ff_work SELECT node, "
           "ROUND(CAST((friends / friendsprev) * friends AS NUMERIC), 5), "
           "friends FROM ff_main")
      .Add("DELETE FROM ff_main")
      .Add("INSERT INTO ff_main SELECT node, friends, friendsprev "
           "FROM ff_work")
      .EndLoop()
      .Add("SELECT node, friends FROM ff_main WHERE MOD(node, 2) = 0 "
           "ORDER BY friends DESC LIMIT 10");
  auto kept = keep.Run(&db3);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  ExpectSameRows(cte10, kept->table, 1e-6);
}

}  // namespace
}  // namespace dbspinner
