// Regression tests for table-aliasing and delta-count bugs: registry
// TablePtrs are shared (snapshots, renames, broadcast replicas), so every
// mutation path must copy-on-write, and CountChangedRows must stay correct
// when duplicate keys make the matched-row count exceed the prev row count.

#include <gtest/gtest.h>

#include "engine/options.h"
#include "exec/merge_update.h"
#include "exec/physical_planner.h"
#include "exec/program_executor.h"
#include "mpp/exchange.h"
#include "plan/program.h"
#include "storage/catalog.h"
#include "storage/result_registry.h"
#include "test_util.h"

namespace dbspinner {
namespace {

Schema KV() {
  Schema s;
  s.AddColumn("k", TypeId::kInt64);
  s.AddColumn("v", TypeId::kDouble);
  return s;
}

TablePtr MakeKV(std::vector<std::pair<int64_t, double>> rows) {
  auto t = Table::Make(KV());
  for (auto& [k, v] : rows) {
    t->AppendRow({Value::Int64(k), Value::Double(v)});
  }
  return t;
}

struct Env {
  Catalog catalog;
  ResultRegistry registry;
  EngineOptions options;
  ExecContext ctx;

  Env() {
    ctx.catalog = &catalog;
    ctx.registry = &registry;
    ctx.options = &options;
  }
};

// kAppendResult must not mutate the table in place: any snapshot alias of
// the target (Delta snapshots, pre-rename names, cached build sides) would
// silently grow with it.
TEST(AppendResultCowTest, SnapshotAliasSurvivesAppend) {
  Env env;
  env.registry.Put("acc", MakeKV({{1, 1.0}}));
  env.registry.Put("extra", MakeKV({{2, 2.0}}));
  TablePtr snapshot = *env.registry.Get("acc");
  ASSERT_EQ(snapshot->num_rows(), 1u);

  Program program;
  Step append;
  append.kind = Step::Kind::kAppendResult;
  append.id = program.NewId();
  append.target = "acc";
  append.source = "extra";
  program.steps.push_back(std::move(append));

  Step final_step;
  final_step.kind = Step::Kind::kFinal;
  final_step.id = program.NewId();
  final_step.plan = MakeScan(ScanSource::kResult, "acc", KV());
  program.steps.push_back(std::move(final_step));

  ASSERT_TRUE(PlanProgram(&program).ok());
  auto result = RunProgram(program, &env.ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->num_rows(), 2u);

  // The registry now holds a fresh table; the snapshot kept the old rows.
  TablePtr current = *env.registry.Get("acc");
  EXPECT_NE(current.get(), snapshot.get());
  EXPECT_EQ(current->num_rows(), 2u);
  EXPECT_EQ(snapshot->num_rows(), 1u);
}

// Duplicate keys in `current` match the same prev row repeatedly; a naive
// matched-row counter exceeds prev.num_rows() and makes the
// disappeared-keys subtraction wrap around (unsigned), producing a huge
// bogus change count that keeps DELTA loops spinning.
TEST(CountChangedRowsTest, DuplicateCurrentKeysDoNotWrap) {
  auto prev = MakeKV({{1, 10.0}, {2, 20.0}});
  auto cur = MakeKV({{1, 10.0}, {1, 10.0}, {2, 25.0}});
  // Key 1 rows are byte-identical to prev (twice); only key 2's value
  // changed. Every prev row was matched, so nothing disappeared.
  EXPECT_EQ(CountChangedRows(*prev, *cur, 0), 1);

  // All-duplicates, no value change: zero changes, not a wrapped count.
  auto dup_only = MakeKV({{1, 10.0}, {1, 10.0}, {2, 20.0}, {2, 20.0}});
  EXPECT_EQ(CountChangedRows(*prev, *dup_only, 0), 0);
}

// Broadcast must hand every node its own copy: a node-local mutation (or a
// downstream COW violation) on one replica must not leak into the others
// or back into the source table.
TEST(BroadcastTest, ReplicasAreIndependentCopies) {
  auto source = MakeKV({{1, 1.0}, {2, 2.0}});
  int64_t moved = 0;
  auto replicas_r = Exchange::Broadcast(source, 3, &moved);
  ASSERT_TRUE(replicas_r.ok()) << replicas_r.status().ToString();
  std::vector<TablePtr> replicas = std::move(*replicas_r);
  ASSERT_EQ(replicas.size(), 3u);
  // Replicating 2 rows to 2 remote nodes moves 4 rows over the network.
  EXPECT_EQ(moved, 4);

  EXPECT_NE(replicas[0].get(), source.get());
  EXPECT_NE(replicas[0].get(), replicas[1].get());

  replicas[0]->AppendRow({Value::Int64(9), Value::Double(9.0)});
  EXPECT_EQ(replicas[0]->num_rows(), 3u);
  EXPECT_EQ(replicas[1]->num_rows(), 2u);
  EXPECT_EQ(replicas[2]->num_rows(), 2u);
  EXPECT_EQ(source->num_rows(), 2u);
}

// Shuffle of a zero-partition DistributedTable (an empty loop delta on an
// idle cluster) must not dereference partition(0) for its schema.
TEST(ShuffleTest, EmptyDistributedTableDoesNotCrash) {
  DistributedTable empty = DistributedTable::FromPartitions({}, {0});
  int64_t moved = 0;
  auto out_r = Exchange::Shuffle(empty, {0}, nullptr, &moved);
  ASSERT_TRUE(out_r.ok()) << out_r.status().ToString();
  DistributedTable out = std::move(*out_r);
  EXPECT_EQ(out.num_nodes(), 0u);
  EXPECT_EQ(out.TotalRows(), 0u);
  EXPECT_EQ(moved, 0);
}

// A DELTA-terminated loop whose body appends into the watched CTE: before
// the kAppendResult copy-on-write fix, the loop state's `previous` snapshot
// aliased the CTE table, so CountChangedRows compared the table against
// itself and terminated after one iteration.
TEST(DeltaLessAliasingTest, AppendBodyIteratesUntilQuiescent) {
  Env env;
  env.registry.Put("grow", MakeKV({{1, 1.0}}));
  env.registry.Put("dup", MakeKV({{2, 2.0}}));

  LoopSpec spec;
  spec.kind = LoopSpec::Kind::kDeltaLess;
  spec.n = 1;  // UNTIL DELTA < 1
  spec.cte_name = "grow";

  Program program;
  Step init;
  init.kind = Step::Kind::kInitLoop;
  init.id = program.NewId();
  init.loop_id = 1;
  init.loop = spec.Clone();
  program.steps.push_back(std::move(init));

  Step body;
  body.kind = Step::Kind::kAppendResult;
  body.id = program.NewId();
  body.target = "grow";
  body.source = "dup";
  body.loop_id = 1;
  int body_id = body.id;
  program.steps.push_back(std::move(body));

  Step check;
  check.kind = Step::Kind::kLoopCheck;
  check.id = program.NewId();
  check.loop_id = 1;
  check.loop = spec.Clone();
  check.jump_to_id = body_id;
  program.steps.push_back(std::move(check));

  Step final_step;
  final_step.kind = Step::Kind::kFinal;
  final_step.id = program.NewId();
  final_step.plan = MakeScan(ScanSource::kResult, "grow", KV());
  program.steps.push_back(std::move(final_step));

  ASSERT_TRUE(PlanProgram(&program).ok());
  auto result = RunProgram(program, &env.ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Iteration 1 appends key 2 (one new key => delta 1 => continue);
  // iteration 2 appends a second identical key-2 row (duplicate of a
  // matched key-group => delta 0 => stop). The aliasing bug stopped after
  // iteration 1 with only 2 rows.
  EXPECT_EQ(env.ctx.stats.loop_iterations, 2);
  EXPECT_EQ((*result)->num_rows(), 3u);
}

}  // namespace
}  // namespace dbspinner
