// EXPLAIN / plan rendering tests: the Table I view and plan trees.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "exec/physical_planner.h"
#include "plan/plan_printer.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;

class PlanPrinterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db_,
                "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)");
  }

  std::string Explain(const std::string& sql, bool verbose = true) {
    auto program = db_.Plan(sql);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    if (!program.ok()) return "";
    return ExplainProgram(*program, verbose);
  }

  Database db_;
};

TEST_F(PlanPrinterTest, StepsAreNumberedSequentially) {
  // Table I's six steps plus the ComputeDelta / affected-keys pair the
  // delta-iteration rewrite inserts at the loop-body start.
  std::string text = Explain(workloads::PRQuery(10), /*verbose=*/false);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_NE(text.find("Step " + std::to_string(i) + ":"),
              std::string::npos)
        << text;
  }
  EXPECT_EQ(text.find("Step 9:"), std::string::npos);
  EXPECT_NE(text.find("ComputeDelta"), std::string::npos) << text;
}

TEST_F(PlanPrinterTest, LoopCheckResolvesJumpTarget) {
  // The PR program's loop check jumps back to the Ri materialization
  // (step 3 of the six-step Table I program).
  std::string text = Explain(workloads::PRQuery(10), /*verbose=*/false);
  EXPECT_NE(text.find("go to step 3 if continue"), std::string::npos) << text;
}

TEST_F(PlanPrinterTest, JumpTargetShiftsWithCommonResult) {
  // With a hoisted __common#1 step inserted before the loop, the body
  // start moves from step 3 to step 4 — jump targets resolve by step id,
  // not position.
  std::string text = Explain(workloads::PRVSQuery(10), /*verbose=*/false);
  EXPECT_NE(text.find("go to step 4 if continue"), std::string::npos) << text;
}

TEST_F(PlanPrinterTest, VerboseIncludesPlanTrees) {
  std::string verbose = Explain(workloads::PRQuery(5), true);
  std::string terse = Explain(workloads::PRQuery(5), false);
  EXPECT_NE(verbose.find("Join"), std::string::npos);
  EXPECT_NE(verbose.find("Aggregate"), std::string::npos);
  EXPECT_EQ(terse.find("Aggregate"), std::string::npos);
  EXPECT_GT(verbose.size(), terse.size());
}

TEST_F(PlanPrinterTest, LoopSpecRendersAllTypes) {
  std::string metadata = Explain(
      "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM c "
      "UNTIL 3 ITERATIONS) SELECT n FROM c",
      false);
  EXPECT_NE(metadata.find("<<Type:metadata, N:3 iterations, Expr:NONE>>"),
            std::string::npos)
      << metadata;

  std::string data = Explain(
      "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE SELECT n + 1 FROM c "
      "UNTIL ANY(n > 5)) SELECT n FROM c",
      false);
  EXPECT_NE(data.find("<<Type:data, N:ANY"), std::string::npos) << data;

  std::string delta = Explain(
      "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE SELECT LEAST(n + 1, 3) "
      "FROM c UNTIL DELTA < 1) SELECT n FROM c",
      false);
  EXPECT_NE(delta.find("<<Type:delta, N:delta < 1"), std::string::npos)
      << delta;
}

TEST_F(PlanPrinterTest, LogicalPlanTreeIndentsChildren) {
  auto program = db_.Plan("SELECT e.src FROM edges e JOIN vertexstatus v "
                          "ON e.dst = v.node WHERE v.status = 1");
  ASSERT_TRUE(program.ok());
  std::string tree = program->steps.back().plan->ToString();
  // Scans are deeper than the join.
  size_t join = tree.find("Join");
  size_t scan = tree.find("Scan table:edges");
  ASSERT_NE(join, std::string::npos);
  ASSERT_NE(scan, std::string::npos);
  EXPECT_LT(join, scan);
}

TEST_F(PlanPrinterTest, ExplainAnalyzeReportsExecutions) {
  MustExecute(&db_, "INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 0.5)");
  auto result = db_.Execute("EXPLAIN ANALYZE " + workloads::PRQuery(7));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& text = result->explain;
  // The loop-body Ri materialization ran once per iteration.
  EXPECT_NE(text.find("(actual: 7x"), std::string::npos) << text;
  // R0 ran exactly once.
  EXPECT_NE(text.find("(actual: 1x"), std::string::npos) << text;
  EXPECT_NE(text.find("ms total"), std::string::npos) << text;
  EXPECT_NE(text.find("rows last"), std::string::npos) << text;
  EXPECT_EQ(result->stats.loop_iterations, 7);
}

TEST_F(PlanPrinterTest, ExplainAnalyzeRendersExecutionStats) {
  MustExecute(&db_, "INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 0.5)");
  auto result = db_.Execute("EXPLAIN ANALYZE " + workloads::PRQuery(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string& text = result->explain;
  // The counter block renders below the profiled plan, including the
  // fault-tolerance counters (zero on a clean run, but always present).
  EXPECT_NE(text.find("\nStats: ExecStats{"), std::string::npos) << text;
  EXPECT_NE(text.find("checkpoints_taken=0"), std::string::npos) << text;
  EXPECT_NE(text.find("restores=0"), std::string::npos) << text;
  EXPECT_NE(text.find("step_retries=0"), std::string::npos) << text;
  EXPECT_NE(text.find("faults_seen=0"), std::string::npos) << text;
  // The parallel-pipeline counters are always present too (zero on this
  // serial run for the stealing/merge counters).
  EXPECT_NE(text.find("morsels_stolen=0"), std::string::npos) << text;
  EXPECT_NE(text.find("agg_partials_merged="), std::string::npos) << text;
  EXPECT_NE(text.find("agg_rows_preaggregated="), std::string::npos) << text;
  // StepProfile splicing still renders alongside the stats block.
  EXPECT_NE(text.find("(actual: "), std::string::npos) << text;
}

TEST_F(PlanPrinterTest, ExplainAnalyzeShowsRecoveryCounters) {
  MustExecute(&db_, "INSERT INTO edges VALUES (1, 2, 0.5), (2, 1, 0.5)");
  db_.options().fault_injection.enabled = true;
  db_.options().fault_injection.seed = 11;
  db_.options().fault_injection.rate = 0.3;
  db_.options().fault_injection.site_filter = "exec.materialize";
  db_.options().fault_tolerance.enable_recovery = true;
  auto result = db_.Execute("EXPLAIN ANALYZE " + workloads::PRQuery(7));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Recovery mode checkpoints every loop entry, so the counter is nonzero
  // and EXPLAIN ANALYZE must surface it.
  EXPECT_GT(result->stats.checkpoints_taken, 0);
  EXPECT_EQ(result->explain.find("checkpoints_taken=0"), std::string::npos)
      << result->explain;
  EXPECT_NE(result->explain.find("checkpoints_taken="), std::string::npos)
      << result->explain;
}

TEST_F(PlanPrinterTest, ExplainAnalyzeDisabledByDefault) {
  MustExecute(&db_, "INSERT INTO edges VALUES (1, 2, 0.5)");
  auto result = db_.Execute("EXPLAIN " + workloads::PRQuery(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->explain.find("actual:"), std::string::npos);
}

TEST_F(PlanPrinterTest, PhysicalPlanRenders) {
  auto program = db_.Plan("SELECT src, COUNT(*) FROM edges GROUP BY src");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(PlanProgram(&*program).ok());
  std::string text = program->steps.back().physical->ToString();
  EXPECT_NE(text.find("HashAggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan"), std::string::npos) << text;
}

}  // namespace
}  // namespace dbspinner
