// Failure-path coverage: malformed SQL, semantic errors, runtime errors,
// and engine guard rails all surface as typed Status codes, never crashes.

#include <gtest/gtest.h>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;

void ExpectFailure(Database* db, const std::string& sql, StatusCode code) {
  auto result = db->Execute(sql);
  ASSERT_FALSE(result.ok()) << "expected failure for: " << sql;
  EXPECT_EQ(result.status().code(), code)
      << sql << " -> " << result.status().ToString();
}

class FailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_, "CREATE TABLE t (a BIGINT, b DOUBLE)");
    MustExecute(&db_, "INSERT INTO t VALUES (1, 1.0), (2, 2.0)");
  }
  Database db_;
};

TEST_F(FailureTest, LexErrors) {
  ExpectFailure(&db_, "SELECT 'unterminated", StatusCode::kParseError);
  ExpectFailure(&db_, "SELECT a ~ b FROM t", StatusCode::kParseError);
}

TEST_F(FailureTest, ParseErrors) {
  ExpectFailure(&db_, "SELEC a FROM t", StatusCode::kParseError);
  ExpectFailure(&db_, "SELECT FROM t", StatusCode::kParseError);
  ExpectFailure(&db_, "SELECT a FROM t WHERE", StatusCode::kParseError);
  ExpectFailure(&db_, "SELECT a FROM t GROUP", StatusCode::kParseError);
  ExpectFailure(&db_, "SELECT a FROM t LIMIT x", StatusCode::kParseError);
  ExpectFailure(&db_, "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 1) "
                      "SELECT 1", StatusCode::kParseError);
}

TEST_F(FailureTest, BindErrors) {
  ExpectFailure(&db_, "SELECT missing FROM t", StatusCode::kBindError);
  ExpectFailure(&db_, "SELECT t.a FROM t AS x", StatusCode::kBindError);
  ExpectFailure(&db_, "SELECT UNKNOWN_FN(a) FROM t", StatusCode::kBindError);
  ExpectFailure(&db_, "SELECT a FROM t ORDER BY 99", StatusCode::kBindError);
  ExpectFailure(&db_, "SELECT a, COUNT(*) FROM t", StatusCode::kBindError);
  ExpectFailure(&db_, "SELECT SUM(COUNT(a)) FROM t", StatusCode::kBindError);
}

TEST_F(FailureTest, MissingObjects) {
  ExpectFailure(&db_, "SELECT * FROM nope", StatusCode::kNotFound);
  ExpectFailure(&db_, "DROP TABLE nope", StatusCode::kNotFound);
  ExpectFailure(&db_, "INSERT INTO nope VALUES (1)", StatusCode::kNotFound);
  ExpectFailure(&db_, "UPDATE nope SET a = 1", StatusCode::kNotFound);
  ExpectFailure(&db_, "DELETE FROM nope", StatusCode::kNotFound);
}

TEST_F(FailureTest, DuplicateTable) {
  ExpectFailure(&db_, "CREATE TABLE t (x INT)", StatusCode::kAlreadyExists);
  // IF NOT EXISTS suppresses the error.
  MustExecute(&db_, "CREATE TABLE IF NOT EXISTS t (x INT)");
}

TEST_F(FailureTest, TypeErrors) {
  ExpectFailure(&db_, "SELECT a + 'x' FROM t", StatusCode::kTypeError);
  ExpectFailure(&db_, "SELECT a FROM t WHERE a + 1", StatusCode::kTypeError);
  ExpectFailure(&db_, "SELECT NOT a FROM t", StatusCode::kTypeError);
  ExpectFailure(&db_, "SELECT SUM('x') FROM t", StatusCode::kTypeError);
  ExpectFailure(&db_, "CREATE TABLE bad (x BLOB)", StatusCode::kTypeError);
}

TEST_F(FailureTest, RuntimeErrors) {
  ExpectFailure(&db_, "SELECT a / 0 FROM t", StatusCode::kExecutionError);
  ExpectFailure(&db_, "SELECT MOD(a, 0) FROM t",
                StatusCode::kExecutionError);
  ExpectFailure(&db_, "SELECT CAST('xyz' AS BIGINT) FROM t",
                StatusCode::kTypeError);
}

TEST_F(FailureTest, InsertArityMismatch) {
  ExpectFailure(&db_, "INSERT INTO t VALUES (1)", StatusCode::kBindError);
  ExpectFailure(&db_, "INSERT INTO t (a) VALUES (1, 2)",
                StatusCode::kBindError);
  ExpectFailure(&db_, "INSERT INTO t (zz) VALUES (1)",
                StatusCode::kBindError);
  ExpectFailure(&db_, "INSERT INTO t SELECT a FROM t",
                StatusCode::kBindError);
}

TEST_F(FailureTest, UpdateUnknownColumn) {
  ExpectFailure(&db_, "UPDATE t SET zz = 1", StatusCode::kBindError);
}

TEST_F(FailureTest, IterativeCteErrors) {
  // Bad KEY column.
  ExpectFailure(&db_,
                "WITH ITERATIVE r (x) KEY (zz) AS (SELECT 1 ITERATE "
                "SELECT x FROM r WHERE x > 0 UNTIL 2 ITERATIONS) "
                "SELECT * FROM r",
                StatusCode::kBindError);
  // Column-count mismatch between declaration and query.
  ExpectFailure(&db_,
                "WITH ITERATIVE r (x, y) AS (SELECT 1 ITERATE "
                "SELECT x, y FROM r UNTIL 2 ITERATIONS) SELECT * FROM r",
                StatusCode::kBindError);
  // Iterative part returning a different column count.
  ExpectFailure(&db_,
                "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE "
                "SELECT x, x FROM r UNTIL 2 ITERATIONS) SELECT * FROM r",
                StatusCode::kBindError);
  // Non-boolean data termination condition.
  ExpectFailure(&db_,
                "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE "
                "SELECT x + 1 FROM r UNTIL ANY(x + 1)) SELECT * FROM r",
                StatusCode::kTypeError);
  // Duplicate CTE names.
  ExpectFailure(&db_,
                "WITH c AS (SELECT 1 AS x), c AS (SELECT 2 AS x) "
                "SELECT * FROM c",
                StatusCode::kBindError);
}

TEST_F(FailureTest, IterativeTypeConflictFails) {
  // Ri produces a string where R0 produced an int: no common type.
  ExpectFailure(&db_,
                "WITH ITERATIVE r (x) AS (SELECT 1 ITERATE "
                "SELECT 'abc' FROM r UNTIL 2 ITERATIONS) SELECT * FROM r",
                StatusCode::kTypeError);
}

TEST_F(FailureTest, EmptyScriptFails) {
  auto result = db_.ExecuteScript("   ");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FailureTest, ErrorsLeaveCatalogUsable) {
  ExpectFailure(&db_, "SELECT a / 0 FROM t", StatusCode::kExecutionError);
  // The engine remains fully usable after a runtime failure.
  auto t = testing::MustQuery(&db_, "SELECT COUNT(*) FROM t");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
}

TEST_F(FailureTest, MidIterationFailureSurfacesCleanly) {
  MustExecute(&db_, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db_, "INSERT INTO base VALUES (1, 4)");
  // v reaches 0 after 4 iterations; the 5th divides by zero inside Ri.
  auto result = db_.Execute(
      "WITH ITERATIVE r (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT id, 100 / v + v - 100 / v - 1 FROM r UNTIL 10 ITERATIONS) "
      "SELECT * FROM r");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  // And the engine still works.
  auto t = testing::MustQuery(&db_, "SELECT COUNT(*) FROM base");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
}

}  // namespace
}  // namespace dbspinner
