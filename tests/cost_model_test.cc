// Cost model / iteration estimation tests (paper §IX future work).

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "optimizer/cost_model.h"
#include "plan/plan_printer.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db_,
                "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)");
    // Give the tables real sizes for the estimator to read.
    std::string insert = "INSERT INTO edges VALUES (1, 2, 1.0)";
    for (int i = 1; i < 1000; ++i) {
      insert += ", (" + std::to_string(i % 100) + ", " +
                std::to_string((i * 7) % 100) + ", 1.0)";
    }
    MustExecute(&db_, insert);
    std::string vs = "INSERT INTO vertexstatus VALUES (0, 1)";
    for (int i = 1; i < 100; ++i) {
      vs += ", (" + std::to_string(i) + ", " + std::to_string(i % 2) + ")";
    }
    MustExecute(&db_, vs);
  }

  double Cardinality(const std::string& sql) {
    auto program = db_.Plan(sql);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    CostModel model(&db_.catalog());
    // The final step's plan is the query.
    return model.EstimateCardinality(*program->steps.back().plan);
  }

  Database db_;
};

TEST_F(CostModelTest, ScanUsesCatalogSize) {
  EXPECT_DOUBLE_EQ(Cardinality("SELECT * FROM edges"), 1000.0);
  EXPECT_DOUBLE_EQ(Cardinality("SELECT * FROM vertexstatus"), 100.0);
}

TEST_F(CostModelTest, FilterReducesCardinality) {
  double all = Cardinality("SELECT * FROM edges");
  double eq = Cardinality("SELECT * FROM edges WHERE src = 5");
  double range = Cardinality("SELECT * FROM edges WHERE src > 5");
  EXPECT_LT(eq, range);
  EXPECT_LT(range, all);
}

TEST_F(CostModelTest, ConjunctsMultiply) {
  double one = Cardinality("SELECT * FROM edges WHERE src = 5");
  double two = Cardinality("SELECT * FROM edges WHERE src = 5 AND dst = 7");
  EXPECT_LT(two, one);
}

TEST_F(CostModelTest, CrossJoinIsProduct) {
  EXPECT_DOUBLE_EQ(
      Cardinality("SELECT * FROM edges CROSS JOIN vertexstatus"),
      1000.0 * 100.0);
}

TEST_F(CostModelTest, EquiJoinBelowCross) {
  double equi = Cardinality(
      "SELECT * FROM edges e JOIN vertexstatus v ON e.dst = v.node");
  EXPECT_LT(equi, 1000.0 * 100.0);
  EXPECT_GE(equi, 1000.0);  // no smaller than the bigger input
}

TEST_F(CostModelTest, GlobalAggregateIsOneRow) {
  EXPECT_DOUBLE_EQ(Cardinality("SELECT COUNT(*) FROM edges"), 1.0);
}

TEST_F(CostModelTest, GroupedAggregateShrinks) {
  double groups = Cardinality("SELECT src, COUNT(*) FROM edges GROUP BY src");
  EXPECT_LT(groups, 1000.0);
  EXPECT_GT(groups, 1.0);
}

TEST_F(CostModelTest, LimitCaps) {
  EXPECT_DOUBLE_EQ(Cardinality("SELECT * FROM edges LIMIT 7"), 7.0);
}

TEST_F(CostModelTest, IterationEstimates) {
  CostModel model(&db_.catalog());
  LoopSpec metadata;
  metadata.kind = LoopSpec::Kind::kIterations;
  metadata.n = 25;
  EXPECT_DOUBLE_EQ(model.EstimateIterations(metadata, 0), 25.0);

  LoopSpec updates;
  updates.kind = LoopSpec::Kind::kUpdates;
  updates.n = 1000;
  EXPECT_DOUBLE_EQ(model.EstimateIterations(updates, 100.0), 10.0);

  LoopSpec delta;
  delta.kind = LoopSpec::Kind::kDeltaLess;
  delta.n = 1;
  EXPECT_DOUBLE_EQ(model.EstimateIterations(delta, 100.0, 12.0), 12.0);
}

TEST_F(CostModelTest, ProgramCostWeighsLoopBody) {
  auto few = db_.Plan(workloads::PRQuery(2));
  auto many = db_.Plan(workloads::PRQuery(50));
  ASSERT_TRUE(few.ok());
  ASSERT_TRUE(many.ok());
  CostModel model(&db_.catalog());
  double cost_few = model.EstimateProgramCost(*few);
  double cost_many = model.EstimateProgramCost(*many);
  EXPECT_GT(cost_many, 5 * cost_few);
}

TEST_F(CostModelTest, ExplainCostRenders) {
  auto program = db_.Plan(workloads::PRQuery(3));
  ASSERT_TRUE(program.ok());
  CostModel model(&db_.catalog());
  std::string text = model.ExplainCost(*program);
  EXPECT_NE(text.find("Total program cost"), std::string::npos);
  EXPECT_NE(text.find("est_rows"), std::string::npos);
}

TEST_F(CostModelTest, SingleIterationLoopSkipsCommonResult) {
  // The cost guard: a 1-iteration loop cannot amortize the hoisted
  // materialization, so the common-result rewrite must not fire.
  auto program = db_.Plan(workloads::PRVSQuery(1));
  ASSERT_TRUE(program.ok());
  std::string text = ExplainProgram(*program, false);
  EXPECT_EQ(text.find("__common#"), std::string::npos) << text;

  auto program2 = db_.Plan(workloads::PRVSQuery(2));
  ASSERT_TRUE(program2.ok());
  std::string text2 = ExplainProgram(*program2, false);
  EXPECT_NE(text2.find("__common#"), std::string::npos) << text2;
}

TEST_F(CostModelTest, ExplainCostStatement) {
  auto result = db_.Execute("EXPLAIN COST " + workloads::PRQuery(3));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->explain.find("Total program cost"), std::string::npos);
  // Plain EXPLAIN omits the cost section.
  auto plain = db_.Execute("EXPLAIN " + workloads::PRQuery(3));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->explain.find("Total program cost"), std::string::npos);
}

TEST_F(CostModelTest, NullCatalogStillEstimates) {
  CostModel model(nullptr);
  auto program = db_.Plan("SELECT * FROM edges");
  ASSERT_TRUE(program.ok());
  EXPECT_GT(model.EstimateCardinality(*program->steps.back().plan), 0.0);
}

}  // namespace
}  // namespace dbspinner
