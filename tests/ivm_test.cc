// Incremental materialized views (src/ivm/, DESIGN.md §14): delta-driven
// maintenance must be observationally equivalent to recomputing the view's
// defining query, for every plan shape the incrementalizer supports and for
// every shape it falls back on. The ExecStats counters double as the test's
// proof that the *intended* path ran — an aggregate view that silently full-
// refreshes on every delta would still pass an equality check.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "server/session.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustExecute;
using testing::MustQuery;
using testing::Unwrap;

/// Sum of the four ivm_* counters carried by one statement's stats.
struct IvmTally {
  int64_t deltas = 0;
  int64_t rows = 0;
  int64_t fulls = 0;
  int64_t fallbacks = 0;

  void Add(const ExecStats& s) {
    deltas += s.ivm_deltas_applied;
    rows += s.ivm_rows_maintained;
    fulls += s.ivm_full_refreshes;
    fallbacks += s.ivm_fallbacks;
  }
};

class IvmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MustExecute(&db_,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db_,
                "INSERT INTO edges VALUES (1, 2, 0.5), (1, 3, 0.5), "
                "(2, 3, 1.0), (3, 1, 1.0), (3, 2, 2.0)");
    MustExecute(&db_, "CREATE TABLE vertexstatus (node BIGINT, status BIGINT)");
    MustExecute(&db_,
                "INSERT INTO vertexstatus VALUES (1, 1), (2, 0), (3, 1)");
  }

  /// Executes and folds the statement's ivm counters into `tally`.
  void Run(const std::string& sql, IvmTally* tally = nullptr) {
    Result<QueryResult> r = db_.Execute(sql);
    ASSERT_TRUE(r.ok()) << r.status().ToString() << "\nSQL: " << sql;
    if (tally != nullptr) tally->Add(r->stats);
  }

  /// The maintained view must equal its defining query re-executed.
  void ExpectViewMatches(const std::string& name, const std::string& body,
                         IvmTally* tally = nullptr) {
    Result<QueryResult> view = db_.Execute("SELECT * FROM " + name);
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    if (tally != nullptr) tally->Add(view->stats);
    ExpectSameRows(view->table, MustQuery(&db_, body));
  }

  Database db_;
};

constexpr const char* kFilterBody =
    "SELECT src, dst, weight FROM edges WHERE MOD(src, 2) = 1";
constexpr const char* kJoinBody =
    "SELECT e.src, e.dst, vs.status FROM edges AS e "
    "JOIN vertexstatus AS vs ON vs.node = e.dst";
constexpr const char* kAggBody =
    "SELECT src, COUNT(*) AS c, SUM(weight) AS s FROM edges GROUP BY src";

TEST_F(IvmTest, LinearFilterViewMaintainsIncrementally) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kFilterBody);
  IvmTally tally;
  Run("INSERT INTO edges VALUES (5, 1, 4.0), (6, 1, 4.0)", &tally);
  ExpectViewMatches("v", kFilterBody);
  Run("UPDATE edges SET weight = weight * 2.0 WHERE src = 1", &tally);
  ExpectViewMatches("v", kFilterBody);
  Run("DELETE FROM edges WHERE src = 3", &tally);
  ExpectViewMatches("v", kFilterBody);
  // All three deltas must have folded incrementally, not via recompute.
  EXPECT_GE(tally.deltas, 3);
  EXPECT_GT(tally.rows, 0);
  EXPECT_EQ(tally.fulls, 0);
  EXPECT_EQ(tally.fallbacks, 0);
}

TEST_F(IvmTest, JoinViewMaintainsFromEitherInput) {
  Run(std::string("CREATE MATERIALIZED VIEW vj AS ") + kJoinBody);
  IvmTally tally;
  Run("INSERT INTO edges VALUES (2, 1, 9.0)", &tally);
  ExpectViewMatches("vj", kJoinBody);
  // Delta arriving from the *other* join input: the linear plan substitutes
  // the delta on vertexstatus while edges stays whole.
  Run("UPDATE vertexstatus SET status = 1 - status WHERE node = 2", &tally);
  ExpectViewMatches("vj", kJoinBody);
  Run("DELETE FROM vertexstatus WHERE node = 3", &tally);
  ExpectViewMatches("vj", kJoinBody);
  EXPECT_GE(tally.deltas, 3);
  EXPECT_EQ(tally.fulls, 0);
}

TEST_F(IvmTest, AggregateRetractionsFoldIncrementally) {
  Run(std::string("CREATE MATERIALIZED VIEW va AS ") + kAggBody);
  IvmTally tally;
  Run("INSERT INTO edges VALUES (1, 4, 2.0)", &tally);
  ExpectViewMatches("va", kAggBody);
  // Retraction: COUNT and SUM walk backwards; group 3 loses one of its two
  // rows.
  Run("DELETE FROM edges WHERE dst = 1", &tally);
  ExpectViewMatches("va", kAggBody);
  Run("UPDATE edges SET weight = weight + 0.25 WHERE src = 1", &tally);
  ExpectViewMatches("va", kAggBody);
  EXPECT_GE(tally.deltas, 3);
  EXPECT_EQ(tally.fulls, 0);
}

TEST_F(IvmTest, MinRetractionEscalatesToFullRefresh) {
  const std::string body =
      "SELECT src, MIN(weight) AS mn FROM edges GROUP BY src";
  Run("CREATE MATERIALIZED VIEW vm AS " + body);
  IvmTally tally;
  // Inserting a new minimum folds incrementally (MIN under insert is a fold).
  Run("INSERT INTO edges VALUES (1, 9, 0.125)", &tally);
  ExpectViewMatches("vm", body);
  EXPECT_EQ(tally.fulls, 0);
  // Deleting the row that holds group 1's minimum cannot be folded — the
  // registry must escalate that view to a full refresh, and still serve the
  // right answer.
  Run("DELETE FROM edges WHERE weight < 0.2", &tally);
  ExpectViewMatches("vm", body);
  EXPECT_GE(tally.fulls, 1);
}

TEST_F(IvmTest, FallbackShapesRecomputeOnRead) {
  const std::string body = "SELECT DISTINCT dst FROM edges";
  Run("CREATE MATERIALIZED VIEW vd AS " + body);
  IvmTally tally;
  Run("INSERT INTO edges VALUES (7, 7, 1.0)", &tally);
  ExpectViewMatches("vd", body, &tally);
  Run("DELETE FROM edges WHERE dst = 7", &tally);
  ExpectViewMatches("vd", body, &tally);
  // DISTINCT has no incremental plan: every sync is a fallback recompute.
  EXPECT_GT(tally.fallbacks, 0);
  EXPECT_EQ(tally.deltas, 0);
}

TEST_F(IvmTest, ViewReadsComposeWithMppWidths) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);
  Run("INSERT INTO edges VALUES (4, 1, 1.0), (4, 2, 2.0)");
  TablePtr expected = MustQuery(&db_, kAggBody);
  for (int workers : {2, 8}) {
    SCOPED_TRACE(workers);
    EngineOptions eo = db_.options();
    eo.num_workers = workers;
    eo.mpp_min_rows_per_task = 1;
    SessionState reader(eo);
    reader.temp_scope = "w" + std::to_string(workers) + ":";
    Result<QueryResult> r = db_.ExecuteForSession(&reader, "SELECT * FROM v");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameRows(r->table, expected);
  }
}

TEST_F(IvmTest, RollbackLeavesViewsConsistent) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);
  TablePtr before = MustQuery(&db_, "SELECT * FROM v");
  Run("BEGIN");
  Run("INSERT INTO edges VALUES (8, 8, 8.0)");
  Run("UPDATE edges SET weight = 0.0 WHERE src = 1");
  Run("ROLLBACK");
  // The rolled-back deltas must not leak into the view in any form.
  ExpectViewMatches("v", kAggBody);
  ExpectSameRows(MustQuery(&db_, "SELECT * FROM v"), before);
}

TEST_F(IvmTest, InterruptedMaintenanceServesPriorVersionThenResumes) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);
  ExpectViewMatches("v", kAggBody);

  // Injected faults with recovery off make every maintenance query fail
  // mid-flight. The mutating statement itself (a VALUES insert, no executor
  // program) still commits; the view must keep its prior consistent version
  // with the delta queued, not publish a torn state.
  db_.options().fault_injection.enabled = true;
  db_.options().fault_injection.rate = 1.0;
  db_.options().fault_injection.seed = 3;
  Run("INSERT INTO edges VALUES (9, 9, 9.0)");
  bool pending_seen = false;
  for (const auto& info : db_.ListViews()) {
    if (info.name == "v") pending_seen = info.pending > 0;
  }
  EXPECT_TRUE(pending_seen);

  // With faults gone the next read drains the queued delta and converges.
  db_.options().fault_injection.enabled = false;
  IvmTally tally;
  ExpectViewMatches("v", kAggBody, &tally);
  EXPECT_GE(tally.deltas, 1);
  for (const auto& info : db_.ListViews()) {
    if (info.name == "v") {
      EXPECT_EQ(info.pending, 0u);
    }
  }
}

TEST_F(IvmTest, KnobsGateIncrementalMaintenance) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);

  // A delta wider than ivm_max_delta_rows must force the full-refresh path
  // (and still serve the right rows).
  IvmTally capped;
  db_.options().ivm_max_delta_rows = 1;
  Run("INSERT INTO edges VALUES (10, 1, 1.0), (10, 2, 1.0)", &capped);
  ExpectViewMatches("v", kAggBody);
  EXPECT_GE(capped.fulls, 1);
  EXPECT_EQ(capped.deltas, 0);
  db_.options().ivm_max_delta_rows = 1 << 20;

  // ivm_enabled=false as a per-session override: that session's writes
  // refresh in full, and other sessions' writes stay incremental.
  server::SessionManager mgr(&db_);
  auto off = mgr.CreateSession();
  off->options().ivm_enabled = false;
  Result<QueryResult> r = off->Execute("INSERT INTO edges VALUES (11, 1, 1.0)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r->stats.ivm_full_refreshes, 1);
  EXPECT_EQ(r->stats.ivm_deltas_applied, 0);
  ExpectViewMatches("v", kAggBody);

  IvmTally incremental;
  Run("INSERT INTO edges VALUES (12, 1, 1.0)", &incremental);
  ExpectViewMatches("v", kAggBody);
  EXPECT_GE(incremental.deltas, 1);
  EXPECT_EQ(incremental.fulls, 0);
}

TEST_F(IvmTest, InvalidKnobRejectedPerStatement) {
  server::SessionManager mgr(&db_);
  auto s = mgr.CreateSession();
  s->options().ivm_max_delta_rows = 0;
  auto r = s->Execute("SELECT COUNT(*) FROM edges");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
      << r.status().ToString();
  s->options().ivm_max_delta_rows = 1 << 20;
  auto ok = s->Execute("SELECT COUNT(*) FROM edges");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(IvmTest, DdlRules) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kFilterBody);

  // Name collisions, both directions.
  EXPECT_FALSE(db_.Execute("CREATE TABLE v (x BIGINT)").ok());
  EXPECT_FALSE(
      db_.Execute("CREATE MATERIALIZED VIEW edges AS SELECT src FROM edges")
          .ok());
  // IF NOT EXISTS tolerates the existing view.
  Run(std::string("CREATE MATERIALIZED VIEW IF NOT EXISTS v AS ") +
      kFilterBody);
  // Views on views are rejected (one maintenance hop only).
  EXPECT_FALSE(
      db_.Execute("CREATE MATERIALIZED VIEW vv AS SELECT * FROM v").ok());
  // Reserved name space.
  EXPECT_FALSE(
      db_.Execute("CREATE MATERIALIZED VIEW __ivm_x AS SELECT * FROM edges")
          .ok());
  // A base table with a dependent view cannot be dropped.
  EXPECT_FALSE(db_.Execute("DROP TABLE edges").ok());
  // DROP TABLE on a view is redirected to the right statement.
  EXPECT_FALSE(db_.Execute("DROP TABLE v").ok());
  // Views are transaction-inert: no CREATE/DROP/REFRESH inside BEGIN.
  Run("BEGIN");
  EXPECT_FALSE(
      db_.Execute("CREATE MATERIALIZED VIEW t2 AS SELECT * FROM edges").ok());
  EXPECT_FALSE(db_.Execute("DROP MATERIALIZED VIEW v").ok());
  EXPECT_FALSE(db_.Execute("REFRESH MATERIALIZED VIEW v").ok());
  Run("ROLLBACK");

  EXPECT_FALSE(db_.Execute("DROP MATERIALIZED VIEW missing").ok());
  Run("DROP MATERIALIZED VIEW IF EXISTS missing");
  Run("DROP MATERIALIZED VIEW v");
  EXPECT_FALSE(db_.Execute("SELECT * FROM v").ok());
  // With the last view gone, its base table is droppable again.
  Run("DROP TABLE edges");
}

TEST_F(IvmTest, ListViewsReportsPlanShapes) {
  Run(std::string("CREATE MATERIALIZED VIEW a_lin AS ") + kFilterBody);
  Run(std::string("CREATE MATERIALIZED VIEW b_agg AS ") + kAggBody);
  Run("CREATE MATERIALIZED VIEW c_fall AS SELECT DISTINCT src FROM edges");
  auto views = db_.ListViews();
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].name, "a_lin");
  EXPECT_EQ(views[0].plan, "linear");
  EXPECT_EQ(views[1].name, "b_agg");
  EXPECT_EQ(views[1].plan, "aggregate");
  EXPECT_EQ(views[2].name, "c_fall");
  EXPECT_EQ(views[2].plan, "fallback");
  for (const auto& v : views) EXPECT_FALSE(v.definition.empty());
}

TEST_F(IvmTest, RefreshRebuildsFromScratch) {
  Run(std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);
  IvmTally tally;
  Run("REFRESH MATERIALIZED VIEW v", &tally);
  EXPECT_GE(tally.fulls, 1);
  ExpectViewMatches("v", kAggBody);
}

// --- durability --------------------------------------------------------------

class IvmDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::error_code ec;
    dir_ = (std::filesystem::temp_directory_path() /
            ("dbsp_ivm_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::remove_all(dir_, ec);
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  EngineOptions Options() {
    EngineOptions eo;
    eo.persistence.enabled = true;
    eo.persistence.path = dir_;
    eo.persistence.sync = false;  // format round-trip, not kill testing
    return eo;
  }

  std::string dir_;
};

TEST_F(IvmDurabilityTest, ViewsSurviveReopenAndResumeMaintenance) {
  {
    Database db(Options());
    MustExecute(&db,
                "CREATE TABLE edges (src BIGINT, dst BIGINT, weight DOUBLE)");
    MustExecute(&db,
                "INSERT INTO edges VALUES (1, 2, 0.5), (2, 3, 1.0), "
                "(3, 1, 2.0)");
    MustExecute(&db, std::string("CREATE MATERIALIZED VIEW v AS ") + kAggBody);
    MustExecute(&db, "CREATE MATERIALIZED VIEW dropped AS "
                     "SELECT src FROM edges WHERE src = 1");
    MustExecute(&db, "DROP MATERIALIZED VIEW dropped");
  }
  {
    // Recovery replays the persisted view catalog: the surviving view is
    // re-registered from its definition SQL and serves correct contents;
    // the dropped one must not resurrect. Storage opens lazily on the
    // first statement, so read before inspecting the registry.
    Database db(Options());
    TablePtr view = Unwrap(db.Execute("SELECT * FROM v")).table;
    ExpectSameRows(view, MustQuery(&db, kAggBody));
    auto views = db.ListViews();
    ASSERT_EQ(views.size(), 1u);
    EXPECT_EQ(views[0].name, "v");
    EXPECT_EQ(views[0].plan, "aggregate");

    // Maintenance resumes incrementally on the recovered registry.
    Result<QueryResult> w =
        db.Execute("INSERT INTO edges VALUES (1, 9, 4.0)");
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    EXPECT_GE(w->stats.ivm_deltas_applied, 1);
    ExpectSameRows(Unwrap(db.Execute("SELECT * FROM v")).table,
                   MustQuery(&db, kAggBody));
  }
}

}  // namespace
}  // namespace dbspinner
