// Unit tests for common/: Status, Result, TypeId, Value, string utilities.

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/string_util.h"
#include "common/types.h"
#include "common/value.h"

namespace dbspinner {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r(std::string("abc"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

TEST(TypesTest, ParseTypeNames) {
  EXPECT_EQ(*ParseTypeName("INT"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("integer"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("BIGINT"), TypeId::kInt64);
  EXPECT_EQ(*ParseTypeName("float"), TypeId::kDouble);
  EXPECT_EQ(*ParseTypeName("NUMERIC"), TypeId::kDouble);
  EXPECT_EQ(*ParseTypeName("varchar"), TypeId::kString);
  EXPECT_EQ(*ParseTypeName("BOOLEAN"), TypeId::kBool);
  EXPECT_FALSE(ParseTypeName("BLOB").ok());
}

TEST(TypesTest, Coercion) {
  EXPECT_TRUE(IsImplicitlyCoercible(TypeId::kInt64, TypeId::kDouble));
  EXPECT_FALSE(IsImplicitlyCoercible(TypeId::kDouble, TypeId::kInt64));
  EXPECT_TRUE(IsImplicitlyCoercible(TypeId::kNull, TypeId::kString));
  EXPECT_TRUE(IsImplicitlyCoercible(TypeId::kBool, TypeId::kBool));
}

TEST(TypesTest, CommonNumericType) {
  EXPECT_EQ(*CommonNumericType(TypeId::kInt64, TypeId::kInt64),
            TypeId::kInt64);
  EXPECT_EQ(*CommonNumericType(TypeId::kInt64, TypeId::kDouble),
            TypeId::kDouble);
  EXPECT_EQ(*CommonNumericType(TypeId::kNull, TypeId::kInt64),
            TypeId::kInt64);
  EXPECT_FALSE(CommonNumericType(TypeId::kString, TypeId::kInt64).ok());
}

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, Factories) {
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_FALSE(Value::Bool(false).bool_value());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_TRUE(Value::Int64(1).Equals(Value::Double(1.0)));
  EXPECT_FALSE(Value::Int64(1).Equals(Value::Double(1.5)));
  EXPECT_EQ(Value::Int64(1).Hash(), Value::Double(1.0).Hash());
}

TEST(ValueTest, NullEquality) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null(TypeId::kInt64)));
  EXPECT_FALSE(Value::Null().Equals(Value::Int64(0)));
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(-100)), 0);
  EXPECT_GT(Value::Int64(-100).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.0).Compare(Value::Int64(1)), 0);
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, CastIntToDouble) {
  Value v = *Value::Int64(3).CastTo(TypeId::kDouble);
  EXPECT_EQ(v.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(v.double_value(), 3.0);
}

TEST(ValueTest, CastDoubleToIntRounds) {
  EXPECT_EQ(Value::Double(2.6).CastTo(TypeId::kInt64)->int64_value(), 3);
  EXPECT_EQ(Value::Double(-2.6).CastTo(TypeId::kInt64)->int64_value(), -3);
}

TEST(ValueTest, CastStringToNumber) {
  EXPECT_EQ(Value::String("123").CastTo(TypeId::kInt64)->int64_value(), 123);
  EXPECT_DOUBLE_EQ(Value::String("1.5").CastTo(TypeId::kDouble)->double_value(),
                   1.5);
  EXPECT_FALSE(Value::String("abc").CastTo(TypeId::kInt64).ok());
}

TEST(ValueTest, CastNullStaysNull) {
  Value v = *Value::Null().CastTo(TypeId::kDouble);
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kDouble);
}

TEST(ValueTest, CastToString) {
  EXPECT_EQ(Value::Int64(5).CastTo(TypeId::kString)->string_value(), "5");
  EXPECT_EQ(Value::Bool(true).CastTo(TypeId::kString)->string_value(), "true");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  std::vector<std::string> parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3.0");
  EXPECT_EQ(FormatDouble(0.15), "0.15");
}

}  // namespace
}  // namespace dbspinner
