// Parallel fused pipelines through the work-stealing morsel dispatcher:
// MorselQueue unit behavior, degenerate morsel shapes (empty source,
// 1-row morsels over 10k rows) at several widths, cancellation landing
// mid-steal, and the options-validation gate for session overrides.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "mpp/thread_pool.h"
#include "server/session.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using server::SessionManager;
using testing::ExpectSameRows;
using testing::MustQuery;
using testing::Unwrap;

// --- MorselQueue unit behavior ---------------------------------------------

TEST(MorselQueue, PartitionsIntoContiguousRangesAndBackSteals) {
  // 10 morsels over 4 workers: spans [0,3) [3,6) [6,8) [8,10). A single
  // worker draining the whole queue first sweeps its own span front-to-back
  // (no steals), then back-steals everything else from the fullest victim.
  MorselQueue q(10, 4);
  ASSERT_EQ(q.width(), 4u);

  size_t m = 0;
  bool stolen = false;
  std::multiset<size_t> seen;
  int own = 0;
  int steals = 0;
  while (q.Pop(0, &m, &stolen)) {
    seen.insert(m);
    if (stolen) {
      ++steals;
    } else {
      ++own;
      EXPECT_EQ(m, seen.size() - 1);  // own span arrives in order 0,1,2
    }
  }
  EXPECT_EQ(seen.size(), 10u);  // every morsel claimed exactly once
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 9u);
  EXPECT_EQ(std::set<size_t>(seen.begin(), seen.end()).size(), 10u);
  EXPECT_EQ(own, 3);     // [0,3) was worker 0's span
  EXPECT_EQ(steals, 7);  // the rest came from the other three ranges
  // Drained queue keeps returning false.
  EXPECT_FALSE(q.Pop(0, &m, &stolen));
  EXPECT_FALSE(q.Pop(3, &m, &stolen));
}

TEST(MorselQueue, WidthClampsToMorselCount) {
  MorselQueue q(3, 8);
  EXPECT_EQ(q.width(), 3u);
  size_t m = 0;
  bool stolen = false;
  // Worker slots beyond width wrap onto existing ranges.
  EXPECT_TRUE(q.Pop(5, &m, &stolen));
  EXPECT_EQ(m, 2u);  // 5 % 3 == 2 -> own range is [2,3)
  EXPECT_FALSE(stolen);
}

TEST(MorselQueue, EmptyQueueDrainsImmediately) {
  MorselQueue q(0, 4);
  size_t m = 0;
  bool stolen = false;
  EXPECT_FALSE(q.Pop(0, &m, &stolen));
}

// --- degenerate parallel pipelines through the dispatcher ------------------

void SetParallel(Database* db, int workers, size_t morsel_size) {
  db->options().num_workers = workers;
  db->options().mpp_min_rows_per_task = 1;
  db->options().morsel_size = morsel_size;
  db->options().optimizer.vectorized_exec = true;
}

TEST(PipelineParallel, EmptySourceAtEveryWidth) {
  for (int workers : {1, 2, 8}) {
    Database db;
    SetParallel(&db, workers, 1);
    testing::MustExecute(&db, "CREATE TABLE t (k BIGINT, v DOUBLE)");

    TablePtr filtered = MustQuery(&db, "SELECT k FROM t WHERE k > 10");
    EXPECT_EQ(filtered->num_rows(), 0u) << "workers=" << workers;

    // Zero-group aggregate: grouped -> no rows; global -> one zero row.
    TablePtr grouped =
        MustQuery(&db, "SELECT k, COUNT(*) FROM t GROUP BY k");
    EXPECT_EQ(grouped->num_rows(), 0u) << "workers=" << workers;
    auto global = db.Execute("SELECT COUNT(*), SUM(v) FROM t");
    ASSERT_TRUE(global.ok()) << global.status().ToString();
    ASSERT_EQ(global->table->num_rows(), 1u);
    EXPECT_EQ(global->table->column(0).GetValue(0).int64_value(), 0);
  }
}

TEST(PipelineParallel, SingleRowMorselsAgreeAcrossWidths) {
  // 10k rows at morsel_size=1: the dispatcher sees 10k one-row morsels, so
  // every claim/steal path and every chunk boundary is exercised. All
  // widths must agree with the serial answer exactly (integer aggregates).
  Database serial;
  SetParallel(&serial, 1, 1024);
  testing::MustExecute(&serial, "CREATE TABLE t (k BIGINT, v BIGINT)");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 10000; ++i) {
    insert += ", (" + std::to_string(i % 97) + ", " + std::to_string(i) + ")";
  }
  testing::MustExecute(&serial, insert);
  const std::string agg_q =
      "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k";
  const std::string filter_q = "SELECT k, v FROM t WHERE v % 7 = 3";
  TablePtr agg_expected = MustQuery(&serial, agg_q);
  TablePtr filter_expected = MustQuery(&serial, filter_q);

  int64_t total_stolen = 0;
  for (int workers : {2, 8}) {
    Database db;
    SetParallel(&db, workers, 1);
    testing::MustExecute(&db, "CREATE TABLE t (k BIGINT, v BIGINT)");
    testing::MustExecute(&db, insert);

    auto agg = db.Execute(agg_q);
    ASSERT_TRUE(agg.ok()) << agg.status().ToString();
    EXPECT_TRUE(Table::SameRows(*agg->table, *agg_expected))
        << "workers=" << workers;
    EXPECT_GE(agg->stats.morsels_dispatched, 10000);
    EXPECT_GT(agg->stats.agg_partials_merged, 0);
    total_stolen += agg->stats.morsels_stolen;

    auto filtered = db.Execute(filter_q);
    ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
    EXPECT_TRUE(Table::SameRows(*filtered->table, *filter_expected))
        << "workers=" << workers;
    total_stolen += filtered->stats.morsels_stolen;
  }
  // 10k one-row morsels across unevenly-scheduled workers: some stealing
  // must have happened somewhere in the sweep (the counter is wired up).
  EXPECT_GT(total_stolen, 0);
}

// Cancellation while workers are actively claiming/stealing morsels: the
// token is checked per claimed morsel, so a mid-steal cancel kills the
// query with kCancelled, the pool drains cleanly, and the session still
// serves correct queries afterwards.
TEST(PipelineParallel, CancelLandsMidStealWithoutCorruption) {
  auto db = std::make_unique<Database>();
  graph::GraphSpec spec;
  spec.num_nodes = 200;
  spec.num_edges = 800;
  graph::EdgeList g = graph::Generate(spec);
  ASSERT_TRUE(graph::LoadIntoDatabase(db.get(), g, 0.75, 5).ok());
  SetParallel(db.get(), 4, 1);

  SessionManager mgr(db.get());
  auto s = mgr.CreateSession();
  const std::string long_query = workloads::PRQuery(100000);

  std::atomic<bool> started{false};
  Result<QueryResult> result = Status::Internal("query never ran");
  std::thread runner([&] {
    started = true;
    result = s->Execute(long_query);
  });
  while (!started) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s->CancelCurrent();
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();

  TablePtr expected = MustQuery(db.get(), workloads::PRQuery(3));
  TablePtr after = Unwrap(s->Execute(workloads::PRQuery(3))).table;
  ExpectSameRows(expected, after);
}

// --- session-override validation (engine/options.cc::Validate) -------------

TEST(OptionsValidation, SessionOverridesRejectedPerStatement) {
  Database db;
  testing::MustExecute(&db, "CREATE TABLE t (k BIGINT)");
  testing::MustExecute(&db, "INSERT INTO t VALUES (1), (2), (3)");

  SessionManager mgr(&db);
  auto s = mgr.CreateSession();

  // A session can \set its options to nonsense between statements; the
  // engine must reject the next statement with kInvalidArgument instead of
  // dividing by zero somewhere inside the morsel math.
  struct Case {
    const char* label;
    std::function<void(EngineOptions&)> poke;
  } cases[] = {
      {"morsel_size=0", [](EngineOptions& o) { o.morsel_size = 0; }},
      {"mpp_min_rows_per_task=0",
       [](EngineOptions& o) { o.mpp_min_rows_per_task = 0; }},
      {"num_workers=0", [](EngineOptions& o) { o.num_workers = 0; }},
      {"max_iterations_guard=0",
       [](EngineOptions& o) { o.max_iterations_guard = 0; }},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.label);
    EngineOptions saved = s->options();
    c.poke(s->options());
    auto r = s->Execute("SELECT COUNT(*) FROM t");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument)
        << r.status().ToString();
    s->options() = saved;
  }

  // After restoring sane values the same session works again.
  auto ok = s->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->table->num_rows(), 1u);

  // The database-level API takes the same gate.
  db.options().morsel_size = 0;
  auto bad = db.Execute("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  db.options().morsel_size = 1024;
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
}

}  // namespace
}  // namespace dbspinner
