// Unit and property tests for the morsel/chunk layer of the vectorized
// pipeline executor (exec/data_chunk.h, DESIGN.md §11): selection-vector
// refinement, null propagation through materialization, zero-length
// morsels, batch Gather/AppendRange equivalence against whole-column
// references, and bit-identical reassembly of random morsel splits.

#include "exec/data_chunk.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "storage/column_vector.h"
#include "storage/table.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::LoadTinyGraph;
using testing::MustExecute;
using testing::MustQuery;

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("a", TypeId::kInt64);
  s.AddColumn("b", TypeId::kDouble);
  return s;
}

// n rows of (i, i/2.0) with every third row's b NULL.
TablePtr MakeTable(size_t n) {
  auto t = Table::Make(TwoColSchema());
  for (size_t i = 0; i < n; ++i) {
    t->AppendRow({Value::Int64(static_cast<int64_t>(i)),
                  i % 3 == 0 ? Value::Null(TypeId::kDouble)
                             : Value::Double(static_cast<double>(i) / 2.0)});
  }
  return t;
}

TEST(DataChunkTest, ContiguousWindowBasics) {
  TablePtr t = MakeTable(10);
  DataChunk c(t, 3, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(c.contiguous());
  EXPECT_FALSE(c.empty());
  EXPECT_EQ(c.RowAt(0), 3u);
  EXPECT_EQ(c.RowAt(3), 6u);
}

TEST(DataChunkTest, SetSelectionAndRestrict) {
  TablePtr t = MakeTable(10);
  DataChunk c(t, 0, 10);
  c.SetSelection({1, 4, 7, 9});
  EXPECT_FALSE(c.contiguous());
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.RowAt(2), 7u);
  // Restrict takes positions into the current view, not base row ids.
  c.Restrict({0, 2});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.RowAt(0), 1u);
  EXPECT_EQ(c.RowAt(1), 7u);
}

TEST(DataChunkTest, RestrictOnContiguousWindowUsesPositions) {
  TablePtr t = MakeTable(10);
  DataChunk c(t, 5, 5);  // rows 5..9
  c.Restrict({1, 3});
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.RowAt(0), 6u);
  EXPECT_EQ(c.RowAt(1), 8u);
}

TEST(DataChunkTest, MaterializePropagatesNulls) {
  TablePtr t = MakeTable(9);
  DataChunk c(t, 0, 9);
  c.SetSelection({0, 3, 4, 6});
  TablePtr m = c.Materialize();
  ASSERT_EQ(m->num_rows(), 4u);
  // Rows 0, 3, 6 carry NULL b (i % 3 == 0); row 4 does not.
  EXPECT_TRUE(m->column(1).IsNull(0));
  EXPECT_TRUE(m->column(1).IsNull(1));
  EXPECT_FALSE(m->column(1).IsNull(2));
  EXPECT_TRUE(m->column(1).IsNull(3));
  EXPECT_EQ(m->column(0).Int64At(2), 4);
  EXPECT_DOUBLE_EQ(m->column(1).DoubleAt(2), 2.0);
}

TEST(DataChunkTest, EmptySelectionMaterializesEmptyTypedColumns) {
  TablePtr t = MakeTable(5);
  DataChunk c(t, 0, 5);
  c.SetSelection({});
  EXPECT_TRUE(c.empty());
  TablePtr m = c.Materialize();
  ASSERT_EQ(m->num_rows(), 0u);
  ASSERT_EQ(m->num_columns(), 2u);
  EXPECT_EQ(m->column(0).type(), TypeId::kInt64);
  EXPECT_EQ(m->column(1).type(), TypeId::kDouble);
}

TEST(DataChunkTest, SplitIntoMorselsCoversTableExactlyOnce) {
  TablePtr t = MakeTable(10);
  for (size_t ms : {1u, 3u, 10u, 64u}) {
    std::vector<DataChunk> morsels = SplitIntoMorsels(t, ms);
    size_t total = 0;
    uint32_t expect_next = 0;
    for (const DataChunk& m : morsels) {
      EXPECT_TRUE(m.contiguous());
      EXPECT_EQ(m.begin(), expect_next);
      EXPECT_LE(m.size(), ms);
      expect_next += static_cast<uint32_t>(m.size());
      total += m.size();
    }
    EXPECT_EQ(total, 10u) << "morsel_size=" << ms;
  }
}

TEST(DataChunkTest, SplitOfEmptyTableYieldsNoWork) {
  TablePtr t = MakeTable(0);
  std::vector<DataChunk> morsels = SplitIntoMorsels(t, 4);
  size_t total = 0;
  for (const DataChunk& m : morsels) total += m.size();
  EXPECT_EQ(total, 0u);
}

TEST(DataChunkTest, MorselSizeZeroIsClampedNotInfinite) {
  // A zero morsel size must not hang or divide by zero.
  TablePtr t = MakeTable(5);
  std::vector<DataChunk> morsels = SplitIntoMorsels(t, 0);
  size_t total = 0;
  for (const DataChunk& m : morsels) total += m.size();
  EXPECT_EQ(total, 5u);
}

// ---- ColumnVector batch-path equivalence -----------------------------------

TEST(ColumnVectorBatchTest, GatherOfEmptySelectionIsEmptyAndTyped) {
  ColumnVector col(TypeId::kString);
  col.AppendString("x");
  col.AppendNull();
  ColumnVectorPtr out = col.Gather({});
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 0u);
  EXPECT_EQ(out->type(), TypeId::kString);
}

TEST(ColumnVectorBatchTest, AppendRangeMatchesPerRowAppend) {
  ColumnVector src(TypeId::kInt64);
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 0) {
      src.AppendNull();
    } else {
      src.AppendInt64(i * 11);
    }
  }
  ColumnVector batch(TypeId::kInt64);
  batch.AppendRange(src, 4, 9);
  ColumnVector loop(TypeId::kInt64);
  for (size_t i = 4; i < 13; ++i) loop.AppendFrom(src, i);
  ASSERT_EQ(batch.size(), loop.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.IsNull(i), loop.IsNull(i)) << i;
    if (!batch.IsNull(i)) EXPECT_EQ(batch.Int64At(i), loop.Int64At(i)) << i;
  }
}

TEST(ColumnVectorBatchTest, GatherMatchesWholeColumnReference) {
  for (TypeId type : {TypeId::kInt64, TypeId::kDouble, TypeId::kString}) {
    ColumnVector src(type);
    for (int i = 0; i < 50; ++i) {
      if (i % 7 == 0) {
        src.AppendNull();
      } else if (type == TypeId::kInt64) {
        src.AppendInt64(i);
      } else if (type == TypeId::kDouble) {
        src.AppendDouble(i * 0.5);
      } else {
        src.AppendString("s" + std::to_string(i));
      }
    }
    std::vector<uint32_t> sel = {49, 0, 7, 7, 13, 21, 2};
    ColumnVectorPtr got = src.Gather(sel);
    ASSERT_EQ(got->size(), sel.size());
    for (size_t i = 0; i < sel.size(); ++i) {
      EXPECT_EQ(got->IsNull(i), src.IsNull(sel[i]));
      if (!got->IsNull(i)) {
        EXPECT_TRUE(got->EqualsAt(i, src, sel[i]))
            << "type " << static_cast<int>(type) << " pos " << i;
      }
    }
  }
}

// ---- Property: random splits reassemble bit-identically --------------------

TEST(DataChunkPropertyTest, RandomMorselSplitsReassembleIdentically) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 10; ++round) {
    size_t n = 1 + rng() % 2000;
    TablePtr t = MakeTable(n);
    TablePtr reference = DataChunk(t, 0, n).Materialize();
    for (size_t ms : {size_t{1}, size_t{7}, size_t{1024}, n}) {
      std::vector<DataChunk> morsels = SplitIntoMorsels(t, ms);
      // Reassemble through the sink path (AppendTo accumulators).
      std::vector<ColumnVectorPtr> acc;
      for (size_t c = 0; c < t->num_columns(); ++c) {
        acc.push_back(
            std::make_shared<ColumnVector>(t->schema().column(c).type));
      }
      for (const DataChunk& m : morsels) m.AppendTo(&acc);
      TablePtr rebuilt = Table::FromColumns(t->schema(), std::move(acc));
      ASSERT_EQ(rebuilt->num_rows(), n);
      EXPECT_TRUE(Table::SameRows(*reference, *rebuilt))
          << "n=" << n << " morsel_size=" << ms;
      // Order must also match exactly, not just the multiset.
      for (size_t r = 0; r < n; ++r) {
        ASSERT_EQ(rebuilt->column(0).Int64At(r),
                  static_cast<int64_t>(r))
            << "n=" << n << " morsel_size=" << ms;
      }
    }
  }
}

// ---- End-to-end: groups straddling chunk boundaries ------------------------

// With morsel_size 4 a run of equal group keys straddles every chunk
// boundary; the aggregate (a pipeline breaker) must still see the full
// groups regardless of how its input was morselized.
TEST(DataChunkEndToEndTest, GroupsStraddlingChunkBoundaries) {
  for (size_t morsel : {size_t{1}, size_t{4}, size_t{1024}}) {
    Database db;
    db.options().morsel_size = morsel;
    MustExecute(&db, "CREATE TABLE g (k BIGINT, v BIGINT)");
    // 30 rows, keys 0,0,0,1,1,1,2,... — groups of 3 vs morsels of 4.
    std::string insert = "INSERT INTO g VALUES ";
    for (int i = 0; i < 30; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(i / 3) + ", " + std::to_string(i) + ")";
    }
    MustExecute(&db, insert);
    TablePtr got = MustQuery(
        &db, "SELECT k, SUM(v) FROM g WHERE v >= 3 GROUP BY k");

    Database legacy;
    legacy.options().optimizer.vectorized_exec = false;
    MustExecute(&legacy, "CREATE TABLE g (k BIGINT, v BIGINT)");
    MustExecute(&legacy, insert);
    TablePtr want = MustQuery(
        &legacy, "SELECT k, SUM(v) FROM g WHERE v >= 3 GROUP BY k");
    ExpectSameRows(want, got);
  }
}

// The vectorized and legacy executors must agree on a join+filter+project
// query over the shared tiny graph at every morsel size, including 1.
TEST(DataChunkEndToEndTest, MorselSizeSweepMatchesLegacy) {
  auto run = [](bool vectorized, size_t morsel) {
    Database db;
    db.options().optimizer.vectorized_exec = vectorized;
    db.options().morsel_size = morsel;
    LoadTinyGraph(&db);
    return MustQuery(&db,
                     "SELECT e1.src, e2.dst, e1.weight * e2.weight "
                     "FROM edges AS e1 JOIN edges AS e2 ON e1.dst = e2.src "
                     "WHERE e1.weight >= 0.5");
  };
  TablePtr want = run(false, 1024);
  for (size_t morsel : {size_t{1}, size_t{2}, size_t{1024}}) {
    ExpectSameRows(want, run(true, morsel));
  }
}

}  // namespace
}  // namespace dbspinner
