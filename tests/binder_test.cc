// Binder tests: name resolution, scoping, aggregate extraction, typing.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "parser/parser.h"
#include "test_util.h"

namespace dbspinner {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema edges;
    edges.AddColumn("src", TypeId::kInt64);
    edges.AddColumn("dst", TypeId::kInt64);
    edges.AddColumn("weight", TypeId::kDouble);
    ASSERT_TRUE(catalog_.CreateTable("edges", Table::Make(edges)).ok());
    Schema vs;
    vs.AddColumn("node", TypeId::kInt64);
    vs.AddColumn("status", TypeId::kInt64);
    ASSERT_TRUE(catalog_.CreateTable("vertexstatus", Table::Make(vs)).ok());
  }

  LogicalOpPtr Bind(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_);
    auto plan = binder.BindQuery(*(*stmt)->query);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\nSQL: " << sql;
    return plan.ok() ? std::move(plan).value() : nullptr;
  }

  Status BindError(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    if (!stmt.ok()) return stmt.status();
    Binder binder(&catalog_);
    auto plan = binder.BindQuery(*(*stmt)->query);
    EXPECT_FALSE(plan.ok()) << "expected bind error for: " << sql;
    return plan.ok() ? Status::OK() : plan.status();
  }

  Catalog catalog_;
};

TEST_F(BinderTest, SimpleScanProject) {
  auto plan = Bind("SELECT src, weight FROM edges");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind, LogicalOpKind::kProject);
  EXPECT_EQ(plan->output_schema.column(0).name, "src");
  EXPECT_EQ(plan->output_schema.column(1).type, TypeId::kDouble);
  EXPECT_EQ(plan->children[0]->kind, LogicalOpKind::kScan);
}

TEST_F(BinderTest, UnknownColumnFails) {
  Status s = BindError("SELECT nope FROM edges");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnknownTableFails) {
  Status s = BindError("SELECT 1 FROM nope");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(BinderTest, QualifierResolution) {
  auto plan = Bind(
      "SELECT edges.src, e2.dst FROM edges JOIN edges AS e2 "
      "ON edges.src = e2.dst");
  ASSERT_NE(plan, nullptr);
  // First projection comes from the unaliased scan (ordinal 0), second from
  // the aliased one (ordinal 3 + 1 = 4).
  EXPECT_EQ(plan->projections[0]->column_index, 0u);
  EXPECT_EQ(plan->projections[1]->column_index, 4u);
}

TEST_F(BinderTest, AliasShadowsTableName) {
  // `edges` as a qualifier must not match the aliased second instance.
  auto plan = Bind(
      "SELECT edges.src FROM edges JOIN edges AS e2 ON edges.src = e2.src");
  EXPECT_EQ(plan->projections[0]->column_index, 0u);
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  Status s =
      BindError("SELECT src FROM edges JOIN edges AS e2 ON edges.src = e2.src");
  EXPECT_NE(s.message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, TypeInference) {
  auto plan = Bind("SELECT src + 1, src + weight, src / 2, src / 2.0 "
                   "FROM edges");
  EXPECT_EQ(plan->projections[0]->type, TypeId::kInt64);
  EXPECT_EQ(plan->projections[1]->type, TypeId::kDouble);
  EXPECT_EQ(plan->projections[2]->type, TypeId::kInt64);
  EXPECT_EQ(plan->projections[3]->type, TypeId::kDouble);
}

TEST_F(BinderTest, ComparingStringToIntFails) {
  Status s = BindError("SELECT src FROM edges WHERE src = 'abc'");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(BinderTest, AggregateExtraction) {
  auto plan = Bind(
      "SELECT src, 0.85 * SUM(weight), COUNT(*) FROM edges GROUP BY src");
  // Project over Aggregate over Scan.
  ASSERT_EQ(plan->kind, LogicalOpKind::kProject);
  const LogicalOp& agg = *plan->children[0];
  ASSERT_EQ(agg.kind, LogicalOpKind::kAggregate);
  EXPECT_EQ(agg.group_exprs.size(), 1u);
  ASSERT_EQ(agg.aggregates.size(), 2u);
  EXPECT_EQ(agg.aggregates[0].kind, AggKind::kSum);
  EXPECT_EQ(agg.aggregates[1].kind, AggKind::kCountStar);
  // Projection 1 multiplies a reference to aggregate output column 1.
  EXPECT_EQ(plan->projections[1]->kind, BoundExprKind::kBinaryOp);
}

TEST_F(BinderTest, GroupByExpressionMatch) {
  auto plan = Bind(
      "SELECT src % 10, COUNT(*) FROM edges GROUP BY src % 10");
  ASSERT_EQ(plan->kind, LogicalOpKind::kProject);
  EXPECT_EQ(plan->projections[0]->kind, BoundExprKind::kColumnRef);
  EXPECT_EQ(plan->projections[0]->column_index, 0u);
}

TEST_F(BinderTest, DuplicateAggregatesShareOneSpec) {
  auto plan = Bind("SELECT SUM(weight), SUM(weight) + 1 FROM edges");
  const LogicalOp& agg = *plan->children[0];
  EXPECT_EQ(agg.aggregates.size(), 1u);
}

TEST_F(BinderTest, NestedAggregateArgsBindOverInput) {
  auto plan = Bind(
      "SELECT CEILING(COUNT(dst) * (1.0 - (src % 10) / 100.0)) "
      "FROM edges GROUP BY src");
  ASSERT_EQ(plan->kind, LogicalOpKind::kProject);
  EXPECT_EQ(plan->projections[0]->kind, BoundExprKind::kFunctionCall);
}

TEST_F(BinderTest, HavingMustBeBoolean) {
  Status s = BindError("SELECT src FROM edges GROUP BY src HAVING SUM(weight)");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST_F(BinderTest, AggregateInWhereFails) {
  Status s = BindError("SELECT src FROM edges WHERE SUM(weight) > 1");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, OrderByAliasResolvesAgainstOutput) {
  auto plan = Bind("SELECT src AS s FROM edges ORDER BY s DESC");
  ASSERT_EQ(plan->kind, LogicalOpKind::kSort);
  EXPECT_TRUE(plan->sort_keys[0].descending);
  EXPECT_EQ(plan->sort_keys[0].expr->column_index, 0u);
}

TEST_F(BinderTest, UnionCompatibilityChecked) {
  Status s = BindError("SELECT src FROM edges UNION SELECT 'x'");
  EXPECT_EQ(s.code(), StatusCode::kBindError);
}

TEST_F(BinderTest, UnionWidensSchema) {
  auto plan = Bind("SELECT src FROM edges UNION ALL SELECT weight FROM edges");
  EXPECT_EQ(plan->output_schema.column(0).type, TypeId::kDouble);
}

TEST_F(BinderTest, LeftJoinWithoutOnFails) {
  auto stmt = ParseStatement("SELECT 1 FROM edges LEFT JOIN vertexstatus");
  // The parser requires ON after LEFT JOIN.
  EXPECT_FALSE(stmt.ok());
}

TEST_F(BinderTest, SubqueryScopes) {
  auto plan = Bind(
      "SELECT t.s FROM (SELECT src AS s FROM edges) t WHERE t.s > 0");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->output_schema.column(0).name, "s");
}

TEST_F(BinderTest, CteShadowsCatalogTable) {
  Binder binder(&catalog_);
  Schema s;
  s.AddColumn("x", TypeId::kInt64);
  binder.AddCte("edges", CteBinding{"edges_result", s});
  auto stmt = ParseStatement("SELECT x FROM edges");
  ASSERT_TRUE(stmt.ok());
  auto plan = binder.BindQuery(*(*stmt)->query);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const LogicalOp* scan = (*plan)->children[0].get();
  EXPECT_EQ(scan->scan_source, ScanSource::kResult);
  EXPECT_EQ(scan->scan_name, "edges_result");
}

TEST_F(BinderTest, BindExprOverSchema) {
  Binder binder(&catalog_);
  Schema s;
  s.AddColumn("n", TypeId::kInt64);
  auto expr = ParseExpression("n * 2 > 10");
  ASSERT_TRUE(expr.ok());
  auto bound = binder.BindExprOverSchema(**expr, s, "r");
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ((*bound)->type, TypeId::kBool);
}

TEST_F(BinderTest, ParseExprEqualsDistinguishesQualifiers) {
  auto a = *ParseExpression("t.x + 1");
  auto b = *ParseExpression("t.x + 1");
  auto c = *ParseExpression("x + 1");
  EXPECT_TRUE(ParseExprEquals(*a, *b));
  EXPECT_FALSE(ParseExprEquals(*a, *c));
}

TEST_F(BinderTest, MakeCastProjectIsNoOpForSameSchema) {
  auto plan = Bind("SELECT src FROM edges");
  Schema same = plan->output_schema;
  LogicalOp* before = plan.get();
  plan = MakeCastProject(std::move(plan), same);
  EXPECT_EQ(plan.get(), before);
}

}  // namespace
}  // namespace dbspinner
