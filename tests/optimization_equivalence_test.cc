// Property suite: every optimization is result-preserving. Each workload
// query must produce identical tables with any combination of optimizations
// disabled, across graph shapes, seeds and iteration counts (TEST_P sweeps).

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "test_util.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustQuery;

struct Config {
  graph::GraphKind kind;
  int64_t nodes;
  int64_t edges;
  uint64_t seed;
  int iterations;
};

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string kind = c.kind == graph::GraphKind::kPreferentialAttachment
                         ? "pa"
                         : (c.kind == graph::GraphKind::kUniform ? "uni"
                                                                 : "grid");
  return kind + "_n" + std::to_string(c.nodes) + "_e" +
         std::to_string(c.edges) + "_s" + std::to_string(c.seed) + "_i" +
         std::to_string(c.iterations);
}

class EquivalenceTest : public ::testing::TestWithParam<Config> {
 protected:
  void SetUp() override {
    const Config& c = GetParam();
    graph::GraphSpec spec;
    spec.kind = c.kind;
    spec.num_nodes = c.nodes;
    spec.num_edges = c.edges;
    spec.seed = c.seed;
    graph_ = graph::Generate(spec);
  }

  // Heap-allocated: Database is pinned in memory (sessions and pool point
  // into it), so it is neither copyable nor movable.
  std::unique_ptr<Database> MakeDb(EngineOptions options) {
    auto db = std::make_unique<Database>(options);
    EXPECT_TRUE(graph::LoadIntoDatabase(db.get(), graph_, 0.75, 5).ok());
    return db;
  }

  // Runs `sql` with all optimizations on and with `tweak` applied, and
  // asserts identical results.
  void CheckEquivalent(const std::string& sql,
                       const std::function<void(EngineOptions*)>& tweak) {
    EngineOptions base;
    std::unique_ptr<Database> db_on = MakeDb(base);
    EngineOptions off = base;
    tweak(&off);
    std::unique_ptr<Database> db_off = MakeDb(off);
    TablePtr expected = MustQuery(db_on.get(), sql);
    TablePtr actual = MustQuery(db_off.get(), sql);
    ExpectSameRows(expected, actual, 1e-9);
  }

  graph::EdgeList graph_;
};

TEST_P(EquivalenceTest, RenameOptimizationPreservesPR) {
  CheckEquivalent(workloads::PRQuery(GetParam().iterations),
                  [](EngineOptions* o) {
                    o->optimizer.enable_rename_optimization = false;
                  });
}

TEST_P(EquivalenceTest, RenameOptimizationPreservesFF) {
  CheckEquivalent(workloads::FFQuery(GetParam().iterations, 10, 1000000),
                  [](EngineOptions* o) {
                    o->optimizer.enable_rename_optimization = false;
                  });
}

TEST_P(EquivalenceTest, CommonResultPreservesPRVS) {
  CheckEquivalent(workloads::PRVSQuery(GetParam().iterations),
                  [](EngineOptions* o) {
                    o->optimizer.enable_common_result = false;
                  });
}

TEST_P(EquivalenceTest, CommonResultPreservesSSSPVS) {
  CheckEquivalent(workloads::SSSPVSQuery(GetParam().iterations, 1, 5),
                  [](EngineOptions* o) {
                    o->optimizer.enable_common_result = false;
                  });
}

TEST_P(EquivalenceTest, CtePushdownPreservesFF) {
  CheckEquivalent(workloads::FFQuery(GetParam().iterations, 10, 1000000),
                  [](EngineOptions* o) {
                    o->optimizer.enable_cte_predicate_pushdown = false;
                  });
}

TEST_P(EquivalenceTest, LocalPushdownPreservesSSSP) {
  CheckEquivalent(workloads::SSSPQuery(GetParam().iterations, 1, 5),
                  [](EngineOptions* o) {
                    o->optimizer.enable_predicate_pushdown = false;
                  });
}

TEST_P(EquivalenceTest, JoinSimplificationPreservesPRVS) {
  CheckEquivalent(workloads::PRVSQuery(GetParam().iterations),
                  [](EngineOptions* o) {
                    o->optimizer.enable_join_simplification = false;
                    // Without outer->inner conversion the common-result rule
                    // cannot fire either; disable independently to isolate.
                  });
}

TEST_P(EquivalenceTest, EverythingOffStillCorrect) {
  CheckEquivalent(workloads::PRVSQuery(GetParam().iterations),
                  [](EngineOptions* o) {
                    o->optimizer = OptimizerOptions{};
                    o->optimizer.enable_constant_folding = false;
                    o->optimizer.enable_join_simplification = false;
                    o->optimizer.enable_predicate_pushdown = false;
                    o->optimizer.enable_cte_predicate_pushdown = false;
                    o->optimizer.enable_common_result = false;
                    o->optimizer.enable_rename_optimization = false;
                  });
}

TEST_P(EquivalenceTest, MppWorkersPreserveResults) {
  CheckEquivalent(workloads::PRVSQuery(GetParam().iterations),
                  [](EngineOptions* o) {
                    o->num_workers = 4;
                    o->mpp_min_rows_per_task = 1;
                  });
}

TEST_P(EquivalenceTest, MppWorkersPreserveSSSP) {
  CheckEquivalent(workloads::SSSPQuery(GetParam().iterations, 1, 5),
                  [](EngineOptions* o) {
                    o->num_workers = 3;
                    o->mpp_min_rows_per_task = 1;
                  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, EquivalenceTest,
    ::testing::Values(
        Config{graph::GraphKind::kPreferentialAttachment, 100, 400, 1, 3},
        Config{graph::GraphKind::kPreferentialAttachment, 150, 600, 2, 5},
        Config{graph::GraphKind::kUniform, 120, 500, 3, 4},
        Config{graph::GraphKind::kUniform, 80, 240, 4, 6},
        Config{graph::GraphKind::kGrid, 64, 0, 5, 5}),
    ConfigName);

}  // namespace
}  // namespace dbspinner
