// Unit tests for the differential fuzzing harness itself: generator
// determinism, the oracle matrix catching an injected engine fault, the
// minimizer shrinking a failing case, row-set diffing, and the
// OptimizerToggles registry the whole matrix is built from.

#include <gtest/gtest.h>

#include "engine/options.h"
#include "testing/differential.h"
#include "testing/minimizer.h"
#include "testing/query_generator.h"

namespace dbspinner {
namespace {

// A hand-built rename-path case: pass-through chain body with a counted
// UNTIL, small deterministic grid. Small enough to differential-run in
// milliseconds, big enough that dropping a row is visible.
fuzz::FuzzCase RenamePathCase() {
  fuzz::FuzzCase c;
  c.case_seed = 999;
  c.graph.kind = graph::GraphKind::kGrid;
  c.graph.num_nodes = 16;
  c.graph.num_edges = 0;  // grid ignores the edge count
  c.query.family = fuzz::QueryFamily::kIterativeChain;
  c.query.expr_seed = 1;
  c.query.iterations = 2;
  c.query.until = fuzz::UntilKind::kIterations;
  return c;
}

TEST(QueryGeneratorTest, SameSeedSameStream) {
  fuzz::QueryGenerator a(42);
  fuzz::QueryGenerator b(42);
  for (int i = 0; i < 25; ++i) {
    fuzz::FuzzCase ca = a.NextCase();
    fuzz::FuzzCase cb = b.NextCase();
    EXPECT_EQ(ca.Label(), cb.Label()) << "case " << i;
    EXPECT_EQ(fuzz::RenderQuery(ca.query), fuzz::RenderQuery(cb.query))
        << "case " << i;
  }
}

TEST(QueryGeneratorTest, DifferentSeedsDiverge) {
  fuzz::QueryGenerator a(1);
  fuzz::QueryGenerator b(2);
  bool diverged = false;
  for (int i = 0; i < 10 && !diverged; ++i) {
    diverged = fuzz::RenderQuery(a.NextCase().query) !=
               fuzz::RenderQuery(b.NextCase().query);
  }
  EXPECT_TRUE(diverged);
}

TEST(QueryGeneratorTest, RenderedSqlParsesAndRuns) {
  // Every generated case must at least not crash the engine; run a short
  // prefix of the stream through the baseline database only (the full
  // matrix is the fuzz_sql smoke test's job).
  fuzz::QueryGenerator gen(7);
  for (int i = 0; i < 5; ++i) {
    fuzz::FuzzCase c = gen.NextCase();
    Database db;
    ASSERT_TRUE(fuzz::LoadCaseData(&db, c).ok()) << c.Label();
    auto result = db.Query(fuzz::RenderQuery(c.query));
    if (!result.ok()) {
      EXPECT_NE(result.status().code(), StatusCode::kInternal)
          << c.Label() << "\n" << result.status().ToString();
    }
  }
}

TEST(DifferentialTest, CleanEngineAgreesOnRenamePathCase) {
  fuzz::DiffReport report = fuzz::RunDifferential(RenamePathCase());
  EXPECT_TRUE(report.ok) << report.Describe(RenamePathCase());
  // Rename-path + counted UNTIL means the procedure oracle participated.
  bool saw_procedure = false;
  for (const auto& o : report.outcomes) {
    if (o.name == "procedure") saw_procedure = true;
  }
  EXPECT_TRUE(saw_procedure);
}

TEST(DifferentialTest, InjectedRenameFaultIsCaught) {
  fuzz::DifferentialOptions opts;
  opts.break_rename = true;
  fuzz::DiffReport report = fuzz::RunDifferential(RenamePathCase(), opts);
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.failure.empty());
}

TEST(MinimizerTest, ShrinksInjectedFaultAndEmitsRepro) {
  fuzz::DifferentialOptions opts;
  opts.break_rename = true;
  fuzz::FuzzCase big = RenamePathCase();
  big.graph.num_nodes = 64;  // give the minimizer something to shrink
  fuzz::MinimizeResult min = fuzz::Minimize(big, opts);
  EXPECT_FALSE(min.report.ok);  // still failing after shrinking
  EXPECT_LE(min.minimized.graph.num_nodes, big.graph.num_nodes);
  EXPECT_GT(min.candidates_tried, 0);

  std::string repro = fuzz::EmitGtestRepro(min.minimized, min.report);
  EXPECT_NE(repro.find("TEST(FuzzRegression"), std::string::npos) << repro;
  EXPECT_NE(repro.find("RunDifferential"), std::string::npos) << repro;
}

TEST(DiffRowSetsTest, OrderInsensitiveMultisetCompare) {
  std::vector<std::vector<Value>> a = {{Value::Int64(1), Value::Double(2.0)},
                                       {Value::Int64(3), Value::Double(4.0)}};
  std::vector<std::vector<Value>> b = {{Value::Int64(3), Value::Double(4.0)},
                                       {Value::Int64(1), Value::Double(2.0)}};
  EXPECT_EQ(fuzz::DiffRowSets(a, b, 1e-6), "");
}

TEST(DiffRowSetsTest, EpsToleratesFloatNoiseButNotRealDrift) {
  std::vector<std::vector<Value>> a = {{Value::Double(1.0)}};
  std::vector<std::vector<Value>> near = {{Value::Double(1.0 + 1e-9)}};
  std::vector<std::vector<Value>> far = {{Value::Double(1.5)}};
  EXPECT_EQ(fuzz::DiffRowSets(a, near, 1e-6), "");
  EXPECT_NE(fuzz::DiffRowSets(a, far, 1e-6), "");
}

TEST(DiffRowSetsTest, ReportsCardinalityAndNullMismatches) {
  std::vector<std::vector<Value>> two = {{Value::Int64(1)}, {Value::Int64(2)}};
  std::vector<std::vector<Value>> one = {{Value::Int64(1)}};
  std::vector<std::vector<Value>> null_row = {{Value::Null()},
                                              {Value::Int64(2)}};
  EXPECT_NE(fuzz::DiffRowSets(two, one, 1e-6), "");
  EXPECT_NE(fuzz::DiffRowSets(two, null_row, 1e-6), "");
}

TEST(OptimizerTogglesTest, RegistryCoversEveryRule) {
  const auto& all = OptimizerToggles::All();
  EXPECT_EQ(all.size(), 9u);

  // Every toggle flips exactly the field it names.
  for (const auto& t : all) {
    OptimizerOptions opts = OptimizerToggles::AllSetTo(true);
    ASSERT_TRUE(OptimizerToggles::Set(&opts, t.name, false));
    EXPECT_FALSE(opts.*(t.member)) << t.name;
    // All other toggles stayed on.
    for (const auto& other : all) {
      if (other.name != std::string(t.name)) {
        EXPECT_TRUE(opts.*(other.member)) << other.name;
      }
    }
  }
}

TEST(OptimizerTogglesTest, UnknownNameIsRejected) {
  OptimizerOptions opts;
  EXPECT_FALSE(OptimizerToggles::Set(&opts, "no-such-rule", false));
}

}  // namespace
}  // namespace dbspinner
