// Loop-termination edge cases: 0-iteration programs (the termination
// condition already holds before the first Ri), Delta termination when the
// first iteration changes nothing, and duplicate-key detection on the merge
// path under MPP partitioning. Companion tests to the differential fuzzer's
// oracle matrix — each of these is a boundary the fuzzer generates.

#include <gtest/gtest.h>

#include "test_util.h"

namespace dbspinner {
namespace {

using testing::MustExecute;
using testing::MustQuery;

void LoadBase(Database* db) {
  MustExecute(db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(db, "INSERT INTO base VALUES (1, 10), (2, 20), (3, 30)");
}

// --- 0-iteration programs ----------------------------------------------------

TEST(LoopTerminationTest, ZeroIterationsReturnsR0Unchanged) {
  Database db;
  LoadBase(&db);
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it UNTIL 0 ITERATIONS) "
                     "SELECT id, v FROM it ORDER BY id");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 10);
  EXPECT_EQ(t->GetValue(2, 1).int64_value(), 30);
}

TEST(LoopTerminationTest, ZeroIterationsSkipsMergePathBody) {
  Database db;
  LoadBase(&db);
  // Merge path (Ri has WHERE): the body must not run even once.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it WHERE id <= 2 "
                     "UNTIL 0 ITERATIONS) "
                     "SELECT SUM(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 60);
}

TEST(LoopTerminationTest, ZeroUpdatesReturnsR0Unchanged) {
  Database db;
  LoadBase(&db);
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it UNTIL 0 UPDATES) "
                     "SELECT MAX(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 30);
}

TEST(LoopTerminationTest, AnyConditionTrueOnR0SkipsBody) {
  Database db;
  // UNTIL ANY(n >= 0) already holds over R0, so the counter never increments.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL ANY(n >= 0)) "
                     "SELECT n FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 0);
}

TEST(LoopTerminationTest, AllConditionTrueOnR0SkipsBody) {
  Database db;
  LoadBase(&db);
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + 1 FROM it UNTIL ALL(v >= 10)) "
                     "SELECT MAX(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 30);
}

TEST(LoopTerminationTest, AnyConditionFalseOnR0StillIterates) {
  Database db;
  // Sanity inverse: a condition not yet true on R0 must enter the loop.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL ANY(n >= 2)) "
                     "SELECT n FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 2);
}

TEST(LoopTerminationTest, EmptyBaseRecursiveCteSkipsRecursion) {
  Database db;
  MustExecute(&db, "CREATE TABLE empty_edges (src BIGINT, dst BIGINT)");
  // The recursive arm watches an empty working set: zero recursive rounds.
  auto t = MustQuery(&db,
                     "WITH RECURSIVE reach (n) AS ("
                     "  SELECT src FROM empty_edges"
                     " UNION "
                     "  SELECT e.dst FROM reach JOIN empty_edges AS e "
                     "  ON reach.n = e.src) "
                     "SELECT COUNT(*) FROM reach");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 0);
}

// --- Delta termination -------------------------------------------------------

TEST(LoopTerminationTest, DeltaTerminationStopsWhenFirstIterationIsNoop) {
  Database db;
  LoadBase(&db);
  // The body reproduces the table verbatim, so iteration 1 changes 0 rows
  // and DELTA < 1 stops immediately (Delta needs two versions to compare,
  // so exactly one body run happens).
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v FROM it UNTIL DELTA < 1) "
                     "SELECT id, v FROM it ORDER BY id");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 10);
}

TEST(LoopTerminationTest, DeltaTerminationConvergesOnceValuesSettle) {
  Database db;
  LoadBase(&db);
  // LEAST(v + 10, 50): rows settle at 50; once fewer than 1 row changes the
  // loop stops. 30 -> 40 -> 50 takes 2 changing iterations, then one no-op.
  auto t = MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, LEAST(v + 10, 50) FROM it "
                     "UNTIL DELTA < 1) "
                     "SELECT MIN(v), MAX(v) FROM it");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 50);
  EXPECT_EQ(t->GetValue(0, 1).int64_value(), 50);
}

TEST(LoopTerminationTest, DeltaAlwaysRunsTheFirstIteration) {
  Database db;
  // Even a huge delta bound runs iteration 1 before comparing versions:
  // DELTA < 1000000 stops right after it (1 row changed < bound).
  auto t = MustQuery(&db,
                     "WITH ITERATIVE c (n) AS (SELECT 0 ITERATE "
                     "SELECT n + 1 FROM c UNTIL DELTA < 1000000) "
                     "SELECT n FROM c");
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
}

// --- merge-path duplicate keys under MPP ------------------------------------

class MergeDuplicateKeyMppTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeDuplicateKeyMppTest, DuplicateWorkingKeyDetectedAtEveryWidth) {
  EngineOptions opts;
  opts.num_workers = GetParam();
  opts.mpp_min_rows_per_task = 1;  // force partitioning even on tiny inputs
  Database db(opts);
  MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
  MustExecute(&db,
              "INSERT INTO base VALUES (1, 1), (2, 2), (3, 3), (4, 4), "
              "(5, 5), (6, 6), (7, 7), (8, 8)");
  // Ri maps every row to key 1: the merge must reject the ambiguous update
  // identically whether the update ran serially or partitioned.
  auto result = db.Query(
      "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base ITERATE "
      "SELECT 1, v + 1 FROM it WHERE v < 100 UNTIL 2 ITERATIONS) "
      "SELECT * FROM it");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Widths, MergeDuplicateKeyMppTest,
                         ::testing::Values(1, 2, 8));

TEST(LoopTerminationTest, MergeResultsMatchAcrossMppWidths) {
  // The positive counterpart: a legal merge loop must produce identical
  // results serially and partitioned.
  auto run = [](int workers) {
    EngineOptions opts;
    opts.num_workers = workers;
    opts.mpp_min_rows_per_task = 1;
    Database db(opts);
    MustExecute(&db, "CREATE TABLE base (id BIGINT, v BIGINT)");
    MustExecute(&db,
                "INSERT INTO base VALUES (1, 1), (2, 2), (3, 3), (4, 4), "
                "(5, 5), (6, 6), (7, 7), (8, 8)");
    return MustQuery(&db,
                     "WITH ITERATIVE it (id, v) AS (SELECT id, v FROM base "
                     "ITERATE SELECT id, v + id FROM it WHERE id <= 4 "
                     "UNTIL 3 ITERATIONS) "
                     "SELECT id, v FROM it ORDER BY id");
  };
  TablePtr serial = run(1);
  TablePtr mpp = run(8);
  testing::ExpectSameRows(serial, mpp);
}

}  // namespace
}  // namespace dbspinner
