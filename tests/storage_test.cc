// Unit tests for storage/: ColumnVector, Schema, Table, Catalog,
// ResultRegistry (including the rename operator's O(1) semantics).

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column_vector.h"
#include "storage/result_registry.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dbspinner {
namespace {

template <typename T>
T Unwrap(Result<T> r) {
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(ColumnVectorTest, AppendTypedValues) {
  ColumnVector col(TypeId::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(3);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col.Int64At(0), 1);
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.GetValue(2).int64_value(), 3);
}

TEST(ColumnVectorTest, CoercingAppend) {
  ColumnVector col(TypeId::kDouble);
  col.Append(Value::Int64(2));
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 2.0);
}

TEST(ColumnVectorTest, Gather) {
  ColumnVector col(TypeId::kString);
  col.AppendString("a");
  col.AppendString("b");
  col.AppendString("c");
  ColumnVectorPtr out = col.Gather({2, 0});
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->StringAt(0), "c");
  EXPECT_EQ(out->StringAt(1), "a");
}

TEST(ColumnVectorTest, EqualsAtCrossType) {
  ColumnVector a(TypeId::kInt64);
  a.AppendInt64(5);
  ColumnVector b(TypeId::kDouble);
  b.AppendDouble(5.0);
  EXPECT_TRUE(a.EqualsAt(0, b, 0));
  EXPECT_EQ(a.HashAt(0), b.HashAt(0));
}

TEST(ColumnVectorTest, NullEqualsNull) {
  ColumnVector a(TypeId::kInt64);
  a.AppendNull();
  a.AppendInt64(0);
  EXPECT_TRUE(a.EqualsAt(0, a, 0));
  EXPECT_FALSE(a.EqualsAt(0, a, 1));
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s;
  s.AddColumn("Node", TypeId::kInt64);
  s.AddColumn("rank", TypeId::kDouble);
  EXPECT_EQ(*s.FindColumn("NODE"), 0u);
  EXPECT_EQ(*s.FindColumn("rank"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, TypesCompatible) {
  Schema a, b, c;
  a.AddColumn("x", TypeId::kInt64);
  b.AddColumn("y", TypeId::kDouble);
  c.AddColumn("z", TypeId::kString);
  EXPECT_TRUE(a.TypesCompatible(b));  // int widens to double
  EXPECT_FALSE(a.TypesCompatible(c));
}

TEST(SchemaTest, ToString) {
  Schema s;
  s.AddColumn("a", TypeId::kInt64);
  EXPECT_EQ(s.ToString(), "(a BIGINT)");
}

Schema TwoColSchema() {
  Schema s;
  s.AddColumn("id", TypeId::kInt64);
  s.AddColumn("v", TypeId::kDouble);
  return s;
}

TEST(TableTest, AppendAndGet) {
  auto t = Table::Make(TwoColSchema());
  t->AppendRow({Value::Int64(1), Value::Double(0.5)});
  t->AppendRow({Value::Int64(2), Value::Null()});
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0).int64_value(), 1);
  EXPECT_TRUE(t->GetValue(1, 1).is_null());
}

TEST(TableTest, FromColumns) {
  auto id = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto v = std::make_shared<ColumnVector>(TypeId::kDouble);
  id->AppendInt64(1);
  v->AppendDouble(2.0);
  auto t = Table::FromColumns(TwoColSchema(), {id, v});
  EXPECT_EQ(t->num_rows(), 1u);
}

TEST(TableTest, CloneIsDeep) {
  auto t = Table::Make(TwoColSchema());
  t->AppendRow({Value::Int64(1), Value::Double(1.0)});
  auto copy = t->Clone();
  copy->AppendRow({Value::Int64(2), Value::Double(2.0)});
  EXPECT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(copy->num_rows(), 2u);
}

TEST(TableTest, SameRowsIsOrderInsensitive) {
  auto a = Table::Make(TwoColSchema());
  auto b = Table::Make(TwoColSchema());
  a->AppendRow({Value::Int64(1), Value::Double(1.0)});
  a->AppendRow({Value::Int64(2), Value::Double(2.0)});
  b->AppendRow({Value::Int64(2), Value::Double(2.0)});
  b->AppendRow({Value::Int64(1), Value::Double(1.0)});
  EXPECT_TRUE(Table::SameRows(*a, *b));
  b->AppendRow({Value::Int64(3), Value::Double(3.0)});
  EXPECT_FALSE(Table::SameRows(*a, *b));
}

TEST(TableTest, SameRowsDetectsValueDifference) {
  auto a = Table::Make(TwoColSchema());
  auto b = Table::Make(TwoColSchema());
  a->AppendRow({Value::Int64(1), Value::Double(1.0)});
  b->AppendRow({Value::Int64(1), Value::Double(1.5)});
  EXPECT_FALSE(Table::SameRows(*a, *b));
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  auto t = Table::Make(TwoColSchema());
  ASSERT_TRUE(catalog.CreateTable("T1", t).ok());
  EXPECT_TRUE(catalog.Exists("t1"));
  EXPECT_FALSE(catalog.CreateTable("t1", t).ok());  // duplicate
  auto entry = catalog.Get("T1");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->table.get(), t.get());
  ASSERT_TRUE(catalog.DropTable("t1").ok());
  EXPECT_FALSE(catalog.Get("t1").ok());
  EXPECT_FALSE(catalog.DropTable("t1").ok());
  EXPECT_TRUE(catalog.DropTable("t1", /*if_exists=*/true).ok());
}

TEST(CatalogTest, PrimaryKeyIsStored) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("t", Table::Make(TwoColSchema()), 0).ok());
  EXPECT_EQ((*catalog.Get("t"))->primary_key_col, 0u);
}

TEST(ResultRegistryTest, PutGetRemove) {
  ResultRegistry reg;
  auto t = Table::Make(TwoColSchema());
  reg.Put("r1", t);
  EXPECT_TRUE(reg.Exists("R1"));
  EXPECT_EQ(Unwrap(reg.Get("r1")).get(), t.get());
  reg.Remove("r1");
  EXPECT_FALSE(reg.Get("r1").ok());
}

TEST(ResultRegistryTest, RenameMovesPointerWithoutCopy) {
  ResultRegistry reg;
  auto working = Table::Make(TwoColSchema());
  working->AppendRow({Value::Int64(1), Value::Double(1.0)});
  auto old_main = Table::Make(TwoColSchema());
  reg.Put("main", old_main);
  reg.Put("working", working);

  ASSERT_TRUE(reg.Rename("working", "main").ok());
  EXPECT_FALSE(reg.Exists("working"));
  auto got = reg.Get("main");
  ASSERT_TRUE(got.ok());
  // Same storage object: rename moved a pointer, not rows.
  EXPECT_EQ(got->get(), working.get());
}

TEST(ResultRegistryTest, RenameMissingSourceIsInternalError) {
  // A rename whose source is not bound can only come from a malformed
  // program (the rewriter emits matching Materialize/Rename pairs), so it
  // must surface as kInternal — the code the differential fuzzer treats as
  // "engine bug", distinct from the kNotFound of a plain Get on a bad name.
  ResultRegistry reg;
  Status s = reg.Rename("nope", "x");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("nope"), std::string::npos);
  EXPECT_FALSE(reg.Exists("x"));
}

TEST(ResultRegistryTest, Clear) {
  ResultRegistry reg;
  reg.Put("a", Table::Make(TwoColSchema()));
  reg.Put("b", Table::Make(TwoColSchema()));
  EXPECT_EQ(reg.size(), 2u);
  reg.Clear();
  EXPECT_EQ(reg.size(), 0u);
}

}  // namespace
}  // namespace dbspinner
