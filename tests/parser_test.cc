// Unit tests for the lexer and parser, including the WITH ITERATIVE grammar.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace dbspinner {
namespace {

StatementPtr MustParse(const std::string& sql) {
  Result<StatementPtr> result = ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nSQL: " << sql;
  if (!result.ok()) return nullptr;
  return std::move(result).value();
}

void ExpectParseError(const std::string& sql) {
  Result<StatementPtr> result = ParseStatement(sql);
  EXPECT_FALSE(result.ok()) << "expected parse error for: " << sql;
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  }
}

// --- lexer -------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = *Tokenize("SELECT a, 1.5 FROM t WHERE x != 'it''s'");
  // SELECT a , 1.5 FROM t WHERE x != 'it's' EOF
  ASSERT_EQ(tokens.size(), 11u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[3].type, TokenType::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 1.5);
  EXPECT_EQ(tokens[8].text, "!=");
  EXPECT_EQ(tokens[9].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[9].text, "it's");
}

TEST(LexerTest, Comments) {
  auto tokens = *Tokenize("-- line comment\nSELECT /* block */ 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, NotEqualsVariants) {
  auto a = *Tokenize("a <> b");
  EXPECT_EQ(a[1].text, "!=");
  auto b = *Tokenize("a != b");
  EXPECT_EQ(b[1].text, "!=");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, UnterminatedCommentFails) {
  EXPECT_FALSE(Tokenize("SELECT /* oops").ok());
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = *Tokenize("SELECT\n  x");
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

// --- expressions -------------------------------------------------------------

TEST(ParserTest, ExpressionPrecedence) {
  auto e = *ParseExpression("1 + 2 * 3");
  EXPECT_EQ(e->ToString(), "(1 + (2 * 3))");
  e = *ParseExpression("NOT a = 1 AND b = 2 OR c = 3");
  EXPECT_EQ(e->ToString(), "((NOT (a = 1) AND (b = 2)) OR (c = 3))");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto e = *ParseExpression("-5");
  EXPECT_EQ(e->kind, ParseExprKind::kLiteral);
  EXPECT_EQ(e->literal.int64_value(), -5);
}

TEST(ParserTest, CaseExpression) {
  auto e = *ParseExpression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END");
  EXPECT_EQ(e->kind, ParseExprKind::kCase);
  EXPECT_TRUE(e->case_has_else);
  ASSERT_EQ(e->children.size(), 3u);
}

TEST(ParserTest, SimpleCaseNormalizesToSearched) {
  auto e = *ParseExpression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END");
  EXPECT_EQ(e->kind, ParseExprKind::kCase);
  EXPECT_EQ(e->children[0]->ToString(), "(x = 1)");
}

TEST(ParserTest, CastAndFunctions) {
  auto e = *ParseExpression("ROUND(CAST(a / b AS NUMERIC), 5)");
  EXPECT_EQ(e->kind, ParseExprKind::kFunctionCall);
  EXPECT_EQ(e->function_name, "round");
  EXPECT_EQ(e->children[0]->kind, ParseExprKind::kCast);
  EXPECT_EQ(e->children[0]->cast_type, TypeId::kDouble);
}

TEST(ParserTest, InAndBetween) {
  auto e = *ParseExpression("x IN (1, 2, 3)");
  EXPECT_EQ(e->kind, ParseExprKind::kIn);
  EXPECT_EQ(e->children.size(), 4u);
  e = *ParseExpression("x NOT IN (1)");
  EXPECT_TRUE(e->negated);
  e = *ParseExpression("x BETWEEN 1 AND 10");
  EXPECT_EQ(e->kind, ParseExprKind::kBetween);
}

TEST(ParserTest, IsNull) {
  auto e = *ParseExpression("x IS NOT NULL");
  EXPECT_EQ(e->kind, ParseExprKind::kIsNull);
  EXPECT_TRUE(e->negated);
}

// --- SELECT ------------------------------------------------------------------

TEST(ParserTest, SelectBasics) {
  auto stmt = MustParse(
      "SELECT a AS x, b + 1 FROM t WHERE a > 0 GROUP BY a HAVING COUNT(*) > 1 "
      "ORDER BY x DESC LIMIT 5");
  ASSERT_EQ(stmt->kind, StatementKind::kSelect);
  const QueryNode& q = *stmt->query;
  EXPECT_EQ(q.select_list.size(), 2u);
  EXPECT_EQ(q.select_list[0].alias, "x");
  EXPECT_NE(q.where, nullptr);
  EXPECT_EQ(q.group_by.size(), 1u);
  EXPECT_NE(q.having, nullptr);
  ASSERT_EQ(q.order_by.size(), 1u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_EQ(q.limit, 5);
}

TEST(ParserTest, ImplicitAlias) {
  auto stmt = MustParse("SELECT a x FROM t");
  EXPECT_EQ(stmt->query->select_list[0].alias, "x");
}

TEST(ParserTest, Joins) {
  auto stmt = MustParse(
      "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y "
      "JOIN c ON c.z = b.y CROSS JOIN d");
  const TableRef& from = *stmt->query->from;
  ASSERT_EQ(from.kind, TableRefKind::kJoin);  // (((a LJ b) IJ c) CJ d)
  EXPECT_EQ(from.join_condition, nullptr);    // cross join
  const TableRef& inner = *from.left;
  EXPECT_EQ(inner.join_type, JoinType::kInner);
  const TableRef& left = *inner.left;
  EXPECT_EQ(left.join_type, JoinType::kLeft);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = MustParse("SELECT * FROM (SELECT 1 AS one) t");
  EXPECT_EQ(stmt->query->from->kind, TableRefKind::kSubquery);
  EXPECT_EQ(stmt->query->from->alias, "t");
}

TEST(ParserTest, UnionChain) {
  auto stmt = MustParse("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3");
  const QueryNode& q = *stmt->query;
  ASSERT_EQ(q.kind, QueryNodeKind::kSetOp);
  EXPECT_EQ(q.set_op, SetOpKind::kUnion);
  EXPECT_EQ(q.left->set_op, SetOpKind::kUnionAll);
}

TEST(ParserTest, QualifiedStar) {
  auto stmt = MustParse("SELECT t.* FROM t");
  EXPECT_EQ(stmt->query->select_list[0].expr->kind, ParseExprKind::kStar);
  EXPECT_EQ(stmt->query->select_list[0].expr->qualifier, "t");
}

// --- WITH clauses ------------------------------------------------------------

TEST(ParserTest, RegularCte) {
  auto stmt = MustParse("WITH c AS (SELECT 1 AS x) SELECT * FROM c");
  ASSERT_EQ(stmt->ctes.size(), 1u);
  EXPECT_EQ(stmt->ctes[0].kind, CteKind::kRegular);
  EXPECT_EQ(stmt->ctes[0].name, "c");
}

TEST(ParserTest, RecursiveCte) {
  auto stmt = MustParse(
      "WITH RECURSIVE r (n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
      "WHERE n < 5) SELECT * FROM r");
  ASSERT_EQ(stmt->ctes.size(), 1u);
  EXPECT_EQ(stmt->ctes[0].kind, CteKind::kRecursive);
  EXPECT_EQ(stmt->ctes[0].column_names.size(), 1u);
}

TEST(ParserTest, IterativeCteMetadata) {
  auto stmt = MustParse(
      "WITH ITERATIVE r (a, b) AS (SELECT 1, 2 ITERATE SELECT a, b + 1 FROM r "
      "UNTIL 10 ITERATIONS) SELECT * FROM r");
  ASSERT_EQ(stmt->ctes.size(), 1u);
  const CteDef& def = stmt->ctes[0];
  EXPECT_EQ(def.kind, CteKind::kIterative);
  ASSERT_NE(def.init_query, nullptr);
  ASSERT_NE(def.iter_query, nullptr);
  EXPECT_EQ(def.until.kind, TerminationCondition::Kind::kIterations);
  EXPECT_EQ(def.until.n, 10);
  EXPECT_STREQ(def.until.TypeName(), "Metadata");
}

TEST(ParserTest, IterativeCteUpdates) {
  auto stmt = MustParse(
      "WITH ITERATIVE r AS (SELECT 1 AS a ITERATE SELECT a FROM r "
      "UNTIL 100 UPDATES) SELECT * FROM r");
  EXPECT_EQ(stmt->ctes[0].until.kind, TerminationCondition::Kind::kUpdates);
  EXPECT_EQ(stmt->ctes[0].until.n, 100);
}

TEST(ParserTest, IterativeCteDelta) {
  auto stmt = MustParse(
      "WITH ITERATIVE r AS (SELECT 1 AS a ITERATE SELECT a FROM r "
      "UNTIL DELTA < 5) SELECT * FROM r");
  EXPECT_EQ(stmt->ctes[0].until.kind, TerminationCondition::Kind::kDeltaLess);
  EXPECT_EQ(stmt->ctes[0].until.n, 5);
  EXPECT_STREQ(stmt->ctes[0].until.TypeName(), "Delta");
}

TEST(ParserTest, IterativeCteDataConditions) {
  auto stmt = MustParse(
      "WITH ITERATIVE r AS (SELECT 1 AS a ITERATE SELECT a FROM r "
      "UNTIL ANY(a > 100)) SELECT * FROM r");
  EXPECT_EQ(stmt->ctes[0].until.kind, TerminationCondition::Kind::kAny);
  EXPECT_STREQ(stmt->ctes[0].until.TypeName(), "Data");

  stmt = MustParse(
      "WITH ITERATIVE r AS (SELECT 1 AS a ITERATE SELECT a FROM r "
      "UNTIL ALL(a > 100)) SELECT * FROM r");
  EXPECT_EQ(stmt->ctes[0].until.kind, TerminationCondition::Kind::kAll);
}

TEST(ParserTest, IterativeCteKeyClause) {
  auto stmt = MustParse(
      "WITH ITERATIVE r (a, b) KEY (b) AS (SELECT 1, 2 ITERATE "
      "SELECT a, b FROM r WHERE a > 0 UNTIL 3 ITERATIONS) SELECT * FROM r");
  ASSERT_TRUE(stmt->ctes[0].key_column.has_value());
  EXPECT_EQ(*stmt->ctes[0].key_column, "b");
}

TEST(ParserTest, IterateWithoutIterativeKeywordFails) {
  ExpectParseError(
      "WITH r AS (SELECT 1 ITERATE SELECT 1 UNTIL 3 ITERATIONS) "
      "SELECT * FROM r");
}

TEST(ParserTest, IterativeWithoutIterateFails) {
  ExpectParseError("WITH ITERATIVE r AS (SELECT 1) SELECT * FROM r");
}

TEST(ParserTest, ZeroIterationCountParses) {
  // UNTIL 0 ITERATIONS is legal: the loop body never runs and the CTE is
  // just its non-iterative part.
  MustParse(
      "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 1 UNTIL 0 ITERATIONS) "
      "SELECT * FROM r");
}

TEST(ParserTest, NegativeIterationCountFails) {
  ExpectParseError(
      "WITH ITERATIVE r AS (SELECT 1 ITERATE SELECT 1 UNTIL -3 ITERATIONS) "
      "SELECT * FROM r");
}

// --- DDL / DML ---------------------------------------------------------------

TEST(ParserTest, CreateTable) {
  auto stmt = MustParse(
      "CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR, score DOUBLE)");
  EXPECT_EQ(stmt->kind, StatementKind::kCreateTable);
  ASSERT_EQ(stmt->columns.size(), 3u);
  EXPECT_TRUE(stmt->columns[0].primary_key);
  EXPECT_EQ(stmt->columns[2].type, TypeId::kDouble);
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = MustParse("CREATE TABLE IF NOT EXISTS t (x INT)");
  EXPECT_TRUE(stmt->if_not_exists);
}

TEST(ParserTest, InsertValues) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  EXPECT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert_columns.size(), 2u);
  EXPECT_EQ(stmt->insert_values.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = MustParse("INSERT INTO t SELECT a, b FROM s WHERE a > 0");
  EXPECT_NE(stmt->insert_query, nullptr);
  EXPECT_TRUE(stmt->insert_values.empty());
}

TEST(ParserTest, InsertParenthesizedSelect) {
  auto stmt = MustParse("INSERT INTO t (SELECT a FROM s)");
  EXPECT_NE(stmt->insert_query, nullptr);
}

TEST(ParserTest, UpdateWithFrom) {
  auto stmt = MustParse(
      "UPDATE main SET rank = w.rank, delta = w.delta FROM work AS w "
      "WHERE main.node = w.node");
  EXPECT_EQ(stmt->kind, StatementKind::kUpdate);
  EXPECT_EQ(stmt->set_clauses.size(), 2u);
  ASSERT_NE(stmt->update_from, nullptr);
  EXPECT_EQ(stmt->update_from->alias, "w");
  EXPECT_NE(stmt->where, nullptr);
}

TEST(ParserTest, DeleteAndDrop) {
  auto del = MustParse("DELETE FROM t WHERE x = 1");
  EXPECT_EQ(del->kind, StatementKind::kDelete);
  auto drop = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_EQ(drop->kind, StatementKind::kDropTable);
  EXPECT_TRUE(drop->if_exists);
}

TEST(ParserTest, Explain) {
  auto stmt = MustParse("EXPLAIN SELECT 1");
  EXPECT_EQ(stmt->kind, StatementKind::kExplain);
  EXPECT_EQ(stmt->explained->kind, StatementKind::kSelect);
}

TEST(ParserTest, Script) {
  auto stmts = *ParseScript("SELECT 1; SELECT 2;;SELECT 3");
  EXPECT_EQ(stmts.size(), 3u);
}

TEST(ParserTest, TrailingGarbageFails) {
  ExpectParseError("SELECT 1 x y z )");
}

TEST(ParserTest, CloneRoundTrip) {
  auto stmt = MustParse(
      "WITH ITERATIVE r (a) AS (SELECT 1 ITERATE SELECT a + 1 FROM r "
      "UNTIL ANY(a > 3)) SELECT * FROM r ORDER BY a LIMIT 2");
  CteDef clone = stmt->ctes[0].Clone();
  EXPECT_EQ(clone.name, stmt->ctes[0].name);
  EXPECT_EQ(clone.until.ToString(), stmt->ctes[0].until.ToString());
  QueryNodePtr q = stmt->query->Clone();
  EXPECT_EQ(q->limit, stmt->query->limit);
}

}  // namespace
}  // namespace dbspinner
