// Graph substrate tests: generators, weights, reference algorithms, file I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "graph/generator.h"
#include "graph/io.h"
#include "graph/reference_algorithms.h"

namespace dbspinner {
namespace {

using graph::EdgeList;
using graph::Generate;
using graph::GraphKind;
using graph::GraphSpec;

TEST(GeneratorTest, Deterministic) {
  GraphSpec spec;
  spec.num_nodes = 100;
  spec.num_edges = 400;
  spec.seed = 9;
  EdgeList a = Generate(spec);
  EdgeList b = Generate(spec);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.dst, b.dst);
}

TEST(GeneratorTest, ExactEdgeCountNoSelfLoops) {
  GraphSpec spec;
  spec.num_nodes = 200;
  spec.num_edges = 1000;
  EdgeList g = Generate(spec);
  EXPECT_EQ(g.num_edges(), 1000u);
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_NE(g.src[i], g.dst[i]);
    EXPECT_GE(g.src[i], 1);
    EXPECT_LE(g.src[i], 200);
    EXPECT_GE(g.dst[i], 1);
    EXPECT_LE(g.dst[i], 200);
  }
}

TEST(GeneratorTest, WeightsAreInverseOutdegree) {
  GraphSpec spec;
  spec.num_nodes = 50;
  spec.num_edges = 200;
  EdgeList g = Generate(spec);
  std::unordered_map<int64_t, int64_t> outdeg;
  for (int64_t s : g.src) ++outdeg[s];
  std::unordered_map<int64_t, double> weight_sum;
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_NEAR(g.weight[i], 1.0 / outdeg[g.src[i]], 1e-12);
    weight_sum[g.src[i]] += g.weight[i];
  }
  // Outgoing weights of each node sum to 1 (stochastic transition matrix).
  for (const auto& [node, sum] : weight_sum) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node " << node;
  }
}

TEST(GeneratorTest, PreferentialAttachmentIsSkewed) {
  GraphSpec spec;
  spec.num_nodes = 2000;
  spec.num_edges = 10000;
  EdgeList g = Generate(spec);
  std::unordered_map<int64_t, int64_t> indeg;
  for (int64_t d : g.dst) ++indeg[d];
  int64_t max_deg = 0;
  for (const auto& [n, d] : indeg) max_deg = std::max(max_deg, d);
  double mean = static_cast<double>(g.num_edges()) / spec.num_nodes;
  // Power-law-ish skew: the hub's in-degree far exceeds the mean.
  EXPECT_GT(static_cast<double>(max_deg), 10 * mean);
}

TEST(GeneratorTest, UniformIsNotVerySkewed) {
  GraphSpec spec;
  spec.kind = GraphKind::kUniform;
  spec.num_nodes = 2000;
  spec.num_edges = 10000;
  EdgeList g = Generate(spec);
  std::unordered_map<int64_t, int64_t> indeg;
  for (int64_t d : g.dst) ++indeg[d];
  int64_t max_deg = 0;
  for (const auto& [n, d] : indeg) max_deg = std::max(max_deg, d);
  double mean = static_cast<double>(g.num_edges()) / spec.num_nodes;
  EXPECT_LT(static_cast<double>(max_deg), 10 * mean);
}

TEST(GeneratorTest, GridShape) {
  GraphSpec spec;
  spec.kind = GraphKind::kGrid;
  spec.num_nodes = 16;
  EdgeList g = Generate(spec);
  EXPECT_EQ(g.num_nodes, 16);
  EXPECT_EQ(g.num_edges(), 24u);  // 2 * side * (side - 1) = 2*4*3
}

TEST(GeneratorTest, ShapedPresetsScale) {
  GraphSpec dblp = graph::DblpShaped(16);
  EXPECT_EQ(dblp.num_nodes, 317080 / 16);
  EXPECT_EQ(dblp.num_edges, 1049866 / 16);
  GraphSpec pokec = graph::PokecShaped(32);
  EXPECT_EQ(pokec.num_nodes, 1632803 / 32);
  // Pokec keeps a much higher edge:node ratio than DBLP.
  double dblp_ratio = static_cast<double>(dblp.num_edges) / dblp.num_nodes;
  double pokec_ratio = static_cast<double>(pokec.num_edges) / pokec.num_nodes;
  EXPECT_GT(pokec_ratio, 3 * dblp_ratio);
}

TEST(GeneratorTest, VertexStatusFraction) {
  TablePtr vs = graph::BuildVertexStatusTable(10000, 0.8, 11);
  ASSERT_EQ(vs->num_rows(), 10000u);
  int64_t available = 0;
  for (size_t i = 0; i < vs->num_rows(); ++i) {
    available += vs->GetValue(i, 1).int64_value();
  }
  EXPECT_NEAR(static_cast<double>(available) / 10000.0, 0.8, 0.02);
}

TEST(ReferenceTest, PageRankSumsStayFinite) {
  GraphSpec spec;
  spec.num_nodes = 100;
  spec.num_edges = 600;
  EdgeList g = Generate(spec);
  auto result = graph::ReferencePageRank(g, 10);
  EXPECT_EQ(result.size(), graph::GraphNodes(g).size());
  // Ranks with values are positive and bounded (damping 0.85, delta0 0.15).
  for (const auto& row : result) {
    if (row.rank.has_value()) {
      EXPECT_GE(*row.rank, 0.0);
      EXPECT_LT(*row.rank, 100.0);
    }
  }
}

TEST(ReferenceTest, SsspSourceSemantics) {
  GraphSpec spec;
  spec.kind = GraphKind::kGrid;
  spec.num_nodes = 25;  // 5x5 grid; node 1 is the top-left corner
  EdgeList g = Generate(spec);
  auto result = graph::ReferenceSssp(g, 12, 1);
  bool found_source = false;
  bool found_neighbour = false;
  for (const auto& row : result) {
    if (row.node == 1) {
      // Fig 7 semantics quirk: a source with no incoming edges never enters
      // the working table, so its delta stays 0 but its *distance* keeps
      // the sentinel. Documented in DESIGN.md.
      EXPECT_EQ(row.delta, 0);
      EXPECT_EQ(row.distance, 9999999);
      found_source = true;
    }
    if (row.node == 2) {
      // A direct successor of the source settles at weight(1 -> 2) = 0.5.
      EXPECT_NEAR(row.distance, 0.5, 1e-12);
      found_neighbour = true;
    }
    EXPECT_LE(row.distance, 9999999);
  }
  EXPECT_TRUE(found_source);
  EXPECT_TRUE(found_neighbour);
}

TEST(ReferenceTest, SsspMonotoneNonIncreasing) {
  GraphSpec spec;
  spec.num_nodes = 80;
  spec.num_edges = 400;
  spec.seed = 3;
  EdgeList g = Generate(spec);
  auto few = graph::ReferenceSssp(g, 3, 1);
  auto more = graph::ReferenceSssp(g, 8, 1);
  std::unordered_map<int64_t, double> few_d;
  for (const auto& r : few) few_d[r.node] = r.distance;
  for (const auto& r : more) {
    EXPECT_LE(r.distance, few_d[r.node] + 1e-12) << "node " << r.node;
  }
}

TEST(ReferenceTest, ForecastGrowsWhenRatioAboveOne) {
  EdgeList g;
  g.num_nodes = 3;
  // Node 1: outdeg 2; 1 % 10 = 1 so friendsprev = ceil(2 * 0.99) = 2 ...
  // use node 9 for a bigger discount: ceil(2 * 0.91) = 2 still. Use outdeg
  // 10: friendsprev = ceil(10 * 0.91) = 10? 9.1 -> 10. Ratio stays 1.
  // Node with src % 10 == 5 and outdeg 10: ceil(10 * 0.95) = 10. The ratio
  // only exceeds 1 with larger outdeg: outdeg 100, node 5: ceil(95) = 95,
  // ratio 100/95 > 1 => growth.
  for (int i = 0; i < 100; ++i) {
    g.src.push_back(5);
    g.dst.push_back(200 + i);
  }
  g.num_nodes = 300;
  g.weight.assign(g.src.size(), 0.01);
  auto r0 = graph::ReferenceForecast(g, 0);
  auto r3 = graph::ReferenceForecast(g, 3);
  ASSERT_EQ(r0.size(), 1u);
  ASSERT_EQ(r3.size(), 1u);
  EXPECT_GT(r3[0].friends, r0[0].friends);
}

TEST(GraphIoTest, WriteReadRoundTrip) {
  GraphSpec spec;
  spec.num_nodes = 40;
  spec.num_edges = 150;
  EdgeList g = Generate(spec);
  std::string path = ::testing::TempDir() + "/dbsp_graph_roundtrip.txt";
  ASSERT_TRUE(graph::WriteEdgeListFile(g, path).ok());
  auto back = graph::ReadEdgeListFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_edges(), g.num_edges());
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back->src[i], g.src[i]);
    EXPECT_EQ(back->dst[i], g.dst[i]);
    EXPECT_NEAR(back->weight[i], g.weight[i], 1e-6);
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, WeightlessFileGetsInverseOutdegree) {
  std::string path = ::testing::TempDir() + "/dbsp_graph_plain.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# comment\n1 2\n1 3\n2 3\n", f);
    std::fclose(f);
  }
  auto g = graph::ReadEdgeListFile(path);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->weight[0], 0.5);
  EXPECT_DOUBLE_EQ(g->weight[2], 1.0);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_FALSE(graph::ReadEdgeListFile("/no/such/file").ok());
}

}  // namespace
}  // namespace dbspinner
