// Delta-driven (semi-naive) iteration: result equivalence against the
// naive full-recompute engine on the canonical workloads, execution-stat
// evidence that the rewrite actually restricts per-iteration work, and a
// differential sweep of generated queries with the delta oracle on vs off.

#include <gtest/gtest.h>

#include "engine/workloads.h"
#include "graph/generator.h"
#include "plan/plan_printer.h"
#include "test_util.h"
#include "testing/differential.h"
#include "testing/query_generator.h"

namespace dbspinner {
namespace {

using testing::ExpectSameRows;
using testing::MustQuery;

void SetDelta(Database* db, bool on) {
  db->options().optimizer.enable_delta_iteration = on;
  db->options().optimizer.enable_join_build_cache = on;
}

// Two databases over the same generated graph, one with the delta rewrite
// (and the loop-invariant build cache), one naive.
class DeltaEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::GraphSpec spec;
    spec.kind = graph::GraphKind::kPreferentialAttachment;
    spec.num_nodes = 200;
    spec.num_edges = 900;
    spec.seed = 17;
    graph::EdgeList graph = graph::Generate(spec);
    SetDelta(&delta_db_, true);
    SetDelta(&naive_db_, false);
    ASSERT_TRUE(graph::LoadIntoDatabase(&delta_db_, graph, 0.7, 18).ok());
    ASSERT_TRUE(graph::LoadIntoDatabase(&naive_db_, graph, 0.7, 18).ok());
  }

  void ExpectEquivalent(const std::string& sql, double eps = 1e-6) {
    TablePtr with_delta = MustQuery(&delta_db_, sql);
    TablePtr naive = MustQuery(&naive_db_, sql);
    ExpectSameRows(with_delta, naive, eps);
  }

  Database delta_db_;
  Database naive_db_;
};

TEST_F(DeltaEquivalenceTest, PageRank) {
  ExpectEquivalent(workloads::PRQuery(10));
  ExpectEquivalent(workloads::PRVSQuery(10));
}

TEST_F(DeltaEquivalenceTest, Sssp) {
  ExpectEquivalent(workloads::SSSPQuery(12, 1, 2));
  ExpectEquivalent(workloads::SSSPVSQuery(12, 1, 2));
  ExpectEquivalent(workloads::SSSPDataConditionQuery(1, 2));
}

TEST_F(DeltaEquivalenceTest, ForestFire) {
  ExpectEquivalent(workloads::FFQuery(8, 1, 1000000));
  ExpectEquivalent(workloads::FFDeltaQuery(1, 1));
}

TEST_F(DeltaEquivalenceTest, SsspStatsShowRestrictedWork) {
  // SSSP converges: after the shortest-path frontier settles, the delta
  // shrinks, so the semi-naive probe side must touch fewer rows than the
  // naive engine recomputes (iterations * |cte|).
  std::string sql = workloads::SSSPQuery(12, 1, 2);
  auto with_delta = delta_db_.Execute(sql);
  auto naive = naive_db_.Execute(sql);
  ASSERT_TRUE(with_delta.ok()) << with_delta.status().ToString();
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  // Same loop trip count either way (the rewrite must not perturb
  // termination), and the naive engine never produces deltas.
  EXPECT_EQ(with_delta->stats.loop_iterations, naive->stats.loop_iterations);
  EXPECT_EQ(naive->stats.delta_rows, 0);
  EXPECT_EQ(naive->stats.delta_probe_rows, 0);

  EXPECT_GT(with_delta->stats.delta_rows, 0);
  EXPECT_GT(with_delta->stats.delta_probe_rows, 0);
  // The frontier across all iterations is smaller than full recompute.
  int64_t naive_driving_rows =
      naive->stats.loop_iterations * static_cast<int64_t>(200);
  EXPECT_LT(with_delta->stats.delta_probe_rows, naive_driving_rows);
  // The loop-invariant edges build side was reused across iterations.
  EXPECT_GT(with_delta->stats.build_cache_hits, 0);
  EXPECT_EQ(naive->stats.build_cache_hits, 0);
}

TEST_F(DeltaEquivalenceTest, ExplainShowsComputeDeltaOnlyWhenEnabled) {
  auto on = delta_db_.Plan(workloads::SSSPQuery(12, 1, 2));
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_NE(ExplainProgram(*on, false).find("ComputeDelta"),
            std::string::npos);

  auto off = naive_db_.Plan(workloads::SSSPQuery(12, 1, 2));
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_EQ(ExplainProgram(*off, false).find("ComputeDelta"),
            std::string::npos);
}

TEST_F(DeltaEquivalenceTest, MppDeltaAgreesAndShufflesLess) {
  // Width-8 cluster: deltas are shuffled instead of full partitions, so the
  // delta engine must move strictly fewer rows on a converging SSSP. The
  // fused pre-aggregation path shuffles nothing at all, so pin the legacy
  // executor on both sides to keep the shuffle-volume comparison meaningful.
  delta_db_.options().num_workers = 8;
  delta_db_.options().mpp_min_rows_per_task = 1;
  delta_db_.options().optimizer.vectorized_exec = false;
  naive_db_.options().num_workers = 8;
  naive_db_.options().mpp_min_rows_per_task = 1;
  naive_db_.options().optimizer.vectorized_exec = false;

  std::string sql = workloads::SSSPQuery(12, 1, 2);
  auto with_delta = delta_db_.Execute(sql);
  auto naive = naive_db_.Execute(sql);
  ASSERT_TRUE(with_delta.ok()) << with_delta.status().ToString();
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();
  ExpectSameRows(with_delta->table, naive->table, 1e-6);
  EXPECT_LT(with_delta->stats.rows_shuffled, naive->stats.rows_shuffled);
}

// The fused DeltaRestrict kernel and the legacy operator must account
// delta work identically: delta_probe_rows counts driving rows kept by the
// restrict, wherever it executes. A toggle of the vectorized executor must
// not move any of the semi-naive bookkeeping, and the loop must converge in
// the same number of iterations.
TEST_F(DeltaEquivalenceTest, VectorizedTogglePreservesDeltaStats) {
  std::string sql = workloads::SSSPQuery(12, 1, 2);

  delta_db_.options().optimizer.vectorized_exec = true;
  auto vec = delta_db_.Execute(sql);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();

  delta_db_.options().optimizer.vectorized_exec = false;
  auto legacy = delta_db_.Execute(sql);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  ExpectSameRows(vec->table, legacy->table, 1e-6);
  EXPECT_EQ(vec->stats.loop_iterations, legacy->stats.loop_iterations);
  EXPECT_EQ(vec->stats.renames, legacy->stats.renames);
  EXPECT_EQ(vec->stats.merge_updates, legacy->stats.merge_updates);
  EXPECT_EQ(vec->stats.delta_rows, legacy->stats.delta_rows);
  EXPECT_EQ(vec->stats.delta_probe_rows, legacy->stats.delta_probe_rows);
  EXPECT_GT(vec->stats.delta_probe_rows, 0);
  // Only the vectorized run drives fused pipelines.
  EXPECT_GT(vec->stats.pipelines_run, 0);
  EXPECT_EQ(legacy->stats.pipelines_run, 0);
}

// Pairwise differential: delta-on vs delta-off over a stream of generated
// queries (all families; the iterative ones exercise both the rename and
// merge paths plus legality bail-outs). Statuses must match and, when both
// succeed, results must be row-identical up to float tolerance.
TEST(DeltaDifferentialTest, GeneratedQueriesAgreeOnDeltaToggle) {
  fuzz::QueryGenerator gen(2026);
  int compared = 0;
  int executed = 0;
  for (int i = 0; compared < 200 && i < 400; ++i) {
    fuzz::FuzzCase c = gen.NextCase();
    std::string sql = fuzz::RenderQuery(c.query);

    Database on;
    Database off;
    SetDelta(&on, true);
    SetDelta(&off, false);
    on.options().max_iterations_guard = 4000;
    off.options().max_iterations_guard = 4000;
    ASSERT_TRUE(fuzz::LoadCaseData(&on, c).ok()) << c.Label();
    ASSERT_TRUE(fuzz::LoadCaseData(&off, c).ok()) << c.Label();

    auto a = on.Query(sql);
    auto b = off.Query(sql);
    ++executed;
    ASSERT_EQ(a.ok(), b.ok())
        << c.Label() << "\n" << sql << "\ndelta-on:  "
        << a.status().ToString() << "\ndelta-off: " << b.status().ToString();
    if (!a.ok()) continue;  // both rejected identically
    ++compared;
    std::string diff = fuzz::DiffRowSets(fuzz::TableRows(**a),
                                         fuzz::TableRows(**b), 1e-6);
    ASSERT_EQ(diff, "") << c.Label() << "\n" << sql;
  }
  EXPECT_GE(compared, 200) << "only " << compared << " of " << executed
                           << " cases produced comparable results";
}

}  // namespace
}  // namespace dbspinner
