#include "storage/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace dbspinner {

std::shared_ptr<const Catalog::Version> Catalog::View() const {
  if (pinned_) return pinned_;
  MutexLock lock(store_->mu);
  keepalive_ = store_->current;
  return keepalive_;
}

Status Catalog::Mutate(
    const std::function<Status(std::unordered_map<std::string, CatalogEntry>*)>&
        mutate) {
  if (pinned_) {
    return Status::InvalidArgument("catalog snapshot is read-only");
  }
  MutexLock lock(store_->mu);
  auto next = std::make_shared<Version>();
  next->id = store_->current->id + 1;
  next->tables = store_->current->tables;  // shallow copy-on-write
  DBSP_RETURN_NOT_OK(mutate(&next->tables));
  store_->current = std::move(next);
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            std::optional<size_t> primary_key_col) {
  std::string key = ToLower(name);
  return Mutate([&](std::unordered_map<std::string, CatalogEntry>* tables) {
    if (tables->count(key)) {
      return Status::AlreadyExists("table '" + name + "' already exists");
    }
    (*tables)[key] = CatalogEntry{key, std::move(table), primary_key_col};
    return Status::OK();
  });
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  return Mutate([&](std::unordered_map<std::string, CatalogEntry>* tables) {
    auto it = tables->find(key);
    if (it == tables->end()) {
      if (if_exists) return Status::OK();
      return Status::NotFound("table '" + name + "' does not exist");
    }
    tables->erase(it);
    return Status::OK();
  });
}

Result<CatalogEntry*> Catalog::Get(const std::string& name) {
  std::shared_ptr<const Version> v = View();
  auto it = v->tables.find(ToLower(name));
  if (it == v->tables.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  // Entries of a published version are immutable by contract (all content
  // changes republish); the non-const pointer only matches the historical
  // signature callers bind to.
  return const_cast<CatalogEntry*>(&it->second);
}

bool Catalog::Exists(const std::string& name) const {
  std::shared_ptr<const Version> v = View();
  return v->tables.count(ToLower(name)) > 0;
}

Status Catalog::ReplaceContents(const std::string& name, TablePtr table) {
  std::string key = ToLower(name);
  return Mutate([&](std::unordered_map<std::string, CatalogEntry>* tables) {
    auto it = tables->find(key);
    if (it == tables->end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    it->second.table = std::move(table);
    return Status::OK();
  });
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_ptr<const Version> v = View();
  std::vector<std::string> names;
  names.reserve(v->tables.size());
  for (const auto& [k, e] : v->tables) names.push_back(k);
  std::sort(names.begin(), names.end());
  return names;
}

Catalog Catalog::PinSnapshot() const {
  Catalog snap;
  snap.store_ = store_;
  snap.pinned_ = View();
  return snap;
}

uint64_t Catalog::version() const { return View()->id; }

std::unordered_map<std::string, CatalogEntry> Catalog::Snapshot() const {
  return View()->tables;
}

void Catalog::Restore(std::unordered_map<std::string, CatalogEntry> snapshot) {
  // Publishing the old map as a *new* version keeps version ids monotone,
  // so a pinned reader never confuses a rollback with its own pin.
  Status st =
      Mutate([&](std::unordered_map<std::string, CatalogEntry>* tables) {
        *tables = std::move(snapshot);
        return Status::OK();
      });
  (void)st;  // Mutate only fails on snapshot handles; Restore is never one.
}

}  // namespace dbspinner
