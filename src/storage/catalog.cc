#include "storage/catalog.h"

#include <algorithm>

#include "common/string_util.h"

namespace dbspinner {

Status Catalog::CreateTable(const std::string& name, TablePtr table,
                            std::optional<size_t> primary_key_col) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  tables_[key] = CatalogEntry{key, std::move(table), primary_key_col};
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name, bool if_exists) {
  std::string key = ToLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("table '" + name + "' does not exist");
  }
  tables_.erase(it);
  return Status::OK();
}

Result<CatalogEntry*> Catalog::Get(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  return &it->second;
}

bool Catalog::Exists(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Catalog::ReplaceContents(const std::string& name, TablePtr table) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' does not exist");
  }
  it->second.table = std::move(table);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [k, v] : tables_) names.push_back(k);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dbspinner
