// BufferManager: fixed-capacity cache of decoded column blocks with pin/unpin
// and clock (second-chance) eviction (DESIGN.md §12).
//
// Scans over extents larger than the pool stream: each block is pinned,
// consumed, and unpinned, and the clock hand reclaims cold frames as new
// blocks fault in. Pinned frames are never evicted. When every frame is
// pinned and the pool is full, Pin admits the block anyway over capacity
// (counted in `overcommits`) instead of deadlocking or failing — callers
// bound their own pin footprint (one block per active scan column).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/column_vector.h"

namespace dbspinner {

/// Identity of one decoded block: (extent, block ordinal).
struct BlockKey {
  uint64_t extent_id = 0;
  uint32_t block_index = 0;

  bool operator==(const BlockKey& o) const {
    return extent_id == o.extent_id && block_index == o.block_index;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    uint64_t x = k.extent_id * 0x9e3779b97f4a7c15ull ^
                 (static_cast<uint64_t>(k.block_index) << 1);
    x ^= x >> 29;
    return static_cast<size_t>(x);
  }
};

class BufferManager;

/// RAII pin on one cached block. While alive, the frame cannot be evicted;
/// destruction unpins. Movable, not copyable.
class PinnedBlock {
 public:
  PinnedBlock() = default;
  PinnedBlock(PinnedBlock&& o) noexcept { *this = std::move(o); }
  PinnedBlock& operator=(PinnedBlock&& o) noexcept;
  PinnedBlock(const PinnedBlock&) = delete;
  PinnedBlock& operator=(const PinnedBlock&) = delete;
  ~PinnedBlock();

  /// The decoded column rows of this block. Valid while the pin is held (and
  /// beyond: the shared_ptr keeps data alive even if the frame is evicted
  /// after release — eviction only drops the cache's reference).
  const ColumnVectorPtr& data() const { return data_; }

 private:
  friend class BufferManager;
  PinnedBlock(BufferManager* bm, uint64_t frame_id, ColumnVectorPtr data)
      : bm_(bm), frame_id_(frame_id), data_(std::move(data)) {}

  BufferManager* bm_ = nullptr;
  uint64_t frame_id_ = 0;
  ColumnVectorPtr data_;
};

/// Thread-safe block cache. One mutex guards the frame table; loaders run
/// under it, so concurrent Pin calls serialize on a miss (acceptable: decode
/// cost dominates and correctness under TSan stays simple).
class BufferManager {
 public:
  /// `capacity` = frames (decoded blocks) held resident.
  explicit BufferManager(size_t capacity);

  using Loader = std::function<Result<ColumnVectorPtr>()>;

  /// Returns the cached block for `key`, loading it with `loader` on a miss
  /// (evicting an unpinned frame first when at capacity).
  Result<PinnedBlock> Pin(const BlockKey& key, const Loader& loader);

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t overcommits = 0;  ///< admissions past capacity (all frames pinned)
  };
  Stats stats() const;

  size_t capacity() const { return capacity_; }
  size_t resident() const;

 private:
  friend class PinnedBlock;

  struct Frame {
    uint64_t id = 0;
    BlockKey key;
    ColumnVectorPtr data;
    int64_t pins = 0;
    bool referenced = true;  ///< clock second-chance bit
  };

  void Unpin(uint64_t frame_id);
  /// Evicts one unpinned frame if the pool is at/over capacity. Returns
  /// false when every frame is pinned (caller overcommits).
  bool MaybeEvictLocked() DBSP_REQUIRES(mu_);

  /// The buffer-manager latch: the innermost lock of the engine's ordering
  /// (commit lock -> catalog publish -> WAL append -> buffer latch,
  /// DESIGN.md §13) — nothing else may be acquired while holding it.
  const size_t capacity_;
  mutable Mutex mu_;
  uint64_t next_frame_id_ DBSP_GUARDED_BY(mu_) = 1;
  std::unordered_map<BlockKey, std::unique_ptr<Frame>, BlockKeyHash> frames_
      DBSP_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Frame*> by_id_ DBSP_GUARDED_BY(mu_);
  std::vector<uint64_t> clock_ DBSP_GUARDED_BY(mu_);  ///< admission order
  size_t hand_ DBSP_GUARDED_BY(mu_) = 0;
  Stats stats_ DBSP_GUARDED_BY(mu_);
};

}  // namespace dbspinner
