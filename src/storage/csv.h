// CSV import/export for tables (the COPY statement's engine).
//
// Format: RFC-4180-style CSV with a header row of column names. Fields
// containing the delimiter, quotes, or newlines are double-quoted with
// internal quotes doubled. NULL is an empty unquoted field (an explicitly
// quoted empty string "" is an empty VARCHAR, not NULL).

#pragma once

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace dbspinner {

/// Writes `table` as CSV to `path` (header + one line per row).
Status WriteCsv(const Table& table, const std::string& path, char delim = ',');

/// Reads a CSV file written in the format above and appends its rows to a
/// fresh table with `schema` (values cast to the column types; the header
/// row is validated for column count, names are not enforced).
Result<TablePtr> ReadCsv(const Schema& schema, const std::string& path,
                         char delim = ',');

}  // namespace dbspinner
