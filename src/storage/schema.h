// Schema: ordered, typed column list of a table or intermediate result.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace dbspinner {

/// One column: normalized (lower-case) name and logical type.
struct Column {
  std::string name;
  TypeId type;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered column list. Column names within a schema need not be unique
/// (e.g. join outputs); positional access is authoritative.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(std::string name, TypeId type);

  /// First index whose name matches (case-insensitive), or nullopt.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// All indices whose name matches (case-insensitive).
  std::vector<size_t> FindAllColumns(const std::string& name) const;

  /// Structural equality (names + types, ordered).
  bool Equals(const Schema& other) const { return columns_ == other.columns_; }

  /// Same column count and pairwise-coercible types (names ignored) — the
  /// compatibility required by UNION and by iterative-CTE working tables.
  bool TypesCompatible(const Schema& other) const;

  /// "(name TYPE, name TYPE, ...)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace dbspinner
