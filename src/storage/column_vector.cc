#include "storage/column_vector.h"

#include <cassert>

namespace dbspinner {

void ColumnVector::Reserve(size_t n) {
  nulls_.reserve(n);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
    case TypeId::kNull:
      break;
  }
}

void ColumnVector::AppendInt64Raw(int64_t v) {
  ints_.push_back(v);
  nulls_.push_back(0);
  ++size_;
}

void ColumnVector::AppendDouble(double v) {
  doubles_.push_back(v);
  nulls_.push_back(0);
  ++size_;
}

void ColumnVector::AppendString(std::string v) {
  strings_.push_back(std::move(v));
  nulls_.push_back(0);
  ++size_;
}

void ColumnVector::AppendNull() {
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
      ints_.push_back(0);
      break;
    case TypeId::kDouble:
      doubles_.push_back(0);
      break;
    case TypeId::kString:
      strings_.emplace_back();
      break;
    case TypeId::kNull:
      break;
  }
  nulls_.push_back(1);
  ++size_;
}

void ColumnVector::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case TypeId::kBool:
      AppendBool(v.bool_value());
      return;
    case TypeId::kInt64:
      AppendInt64(v.AsInt64());
      return;
    case TypeId::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case TypeId::kString:
      if (v.type() == TypeId::kString) {
        AppendString(v.string_value());
      } else {
        AppendString(v.ToString());
      }
      return;
    case TypeId::kNull:
      AppendNull();
      return;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  assert(i < size_);
  if (nulls_[i]) return Value::Null(type_);
  switch (type_) {
    case TypeId::kBool:
      return Value::Bool(ints_[i] != 0);
    case TypeId::kInt64:
      return Value::Int64(ints_[i]);
    case TypeId::kDouble:
      return Value::Double(doubles_[i]);
    case TypeId::kString:
      return Value::String(strings_[i]);
    case TypeId::kNull:
      break;
  }
  return Value::Null();
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  if (src.nulls_[i]) {
    AppendNull();
    return;
  }
  if (src.type_ == type_) {
    switch (type_) {
      case TypeId::kBool:
      case TypeId::kInt64:
        AppendInt64Raw(src.ints_[i]);
        return;
      case TypeId::kDouble:
        AppendDouble(src.doubles_[i]);
        return;
      case TypeId::kString:
        AppendString(src.strings_[i]);
        return;
      case TypeId::kNull:
        AppendNull();
        return;
    }
  }
  // Coercing path (e.g. INT64 source into DOUBLE column).
  Append(src.GetValue(i));
}

ColumnVectorPtr ColumnVector::Gather(const std::vector<uint32_t>& sel) const {
  auto out = std::make_shared<ColumnVector>(type_);
  out->AppendGathered(*this, sel);
  return out;
}

void ColumnVector::AppendGathered(const ColumnVector& src,
                                  const std::vector<uint32_t>& sel) {
  if (src.type_ != type_) {
    // Coercing path (e.g. INT64 source into DOUBLE column).
    Reserve(size_ + sel.size());
    for (uint32_t i : sel) AppendFrom(src, i);
    return;
  }
  size_t base = size_;
  size_t n = sel.size();
  nulls_.resize(base + n);
  for (size_t i = 0; i < n; ++i) nulls_[base + i] = src.nulls_[sel[i]];
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64: {
      size_t ibase = ints_.size();
      ints_.resize(ibase + n);
      const int64_t* in = src.ints_.data();
      int64_t* out = ints_.data() + ibase;
      for (size_t i = 0; i < n; ++i) out[i] = in[sel[i]];
      break;
    }
    case TypeId::kDouble: {
      size_t dbase = doubles_.size();
      doubles_.resize(dbase + n);
      const double* in = src.doubles_.data();
      double* out = doubles_.data() + dbase;
      for (size_t i = 0; i < n; ++i) out[i] = in[sel[i]];
      break;
    }
    case TypeId::kString: {
      strings_.reserve(strings_.size() + n);
      for (size_t i = 0; i < n; ++i) strings_.push_back(src.strings_[sel[i]]);
      break;
    }
    case TypeId::kNull:
      break;
  }
  size_ = base + n;
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t begin,
                               size_t count) {
  if (count == 0) return;
  if (src.type_ != type_) {
    Reserve(size_ + count);
    for (size_t i = 0; i < count; ++i) AppendFrom(src, begin + i);
    return;
  }
  nulls_.insert(nulls_.end(), src.nulls_.begin() + begin,
                src.nulls_.begin() + begin + count);
  switch (type_) {
    case TypeId::kBool:
    case TypeId::kInt64:
      ints_.insert(ints_.end(), src.ints_.begin() + begin,
                   src.ints_.begin() + begin + count);
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                      src.doubles_.begin() + begin + count);
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), src.strings_.begin() + begin,
                      src.strings_.begin() + begin + count);
      break;
    case TypeId::kNull:
      break;
  }
  size_ += count;
}

void ColumnVector::AppendAll(const ColumnVector& src) {
  AppendRange(src, 0, src.size_);
}

size_t ColumnVector::HashAt(size_t i) const {
  if (nulls_[i]) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kBool:
      return std::hash<int64_t>()(ints_[i] + 2);
    case TypeId::kInt64: {
      double d = static_cast<double>(ints_[i]);
      if (static_cast<int64_t>(d) == ints_[i]) return std::hash<double>()(d);
      return std::hash<int64_t>()(ints_[i]);
    }
    case TypeId::kDouble:
      return std::hash<double>()(doubles_[i]);
    case TypeId::kString:
      return std::hash<std::string>()(strings_[i]);
    case TypeId::kNull:
      break;
  }
  return 0;
}

bool ColumnVector::EqualsAt(size_t i, const ColumnVector& other,
                            size_t j) const {
  bool an = nulls_[i] != 0;
  bool bn = other.nulls_[j] != 0;
  if (an || bn) return an && bn;
  if (type_ == other.type_) {
    switch (type_) {
      case TypeId::kBool:
      case TypeId::kInt64:
        return ints_[i] == other.ints_[j];
      case TypeId::kDouble:
        return doubles_[i] == other.doubles_[j];
      case TypeId::kString:
        return strings_[i] == other.strings_[j];
      case TypeId::kNull:
        return true;
    }
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    return NumericAt(i) == other.NumericAt(j);
  }
  return false;
}

}  // namespace dbspinner
