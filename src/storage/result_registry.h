// ResultRegistry: the executor's lookup table of named intermediate results.
//
// This is the structure described in paper §VI-A: a two-column map from name
// to {schema, pointer to in-memory data}. The `rename` operator mutates this
// map: it re-points a name at another entry's storage, releasing whatever the
// target name previously referenced. Because rename is O(1) and copies no
// rows, it is the mechanism behind the "minimizing data movement"
// optimization (Fig 8).

#pragma once

#include <string>
#include <unordered_map>

#include "common/status.h"
#include "storage/table.h"

namespace dbspinner {

/// Named intermediate results of one executing query.
class ResultRegistry {
 public:
  /// Installs a scope prefix prepended to every name on Put/Get/Exists/
  /// Rename/Remove. The server layer sets a per-session scope ("s<id>:") so
  /// two sessions executing programs with identical temp names ("__working",
  /// "__delta", ...) can never collide, even if a future executor shares a
  /// registry across queries. The prefix is invisible to callers — they keep
  /// using unscoped names.
  void set_scope(std::string scope) { scope_ = std::move(scope); }
  const std::string& scope() const { return scope_; }

  /// Binds `name` to `table`, replacing (and releasing) any previous binding.
  void Put(const std::string& name, TablePtr table);

  /// Looks up a result by (case-insensitive) name.
  Result<TablePtr> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;

  /// The paper's `rename` operator: re-points `new_name` at the storage
  /// currently named `old_name` and removes `old_name`. If `new_name`
  /// already exists its storage is released (its entry is overwritten).
  /// Fails with Internal if `old_name` is unbound: a rename from an unbound
  /// source can only come from a malformed Program, never from user SQL.
  Status Rename(const std::string& old_name, const std::string& new_name);

  /// Drops one binding (no-op if absent).
  void Remove(const std::string& name);

  /// Releases everything (end of query).
  void Clear();

  /// Shallow snapshot of every binding, for executor checkpoints. O(#names):
  /// only the name -> TablePtr map is copied, never row data, which is sound
  /// because all result mutation in the engine is copy-on-write — a step
  /// that changes a result rebinds the name to a fresh table rather than
  /// mutating shared storage.
  std::unordered_map<std::string, TablePtr> Snapshot() const {
    return results_;
  }

  /// Rolls every binding back to a snapshot taken earlier with Snapshot().
  void Restore(std::unordered_map<std::string, TablePtr> snapshot) {
    results_ = std::move(snapshot);
  }

  size_t size() const { return results_.size(); }

 private:
  /// The scoped, case-folded map key for `name`.
  std::string Key(const std::string& name) const;

  std::string scope_;
  std::unordered_map<std::string, TablePtr> results_;
};

}  // namespace dbspinner
