#include "storage/schema.h"

#include "common/string_util.h"

namespace dbspinner {

void Schema::AddColumn(std::string name, TypeId type) {
  columns_.push_back(Column{ToLower(name), type});
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == lower) return i;
  }
  return std::nullopt;
}

std::vector<size_t> Schema::FindAllColumns(const std::string& name) const {
  std::vector<size_t> out;
  std::string lower = ToLower(name);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == lower) out.push_back(i);
  }
  return out;
}

bool Schema::TypesCompatible(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    TypeId a = columns_[i].type;
    TypeId b = other.columns_[i].type;
    if (!IsImplicitlyCoercible(b, a) && !IsImplicitlyCoercible(a, b)) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dbspinner
