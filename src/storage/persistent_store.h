// StorageManager: durable columnar storage for one database directory
// (DESIGN.md §12).
//
// Layout of a database directory:
//   MANIFEST    atomic snapshot of the durable state (tables, checkpoints,
//               last folded LSN, extent id counter); replaced by
//               write-tmp + fsync + rename + directory fsync
//   wal.log     framed records appended since the manifest (storage/wal.h)
//   data/e<id>.col
//               one immutable compressed column extent per file: header,
//               back-to-back codec block payloads, checksummed block
//               directory footer
//
// Commit protocol (the crash-consistency invariant the durability harness
// kills against):
//   1. write + fsync every extent of the operation        (orphans are GC'd)
//   2. append + fsync one WAL frame describing it          <- commit point
//   3. publish in memory (catalog version / checkpoint map)
// Every `manifest_every` WAL appends the log is folded: a fresh MANIFEST is
// swapped in, the WAL reset, and unreferenced extents unlinked. Recovery =
// load MANIFEST, replay WAL frames with lsn > manifest.last_lsn, stop at the
// first torn frame.
//
// All durable mutations serialize on one internal mutex; reads of recovered
// images and block loads are lock-free apart from the extent-handle cache
// and the buffer-manager pool lock.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/buffer_manager.h"
#include "storage/codec.h"
#include "storage/storage_options.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace dbspinner {

/// Durable description of one table: its schema plus one extent per column.
/// The image is the unit the WAL and manifest reference; the extents it
/// names are immutable once written.
struct TableImage {
  Schema schema;
  std::optional<size_t> primary_key_col;
  uint64_t rows = 0;
  std::vector<uint64_t> extent_ids;  ///< one per column, schema order
};

/// Durable loop-operator state (mirrors exec LoopState without depending on
/// the exec layer).
struct LoopImage {
  int32_t id = 0;
  int64_t iteration = 0;
  int64_t last_update_count = 0;
  int64_t cumulative_updates = 0;
  std::optional<TableImage> previous;
  std::optional<TableImage> delta_snapshot;
};

/// Durable executor checkpoint: program counter + loop states + the COW
/// result-registry contents, all as extent-backed images. `fingerprint`
/// guards resume against a program whose compiled shape changed between
/// runs (different build / options): a mismatch ignores the checkpoint.
struct CheckpointImage {
  uint64_t fingerprint = 0;
  uint64_t pc = 0;
  std::vector<LoopImage> loops;
  std::vector<std::pair<std::string, TableImage>> registry;
};

class StorageManager;

/// Streaming reader over one TableImage: yields one Table per aligned block
/// of rows, each assembled zero-copy from buffer-manager-pinned decoded
/// columns. The working set is one block per column regardless of table
/// size — this is the larger-than-memory scan path (bench_storage drives it
/// at 25% / 50% / 100% memory budgets).
class ExtentTableReader {
 public:
  ExtentTableReader(StorageManager* store, TableImage image);

  /// Next block as a Table (usable directly as a DataChunk base), or nullptr
  /// after the last block.
  Result<TablePtr> Next();

  /// Rows yielded so far.
  uint64_t rows_read() const { return rows_read_; }

 private:
  StorageManager* store_;
  TableImage image_;
  uint32_t next_block_ = 0;
  uint64_t rows_read_ = 0;
};

/// One open database directory. Thread-safe.
class StorageManager {
 public:
  /// Opens (creating if needed) the directory and runs recovery: loads the
  /// manifest, replays the WAL tail, and exposes the recovered table /
  /// checkpoint images. `faults` may be null; it feeds the
  /// "storage.wal.append" / "storage.extent.flush" / "storage.manifest.swap"
  /// injection and abort sites.
  static Result<std::unique_ptr<StorageManager>> Open(
      const PersistenceOptions& options, FaultInjector* faults);

  // --- durable catalog operations (callers hold the engine commit lock) ---

  /// Makes a create/replace of `name` durable: writes the table's extents,
  /// appends the WAL frame (the commit point), updates the recovered-image
  /// map. The in-memory catalog publish must happen only after this returns
  /// OK.
  Status LogUpsertTable(const std::string& name, std::optional<size_t> pk,
                        const Table& table);

  /// Makes a DROP durable (WAL frame; extents are GC'd at the next fold).
  Status LogDropTable(const std::string& name);

  /// Forces a manifest fold now (COMMIT of an explicit transaction does
  /// this so multi-statement transactions become durable as one swap).
  Status WriteManifestNow();

  // --- recovered state ----------------------------------------------------

  /// Durable tables as of open + subsequent logged operations.
  std::map<std::string, TableImage> tables() const;

  /// Fully materializes an image by streaming its blocks through the buffer
  /// manager.
  Result<TablePtr> ReadTable(const TableImage& image);

  // --- durable executor checkpoints --------------------------------------

  /// Writes extents for `table` (no WAL frame; the caller references the
  /// returned image from a checkpoint). Fsyncs when `sync` is configured.
  Result<TableImage> WriteTableExtents(const Table& table);

  /// Appends a checkpoint WAL frame for program `tag` (replacing any prior
  /// checkpoint under the same tag).
  Status SaveCheckpoint(uint64_t tag, const CheckpointImage& image);

  /// Logs that program `tag` finished; its checkpoint is obsolete.
  Status ClearCheckpoint(uint64_t tag);

  /// Latest durable checkpoint for `tag`, if any.
  std::optional<CheckpointImage> FindCheckpoint(uint64_t tag) const;

  // --- internals shared with ExtentTableReader ---------------------------

  /// Pins block `block_index` of extent `extent_id` (loading + decoding on
  /// miss). `type` must match the extent's stored type.
  Result<PinnedBlock> PinBlock(uint64_t extent_id, uint32_t block_index,
                               TypeId type);

  /// Parsed block directory of one extent.
  struct ExtentInfo {
    uint64_t id = 0;
    TypeId type = TypeId::kInt64;
    uint64_t total_rows = 0;
    struct BlockMeta {
      uint64_t offset = 0;
      uint64_t checksum = 0;
      uint32_t rows = 0;
      uint32_t payload_bytes = 0;
      uint8_t codec = 0;
    };
    std::vector<BlockMeta> blocks;
  };
  Result<std::shared_ptr<const ExtentInfo>> GetExtentInfo(uint64_t extent_id);

  BufferManager& buffer_manager() { return buffer_; }
  const PersistenceOptions& options() const { return options_; }

  struct Counters {
    int64_t extents_written = 0;
    int64_t blocks_written = 0;
    int64_t bytes_written = 0;       ///< compressed payload bytes
    int64_t raw_bytes_encoded = 0;   ///< pre-compression estimate
    int64_t wal_appends = 0;
    int64_t manifests_written = 0;
    int64_t extents_collected = 0;   ///< GC'd at manifest folds
    int64_t wal_records_replayed = 0;
    int64_t tables_recovered = 0;
    int64_t checkpoints_recovered = 0;
  };
  Counters counters() const;

 private:
  StorageManager(PersistenceOptions options, FaultInjector* faults);

  /// Runs at Open before the manager is shared; Open takes mu_ anyway so
  /// the analysis sees the guarded recovery writes as locked.
  Status Recover() DBSP_REQUIRES(mu_);
  Status ApplyWalRecord(const WalRecord& rec) DBSP_REQUIRES(mu_);

  std::string ExtentPath(uint64_t extent_id) const;
  Result<TableImage> WriteTableExtentsLocked(
      const Table& table, std::optional<size_t> pk) DBSP_REQUIRES(mu_);
  Status AppendWalLocked(WalRecordType type, const std::string& payload)
      DBSP_REQUIRES(mu_);
  Status WriteManifestLocked() DBSP_REQUIRES(mu_);
  void CollectGarbageLocked() DBSP_REQUIRES(mu_);

  const PersistenceOptions options_;
  FaultInjector* faults_;
  BufferManager buffer_;

  /// The WAL-append lock: third in the engine's ordering (commit lock ->
  /// catalog publish -> WAL append -> buffer latch, DESIGN.md §13). All
  /// durable mutations serialize on it; the WAL appender itself is
  /// lock-free because wal_ is only reachable under mu_.
  mutable Mutex mu_;
  std::unique_ptr<WriteAheadLog> wal_ DBSP_GUARDED_BY(mu_)
      DBSP_PT_GUARDED_BY(mu_);
  std::map<std::string, TableImage> tables_ DBSP_GUARDED_BY(mu_);
  std::map<uint64_t, CheckpointImage> checkpoints_ DBSP_GUARDED_BY(mu_);
  /// Extents handed out by WriteTableExtents that no WAL-visible image
  /// references yet. A manifest fold between the write and the
  /// SaveCheckpoint that adopts them must not GC them; ids leave the set
  /// when a checkpoint image referencing them commits. (Ids stranded by an
  /// abandoned persist are reclaimed by the GC of the next process — the
  /// set is empty at recovery.)
  std::vector<uint64_t> inflight_extents_ DBSP_GUARDED_BY(mu_);

  uint64_t next_extent_id_ DBSP_GUARDED_BY(mu_) = 1;
  uint64_t next_lsn_ DBSP_GUARDED_BY(mu_) = 1;
  uint64_t manifest_lsn_ DBSP_GUARDED_BY(mu_) = 0;  ///< last folded lsn
  int64_t appends_since_manifest_ DBSP_GUARDED_BY(mu_) = 0;
  Counters counters_ DBSP_GUARDED_BY(mu_);

  /// Leaf lock for the parsed-block-directory cache; never held together
  /// with mu_ (GetExtentInfo drops it across the file read).
  mutable Mutex extent_cache_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const ExtentInfo>>
      extent_cache_ DBSP_GUARDED_BY(extent_cache_mu_);
};

}  // namespace dbspinner
