#include "storage/persistent_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace dbspinner {

namespace {

constexpr uint64_t kExtentMagic = 0x4442535045585431ull;    // "DBSPEXT1"
constexpr uint64_t kExtentTailMagic = 0x3154584550534244ull;
constexpr uint64_t kManifestMagic = 0x444253504d414e31ull;  // "DBSPMAN1"
constexpr uint64_t kManifestTailMagic = 0x314e414d50534244ull;

constexpr size_t kExtentHeaderBytes = 9;   // u64 magic + u8 type
constexpr size_t kExtentTailBytes = 28;    // u32 count + u64 rows + u64 sum + u64 magic
constexpr size_t kExtentEntryBytes = 25;   // u64 off + u64 sum + u32 rows + u32 len + u8 codec

constexpr uint32_t kMaxColumns = 1u << 16;
constexpr uint32_t kMaxManifestEntries = 1u << 24;

Status PosixError(const std::string& what) {
  return Status::ExecutionError(what + ": " + std::strerror(errno));
}

Status WriteFileAndSync(const std::string& path, const std::string& bytes,
                        bool sync) {
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return PosixError("cannot create " + path);
  size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = PosixError("write " + path);
      ::close(fd);
      return st;
    }
    done += static_cast<size_t>(n);
  }
  if (sync && ::fsync(fd) != 0) {
    Status st = PosixError("fsync " + path);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return PosixError("open dir " + dir);
  if (::fsync(fd) != 0) {
    Status st = PosixError("fsync dir " + dir);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("cannot open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    Status s = PosixError("fstat " + path);
    ::close(fd);
    return s;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < out->size()) {
    ssize_t n = ::read(fd, out->data() + done, out->size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = PosixError("read " + path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;  // racing truncate; caller validates sizes
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  out->resize(done);
  return Status::OK();
}

Status PreadExact(const std::string& path, uint64_t offset, size_t size,
                  std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return PosixError("cannot open " + path);
  out->resize(size);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::pread(fd, out->data() + done, size - done,
                        static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = PosixError("pread " + path);
      ::close(fd);
      return s;
    }
    if (n == 0) {
      ::close(fd);
      return Status::Corruption("extent " + path + " truncated: wanted " +
                                std::to_string(size) + " bytes at offset " +
                                std::to_string(offset));
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

// --- image serialization ---------------------------------------------------

void EncodeSchema(const Schema& schema, ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& c : schema.columns()) {
    w->PutString(c.name);
    w->PutU8(static_cast<uint8_t>(c.type));
  }
}

Status DecodeSchema(ByteReader* r, Schema* out) {
  uint32_t ncols = 0;
  DBSP_RETURN_NOT_OK(r->ReadU32(&ncols));
  if (ncols > kMaxColumns) {
    return Status::Corruption("schema column count out of range: " +
                              std::to_string(ncols));
  }
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column c;
    DBSP_RETURN_NOT_OK(r->ReadString(&c.name));
    uint8_t type = 0;
    DBSP_RETURN_NOT_OK(r->ReadU8(&type));
    if (type > static_cast<uint8_t>(TypeId::kString)) {
      return Status::Corruption("unknown column type id " +
                                std::to_string(type));
    }
    c.type = static_cast<TypeId>(type);
    cols.push_back(std::move(c));
  }
  *out = Schema(std::move(cols));
  return Status::OK();
}

void EncodeTableImage(const TableImage& img, ByteWriter* w) {
  w->PutU8(img.primary_key_col.has_value() ? 1 : 0);
  w->PutU32(img.primary_key_col.has_value()
                ? static_cast<uint32_t>(*img.primary_key_col)
                : 0);
  EncodeSchema(img.schema, w);
  w->PutU64(img.rows);
  for (uint64_t id : img.extent_ids) w->PutU64(id);
}

Status DecodeTableImage(ByteReader* r, TableImage* out) {
  uint8_t has_pk = 0;
  uint32_t pk = 0;
  DBSP_RETURN_NOT_OK(r->ReadU8(&has_pk));
  DBSP_RETURN_NOT_OK(r->ReadU32(&pk));
  DBSP_RETURN_NOT_OK(DecodeSchema(r, &out->schema));
  out->primary_key_col.reset();
  if (has_pk != 0) {
    if (pk >= out->schema.num_columns()) {
      return Status::Corruption("primary key ordinal out of range");
    }
    out->primary_key_col = pk;
  }
  DBSP_RETURN_NOT_OK(r->ReadU64(&out->rows));
  out->extent_ids.resize(out->schema.num_columns());
  for (uint64_t& id : out->extent_ids) {
    DBSP_RETURN_NOT_OK(r->ReadU64(&id));
  }
  return Status::OK();
}

void EncodeOptionalImage(const std::optional<TableImage>& img, ByteWriter* w) {
  w->PutU8(img.has_value() ? 1 : 0);
  if (img.has_value()) EncodeTableImage(*img, w);
}

Status DecodeOptionalImage(ByteReader* r, std::optional<TableImage>* out) {
  uint8_t has = 0;
  DBSP_RETURN_NOT_OK(r->ReadU8(&has));
  out->reset();
  if (has != 0) {
    TableImage img;
    DBSP_RETURN_NOT_OK(DecodeTableImage(r, &img));
    *out = std::move(img);
  }
  return Status::OK();
}

void EncodeCheckpointImage(const CheckpointImage& cp, ByteWriter* w) {
  w->PutU64(cp.fingerprint);
  w->PutU64(cp.pc);
  w->PutU32(static_cast<uint32_t>(cp.loops.size()));
  for (const LoopImage& loop : cp.loops) {
    w->PutU32(static_cast<uint32_t>(loop.id));
    w->PutI64(loop.iteration);
    w->PutI64(loop.last_update_count);
    w->PutI64(loop.cumulative_updates);
    EncodeOptionalImage(loop.previous, w);
    EncodeOptionalImage(loop.delta_snapshot, w);
  }
  w->PutU32(static_cast<uint32_t>(cp.registry.size()));
  for (const auto& [name, img] : cp.registry) {
    w->PutString(name);
    EncodeTableImage(img, w);
  }
}

Status DecodeCheckpointImage(ByteReader* r, CheckpointImage* out) {
  DBSP_RETURN_NOT_OK(r->ReadU64(&out->fingerprint));
  DBSP_RETURN_NOT_OK(r->ReadU64(&out->pc));
  uint32_t nloops = 0;
  DBSP_RETURN_NOT_OK(r->ReadU32(&nloops));
  if (nloops > kMaxManifestEntries) {
    return Status::Corruption("checkpoint loop count out of range");
  }
  out->loops.clear();
  out->loops.reserve(nloops);
  for (uint32_t i = 0; i < nloops; ++i) {
    LoopImage loop;
    uint32_t id = 0;
    DBSP_RETURN_NOT_OK(r->ReadU32(&id));
    loop.id = static_cast<int32_t>(id);
    DBSP_RETURN_NOT_OK(r->ReadI64(&loop.iteration));
    DBSP_RETURN_NOT_OK(r->ReadI64(&loop.last_update_count));
    DBSP_RETURN_NOT_OK(r->ReadI64(&loop.cumulative_updates));
    DBSP_RETURN_NOT_OK(DecodeOptionalImage(r, &loop.previous));
    DBSP_RETURN_NOT_OK(DecodeOptionalImage(r, &loop.delta_snapshot));
    out->loops.push_back(std::move(loop));
  }
  uint32_t nreg = 0;
  DBSP_RETURN_NOT_OK(r->ReadU32(&nreg));
  if (nreg > kMaxManifestEntries) {
    return Status::Corruption("checkpoint registry count out of range");
  }
  out->registry.clear();
  out->registry.reserve(nreg);
  for (uint32_t i = 0; i < nreg; ++i) {
    std::string name;
    TableImage img;
    DBSP_RETURN_NOT_OK(r->ReadString(&name));
    DBSP_RETURN_NOT_OK(DecodeTableImage(r, &img));
    out->registry.emplace_back(std::move(name), std::move(img));
  }
  return Status::OK();
}

void CollectImageExtents(const TableImage& img, std::vector<uint64_t>* out) {
  out->insert(out->end(), img.extent_ids.begin(), img.extent_ids.end());
}

void CollectCheckpointExtents(const CheckpointImage& cp,
                              std::vector<uint64_t>* out) {
  for (const LoopImage& loop : cp.loops) {
    if (loop.previous) CollectImageExtents(*loop.previous, out);
    if (loop.delta_snapshot) CollectImageExtents(*loop.delta_snapshot, out);
  }
  for (const auto& [name, img] : cp.registry) CollectImageExtents(img, out);
}

uint64_t MaxImageExtent(const TableImage& img) {
  uint64_t mx = 0;
  for (uint64_t id : img.extent_ids) mx = std::max(mx, id);
  return mx;
}

// Estimated uncompressed footprint of one column, for compression-ratio
// counters.
int64_t RawColumnBytes(const ColumnVector& col) {
  if (col.type() == TypeId::kString) {
    int64_t total = 0;
    for (const std::string& s : col.strings()) {
      total += 4 + static_cast<int64_t>(s.size());
    }
    return total;
  }
  return static_cast<int64_t>(col.size()) * 8;
}

}  // namespace

// --- StorageManager --------------------------------------------------------

StorageManager::StorageManager(PersistenceOptions options,
                               FaultInjector* faults)
    : options_(std::move(options)),
      faults_(faults),
      buffer_(options_.buffer_pool_blocks) {}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    const PersistenceOptions& options, FaultInjector* faults) {
  if (options.path.empty()) {
    return Status::InvalidArgument("persistence.path is empty");
  }
  std::unique_ptr<StorageManager> store(new StorageManager(options, faults));
  {
    // No concurrency exists yet (the manager is unpublished); the lock is
    // taken so the analysis sees Recover's guarded-state writes as held.
    MutexLock lock(store->mu_);
    DBSP_RETURN_NOT_OK(store->Recover());
  }
  return store;
}

std::string StorageManager::ExtentPath(uint64_t extent_id) const {
  return options_.path + "/data/e" + std::to_string(extent_id) + ".col";
}

Status StorageManager::Recover() {
  std::error_code ec;
  std::filesystem::create_directories(options_.path + "/data", ec);
  if (ec) {
    return Status::ExecutionError("cannot create database directory " +
                                  options_.path + ": " + ec.message());
  }

  // 1. Manifest: the durable state as of the last fold.
  const std::string manifest_path = options_.path + "/MANIFEST";
  if (std::filesystem::exists(manifest_path)) {
    std::string bytes;
    DBSP_RETURN_NOT_OK(ReadWholeFile(manifest_path, &bytes));
    if (bytes.size() < 16) {
      return Status::Corruption("manifest too small");
    }
    ByteReader tail(reinterpret_cast<const uint8_t*>(bytes.data()) +
                        bytes.size() - 16,
                    16);
    uint64_t checksum = 0, tail_magic = 0;
    DBSP_RETURN_NOT_OK(tail.ReadU64(&checksum));
    DBSP_RETURN_NOT_OK(tail.ReadU64(&tail_magic));
    if (tail_magic != kManifestTailMagic ||
        checksum != BlockChecksum(bytes.data(), bytes.size() - 16)) {
      return Status::Corruption("manifest checksum mismatch");
    }
    ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()),
                 bytes.size() - 16);
    uint64_t magic = 0;
    DBSP_RETURN_NOT_OK(r.ReadU64(&magic));
    if (magic != kManifestMagic) {
      return Status::Corruption("bad manifest magic");
    }
    DBSP_RETURN_NOT_OK(r.ReadU64(&manifest_lsn_));
    DBSP_RETURN_NOT_OK(r.ReadU64(&next_extent_id_));
    uint32_t ntables = 0;
    DBSP_RETURN_NOT_OK(r.ReadU32(&ntables));
    if (ntables > kMaxManifestEntries) {
      return Status::Corruption("manifest table count out of range");
    }
    for (uint32_t i = 0; i < ntables; ++i) {
      std::string name;
      TableImage img;
      DBSP_RETURN_NOT_OK(r.ReadString(&name));
      DBSP_RETURN_NOT_OK(DecodeTableImage(&r, &img));
      tables_[std::move(name)] = std::move(img);
    }
    uint32_t ncps = 0;
    DBSP_RETURN_NOT_OK(r.ReadU32(&ncps));
    if (ncps > kMaxManifestEntries) {
      return Status::Corruption("manifest checkpoint count out of range");
    }
    for (uint32_t i = 0; i < ncps; ++i) {
      uint64_t tag = 0;
      CheckpointImage cp;
      DBSP_RETURN_NOT_OK(r.ReadU64(&tag));
      DBSP_RETURN_NOT_OK(DecodeCheckpointImage(&r, &cp));
      checkpoints_[tag] = std::move(cp);
    }
    if (!r.exhausted()) {
      return Status::Corruption("manifest has trailing bytes");
    }
    next_lsn_ = manifest_lsn_ + 1;
  }

  // 2. WAL tail: operations committed after the manifest. Torn-tail
  // tolerant; frames folded into the manifest already (lsn <= manifest_lsn_)
  // are skipped so a crash between manifest swap and WAL reset stays
  // idempotent.
  std::vector<WalRecord> records;
  DBSP_RETURN_NOT_OK(WriteAheadLog::Replay(options_.path + "/wal.log",
                                           &records));
  for (const WalRecord& rec : records) {
    if (rec.lsn <= manifest_lsn_) continue;
    DBSP_RETURN_NOT_OK(ApplyWalRecord(rec));
    ++counters_.wal_records_replayed;
    next_lsn_ = std::max(next_lsn_, rec.lsn + 1);
  }

  // 3. Extent id watermark: never reuse an id referenced by any image.
  uint64_t max_extent = next_extent_id_ > 0 ? next_extent_id_ - 1 : 0;
  for (const auto& [name, img] : tables_) {
    max_extent = std::max(max_extent, MaxImageExtent(img));
  }
  for (const auto& [tag, cp] : checkpoints_) {
    std::vector<uint64_t> ids;
    CollectCheckpointExtents(cp, &ids);
    for (uint64_t id : ids) max_extent = std::max(max_extent, id);
  }
  next_extent_id_ = max_extent + 1;

  counters_.tables_recovered = static_cast<int64_t>(tables_.size());
  counters_.checkpoints_recovered = static_cast<int64_t>(checkpoints_.size());

  DBSP_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Open(options_.path + "/wal.log",
                                                  options_.sync));
  return Status::OK();
}

Status StorageManager::ApplyWalRecord(const WalRecord& rec) {
  ByteReader r(reinterpret_cast<const uint8_t*>(rec.payload.data()),
               rec.payload.size());
  switch (rec.type) {
    case WalRecordType::kUpsertTable: {
      std::string name;
      TableImage img;
      DBSP_RETURN_NOT_OK(r.ReadString(&name));
      DBSP_RETURN_NOT_OK(DecodeTableImage(&r, &img));
      tables_[std::move(name)] = std::move(img);
      return Status::OK();
    }
    case WalRecordType::kDropTable: {
      std::string name;
      DBSP_RETURN_NOT_OK(r.ReadString(&name));
      tables_.erase(name);
      return Status::OK();
    }
    case WalRecordType::kCheckpoint: {
      uint64_t tag = 0;
      CheckpointImage cp;
      DBSP_RETURN_NOT_OK(r.ReadU64(&tag));
      DBSP_RETURN_NOT_OK(DecodeCheckpointImage(&r, &cp));
      checkpoints_[tag] = std::move(cp);
      return Status::OK();
    }
    case WalRecordType::kCheckpointClear: {
      uint64_t tag = 0;
      DBSP_RETURN_NOT_OK(r.ReadU64(&tag));
      checkpoints_.erase(tag);
      return Status::OK();
    }
  }
  return Status::Corruption("unknown wal record type " +
                            std::to_string(static_cast<uint32_t>(rec.type)));
}

Result<TableImage> StorageManager::WriteTableExtentsLocked(
    const Table& table, std::optional<size_t> pk) {
  TableImage img;
  img.schema = table.schema();
  img.primary_key_col = pk;
  img.rows = table.num_rows();
  img.extent_ids.reserve(table.num_columns());

  const size_t block_rows = std::max<size_t>(1, options_.block_rows);
  for (size_t c = 0; c < table.num_columns(); ++c) {
    DBSP_RETURN_NOT_OK(MaybeInjectFault(faults_, "storage.extent.flush"));
    const ColumnVector& col = table.column(c);
    const uint64_t extent_id = next_extent_id_++;

    ByteWriter file;
    file.PutU64(kExtentMagic);
    file.PutU8(static_cast<uint8_t>(col.type()));
    std::vector<ExtentInfo::BlockMeta> metas;
    size_t row = 0;
    do {
      size_t count = std::min(block_rows, col.size() - row);
      EncodedBlock block = EncodeBlock(col, row, count);
      ExtentInfo::BlockMeta meta;
      meta.offset = file.size();
      meta.checksum = BlockChecksum(block.payload.data(), block.payload.size());
      meta.rows = block.rows;
      meta.payload_bytes = static_cast<uint32_t>(block.payload.size());
      meta.codec = static_cast<uint8_t>(block.codec);
      file.PutBytes(block.payload.data(), block.payload.size());
      metas.push_back(meta);
      row += count;
      ++counters_.blocks_written;
      counters_.bytes_written += static_cast<int64_t>(block.payload.size());
      if (count == 0) break;  // empty column: one zero-row block
    } while (row < col.size());

    ByteWriter footer;
    for (const auto& m : metas) {
      footer.PutU64(m.offset);
      footer.PutU64(m.checksum);
      footer.PutU32(m.rows);
      footer.PutU32(m.payload_bytes);
      footer.PutU8(m.codec);
    }
    uint64_t footer_checksum =
        BlockChecksum(footer.buffer().data(), footer.buffer().size());
    file.PutBytes(footer.buffer().data(), footer.buffer().size());
    file.PutU32(static_cast<uint32_t>(metas.size()));
    file.PutU64(col.size());
    file.PutU64(footer_checksum);
    file.PutU64(kExtentTailMagic);

    DBSP_RETURN_NOT_OK(
        WriteFileAndSync(ExtentPath(extent_id), file.buffer(), options_.sync));
    img.extent_ids.push_back(extent_id);
    ++counters_.extents_written;
    counters_.raw_bytes_encoded += RawColumnBytes(col);
  }
  if (options_.sync && table.num_columns() > 0) {
    DBSP_RETURN_NOT_OK(SyncDir(options_.path + "/data"));
  }
  return img;
}

Status StorageManager::AppendWalLocked(WalRecordType type,
                                       const std::string& payload) {
  if (options_.wal) {
    DBSP_RETURN_NOT_OK(wal_->Append(type, next_lsn_, payload, faults_));
    ++counters_.wal_appends;
  }
  ++next_lsn_;
  return Status::OK();
}

Status StorageManager::LogUpsertTable(const std::string& name,
                                      std::optional<size_t> pk,
                                      const Table& table) {
  MutexLock lock(mu_);
  DBSP_ASSIGN_OR_RETURN(TableImage img, WriteTableExtentsLocked(table, pk));
  ByteWriter w;
  w.PutString(name);
  EncodeTableImage(img, &w);
  DBSP_RETURN_NOT_OK(AppendWalLocked(WalRecordType::kUpsertTable, w.buffer()));
  tables_[name] = std::move(img);
  if (++appends_since_manifest_ >= options_.manifest_every) {
    // Fold failures are maintenance failures, not commit failures: the WAL
    // frame above is already durable, so surfacing an error here would
    // report a committed operation as failed. The next append retries.
    (void)WriteManifestLocked();
  }
  return Status::OK();
}

Status StorageManager::LogDropTable(const std::string& name) {
  MutexLock lock(mu_);
  ByteWriter w;
  w.PutString(name);
  DBSP_RETURN_NOT_OK(AppendWalLocked(WalRecordType::kDropTable, w.buffer()));
  tables_.erase(name);
  if (++appends_since_manifest_ >= options_.manifest_every) {
    (void)WriteManifestLocked();
  }
  return Status::OK();
}

Result<TableImage> StorageManager::WriteTableExtents(const Table& table) {
  MutexLock lock(mu_);
  DBSP_ASSIGN_OR_RETURN(TableImage image,
                        WriteTableExtentsLocked(table, std::nullopt));
  // Shield the fresh extents from GC until a checkpoint adopts them.
  for (uint64_t id : image.extent_ids) inflight_extents_.push_back(id);
  return image;
}

Status StorageManager::SaveCheckpoint(uint64_t tag,
                                      const CheckpointImage& image) {
  MutexLock lock(mu_);
  ByteWriter w;
  w.PutU64(tag);
  EncodeCheckpointImage(image, &w);
  DBSP_RETURN_NOT_OK(AppendWalLocked(WalRecordType::kCheckpoint, w.buffer()));
  checkpoints_[tag] = image;
  // The checkpoint now references its extents through checkpoints_, so they
  // no longer need the in-flight GC shield.
  std::vector<uint64_t> adopted;
  CollectCheckpointExtents(image, &adopted);
  std::sort(adopted.begin(), adopted.end());
  inflight_extents_.erase(
      std::remove_if(inflight_extents_.begin(), inflight_extents_.end(),
                     [&](uint64_t id) {
                       return std::binary_search(adopted.begin(),
                                                 adopted.end(), id);
                     }),
      inflight_extents_.end());
  if (++appends_since_manifest_ >= options_.manifest_every) {
    (void)WriteManifestLocked();
  }
  return Status::OK();
}

Status StorageManager::ClearCheckpoint(uint64_t tag) {
  MutexLock lock(mu_);
  if (checkpoints_.find(tag) == checkpoints_.end()) return Status::OK();
  ByteWriter w;
  w.PutU64(tag);
  DBSP_RETURN_NOT_OK(
      AppendWalLocked(WalRecordType::kCheckpointClear, w.buffer()));
  checkpoints_.erase(tag);
  if (++appends_since_manifest_ >= options_.manifest_every) {
    (void)WriteManifestLocked();
  }
  return Status::OK();
}

std::optional<CheckpointImage> StorageManager::FindCheckpoint(
    uint64_t tag) const {
  MutexLock lock(mu_);
  auto it = checkpoints_.find(tag);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

Status StorageManager::WriteManifestNow() {
  MutexLock lock(mu_);
  return WriteManifestLocked();
}

Status StorageManager::WriteManifestLocked() {
  ByteWriter w;
  w.PutU64(kManifestMagic);
  const uint64_t folded_lsn = next_lsn_ - 1;
  w.PutU64(folded_lsn);
  w.PutU64(next_extent_id_);
  w.PutU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, img] : tables_) {
    w.PutString(name);
    EncodeTableImage(img, &w);
  }
  w.PutU32(static_cast<uint32_t>(checkpoints_.size()));
  for (const auto& [tag, cp] : checkpoints_) {
    w.PutU64(tag);
    EncodeCheckpointImage(cp, &w);
  }
  uint64_t checksum = BlockChecksum(w.buffer().data(), w.buffer().size());
  w.PutU64(checksum);
  w.PutU64(kManifestTailMagic);

  const std::string tmp_path = options_.path + "/MANIFEST.tmp";
  const std::string manifest_path = options_.path + "/MANIFEST";
  DBSP_RETURN_NOT_OK(WriteFileAndSync(tmp_path, w.buffer(), /*sync=*/true));
  // The swap is the durability boundary of the fold: killed before the
  // rename, recovery uses the old manifest + the (unreset) WAL; killed
  // after, the fresh manifest subsumes the WAL, whose stale frames are
  // filtered by lsn.
  DBSP_RETURN_NOT_OK(MaybeInjectFault(faults_, "storage.manifest.swap"));
  if (::rename(tmp_path.c_str(), manifest_path.c_str()) != 0) {
    return PosixError("rename " + tmp_path);
  }
  DBSP_RETURN_NOT_OK(SyncDir(options_.path));
  manifest_lsn_ = folded_lsn;
  appends_since_manifest_ = 0;
  ++counters_.manifests_written;
  if (options_.wal) {
    DBSP_RETURN_NOT_OK(wal_->Reset());
  }
  CollectGarbageLocked();
  return Status::OK();
}

void StorageManager::CollectGarbageLocked() {
  std::vector<uint64_t> referenced;
  for (const auto& [name, img] : tables_) CollectImageExtents(img, &referenced);
  for (const auto& [tag, cp] : checkpoints_) {
    CollectCheckpointExtents(cp, &referenced);
  }
  referenced.insert(referenced.end(), inflight_extents_.begin(),
                    inflight_extents_.end());
  std::sort(referenced.begin(), referenced.end());

  std::error_code ec;
  std::filesystem::directory_iterator it(options_.path + "/data", ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string fname = entry.path().filename().string();
    if (fname.size() < 6 || fname.compare(0, 1, "e") != 0 ||
        fname.compare(fname.size() - 4, 4, ".col") != 0) {
      continue;
    }
    uint64_t id = 0;
    try {
      id = std::stoull(fname.substr(1, fname.size() - 5));
    } catch (...) {
      continue;
    }
    if (!std::binary_search(referenced.begin(), referenced.end(), id)) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
      if (!rm_ec) ++counters_.extents_collected;
    }
  }
}

std::map<std::string, TableImage> StorageManager::tables() const {
  MutexLock lock(mu_);
  return tables_;
}

Result<std::shared_ptr<const StorageManager::ExtentInfo>>
StorageManager::GetExtentInfo(uint64_t extent_id) {
  {
    MutexLock lock(extent_cache_mu_);
    auto it = extent_cache_.find(extent_id);
    if (it != extent_cache_.end()) return it->second;
  }
  const std::string path = ExtentPath(extent_id);
  std::string bytes;
  Status read = ReadWholeFile(path, &bytes);
  if (!read.ok()) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " unreadable: " + read.message());
  }
  if (bytes.size() < kExtentHeaderBytes + kExtentTailBytes) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " truncated: " + std::to_string(bytes.size()) +
                              " bytes");
  }
  ByteReader head(reinterpret_cast<const uint8_t*>(bytes.data()),
                  kExtentHeaderBytes);
  uint64_t magic = 0;
  uint8_t type = 0;
  DBSP_RETURN_NOT_OK(head.ReadU64(&magic));
  DBSP_RETURN_NOT_OK(head.ReadU8(&type));
  if (magic != kExtentMagic || type > static_cast<uint8_t>(TypeId::kString)) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " has a bad header");
  }
  ByteReader tail(reinterpret_cast<const uint8_t*>(bytes.data()) +
                      bytes.size() - kExtentTailBytes,
                  kExtentTailBytes);
  uint32_t block_count = 0;
  uint64_t total_rows = 0, footer_checksum = 0, tail_magic = 0;
  DBSP_RETURN_NOT_OK(tail.ReadU32(&block_count));
  DBSP_RETURN_NOT_OK(tail.ReadU64(&total_rows));
  DBSP_RETURN_NOT_OK(tail.ReadU64(&footer_checksum));
  DBSP_RETURN_NOT_OK(tail.ReadU64(&tail_magic));
  if (tail_magic != kExtentTailMagic) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " has a bad tail magic (truncated?)");
  }
  const uint64_t footer_bytes =
      static_cast<uint64_t>(block_count) * kExtentEntryBytes;
  if (footer_bytes + kExtentHeaderBytes + kExtentTailBytes > bytes.size()) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " footer overflows file");
  }
  const uint8_t* footer = reinterpret_cast<const uint8_t*>(bytes.data()) +
                          bytes.size() - kExtentTailBytes - footer_bytes;
  if (BlockChecksum(footer, footer_bytes) != footer_checksum) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " footer checksum mismatch");
  }
  auto info = std::make_shared<ExtentInfo>();
  info->id = extent_id;
  info->type = static_cast<TypeId>(type);
  info->total_rows = total_rows;
  info->blocks.resize(block_count);
  ByteReader fr(footer, footer_bytes);
  uint64_t rows_sum = 0;
  const uint64_t data_end = bytes.size() - kExtentTailBytes - footer_bytes;
  for (auto& m : info->blocks) {
    DBSP_RETURN_NOT_OK(fr.ReadU64(&m.offset));
    DBSP_RETURN_NOT_OK(fr.ReadU64(&m.checksum));
    DBSP_RETURN_NOT_OK(fr.ReadU32(&m.rows));
    DBSP_RETURN_NOT_OK(fr.ReadU32(&m.payload_bytes));
    DBSP_RETURN_NOT_OK(fr.ReadU8(&m.codec));
    if (m.offset < kExtentHeaderBytes ||
        m.offset + m.payload_bytes > data_end ||
        m.codec > static_cast<uint8_t>(BlockCodec::kBitPack)) {
      return Status::Corruption("extent " + std::to_string(extent_id) +
                                " block directory entry out of bounds");
    }
    rows_sum += m.rows;
  }
  if (rows_sum != total_rows) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " row count mismatch: footer says " +
                              std::to_string(total_rows) + ", blocks sum to " +
                              std::to_string(rows_sum));
  }
  MutexLock lock(extent_cache_mu_);
  auto [it, inserted] = extent_cache_.emplace(extent_id, std::move(info));
  return it->second;
}

Result<PinnedBlock> StorageManager::PinBlock(uint64_t extent_id,
                                             uint32_t block_index,
                                             TypeId type) {
  DBSP_ASSIGN_OR_RETURN(std::shared_ptr<const ExtentInfo> info,
                        GetExtentInfo(extent_id));
  if (block_index >= info->blocks.size()) {
    return Status::Corruption("block " + std::to_string(block_index) +
                              " out of range for extent " +
                              std::to_string(extent_id));
  }
  if (info->type != type &&
      !(info->type == TypeId::kNull || type == TypeId::kNull)) {
    return Status::Corruption("extent " + std::to_string(extent_id) +
                              " stores type " +
                              std::to_string(static_cast<int>(info->type)) +
                              ", reader expects " +
                              std::to_string(static_cast<int>(type)));
  }
  const std::string path = ExtentPath(extent_id);
  const ExtentInfo::BlockMeta meta = info->blocks[block_index];
  const TypeId block_type = info->type;
  BlockKey key{extent_id, block_index};
  return buffer_.Pin(key, [&]() -> Result<ColumnVectorPtr> {
    std::string payload;
    DBSP_RETURN_NOT_OK(
        PreadExact(path, meta.offset, meta.payload_bytes, &payload));
    if (BlockChecksum(payload.data(), payload.size()) != meta.checksum) {
      return Status::Corruption("block " + std::to_string(block_index) +
                                " of extent " + std::to_string(extent_id) +
                                " failed its checksum");
    }
    auto col = std::make_shared<ColumnVector>(block_type);
    col->Reserve(meta.rows);
    DBSP_RETURN_NOT_OK(DecodeBlock(
        static_cast<BlockCodec>(meta.codec), block_type, meta.rows,
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
        col.get()));
    return ColumnVectorPtr(std::move(col));
  });
}

Result<TablePtr> StorageManager::ReadTable(const TableImage& image) {
  ExtentTableReader reader(this, image);
  TablePtr out = Table::Make(image.schema);
  out->Reserve(image.rows);
  for (;;) {
    DBSP_ASSIGN_OR_RETURN(TablePtr block, reader.Next());
    if (block == nullptr) break;
    out->AppendAll(*block);
  }
  if (out->num_rows() != image.rows) {
    return Status::Corruption(
        "table image expected " + std::to_string(image.rows) +
        " rows, extents yielded " + std::to_string(out->num_rows()));
  }
  return out;
}

StorageManager::Counters StorageManager::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

// --- ExtentTableReader -----------------------------------------------------

ExtentTableReader::ExtentTableReader(StorageManager* store, TableImage image)
    : store_(store), image_(std::move(image)) {}

Result<TablePtr> ExtentTableReader::Next() {
  const size_t ncols = image_.schema.num_columns();
  if (ncols == 0 || image_.extent_ids.size() != ncols) {
    if (ncols != image_.extent_ids.size()) {
      return Status::Corruption("table image has " +
                                std::to_string(image_.extent_ids.size()) +
                                " extents for " + std::to_string(ncols) +
                                " columns");
    }
    return TablePtr(nullptr);  // zero-column tables have no stored blocks
  }
  DBSP_ASSIGN_OR_RETURN(auto first_info,
                        store_->GetExtentInfo(image_.extent_ids[0]));
  if (next_block_ >= first_info->blocks.size()) return TablePtr(nullptr);

  std::vector<ColumnVectorPtr> cols;
  cols.reserve(ncols);
  size_t block_rows = 0;
  for (size_t c = 0; c < ncols; ++c) {
    DBSP_ASSIGN_OR_RETURN(
        PinnedBlock pin,
        store_->PinBlock(image_.extent_ids[c], next_block_,
                         image_.schema.column(c).type));
    if (c == 0) {
      block_rows = pin.data()->size();
    } else if (pin.data()->size() != block_rows) {
      return Status::Corruption(
          "column extents disagree on block " + std::to_string(next_block_) +
          " row count: " + std::to_string(block_rows) + " vs " +
          std::to_string(pin.data()->size()));
    }
    // The decoded column shared_ptr outlives the pin; the pool just drops
    // its cache reference on eviction.
    cols.push_back(pin.data());
  }
  ++next_block_;
  rows_read_ += block_rows;
  return Table::FromColumns(image_.schema, std::move(cols));
}

}  // namespace dbspinner
