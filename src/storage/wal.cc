#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "storage/codec.h"

namespace dbspinner {

namespace {

// Frames beyond this are treated as corruption during replay: no single
// catalog commit or checkpoint payload approaches 1 GiB, and the bound stops
// a torn size field from driving a giant allocation.
constexpr uint32_t kMaxFramePayload = 1u << 30;

Status WriteFully(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::ExecutionError(std::string("wal write failed: ") +
                                    std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, bool sync) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::ExecutionError("cannot open wal " + path + ": " +
                                  std::strerror(errno));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(fd, path, sync));
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status WriteAheadLog::Append(WalRecordType type, uint64_t lsn,
                             const std::string& payload,
                             FaultInjector* faults) {
  DBSP_RETURN_NOT_OK(MaybeInjectFault(faults, "storage.wal.append"));
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("wal payload too large");
  }
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(static_cast<uint32_t>(type));
  w.PutU64(lsn);
  w.PutU64(BlockChecksum(payload.data(), payload.size()));
  w.PutBytes(payload.data(), payload.size());
  const std::string& frame = w.buffer();
  DBSP_RETURN_NOT_OK(WriteFully(fd_, frame.data(), frame.size()));
  if (sync_ && ::fsync(fd_) != 0) {
    return Status::ExecutionError(std::string("wal fsync failed: ") +
                                  std::strerror(errno));
  }
  ++frames_appended_;
  bytes_appended_ += static_cast<int64_t>(frame.size());
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::ExecutionError(std::string("wal truncate failed: ") +
                                  std::strerror(errno));
  }
  if (sync_ && ::fsync(fd_) != 0) {
    return Status::ExecutionError(std::string("wal fsync failed: ") +
                                  std::strerror(errno));
  }
  return Status::OK();
}

Status WriteAheadLog::Replay(const std::string& path,
                             std::vector<WalRecord>* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::OK();  // no log yet: empty history
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();

  ByteReader r(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  while (r.remaining() > 0) {
    WalRecord rec;
    uint32_t size = 0, type = 0;
    uint64_t checksum = 0;
    // Any short read, size overflow or checksum mismatch is the torn tail of
    // an append the crash interrupted: stop replay, keep what we have.
    if (!r.ReadU32(&size).ok() || !r.ReadU32(&type).ok() ||
        !r.ReadU64(&rec.lsn).ok() || !r.ReadU64(&checksum).ok()) {
      break;
    }
    if (size > kMaxFramePayload || size > r.remaining()) break;
    rec.payload.resize(size);
    if (!r.ReadBytes(rec.payload.data(), size).ok()) break;
    if (BlockChecksum(rec.payload.data(), rec.payload.size()) != checksum) {
      break;
    }
    rec.type = static_cast<WalRecordType>(type);
    out->push_back(std::move(rec));
  }
  return Status::OK();
}

}  // namespace dbspinner
