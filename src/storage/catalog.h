// Catalog: persistent-name -> base table mapping plus table metadata.

#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dbspinner {

/// Metadata and storage of one base table.
struct CatalogEntry {
  std::string name;                       ///< normalized (lower-case)
  TablePtr table;                         ///< current contents
  std::optional<size_t> primary_key_col;  ///< declared PK ordinal, if any
};

/// Thread-compatible name -> table registry for base (user) tables.
/// Temporary/intermediate results live in ResultRegistry instead.
class Catalog {
 public:
  /// Registers a new table. Fails with AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, TablePtr table,
                     std::optional<size_t> primary_key_col = std::nullopt);

  /// Removes a table. Fails with NotFound unless `if_exists`.
  Status DropTable(const std::string& name, bool if_exists = false);

  /// Looks up a table by (case-insensitive) name.
  Result<CatalogEntry*> Get(const std::string& name);

  bool Exists(const std::string& name) const;

  /// Replaces the contents of an existing table (used by UPDATE/DELETE).
  Status ReplaceContents(const std::string& name, TablePtr table);

  std::vector<std::string> TableNames() const;

  /// Snapshot / restore of the whole catalog state. Because every DML path
  /// is copy-on-write (tables are never mutated in place once registered),
  /// a snapshot is a shallow copy of the name -> entry map; restoring it
  /// rolls back all DDL and DML performed since. Powers BEGIN/ROLLBACK.
  std::unordered_map<std::string, CatalogEntry> Snapshot() const {
    return tables_;
  }
  void Restore(std::unordered_map<std::string, CatalogEntry> snapshot) {
    tables_ = std::move(snapshot);
  }

 private:
  std::unordered_map<std::string, CatalogEntry> tables_;
};

}  // namespace dbspinner
