// Catalog: persistent-name -> base table mapping plus table metadata.
//
// Concurrency model (DESIGN.md §10): the catalog is a *versioned* store.
// Every mutation (CREATE/DROP/ReplaceContents/Restore) copies the current
// name -> entry map, applies the change, and publishes the copy as a new
// immutable version under the store mutex — a versioned swap. Readers that
// must stay consistent across a whole statement pin a version with
// PinSnapshot(): the returned handle serves Get/Exists/TableNames from that
// version forever, unaffected by concurrent DDL/DML, and rejects writes.
// Because tables are never mutated in place once registered (engine-wide
// copy-on-write), a version is a shallow map — pinning costs one shared_ptr.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/table.h"

namespace dbspinner {

/// Metadata and storage of one base table.
struct CatalogEntry {
  std::string name;                       ///< normalized (lower-case)
  TablePtr table;                         ///< current contents
  std::optional<size_t> primary_key_col;  ///< declared PK ordinal, if any
};

/// Versioned name -> table registry for base (user) tables. Copyable handle:
/// copies share the same underlying store (PinSnapshot returns a read-only
/// copy pinned to one version). Temporary/intermediate results live in
/// ResultRegistry instead.
///
/// Thread-safety: mutators and PinSnapshot/version() are safe to call
/// concurrently. Get() on an *unpinned* handle returns a pointer whose
/// version stays alive only until this handle's next catalog call, so
/// concurrent readers must each use their own pinned snapshot; the engine's
/// write statements additionally serialize on the Database commit lock.
class Catalog {
 public:
  Catalog() : store_(std::make_shared<Store>()) {}

  /// Registers a new table. Fails with AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, TablePtr table,
                     std::optional<size_t> primary_key_col = std::nullopt);

  /// Removes a table. Fails with NotFound unless `if_exists`.
  Status DropTable(const std::string& name, bool if_exists = false);

  /// Looks up a table by (case-insensitive) name. The entry must be treated
  /// as immutable: all content changes go through ReplaceContents, which
  /// publishes a new version (copy-on-write) instead of mutating in place.
  Result<CatalogEntry*> Get(const std::string& name);

  bool Exists(const std::string& name) const;

  /// Replaces the contents of an existing table (used by UPDATE/DELETE).
  Status ReplaceContents(const std::string& name, TablePtr table);

  std::vector<std::string> TableNames() const;

  /// Read-only handle pinned to the current version: its reads are immune
  /// to concurrent mutation and its writes fail with InvalidArgument.
  Catalog PinSnapshot() const;

  /// True for handles returned by PinSnapshot().
  bool is_snapshot() const { return pinned_ != nullptr; }

  /// Monotone version id of the store (or of the pinned version).
  uint64_t version() const;

  /// Snapshot / restore of the whole catalog state as a plain map. Because
  /// every DML path is copy-on-write, the snapshot is a shallow copy of the
  /// name -> entry map; Restore publishes it as a fresh version, rolling
  /// back all DDL and DML performed since. Powers BEGIN/ROLLBACK.
  std::unordered_map<std::string, CatalogEntry> Snapshot() const;
  void Restore(std::unordered_map<std::string, CatalogEntry> snapshot);

 private:
  /// One immutable published state of the catalog.
  struct Version {
    uint64_t id = 0;
    std::unordered_map<std::string, CatalogEntry> tables;
  };

  /// The catalog-publish lock: second in the engine's ordering (commit lock
  /// -> catalog publish -> WAL append -> buffer latch, DESIGN.md §13).
  /// Held only for the pointer swap / shallow map copy — never across I/O.
  struct Store {
    mutable Mutex mu;
    std::shared_ptr<const Version> current DBSP_GUARDED_BY(mu) =
        std::make_shared<Version>();
  };

  /// The version this handle reads: the pin, or the store's current one.
  /// For unpinned handles the result is also cached in keepalive_ so that
  /// pointers returned by Get() survive a concurrent writer's swap until
  /// the handle's next read.
  std::shared_ptr<const Version> View() const;

  /// Copy-current / mutate / publish under the store mutex. `mutate`
  /// returns the outcome; on error nothing is published.
  Status Mutate(
      const std::function<Status(std::unordered_map<std::string, CatalogEntry>*)>&
          mutate);

  std::shared_ptr<Store> store_;
  std::shared_ptr<const Version> pinned_;  ///< set on snapshot handles
  mutable std::shared_ptr<const Version> keepalive_;
};

}  // namespace dbspinner
