#include "storage/buffer_manager.h"

#include <algorithm>

namespace dbspinner {

PinnedBlock& PinnedBlock::operator=(PinnedBlock&& o) noexcept {
  if (this != &o) {
    if (bm_ != nullptr) bm_->Unpin(frame_id_);
    bm_ = o.bm_;
    frame_id_ = o.frame_id_;
    data_ = std::move(o.data_);
    o.bm_ = nullptr;
    o.frame_id_ = 0;
  }
  return *this;
}

PinnedBlock::~PinnedBlock() {
  if (bm_ != nullptr) bm_->Unpin(frame_id_);
}

BufferManager::BufferManager(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

Result<PinnedBlock> BufferManager::Pin(const BlockKey& key,
                                       const Loader& loader) {
  MutexLock lock(mu_);
  auto it = frames_.find(key);
  if (it != frames_.end()) {
    Frame* f = it->second.get();
    ++f->pins;
    f->referenced = true;
    ++stats_.hits;
    return PinnedBlock(this, f->id, f->data);
  }
  ++stats_.misses;
  while (frames_.size() >= capacity_) {
    if (!MaybeEvictLocked()) {
      ++stats_.overcommits;  // every frame pinned: admit over capacity
      break;
    }
  }
  // Load while holding the pool lock: see class comment.
  auto loaded = loader();
  if (!loaded.ok()) return loaded.status();

  auto frame = std::make_unique<Frame>();
  frame->id = next_frame_id_++;
  frame->key = key;
  frame->data = std::move(loaded).value();
  frame->pins = 1;
  frame->referenced = true;
  Frame* f = frame.get();
  frames_.emplace(key, std::move(frame));
  by_id_.emplace(f->id, f);
  clock_.push_back(f->id);
  return PinnedBlock(this, f->id, f->data);
}

bool BufferManager::MaybeEvictLocked() {
  if (clock_.empty()) return false;
  // Two full sweeps: the first may only clear second-chance bits, the second
  // then finds a victim unless every frame is pinned.
  for (size_t step = 0; step < 2 * clock_.size(); ++step) {
    if (hand_ >= clock_.size()) hand_ = 0;
    uint64_t id = clock_[hand_];
    auto idit = by_id_.find(id);
    if (idit == by_id_.end()) {
      // Stale slot left by a previous eviction; drop it in place.
      clock_.erase(clock_.begin() + static_cast<ptrdiff_t>(hand_));
      continue;
    }
    Frame* f = idit->second;
    if (f->pins > 0) {
      ++hand_;
      continue;
    }
    if (f->referenced) {
      f->referenced = false;
      ++hand_;
      continue;
    }
    clock_.erase(clock_.begin() + static_cast<ptrdiff_t>(hand_));
    by_id_.erase(id);
    BlockKey victim = f->key;  // copy: erase destroys the frame owning f->key
    frames_.erase(victim);
    ++stats_.evictions;
    return true;
  }
  return false;
}

void BufferManager::Unpin(uint64_t frame_id) {
  MutexLock lock(mu_);
  auto it = by_id_.find(frame_id);
  if (it == by_id_.end()) return;  // frame already gone (shutdown ordering)
  Frame* f = it->second;
  if (f->pins > 0) --f->pins;
  f->referenced = true;
}

BufferManager::Stats BufferManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

size_t BufferManager::resident() const {
  MutexLock lock(mu_);
  return frames_.size();
}

}  // namespace dbspinner
