// ColumnVector: typed, nullable columnar storage.
//
// One ColumnVector holds all values of one column of a Table. Data is stored
// in a typed std::vector (plus a null bytemap), which keeps the executor's
// hot loops monomorphic; Value is only used at the per-row boundary.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace dbspinner {

class ColumnVector;
using ColumnVectorPtr = std::shared_ptr<ColumnVector>;

/// A single column of nullable values of a fixed TypeId.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n);

  /// Appends a value, implicitly coercing NULL and INT64->DOUBLE.
  /// Precondition: value type is coercible to this column's type.
  void Append(const Value& v);

  void AppendNull();
  void AppendBool(bool b) { AppendInt64Raw(b ? 1 : 0); }
  void AppendInt64(int64_t v) { AppendInt64Raw(v); }
  void AppendDouble(double v);
  void AppendString(std::string v);

  bool IsNull(size_t i) const { return nulls_[i] != 0; }
  bool BoolAt(size_t i) const { return ints_[i] != 0; }
  int64_t Int64At(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Numeric accessor with implicit widening (valid for BOOL/INT64/DOUBLE).
  double NumericAt(size_t i) const {
    return type_ == TypeId::kDouble ? doubles_[i]
                                    : static_cast<double>(ints_[i]);
  }

  /// Boxes row `i` into a Value.
  Value GetValue(size_t i) const;

  /// Appends row `i` of `src` (must have an identical or coercible type).
  void AppendFrom(const ColumnVector& src, size_t i);

  /// New vector containing rows selected by `sel` in order. Same-type copies
  /// run as type-specialized batch loops (no per-row type dispatch); an
  /// empty selection yields an empty vector of this vector's type.
  ColumnVectorPtr Gather(const std::vector<uint32_t>& sel) const;

  /// Appends every row of `src`.
  void AppendAll(const ColumnVector& src);

  /// Appends the contiguous rows [begin, begin + count) of `src`. Same-type
  /// appends are bulk range inserts; type-mismatched appends fall back to
  /// the coercing per-row path.
  void AppendRange(const ColumnVector& src, size_t begin, size_t count);

  /// Appends rows of `src` selected by `sel` in order (batch-specialized
  /// like Gather, but into an existing vector).
  void AppendGathered(const ColumnVector& src,
                      const std::vector<uint32_t>& sel);

  /// Direct access for monomorphic executor loops.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  /// Hash of row i compatible with Value::Hash.
  size_t HashAt(size_t i) const;

  /// Value equality between row i of this and row j of other.
  bool EqualsAt(size_t i, const ColumnVector& other, size_t j) const;

 private:
  void AppendInt64Raw(int64_t v);

  TypeId type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> nulls_;
};

}  // namespace dbspinner
