// Configuration of the durable storage layer (DESIGN.md §12).
//
// Lives in src/storage/ so the StorageManager does not depend on the engine
// layer; EngineOptions embeds it as `persistence`.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dbspinner {

/// Durable on-disk storage (src/storage/persistent_store.{h,cc}). Off by
/// default: the engine stays a pure in-memory library unless a database
/// directory is configured. With persistence on, catalog commits log to a
/// WAL before publication, executor checkpoints serialize the COW registry
/// to compressed extents, and reopening the same path recovers tables and
/// resumable loop checkpoints.
struct PersistenceOptions {
  /// Master toggle. When set, `path` must name a directory (created on open
  /// if absent).
  bool enabled = false;

  /// Database directory: holds MANIFEST, wal.log and data/ extents.
  std::string path;

  /// Write-ahead logging of catalog commits. Off = extents are still
  /// written but commits only become durable at the next manifest swap
  /// (weaker guarantee, fewer fsyncs; the durability harness runs with it
  /// on).
  bool wal = true;

  /// fsync WAL frames and extents at commit points. Off trades crash
  /// durability for speed — used by the differential fuzzer where the
  /// process never crashes, so only the format round-trip is under test.
  bool sync = true;

  /// Rows per compressed block within a column extent.
  size_t block_rows = 4096;

  /// Buffer-manager capacity in decoded blocks. Scans over tables larger
  /// than this stream blocks through clock eviction.
  size_t buffer_pool_blocks = 256;

  /// Fold the WAL into a fresh manifest (and GC unreferenced extents) every
  /// N durable operations. Small values bound recovery replay; the
  /// durability harness uses this to exercise the manifest-swap abort site
  /// mid-program.
  int64_t manifest_every = 16;

  /// Persist executor checkpoints (pc, loop states, COW registry) so an
  /// iterative program killed mid-loop resumes from its last durable
  /// checkpoint on reopen instead of restarting from scratch.
  bool durable_checkpoints = true;
};

}  // namespace dbspinner
