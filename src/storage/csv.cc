#include "storage/csv.h"

#include <fstream>
#include <sstream>

namespace dbspinner {

namespace {

bool NeedsQuoting(const std::string& s, char delim) {
  if (s.empty()) return true;  // distinguish empty string from NULL
  return s.find(delim) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos ||
         s.find('\r') != std::string::npos;
}

void WriteField(std::ostream& out, const std::string& s, char delim,
                bool force_quote) {
  if (!force_quote && !NeedsQuoting(s, delim)) {
    out << s;
    return;
  }
  out << '"';
  for (char c : s) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

// Splits one CSV record (may span lines for quoted fields, which the caller
// has already joined). Each field reports whether it was quoted.
struct Field {
  std::string text;
  bool quoted = false;
};

Result<std::vector<Field>> SplitRecord(const std::string& line, char delim,
                                       size_t line_no) {
  std::vector<Field> fields;
  Field current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.text += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      current.quoted = true;
    } else if (c == delim) {
      fields.push_back(std::move(current));
      current = Field{};
    } else {
      current.text += c;
    }
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field at line " +
                              std::to_string(line_no));
  }
  fields.push_back(std::move(current));
  return fields;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path, char delim) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << delim;
    WriteField(out, schema.column(c).name, delim, false);
  }
  out << '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << delim;
      Value v = table.GetValue(r, c);
      if (v.is_null()) continue;  // NULL = empty unquoted field
      // Force-quote strings so empty strings round-trip distinctly.
      WriteField(out, v.ToString(), delim,
                 schema.column(c).type == TypeId::kString);
    }
    out << '\n';
  }
  if (!out) {
    return Status::ExecutionError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<TablePtr> ReadCsv(const Schema& schema, const std::string& path,
                         char delim) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  auto table = Table::Make(schema);
  std::string line;
  size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    // Re-join physical lines while inside an unterminated quoted field.
    while (true) {
      size_t quotes = 0;
      for (char c : line) {
        if (c == '"') ++quotes;
      }
      if (quotes % 2 == 0) break;
      std::string next;
      if (!std::getline(in, next)) break;
      ++line_no;
      if (!next.empty() && next.back() == '\r') next.pop_back();
      line += '\n' + next;
    }
    DBSP_ASSIGN_OR_RETURN(std::vector<Field> fields,
                          SplitRecord(line, delim, line_no));
    if (fields.size() != schema.num_columns()) {
      return Status::ParseError(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(schema.num_columns()));
    }
    if (!header_seen) {
      header_seen = true;  // header validated for count only
      continue;
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      const Field& f = fields[c];
      if (f.text.empty() && !f.quoted) {
        row.push_back(Value::Null(schema.column(c).type));
        continue;
      }
      DBSP_ASSIGN_OR_RETURN(
          Value v,
          Value::String(f.text).CastTo(schema.column(c).type));
      row.push_back(std::move(v));
    }
    table->AppendRow(row);
  }
  return table;
}

}  // namespace dbspinner
