// Block codecs for the on-disk columnar format (DESIGN.md §12).
//
// A column extent is a sequence of compressed blocks of `block_rows` rows
// each. EncodeBlock picks the cheapest of four codecs per block by exact
// encoded size: raw, run-length, dictionary, or frame-of-reference
// bit-packing (ints). Decoding is fully bounds-checked: any payload that
// would read out of range, sum runs past the row count, or index outside its
// dictionary surfaces a typed kCorruption status — never UB — so corrupted
// or truncated extents are an error class, not a crash class.
//
// NULLs ride in an optional leading bytemap (values of null rows are stored
// as zero/empty so every codec stays oblivious to them). All integers are
// little-endian fixed-width; the format is a storage format, not a wire
// format, and is only read by the build that wrote it plus its successors.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column_vector.h"

namespace dbspinner {

/// Identifies how one block's payload is encoded. Values are stable: they
/// are written to disk.
enum class BlockCodec : uint8_t {
  kRaw = 0,      ///< fixed-width values / length-prefixed strings
  kRle = 1,      ///< (value, run-length) pairs
  kDict = 2,     ///< distinct-value table + bit-packed indices
  kBitPack = 3,  ///< frame-of-reference minimum + bit-packed deltas (ints)
};

const char* BlockCodecName(BlockCodec codec);

/// One encoded block: `rows` rows of one column compressed into `payload`.
struct EncodedBlock {
  BlockCodec codec = BlockCodec::kRaw;
  uint32_t rows = 0;
  std::string payload;
};

/// Encodes rows [begin, begin + count) of `col`, choosing the smallest
/// applicable codec for the data distribution. `count` must fit uint32.
EncodedBlock EncodeBlock(const ColumnVector& col, size_t begin, size_t count);

/// Appends exactly `rows` decoded rows to `out` (which must have the
/// column's type). Every read is bounds-checked; malformed payloads return
/// kCorruption and leave `out` in an unspecified but valid state.
Status DecodeBlock(BlockCodec codec, TypeId type, uint32_t rows,
                   const uint8_t* data, size_t size, ColumnVector* out);

/// FNV-1a 64-bit over a byte range — the block / footer checksum. Only needs
/// to catch torn writes and bit rot deterministically, not adversaries.
uint64_t BlockChecksum(const void* data, size_t size);

/// Append-only little-endian byte buffer used by the codec, WAL and extent
/// writers.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutFixed(&v, sizeof(v)); }
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  /// u32 length prefix + bytes.
  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  size_t size() const { return buf_.size(); }
  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PutFixed(const void* v, size_t n) {
    buf_.append(static_cast<const char*>(v), n);
  }
  std::string buf_;
};

/// Bounds-checked little-endian reader over a borrowed byte range. Every
/// accessor fails with kCorruption instead of reading past the end.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Status ReadU8(uint8_t* v) { return ReadFixed(v, sizeof(*v)); }
  Status ReadU32(uint32_t* v) { return ReadFixed(v, sizeof(*v)); }
  Status ReadU64(uint64_t* v) { return ReadFixed(v, sizeof(*v)); }
  Status ReadI64(int64_t* v) { return ReadFixed(v, sizeof(*v)); }
  Status ReadDouble(double* v) { return ReadFixed(v, sizeof(*v)); }
  Status ReadBytes(void* out, size_t n);
  /// u32 length prefix + bytes.
  Status ReadString(std::string* out);
  /// Borrowed view of the next `n` bytes (no copy).
  Status ReadSpan(const uint8_t** out, size_t n);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Status ReadFixed(void* out, size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace dbspinner
