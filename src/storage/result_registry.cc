#include "storage/result_registry.h"

#include "common/string_util.h"

namespace dbspinner {

std::string ResultRegistry::Key(const std::string& name) const {
  return scope_.empty() ? ToLower(name) : scope_ + ToLower(name);
}

void ResultRegistry::Put(const std::string& name, TablePtr table) {
  results_[Key(name)] = std::move(table);
}

Result<TablePtr> ResultRegistry::Get(const std::string& name) const {
  auto it = results_.find(Key(name));
  if (it == results_.end()) {
    return Status::NotFound("intermediate result '" + name + "' is not bound");
  }
  return it->second;
}

bool ResultRegistry::Exists(const std::string& name) const {
  return results_.count(Key(name)) > 0;
}

Status ResultRegistry::Rename(const std::string& old_name,
                              const std::string& new_name) {
  std::string old_key = Key(old_name);
  std::string new_key = Key(new_name);
  auto it = results_.find(old_key);
  if (it == results_.end()) {
    // Distinct from the NotFound a missing catalog table produces: a rename
    // whose source is unbound means the Program referenced a result it never
    // materialized — an engine invariant violation, not a user error. The
    // differential fuzzer relies on this classification to separate engine
    // bugs from ordinary query failures.
    return Status::Internal("rename source '" + old_name +
                            "' is not bound in the result registry");
  }
  TablePtr moved = std::move(it->second);
  results_.erase(it);
  // Overwriting releases whatever `new_name` pointed at (paper §VI-A).
  results_[new_key] = std::move(moved);
  return Status::OK();
}

void ResultRegistry::Remove(const std::string& name) {
  results_.erase(Key(name));
}

void ResultRegistry::Clear() { results_.clear(); }

}  // namespace dbspinner
