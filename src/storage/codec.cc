#include "storage/codec.h"

#include <cstring>
#include <unordered_map>

namespace dbspinner {

const char* BlockCodecName(BlockCodec codec) {
  switch (codec) {
    case BlockCodec::kRaw:
      return "raw";
    case BlockCodec::kRle:
      return "rle";
    case BlockCodec::kDict:
      return "dict";
    case BlockCodec::kBitPack:
      return "bitpack";
  }
  return "unknown";
}

uint64_t BlockChecksum(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

Status ByteReader::ReadFixed(void* out, size_t n) {
  if (n > remaining()) {
    return Status::Corruption("block payload truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadBytes(void* out, size_t n) { return ReadFixed(out, n); }

Status ByteReader::ReadSpan(const uint8_t** out, size_t n) {
  if (n > remaining()) {
    return Status::Corruption("block payload truncated: need " +
                              std::to_string(n) + " bytes, have " +
                              std::to_string(remaining()));
  }
  *out = data_ + pos_;
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadString(std::string* out) {
  uint32_t len = 0;
  DBSP_RETURN_NOT_OK(ReadU32(&len));
  if (len > remaining()) {
    return Status::Corruption("string length " + std::to_string(len) +
                              " exceeds remaining payload " +
                              std::to_string(remaining()));
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

namespace {

// --- null bytemap ----------------------------------------------------------

// Writes `u8 has_nulls [+ count bytes]`; null rows store zero values in the
// value streams so codecs never special-case them.
void WriteNulls(const ColumnVector& col, size_t begin, size_t count,
                ByteWriter* w) {
  bool any = false;
  for (size_t i = 0; i < count && !any; ++i) any = col.IsNull(begin + i);
  w->PutU8(any ? 1 : 0);
  if (!any) return;
  for (size_t i = 0; i < count; ++i) {
    w->PutU8(col.IsNull(begin + i) ? 1 : 0);
  }
}

Status ReadNulls(ByteReader* r, uint32_t rows, std::vector<uint8_t>* nulls) {
  uint8_t any = 0;
  DBSP_RETURN_NOT_OK(r->ReadU8(&any));
  nulls->clear();
  if (any == 0) return Status::OK();
  nulls->resize(rows);
  return r->ReadBytes(nulls->data(), rows);
}

// --- bit packing -----------------------------------------------------------

int BitsFor(uint64_t range) {
  int bits = 0;
  while (range != 0) {
    ++bits;
    range >>= 1;
  }
  return bits;
}

size_t PackedBytes(size_t count, int width) {
  return (count * static_cast<size_t>(width) + 7) / 8;
}

// Widths are capped at kMaxPackWidth so a value never straddles the 64-bit
// accumulator: at value entry fewer than 8 bits are buffered, and
// 7 + 56 <= 63 keeps every shift in range. Wider data takes the raw codec.
constexpr int kMaxPackWidth = 56;

// LSB-first packing into a little-endian bit stream: value i occupies bits
// [i*width, (i+1)*width).
void PackBits(const std::vector<uint64_t>& vals, int width, ByteWriter* w) {
  if (width == 0) return;
  uint64_t acc = 0;
  int used = 0;
  for (uint64_t v : vals) {
    acc |= v << used;
    used += width;
    while (used >= 8) {
      w->PutU8(static_cast<uint8_t>(acc & 0xff));
      acc >>= 8;
      used -= 8;
    }
  }
  if (used > 0) w->PutU8(static_cast<uint8_t>(acc & 0xff));
}

Status UnpackBits(ByteReader* r, size_t count, int width,
                  std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  if (width == 0) {
    out->assign(count, 0);
    return Status::OK();
  }
  const uint8_t* bytes = nullptr;
  size_t nbytes = PackedBytes(count, width);
  DBSP_RETURN_NOT_OK(r->ReadSpan(&bytes, nbytes));
  uint64_t acc = 0;
  int avail = 0;
  size_t next = 0;
  const uint64_t mask = (1ull << width) - 1;
  for (size_t i = 0; i < count; ++i) {
    while (avail < width) {
      acc |= static_cast<uint64_t>(bytes[next++]) << avail;
      avail += 8;
    }
    out->push_back(acc & mask);
    acc >>= width;
    avail -= width;
  }
  return Status::OK();
}

// --- INT64 / BOOL ----------------------------------------------------------

struct IntPlan {
  BlockCodec codec;
  size_t encoded_size;
  // rle
  std::vector<std::pair<int64_t, uint32_t>> runs;
  // bitpack
  int64_t base = 0;
  int width = 0;
  // dict
  std::vector<int64_t> dict;
  std::vector<uint32_t> indices;
  int index_width = 0;
};

IntPlan PlanInts(const std::vector<int64_t>& vals) {
  IntPlan plan;
  const size_t n = vals.size();

  // raw
  plan.codec = BlockCodec::kRaw;
  plan.encoded_size = 8 * n;

  // rle
  std::vector<std::pair<int64_t, uint32_t>> runs;
  for (size_t i = 0; i < n;) {
    size_t j = i + 1;
    while (j < n && vals[j] == vals[i]) ++j;
    runs.emplace_back(vals[i], static_cast<uint32_t>(j - i));
    i = j;
  }
  size_t rle_size = 12 * runs.size();
  if (rle_size < plan.encoded_size) {
    plan.codec = BlockCodec::kRle;
    plan.encoded_size = rle_size;
    plan.runs = runs;
  }

  if (n == 0) return plan;

  // bitpack: frame-of-reference deltas in uint64 space. INT64_MIN..INT64_MAX
  // ranges wrap to width 64, which disqualifies the codec (raw wins anyway).
  int64_t lo = vals[0], hi = vals[0];
  for (int64_t v : vals) {
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  uint64_t range = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);
  int width = BitsFor(range);
  if (width <= kMaxPackWidth) {
    size_t bp_size = 8 + 1 + PackedBytes(n, width);
    if (bp_size < plan.encoded_size) {
      plan.codec = BlockCodec::kBitPack;
      plan.encoded_size = bp_size;
      plan.base = lo;
      plan.width = width;
    }
  }

  // dict: worth considering only when far fewer distinct values than rows.
  std::unordered_map<int64_t, uint32_t> ids;
  std::vector<int64_t> dict;
  std::vector<uint32_t> indices;
  indices.reserve(n);
  bool viable = true;
  for (int64_t v : vals) {
    auto [it, inserted] = ids.try_emplace(v, static_cast<uint32_t>(dict.size()));
    if (inserted) {
      dict.push_back(v);
      if (dict.size() > n / 2 + 1) {
        viable = false;  // mostly-distinct data: dict can't beat raw/bitpack
        break;
      }
    }
    indices.push_back(it->second);
  }
  if (viable) {
    int iw = dict.size() <= 1 ? 0 : BitsFor(dict.size() - 1);
    size_t dict_size = 4 + 8 * dict.size() + 1 + PackedBytes(n, iw);
    if (dict_size < plan.encoded_size) {
      plan.codec = BlockCodec::kDict;
      plan.encoded_size = dict_size;
      plan.dict = std::move(dict);
      plan.indices = std::move(indices);
      plan.index_width = iw;
    }
  }
  return plan;
}

EncodedBlock EncodeInts(const ColumnVector& col, size_t begin, size_t count) {
  std::vector<int64_t> vals(count);
  for (size_t i = 0; i < count; ++i) {
    vals[i] = col.IsNull(begin + i) ? 0 : col.Int64At(begin + i);
  }
  IntPlan plan = PlanInts(vals);

  EncodedBlock block;
  block.codec = plan.codec;
  block.rows = static_cast<uint32_t>(count);
  ByteWriter w;
  WriteNulls(col, begin, count, &w);
  switch (plan.codec) {
    case BlockCodec::kRaw:
      for (int64_t v : vals) w.PutI64(v);
      break;
    case BlockCodec::kRle:
      for (const auto& [v, run] : plan.runs) {
        w.PutI64(v);
        w.PutU32(run);
      }
      break;
    case BlockCodec::kBitPack: {
      w.PutI64(plan.base);
      w.PutU8(static_cast<uint8_t>(plan.width));
      std::vector<uint64_t> deltas(count);
      for (size_t i = 0; i < count; ++i) {
        deltas[i] = static_cast<uint64_t>(vals[i]) -
                    static_cast<uint64_t>(plan.base);
      }
      PackBits(deltas, plan.width, &w);
      break;
    }
    case BlockCodec::kDict: {
      w.PutU32(static_cast<uint32_t>(plan.dict.size()));
      for (int64_t v : plan.dict) w.PutI64(v);
      w.PutU8(static_cast<uint8_t>(plan.index_width));
      std::vector<uint64_t> idx(plan.indices.begin(), plan.indices.end());
      PackBits(idx, plan.index_width, &w);
      break;
    }
  }
  block.payload = w.Take();
  return block;
}

// --- DOUBLE ----------------------------------------------------------------

EncodedBlock EncodeDoubles(const ColumnVector& col, size_t begin,
                           size_t count) {
  std::vector<double> vals(count);
  for (size_t i = 0; i < count; ++i) {
    vals[i] = col.IsNull(begin + i) ? 0.0 : col.DoubleAt(begin + i);
  }
  // Runs compare bit patterns so NaN-runs compress and -0.0 != 0.0 survives.
  std::vector<std::pair<double, uint32_t>> runs;
  for (size_t i = 0; i < count;) {
    size_t j = i + 1;
    while (j < count &&
           std::memcmp(&vals[j], &vals[i], sizeof(double)) == 0) {
      ++j;
    }
    runs.emplace_back(vals[i], static_cast<uint32_t>(j - i));
    i = j;
  }

  EncodedBlock block;
  block.rows = static_cast<uint32_t>(count);
  ByteWriter w;
  WriteNulls(col, begin, count, &w);
  if (12 * runs.size() < 8 * count) {
    block.codec = BlockCodec::kRle;
    for (const auto& [v, run] : runs) {
      w.PutDouble(v);
      w.PutU32(run);
    }
  } else {
    block.codec = BlockCodec::kRaw;
    for (double v : vals) w.PutDouble(v);
  }
  block.payload = w.Take();
  return block;
}

// --- STRING ----------------------------------------------------------------

EncodedBlock EncodeStrings(const ColumnVector& col, size_t begin,
                           size_t count) {
  static const std::string kEmpty;
  size_t raw_size = 0;
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<const std::string*> dict;
  std::vector<uint32_t> indices;
  indices.reserve(count);
  size_t dict_bytes = 0;
  for (size_t i = 0; i < count; ++i) {
    const std::string& s =
        col.IsNull(begin + i) ? kEmpty : col.StringAt(begin + i);
    raw_size += 4 + s.size();
    auto [it, inserted] = ids.try_emplace(s, static_cast<uint32_t>(dict.size()));
    if (inserted) {
      dict.push_back(&it->first);
      dict_bytes += 4 + s.size();
    }
    indices.push_back(it->second);
  }
  int iw = dict.size() <= 1 ? 0 : BitsFor(dict.size() - 1);
  size_t dict_size = 4 + dict_bytes + 1 + PackedBytes(count, iw);

  EncodedBlock block;
  block.rows = static_cast<uint32_t>(count);
  ByteWriter w;
  WriteNulls(col, begin, count, &w);
  if (dict_size < raw_size) {
    block.codec = BlockCodec::kDict;
    w.PutU32(static_cast<uint32_t>(dict.size()));
    for (const std::string* s : dict) w.PutString(*s);
    w.PutU8(static_cast<uint8_t>(iw));
    std::vector<uint64_t> idx(indices.begin(), indices.end());
    PackBits(idx, iw, &w);
  } else {
    block.codec = BlockCodec::kRaw;
    for (size_t i = 0; i < count; ++i) {
      const std::string& s =
          col.IsNull(begin + i) ? kEmpty : col.StringAt(begin + i);
      w.PutString(s);
    }
  }
  block.payload = w.Take();
  return block;
}

// --- decode helpers --------------------------------------------------------

bool RowIsNull(const std::vector<uint8_t>& nulls, size_t i) {
  return !nulls.empty() && nulls[i] != 0;
}

void AppendInt(ColumnVector* out, const std::vector<uint8_t>& nulls, size_t i,
               int64_t v) {
  if (RowIsNull(nulls, i)) {
    out->AppendNull();
  } else if (out->type() == TypeId::kBool) {
    out->AppendBool(v != 0);
  } else {
    out->AppendInt64(v);
  }
}

Status DecodeInts(BlockCodec codec, uint32_t rows, ByteReader* r,
                  ColumnVector* out) {
  std::vector<uint8_t> nulls;
  DBSP_RETURN_NOT_OK(ReadNulls(r, rows, &nulls));
  switch (codec) {
    case BlockCodec::kRaw: {
      for (uint32_t i = 0; i < rows; ++i) {
        int64_t v = 0;
        DBSP_RETURN_NOT_OK(r->ReadI64(&v));
        AppendInt(out, nulls, i, v);
      }
      return Status::OK();
    }
    case BlockCodec::kRle: {
      uint64_t produced = 0;
      while (produced < rows) {
        int64_t v = 0;
        uint32_t run = 0;
        DBSP_RETURN_NOT_OK(r->ReadI64(&v));
        DBSP_RETURN_NOT_OK(r->ReadU32(&run));
        if (run == 0 || produced + run > rows) {
          return Status::Corruption("rle run overflows block: run " +
                                    std::to_string(run) + " at row " +
                                    std::to_string(produced) + " of " +
                                    std::to_string(rows));
        }
        for (uint32_t k = 0; k < run; ++k) {
          AppendInt(out, nulls, produced + k, v);
        }
        produced += run;
      }
      return Status::OK();
    }
    case BlockCodec::kBitPack: {
      int64_t base = 0;
      uint8_t width = 0;
      DBSP_RETURN_NOT_OK(r->ReadI64(&base));
      DBSP_RETURN_NOT_OK(r->ReadU8(&width));
      if (width > kMaxPackWidth) {
        return Status::Corruption("bitpack width " + std::to_string(width) +
                                  " out of range");
      }
      std::vector<uint64_t> deltas;
      DBSP_RETURN_NOT_OK(UnpackBits(r, rows, width, &deltas));
      for (uint32_t i = 0; i < rows; ++i) {
        int64_t v = static_cast<int64_t>(static_cast<uint64_t>(base) +
                                         deltas[i]);
        AppendInt(out, nulls, i, v);
      }
      return Status::OK();
    }
    case BlockCodec::kDict: {
      uint32_t dict_size = 0;
      DBSP_RETURN_NOT_OK(r->ReadU32(&dict_size));
      if (dict_size == 0 && rows > 0) {
        return Status::Corruption("empty int dictionary for non-empty block");
      }
      if (dict_size > rows) {
        return Status::Corruption("int dictionary larger than block: " +
                                  std::to_string(dict_size) + " > " +
                                  std::to_string(rows));
      }
      std::vector<int64_t> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        DBSP_RETURN_NOT_OK(r->ReadI64(&dict[i]));
      }
      uint8_t iw = 0;
      DBSP_RETURN_NOT_OK(r->ReadU8(&iw));
      if (iw > kMaxPackWidth) {
        return Status::Corruption("dict index width out of range");
      }
      std::vector<uint64_t> idx;
      DBSP_RETURN_NOT_OK(UnpackBits(r, rows, iw, &idx));
      for (uint32_t i = 0; i < rows; ++i) {
        if (idx[i] >= dict_size) {
          return Status::Corruption("dict index " + std::to_string(idx[i]) +
                                    " out of range (dict size " +
                                    std::to_string(dict_size) + ")");
        }
        AppendInt(out, nulls, i, dict[idx[i]]);
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unknown int codec");
}

Status DecodeDoubles(BlockCodec codec, uint32_t rows, ByteReader* r,
                     ColumnVector* out) {
  std::vector<uint8_t> nulls;
  DBSP_RETURN_NOT_OK(ReadNulls(r, rows, &nulls));
  auto append = [&](uint32_t i, double v) {
    if (RowIsNull(nulls, i)) {
      out->AppendNull();
    } else {
      out->AppendDouble(v);
    }
  };
  switch (codec) {
    case BlockCodec::kRaw: {
      for (uint32_t i = 0; i < rows; ++i) {
        double v = 0;
        DBSP_RETURN_NOT_OK(r->ReadDouble(&v));
        append(i, v);
      }
      return Status::OK();
    }
    case BlockCodec::kRle: {
      uint64_t produced = 0;
      while (produced < rows) {
        double v = 0;
        uint32_t run = 0;
        DBSP_RETURN_NOT_OK(r->ReadDouble(&v));
        DBSP_RETURN_NOT_OK(r->ReadU32(&run));
        if (run == 0 || produced + run > rows) {
          return Status::Corruption("rle run overflows double block");
        }
        for (uint32_t k = 0; k < run; ++k) {
          append(static_cast<uint32_t>(produced + k), v);
        }
        produced += run;
      }
      return Status::OK();
    }
    default:
      return Status::Corruption(std::string("codec ") + BlockCodecName(codec) +
                                " not valid for DOUBLE");
  }
}

Status DecodeStrings(BlockCodec codec, uint32_t rows, ByteReader* r,
                     ColumnVector* out) {
  std::vector<uint8_t> nulls;
  DBSP_RETURN_NOT_OK(ReadNulls(r, rows, &nulls));
  auto append = [&](uint32_t i, std::string v) {
    if (RowIsNull(nulls, i)) {
      out->AppendNull();
    } else {
      out->AppendString(std::move(v));
    }
  };
  switch (codec) {
    case BlockCodec::kRaw: {
      for (uint32_t i = 0; i < rows; ++i) {
        std::string s;
        DBSP_RETURN_NOT_OK(r->ReadString(&s));
        append(i, std::move(s));
      }
      return Status::OK();
    }
    case BlockCodec::kDict: {
      uint32_t dict_size = 0;
      DBSP_RETURN_NOT_OK(r->ReadU32(&dict_size));
      if (dict_size == 0 && rows > 0) {
        return Status::Corruption(
            "empty string dictionary for non-empty block");
      }
      if (dict_size > rows) {
        return Status::Corruption("string dictionary larger than block");
      }
      std::vector<std::string> dict(dict_size);
      for (uint32_t i = 0; i < dict_size; ++i) {
        DBSP_RETURN_NOT_OK(r->ReadString(&dict[i]));
      }
      uint8_t iw = 0;
      DBSP_RETURN_NOT_OK(r->ReadU8(&iw));
      if (iw > kMaxPackWidth) {
        return Status::Corruption("dict index width out of range");
      }
      std::vector<uint64_t> idx;
      DBSP_RETURN_NOT_OK(UnpackBits(r, rows, iw, &idx));
      for (uint32_t i = 0; i < rows; ++i) {
        if (idx[i] >= dict_size) {
          return Status::Corruption("string dict index out of range");
        }
        append(i, dict[idx[i]]);
      }
      return Status::OK();
    }
    default:
      return Status::Corruption(std::string("codec ") + BlockCodecName(codec) +
                                " not valid for STRING");
  }
}

}  // namespace

EncodedBlock EncodeBlock(const ColumnVector& col, size_t begin, size_t count) {
  switch (col.type()) {
    case TypeId::kDouble:
      return EncodeDoubles(col, begin, count);
    case TypeId::kString:
      return EncodeStrings(col, begin, count);
    default:
      // kBool / kInt64 / kNull all live in the int storage lane.
      return EncodeInts(col, begin, count);
  }
}

Status DecodeBlock(BlockCodec codec, TypeId type, uint32_t rows,
                   const uint8_t* data, size_t size, ColumnVector* out) {
  ByteReader r(data, size);
  Status st;
  switch (type) {
    case TypeId::kDouble:
      st = DecodeDoubles(codec, rows, &r, out);
      break;
    case TypeId::kString:
      st = DecodeStrings(codec, rows, &r, out);
      break;
    default:
      st = DecodeInts(codec, rows, &r, out);
      break;
  }
  DBSP_RETURN_NOT_OK(st);
  if (!r.exhausted()) {
    return Status::Corruption("block payload has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes");
  }
  return Status::OK();
}

}  // namespace dbspinner
