#include "storage/table.h"

#include <algorithm>
#include <cassert>

namespace dbspinner {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.push_back(
        std::make_shared<ColumnVector>(schema_.column(i).type));
  }
}

TablePtr Table::FromColumns(Schema schema,
                            std::vector<ColumnVectorPtr> columns) {
  auto out = Table::Make(std::move(schema));
  assert(columns.size() == out->num_columns());
  size_t rows = columns.empty() ? 0 : columns[0]->size();
  for (const auto& c : columns) {
    assert(c->size() == rows);
    (void)c;
  }
  out->columns_ = std::move(columns);
  out->num_rows_ = rows;
  return out;
}

void Table::SetColumn(size_t i, ColumnVectorPtr col) {
  assert(col && col->size() == num_rows_);
  columns_[i] = std::move(col);
}

void Table::Reserve(size_t n) {
  for (auto& c : columns_) c->Reserve(n);
}

void Table::AppendRow(const std::vector<Value>& values) {
  assert(values.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i]->Append(values[i]);
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& src, size_t row) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i]->AppendFrom(src.column(i), row);
  }
  ++num_rows_;
}

void Table::AppendAll(const Table& src) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i]->AppendAll(src.column(i));
  }
  num_rows_ += src.num_rows_;
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c->GetValue(row));
  return out;
}

TablePtr Table::Gather(const std::vector<uint32_t>& sel) const {
  auto out = Table::Make(schema_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out->columns_[i] = columns_[i]->Gather(sel);
  }
  out->num_rows_ = sel.size();
  return out;
}

TablePtr Table::Clone() const {
  auto out = Table::Make(schema_);
  out->AppendAll(*this);
  return out;
}

std::vector<uint32_t> Table::SortedOrder() const {
  std::vector<uint32_t> order(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (const auto& c : columns_) {
      int cmp = c->GetValue(a).Compare(c->GetValue(b));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  return order;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.column(i).name;
  }
  out += "\n";
  size_t n = std::min(num_rows_, max_rows);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c]->GetValue(r).ToString();
    }
    out += "\n";
  }
  if (n < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - n) + " more rows)\n";
  }
  return out;
}

bool Table::SameRows(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) return false;
  if (a.num_rows() != b.num_rows()) return false;
  std::vector<uint32_t> oa = a.SortedOrder();
  std::vector<uint32_t> ob = b.SortedOrder();
  for (size_t r = 0; r < oa.size(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      if (!a.column(c).EqualsAt(oa[r], b.column(c), ob[r])) return false;
    }
  }
  return true;
}

}  // namespace dbspinner
