// Write-ahead log (DESIGN.md §12).
//
// An append-only file of framed records. A commit's extents are written and
// fsynced first, then the describing WAL frame is appended and fsynced — the
// frame hitting disk is the commit point. Replay is torn-tail tolerant: a
// frame that is truncated, fails its checksum, or claims an absurd size ends
// replay cleanly at the previous frame (the tail was an in-flight append the
// crash interrupted; everything before it was acknowledged and must load).
//
// Frame layout (little-endian):
//   u32 payload_size | u32 type | u64 lsn | u64 fnv1a64(payload) | payload

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"

namespace dbspinner {

/// Stable on-disk record tags.
enum class WalRecordType : uint32_t {
  kUpsertTable = 1,      ///< create/replace one table's contents
  kDropTable = 2,        ///< remove one table
  kCheckpoint = 3,       ///< durable executor checkpoint for one program tag
  kCheckpointClear = 4,  ///< program completed; its checkpoint is obsolete
};

struct WalRecord {
  WalRecordType type = WalRecordType::kUpsertTable;
  uint64_t lsn = 0;
  std::string payload;
};

/// Appender over one WAL file. Not thread-safe by itself: the StorageManager
/// serializes all durable operations under its own mutex, and its `wal_`
/// member is declared DBSP_PT_GUARDED_BY that mutex (see
/// common/thread_annotations.h), so the clang thread-safety build rejects
/// any append reached without holding the WAL-append lock — third in the
/// engine's lock ordering (DESIGN.md §13).
class WriteAheadLog {
 public:
  /// Opens (creating if absent) the log for appending.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path,
                                                     bool sync);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one frame; with `sync` the frame is fsynced before returning.
  /// Consults `faults` at "storage.wal.append" on entry (abort sites kill the
  /// process here — before any byte is written, so the record never becomes
  /// durable).
  Status Append(WalRecordType type, uint64_t lsn, const std::string& payload,
                FaultInjector* faults);

  /// Discards all frames (after their effects were folded into a manifest).
  Status Reset();

  int64_t frames_appended() const { return frames_appended_; }
  int64_t bytes_appended() const { return bytes_appended_; }

  /// Reads every well-formed frame from `path`, stopping at the first torn /
  /// corrupt frame. A missing file yields an empty record list.
  static Status Replay(const std::string& path, std::vector<WalRecord>* out);

 private:
  WriteAheadLog(int fd, std::string path, bool sync)
      : fd_(fd), path_(std::move(path)), sync_(sync) {}

  int fd_;
  std::string path_;
  bool sync_;
  int64_t frames_appended_ = 0;
  int64_t bytes_appended_ = 0;
};

}  // namespace dbspinner
