// Table: an in-memory columnar relation (base table or intermediate result).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/column_vector.h"
#include "storage/schema.h"

namespace dbspinner {

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A fully materialized relation: a Schema plus one ColumnVector per column.
/// All ColumnVectors have identical length (`num_rows`).
class Table {
 public:
  explicit Table(Schema schema);

  static TablePtr Make(Schema schema) {
    return std::make_shared<Table>(std::move(schema));
  }

  /// Builds a table directly from pre-computed columns (all must have equal
  /// length and types matching `schema`).
  static TablePtr FromColumns(Schema schema,
                              std::vector<ColumnVectorPtr> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return schema_.num_columns(); }
  size_t num_rows() const { return num_rows_; }

  ColumnVector& column(size_t i) { return *columns_[i]; }
  const ColumnVector& column(size_t i) const { return *columns_[i]; }
  const ColumnVectorPtr& column_ptr(size_t i) const { return columns_[i]; }

  /// Replaces column `i` (must have num_rows() entries).
  void SetColumn(size_t i, ColumnVectorPtr col);

  void Reserve(size_t n);

  /// Appends one row; `values.size()` must equal num_columns(); values must
  /// be coercible to the column types.
  void AppendRow(const std::vector<Value>& values);

  /// Appends row `row` of `src` (schemas must be type-compatible).
  void AppendRowFrom(const Table& src, size_t row);

  /// Appends all rows of `src`.
  void AppendAll(const Table& src);

  Value GetValue(size_t row, size_t col) const {
    return columns_[col]->GetValue(row);
  }

  std::vector<Value> GetRow(size_t row) const;

  /// New table with rows selected by `sel`, in order.
  TablePtr Gather(const std::vector<uint32_t>& sel) const;

  /// Deep copy.
  TablePtr Clone() const;

  /// Row indices sorted by all columns ascending (NULLs first). Used by tests
  /// to compare results order-insensitively.
  std::vector<uint32_t> SortedOrder() const;

  /// Multi-line debug rendering (header + rows, ' | ' separated).
  std::string ToString(size_t max_rows = 50) const;

  /// True if both tables contain the same multiset of rows (types compared
  /// by value; column names ignored).
  static bool SameRows(const Table& a, const Table& b);

 private:
  Schema schema_;
  std::vector<ColumnVectorPtr> columns_;
  size_t num_rows_ = 0;
};

}  // namespace dbspinner
