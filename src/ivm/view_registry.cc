#include "ivm/view_registry.h"

#include <algorithm>

namespace dbspinner {
namespace ivm {
namespace {

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

size_t RowHash(const Table& t, size_t row) {
  size_t h = 0;
  for (size_t c = 0; c < t.num_columns(); ++c) {
    h = HashCombine(h, t.GetValue(row, c).Hash());
  }
  return h;
}

bool RowsEqual(const Table& a, size_t ra, const Table& b, size_t rb) {
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!a.GetValue(ra, c).Equals(b.GetValue(rb, c))) return false;
  }
  return true;
}

size_t Rows(const TablePtr& t) { return t == nullptr ? 0 : t->num_rows(); }

/// Multiset apply for linear plans: contents + ins − del. Each delete row
/// consumes exactly one matching contents row; returns null when a delete
/// finds no match (the caller escalates to a full recompute).
TablePtr ApplyLinear(const Table& old, const TablePtr& ins,
                     const TablePtr& del) {
  TablePtr out = Table::Make(old.schema());
  out->Reserve(old.num_rows() + Rows(ins));
  size_t unmatched = Rows(del);
  if (unmatched == 0) {
    out->AppendAll(old);
  } else {
    std::unordered_map<size_t, std::vector<size_t>> del_by_hash;
    std::vector<bool> consumed(del->num_rows(), false);
    for (size_t i = 0; i < del->num_rows(); ++i) {
      del_by_hash[RowHash(*del, i)].push_back(i);
    }
    for (size_t i = 0; i < old.num_rows(); ++i) {
      bool dropped = false;
      auto it = del_by_hash.find(RowHash(old, i));
      if (it != del_by_hash.end()) {
        for (size_t cand : it->second) {
          if (consumed[cand]) continue;
          if (!RowsEqual(old, i, *del, cand)) continue;
          consumed[cand] = true;
          --unmatched;
          dropped = true;
          break;
        }
      }
      if (!dropped) out->AppendRowFrom(old, i);
    }
    if (unmatched > 0) return nullptr;
  }
  if (ins != nullptr) out->AppendAll(*ins);
  return out;
}

/// Folds one maintenance-input table into the group map as insertions.
void FoldInserts(const MaintenancePlan& plan, const Table& in,
                 GroupMap* groups) {
  const size_t g = static_cast<size_t>(plan.num_group_cols);
  for (size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(g);
    for (size_t c = 0; c < g; ++c) key.push_back(in.GetValue(r, c));
    auto [it, fresh] = groups->try_emplace(std::move(key));
    if (fresh) {
      it->second.aggs.reserve(plan.aggs.size());
      for (const PlanAgg& a : plan.aggs) it->second.aggs.emplace_back(a.kind);
    }
    ++it->second.rows;
    for (size_t j = 0; j < plan.aggs.size(); ++j) {
      const PlanAgg& a = plan.aggs[j];
      it->second.aggs[j].Update(
          a.input_col < 0 ? Value()
                          : in.GetValue(r, static_cast<size_t>(a.input_col)));
    }
  }
}

/// Folds one maintenance-input table as retractions. Returns false when any
/// retraction is inexact (missing group, MIN/MAX extreme leaving) — the
/// caller escalates to a full recompute.
bool FoldDeletes(const MaintenancePlan& plan, const Table& in,
                 GroupMap* groups) {
  const size_t g = static_cast<size_t>(plan.num_group_cols);
  for (size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<Value> key;
    key.reserve(g);
    for (size_t c = 0; c < g; ++c) key.push_back(in.GetValue(r, c));
    auto it = groups->find(key);
    if (it == groups->end() || it->second.rows == 0) return false;
    for (size_t j = 0; j < plan.aggs.size(); ++j) {
      const PlanAgg& a = plan.aggs[j];
      if (!it->second.aggs[j].Retract(
              a.input_col < 0
                  ? Value()
                  : in.GetValue(r, static_cast<size_t>(a.input_col)))) {
        return false;
      }
    }
    if (--it->second.rows == 0) groups->erase(it);
  }
  return true;
}

/// Materializes aggregate-view contents from the group map.
TablePtr BuildFromGroups(const MaintenancePlan& plan, const Schema& schema,
                         const GroupMap& groups) {
  TablePtr out = Table::Make(schema);
  out->Reserve(groups.size());
  std::vector<Value> row(plan.outputs.size());
  for (const auto& [key, gs] : groups) {
    for (size_t i = 0; i < plan.outputs.size(); ++i) {
      const PlanOutput& o = plan.outputs[i];
      row[i] = o.is_agg ? gs.aggs[static_cast<size_t>(o.index)].Finalize(
                              schema.column(i).type)
                        : key[static_cast<size_t>(o.index)];
    }
    out->AppendRow(row);
  }
  return out;
}

}  // namespace

size_t RowKeyHash::operator()(const std::vector<Value>& key) const {
  size_t h = key.size();
  for (const Value& v : key) h = HashCombine(h, v.Hash());
  return h;
}

bool RowKeyEq::operator()(const std::vector<Value>& a,
                          const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

Result<TablePtr> ViewRegistry::Create(const std::string& name,
                                      const QueryNode& body,
                                      std::string definition,
                                      const Catalog& snapshot,
                                      const QueryRunner& runner,
                                      IvmCounters* counters) {
  if (Has(name)) {
    return Status::AlreadyExists("materialized view '" + name +
                                 "' already exists");
  }
  std::vector<std::string> bases;
  CollectBaseTables(body, &bases);
  for (const std::string& t : bases) {
    if (Has(t)) {
      return Status::InvalidArgument(
          "materialized view '" + name + "' cannot reference view '" + t +
          "'; views on views are not supported");
    }
  }

  auto state = std::make_shared<ViewState>();
  state->name = name;
  state->definition = std::move(definition);
  state->body = body.Clone();
  state->plan = DerivePlan(body);
  state->created_version = snapshot.version();

  TablePtr contents;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    DBSP_ASSIGN_OR_RETURN(contents,
                          RecomputeLocked(*state, snapshot.version(), snapshot,
                                          runner, counters));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("materialized view '" + name +
                                 "' already exists");
  }
  views_.emplace(name, std::move(state));
  return contents;
}

Status ViewRegistry::CreateRecovered(const std::string& name,
                                     QueryNodePtr body,
                                     std::string definition) {
  auto state = std::make_shared<ViewState>();
  state->name = name;
  state->definition = std::move(definition);
  state->plan = DerivePlan(*body);
  state->body = std::move(body);
  std::lock_guard<std::mutex> lock(mu_);
  if (views_.count(name) > 0) {
    return Status::AlreadyExists("materialized view '" + name +
                                 "' already exists");
  }
  views_.emplace(name, std::move(state));
  return Status::OK();
}

Status ViewRegistry::Drop(const std::string& name, bool if_exists) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    if (if_exists) return Status::OK();
    return Status::NotFound("materialized view '" + name + "' does not exist");
  }
  views_.erase(it);
  return Status::OK();
}

Status ViewRegistry::Refresh(const std::string& name, const Catalog& snapshot,
                             const QueryRunner& runner,
                             IvmCounters* counters) {
  std::shared_ptr<ViewState> state = Find(name);
  if (state == nullptr) {
    return Status::NotFound("materialized view '" + name + "' does not exist");
  }
  std::lock_guard<std::mutex> lock(state->mu);
  state->pending.clear();
  return RecomputeLocked(*state, snapshot.version(), snapshot, runner,
                         counters)
      .status();
}

bool ViewRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.count(name) > 0;
}

bool ViewRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.empty();
}

bool ViewRegistry::DependsOn(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, state] : views_) {
    const std::vector<std::string>& bases = state->plan.base_tables;
    if (std::find(bases.begin(), bases.end(), table) != bases.end()) {
      return true;
    }
  }
  return false;
}

std::vector<ViewRegistry::ViewInfo> ViewRegistry::List() const {
  std::vector<std::shared_ptr<ViewState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    states.reserve(views_.size());
    for (const auto& [name, state] : views_) states.push_back(state);
  }
  std::vector<ViewInfo> out;
  out.reserve(states.size());
  for (const auto& state : states) {
    ViewInfo info;
    info.name = state->name;
    info.definition = state->definition;
    info.plan = PlanKindName(state->plan.kind);
    std::lock_guard<std::mutex> lock(state->mu);
    info.version = state->history.empty() ? 0 : state->history.back().version;
    info.pending = state->pending.size();
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const ViewInfo& a, const ViewInfo& b) { return a.name < b.name; });
  return out;
}

std::vector<std::string> ViewRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& [name, state] : views_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

void ViewRegistry::OnBaseDelta(const std::string& table,
                               const TablePtr& inserts, const TablePtr& deletes,
                               uint64_t version, const Catalog& snapshot,
                               bool force_full) {
  if (Rows(inserts) == 0 && Rows(deletes) == 0) return;
  std::vector<std::shared_ptr<ViewState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, state] : views_) {
      const std::vector<std::string>& bases = state->plan.base_tables;
      if (std::find(bases.begin(), bases.end(), table) != bases.end()) {
        states.push_back(state);
      }
    }
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->plan.kind == PlanKind::kFallback) {
      // Fallback views queue nothing; they recompute on read.
      state->last_base_change = std::max(state->last_base_change, version);
      continue;
    }
    PendingDelta d;
    d.version = version;
    d.snapshot = snapshot;
    if (force_full) {
      d.full = true;
      state->pending.clear();
    } else {
      d.table = table;
      d.inserts = inserts;
      d.deletes = deletes;
    }
    state->pending.push_back(std::move(d));
    if (state->pending.size() > kMaxPending) {
      // Runaway queue (e.g. maintenance persistently failing): collapse to
      // one full-refresh marker so pinned snapshots are released.
      PendingDelta full;
      full.version = state->pending.back().version;
      full.snapshot = state->pending.back().snapshot;
      full.full = true;
      state->pending.clear();
      state->pending.push_back(std::move(full));
    }
  }
}

void ViewRegistry::MarkAllStale(uint64_t version, const Catalog& snapshot) {
  std::vector<std::shared_ptr<ViewState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, state] : views_) states.push_back(state);
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->plan.kind == PlanKind::kFallback) {
      state->last_base_change = std::max(state->last_base_change, version);
      continue;
    }
    state->pending.clear();
    PendingDelta d;
    d.version = version;
    d.snapshot = snapshot;
    d.full = true;
    state->pending.push_back(std::move(d));
  }
}

Result<TablePtr> ViewRegistry::ContentsAt(const std::string& name,
                                          uint64_t version,
                                          const Catalog& reader_snapshot,
                                          const QueryRunner& runner,
                                          IvmCounters* counters) {
  std::shared_ptr<ViewState> state = Find(name);
  if (state == nullptr) {
    return Status::NotFound("materialized view '" + name + "' does not exist");
  }
  std::lock_guard<std::mutex> lock(state->mu);
  while (!state->pending.empty() && state->pending.front().version <= version) {
    DBSP_RETURN_NOT_OK(ApplyFrontLocked(*state, runner, counters));
  }
  // Newest published version at or below the reader's catalog version.
  const PublishedVersion* best = nullptr;
  for (const PublishedVersion& p : state->history) {
    if (p.version <= version) best = &p;
  }
  if (best != nullptr && (state->plan.kind != PlanKind::kFallback ||
                          state->last_base_change <= best->version)) {
    return best->contents;
  }
  // Recompute at the reader's snapshot: fallback plan behind a base-table
  // change, a reader older than the retained history, or a recovered view
  // serving its first read.
  return RecomputeLocked(*state, version, reader_snapshot, runner, counters);
}

void ViewRegistry::DrainPending(const QueryRunner& runner,
                                IvmCounters* counters) {
  std::vector<std::shared_ptr<ViewState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, state] : views_) states.push_back(state);
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    while (!state->pending.empty()) {
      if (!ApplyFrontLocked(*state, runner, counters).ok()) {
        // Leave the queue intact: ContentsAt syncs lazily on the next read.
        break;
      }
    }
  }
}

bool ViewRegistry::HasPending() const {
  std::vector<std::shared_ptr<ViewState>> states;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, state] : views_) states.push_back(state);
  }
  for (const auto& state : states) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->pending.empty()) return true;
  }
  return false;
}

std::shared_ptr<ViewState> ViewRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second;
}

Status ViewRegistry::ApplyFrontLocked(ViewState& s, const QueryRunner& runner,
                                      IvmCounters* counters) {
  const PendingDelta& d = s.pending.front();
  if (d.full) {
    DBSP_RETURN_NOT_OK(
        RecomputeLocked(s, d.version, d.snapshot, runner, counters).status());
    s.pending.pop_front();
    return Status::OK();
  }
  if (s.history.empty() ||
      (s.plan.kind == PlanKind::kAggregate && !s.groups_valid)) {
    // Nothing consistent to fold into (recovered view): recompute instead.
    DBSP_RETURN_NOT_OK(
        RecomputeLocked(s, d.version, d.snapshot, runner, counters).status());
    s.pending.pop_front();
    return Status::OK();
  }

  // Derive ΔQ = Q[T→ins] − Q[T→del] by substituting the delta rows for the
  // mutated table. Both runs complete before any state mutates, so a
  // cancelled or failed maintenance query leaves the previously published
  // version (and the queue) untouched.
  const QueryNode& q = s.plan.kind == PlanKind::kAggregate
                           ? *s.plan.input_query
                           : *s.body;
  TablePtr ins_rows;
  TablePtr del_rows;
  for (int pass = 0; pass < 2; ++pass) {
    const TablePtr& delta = pass == 0 ? d.inserts : d.deletes;
    if (Rows(delta) == 0) continue;
    QueryNodePtr substituted = q.Clone();
    RewriteTableRefs(substituted.get(), d.table, kDeltaName);
    DBSP_ASSIGN_OR_RETURN(
        TablePtr rows,
        runner(*substituted, d.snapshot, {{kDeltaName, delta}}));
    (pass == 0 ? ins_rows : del_rows) = std::move(rows);
  }

  bool exact = true;
  TablePtr contents;
  if (s.plan.kind == PlanKind::kLinear) {
    contents = ApplyLinear(*s.history.back().contents, ins_rows, del_rows);
    exact = contents != nullptr;
  } else {
    // Retraction can be inexact (MIN/MAX extreme leaving a group); fold
    // deletions first so the group map is untouched on escalation.
    exact = del_rows == nullptr || FoldDeletes(s.plan, *del_rows, &s.groups);
    if (exact) {
      if (ins_rows != nullptr) FoldInserts(s.plan, *ins_rows, &s.groups);
      contents = BuildFromGroups(s.plan, s.schema, s.groups);
    } else {
      s.groups_valid = false;  // partially folded; rebuilt by the recompute
    }
  }
  if (!exact) {
    DBSP_RETURN_NOT_OK(
        RecomputeLocked(s, d.version, d.snapshot, runner, counters).status());
    s.pending.pop_front();
    return Status::OK();
  }
  PublishLocked(s, d.version, std::move(contents));
  counters->deltas_applied += 1;
  counters->rows_maintained +=
      static_cast<int64_t>(Rows(ins_rows) + Rows(del_rows));
  s.pending.pop_front();
  return Status::OK();
}

Result<TablePtr> ViewRegistry::RecomputeLocked(ViewState& s, uint64_t version,
                                               const Catalog& snapshot,
                                               const QueryRunner& runner,
                                               IvmCounters* counters) {
  DBSP_ASSIGN_OR_RETURN(TablePtr contents, runner(*s.body, snapshot, {}));
  if (s.plan.kind == PlanKind::kAggregate) {
    DBSP_ASSIGN_OR_RETURN(TablePtr input,
                          runner(*s.plan.input_query, snapshot, {}));
    s.groups.clear();
    FoldInserts(s.plan, *input, &s.groups);
    s.groups_valid = true;
  }
  if (!s.have_schema) {
    s.schema = contents->schema();
    s.have_schema = true;
  }
  if (s.plan.kind == PlanKind::kFallback) {
    counters->fallbacks += 1;
  } else {
    counters->full_refreshes += 1;
  }
  PublishLocked(s, version, contents);
  return contents;
}

void ViewRegistry::PublishLocked(ViewState& s, uint64_t version,
                                 TablePtr contents) {
  if (!s.history.empty() && version < s.history.back().version) {
    // An older reader recomputed for itself; keep the newer published line.
    return;
  }
  if (!s.history.empty() && version == s.history.back().version) {
    s.history.back().contents = std::move(contents);
    return;
  }
  s.history.push_back({version, std::move(contents)});
  while (s.history.size() > kHistoryDepth) s.history.pop_front();
}

}  // namespace ivm
}  // namespace dbspinner
