#include "ivm/maintenance_plan.h"

#include <algorithm>

#include "binder/binder.h"
#include "rewrite/iterative_rewrite.h"

namespace dbspinner {
namespace ivm {
namespace {

void CollectFromTables(const TableRef* ref, std::vector<std::string>* out);

void CollectNodeTables(const QueryNode& q, std::vector<std::string>* out) {
  if (q.kind == QueryNodeKind::kSetOp) {
    CollectNodeTables(*q.left, out);
    CollectNodeTables(*q.right, out);
    return;
  }
  CollectFromTables(q.from.get(), out);
}

void CollectFromTables(const TableRef* ref, std::vector<std::string>* out) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRefKind::kBase:
      out->push_back(ref->table_name);
      return;
    case TableRefKind::kSubquery:
      CollectNodeTables(*ref->subquery, out);
      return;
    case TableRefKind::kJoin:
      CollectFromTables(ref->left.get(), out);
      CollectFromTables(ref->right.get(), out);
      return;
  }
}

/// True when the FROM tree is a delta-substitutable shape: base tables
/// combined by inner/cross joins only.
bool LinearFromTree(const TableRef* ref, std::string* why) {
  if (ref == nullptr) {
    *why = "constant SELECT (no FROM)";
    return false;
  }
  switch (ref->kind) {
    case TableRefKind::kBase:
      return true;
    case TableRefKind::kSubquery:
      *why = "derived table in FROM";
      return false;
    case TableRefKind::kJoin:
      if (ref->join_type != JoinType::kInner) {
        *why = "outer join";
        return false;
      }
      return LinearFromTree(ref->left.get(), why) &&
             LinearFromTree(ref->right.get(), why);
  }
  return false;
}

void RewriteFromRefs(TableRef* ref, const std::string& from,
                     const std::string& to) {
  if (ref == nullptr) return;
  switch (ref->kind) {
    case TableRefKind::kBase:
      if (ref->table_name == from) {
        // Unaliased references resolve column qualifiers through the table
        // name; pin the original name as the alias before renaming.
        if (ref->alias.empty()) ref->alias = from;
        ref->table_name = to;
      }
      return;
    case TableRefKind::kSubquery:
      RewriteTableRefs(ref->subquery.get(), from, to);
      return;
    case TableRefKind::kJoin:
      RewriteFromRefs(ref->left.get(), from, to);
      RewriteFromRefs(ref->right.get(), from, to);
      return;
  }
}

/// An aggregate select item the incremental plan supports: a non-DISTINCT
/// call of a known aggregate whose argument holds no nested aggregate.
bool SupportedAggItem(const ParseExpr& e, AggKind* kind, bool* is_star) {
  if (e.kind != ParseExprKind::kFunctionCall) return false;
  *is_star = e.children.size() == 1 &&
             e.children[0]->kind == ParseExprKind::kStar;
  Result<AggKind> k = ResolveAggKind(e.function_name, *is_star);
  if (!k.ok()) return false;
  if (e.distinct) return false;
  if (e.children.size() != 1) return false;
  if (!*is_star && ContainsAggregate(*e.children[0])) return false;
  *kind = *k;
  return true;
}

MaintenancePlan Fallback(MaintenancePlan plan, std::string why) {
  plan.kind = PlanKind::kFallback;
  plan.fallback_reason = std::move(why);
  return plan;
}

}  // namespace

const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kLinear: return "linear";
    case PlanKind::kAggregate: return "aggregate";
    case PlanKind::kFallback: return "fallback";
  }
  return "?";
}

MaintenancePlan MaintenancePlan::Clone() const {
  MaintenancePlan p;
  p.kind = kind;
  p.base_tables = base_tables;
  p.fallback_reason = fallback_reason;
  if (input_query) p.input_query = input_query->Clone();
  p.num_group_cols = num_group_cols;
  p.aggs = aggs;
  p.outputs = outputs;
  return p;
}

void CollectBaseTables(const QueryNode& q, std::vector<std::string>* out) {
  std::vector<std::string> all;
  CollectNodeTables(q, &all);
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  out->insert(out->end(), all.begin(), all.end());
}

void RewriteTableRefs(QueryNode* q, const std::string& from,
                      const std::string& to) {
  if (q == nullptr) return;
  if (q->kind == QueryNodeKind::kSetOp) {
    RewriteTableRefs(q->left.get(), from, to);
    RewriteTableRefs(q->right.get(), from, to);
    return;
  }
  RewriteFromRefs(q->from.get(), from, to);
}

MaintenancePlan DerivePlan(const QueryNode& body) {
  MaintenancePlan plan;
  CollectBaseTables(body, &plan.base_tables);

  if (body.kind == QueryNodeKind::kSetOp) {
    return Fallback(std::move(plan), "set operation");
  }
  if (body.distinct) return Fallback(std::move(plan), "DISTINCT");
  if (!body.order_by.empty() || body.limit.has_value()) {
    return Fallback(std::move(plan), "ORDER BY / LIMIT");
  }
  std::string why;
  if (!LinearFromTree(body.from.get(), &why)) {
    return Fallback(std::move(plan), why);
  }
  // Linearity needs each base table to appear exactly once: a self-join is
  // quadratic in its table (ΔQ would need cross terms).
  for (const std::string& t : plan.base_tables) {
    if (CountTableRefs(body, t) != 1) {
      return Fallback(std::move(plan), "self-join on " + t);
    }
  }

  bool any_agg = false;
  for (const SelectItem& item : body.select_list) {
    if (item.expr->kind == ParseExprKind::kStar) continue;
    if (ContainsAggregate(*item.expr)) any_agg = true;
  }

  if (body.group_by.empty()) {
    if (any_agg) return Fallback(std::move(plan), "global aggregate");
    if (body.having != nullptr) return Fallback(std::move(plan), "HAVING");
    plan.kind = PlanKind::kLinear;
    return plan;
  }

  // GROUP BY: every select item must be a supported aggregate call or
  // structurally equal to one of the group expressions, and the grouping
  // input itself must be free of aggregates.
  if (body.having != nullptr) return Fallback(std::move(plan), "HAVING");
  for (const ParseExprPtr& g : body.group_by) {
    if (ContainsAggregate(*g)) {
      return Fallback(std::move(plan), "aggregate in GROUP BY");
    }
  }
  plan.num_group_cols = static_cast<int>(body.group_by.size());
  for (const SelectItem& item : body.select_list) {
    AggKind kind;
    bool is_star = false;
    if (SupportedAggItem(*item.expr, &kind, &is_star)) {
      PlanAgg agg;
      agg.kind = kind;
      agg.input_col = -1;  // assigned below while building the input query
      plan.outputs.push_back({true, static_cast<int>(plan.aggs.size())});
      plan.aggs.push_back(agg);
      continue;
    }
    if (ContainsAggregate(*item.expr)) {
      return Fallback(std::move(plan), "unsupported aggregate expression");
    }
    int group_idx = -1;
    for (size_t j = 0; j < body.group_by.size(); ++j) {
      if (ParseExprEquals(*item.expr, *body.group_by[j])) {
        group_idx = static_cast<int>(j);
        break;
      }
    }
    if (group_idx < 0) {
      return Fallback(std::move(plan), "select item not in GROUP BY");
    }
    plan.outputs.push_back({false, group_idx});
  }
  if (plan.aggs.empty()) {
    // GROUP BY with no aggregates is DISTINCT in disguise.
    return Fallback(std::move(plan), "GROUP BY without aggregates");
  }

  // Maintenance input: the body with grouping stripped, projecting the group
  // expressions followed by each aggregate's argument (arguments re-indexed
  // densely — COUNT(*) contributes no column).
  QueryNodePtr input = std::make_unique<QueryNode>();
  input->kind = QueryNodeKind::kSelect;
  input->from = body.from->Clone();
  if (body.where) input->where = body.where->Clone();
  int col = 0;
  for (const ParseExprPtr& g : body.group_by) {
    SelectItem item;
    item.expr = g->Clone();
    item.alias = "ivm_g" + std::to_string(col++);
    input->select_list.push_back(std::move(item));
  }
  size_t agg_ordinal = 0;
  for (const SelectItem& item : body.select_list) {
    AggKind kind;
    bool is_star = false;
    if (!SupportedAggItem(*item.expr, &kind, &is_star)) continue;
    PlanAgg& agg = plan.aggs[agg_ordinal++];
    if (is_star) {
      agg.input_col = -1;
      continue;
    }
    agg.input_col = col;
    SelectItem arg;
    arg.expr = item.expr->children[0]->Clone();
    arg.alias = "ivm_a" + std::to_string(col++);
    input->select_list.push_back(std::move(arg));
  }
  plan.input_query = std::move(input);
  plan.kind = PlanKind::kAggregate;
  return plan;
}

}  // namespace ivm
}  // namespace dbspinner
