#include "ivm/sql_render.h"

namespace dbspinner {
namespace ivm {
namespace {

// ParseExpr::ToString() is already re-parseable (parenthesized binary ops,
// quoted string literals) except for the qualified star, which it collapses
// to "*".
std::string RenderExpr(const ParseExpr& e) {
  if (e.kind == ParseExprKind::kStar && !e.qualifier.empty()) {
    return e.qualifier + ".*";
  }
  return e.ToString();
}

}  // namespace

std::string RenderTableRef(const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kBase:
      return ref.alias.empty() ? ref.table_name
                               : ref.table_name + " " + ref.alias;
    case TableRefKind::kSubquery: {
      std::string out = "(" + RenderQueryNode(*ref.subquery) + ")";
      if (!ref.alias.empty()) out += " " + ref.alias;
      return out;
    }
    case TableRefKind::kJoin: {
      std::string out = RenderTableRef(*ref.left);
      if (ref.join_condition == nullptr) {
        out += " CROSS JOIN ";
      } else if (ref.join_type == JoinType::kLeft) {
        out += " LEFT JOIN ";
      } else {
        out += " JOIN ";
      }
      // The right side of a join is a table primary in the grammar; any
      // nested join the AST could hold would need parentheses the parser
      // does not accept, but joins parse left-deep so `right` is always a
      // base table or subquery here.
      out += RenderTableRef(*ref.right);
      if (ref.join_condition != nullptr) {
        out += " ON " + RenderExpr(*ref.join_condition);
      }
      return out;
    }
  }
  return "?";
}

std::string RenderQueryNode(const QueryNode& q) {
  std::string out;
  if (q.kind == QueryNodeKind::kSetOp) {
    out = "(" + RenderQueryNode(*q.left) + ") ";
    switch (q.set_op) {
      case SetOpKind::kUnion: out += "UNION"; break;
      case SetOpKind::kUnionAll: out += "UNION ALL"; break;
      case SetOpKind::kExcept: out += "EXCEPT"; break;
      case SetOpKind::kIntersect: out += "INTERSECT"; break;
    }
    out += " (" + RenderQueryNode(*q.right) + ")";
  } else {
    out = "SELECT ";
    if (q.distinct) out += "DISTINCT ";
    for (size_t i = 0; i < q.select_list.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderExpr(*q.select_list[i].expr);
      if (!q.select_list[i].alias.empty()) {
        out += " AS " + q.select_list[i].alias;
      }
    }
    if (q.from != nullptr) out += " FROM " + RenderTableRef(*q.from);
    if (q.where != nullptr) out += " WHERE " + RenderExpr(*q.where);
    if (!q.group_by.empty()) {
      out += " GROUP BY ";
      for (size_t i = 0; i < q.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += RenderExpr(*q.group_by[i]);
      }
    }
    if (q.having != nullptr) out += " HAVING " + RenderExpr(*q.having);
  }
  if (!q.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < q.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderExpr(*q.order_by[i].expr);
      if (q.order_by[i].descending) out += " DESC";
    }
  }
  if (q.limit.has_value()) {
    out += " LIMIT " + std::to_string(*q.limit);
    if (q.offset > 0) out += " OFFSET " + std::to_string(q.offset);
  }
  return out;
}

}  // namespace ivm
}  // namespace dbspinner
