// ViewRegistry: registered materialized views, their pending base-table
// deltas, and the per-view published version history.
//
// Concurrency model (DESIGN.md §14): the registry map is guarded by `mu_`,
// a leaf lock never held while a view is locked. Each view carries its own
// mutex serializing maintenance and reads of that view; it is acquired
// after the commit lock on the capture path (enqueue only, no query work)
// and without any engine lock on the read/drain path. Maintenance queries
// run via the QueryRunner against the catalog snapshot pinned with the
// delta, so they never need the commit lock and never re-enter the
// registry — the per-view mutex therefore nests strictly inside the
// ordering table of §13.
//
// Versioning: every published view version is tagged with the catalog
// version it reflects. A reader pinned at catalog version V receives the
// newest published contents whose version is <= V after applying all
// pending deltas with version <= V — the snapshot-consistent
// (view-version, catalog-version) pair.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "ivm/maintenance_plan.h"
#include "parser/ast.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace dbspinner {
namespace ivm {

/// Maintenance statistics accumulated by registry operations; merged into
/// ExecStats (`ivm_*` counters) by the engine.
struct IvmCounters {
  int64_t deltas_applied = 0;   ///< deltas folded incrementally
  int64_t rows_maintained = 0;  ///< delta rows processed while folding
  int64_t full_refreshes = 0;   ///< incremental views recomputed in full
  int64_t fallbacks = 0;        ///< fallback-plan recomputes-on-read
};

/// Executes `query` against the pinned catalog `snapshot` with each named
/// seed table bound as if it were a CTE in scope. Supplied by the engine
/// (Database), so maintenance queries run through the ordinary
/// optimizer/verifier/morsel pipeline.
using QueryRunner = std::function<Result<TablePtr>(
    const QueryNode& query, const Catalog& snapshot,
    const std::vector<std::pair<std::string, TablePtr>>& seeds)>;

/// One captured base-table change (or a forced-full marker) awaiting
/// application to a view.
struct PendingDelta {
  uint64_t version = 0;  ///< catalog version after the mutation published
  bool full = false;     ///< recompute instead of folding row sets
  std::string table;     ///< mutated base table (empty when `full`)
  TablePtr inserts;      ///< rows added to `table` (may be null)
  TablePtr deletes;      ///< rows removed from `table` (may be null)
  Catalog snapshot;      ///< pinned post-mutation snapshot
};

/// One published (view-version, contents) pair.
struct PublishedVersion {
  uint64_t version = 0;
  TablePtr contents;
};

/// Per-group aggregate maintenance state: input-row count plus one AggState
/// per aggregate select item.
struct GroupState {
  int64_t rows = 0;
  std::vector<AggState> aggs;
};

struct RowKeyHash {
  size_t operator()(const std::vector<Value>& key) const;
};
struct RowKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;
};
using GroupMap =
    std::unordered_map<std::vector<Value>, GroupState, RowKeyHash, RowKeyEq>;

/// State of one registered view. Immutable descriptive fields are set at
/// registration; everything mutable is guarded by `mu`.
struct ViewState {
  std::string name;
  std::string definition;  ///< re-parseable body SQL (persisted)
  QueryNodePtr body;
  MaintenancePlan plan;
  uint64_t created_version = 0;

  std::mutex mu;
  bool have_schema DBSP_GUARDED_BY(mu) = false;
  Schema schema DBSP_GUARDED_BY(mu);
  std::deque<PendingDelta> pending DBSP_GUARDED_BY(mu);
  std::deque<PublishedVersion> history DBSP_GUARDED_BY(mu);
  /// Catalog version of the last mutation of a referenced base table that
  /// was not queued (fallback plans queue nothing; they recompute on read).
  uint64_t last_base_change DBSP_GUARDED_BY(mu) = 0;
  bool groups_valid DBSP_GUARDED_BY(mu) = false;
  GroupMap groups DBSP_GUARDED_BY(mu);
};

class ViewRegistry {
 public:
  /// Seed name delta rows are bound under in maintenance queries.
  static constexpr const char* kDeltaName = "__ivm_delta";
  /// Reserved storage table persisting (view name, definition SQL) rows.
  static constexpr const char* kViewsTable = "__ivm_views";
  /// Published versions retained per view (older readers recompute).
  static constexpr size_t kHistoryDepth = 8;
  /// Pending-queue cap; beyond it the queue collapses to one full marker.
  static constexpr size_t kMaxPending = 64;

  /// Registers a view: validates the body by computing its initial contents
  /// at `snapshot`, derives the maintenance plan, and publishes the first
  /// version. Returns the initial contents.
  Result<TablePtr> Create(const std::string& name, const QueryNode& body,
                          std::string definition, const Catalog& snapshot,
                          const QueryRunner& runner, IvmCounters* counters);

  /// Re-registers a view recovered from storage. No query runs: the view
  /// starts stale and fully refreshes on first read or maintenance.
  Status CreateRecovered(const std::string& name, QueryNodePtr body,
                         std::string definition);

  Status Drop(const std::string& name, bool if_exists);

  /// Forced full recompute at `snapshot` (REFRESH MATERIALIZED VIEW).
  Status Refresh(const std::string& name, const Catalog& snapshot,
                 const QueryRunner& runner, IvmCounters* counters);

  bool Has(const std::string& name) const;
  bool empty() const;

  /// True when any view reads `table`.
  bool DependsOn(const std::string& table) const;

  struct ViewInfo {
    std::string name;
    std::string definition;
    std::string plan;          ///< "linear" / "aggregate" / "fallback"
    uint64_t version = 0;      ///< newest published view version
    size_t pending = 0;        ///< queued deltas not yet applied
  };
  /// Registered views, name-ordered.
  std::vector<ViewInfo> List() const;
  std::vector<std::string> Names() const;

  /// Capture hook (commit lock held, after catalog publish): records one
  /// statement's (inserts, deletes) against `table` for every dependent
  /// view. `force_full` downgrades the delta to a full-refresh marker
  /// (ivm_enabled off or the delta exceeds ivm_max_delta_rows).
  void OnBaseDelta(const std::string& table, const TablePtr& inserts,
                   const TablePtr& deletes, uint64_t version,
                   const Catalog& snapshot, bool force_full);

  /// Invalidates every view (ROLLBACK restored the catalog underneath us).
  void MarkAllStale(uint64_t version, const Catalog& snapshot);

  /// Snapshot-consistent read: contents of `name` as of catalog version
  /// `version`. Applies pending deltas up to `version` first; fallback
  /// plans (and readers older than the retained history) recompute via
  /// `runner` against `reader_snapshot`.
  Result<TablePtr> ContentsAt(const std::string& name, uint64_t version,
                              const Catalog& reader_snapshot,
                              const QueryRunner& runner,
                              IvmCounters* counters);

  /// Applies every queued delta of every incremental view (post-commit
  /// maintenance). Errors and cancellation leave the remaining queue
  /// intact — the lazy sync in ContentsAt is the correctness backstop.
  void DrainPending(const QueryRunner& runner, IvmCounters* counters);

  bool HasPending() const;

 private:
  std::shared_ptr<ViewState> Find(const std::string& name) const;

  /// Applies the front pending delta (which the caller checked exists).
  Status ApplyFrontLocked(ViewState& s, const QueryRunner& runner,
                          IvmCounters* counters) DBSP_REQUIRES(s.mu);

  /// Full recompute of contents (and groups for aggregate plans) at
  /// `snapshot`, publishing at `version` when it advances the history.
  Result<TablePtr> RecomputeLocked(ViewState& s, uint64_t version,
                                   const Catalog& snapshot,
                                   const QueryRunner& runner,
                                   IvmCounters* counters)
      DBSP_REQUIRES(s.mu);

  void PublishLocked(ViewState& s, uint64_t version, TablePtr contents)
      DBSP_REQUIRES(s.mu);

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<ViewState>> views_
      DBSP_GUARDED_BY(mu_);
};

}  // namespace ivm
}  // namespace dbspinner
