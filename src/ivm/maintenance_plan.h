// Maintenance-plan derivation for materialized views.
//
// Mirrors the loop-body delta analysis (optimizer/delta_analysis.cc): a view
// body Q is incrementally maintainable when it is *linear* in each base
// table it references — then for a delta (ins, del) against one table T,
// ΔQ = Q[T→ins] − Q[T→del] with every other relation unchanged, because any
// single DML statement mutates exactly one base table. Two incremental
// shapes are derived here; everything else falls back to recompute-on-read:
//
//  kLinear     SELECT/PROJECT/JOIN (inner/cross) with each base table
//              referenced once: apply ΔQ to the view as a row multiset.
//  kAggregate  GROUP BY over a linear input with COUNT/SUM/MIN/MAX/AVG/
//              STDDEV/VARIANCE select items: fold ΔQin into per-group
//              AggState via Update (inserts) and Retract (deletes).
//  kFallback   DISTINCT, set ops, LEFT JOIN, subqueries, HAVING, global
//              aggregates, ORDER BY/LIMIT, self-joins.

#pragma once

#include <string>
#include <vector>

#include "expr/aggregate_functions.h"
#include "parser/ast.h"

namespace dbspinner {
namespace ivm {

enum class PlanKind { kLinear, kAggregate, kFallback };

const char* PlanKindName(PlanKind k);

/// One aggregate select item of a kAggregate plan.
struct PlanAgg {
  AggKind kind = AggKind::kCountStar;
  /// Column of the maintenance input query holding the argument, or -1 for
  /// COUNT(*).
  int input_col = -1;
};

/// One output column of a kAggregate view: either a group expression
/// (is_agg == false, `index` into the group key) or an aggregate
/// (is_agg == true, `index` into `aggs`).
struct PlanOutput {
  bool is_agg = false;
  int index = 0;
};

struct MaintenancePlan {
  PlanKind kind = PlanKind::kFallback;
  /// Base tables the body reads (deduplicated, lower-case). Filled for every
  /// plan kind, including fallback (dependency tracking).
  std::vector<std::string> base_tables;
  /// Why the plan fell back (diagnostics; empty for incremental plans).
  std::string fallback_reason;

  // --- kAggregate only ---
  /// The linear maintenance input: body with grouping stripped, projecting
  /// the group expressions followed by the aggregate arguments.
  QueryNodePtr input_query;
  int num_group_cols = 0;
  std::vector<PlanAgg> aggs;
  std::vector<PlanOutput> outputs;  ///< one per view column

  MaintenancePlan Clone() const;
};

/// Derives the maintenance plan for a view body.
MaintenancePlan DerivePlan(const QueryNode& body);

/// Collects the base-table names a query reads (FROM trees, subqueries, set
/// operations), lower-case and deduplicated, appended to `out`.
void CollectBaseTables(const QueryNode& q, std::vector<std::string>* out);

/// Rewrites every FROM reference of base table `from` to read `to` instead.
/// References without an alias keep resolving under the original name (the
/// alias is pinned to `from` first), so column qualifiers stay valid.
void RewriteTableRefs(QueryNode* q, const std::string& from,
                      const std::string& to);

}  // namespace ivm
}  // namespace dbspinner
