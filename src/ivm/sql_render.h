// Re-parseable SQL rendering for materialized-view definitions.
//
// View bodies are persisted in the reserved `__ivm_views` storage table as
// SQL text (no new WAL record types), so recovery re-parses the definition
// with the ordinary parser. The renderer therefore emits exactly the
// dialect parser.cc accepts: every shape CREATE MATERIALIZED VIEW can parse
// round-trips through RenderQueryNode + ParseStatement unchanged.

#pragma once

#include <string>

#include "parser/ast.h"

namespace dbspinner {
namespace ivm {

/// Renders a query node back to SQL text accepted by the parser.
std::string RenderQueryNode(const QueryNode& q);

/// Renders a FROM-clause tree (exposed for tests).
std::string RenderTableRef(const TableRef& ref);

}  // namespace ivm
}  // namespace dbspinner
