#include "common/status.h"

namespace dbspinner {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kWorkerLost:
      return "WorkerLost";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dbspinner
