// Status / Result<T> error model.
//
// dbspinner does not throw exceptions on query-processing paths. Every
// fallible operation returns a Status (or Result<T> when it also produces a
// value), following the RocksDB/Arrow convention.

#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dbspinner {

/// Broad classification of a failure. Codes are stable and used by tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< SQL text failed to lex/parse.
  kBindError,         ///< Name resolution / semantic analysis failed.
  kPlanError,         ///< Planner or rewriter could not produce a plan.
  kExecutionError,    ///< Runtime failure while executing a plan.
  kNotFound,          ///< Catalog object does not exist.
  kAlreadyExists,     ///< Catalog object already exists.
  kTypeError,         ///< Value/type mismatch.
  kNotImplemented,    ///< Recognized but unsupported construct.
  kInternal,          ///< Invariant violation: a bug in dbspinner.
  kUnavailable,       ///< Transient infrastructure failure (lost exchange,
                      ///< task dispatch); safe to retry the failed step.
  kWorkerLost,        ///< Simulated node death mid-step; the step's partial
                      ///< state is gone, so only a checkpoint restore (not a
                      ///< step-level retry) can recover.
  kCancelled,         ///< Query killed cooperatively: an explicit cancel or
                      ///< an expired deadline observed at a cancellation
                      ///< point. Never retried or recovered — the caller
                      ///< asked for the query to stop.
  kCorruption,        ///< On-disk data failed validation: bad magic, checksum
                      ///< mismatch, truncated extent, or a codec payload that
                      ///< decodes out of bounds. Never retried or recovered —
                      ///< retrying re-reads the same bad bytes.
};

/// Human-readable name of a StatusCode ("ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// An Ok-or-error outcome with a message. Cheap to move; Ok carries no
/// allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status WorkerLost(std::string msg) {
    return Status(StatusCode::kWorkerLost, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for transient failures an idempotent step may simply re-run.
  bool IsRetryable() const { return code_ == StatusCode::kUnavailable; }
  /// True for the failure classes the executor's fault-tolerance layer
  /// recovers from (retry or checkpoint restore). Genuine query errors
  /// (division by zero, type failures, engine bugs) are never recoverable.
  bool IsRecoverable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kWorkerLost;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-Status. `ok()` implies the value is present.
template <typename T>
class Result {
 public:
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {                 // NOLINT
    assert(!status_.ok() && "Result constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate-on-error helpers (statement-expression free, portable).
#define DBSP_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::dbspinner::Status _st = (expr);         \
    if (!_st.ok()) return _st;                \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs` or returns its Status.
// `lhs` must be a declaration or assignable lvalue; uses a unique temp name.
#define DBSP_CONCAT_IMPL(a, b) a##b
#define DBSP_CONCAT(a, b) DBSP_CONCAT_IMPL(a, b)
#define DBSP_ASSIGN_OR_RETURN(lhs, expr)                     \
  auto DBSP_CONCAT(_res_, __LINE__) = (expr);                \
  if (!DBSP_CONCAT(_res_, __LINE__).ok())                    \
    return DBSP_CONCAT(_res_, __LINE__).status();            \
  lhs = std::move(DBSP_CONCAT(_res_, __LINE__)).value();

}  // namespace dbspinner
