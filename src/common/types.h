// Logical type system of dbspinner.
//
// The engine supports the types needed by the paper's workloads (graph ids,
// ranks/distances, labels) plus BOOL for predicates.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace dbspinner {

/// Logical column / value type.
enum class TypeId : uint8_t {
  kNull = 0,   ///< The type of an untyped NULL literal.
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// SQL-facing name of a type ("BIGINT", "DOUBLE", ...).
const char* TypeName(TypeId t);

/// Parses a SQL type name (case-insensitive; accepts common aliases:
/// INT/INTEGER/BIGINT, FLOAT/DOUBLE/REAL/NUMERIC/DECIMAL, TEXT/VARCHAR/STRING,
/// BOOL/BOOLEAN).
Result<TypeId> ParseTypeName(const std::string& name);

/// True if values of `from` may be implicitly used where `to` is expected.
/// NULL coerces to anything; INT64 widens to DOUBLE.
bool IsImplicitlyCoercible(TypeId from, TypeId to);

/// Result type of combining two inputs arithmetically / for comparison:
/// the "wider" of the two numeric types. Errors on non-numeric mixes.
Result<TypeId> CommonNumericType(TypeId a, TypeId b);

/// True for INT64 / DOUBLE (and NULL, which acts as a numeric wildcard).
bool IsNumeric(TypeId t);

}  // namespace dbspinner
