#include "common/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/string_util.h"

namespace dbspinner {

Result<Value> Value::CastTo(TypeId target) const {
  if (is_null_) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kInt64:
      switch (type_) {
        case TypeId::kDouble:
          return Value::Int64(static_cast<int64_t>(std::llround(double_)));
        case TypeId::kBool:
          return Value::Int64(int_);
        case TypeId::kString: {
          errno = 0;
          char* end = nullptr;
          long long v = std::strtoll(string_.c_str(), &end, 10);
          if (end == string_.c_str() || *end != '\0' || errno == ERANGE) {
            return Status::TypeError("cannot cast '" + string_ + "' to BIGINT");
          }
          return Value::Int64(v);
        }
        default:
          break;
      }
      break;
    case TypeId::kDouble:
      switch (type_) {
        case TypeId::kInt64:
          return Value::Double(static_cast<double>(int_));
        case TypeId::kBool:
          return Value::Double(static_cast<double>(int_));
        case TypeId::kString: {
          errno = 0;
          char* end = nullptr;
          double v = std::strtod(string_.c_str(), &end);
          if (end == string_.c_str() || *end != '\0' || errno == ERANGE) {
            return Status::TypeError("cannot cast '" + string_ + "' to DOUBLE");
          }
          return Value::Double(v);
        }
        default:
          break;
      }
      break;
    case TypeId::kString:
      return Value::String(ToString());
    case TypeId::kBool:
      switch (type_) {
        case TypeId::kInt64:
          return Value::Bool(int_ != 0);
        case TypeId::kDouble:
          return Value::Bool(double_ != 0);
        case TypeId::kString:
          if (EqualsIgnoreCase(string_, "true")) return Value::Bool(true);
          if (EqualsIgnoreCase(string_, "false")) return Value::Bool(false);
          return Status::TypeError("cannot cast '" + string_ + "' to BOOLEAN");
        default:
          break;
      }
      break;
    case TypeId::kNull:
      break;
  }
  return Status::TypeError(std::string("unsupported cast from ") +
                           TypeName(type_) + " to " + TypeName(target));
}

bool Value::Equals(const Value& other) const {
  if (is_null_ || other.is_null_) return is_null_ && other.is_null_;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      return int_ == other.int_;
    }
    return AsDouble() == other.AsDouble();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case TypeId::kBool:
      return int_ == other.int_;
    case TypeId::kString:
      return string_ == other.string_;
    default:
      return false;
  }
}

int Value::Compare(const Value& other) const {
  // NULLs sort first.
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ == TypeId::kString && other.type_ == TypeId::kString) {
    int c = string_.compare(other.string_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (type_ == TypeId::kBool && other.type_ == TypeId::kBool) {
    return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
  }
  // Heterogeneous non-numeric: order by type id for determinism.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  if (is_null_) return 0x9e3779b97f4a7c15ULL;
  switch (type_) {
    case TypeId::kBool:
      return std::hash<int64_t>()(int_ + 2);
    case TypeId::kInt64: {
      // Hash ints via their double image when integral-valued so that
      // 1 and 1.0 collide (Equals treats them as equal).
      double d = static_cast<double>(int_);
      if (static_cast<int64_t>(d) == int_) return std::hash<double>()(d);
      return std::hash<int64_t>()(int_);
    }
    case TypeId::kDouble:
      return std::hash<double>()(double_);
    case TypeId::kString:
      return std::hash<std::string>()(string_);
    case TypeId::kNull:
      break;
  }
  return 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  switch (type_) {
    case TypeId::kBool:
      return int_ ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_);
    case TypeId::kDouble:
      return FormatDouble(double_);
    case TypeId::kString:
      return string_;
    case TypeId::kNull:
      break;
  }
  return "NULL";
}

}  // namespace dbspinner
