#include "common/fault_injection.h"

#include <csignal>
#include <cstdlib>

#include <algorithm>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dbspinner {

namespace {

// splitmix64: small, well-mixed, and stable across platforms — the schedule
// must be identical everywhere or fuzz repros stop reproducing.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  // FNV-1a; only needs to be deterministic, not strong.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Uniform double in [0, 1) from (seed, site, hit, salt).
double DecisionPoint(const FaultInjectionConfig& config,
                     const std::string& site, int64_t hit, uint64_t salt) {
  uint64_t x = Mix64(config.seed ^ Mix64(HashSite(site) + salt) ^
                     Mix64(static_cast<uint64_t>(hit)));
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

}  // namespace

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(std::move(config)) {}

bool FaultInjector::WouldFault(const FaultInjectionConfig& config,
                               const std::string& site, int64_t hit) {
  if (config.rate <= 0.0) return false;
  if (!config.site_filter.empty() &&
      site.find(config.site_filter) == std::string::npos) {
    return false;
  }
  return DecisionPoint(config, site, hit, /*salt=*/0) < config.rate;
}

bool FaultInjector::WouldLoseWorker(const FaultInjectionConfig& config,
                                    const std::string& site, int64_t hit) {
  if (!WouldFault(config, site, hit)) return false;
  if (config.worker_lost_fraction <= 0.0) return false;
  return DecisionPoint(config, site, hit, /*salt=*/1) <
         config.worker_lost_fraction;
}

Status FaultInjector::MaybeInject(const char* site) {
  if (!config_.enabled) return Status::OK();
  std::string name(site);
  int64_t hit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& state = sites_[name];
    hit = state.hits++;
    ++total_hits_;
    if (!config_.abort_site.empty() && name == config_.abort_site &&
        hit >= config_.abort_after_hits) {
      // Die hard: the durability harness wants a crash the process cannot
      // observe or clean up after, exactly as if the machine lost power
      // between this storage operation and the previous one.
#ifndef _WIN32
      ::kill(::getpid(), SIGKILL);
#endif
      std::abort();  // unreachable on POSIX; fallback elsewhere
    }
    if (config_.max_faults >= 0 && total_faults_ >= config_.max_faults) {
      return Status::OK();
    }
    if (!WouldFault(config_, name, hit)) return Status::OK();
    ++state.faults;
    ++total_faults_;
  }
  std::string msg = "injected fault at " + name + " (hit " +
                    std::to_string(hit) + ")";
  if (WouldLoseWorker(config_, name, hit)) {
    return Status::WorkerLost(std::move(msg));
  }
  return Status::Unavailable(std::move(msg));
}

int64_t FaultInjector::total_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_hits_;
}

int64_t FaultInjector::total_faults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_faults_;
}

int64_t FaultInjector::site_hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int64_t FaultInjector::site_faults(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.faults;
}

std::vector<FaultInjector::SiteReport> FaultInjector::Report() const {
  std::vector<SiteReport> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(sites_.size());
    for (const auto& [site, state] : sites_) {
      out.push_back({site, state.hits, state.faults});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SiteReport& a, const SiteReport& b) {
              return a.site < b.site;
            });
  return out;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  total_hits_ = 0;
  total_faults_ = 0;
}

}  // namespace dbspinner
