// Deterministic fault injection for the MPP and executor layers.
//
// A FaultInjector is consulted at named injection points ("exchange.shuffle",
// "exec.materialize", "mpp.dispatch", ...). Whether the Nth hit of a site
// fires is a pure function of (seed, site, N), so a fixed seed reproduces the
// same fault schedule even when hits race across pool threads: threads may
// claim hit indices in any order, but the set of indices that fault — and
// therefore the number of faults each site sees — is fixed by the seed.
//
// Injected faults are typed: most are Status::Unavailable (a transient loss —
// retrying the step is enough), a configurable fraction are
// Status::WorkerLost (a simulated node death — only a checkpoint restore
// recovers). The program executor's fault-tolerance layer (see
// exec/program_executor.cc) reacts to exactly these two codes and never to
// genuine query errors.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dbspinner {

/// Schedule of one injector. A value-type so EngineOptions can embed it.
struct FaultInjectionConfig {
  bool enabled = false;     ///< master toggle; off => MaybeInject is a no-op
  uint64_t seed = 1;        ///< drives the deterministic schedule
  double rate = 0.0;        ///< per-hit fault probability in [0, 1]
  int64_t max_faults = -1;  ///< total faults to inject; -1 = unlimited

  /// When non-empty, only sites whose name contains this substring fault
  /// (e.g. "shuffle" restricts the schedule to exchange paths).
  std::string site_filter;

  /// Fraction of injected faults that are kWorkerLost instead of the
  /// retryable kUnavailable (decided deterministically per fault).
  double worker_lost_fraction = 0.0;

  /// When non-empty, the process SIGKILLs itself on arrival at this exact
  /// site — a genuine crash, not a recoverable Status. Used by the
  /// out-of-process durability harness to kill a child at WAL-append /
  /// extent-flush / manifest-swap boundaries. `abort_after_hits` selects
  /// which arrival dies: N means the site completes N times and the process
  /// dies entering arrival N+1 (0 = die on the first arrival).
  std::string abort_site;
  int64_t abort_after_hits = 0;

  bool operator==(const FaultInjectionConfig& o) const {
    return enabled == o.enabled && seed == o.seed && rate == o.rate &&
           max_faults == o.max_faults && site_filter == o.site_filter &&
           worker_lost_fraction == o.worker_lost_fraction &&
           abort_site == o.abort_site && abort_after_hits == o.abort_after_hits;
  }
  bool operator!=(const FaultInjectionConfig& o) const {
    return !(*this == o);
  }
};

/// Seeded, thread-safe fault source. One per Database; reset between runs
/// when a reproducible per-query schedule is needed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectionConfig config);

  /// Consults the schedule at injection point `site`. Returns OK when no
  /// fault fires; otherwise a kUnavailable or kWorkerLost Status naming the
  /// site and hit index. Thread-safe.
  Status MaybeInject(const char* site);

  /// Pure decision function: does the `hit`th arrival at `site` fault under
  /// `config`? Exposed so tests can verify schedule determinism without
  /// driving a live injector. Ignores max_faults (a global, order-dependent
  /// cap) and the enabled toggle.
  static bool WouldFault(const FaultInjectionConfig& config,
                         const std::string& site, int64_t hit);

  /// As WouldFault, but true when that fault is a kWorkerLost.
  static bool WouldLoseWorker(const FaultInjectionConfig& config,
                              const std::string& site, int64_t hit);

  // --- counters (thread-safe) ----------------------------------------------
  int64_t total_hits() const;
  int64_t total_faults() const;
  int64_t site_hits(const std::string& site) const;
  int64_t site_faults(const std::string& site) const;

  /// All sites seen so far with their hit/fault counts, sorted by name.
  struct SiteReport {
    std::string site;
    int64_t hits = 0;
    int64_t faults = 0;
  };
  std::vector<SiteReport> Report() const;

  /// Clears counters and restarts the schedule from hit 0 at every site.
  void Reset();

  const FaultInjectionConfig& config() const { return config_; }

 private:
  struct SiteState {
    int64_t hits = 0;
    int64_t faults = 0;
  };

  FaultInjectionConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  int64_t total_hits_ = 0;
  int64_t total_faults_ = 0;
};

/// Convenience for call sites holding a possibly-null injector.
inline Status MaybeInjectFault(FaultInjector* faults, const char* site) {
  if (faults == nullptr) return Status::OK();
  return faults->MaybeInject(site);
}

}  // namespace dbspinner
