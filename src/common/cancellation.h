// Cooperative cancellation for long-running queries.
//
// A CancellationToken is a cheap shared handle to an atomic cancel flag and
// an optional deadline. The server layer hands one to each query; the
// executor checks it at every step boundary and the thread pool checks it
// before dispatching each parallel task, so a runaway WITH ITERATIVE loop
// can be killed (or timed out) within one loop iteration. An observed
// cancellation surfaces as StatusCode::kCancelled, which is neither
// retryable nor recoverable — the fault-tolerance layer never resurrects a
// cancelled query.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dbspinner {

/// Shared cancel-flag handle. The default-constructed token is *inert*: it
/// has no state, can never fire, and costs one null check per inspection —
/// callers that don't serve cancellable queries (tests, benchmarks, the
/// default session) pay nothing. Make() creates a live token.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// Creates a live (cancellable) token.
  static CancellationToken Make() {
    CancellationToken t;
    t.state_ = std::make_shared<State>();
    return t;
  }

  /// True when this token can actually fire.
  bool live() const { return state_ != nullptr; }

  /// Requests cancellation. Thread-safe; no-op on an inert token.
  void RequestCancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Arms a deadline `micros` from now. A check after the deadline reports
  /// kCancelled ("deadline exceeded"). <= 0 disarms. No-op on inert tokens.
  void SetDeadlineAfterMicros(int64_t micros) const {
    if (!state_) return;
    if (micros <= 0) {
      state_->deadline_ns.store(0, std::memory_order_relaxed);
      return;
    }
    int64_t now = NowNanos();
    state_->deadline_ns.store(now + micros * 1000, std::memory_order_relaxed);
  }

  /// True once cancelled explicitly or past the deadline.
  bool IsCancelled() const {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    int64_t dl = state_->deadline_ns.load(std::memory_order_relaxed);
    return dl != 0 && NowNanos() >= dl;
  }

  /// OK, or the kCancelled status describing why the query must stop.
  Status Check() const {
    if (!state_) return Status::OK();
    if (state_->cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled");
    }
    int64_t dl = state_->deadline_ns.load(std::memory_order_relaxed);
    if (dl != 0 && NowNanos() >= dl) {
      return Status::Cancelled("query deadline exceeded");
    }
    return Status::OK();
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> deadline_ns{0};  ///< steady-clock ns; 0 = unarmed
  };

  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::shared_ptr<State> state_;
};

}  // namespace dbspinner
