// Clang thread-safety annotation macros (DESIGN.md §13).
//
// These macros expose clang's static thread-safety analysis
// (-Wthread-safety) to the engine's lock-bearing classes: a mutex (or the
// engine's CommitLock) declared as a CAPABILITY, members tied to it with
// GUARDED_BY, and internal helpers tied with REQUIRES, turn the lock
// discipline into compile-time errors — an unguarded member access or a
// helper called without its lock fails the CI clang build with
// -Werror=thread-safety instead of surfacing as a TSan race two layers
// deeper.
//
// The engine's lock-ordering discipline these annotations document (acquire
// strictly left to right; the full table is DESIGN.md §13):
//
//   commit lock  ->  catalog publish  ->  WAL append  ->  buffer latch
//   (Database::commit_lock_) (Catalog::Store::mu) (StorageManager::mu_)
//                                                  (BufferManager::mu_)
//
// The macros expand to nothing on compilers without the attributes (GCC
// builds the same sources warning-free); only the CI clang job enforces
// them. Names follow the conventional abseil/base spelling so the analysis
// docs apply directly.

#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define DBSP_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DBSP_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Declares a type to be a lock (std::mutex already carries this in libc++;
/// engine-defined lock types like CommitLock need it explicitly).
#define DBSP_CAPABILITY(x) DBSP_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// A lock acquired in scope (std::lock_guard-style RAII types).
#define DBSP_SCOPED_CAPABILITY DBSP_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define DBSP_GUARDED_BY(x) DBSP_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define DBSP_PT_GUARDED_BY(x) DBSP_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function callable only while holding `...` (the "Locked" suffix helpers).
#define DBSP_REQUIRES(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function callable only while NOT holding `...` (deadlock prevention for
/// re-entrant entry points).
#define DBSP_EXCLUDES(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function that acquires the lock(s) and returns holding them.
#define DBSP_ACQUIRE(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases lock(s) the caller holds.
#define DBSP_RELEASE(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that acquires the lock iff it returns `ret`.
#define DBSP_TRY_ACQUIRE(ret, ...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Returns a reference to the annotated lock (lock-forwarding accessors).
#define DBSP_RETURN_CAPABILITY(x) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Declared acquisition order between two locks of one class (checked by
/// clang under -Wthread-safety-beta; the cross-class engine-wide ordering
/// is documented in DESIGN.md §13 and demonstrated by the CI compile-fail
/// artifact tests/static/lock_discipline_fail.cc).
#define DBSP_ACQUIRED_BEFORE(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define DBSP_ACQUIRED_AFTER(...) \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: suppresses the analysis inside one function. Every use
/// must carry a comment explaining why the discipline is upheld by other
/// means (e.g. CommitLock's thread-agnostic hand-off).
#define DBSP_NO_THREAD_SAFETY_ANALYSIS \
  DBSP_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace dbspinner {

/// std::mutex with the capability attribute, so members can be GUARDED_BY
/// it. libstdc++'s std::mutex / std::lock_guard carry no thread-safety
/// annotations, so guarding members by a raw std::mutex teaches the
/// analysis nothing — every lock-bearing class in the engine holds one of
/// these instead and locks it through MutexLock (or waits on it through a
/// std::condition_variable_any, which accepts any BasicLockable).
class DBSP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DBSP_ACQUIRE() { mu_.lock(); }
  void unlock() DBSP_RELEASE() { mu_.unlock(); }
  bool try_lock() DBSP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Annotated std::lock_guard equivalent over Mutex. Scope-exit unlock; the
/// analysis treats the capability as held for the guard's whole lifetime
/// (a condition-variable wait's unlock/relock inside the scope preserves
/// that source-level invariant).
class DBSP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DBSP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DBSP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace dbspinner
