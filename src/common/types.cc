#include "common/types.h"

#include "common/string_util.h"

namespace dbspinner {

const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

Result<TypeId> ParseTypeName(const std::string& name) {
  std::string up = ToUpper(name);
  if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT") {
    return TypeId::kInt64;
  }
  if (up == "FLOAT" || up == "DOUBLE" || up == "REAL" || up == "NUMERIC" ||
      up == "DECIMAL" || up == "DOUBLE PRECISION") {
    return TypeId::kDouble;
  }
  if (up == "TEXT" || up == "VARCHAR" || up == "STRING" || up == "CHAR") {
    return TypeId::kString;
  }
  if (up == "BOOL" || up == "BOOLEAN") {
    return TypeId::kBool;
  }
  return Status::TypeError("unknown type name: " + name);
}

bool IsImplicitlyCoercible(TypeId from, TypeId to) {
  if (from == to) return true;
  if (from == TypeId::kNull) return true;
  if (from == TypeId::kInt64 && to == TypeId::kDouble) return true;
  return false;
}

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kNull;
}

Result<TypeId> CommonNumericType(TypeId a, TypeId b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError(std::string("expected numeric types, got ") +
                             TypeName(a) + " and " + TypeName(b));
  }
  if (a == TypeId::kDouble || b == TypeId::kDouble) return TypeId::kDouble;
  if (a == TypeId::kInt64 || b == TypeId::kInt64) return TypeId::kInt64;
  return TypeId::kNull;
}

}  // namespace dbspinner
