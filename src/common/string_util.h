// Small string helpers shared across the codebase.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dbspinner {

/// ASCII upper-case copy.
std::string ToUpper(const std::string& s);

/// ASCII lower-case copy. SQL identifiers are normalized to lower case.
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double the way our SQL layer prints it (shortest round-trip-ish,
/// trailing zeros trimmed, always with a decimal point or exponent).
std::string FormatDouble(double d);

}  // namespace dbspinner
