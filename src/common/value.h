// Value: a single dynamically-typed SQL scalar (with NULL).
//
// Row-level glue type used by the expression evaluator and in tests. Bulk data
// lives in typed ColumnVectors (storage/column_vector.h); Value is the
// boundary representation.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace dbspinner {

/// A nullable scalar of one of the supported TypeIds.
class Value {
 public:
  /// NULL of unknown type.
  Value() : type_(TypeId::kNull), is_null_(true) {}

  static Value Null(TypeId type = TypeId::kNull) {
    Value v;
    v.type_ = type;
    v.is_null_ = true;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.is_null_ = false;
    v.int_ = b ? 1 : 0;
    return v;
  }
  static Value Int64(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.is_null_ = false;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.is_null_ = false;
    v.double_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.type_ = TypeId::kString;
    v.is_null_ = false;
    v.string_ = std::move(s);
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return is_null_; }

  bool bool_value() const { return int_ != 0; }
  int64_t int64_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return string_; }

  /// Numeric accessor with implicit INT64->DOUBLE widening.
  /// Precondition: !is_null() and IsNumeric(type()) (or BOOL).
  double AsDouble() const {
    if (type_ == TypeId::kDouble) return double_;
    return static_cast<double>(int_);
  }
  /// Integer accessor; truncates doubles toward zero.
  int64_t AsInt64() const {
    if (type_ == TypeId::kDouble) return static_cast<int64_t>(double_);
    return int_;
  }

  /// Explicit cast (CAST(x AS t)). NULL casts to NULL of the target type.
  Result<Value> CastTo(TypeId target) const;

  /// SQL equality (NULL-unaware; caller handles NULL three-valued logic).
  /// Numerics compare cross-type (1 == 1.0).
  bool Equals(const Value& other) const;

  /// Total ordering for ORDER BY / joins; NULLs sort first. Returns <0,0,>0.
  int Compare(const Value& other) const;

  /// Hash compatible with Equals (1 and 1.0 hash identically).
  size_t Hash() const;

  /// Display form ("NULL", "42", "3.14", "abc", "true").
  std::string ToString() const;

 private:
  TypeId type_;
  bool is_null_;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
};

}  // namespace dbspinner
