#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace dbspinner {

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string FormatDouble(double d) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  std::string s(buf);
  // Ensure it reads as a double (e.g. "3" -> "3.0") unless exponent present.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

}  // namespace dbspinner
