#include <unordered_map>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

namespace {

constexpr uint32_t kNoMatch = 0xffffffffu;

// Appends the combined [left ++ right] columns for the given row pairs.
// A right index of kNoMatch emits NULLs (left-outer padding).
TablePtr BuildJoinOutput(const Schema& schema, const Table& left,
                         const Table& right,
                         const std::vector<uint32_t>& lrows,
                         const std::vector<uint32_t>& rrows) {
  size_t ln = left.num_columns();
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(schema.num_columns());
  for (size_t c = 0; c < ln; ++c) {
    cols.push_back(left.column(c).Gather(lrows));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    auto col = std::make_shared<ColumnVector>(schema.column(ln + c).type);
    col->Reserve(rrows.size());
    const ColumnVector& src = right.column(c);
    for (uint32_t r : rrows) {
      if (r == kNoMatch) {
        col->AppendNull();
      } else {
        col->AppendFrom(src, r);
      }
    }
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(schema, std::move(cols));
}

bool RowHasNullKey(const Table& t, const std::vector<size_t>& keys,
                   size_t row) {
  for (size_t k : keys) {
    if (t.column(k).IsNull(row)) return true;
  }
  return false;
}

bool KeysEqual(const Table& l, const std::vector<size_t>& lkeys, size_t lrow,
               const Table& r, const std::vector<size_t>& rkeys, size_t rrow) {
  for (size_t i = 0; i < lkeys.size(); ++i) {
    if (!l.column(lkeys[i]).EqualsAt(lrow, r.column(rkeys[i]), rrow)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string PhysicalHashJoin::Describe() const {
  std::string out = type_ == JoinType::kLeft ? "LEFT keys:" : "INNER keys:";
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(left_keys_[i]) + "=" + std::to_string(right_keys_[i]);
  }
  if (residual_) out += " residual:" + residual_->ToString();
  return out;
}

Result<TablePtr> PhysicalHashJoin::JoinPartition(
    ExecContext& ctx, const Table& left, const Table& right,
    const std::unordered_multimap<size_t, uint32_t>* prebuilt) const {
  (void)ctx;
  // Build: hash the right side (unless a cached build is supplied).
  std::unordered_multimap<size_t, uint32_t> local_build;
  if (prebuilt == nullptr) {
    local_build.reserve(right.num_rows());
    for (size_t i = 0; i < right.num_rows(); ++i) {
      if (RowHasNullKey(right, right_keys_, i)) continue;
      local_build.emplace(HashRowKeys(right, right_keys_, i),
                          static_cast<uint32_t>(i));
    }
  }
  const std::unordered_multimap<size_t, uint32_t>& build =
      prebuilt != nullptr ? *prebuilt : local_build;

  // Probe: collect candidate pairs.
  std::vector<uint32_t> lrows, rrows;
  lrows.reserve(left.num_rows());
  rrows.reserve(left.num_rows());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    if (!RowHasNullKey(left, left_keys_, i)) {
      size_t h = HashRowKeys(left, left_keys_, i);
      auto range = build.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        if (KeysEqual(left, left_keys_, i, right, right_keys_, it->second)) {
          lrows.push_back(static_cast<uint32_t>(i));
          rrows.push_back(it->second);
        }
      }
    }
  }

  TablePtr candidates = BuildJoinOutput(output_schema_, left, right, lrows,
                                        rrows);

  // Residual predicate filters candidate pairs.
  std::vector<uint8_t> keep(lrows.size(), 1);
  if (residual_) {
    DBSP_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                          EvaluatePredicate(*residual_, *candidates));
    std::fill(keep.begin(), keep.end(), 0);
    for (uint32_t s : sel) keep[s] = 1;
  }

  if (type_ == JoinType::kInner) {
    std::vector<uint32_t> sel;
    sel.reserve(lrows.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
    }
    if (sel.size() == keep.size()) return candidates;
    return candidates->Gather(sel);
  }

  // LEFT OUTER: surviving candidates + NULL-padded unmatched left rows.
  std::vector<uint8_t> matched(left.num_rows(), 0);
  std::vector<uint32_t> sel;
  sel.reserve(lrows.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) {
      matched[lrows[i]] = 1;
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  TablePtr matched_out = candidates->Gather(sel);
  std::vector<uint32_t> unmatched_l;
  for (size_t i = 0; i < left.num_rows(); ++i) {
    if (!matched[i]) unmatched_l.push_back(static_cast<uint32_t>(i));
  }
  if (unmatched_l.empty()) return matched_out;
  std::vector<uint32_t> unmatched_r(unmatched_l.size(), kNoMatch);
  TablePtr padded =
      BuildJoinOutput(output_schema_, left, right, unmatched_l, unmatched_r);
  matched_out->AppendAll(*padded);
  return matched_out;
}

std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>>
PhysicalHashJoin::GetOrBuildSerialHash(ExecContext& ctx,
                                       const TablePtr& right) const {
  const bool cache_enabled =
      ctx.options != nullptr && ctx.options->optimizer.enable_join_build_cache;
  if (cache_enabled) {
    auto it = ctx.join_builds.find(this);
    if (it != ctx.join_builds.end() && it->second.table == right &&
        it->second.map != nullptr) {
      ++ctx.stats.build_cache_hits;
      return it->second.map;
    }
  }
  auto fresh = std::make_shared<std::unordered_multimap<size_t, uint32_t>>();
  fresh->reserve(right->num_rows());
  for (size_t i = 0; i < right->num_rows(); ++i) {
    if (RowHasNullKey(*right, right_keys_, i)) continue;
    fresh->emplace(HashRowKeys(*right, right_keys_, i),
                   static_cast<uint32_t>(i));
  }
  std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>> build =
      std::move(fresh);
  if (cache_enabled) {
    ExecContext::JoinBuildState& slot = ctx.join_builds[this];
    slot.table = right;
    slot.map = build;
    slot.partitions = nullptr;
    slot.num_partitions = 0;
  }
  return build;
}

Result<TablePtr> PhysicalHashJoin::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr left, ExecuteOp(*children_[0], ctx));
  DBSP_ASSIGN_OR_RETURN(TablePtr right, ExecuteOp(*children_[1], ctx));

  // Loop-invariant build caching: when this operator re-executes (a loop
  // body) with the identical build-side table version, reuse the previous
  // build structure. Pointer identity is a sound validity check because the
  // engine's results and catalog tables are copy-on-write — a reused
  // TablePtr implies unchanged contents.
  const bool cache_enabled =
      ctx.options != nullptr && ctx.options->optimizer.enable_join_build_cache;

  if (ctx.UseParallel(left->num_rows() + right->num_rows())) {
    // Shared-nothing simulation: shuffle both inputs on the join key so
    // co-partitioned pairs meet on the same simulated node. A cached build
    // side is already resident on the nodes and is not re-shuffled. The
    // shuffle can fail (injection point), always before any context state
    // is touched, so the enclosing step can simply re-run.
    DBSP_RETURN_NOT_OK(MaybeInjectFault(ctx.faults, "exec.join.shuffle"));
    size_t parts = ctx.NumPartitions();
    std::shared_ptr<const std::vector<TablePtr>> rparts;
    if (cache_enabled) {
      auto it = ctx.join_builds.find(this);
      if (it != ctx.join_builds.end() && it->second.table == right &&
          it->second.partitions != nullptr &&
          it->second.num_partitions == parts) {
        rparts = it->second.partitions;
        ++ctx.stats.build_cache_hits;
      }
    }
    std::vector<TablePtr> lparts = HashPartition(*left, left_keys_, parts);
    ctx.stats.rows_shuffled += static_cast<int64_t>(left->num_rows());
    if (rparts == nullptr) {
      rparts = std::make_shared<const std::vector<TablePtr>>(
          HashPartition(*right, right_keys_, parts));
      ctx.stats.rows_shuffled += static_cast<int64_t>(right->num_rows());
      if (cache_enabled) {
        ExecContext::JoinBuildState& slot = ctx.join_builds[this];
        slot.table = right;
        slot.map = nullptr;
        slot.partitions = rparts;
        slot.num_partitions = parts;
      }
    }
    std::vector<TablePtr> results(parts);
    Status st = ctx.pool->ParallelForStatus(
        parts,
        [&](size_t p) -> Status {
          DBSP_ASSIGN_OR_RETURN(
              results[p],
              JoinPartition(ctx, *lparts[p], *(*rparts)[p], nullptr));
          return Status::OK();
        },
        ctx.faults, "mpp.dispatch", &ctx.cancel);
    DBSP_RETURN_NOT_OK(st);
    TablePtr out = Gather(results);
    ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
    return out;
  }

  std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>> build =
      GetOrBuildSerialHash(ctx, right);
  DBSP_ASSIGN_OR_RETURN(TablePtr out,
                        JoinPartition(ctx, *left, *right, build.get()));
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

Result<TablePtr> PhysicalNestedLoopJoin::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr left, ExecuteOp(*children_[0], ctx));
  DBSP_ASSIGN_OR_RETURN(TablePtr right, ExecuteOp(*children_[1], ctx));

  size_t ln = left->num_columns();
  auto out = Table::Make(output_schema_);
  std::vector<uint8_t> matched(left->num_rows(), 0);
  std::vector<Value> row;

  for (size_t i = 0; i < left->num_rows(); ++i) {
    for (size_t j = 0; j < right->num_rows(); ++j) {
      row.clear();
      row.reserve(output_schema_.num_columns());
      for (size_t c = 0; c < ln; ++c) row.push_back(left->GetValue(i, c));
      for (size_t c = 0; c < right->num_columns(); ++c) {
        row.push_back(right->GetValue(j, c));
      }
      bool pass = true;
      if (condition_) {
        // Evaluate the condition over a single-row scratch table.
        auto scratch = Table::Make(output_schema_);
        scratch->AppendRow(row);
        Result<Value> v = EvaluateExpr(*condition_, *scratch, 0);
        if (!v.ok()) return v.status();
        pass = !v->is_null() && v->bool_value();
      }
      if (pass) {
        out->AppendRow(row);
        matched[i] = 1;
      }
    }
  }

  if (type_ == JoinType::kLeft) {
    for (size_t i = 0; i < left->num_rows(); ++i) {
      if (matched[i]) continue;
      std::vector<Value> row;
      row.reserve(output_schema_.num_columns());
      for (size_t c = 0; c < ln; ++c) row.push_back(left->GetValue(i, c));
      for (size_t c = ln; c < output_schema_.num_columns(); ++c) {
        row.push_back(Value::Null(output_schema_.column(c).type));
      }
      out->AppendRow(row);
    }
  }
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
