// Intentionally small: scans are zero-copy reads of already-materialized
// tables (see PhysicalScan::Execute in physical_plan.cc). This file exists
// to host scan-related helpers if the storage layer grows paged scans.

#include "exec/physical_plan.h"

namespace dbspinner {}  // namespace dbspinner
