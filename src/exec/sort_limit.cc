#include <algorithm>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"

namespace dbspinner {

Result<TablePtr> PhysicalSort::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));
  size_t n = input->num_rows();

  // Evaluate key expressions once, then argsort.
  std::vector<ColumnVectorPtr> key_cols;
  key_cols.reserve(keys_.size());
  for (const auto& k : keys_) {
    DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                          EvaluateExprBatch(*k.expr, *input));
    key_cols.push_back(std::move(col));
  }

  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      int cmp = key_cols[k]->GetValue(a).Compare(key_cols[k]->GetValue(b));
      if (cmp != 0) return keys_[k].descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  TablePtr out = input->Gather(order);
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

Result<TablePtr> PhysicalLimit::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));
  int64_t n = static_cast<int64_t>(input->num_rows());
  int64_t begin = std::min(offset_, n);
  int64_t end = limit_ < 0 ? n : std::min(n, begin + limit_);
  if (begin == 0 && end == n) return input;
  std::vector<uint32_t> sel;
  sel.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) {
    sel.push_back(static_cast<uint32_t>(i));
  }
  return input->Gather(sel);
}

}  // namespace dbspinner
