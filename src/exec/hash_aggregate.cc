#include <unordered_map>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

Result<TablePtr> PhysicalHashAggregate::AggregatePartition(
    const Table& input) const {
  size_t n = input.num_rows();
  size_t ng = group_exprs_.size();
  size_t na = aggregates_.size();

  // Evaluate group-key and aggregate-argument expressions as columns.
  std::vector<ColumnVectorPtr> key_cols;
  key_cols.reserve(ng);
  for (const auto& g : group_exprs_) {
    DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExprBatch(*g, input));
    key_cols.push_back(std::move(col));
  }
  std::vector<ColumnVectorPtr> arg_cols(na);
  for (size_t a = 0; a < na; ++a) {
    if (aggregates_[a].arg) {
      DBSP_ASSIGN_OR_RETURN(arg_cols[a],
                            EvaluateExprBatch(*aggregates_[a].arg, input));
    }
  }

  auto hash_key = [&](size_t row) {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const auto& col : key_cols) {
      size_t hc = col->HashAt(row);
      h ^= hc + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  };
  auto keys_equal = [&](size_t a, size_t b) {
    for (const auto& col : key_cols) {
      if (!col->EqualsAt(a, *col, b)) return false;
    }
    return true;
  };

  struct Group {
    uint32_t first_row;
    std::vector<AggState> states;
    std::vector<DistinctFilter> distincts;
  };
  std::vector<Group> groups;
  std::unordered_multimap<size_t, uint32_t> index;  // hash -> group ordinal
  index.reserve(n);

  auto make_group = [&](size_t row) {
    Group g;
    g.first_row = static_cast<uint32_t>(row);
    g.states.reserve(na);
    for (const auto& spec : aggregates_) {
      g.states.emplace_back(spec.kind);
      (void)spec;
    }
    g.distincts.resize(na);
    return g;
  };

  if (ng == 0) {
    // Global aggregation: exactly one output row, even for empty input.
    Group g = make_group(0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t a = 0; a < na; ++a) {
        Value v = aggregates_[a].arg ? arg_cols[a]->GetValue(i) : Value();
        if (aggregates_[a].distinct && !v.is_null() &&
            !g.distincts[a].Insert(v)) {
          continue;
        }
        g.states[a].Update(v);
      }
    }
    auto out = Table::Make(output_schema_);
    std::vector<Value> row;
    for (size_t a = 0; a < na; ++a) {
      row.push_back(g.states[a].Finalize(aggregates_[a].result_type));
    }
    out->AppendRow(row);
    return out;
  }

  for (size_t i = 0; i < n; ++i) {
    size_t h = hash_key(i);
    uint32_t gid = 0xffffffffu;
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (keys_equal(i, groups[it->second].first_row)) {
        gid = it->second;
        break;
      }
    }
    if (gid == 0xffffffffu) {
      gid = static_cast<uint32_t>(groups.size());
      groups.push_back(make_group(i));
      index.emplace(h, gid);
    }
    Group& g = groups[gid];
    for (size_t a = 0; a < na; ++a) {
      Value v = aggregates_[a].arg ? arg_cols[a]->GetValue(i) : Value();
      if (aggregates_[a].distinct && !v.is_null() &&
          !g.distincts[a].Insert(v)) {
        continue;
      }
      g.states[a].Update(v);
    }
  }

  // Assemble output: group key columns (first-occurrence values) then
  // finalized aggregates.
  std::vector<uint32_t> first_rows;
  first_rows.reserve(groups.size());
  for (const auto& g : groups) first_rows.push_back(g.first_row);

  std::vector<ColumnVectorPtr> out_cols;
  out_cols.reserve(ng + na);
  for (size_t k = 0; k < ng; ++k) {
    ColumnVectorPtr col = key_cols[k]->Gather(first_rows);
    if (col->type() != output_schema_.column(k).type) {
      auto cast = std::make_shared<ColumnVector>(output_schema_.column(k).type);
      cast->AppendAll(*col);
      col = std::move(cast);
    }
    out_cols.push_back(std::move(col));
  }
  for (size_t a = 0; a < na; ++a) {
    auto col =
        std::make_shared<ColumnVector>(output_schema_.column(ng + a).type);
    col->Reserve(groups.size());
    for (const auto& g : groups) {
      col->Append(g.states[a].Finalize(aggregates_[a].result_type));
    }
    out_cols.push_back(std::move(col));
  }
  return Table::FromColumns(output_schema_, std::move(out_cols));
}

Result<TablePtr> PhysicalHashAggregate::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));

  if (!group_exprs_.empty() && ctx.UseParallel(input->num_rows())) {
    // Shuffle on the group key so each simulated node owns whole groups,
    // then aggregate partitions independently (shared-nothing two-phase).
    // The shuffle can fail (injection point) before any state is touched.
    DBSP_RETURN_NOT_OK(MaybeInjectFault(ctx.faults, "exec.aggregate.shuffle"));
    size_t parts = ctx.NumPartitions();
    // Materialize key columns for partitioning.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& g : group_exprs_) {
      DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExprBatch(*g, *input));
      key_cols.push_back(std::move(col));
    }
    // Extend the input with key columns so HashPartition can address them.
    Schema ext_schema = input->schema();
    std::vector<ColumnVectorPtr> ext_cols;
    for (size_t c = 0; c < input->num_columns(); ++c) {
      ext_cols.push_back(input->column_ptr(c));
    }
    std::vector<size_t> key_idx;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      ext_schema.AddColumn("__key" + std::to_string(k), key_cols[k]->type());
      key_idx.push_back(input->num_columns() + k);
      ext_cols.push_back(key_cols[k]);
    }
    TablePtr ext = Table::FromColumns(ext_schema, std::move(ext_cols));
    std::vector<TablePtr> parts_tables = HashPartition(*ext, key_idx, parts);
    ctx.stats.rows_shuffled += static_cast<int64_t>(input->num_rows());

    std::vector<TablePtr> results(parts_tables.size());
    Status st = ctx.pool->ParallelForStatus(
        parts_tables.size(),
        [&](size_t p) -> Status {
          // Drop the helper key columns: expressions reference original
          // ordinals, which are unchanged.
          DBSP_ASSIGN_OR_RETURN(results[p],
                                AggregatePartition(*parts_tables[p]));
          return Status::OK();
        },
        ctx.faults, "mpp.dispatch", &ctx.cancel);
    DBSP_RETURN_NOT_OK(st);
    TablePtr out = Gather(results);
    ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
    return out;
  }

  DBSP_ASSIGN_OR_RETURN(TablePtr out, AggregatePartition(*input));
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
