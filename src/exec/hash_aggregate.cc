#include "exec/hash_aggregate.h"

#include <unordered_map>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

namespace {

size_t MixKeyHash(const std::vector<ColumnVectorPtr>& cols, size_t row) {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& col : cols) {
    size_t hc = col->HashAt(row);
    h ^= hc + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool KeysEqualAt(const std::vector<ColumnVectorPtr>& a, size_t arow,
                 const std::vector<ColumnVectorPtr>& b, size_t brow) {
  for (size_t k = 0; k < a.size(); ++k) {
    if (!a[k]->EqualsAt(arow, *b[k], brow)) return false;
  }
  return true;
}

}  // namespace

GroupedAggregator::Group GroupedAggregator::MakeGroup() const {
  Group g;
  g.states.reserve(aggregates_->size());
  for (const AggregateSpec& spec : *aggregates_) {
    g.states.emplace_back(spec.kind);
  }
  g.distincts.resize(aggregates_->size());
  return g;
}

void GroupedAggregator::UpdateGroup(
    Group* g, const std::vector<ColumnVectorPtr>& arg_cols, size_t row) {
  const std::vector<AggregateSpec>& aggs = *aggregates_;
  for (size_t a = 0; a < aggs.size(); ++a) {
    Value v = aggs[a].arg ? arg_cols[a]->GetValue(row) : Value();
    if (aggs[a].distinct) {
      // Distinct aggregates fold at Finalize, after partials merge: the
      // state update is deferred and only the seen-set grows here. NULLs
      // are dropped outright — Update(NULL) is a no-op for every kind that
      // can carry DISTINCT, so this matches the legacy row loop.
      if (!v.is_null()) g->distincts[a].Insert(v);
      continue;
    }
    g->states[a].Update(v);
  }
}

void GroupedAggregator::EnsureKeyStore(
    const std::vector<ColumnVectorPtr>& key_cols) {
  if (!key_store_.empty() || key_cols.empty()) return;
  key_store_.reserve(key_cols.size());
  for (const auto& col : key_cols) {
    key_store_.push_back(std::make_shared<ColumnVector>(col->type()));
  }
}

size_t GroupedAggregator::FindOrCreateGroup(
    size_t h, const std::vector<ColumnVectorPtr>& cols, size_t row) {
  auto range = index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (KeysEqualAt(cols, row, key_store_, it->second)) return it->second;
  }
  size_t gid = groups_.size();
  groups_.push_back(MakeGroup());
  for (size_t k = 0; k < key_store_.size(); ++k) {
    key_store_[k]->AppendFrom(*cols[k], row);
  }
  index_.emplace(h, static_cast<uint32_t>(gid));
  return gid;
}

Status GroupedAggregator::Consume(const Table& input) {
  size_t n = input.num_rows();
  size_t ng = group_exprs_->size();
  size_t na = aggregates_->size();
  rows_consumed_ += static_cast<int64_t>(n);

  if (ng == 0 && groups_.empty()) {
    groups_.push_back(MakeGroup());  // global aggregate: exactly one group
  }
  if (n == 0) return Status::OK();

  std::vector<ColumnVectorPtr> key_cols;
  key_cols.reserve(ng);
  for (const auto& g : *group_exprs_) {
    DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col, EvaluateExprBatch(*g, input));
    key_cols.push_back(std::move(col));
  }
  std::vector<ColumnVectorPtr> arg_cols(na);
  for (size_t a = 0; a < na; ++a) {
    if ((*aggregates_)[a].arg) {
      DBSP_ASSIGN_OR_RETURN(
          arg_cols[a], EvaluateExprBatch(*(*aggregates_)[a].arg, input));
    }
  }

  if (ng == 0) {
    for (size_t i = 0; i < n; ++i) UpdateGroup(&groups_[0], arg_cols, i);
    return Status::OK();
  }

  EnsureKeyStore(key_cols);
  for (size_t i = 0; i < n; ++i) {
    size_t gid = FindOrCreateGroup(MixKeyHash(key_cols, i), key_cols, i);
    UpdateGroup(&groups_[gid], arg_cols, i);
  }
  return Status::OK();
}

Status GroupedAggregator::MergeFrom(const GroupedAggregator& other) {
  size_t na = aggregates_->size();
  rows_consumed_ += other.rows_consumed_;

  auto merge_group = [na](Group* into, const Group& from) {
    for (size_t a = 0; a < na; ++a) {
      into->states[a].MergeFrom(from.states[a]);
      into->distincts[a].MergeFrom(from.distincts[a]);
    }
  };

  if (group_exprs_->empty()) {
    if (other.groups_.empty()) return Status::OK();
    if (groups_.empty()) groups_.push_back(MakeGroup());
    merge_group(&groups_[0], other.groups_[0]);
    return Status::OK();
  }

  EnsureKeyStore(other.key_store_);
  for (size_t o = 0; o < other.groups_.size(); ++o) {
    size_t gid =
        FindOrCreateGroup(MixKeyHash(other.key_store_, o), other.key_store_, o);
    merge_group(&groups_[gid], other.groups_[o]);
  }
  return Status::OK();
}

Result<TablePtr> GroupedAggregator::Finalize() {
  size_t ng = group_exprs_->size();
  size_t na = aggregates_->size();
  const std::vector<AggregateSpec>& aggs = *aggregates_;

  // A zero-input global aggregate still emits its single row.
  if (ng == 0 && groups_.empty()) groups_.push_back(MakeGroup());

  auto finalize_agg = [&](const Group& g, size_t a) {
    if (aggs[a].distinct) {
      // Fold the merged distinct set exactly once, now that every partial
      // has contributed its values.
      AggState s(aggs[a].kind);
      g.distincts[a].ForEach([&s](const Value& v) { s.Update(v); });
      return s.Finalize(aggs[a].result_type);
    }
    return g.states[a].Finalize(aggs[a].result_type);
  };

  std::vector<ColumnVectorPtr> out_cols;
  out_cols.reserve(ng + na);
  for (size_t k = 0; k < ng; ++k) {
    // A grouped aggregate that never consumed a row has no key store;
    // it emits zero groups through empty columns of the output types.
    ColumnVectorPtr col =
        k < key_store_.size()
            ? key_store_[k]
            : std::make_shared<ColumnVector>(output_schema_->column(k).type);
    if (col->type() != output_schema_->column(k).type) {
      auto cast =
          std::make_shared<ColumnVector>(output_schema_->column(k).type);
      cast->AppendAll(*col);
      col = std::move(cast);
    }
    out_cols.push_back(std::move(col));
  }
  for (size_t a = 0; a < na; ++a) {
    auto col =
        std::make_shared<ColumnVector>(output_schema_->column(ng + a).type);
    col->Reserve(groups_.size());
    for (const Group& g : groups_) col->Append(finalize_agg(g, a));
    out_cols.push_back(std::move(col));
  }
  return Table::FromColumns(*output_schema_, std::move(out_cols));
}

Result<TablePtr> PhysicalHashAggregate::AggregatePartition(
    const Table& input) const {
  GroupedAggregator agg(&group_exprs_, &aggregates_, &output_schema_);
  DBSP_RETURN_NOT_OK(agg.Consume(input));
  return agg.Finalize();
}

Result<TablePtr> PhysicalHashAggregate::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));

  if (!group_exprs_.empty() && ctx.UseParallel(input->num_rows())) {
    // Shuffle on the group key so each simulated node owns whole groups,
    // then aggregate partitions independently (shared-nothing two-phase).
    // The shuffle can fail (injection point) before any state is touched.
    DBSP_RETURN_NOT_OK(MaybeInjectFault(ctx.faults, "exec.aggregate.shuffle"));
    size_t parts = ctx.NumPartitions();
    // Materialize key columns for partitioning.
    std::vector<ColumnVectorPtr> key_cols;
    for (const auto& g : group_exprs_) {
      DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                            EvaluateExprBatch(*g, *input));
      key_cols.push_back(std::move(col));
    }
    // Extend the input with key columns so HashPartition can address them.
    Schema ext_schema = input->schema();
    std::vector<ColumnVectorPtr> ext_cols;
    for (size_t c = 0; c < input->num_columns(); ++c) {
      ext_cols.push_back(input->column_ptr(c));
    }
    std::vector<size_t> key_idx;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      ext_schema.AddColumn("__key" + std::to_string(k), key_cols[k]->type());
      key_idx.push_back(input->num_columns() + k);
      ext_cols.push_back(key_cols[k]);
    }
    TablePtr ext = Table::FromColumns(ext_schema, std::move(ext_cols));
    std::vector<TablePtr> parts_tables = HashPartition(*ext, key_idx, parts);
    ctx.stats.rows_shuffled += static_cast<int64_t>(input->num_rows());

    std::vector<TablePtr> results(parts_tables.size());
    Status st = ctx.pool->ParallelForStatus(
        parts_tables.size(),
        [&](size_t p) -> Status {
          // Drop the helper key columns: expressions reference original
          // ordinals, which are unchanged.
          DBSP_ASSIGN_OR_RETURN(results[p],
                                AggregatePartition(*parts_tables[p]));
          return Status::OK();
        },
        ctx.faults, "mpp.dispatch", &ctx.cancel);
    DBSP_RETURN_NOT_OK(st);
    TablePtr out = Gather(results);
    ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
    return out;
  }

  DBSP_ASSIGN_OR_RETURN(TablePtr out, AggregatePartition(*input));
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
