#include "exec/data_chunk.h"

#include <algorithm>

namespace dbspinner {

void DataChunk::Restrict(const std::vector<uint32_t>& positions) {
  std::vector<uint32_t> next;
  next.reserve(positions.size());
  for (uint32_t p : positions) next.push_back(RowAt(p));
  SetSelection(std::move(next));
}

TablePtr DataChunk::Materialize() const {
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(base_->num_columns());
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    auto col = std::make_shared<ColumnVector>(base_->column(c).type());
    if (has_sel_) {
      col->AppendGathered(base_->column(c), sel_);
    } else {
      col->AppendRange(base_->column(c), begin_, count_);
    }
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(base_->schema(), std::move(cols));
}

void DataChunk::AppendTo(std::vector<ColumnVectorPtr>* out) const {
  for (size_t c = 0; c < base_->num_columns(); ++c) {
    if (has_sel_) {
      (*out)[c]->AppendGathered(base_->column(c), sel_);
    } else {
      (*out)[c]->AppendRange(base_->column(c), begin_, count_);
    }
  }
}

std::vector<DataChunk> SplitIntoMorsels(const TablePtr& table,
                                        size_t morsel_size) {
  if (morsel_size == 0) morsel_size = 1;
  std::vector<DataChunk> chunks;
  size_t n = table->num_rows();
  chunks.reserve((n + morsel_size - 1) / morsel_size);
  for (size_t begin = 0; begin < n; begin += morsel_size) {
    chunks.emplace_back(table, begin, std::min(morsel_size, n - begin));
  }
  return chunks;
}

}  // namespace dbspinner
