// Streaming grouped aggregation with mergeable partials.
//
// GroupedAggregator is the hash-aggregation kernel shared by the legacy
// operator-at-a-time path (PhysicalHashAggregate::Execute aggregates one
// materialized partition per call) and the vectorized pipeline executor
// (DESIGN.md §11), where each pipeline worker folds its morsels into a
// private partial table and the driver merges the partials once at the
// breaker. Merging is exact: every AggState is a commutative monoid, and
// DISTINCT aggregates defer state updates until Finalize so unioned
// distinct sets count each value exactly once.

#pragma once

#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expr/aggregate_functions.h"
#include "expr/expr.h"
#include "storage/table.h"

namespace dbspinner {

class GroupedAggregator {
 public:
  /// The referenced expression/spec/schema vectors must outlive the
  /// aggregator (they belong to the PhysicalHashAggregate driving it).
  GroupedAggregator(const std::vector<BoundExprPtr>* group_exprs,
                    const std::vector<AggregateSpec>* aggregates,
                    const Schema* output_schema)
      : group_exprs_(group_exprs),
        aggregates_(aggregates),
        output_schema_(output_schema) {}

  /// Evaluates the group-key and aggregate-argument expressions over
  /// `input` and folds every row into the hash table.
  Status Consume(const Table& input);

  /// Folds another partial (built over the same operator) into this one.
  Status MergeFrom(const GroupedAggregator& other);

  /// Emits the output table: group keys (first-occurrence values, cast to
  /// the output schema) then finalized aggregates. A global aggregate (no
  /// GROUP BY) emits exactly one row even when nothing was consumed.
  Result<TablePtr> Finalize();

  size_t num_groups() const { return groups_.size(); }
  int64_t rows_consumed() const { return rows_consumed_; }

 private:
  struct Group {
    std::vector<AggState> states;
    std::vector<DistinctFilter> distincts;
  };

  Group MakeGroup() const;
  void UpdateGroup(Group* g, const std::vector<ColumnVectorPtr>& arg_cols,
                   size_t row);
  /// Lazily creates the per-group key storage with the evaluated key
  /// column types (stable across chunks for a fixed expression).
  void EnsureKeyStore(const std::vector<ColumnVectorPtr>& key_cols);
  /// Finds the group whose stored key equals row `row` of `key_cols`, or
  /// creates it (appending the key values to the store). `h` is the mixed
  /// key hash for that row.
  size_t FindOrCreateGroup(size_t h, const std::vector<ColumnVectorPtr>& cols,
                           size_t row);

  const std::vector<BoundExprPtr>* group_exprs_;
  const std::vector<AggregateSpec>* aggregates_;
  const Schema* output_schema_;

  /// One column per group expression, one entry per group (in group order):
  /// the first-occurrence key values, also the equality side of the probe.
  std::vector<ColumnVectorPtr> key_store_;
  std::vector<Group> groups_;
  std::unordered_multimap<size_t, uint32_t> index_;  ///< key hash -> group
  int64_t rows_consumed_ = 0;
};

}  // namespace dbspinner
