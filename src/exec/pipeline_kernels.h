// Compiled chunk kernels for the vectorized pipeline executor.
//
// A ChunkFilter / ChunkProjector is compiled once per pipeline execution and
// then applied to every morsel. Kernels are monomorphic loops over the raw
// column arrays; anything a kernel cannot express falls back to the row-wise
// evaluator over exactly the same rows, so results (including NULL and
// error semantics) are identical to the legacy operator-at-a-time executor.

#pragma once

#include <cstdint>
#include <vector>

#include "exec/data_chunk.h"
#include "expr/expr.h"

namespace dbspinner {

/// Per-morsel kernel-row counters, merged into ExecStats by the driver.
struct KernelCounters {
  int64_t filter_rows = 0;
  int64_t project_rows = 0;
  int64_t probe_rows = 0;
};

/// A compiled predicate. Splits the expression into conjuncts and finds the
/// longest prefix of numeric-comparison conjuncts (column/constant operands
/// only — exactly the forms the row engine's vectorized comparisons accept,
/// all guaranteed error-free). Application runs the prefix as branch-free
/// kernels and the remaining conjuncts row-wise on the survivors.
///
/// The prefix restriction is what keeps error/NULL ordering exact: a row
/// dropped by a FALSE prefix conjunct is a row the row-wise AND would have
/// short-circuited before reaching any later (possibly erroring) conjunct.
/// If a prefix kernel produces NULL for any row of a chunk (a NULL column
/// input), the whole chunk falls back to the full row-wise predicate, since
/// NULL does not short-circuit AND.
class ChunkFilter {
 public:
  /// `predicate` must outlive this object.
  explicit ChunkFilter(const BoundExpr* predicate);

  /// Refines `chunk` to the passing rows.
  Status Apply(DataChunk* chunk, KernelCounters* counters) const;

  /// True if at least one conjunct runs as a kernel.
  bool has_kernels() const { return !kernel_prefix_.empty(); }

 private:
  Status ApplyRowWise(const BoundExpr& expr, DataChunk* chunk) const;

  const BoundExpr* predicate_;
  std::vector<BoundExprPtr> kernel_prefix_;
  BoundExprPtr rest_;  ///< non-kernel conjuncts re-ANDed; null when none
};

/// A compiled projection list. Column references and two-operand numeric
/// arithmetic/comparisons (column/constant operands) run as batch kernels;
/// everything else evaluates row-wise into the output vector.
class ChunkProjector {
 public:
  /// `exprs` and `output_schema` must outlive this object.
  ChunkProjector(const std::vector<BoundExprPtr>* exprs,
                 const Schema* output_schema);

  /// Projects `chunk` into a new dense chunk over `output_schema` types.
  Result<DataChunk> Apply(const DataChunk& chunk,
                          KernelCounters* counters) const;

 private:
  const std::vector<BoundExprPtr>* exprs_;
  const Schema* output_schema_;
};

}  // namespace dbspinner
