// Physical operators and the execution context.
//
// The executor is operator-at-a-time: each operator fully materializes its
// output table. This matches the paper's setting (MPPDB materializes CTE,
// working, and common-result tables) and makes the costs the optimizations
// remove — copies, recomputed joins, unfiltered scans — directly measurable.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "engine/options.h"
#include "expr/aggregate_functions.h"
#include "expr/expr.h"
#include "mpp/thread_pool.h"
#include "parser/ast.h"
#include "storage/catalog.h"
#include "storage/result_registry.h"
#include "storage/table.h"

namespace dbspinner {

/// Counters accumulated during one statement's execution.
struct ExecStats {
  int64_t steps_executed = 0;
  int64_t loop_iterations = 0;
  int64_t rows_materialized = 0;
  int64_t rows_shuffled = 0;   ///< rows moved through Exchange (MPP)
  int64_t renames = 0;
  int64_t merge_updates = 0;   ///< updated rows identified by MergeUpdate
  int64_t delta_rows = 0;      ///< rows emitted by ComputeDelta (old + new
                               ///< versions of changed rows, all iterations)
  int64_t delta_probe_rows = 0;  ///< driving rows kept by DeltaRestrict
                                 ///< (the semi-naive recompute frontier)
  int64_t build_cache_hits = 0;  ///< hash-join build sides reused across
                                 ///< iterations

  // Fault-tolerance counters (see exec/program_executor.cc).
  int64_t faults_seen = 0;        ///< step executions felled by an injected
                                  ///< fault (retryable or worker-lost)
  int64_t step_retries = 0;       ///< idempotent step re-executions after a
                                  ///< retryable fault
  int64_t checkpoints_taken = 0;  ///< loop-state snapshots (every K
                                  ///< iterations + one per kInitLoop)
  int64_t restores = 0;           ///< rollbacks to the last checkpoint (or to
                                  ///< program start when none exists yet);
                                  ///< also counts a cross-process resume from
                                  ///< a durable checkpoint (DESIGN.md §12)
  int64_t durable_checkpoints = 0;  ///< checkpoints additionally serialized
                                    ///< to the storage layer (WAL + extents)

  /// Verifier diagnostics observed while planning this statement with
  /// EngineOptions::verify.enforce off (the release-build escape hatch;
  /// see src/verify/verify.h). Always 0 on a healthy engine.
  int64_t verify_violations = 0;

  // Concurrent-serving counters (src/server/, DESIGN.md §10).
  int64_t queue_wait_us = 0;    ///< time this statement spent in the
                                ///< scheduler's admission queue
  int64_t admission_waits = 0;  ///< 1 if the statement had to queue before
                                ///< being admitted, else 0
  int64_t cancel_checks = 0;    ///< cancellation-token checks at executor
                                ///< step boundaries (live tokens only)

  // Vectorized-pipeline counters (exec/pipeline.cc, DESIGN.md §11).
  int64_t pipelines_run = 0;       ///< fused pipelines driven to completion
  int64_t morsels_dispatched = 0;  ///< morsels pulled through pipelines
  int64_t pipeline_rows_in = 0;    ///< source rows entering fused pipelines
  int64_t pipeline_rows_out = 0;   ///< rows surviving to the pipeline sink
  int64_t kernel_rows_filter = 0;  ///< rows scanned by filter kernels
  int64_t kernel_rows_project = 0; ///< rows produced by projection kernels
  int64_t kernel_rows_probe = 0;   ///< probe-side rows through fused joins
  int64_t pipeline_ns = 0;         ///< wall time inside pipeline drivers;
                                   ///< with the kernel_rows_* counters this
                                   ///< yields per-kernel rows/sec
  int64_t morsels_stolen = 0;      ///< morsels executed by a worker other
                                   ///< than the owner of their queue range
  int64_t agg_partials_merged = 0; ///< per-worker partial aggregate hash
                                   ///< tables merged at pipeline breakers
  int64_t agg_rows_preaggregated = 0;  ///< rows consumed directly by fused
                                       ///< pre-aggregation sinks (rows the
                                       ///< breaker never materialized)

  // Incremental view maintenance counters (src/ivm/, DESIGN.md §14).
  // Bookkeeping, not work-proportional: preserved by RewindWorkCountersTo.
  int64_t ivm_deltas_applied = 0;   ///< base-table deltas folded into views
  int64_t ivm_rows_maintained = 0;  ///< delta rows processed while folding
  int64_t ivm_full_refreshes = 0;   ///< incremental views recomputed in full
  int64_t ivm_fallbacks = 0;        ///< fallback-plan recomputes-on-read

  /// Rolls the work-proportional counters back to their values in `base`,
  /// preserving the monotonic bookkeeping counters (faults_seen,
  /// step_retries, checkpoints_taken, restores, verify_violations,
  /// queue_wait_us, admission_waits, cancel_checks). The fault-tolerant
  /// executor calls this before re-running a step and on checkpoint
  /// restore, so replayed work is not double-counted and a recovered run
  /// reports exactly the counters of a fault-free one (DESIGN.md §8, §11).
  void RewindWorkCountersTo(const ExecStats& base);

  std::string ToString() const;
};

/// Per-step runtime profile collected when ExecContext::profiling is on
/// (EXPLAIN ANALYZE). Keyed by step id; loop-body steps accumulate across
/// iterations.
struct StepProfile {
  int64_t executions = 0;
  double total_ms = 0;
  int64_t last_rows = -1;  ///< rows produced by the last execution (-1: n/a)
};

/// Per-loop runtime state (the paper's loop-operator bookkeeping).
struct LoopState {
  int64_t iteration = 0;
  int64_t last_update_count = 0;
  int64_t cumulative_updates = 0;
  TablePtr previous;        ///< previous CTE version for Delta conditions
  TablePtr delta_snapshot;  ///< CTE version diffed by the last ComputeDelta
                            ///< step (semi-naive iteration); null before the
                            ///< first body execution
};

class PhysicalOp;

/// Destination for durable executor checkpoints (DESIGN.md §12). Implemented
/// by the engine layer over the StorageManager; the executor only knows that
/// a checkpoint it just took can additionally be made crash-durable. Persist
/// is called after the in-memory checkpoint is captured, with the same
/// snapshot the in-process restore path would use.
class DurableCheckpointSink {
 public:
  virtual ~DurableCheckpointSink() = default;
  virtual Status Persist(
      size_t pc, const std::map<int, LoopState>& loops,
      const std::unordered_map<std::string, TablePtr>& registry) = 0;
};

/// Everything an executing plan needs. One per statement execution.
struct ExecContext {
  Catalog* catalog = nullptr;
  ResultRegistry* registry = nullptr;
  const EngineOptions* options = nullptr;
  ThreadPool* pool = nullptr;   ///< null => serial
  FaultInjector* faults = nullptr;  ///< null => no fault injection

  /// Cooperative cancellation for this statement. Inert (never fires) by
  /// default; the server layer installs a live token per query. Checked at
  /// executor step boundaries and before each parallel task dispatch.
  CancellationToken cancel;

  ExecStats stats;
  std::map<int, LoopState> loops;

  /// When set (persistence on + recovery on), every in-memory executor
  /// checkpoint is also persisted through this sink, making kill-9 resume
  /// possible (exec/program_executor.cc, DESIGN.md §12).
  DurableCheckpointSink* durable = nullptr;

  /// EXPLAIN ANALYZE instrumentation.
  bool profiling = false;
  std::map<int, StepProfile> profile;  ///< step id -> accumulated profile

  /// Hash-join build sides cached across loop iterations, keyed by operator
  /// identity. A cached entry is valid only while the operator's build input
  /// is the *identical* table version (TablePtr pointer equality) — sound
  /// because every result/catalog mutation in the engine is copy-on-write,
  /// so a reused pointer implies unchanged contents.
  struct JoinBuildState {
    TablePtr table;  ///< the build input version the entry was built from
    std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>> map;
    std::shared_ptr<const std::vector<TablePtr>> partitions;  ///< MPP path
    size_t num_partitions = 0;
  };
  std::map<const PhysicalOp*, JoinBuildState> join_builds;

  /// True if `rows` is large enough (and workers available) for the
  /// partitioned/parallel operator paths.
  bool UseParallel(size_t rows) const {
    return pool != nullptr && options != nullptr && options->num_workers > 1 &&
           rows >= options->mpp_min_rows_per_task;
  }
  size_t NumPartitions() const {
    return options == nullptr ? 1 : static_cast<size_t>(options->num_workers);
  }
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

/// How an operator participates in the vectorized pipeline executor
/// (exec/pipeline.cc). Streaming roles can be fused into a morsel-at-a-time
/// pipeline; breakers always materialize their full output.
enum class PipelineRole {
  kBreaker,        ///< materializes (sort, union, limit, ...)
  kSource,         ///< produces a table without children (scan, values)
  kFilter,         ///< streaming selection refinement
  kProject,        ///< streaming expression projection
  kHashProbe,      ///< streaming probe against a materialized build side
  kDeltaRestrict,  ///< streaming semi-join against a registry key set
  kPreAggregate,   ///< pipeline *sink*: consumes chunks into per-worker
                   ///< partial hash tables merged once at the breaker
                   ///< (never a mid-pipeline stage)
};

/// Base physical operator. Execute() is const and reusable: all mutable
/// state lives in ExecContext, so loop bodies re-execute the same operator
/// tree each iteration.
class PhysicalOp {
 public:
  explicit PhysicalOp(Schema schema) : output_schema_(std::move(schema)) {}
  virtual ~PhysicalOp() = default;

  virtual Result<TablePtr> Execute(ExecContext& ctx) const = 0;
  virtual const char* Name() const = 0;
  /// Extra per-operator detail for EXPLAIN.
  virtual std::string Describe() const { return ""; }
  virtual PipelineRole pipeline_role() const { return PipelineRole::kBreaker; }

  const Schema& output_schema() const { return output_schema_; }
  const std::vector<PhysicalOpPtr>& children() const { return children_; }
  void AddChild(PhysicalOpPtr child) { children_.push_back(std::move(child)); }

  std::string ToString(int indent = 0) const;

 protected:
  Schema output_schema_;
  std::vector<PhysicalOpPtr> children_;
};

// --- concrete operators -----------------------------------------------------

/// Reads a base table or a named intermediate result (zero-copy).
class PhysicalScan final : public PhysicalOp {
 public:
  PhysicalScan(Schema schema, bool from_catalog, std::string name)
      : PhysicalOp(std::move(schema)),
        from_catalog_(from_catalog),
        name_(std::move(name)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Scan"; }
  std::string Describe() const override {
    return (from_catalog_ ? "table:" : "result:") + name_;
  }
  const std::string& scan_name() const { return name_; }
  bool from_catalog() const { return from_catalog_; }
  PipelineRole pipeline_role() const override { return PipelineRole::kSource; }

 private:
  bool from_catalog_;
  std::string name_;
};

/// Emits constant rows.
class PhysicalValues final : public PhysicalOp {
 public:
  PhysicalValues(Schema schema, std::vector<std::vector<Value>> rows)
      : PhysicalOp(std::move(schema)), rows_(std::move(rows)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Values"; }
  PipelineRole pipeline_role() const override { return PipelineRole::kSource; }

 private:
  std::vector<std::vector<Value>> rows_;
};

/// Row filter (WHERE / HAVING / residual predicates).
class PhysicalFilter final : public PhysicalOp {
 public:
  PhysicalFilter(Schema schema, BoundExprPtr predicate)
      : PhysicalOp(std::move(schema)), predicate_(std::move(predicate)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Filter"; }
  std::string Describe() const override { return predicate_->ToString(); }
  PipelineRole pipeline_role() const override { return PipelineRole::kFilter; }
  const BoundExpr& predicate() const { return *predicate_; }

 private:
  BoundExprPtr predicate_;
};

/// Expression projection.
class PhysicalProject final : public PhysicalOp {
 public:
  PhysicalProject(Schema schema, std::vector<BoundExprPtr> exprs)
      : PhysicalOp(std::move(schema)), exprs_(std::move(exprs)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Project"; }
  PipelineRole pipeline_role() const override { return PipelineRole::kProject; }
  const std::vector<BoundExprPtr>& exprs() const { return exprs_; }

 private:
  std::vector<BoundExprPtr> exprs_;
};

/// Hash join on extracted equi-key pairs with an optional residual
/// predicate over the combined row. Supports INNER and LEFT OUTER.
/// Parallel mode hash-partitions both inputs (the MPP shuffle) and joins
/// partitions independently.
class PhysicalHashJoin final : public PhysicalOp {
 public:
  PhysicalHashJoin(Schema schema, JoinType type, std::vector<size_t> left_keys,
                   std::vector<size_t> right_keys, BoundExprPtr residual)
      : PhysicalOp(std::move(schema)),
        type_(type),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "HashJoin"; }
  std::string Describe() const override;
  PipelineRole pipeline_role() const override {
    return PipelineRole::kHashProbe;
  }

  JoinType join_type() const { return type_; }
  const std::vector<size_t>& left_keys() const { return left_keys_; }
  const std::vector<size_t>& right_keys() const { return right_keys_; }
  const BoundExpr* residual() const { return residual_.get(); }

  /// Planner-estimated build-side cardinality (exec/physical_planner.cc,
  /// from the cost model). Negative when the plan was compiled without a
  /// catalog — the probe then stays a breaker under MPP (conservative).
  /// The pipeline executor fuses this probe in parallel pipelines only
  /// when the estimate fits EngineOptions::broadcast_build_rows; larger
  /// builds keep the partitioned shuffle path and its rows_shuffled /
  /// partition-cache semantics.
  double build_rows_estimate() const { return build_rows_estimate_; }
  void set_build_rows_estimate(double rows) { build_rows_estimate_ = rows; }

  /// Serial build side with the cross-iteration cache (pointer-identity
  /// validated, counts build_cache_hits). Shared by Execute() and the
  /// pipeline executor's fused probe stage.
  std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>>
  GetOrBuildSerialHash(ExecContext& ctx, const TablePtr& right) const;

 private:
  /// Joins one co-partitioned pair. `prebuilt` (optional) is a cached build
  /// hash over `right`; when null the build side is hashed locally.
  Result<TablePtr> JoinPartition(
      ExecContext& ctx, const Table& left, const Table& right,
      const std::unordered_multimap<size_t, uint32_t>* prebuilt) const;

  JoinType type_;
  std::vector<size_t> left_keys_;
  std::vector<size_t> right_keys_;
  BoundExprPtr residual_;  ///< over [left ++ right]; may be null
  double build_rows_estimate_ = -1.0;
};

/// Fallback join for non-equi or missing conditions (cross join).
class PhysicalNestedLoopJoin final : public PhysicalOp {
 public:
  PhysicalNestedLoopJoin(Schema schema, JoinType type, BoundExprPtr condition)
      : PhysicalOp(std::move(schema)),
        type_(type),
        condition_(std::move(condition)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "NestedLoopJoin"; }

 private:
  JoinType type_;
  BoundExprPtr condition_;  ///< may be null (cross join)
};

/// Hash aggregation. Parallel mode hash-partitions the input on the group
/// key (shuffle) and aggregates partitions independently.
class PhysicalHashAggregate final : public PhysicalOp {
 public:
  PhysicalHashAggregate(Schema schema, std::vector<BoundExprPtr> group_exprs,
                        std::vector<AggregateSpec> aggregates)
      : PhysicalOp(std::move(schema)),
        group_exprs_(std::move(group_exprs)),
        aggregates_(std::move(aggregates)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "HashAggregate"; }
  /// The vectorized executor runs this operator as a pipeline sink with
  /// per-worker partial aggregation (exec/pipeline.cc); the legacy path
  /// keeps the shuffle-then-aggregate breaker below.
  PipelineRole pipeline_role() const override {
    return PipelineRole::kPreAggregate;
  }

  const std::vector<BoundExprPtr>& group_exprs() const { return group_exprs_; }
  const std::vector<AggregateSpec>& aggregates() const { return aggregates_; }

 private:
  Result<TablePtr> AggregatePartition(const Table& input) const;

  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateSpec> aggregates_;
};

/// Bag union of all children.
class PhysicalUnionAll final : public PhysicalOp {
 public:
  explicit PhysicalUnionAll(Schema schema) : PhysicalOp(std::move(schema)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "UnionAll"; }
};

/// Removes duplicate rows (keeps first occurrence).
class PhysicalDistinct final : public PhysicalOp {
 public:
  explicit PhysicalDistinct(Schema schema) : PhysicalOp(std::move(schema)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Distinct"; }
};

/// EXCEPT / INTERSECT with SQL set (distinct) semantics: hashes the right
/// child and emits distinct left rows absent from (kExcept) or present in
/// (kIntersect) it.
class PhysicalSetDifference final : public PhysicalOp {
 public:
  PhysicalSetDifference(Schema schema, bool intersect)
      : PhysicalOp(std::move(schema)), intersect_(intersect) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override {
    return intersect_ ? "Intersect" : "Except";
  }

 private:
  bool intersect_;
};

/// ORDER BY. Stable sort; NULLs first.
class PhysicalSort final : public PhysicalOp {
 public:
  struct Key {
    BoundExprPtr expr;
    bool descending;
  };
  PhysicalSort(Schema schema, std::vector<Key> keys)
      : PhysicalOp(std::move(schema)), keys_(std::move(keys)) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Sort"; }

 private:
  std::vector<Key> keys_;
};

/// Semi-join filter against the key set in column 0 of a named intermediate
/// result: keeps child rows whose key column value appears (keep_matching)
/// or does not appear (!keep_matching) in the set. Used by delta-driven
/// iteration to restrict the loop body to the affected keys.
class PhysicalDeltaRestrict final : public PhysicalOp {
 public:
  PhysicalDeltaRestrict(Schema schema, std::string delta_source,
                        size_t key_col, bool keep_matching)
      : PhysicalOp(std::move(schema)),
        delta_source_(std::move(delta_source)),
        key_col_(key_col),
        keep_matching_(keep_matching) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "DeltaRestrict"; }
  std::string Describe() const override {
    return "key:" + std::to_string(key_col_) +
           (keep_matching_ ? " IN " : " NOT IN ") + "result:" + delta_source_;
  }
  PipelineRole pipeline_role() const override {
    return PipelineRole::kDeltaRestrict;
  }
  const std::string& delta_source() const { return delta_source_; }
  size_t key_col() const { return key_col_; }
  bool keep_matching() const { return keep_matching_; }

 private:
  std::string delta_source_;
  size_t key_col_;
  bool keep_matching_;
};

/// LIMIT n [OFFSET m]. limit < 0 means unlimited (offset only).
class PhysicalLimit final : public PhysicalOp {
 public:
  PhysicalLimit(Schema schema, int64_t limit, int64_t offset = 0)
      : PhysicalOp(std::move(schema)), limit_(limit), offset_(offset) {}
  Result<TablePtr> Execute(ExecContext& ctx) const override;
  const char* Name() const override { return "Limit"; }

 private:
  int64_t limit_;
  int64_t offset_;
};

}  // namespace dbspinner
