// UnionAll and Distinct.

#include <unordered_map>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

Result<TablePtr> PhysicalUnionAll::Execute(ExecContext& ctx) const {
  auto out = Table::Make(output_schema_);
  for (const auto& child : children_) {
    DBSP_ASSIGN_OR_RETURN(TablePtr t, ExecuteOp(*child, ctx));
    out->AppendAll(*t);
  }
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

namespace {

// Keeps the first occurrence of each distinct row of `input`.
TablePtr DedupeTable(const Table& input) {
  size_t n = input.num_rows();
  std::vector<size_t> all_cols;
  for (size_t c = 0; c < input.num_columns(); ++c) all_cols.push_back(c);

  std::unordered_multimap<size_t, uint32_t> seen;
  seen.reserve(n);
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < n; ++i) {
    size_t h = HashRowKeys(input, all_cols, i);
    bool dup = false;
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      bool equal = true;
      for (size_t c = 0; c < input.num_columns(); ++c) {
        if (!input.column(c).EqualsAt(i, input.column(c), it->second)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.emplace(h, static_cast<uint32_t>(i));
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  if (sel.size() == n) {
    // Nothing removed; avoid the copy.
    return nullptr;
  }
  return input.Gather(sel);
}

}  // namespace

Result<TablePtr> PhysicalSetDifference::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr left, ExecuteOp(*children_[0], ctx));
  DBSP_ASSIGN_OR_RETURN(TablePtr right, ExecuteOp(*children_[1], ctx));

  std::vector<size_t> all_cols;
  for (size_t c = 0; c < left->num_columns(); ++c) all_cols.push_back(c);

  // Hash the right side's full rows.
  std::unordered_multimap<size_t, uint32_t> right_index;
  right_index.reserve(right->num_rows());
  for (size_t i = 0; i < right->num_rows(); ++i) {
    right_index.emplace(HashRowKeys(*right, all_cols, i),
                        static_cast<uint32_t>(i));
  }
  auto in_right = [&](size_t row, size_t h) {
    auto range = right_index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      bool equal = true;
      for (size_t c = 0; c < left->num_columns(); ++c) {
        if (!left->column(c).EqualsAt(row, right->column(c), it->second)) {
          equal = false;
          break;
        }
      }
      if (equal) return true;
    }
    return false;
  };

  // Emit distinct left rows that pass the membership test.
  std::unordered_multimap<size_t, uint32_t> seen;
  std::vector<uint32_t> sel;
  for (size_t i = 0; i < left->num_rows(); ++i) {
    size_t h = HashRowKeys(*left, all_cols, i);
    if (in_right(i, h) != intersect_) continue;
    bool dup = false;
    auto range = seen.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      bool equal = true;
      for (size_t c = 0; c < left->num_columns(); ++c) {
        if (!left->column(c).EqualsAt(i, left->column(c), it->second)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      seen.emplace(h, static_cast<uint32_t>(i));
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  TablePtr out = left->Gather(sel);
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

Result<TablePtr> PhysicalDistinct::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));

  if (ctx.UseParallel(input->num_rows())) {
    // Shuffle on all columns: duplicates land on the same simulated node.
    // Fallible (injection point) before any state is touched.
    DBSP_RETURN_NOT_OK(MaybeInjectFault(ctx.faults, "exec.distinct.shuffle"));
    std::vector<size_t> all_cols;
    for (size_t c = 0; c < input->num_columns(); ++c) all_cols.push_back(c);
    size_t parts = ctx.NumPartitions();
    std::vector<TablePtr> partitions = HashPartition(*input, all_cols, parts);
    ctx.stats.rows_shuffled += static_cast<int64_t>(input->num_rows());
    std::vector<TablePtr> results(partitions.size());
    ctx.pool->ParallelFor(partitions.size(), [&](size_t p) {
      TablePtr deduped = DedupeTable(*partitions[p]);
      results[p] = deduped ? deduped : partitions[p];
    });
    TablePtr out = Gather(results);
    ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
    return out;
  }

  TablePtr deduped = DedupeTable(*input);
  TablePtr out = deduped ? deduped : input;
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
