#include "exec/merge_update.h"

#include <unordered_map>

namespace dbspinner {

namespace {

// Builds a key -> row index map over `t.column(key_col)`; returns false on a
// duplicate key (first duplicate row reported via *dup_row).
bool BuildKeyIndex(const Table& t, size_t key_col,
                   std::unordered_multimap<size_t, uint32_t>* index,
                   size_t* dup_row) {
  const ColumnVector& keys = t.column(key_col);
  index->reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    size_t h = keys.HashAt(i);
    auto range = index->equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (keys.EqualsAt(i, keys, it->second)) {
        *dup_row = i;
        return false;
      }
    }
    index->emplace(h, static_cast<uint32_t>(i));
  }
  return true;
}

bool RowsEqual(const Table& a, size_t ar, const Table& b, size_t br) {
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!a.column(c).EqualsAt(ar, b.column(c), br)) return false;
  }
  return true;
}

}  // namespace

Result<MergeResult> MergeUpdateTables(const Table& cte, const Table& working,
                                      size_t key_col) {
  std::unordered_multimap<size_t, uint32_t> index;
  size_t dup_row = 0;
  if (!BuildKeyIndex(working, key_col, &index, &dup_row)) {
    return Status::ExecutionError(
        "iterative CTE produced duplicate updates for key " +
        working.GetValue(dup_row, key_col).ToString() +
        "; resolve duplicates in the iterative part (e.g. with GROUP BY)");
  }

  MergeResult result;
  auto merged = Table::Make(cte.schema());
  merged->Reserve(cte.num_rows());
  const ColumnVector& cte_keys = cte.column(key_col);
  const ColumnVector& working_keys = working.column(key_col);

  for (size_t i = 0; i < cte.num_rows(); ++i) {
    size_t h = cte_keys.HashAt(i);
    uint32_t match = 0xffffffffu;
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (cte_keys.EqualsAt(i, working_keys, it->second)) {
        match = it->second;
        break;
      }
    }
    if (match == 0xffffffffu) {
      merged->AppendRowFrom(cte, i);
    } else {
      if (!RowsEqual(cte, i, working, match)) ++result.updated_rows;
      merged->AppendRowFrom(working, match);
    }
  }
  result.merged = std::move(merged);
  return result;
}

int64_t CountChangedRows(const Table& prev, const Table& current,
                         size_t key_col) {
  std::unordered_multimap<size_t, uint32_t> index;
  const ColumnVector& prev_keys = prev.column(key_col);
  index.reserve(prev.num_rows());
  for (size_t i = 0; i < prev.num_rows(); ++i) {
    index.emplace(prev_keys.HashAt(i), static_cast<uint32_t>(i));
  }
  const ColumnVector& cur_keys = current.column(key_col);
  int64_t changed = 0;
  // Duplicate keys in `current` can match the same prev row several times,
  // so count distinct matched prev rows (a per-row counter could exceed
  // prev.num_rows() and make the disappeared-keys subtraction wrap).
  std::vector<char> prev_matched(prev.num_rows(), 0);
  for (size_t i = 0; i < current.num_rows(); ++i) {
    size_t h = cur_keys.HashAt(i);
    uint32_t match = 0xffffffffu;
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (cur_keys.EqualsAt(i, prev_keys, it->second)) {
        match = it->second;
        break;
      }
    }
    if (match == 0xffffffffu) {
      ++changed;  // new key
    } else {
      prev_matched[match] = 1;
      if (!RowsEqual(prev, match, current, i)) ++changed;
    }
  }
  // Keys that disappeared.
  for (size_t i = 0; i < prev.num_rows(); ++i) {
    if (!prev_matched[i]) ++changed;
  }
  return changed;
}

TablePtr BuildChangedRowsTable(const Table& prev, const Table& current,
                               size_t key_col) {
  auto delta = Table::Make(current.schema());
  const ColumnVector& prev_keys = prev.column(key_col);
  const ColumnVector& cur_keys = current.column(key_col);

  std::unordered_multimap<size_t, uint32_t> prev_idx, cur_idx;
  prev_idx.reserve(prev.num_rows());
  for (size_t i = 0; i < prev.num_rows(); ++i) {
    prev_idx.emplace(prev_keys.HashAt(i), static_cast<uint32_t>(i));
  }
  cur_idx.reserve(current.num_rows());
  for (size_t i = 0; i < current.num_rows(); ++i) {
    cur_idx.emplace(cur_keys.HashAt(i), static_cast<uint32_t>(i));
  }

  std::vector<char> prev_visited(prev.num_rows(), 0);
  std::vector<char> cur_visited(current.num_rows(), 0);
  std::vector<uint32_t> prev_rows, cur_rows;
  std::vector<char> used;
  for (size_t i = 0; i < current.num_rows(); ++i) {
    if (cur_visited[i]) continue;
    size_t h = cur_keys.HashAt(i);
    // Gather every row of this key from both versions.
    prev_rows.clear();
    cur_rows.clear();
    auto crange = cur_idx.equal_range(h);
    for (auto it = crange.first; it != crange.second; ++it) {
      if (cur_keys.EqualsAt(i, cur_keys, it->second)) {
        cur_visited[it->second] = 1;
        cur_rows.push_back(it->second);
      }
    }
    auto prange = prev_idx.equal_range(h);
    for (auto it = prange.first; it != prange.second; ++it) {
      if (cur_keys.EqualsAt(i, prev_keys, it->second)) {
        prev_visited[it->second] = 1;
        prev_rows.push_back(it->second);
      }
    }
    // Multiset comparison (duplicate keys are rare; per-key sets are tiny).
    bool same = prev_rows.size() == cur_rows.size();
    if (same) {
      used.assign(prev_rows.size(), 0);
      for (uint32_t cr : cur_rows) {
        bool found = false;
        for (size_t p = 0; p < prev_rows.size(); ++p) {
          if (!used[p] && RowsEqual(prev, prev_rows[p], current, cr)) {
            used[p] = 1;
            found = true;
            break;
          }
        }
        if (!found) {
          same = false;
          break;
        }
      }
    }
    if (!same) {
      for (uint32_t pr : prev_rows) delta->AppendRowFrom(prev, pr);
      for (uint32_t cr : cur_rows) delta->AppendRowFrom(current, cr);
    }
  }
  // Keys that disappeared entirely.
  for (size_t i = 0; i < prev.num_rows(); ++i) {
    if (!prev_visited[i]) delta->AppendRowFrom(prev, i);
  }
  return delta;
}

}  // namespace dbspinner
