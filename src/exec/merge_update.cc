#include "exec/merge_update.h"

#include <unordered_map>

namespace dbspinner {

namespace {

// Builds a key -> row index map over `t.column(key_col)`; returns false on a
// duplicate key (first duplicate row reported via *dup_row).
bool BuildKeyIndex(const Table& t, size_t key_col,
                   std::unordered_multimap<size_t, uint32_t>* index,
                   size_t* dup_row) {
  const ColumnVector& keys = t.column(key_col);
  index->reserve(t.num_rows());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    size_t h = keys.HashAt(i);
    auto range = index->equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (keys.EqualsAt(i, keys, it->second)) {
        *dup_row = i;
        return false;
      }
    }
    index->emplace(h, static_cast<uint32_t>(i));
  }
  return true;
}

bool RowsEqual(const Table& a, size_t ar, const Table& b, size_t br) {
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!a.column(c).EqualsAt(ar, b.column(c), br)) return false;
  }
  return true;
}

}  // namespace

Result<MergeResult> MergeUpdateTables(const Table& cte, const Table& working,
                                      size_t key_col) {
  std::unordered_multimap<size_t, uint32_t> index;
  size_t dup_row = 0;
  if (!BuildKeyIndex(working, key_col, &index, &dup_row)) {
    return Status::ExecutionError(
        "iterative CTE produced duplicate updates for key " +
        working.GetValue(dup_row, key_col).ToString() +
        "; resolve duplicates in the iterative part (e.g. with GROUP BY)");
  }

  MergeResult result;
  auto merged = Table::Make(cte.schema());
  merged->Reserve(cte.num_rows());
  const ColumnVector& cte_keys = cte.column(key_col);
  const ColumnVector& working_keys = working.column(key_col);

  for (size_t i = 0; i < cte.num_rows(); ++i) {
    size_t h = cte_keys.HashAt(i);
    uint32_t match = 0xffffffffu;
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (cte_keys.EqualsAt(i, working_keys, it->second)) {
        match = it->second;
        break;
      }
    }
    if (match == 0xffffffffu) {
      merged->AppendRowFrom(cte, i);
    } else {
      if (!RowsEqual(cte, i, working, match)) ++result.updated_rows;
      merged->AppendRowFrom(working, match);
    }
  }
  result.merged = std::move(merged);
  return result;
}

int64_t CountChangedRows(const Table& prev, const Table& current,
                         size_t key_col) {
  std::unordered_multimap<size_t, uint32_t> index;
  const ColumnVector& prev_keys = prev.column(key_col);
  index.reserve(prev.num_rows());
  for (size_t i = 0; i < prev.num_rows(); ++i) {
    index.emplace(prev_keys.HashAt(i), static_cast<uint32_t>(i));
  }
  const ColumnVector& cur_keys = current.column(key_col);
  int64_t changed = 0;
  size_t matched = 0;
  for (size_t i = 0; i < current.num_rows(); ++i) {
    size_t h = cur_keys.HashAt(i);
    uint32_t match = 0xffffffffu;
    auto range = index.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (cur_keys.EqualsAt(i, prev_keys, it->second)) {
        match = it->second;
        break;
      }
    }
    if (match == 0xffffffffu) {
      ++changed;  // new key
    } else {
      ++matched;
      if (!RowsEqual(prev, match, current, i)) ++changed;
    }
  }
  // Keys that disappeared.
  changed += static_cast<int64_t>(prev.num_rows() - matched);
  return changed;
}

}  // namespace dbspinner
