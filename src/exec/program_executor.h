// Program executor: interprets the step list produced by the functional
// rewrite, including the loop operator's conditional jumps.

#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>

#include "common/status.h"
#include "exec/physical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Seed state for resuming a program from a durable checkpoint recovered
/// after a crash (DESIGN.md §12). The executor starts at `pc` — the step the
/// checkpoint was taken before — with the given loop states and registry
/// contents, exactly as the in-process restore path would.
struct ProgramResume {
  size_t pc = 0;
  std::map<int, LoopState> loops;
  std::unordered_map<std::string, TablePtr> registry;
};

/// Runs a planned Program (PlanProgram must have been called). Returns the
/// output of the kFinal step, or an empty 0-column table if the program has
/// none (DDL-ish programs).
Result<TablePtr> RunProgram(const Program& program, ExecContext* ctx);

/// As above, but when `resume` is non-null the program continues from the
/// recovered checkpoint instead of step 0 (counted in ExecStats::restores).
Result<TablePtr> RunProgram(const Program& program, ExecContext* ctx,
                            const ProgramResume* resume);

/// The fault-tolerance retry whitelist: step kinds whose failed execution
/// may be re-run in place because every fallible sub-operation precedes the
/// step's first side effect. Exported so the static verifier (src/verify/)
/// can cross-check its own step-effect model against the executor's
/// classification (defect V109).
bool StepIsIdempotent(Step::Kind kind);

/// Executor-level fault-injection site name for a step kind, or nullptr for
/// kinds that are not fault targets (control flow, registry bookkeeping).
const char* StepFaultSite(Step::Kind kind);

}  // namespace dbspinner
