// Program executor: interprets the step list produced by the functional
// rewrite, including the loop operator's conditional jumps.

#pragma once

#include "common/status.h"
#include "exec/physical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Runs a planned Program (PlanProgram must have been called). Returns the
/// output of the kFinal step, or an empty 0-column table if the program has
/// none (DDL-ish programs).
Result<TablePtr> RunProgram(const Program& program, ExecContext* ctx);

}  // namespace dbspinner
