// Physical planner: logical plans -> physical operator trees.

#pragma once

#include "common/status.h"
#include "exec/physical_plan.h"
#include "plan/logical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Converts one logical plan to a physical operator tree. Join conditions are
/// analyzed for equi-key conjuncts: hash join when at least one exists,
/// nested-loop otherwise.
Result<PhysicalOpPtr> CreatePhysicalPlan(const LogicalOp& logical);

/// Plans every step of a Program in place (fills Step::physical).
Status PlanProgram(Program* program);

}  // namespace dbspinner
