// Physical planner: logical plans -> physical operator trees.

#pragma once

#include "common/status.h"
#include "exec/physical_plan.h"
#include "optimizer/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Single source of truth for broadcast-probe fusion legality (DESIGN.md
/// §11, §13). Under parallel vectorized execution a hash probe fuses into a
/// morsel pipeline — one shared read-only build hash probed by every worker
/// — iff its build-side estimate is known (negative is the "compiled without
/// a catalog" sentinel; such joins conservatively stay breakers) and fits
/// the broadcast budget. Shared by the pipeline executor (exec/pipeline.cc),
/// the physical-plan verifier (verify/pipeline_checker.cc, V205) and
/// EngineOptions::Validate so planner and checker cannot drift.
inline bool BroadcastFusionLegal(double build_rows_estimate,
                                 size_t broadcast_build_rows) {
  return build_rows_estimate >= 0.0 && broadcast_build_rows > 0 &&
         build_rows_estimate <= static_cast<double>(broadcast_build_rows);
}

/// Converts one logical plan to a physical operator tree. Join conditions are
/// analyzed for equi-key conjuncts: hash join when at least one exists,
/// nested-loop otherwise.
///
/// When `cost` is non-null, each hash join is annotated with the estimated
/// cardinality of its build side; the pipeline executor uses the annotation
/// to decide broadcast fusibility under MPP (exec/pipeline.cc). Plans
/// compiled without a cost model carry no estimate and their joins
/// conservatively stay pipeline breakers in parallel mode.
Result<PhysicalOpPtr> CreatePhysicalPlan(const LogicalOp& logical,
                                         const CostModel* cost = nullptr);

/// Plans every step of a Program in place (fills Step::physical). `catalog`
/// (when non-null) feeds the cost model used for join-build annotations.
Status PlanProgram(Program* program, Catalog* catalog = nullptr);

}  // namespace dbspinner
