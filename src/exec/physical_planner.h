// Physical planner: logical plans -> physical operator trees.

#pragma once

#include "common/status.h"
#include "exec/physical_plan.h"
#include "optimizer/cost_model.h"
#include "plan/logical_plan.h"
#include "plan/program.h"

namespace dbspinner {

/// Converts one logical plan to a physical operator tree. Join conditions are
/// analyzed for equi-key conjuncts: hash join when at least one exists,
/// nested-loop otherwise.
///
/// When `cost` is non-null, each hash join is annotated with the estimated
/// cardinality of its build side; the pipeline executor uses the annotation
/// to decide broadcast fusibility under MPP (exec/pipeline.cc). Plans
/// compiled without a cost model carry no estimate and their joins
/// conservatively stay pipeline breakers in parallel mode.
Result<PhysicalOpPtr> CreatePhysicalPlan(const LogicalOp& logical,
                                         const CostModel* cost = nullptr);

/// Plans every step of a Program in place (fills Step::physical). `catalog`
/// (when non-null) feeds the cost model used for join-build annotations.
Status PlanProgram(Program* program, Catalog* catalog = nullptr);

}  // namespace dbspinner
