// MergeUpdate: the update half of Algorithm 1 (lines 8-10).
//
// Merges the working table produced by one iteration of R_i into the main
// CTE table, matching rows on a key column: matched rows take the working
// table's values; unmatched CTE rows are preserved. This same routine is the
// copy-back baseline of Fig 8 (update identification + full data movement)
// when the rename optimization is disabled.

#pragma once

#include "common/status.h"
#include "storage/table.h"

namespace dbspinner {

struct MergeResult {
  TablePtr merged;
  int64_t updated_rows = 0;  ///< rows whose values actually changed
};

/// Merges `working` into `cte` by equality on `key_col` (same ordinal in
/// both tables; schemas must be type-compatible).
///
/// Fails with ExecutionError if `working` contains two rows with the same
/// key — the paper's mandated runtime error for ambiguous updates (§II).
/// Working rows whose key does not exist in `cte` are ignored (iterative
/// CTEs update rows; they do not grow the main table).
Result<MergeResult> MergeUpdateTables(const Table& cte, const Table& working,
                                      size_t key_col);

/// Counts rows that differ between two versions of a table keyed by
/// `key_col`: changed values + keys present in only one side. Used by the
/// Delta termination condition.
int64_t CountChangedRows(const Table& prev, const Table& current,
                         size_t key_col);

/// Builds the delta between two versions of a table keyed by `key_col`: all
/// rows (from BOTH versions) of every key whose row multiset changed —
/// including keys that appeared or disappeared. Old versions are included
/// because a filter in the loop body may accept the old row but not the new
/// one (or vice versa); dependency detection must see both. Used by the
/// semi-naive ComputeDelta step.
TablePtr BuildChangedRowsTable(const Table& prev, const Table& current,
                               size_t key_col);

}  // namespace dbspinner
