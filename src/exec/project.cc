#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

namespace {

// Evaluates all projection expressions over `input` and assembles the output
// table, coercing columns into the declared output types.
Result<TablePtr> ProjectTable(const std::vector<BoundExprPtr>& exprs,
                              const Schema& output_schema,
                              const Table& input) {
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(exprs.size());
  for (size_t c = 0; c < exprs.size(); ++c) {
    DBSP_ASSIGN_OR_RETURN(ColumnVectorPtr col,
                          EvaluateExprBatch(*exprs[c], input));
    if (col->type() != output_schema.column(c).type) {
      auto cast = std::make_shared<ColumnVector>(output_schema.column(c).type);
      cast->AppendAll(*col);
      col = std::move(cast);
    }
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(output_schema, std::move(cols));
}

}  // namespace

Result<TablePtr> PhysicalProject::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));
  size_t n = input->num_rows();

  TablePtr out;
  if (ctx.UseParallel(n)) {
    std::vector<TablePtr> slices = RangePartition(*input, ctx.NumPartitions());
    std::vector<TablePtr> results(slices.size());
    Status st = ctx.pool->ParallelForStatus(
        slices.size(),
        [&](size_t p) -> Status {
          DBSP_ASSIGN_OR_RETURN(results[p],
                                ProjectTable(exprs_, output_schema_,
                                             *slices[p]));
          return Status::OK();
        },
        /*faults=*/nullptr, /*site=*/nullptr, &ctx.cancel);
    DBSP_RETURN_NOT_OK(st);
    out = Gather(results);
  } else {
    DBSP_ASSIGN_OR_RETURN(out, ProjectTable(exprs_, output_schema_, *input));
  }
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
