#include "exec/program_executor.h"

#include "exec/pipeline.h"

#include <chrono>
#include <thread>
#include <unordered_map>

#include "exec/merge_update.h"
#include "mpp/partition.h"

namespace dbspinner {

namespace {

// Rows of the loop's CTE currently satisfying a kAny/kAll condition.
Result<int64_t> CountSatisfiedRows(const LoopSpec& spec, const Table& cte) {
  int64_t satisfied = 0;
  for (size_t i = 0; i < cte.num_rows(); ++i) {
    DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*spec.expr, cte, i));
    if (!v.is_null() && v.bool_value()) ++satisfied;
  }
  return satisfied;
}

// Decides whether the loop body should run at all, evaluated at kInitLoop
// over the freshly materialized R0 (the Fig 4 loop operator's 0-iteration
// case). Delta conditions need two versions to compare, so they always run
// the first iteration.
Result<bool> EvaluateStart(const LoopSpec& spec, ExecContext* ctx) {
  switch (spec.kind) {
    case LoopSpec::Kind::kIterations:
    case LoopSpec::Kind::kUpdates:
      return spec.n > 0;
    case LoopSpec::Kind::kAny:
    case LoopSpec::Kind::kAll: {
      DBSP_ASSIGN_OR_RETURN(TablePtr cte, ctx->registry->Get(spec.cte_name));
      DBSP_ASSIGN_OR_RETURN(int64_t satisfied,
                            CountSatisfiedRows(spec, *cte));
      if (spec.kind == LoopSpec::Kind::kAny) return satisfied == 0;
      return satisfied < static_cast<int64_t>(cte->num_rows());
    }
    case LoopSpec::Kind::kDeltaLess:
      return true;
    case LoopSpec::Kind::kWhileResultNonEmpty: {
      DBSP_ASSIGN_OR_RETURN(TablePtr watched,
                            ctx->registry->Get(spec.watch_name));
      return watched->num_rows() > 0;
    }
  }
  return Status::Internal("unhandled loop condition");
}

// Decides whether the loop should run another iteration, updating state.
Result<bool> EvaluateContinue(const LoopSpec& spec, LoopState* state,
                              ExecContext* ctx) {
  switch (spec.kind) {
    case LoopSpec::Kind::kIterations:
      return state->iteration < spec.n;
    case LoopSpec::Kind::kUpdates:
      state->cumulative_updates += state->last_update_count;
      return state->cumulative_updates < spec.n;
    case LoopSpec::Kind::kAny:
    case LoopSpec::Kind::kAll: {
      DBSP_ASSIGN_OR_RETURN(TablePtr cte, ctx->registry->Get(spec.cte_name));
      DBSP_ASSIGN_OR_RETURN(int64_t satisfied,
                            CountSatisfiedRows(spec, *cte));
      if (spec.kind == LoopSpec::Kind::kAny) {
        return satisfied == 0;  // continue until at least one row satisfies
      }
      return satisfied < static_cast<int64_t>(cte->num_rows());
    }
    case LoopSpec::Kind::kDeltaLess: {
      DBSP_ASSIGN_OR_RETURN(TablePtr cte, ctx->registry->Get(spec.cte_name));
      int64_t changed = 0;
      if (state->previous) {
        changed = CountChangedRows(*state->previous, *cte, spec.key_col);
      } else {
        changed = static_cast<int64_t>(cte->num_rows());
      }
      state->previous = cte;
      return changed >= spec.n;
    }
    case LoopSpec::Kind::kWhileResultNonEmpty: {
      DBSP_ASSIGN_OR_RETURN(TablePtr watched,
                            ctx->registry->Get(spec.watch_name));
      return watched->num_rows() > 0;
    }
  }
  return Status::Internal("unhandled loop condition");
}

}  // namespace

// Steps whose failed execution may be re-run in place. These steps either
// execute a pure operator tree (kMaterialize, kFinal) or mutate the registry
// and loop state only *after* every fallible sub-operation has succeeded
// (kMergeUpdate, kComputeDelta) — every injection point, exchange, and
// operator failure fires before the step's first side effect, so the step
// observes identical inputs on retry. kRename is deliberately absent: it
// moves a binding, so a re-run would fail on the now-unbound source; a
// failure there falls through to checkpoint restore instead.
bool StepIsIdempotent(Step::Kind kind) {
  switch (kind) {
    case Step::Kind::kMaterialize:
    case Step::Kind::kFinal:
    case Step::Kind::kMergeUpdate:
    case Step::Kind::kComputeDelta:
      return true;
    default:
      return false;
  }
}

// Executor-level injection site for a step kind, or null for kinds that are
// not fault targets (control flow and registry bookkeeping).
const char* StepFaultSite(Step::Kind kind) {
  switch (kind) {
    case Step::Kind::kMaterialize:
      return "exec.materialize";
    case Step::Kind::kFinal:
      return "exec.final";
    case Step::Kind::kMergeUpdate:
      return "exec.merge_update";
    case Step::Kind::kComputeDelta:
      return "exec.compute_delta";
    default:
      return nullptr;
  }
}

namespace {

// A consistent point to roll back to. The registry snapshot is a shallow
// name -> TablePtr map copy and the loop states hold TablePtrs, so a
// checkpoint is O(#names + #loops) regardless of data size — the engine's
// copy-on-write discipline guarantees the snapshotted tables can never be
// mutated in place by later steps.
struct ExecutorCheckpoint {
  size_t pc = 0;  ///< step index to resume from (the step is re-run)
  std::map<int, LoopState> loops;
  std::unordered_map<std::string, TablePtr> registry;
  /// Stats at checkpoint time. Restore rewinds the work-proportional
  /// counters to these values so the replayed steps re-accumulate them
  /// exactly once — a recovered run reports the same work as a fault-free
  /// one, with only the bookkeeping counters (faults_seen, restores, ...)
  /// recording that recovery happened.
  ExecStats stats;
};

}  // namespace

Result<TablePtr> RunProgram(const Program& program, ExecContext* ctx) {
  return RunProgram(program, ctx, nullptr);
}

Result<TablePtr> RunProgram(const Program& program, ExecContext* ctx,
                            const ProgramResume* resume) {
  TablePtr final_result;

  static const FaultToleranceOptions kNoRecovery;
  const FaultToleranceOptions& ft = ctx->options != nullptr
                                        ? ctx->options->fault_tolerance
                                        : kNoRecovery;
  const bool recovery = ft.enable_recovery;

  // Implicit program-start checkpoint: restarting a SELECT program from
  // step 0 is always sound because the catalog is only mutated after
  // RunProgram returns (CTAS / INSERT ... SELECT consume the result). This
  // makes even pre-loop failures recoverable.
  ExecutorCheckpoint checkpoint;
  if (recovery) {
    checkpoint.registry = ctx->registry->Snapshot();
    checkpoint.stats = ctx->stats;
  }
  int64_t restores_used = 0;

  size_t start_pc = 0;
  if (resume != nullptr) {
    // Cross-process resume from a durable checkpoint: seed the executor
    // exactly as the in-process restore path does, then continue from the
    // checkpointed step. The restored step indices were validated against
    // this program's fingerprint by the caller.
    if (resume->pc >= program.steps.size()) {
      return Status::Internal("resume pc out of range");
    }
    ctx->registry->Restore(resume->registry);
    ctx->loops = resume->loops;
    ++ctx->stats.restores;
    start_pc = resume->pc;
    if (recovery) {
      checkpoint.pc = resume->pc;
      checkpoint.loops = ctx->loops;
      checkpoint.registry = ctx->registry->Snapshot();
      checkpoint.stats = ctx->stats;
    }
  }

  // Runs one step. On success *next_pc holds the step index to continue
  // from. All mutation of executor state (registry, loop states, stats)
  // happens in here; the outer loop only sequences retries and restores.
  auto run_step = [&](const Step& step, size_t pc,
                      size_t* next_pc) -> Status {
    ++ctx->stats.steps_executed;
    *next_pc = pc + 1;
    // Executor-level injection points fire before the step touches any
    // state, keeping the idempotency contract above.
    if (ctx->faults != nullptr) {
      const char* site = StepFaultSite(step.kind);
      if (site != nullptr) {
        DBSP_RETURN_NOT_OK(ctx->faults->MaybeInject(site));
      }
    }
    std::chrono::steady_clock::time_point step_begin;
    if (ctx->profiling) step_begin = std::chrono::steady_clock::now();
    int64_t profile_rows = -1;
    auto record_profile = [&]() {
      if (!ctx->profiling) return;
      StepProfile& p = ctx->profile[step.id];
      ++p.executions;
      p.total_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - step_begin)
                        .count();
      p.last_rows = profile_rows;
    };
    switch (step.kind) {
      case Step::Kind::kMaterialize: {
        DBSP_ASSIGN_OR_RETURN(TablePtr table, ExecuteOp(*step.physical, *ctx));
        profile_rows = static_cast<int64_t>(table->num_rows());
        ctx->registry->Put(step.target, table);
        break;
      }
      case Step::Kind::kRename: {
        // O(1): the paper's rename operator (§VI-A). The working table's
        // row count is recorded as this iteration's update count (a full
        // replacement updates every row). Rename goes first so that an
        // unbound source surfaces as the registry's Internal error.
        DBSP_RETURN_NOT_OK(ctx->registry->Rename(step.source, step.target));
        DBSP_ASSIGN_OR_RETURN(TablePtr moved,
                              ctx->registry->Get(step.target));
        if (ctx->options != nullptr &&
            ctx->options->dev_break_rename_for_testing &&
            moved->num_rows() > 0) {
          // Fault injection for the fuzzing harness: silently drop the last
          // row of the renamed result so the rename-enabled plan diverges
          // from the merge baseline.
          std::vector<uint32_t> sel;
          for (uint32_t r = 0; r + 1 < moved->num_rows(); ++r) {
            sel.push_back(r);
          }
          moved = moved->Gather(sel);
          ctx->registry->Put(step.target, moved);
        }
        ++ctx->stats.renames;
        if (step.loop_id != 0) {
          ctx->loops[step.loop_id].last_update_count =
              static_cast<int64_t>(moved->num_rows());
        }
        break;
      }
      case Step::Kind::kMergeUpdate: {
        DBSP_ASSIGN_OR_RETURN(TablePtr cte, ctx->registry->Get(step.target));
        DBSP_ASSIGN_OR_RETURN(TablePtr working,
                              ctx->registry->Get(step.source));
        DBSP_ASSIGN_OR_RETURN(MergeResult merged,
                              MergeUpdateTables(*cte, *working, step.key_col));
        profile_rows = static_cast<int64_t>(merged.merged->num_rows());
        ctx->registry->Put(step.target, merged.merged);
        ctx->registry->Remove(step.source);
        ctx->stats.merge_updates += merged.updated_rows;
        ctx->stats.rows_materialized +=
            static_cast<int64_t>(merged.merged->num_rows());
        if (step.loop_id != 0) {
          ctx->loops[step.loop_id].last_update_count = merged.updated_rows;
        }
        break;
      }
      case Step::Kind::kAppendResult: {
        DBSP_ASSIGN_OR_RETURN(TablePtr target, ctx->registry->Get(step.target));
        DBSP_ASSIGN_OR_RETURN(TablePtr source, ctx->registry->Get(step.source));
        // Copy-on-write: the registry pointer may be aliased (a Delta
        // snapshot, another name after a rename, a broadcast replica), so
        // appending in place would silently mutate every alias.
        TablePtr appended = target->Clone();
        appended->AppendAll(*source);
        ctx->registry->Put(step.target, std::move(appended));
        break;
      }
      case Step::Kind::kDedupeResult: {
        // Removes rows of `target` that already appear in `source` (and
        // internal duplicates within `target`).
        DBSP_ASSIGN_OR_RETURN(TablePtr target, ctx->registry->Get(step.target));
        DBSP_ASSIGN_OR_RETURN(TablePtr source, ctx->registry->Get(step.source));
        std::vector<size_t> all_cols;
        for (size_t c = 0; c < target->num_columns(); ++c) {
          all_cols.push_back(c);
        }
        auto row_in = [&](const Table& hay, const Table& needle,
                          size_t needle_row,
                          const std::unordered_multimap<size_t, uint32_t>& idx,
                          size_t h) {
          auto range = idx.equal_range(h);
          for (auto it = range.first; it != range.second; ++it) {
            bool eq = true;
            for (size_t c = 0; c < needle.num_columns(); ++c) {
              if (!needle.column(c).EqualsAt(needle_row, hay.column(c),
                                             it->second)) {
                eq = false;
                break;
              }
            }
            if (eq) return true;
          }
          return false;
        };
        std::unordered_multimap<size_t, uint32_t> source_idx;
        source_idx.reserve(source->num_rows());
        for (size_t i = 0; i < source->num_rows(); ++i) {
          source_idx.emplace(HashRowKeys(*source, all_cols, i),
                             static_cast<uint32_t>(i));
        }
        std::unordered_multimap<size_t, uint32_t> kept_idx;
        std::vector<uint32_t> sel;
        for (size_t i = 0; i < target->num_rows(); ++i) {
          size_t h = HashRowKeys(*target, all_cols, i);
          if (row_in(*source, *target, i, source_idx, h)) continue;
          if (row_in(*target, *target, i, kept_idx, h)) continue;
          kept_idx.emplace(h, static_cast<uint32_t>(i));
          sel.push_back(static_cast<uint32_t>(i));
        }
        ctx->registry->Put(step.target, target->Gather(sel));
        break;
      }
      case Step::Kind::kCopyResult: {
        DBSP_ASSIGN_OR_RETURN(TablePtr source, ctx->registry->Get(step.source));
        ctx->registry->Put(step.target, source->Clone());
        ctx->stats.rows_materialized +=
            static_cast<int64_t>(source->num_rows());
        break;
      }
      case Step::Kind::kRemoveResult:
        ctx->registry->Remove(step.target);
        break;
      case Step::Kind::kInitLoop: {
        LoopState& state = ctx->loops[step.loop_id];
        state = LoopState{};
        if (step.loop.kind == LoopSpec::Kind::kDeltaLess) {
          // Snapshot the post-R0 version for the first diff.
          DBSP_ASSIGN_OR_RETURN(state.previous,
                                ctx->registry->Get(step.loop.cte_name));
        }
        if (step.jump_to_id != 0) {
          // 0-iteration loops: when the termination condition already holds
          // over R0, skip the body entirely (jump past the loop check).
          DBSP_ASSIGN_OR_RETURN(bool run_body, EvaluateStart(step.loop, ctx));
          if (!run_body) {
            int target = program.FindStep(step.jump_to_id);
            if (target < 0) {
              return Status::Internal("loop skip target not found");
            }
            record_profile();
            *next_pc = static_cast<size_t>(target) + 1;
            return Status::OK();
          }
        }
        break;
      }
      case Step::Kind::kLoopCheck: {
        LoopState& state = ctx->loops[step.loop_id];
        ++state.iteration;
        ++ctx->stats.loop_iterations;
        if (ctx->options != nullptr &&
            state.iteration > ctx->options->max_iterations_guard) {
          return Status::ExecutionError(
              "loop exceeded max_iterations_guard (" +
              std::to_string(ctx->options->max_iterations_guard) + ")");
        }
        DBSP_ASSIGN_OR_RETURN(bool cont,
                              EvaluateContinue(step.loop, &state, ctx));
        if (cont) {
          int target = program.FindStep(step.jump_to_id);
          if (target < 0) {
            return Status::Internal("loop jump target not found");
          }
          record_profile();
          *next_pc = static_cast<size_t>(target);
          return Status::OK();
        }
        break;
      }
      case Step::Kind::kComputeDelta: {
        DBSP_ASSIGN_OR_RETURN(TablePtr cur, ctx->registry->Get(step.source));
        LoopState& state = ctx->loops[step.loop_id];
        TablePtr delta;
        if (!state.delta_snapshot) {
          // First body execution: everything is new, so the whole CTE is the
          // delta (the first semi-naive iteration is always full).
          delta = cur;
        } else if (state.delta_snapshot == cur) {
          // Identical table version: nothing can have changed (copy-on-write
          // makes pointer equality imply content equality).
          delta = Table::Make(cur->schema());
        } else {
          delta = BuildChangedRowsTable(*state.delta_snapshot, *cur,
                                        step.key_col);
        }
        state.delta_snapshot = cur;
        profile_rows = static_cast<int64_t>(delta->num_rows());
        ctx->stats.delta_rows += static_cast<int64_t>(delta->num_rows());
        ctx->registry->Put(step.target, std::move(delta));
        break;
      }
      case Step::Kind::kFinal: {
        DBSP_ASSIGN_OR_RETURN(final_result, ExecuteOp(*step.physical, *ctx));
        profile_rows = static_cast<int64_t>(final_result->num_rows());
        break;
      }
    }
    record_profile();
    return Status::OK();
  };

  size_t pc = start_pc;
  while (pc < program.steps.size()) {
    const Step& step = program.steps[pc];

    // Cancellation point: one check per step boundary. Loop bodies contain
    // several steps, so a cancel or expired deadline stops a runaway
    // iterative query within (at most) one loop iteration. kCancelled is
    // neither retryable nor recoverable — it bypasses the fault-tolerance
    // machinery below by design.
    if (ctx->cancel.live()) {
      ++ctx->stats.cancel_checks;
      DBSP_RETURN_NOT_OK(ctx->cancel.Check());
    }

    // Checkpoints are taken *before* the step runs, so a later restore
    // re-executes the checkpointed step against exactly the state it saw
    // the first time: one at every loop entry (kInitLoop), one every K
    // iterations (at the kLoopCheck about to finish iteration i with
    // (i + 1) % K == 0).
    if (recovery) {
      bool take = step.kind == Step::Kind::kInitLoop;
      if (step.kind == Step::Kind::kLoopCheck && ft.checkpoint_interval > 0) {
        const LoopState& state = ctx->loops[step.loop_id];
        take = (state.iteration + 1) % ft.checkpoint_interval == 0;
      }
      if (take) {
        checkpoint.pc = pc;
        checkpoint.loops = ctx->loops;
        checkpoint.registry = ctx->registry->Snapshot();
        checkpoint.stats = ctx->stats;
        ++ctx->stats.checkpoints_taken;
        if (ctx->durable != nullptr) {
          // Make the checkpoint crash-durable. A persist failure is a hard
          // error: continuing would let a later crash resume from a stale
          // durable checkpoint even though this run had moved past it.
          DBSP_RETURN_NOT_OK(ctx->durable->Persist(pc, checkpoint.loops,
                                                   checkpoint.registry));
          ++ctx->stats.durable_checkpoints;
        }
      }
    }

    // Snapshot before the attempt: a failed step's partial work (rows it
    // pushed through pipelines before the fault fired) is rewound so only
    // the attempt that completes contributes to the work counters.
    ExecStats attempt_base;
    if (recovery) attempt_base = ctx->stats;

    size_t next_pc = pc + 1;
    Status st = run_step(step, pc, &next_pc);
    if (!st.ok()) {
      if (!recovery || !st.IsRecoverable()) return st;
      ctx->stats.RewindWorkCountersTo(attempt_base);
      ++ctx->stats.faults_seen;

      // Transient faults on idempotent steps: bounded in-place retry.
      if (st.IsRetryable() && StepIsIdempotent(step.kind)) {
        for (int attempt = 0;
             !st.ok() && st.IsRetryable() && attempt < ft.max_step_retries;
             ++attempt) {
          if (ft.retry_backoff_us > 0) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(ft.retry_backoff_us << attempt));
          }
          ++ctx->stats.step_retries;
          st = run_step(step, pc, &next_pc);
          if (!st.ok()) {
            ctx->stats.RewindWorkCountersTo(attempt_base);
            if (st.IsRecoverable()) ++ctx->stats.faults_seen;
          }
        }
      }

      if (!st.ok()) {
        if (!st.IsRecoverable()) return st;
        // Worker loss, a non-idempotent step, or retry exhaustion: roll
        // back to the last checkpoint and resume from there. The restore
        // cap guards against livelock under a saturating fault schedule —
        // when it trips, the original typed status surfaces to the caller.
        if (restores_used >= ft.max_restores) return st;
        ++restores_used;
        ++ctx->stats.restores;
        ctx->registry->Restore(checkpoint.registry);
        ctx->loops = checkpoint.loops;
        ctx->stats.RewindWorkCountersTo(checkpoint.stats);
        pc = checkpoint.pc;
        continue;
      }
    }
    pc = next_pc;
  }
  if (!final_result) final_result = Table::Make(Schema());
  return final_result;
}

}  // namespace dbspinner
