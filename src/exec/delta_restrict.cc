// DeltaRestrict: the semi-naive frontier filter.
//
// Restricts its child to the rows whose key appears (or does not appear) in
// the affected-key set materialized by the delta-iteration rewrite. This is
// what makes each loop-body iteration proportional to the previous
// iteration's changes instead of the full CTE.

#include <unordered_map>

#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

Result<TablePtr> PhysicalDeltaRestrict::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));
  DBSP_ASSIGN_OR_RETURN(TablePtr keys, ctx.registry->Get(delta_source_));
  if (keys->num_columns() == 0) {
    return Status::Internal("DeltaRestrict key set '" + delta_source_ +
                            "' has no columns");
  }

  const ColumnVector& set_keys = keys->column(0);
  std::unordered_multimap<size_t, uint32_t> set_index;
  set_index.reserve(keys->num_rows());
  for (size_t i = 0; i < keys->num_rows(); ++i) {
    set_index.emplace(set_keys.HashAt(i), static_cast<uint32_t>(i));
  }

  const ColumnVector& in_keys = input->column(key_col_);
  std::vector<uint32_t> sel;
  sel.reserve(input->num_rows());
  for (size_t i = 0; i < input->num_rows(); ++i) {
    bool in_set = false;
    auto range = set_index.equal_range(in_keys.HashAt(i));
    for (auto it = range.first; it != range.second; ++it) {
      if (in_keys.EqualsAt(i, set_keys, it->second)) {
        in_set = true;
        break;
      }
    }
    if (in_set == keep_matching_) sel.push_back(static_cast<uint32_t>(i));
  }

  if (keep_matching_) {
    ctx.stats.delta_probe_rows += static_cast<int64_t>(sel.size());
  }
  if (sel.size() == input->num_rows()) return input;
  return input->Gather(sel);
}

}  // namespace dbspinner
