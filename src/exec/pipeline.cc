#include "exec/pipeline.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "exec/data_chunk.h"
#include "exec/hash_aggregate.h"
#include "exec/physical_planner.h"
#include "exec/pipeline_kernels.h"
#include "mpp/partition.h"

namespace dbspinner {

namespace {

constexpr uint32_t kNoMatch = 0xffffffffu;

bool RowHasNullKey(const Table& t, const std::vector<size_t>& keys,
                   size_t row) {
  for (size_t k : keys) {
    if (t.column(k).IsNull(row)) return true;
  }
  return false;
}

bool KeysEqual(const Table& l, const std::vector<size_t>& lkeys, size_t lrow,
               const Table& r, const std::vector<size_t>& rkeys, size_t rrow) {
  for (size_t i = 0; i < lkeys.size(); ++i) {
    if (!l.column(lkeys[i]).EqualsAt(lrow, r.column(rkeys[i]), rrow)) {
      return false;
    }
  }
  return true;
}

// Per-morsel counters, accumulated thread-locally and merged by the driver
// (ctx.stats must not be mutated from parallel morsel tasks).
struct LocalStats {
  KernelCounters kernels;
  int64_t delta_probe_rows = 0;
};

/// One compiled streaming stage of a pipeline.
struct Stage {
  const PhysicalOp* op = nullptr;
  PipelineRole role = PipelineRole::kBreaker;

  std::unique_ptr<ChunkFilter> filter;        // kFilter
  std::unique_ptr<ChunkProjector> projector;  // kProject

  // kHashProbe: fully materialized build side + shared hash.
  TablePtr right;
  std::shared_ptr<const std::unordered_multimap<size_t, uint32_t>> build;

  // kDeltaRestrict: the affected-key set snapshot for this pipeline run.
  TablePtr keys;
  std::unordered_multimap<size_t, uint32_t> set_index;
};

// Combined [left ++ right] columns for the given row pairs; a right index
// of kNoMatch emits NULLs (left-outer padding). Mirrors the legacy join's
// output assembly but gathers the left side in one batch.
TablePtr BuildProbeOutput(const Schema& schema, const Table& left,
                          const Table& right,
                          const std::vector<uint32_t>& lrows,
                          const std::vector<uint32_t>& rrows) {
  size_t ln = left.num_columns();
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(schema.num_columns());
  for (size_t c = 0; c < ln; ++c) {
    cols.push_back(left.column(c).Gather(lrows));
  }
  for (size_t c = 0; c < right.num_columns(); ++c) {
    auto col = std::make_shared<ColumnVector>(schema.column(ln + c).type);
    col->Reserve(rrows.size());
    const ColumnVector& src = right.column(c);
    for (uint32_t r : rrows) {
      if (r == kNoMatch) {
        col->AppendNull();
      } else {
        col->AppendFrom(src, r);
      }
    }
    cols.push_back(std::move(col));
  }
  return Table::FromColumns(schema, std::move(cols));
}

Result<DataChunk> ApplyProbe(const Stage& s, const DataChunk& chunk,
                             LocalStats* ls) {
  const auto& join = *static_cast<const PhysicalHashJoin*>(s.op);
  const Table& left = chunk.table();
  const Table& right = *s.right;
  const std::vector<size_t>& lkeys = join.left_keys();
  const std::vector<size_t>& rkeys = join.right_keys();
  size_t n = chunk.size();
  ls->kernels.probe_rows += static_cast<int64_t>(n);

  std::vector<uint32_t> lrows, rrows;
  lrows.reserve(n);
  rrows.reserve(n);
  // For LEFT OUTER, track matches per chunk position; a left row lives in
  // exactly one morsel, so morsel-local tracking equals the global scan.
  std::vector<uint8_t> pos_matched;
  std::vector<uint32_t> lpos;
  if (join.join_type() == JoinType::kLeft) {
    pos_matched.assign(n, 0);
    lpos.reserve(n);
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = chunk.RowAt(i);
    if (RowHasNullKey(left, lkeys, row)) continue;
    size_t h = HashRowKeys(left, lkeys, row);
    auto range = s.build->equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      if (KeysEqual(left, lkeys, row, right, rkeys, it->second)) {
        lrows.push_back(row);
        rrows.push_back(it->second);
        if (join.join_type() == JoinType::kLeft) {
          lpos.push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }

  TablePtr candidates =
      BuildProbeOutput(join.output_schema(), left, right, lrows, rrows);

  std::vector<uint8_t> keep(lrows.size(), 1);
  if (join.residual() != nullptr) {
    DBSP_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                          EvaluatePredicate(*join.residual(), *candidates));
    std::fill(keep.begin(), keep.end(), 0);
    for (uint32_t p : sel) keep[p] = 1;
  }

  if (join.join_type() == JoinType::kInner) {
    DataChunk out(candidates, 0, candidates->num_rows());
    std::vector<uint32_t> sel;
    sel.reserve(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) sel.push_back(static_cast<uint32_t>(i));
    }
    if (sel.size() != keep.size()) out.SetSelection(std::move(sel));
    return out;
  }

  // LEFT OUTER: surviving candidates + NULL-padded unmatched left rows.
  std::vector<uint32_t> sel;
  sel.reserve(keep.size());
  for (size_t i = 0; i < keep.size(); ++i) {
    if (keep[i]) {
      pos_matched[lpos[i]] = 1;
      sel.push_back(static_cast<uint32_t>(i));
    }
  }
  std::vector<uint32_t> unmatched_l;
  for (size_t i = 0; i < n; ++i) {
    if (!pos_matched[i]) unmatched_l.push_back(chunk.RowAt(i));
  }
  if (unmatched_l.empty()) {
    DataChunk out(candidates, 0, candidates->num_rows());
    if (sel.size() != keep.size()) out.SetSelection(std::move(sel));
    return out;
  }
  TablePtr matched_out = candidates->Gather(sel);
  std::vector<uint32_t> unmatched_r(unmatched_l.size(), kNoMatch);
  TablePtr padded = BuildProbeOutput(join.output_schema(), left, right,
                                     unmatched_l, unmatched_r);
  matched_out->AppendAll(*padded);
  return DataChunk(matched_out, 0, matched_out->num_rows());
}

Status ApplyDeltaRestrict(const Stage& s, DataChunk* chunk, LocalStats* ls) {
  const auto& dr = *static_cast<const PhysicalDeltaRestrict*>(s.op);
  const ColumnVector& set_keys = s.keys->column(0);
  const ColumnVector& in_keys = chunk->table().column(dr.key_col());
  size_t n = chunk->size();
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t row = chunk->RowAt(i);
    bool in_set = false;
    auto range = s.set_index.equal_range(in_keys.HashAt(row));
    for (auto it = range.first; it != range.second; ++it) {
      if (in_keys.EqualsAt(row, set_keys, it->second)) {
        in_set = true;
        break;
      }
    }
    if (in_set == dr.keep_matching()) keep.push_back(static_cast<uint32_t>(i));
  }
  if (dr.keep_matching()) {
    ls->delta_probe_rows += static_cast<int64_t>(keep.size());
  }
  if (keep.size() != n) chunk->Restrict(keep);
  return Status::OK();
}

/// True if `op` can be fused into a pipeline in this context.
///
/// Hash-probe fusibility is a per-join legality fact, not a global mode
/// switch: a probe fuses under MPP when its build side is small enough to
/// broadcast (one shared read-only hash table probed by every worker).
/// The planner annotates each join with the build side's estimated
/// cardinality; joins compiled without a catalog carry no estimate and
/// conservatively stay breakers, as do builds above
/// EngineOptions::broadcast_build_rows — those keep the partitioned
/// shuffle path and its rows_shuffled / partition-cache semantics.
bool Fusible(const PhysicalOp& op, const ExecContext& ctx) {
  switch (op.pipeline_role()) {
    case PipelineRole::kFilter:
    case PipelineRole::kProject:
    case PipelineRole::kDeltaRestrict:
      return true;
    case PipelineRole::kHashProbe: {
      if (ctx.pool == nullptr || ctx.options->num_workers <= 1) return true;
      const auto* join = static_cast<const PhysicalHashJoin*>(&op);
      return BroadcastFusionLegal(join->build_rows_estimate(),
                                  ctx.options->broadcast_build_rows);
    }
    default:
      return false;
  }
}

// Dense copy of a chunk's rows under the pipeline's output schema.
void AppendChunk(const DataChunk& chunk, std::vector<ColumnVectorPtr>* acc) {
  chunk.AppendTo(acc);
}

std::vector<ColumnVectorPtr> MakeAccumulator(const Schema& schema) {
  std::vector<ColumnVectorPtr> cols;
  cols.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    cols.push_back(std::make_shared<ColumnVector>(schema.column(c).type));
  }
  return cols;
}

// Collects the maximal streaming chain starting at `start` (top-down) and
// executes the breaker below it, returning the materialized source.
Result<TablePtr> CollectChain(const PhysicalOp& start, ExecContext& ctx,
                              std::vector<const PhysicalOp*>* chain) {
  const PhysicalOp* cur = &start;
  while (Fusible(*cur, ctx)) {
    chain->push_back(cur);
    cur = cur->children()[0].get();
  }
  return ExecuteOp(*cur, ctx);
}

// Compiles stages bottom→top. Build sides and key sets materialize here —
// these are the pipeline's breakers on the non-streaming inputs. All stage
// state is read-only during execution, so one compiled stage vector is
// shared by every morsel worker.
Result<std::vector<Stage>> CompileStages(
    const std::vector<const PhysicalOp*>& chain, ExecContext& ctx) {
  std::vector<Stage> stages(chain.size());
  for (size_t i = 0; i < chain.size(); ++i) {
    const PhysicalOp* op = chain[chain.size() - 1 - i];
    Stage& s = stages[i];
    s.op = op;
    s.role = op->pipeline_role();
    switch (s.role) {
      case PipelineRole::kFilter:
        s.filter = std::make_unique<ChunkFilter>(
            &static_cast<const PhysicalFilter*>(op)->predicate());
        break;
      case PipelineRole::kProject: {
        const auto* proj = static_cast<const PhysicalProject*>(op);
        s.projector = std::make_unique<ChunkProjector>(&proj->exprs(),
                                                       &proj->output_schema());
        break;
      }
      case PipelineRole::kHashProbe: {
        const auto* join = static_cast<const PhysicalHashJoin*>(op);
        DBSP_ASSIGN_OR_RETURN(s.right,
                              ExecuteOp(*join->children()[1], ctx));
        s.build = join->GetOrBuildSerialHash(ctx, s.right);
        break;
      }
      case PipelineRole::kDeltaRestrict: {
        const auto* dr = static_cast<const PhysicalDeltaRestrict*>(op);
        DBSP_ASSIGN_OR_RETURN(s.keys, ctx.registry->Get(dr->delta_source()));
        if (s.keys->num_columns() == 0) {
          return Status::Internal("DeltaRestrict key set '" +
                                  dr->delta_source() + "' has no columns");
        }
        const ColumnVector& set_keys = s.keys->column(0);
        s.set_index.reserve(s.keys->num_rows());
        for (size_t r = 0; r < s.keys->num_rows(); ++r) {
          s.set_index.emplace(set_keys.HashAt(r), static_cast<uint32_t>(r));
        }
        break;
      }
      default:
        return Status::Internal("non-streaming op in pipeline chain");
    }
  }
  return stages;
}

// Streams one chunk through every compiled stage.
Result<DataChunk> RunChunk(const std::vector<Stage>& stages, DataChunk chunk,
                           LocalStats* ls) {
  for (const Stage& s : stages) {
    if (chunk.empty()) break;
    switch (s.role) {
      case PipelineRole::kFilter: {
        DBSP_RETURN_NOT_OK(s.filter->Apply(&chunk, &ls->kernels));
        break;
      }
      case PipelineRole::kProject: {
        DBSP_ASSIGN_OR_RETURN(chunk, s.projector->Apply(chunk, &ls->kernels));
        break;
      }
      case PipelineRole::kHashProbe: {
        DBSP_ASSIGN_OR_RETURN(chunk, ApplyProbe(s, chunk, ls));
        break;
      }
      case PipelineRole::kDeltaRestrict: {
        DBSP_RETURN_NOT_OK(ApplyDeltaRestrict(s, &chunk, ls));
        break;
      }
      default:
        break;
    }
  }
  return chunk;
}

void MergeLocalStats(const LocalStats& ls, LocalStats* total) {
  total->kernels.filter_rows += ls.kernels.filter_rows;
  total->kernels.project_rows += ls.kernels.project_rows;
  total->kernels.probe_rows += ls.kernels.probe_rows;
  total->delta_probe_rows += ls.delta_probe_rows;
}

void FlushLocalStats(const LocalStats& total, ExecContext& ctx) {
  ctx.stats.kernel_rows_filter += total.kernels.filter_rows;
  ctx.stats.kernel_rows_project += total.kernels.project_rows;
  ctx.stats.kernel_rows_probe += total.kernels.probe_rows;
  ctx.stats.delta_probe_rows += total.delta_probe_rows;
}

Result<TablePtr> RunPipeline(const PhysicalOp& top, ExecContext& ctx) {
  std::vector<const PhysicalOp*> chain;
  DBSP_ASSIGN_OR_RETURN(TablePtr source, CollectChain(top, ctx, &chain));

  const auto t0 = std::chrono::steady_clock::now();

  DBSP_ASSIGN_OR_RETURN(std::vector<Stage> stages, CompileStages(chain, ctx));

  const Schema& out_schema = top.output_schema();
  size_t n = source->num_rows();
  std::vector<DataChunk> morsels =
      SplitIntoMorsels(source, ctx.options->morsel_size);

  TablePtr out;
  LocalStats total;

  if (ctx.UseParallel(n) && morsels.size() > 1) {
    // Parallel morsels: a shared MorselQueue drained by num_workers worker
    // slots with stealing, each claimed morsel running the whole pipeline
    // and materializing a dense result; results concatenate in morsel
    // order regardless of claim order. Fault injection and cancellation
    // ride on the per-morsel claim — the same "worker abandoned the task"
    // failure mode mpp.dispatch models, fired once per morsel. The serial
    // path deliberately injects nothing, mirroring the legacy operators
    // (whose fault sites live only on their parallel branches): a serial
    // pipeline adds no scheduling step that could fail, and injecting per
    // serial morsel would inflate the per-recovery-segment hit count until
    // the executor's bounded checkpoint/restore loop could no longer
    // finish.
    size_t width = std::min<size_t>(
        static_cast<size_t>(ctx.options->num_workers), morsels.size());
    std::vector<TablePtr> results(morsels.size());
    std::vector<LocalStats> lstats(width);
    Status st = ctx.pool->ParallelForMorsels(
        morsels.size(), width,
        [&](size_t m, size_t slot) -> Status {
          DBSP_ASSIGN_OR_RETURN(DataChunk chunk,
                                RunChunk(stages, morsels[m], &lstats[slot]));
          if (!chunk.empty()) {
            auto acc = MakeAccumulator(out_schema);
            AppendChunk(chunk, &acc);
            results[m] = Table::FromColumns(out_schema, std::move(acc));
          }
          return Status::OK();
        },
        ctx.faults, "exec.pipeline.morsel", &ctx.cancel,
        &ctx.stats.morsels_stolen);
    DBSP_RETURN_NOT_OK(st);
    for (const LocalStats& ls : lstats) MergeLocalStats(ls, &total);
    auto acc_table = Table::Make(out_schema);
    for (const TablePtr& part : results) {
      if (part != nullptr) acc_table->AppendAll(*part);
    }
    out = std::move(acc_table);
  } else {
    std::vector<ColumnVectorPtr> acc;
    bool accumulating = morsels.size() != 1;
    if (accumulating) acc = MakeAccumulator(out_schema);
    for (DataChunk& morsel : morsels) {
      // Cooperative cancellation at every morsel boundary: deadlines and
      // cancels fire mid-pipeline without waiting for the sink.
      if (ctx.cancel.live()) {
        ++ctx.stats.cancel_checks;
        DBSP_RETURN_NOT_OK(ctx.cancel.Check());
      }
      DBSP_ASSIGN_OR_RETURN(DataChunk chunk,
                            RunChunk(stages, std::move(morsel), &total));
      if (!accumulating) {
        // Single morsel: pass the result through without the sink copy.
        // A chunk that still spans its whole base unchanged returns the
        // base table itself (preserves the legacy zero-copy/pointer
        // identity behavior of all-pass filters and delta restricts).
        // An empty chunk may have short-circuited mid-pipeline, so its
        // base can carry an intermediate schema — never pass it through.
        if (chunk.empty()) {
          out = Table::Make(out_schema);
        } else if (chunk.contiguous() && chunk.begin() == 0 && chunk.base() &&
                   chunk.size() == chunk.base()->num_rows()) {
          out = chunk.base();
        } else {
          acc = MakeAccumulator(out_schema);
          AppendChunk(chunk, &acc);
          out = Table::FromColumns(out_schema, std::move(acc));
        }
        break;
      }
      if (!chunk.empty()) AppendChunk(chunk, &acc);
    }
    if (out == nullptr) {
      if (!accumulating) acc = MakeAccumulator(out_schema);
      out = Table::FromColumns(out_schema, std::move(acc));
    }
  }

  ctx.stats.pipelines_run += 1;
  ctx.stats.morsels_dispatched += static_cast<int64_t>(morsels.size());
  ctx.stats.pipeline_rows_in += static_cast<int64_t>(n);
  ctx.stats.pipeline_rows_out += static_cast<int64_t>(out->num_rows());
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  FlushLocalStats(total, ctx);
  ctx.stats.pipeline_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  return out;
}

// Pipeline whose sink is a grouped aggregation (DESIGN.md §11): the
// aggregate never sees a materialized input table. Each morsel streams
// through the compiled stages and folds directly into a GroupedAggregator —
// one private partial per worker slot under MPP, merged once at the breaker
// (exact: AggState is a commutative monoid and DISTINCT defers to Finalize).
// This replaces both the input materialization AND the legacy
// shuffle-then-aggregate MPP path whenever vectorized execution is on; the
// shuffle path (exec.aggregate.shuffle, rows_shuffled) remains reachable
// with vectorized_exec off.
Result<TablePtr> RunAggregatePipeline(const PhysicalOp& top,
                                      ExecContext& ctx) {
  const auto& agg = static_cast<const PhysicalHashAggregate&>(top);
  std::vector<const PhysicalOp*> chain;
  DBSP_ASSIGN_OR_RETURN(TablePtr source,
                        CollectChain(*top.children()[0], ctx, &chain));

  const auto t0 = std::chrono::steady_clock::now();

  DBSP_ASSIGN_OR_RETURN(std::vector<Stage> stages, CompileStages(chain, ctx));

  size_t n = source->num_rows();
  std::vector<DataChunk> morsels =
      SplitIntoMorsels(source, ctx.options->morsel_size);

  LocalStats total;
  auto consume = [](GroupedAggregator* into, const DataChunk& chunk) {
    // Feed the sink a dense table; a chunk that still spans its whole base
    // unchanged is consumed in place (the zero-copy analogue of the
    // streaming sink's passthrough).
    if (chunk.contiguous() && chunk.begin() == 0 && chunk.base() &&
        chunk.size() == chunk.base()->num_rows()) {
      return into->Consume(*chunk.base());
    }
    return into->Consume(*chunk.Materialize());
  };

  GroupedAggregator merged(&agg.group_exprs(), &agg.aggregates(),
                           &agg.output_schema());

  if (ctx.UseParallel(n) && morsels.size() > 1) {
    size_t width = std::min<size_t>(
        static_cast<size_t>(ctx.options->num_workers), morsels.size());
    std::vector<LocalStats> lstats(width);
    std::vector<GroupedAggregator> partials;
    partials.reserve(width);
    for (size_t w = 0; w < width; ++w) {
      partials.emplace_back(&agg.group_exprs(), &agg.aggregates(),
                            &agg.output_schema());
    }
    Status st = ctx.pool->ParallelForMorsels(
        morsels.size(), width,
        [&](size_t m, size_t slot) -> Status {
          DBSP_ASSIGN_OR_RETURN(DataChunk chunk,
                                RunChunk(stages, morsels[m], &lstats[slot]));
          if (chunk.empty()) return Status::OK();
          return consume(&partials[slot], chunk);
        },
        ctx.faults, "exec.pipeline.morsel", &ctx.cancel,
        &ctx.stats.morsels_stolen);
    DBSP_RETURN_NOT_OK(st);
    for (const LocalStats& ls : lstats) MergeLocalStats(ls, &total);
    for (const GroupedAggregator& p : partials) {
      DBSP_RETURN_NOT_OK(merged.MergeFrom(p));
      ++ctx.stats.agg_partials_merged;
    }
  } else {
    for (DataChunk& morsel : morsels) {
      if (ctx.cancel.live()) {
        ++ctx.stats.cancel_checks;
        DBSP_RETURN_NOT_OK(ctx.cancel.Check());
      }
      DBSP_ASSIGN_OR_RETURN(DataChunk chunk,
                            RunChunk(stages, std::move(morsel), &total));
      if (chunk.empty()) continue;
      DBSP_RETURN_NOT_OK(consume(&merged, chunk));
    }
  }

  ctx.stats.agg_rows_preaggregated += merged.rows_consumed();
  DBSP_ASSIGN_OR_RETURN(TablePtr out, merged.Finalize());

  ctx.stats.pipelines_run += 1;
  ctx.stats.morsels_dispatched += static_cast<int64_t>(morsels.size());
  ctx.stats.pipeline_rows_in += static_cast<int64_t>(n);
  ctx.stats.pipeline_rows_out += static_cast<int64_t>(out->num_rows());
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  FlushLocalStats(total, ctx);
  ctx.stats.pipeline_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  return out;
}

}  // namespace

Result<TablePtr> ExecuteOp(const PhysicalOp& op, ExecContext& ctx) {
  if (ctx.options == nullptr || !ctx.options->optimizer.vectorized_exec) {
    return op.Execute(ctx);
  }
  if (op.pipeline_role() == PipelineRole::kPreAggregate) {
    return RunAggregatePipeline(op, ctx);
  }
  if (!Fusible(op, ctx)) return op.Execute(ctx);
  return RunPipeline(op, ctx);
}

}  // namespace dbspinner
