#include "exec/physical_plan.h"
#include "exec/pipeline.h"
#include "mpp/partition.h"

namespace dbspinner {

Result<TablePtr> PhysicalFilter::Execute(ExecContext& ctx) const {
  DBSP_ASSIGN_OR_RETURN(TablePtr input, ExecuteOp(*children_[0], ctx));
  size_t n = input->num_rows();

  if (ctx.UseParallel(n)) {
    // Range-split across simulated nodes; each evaluates its slice.
    size_t parts = ctx.NumPartitions();
    size_t chunk = (n + parts - 1) / parts;
    std::vector<std::vector<uint32_t>> sels(parts);
    Status st = ctx.pool->ParallelForStatus(
        parts,
        [&](size_t p) -> Status {
          size_t begin = p * chunk;
          size_t end = std::min(n, begin + chunk);
          for (size_t i = begin; i < end; ++i) {
            DBSP_ASSIGN_OR_RETURN(Value v,
                                  EvaluateExpr(*predicate_, *input, i));
            if (!v.is_null() && v.bool_value()) {
              sels[p].push_back(static_cast<uint32_t>(i));
            }
          }
          return Status::OK();
        },
        /*faults=*/nullptr, /*site=*/nullptr, &ctx.cancel);
    DBSP_RETURN_NOT_OK(st);
    std::vector<uint32_t> sel;
    for (const auto& s : sels) sel.insert(sel.end(), s.begin(), s.end());
    TablePtr out = input->Gather(sel);
    ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
    return out;
  }

  DBSP_ASSIGN_OR_RETURN(std::vector<uint32_t> sel,
                        EvaluatePredicate(*predicate_, *input));
  TablePtr out = input->Gather(sel);
  ctx.stats.rows_materialized += static_cast<int64_t>(out->num_rows());
  return out;
}

}  // namespace dbspinner
