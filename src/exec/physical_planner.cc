#include "exec/physical_planner.h"

namespace dbspinner {

namespace {

// Examines a join condition over [left ++ right] and splits it into equi-key
// pairs (left ordinal, right ordinal) plus a residual conjunct list.
void ExtractEquiKeys(const BoundExpr& condition, size_t num_left_cols,
                     size_t num_total_cols, std::vector<size_t>* left_keys,
                     std::vector<size_t>* right_keys,
                     std::vector<BoundExprPtr>* residual) {
  std::vector<BoundExprPtr> conjuncts;
  SplitConjuncts(condition, &conjuncts);
  for (auto& c : conjuncts) {
    bool is_equi = false;
    if (c->kind == BoundExprKind::kBinaryOp &&
        c->binary_op == BinaryOp::kEq &&
        c->children[0]->kind == BoundExprKind::kColumnRef &&
        c->children[1]->kind == BoundExprKind::kColumnRef) {
      size_t a = c->children[0]->column_index;
      size_t b = c->children[1]->column_index;
      if (a < num_left_cols && b >= num_left_cols && b < num_total_cols) {
        left_keys->push_back(a);
        right_keys->push_back(b - num_left_cols);
        is_equi = true;
      } else if (b < num_left_cols && a >= num_left_cols &&
                 a < num_total_cols) {
        left_keys->push_back(b);
        right_keys->push_back(a - num_left_cols);
        is_equi = true;
      }
    }
    if (!is_equi) residual->push_back(std::move(c));
  }
}

}  // namespace

Result<PhysicalOpPtr> CreatePhysicalPlan(const LogicalOp& logical,
                                         const CostModel* cost) {
  std::vector<PhysicalOpPtr> children;
  children.reserve(logical.children.size());
  for (const auto& c : logical.children) {
    DBSP_ASSIGN_OR_RETURN(PhysicalOpPtr child, CreatePhysicalPlan(*c, cost));
    children.push_back(std::move(child));
  }

  PhysicalOpPtr op;
  switch (logical.kind) {
    case LogicalOpKind::kScan:
      op = std::make_unique<PhysicalScan>(
          logical.output_schema,
          logical.scan_source == ScanSource::kCatalog, logical.scan_name);
      break;
    case LogicalOpKind::kValues:
      op = std::make_unique<PhysicalValues>(logical.output_schema,
                                            logical.rows);
      break;
    case LogicalOpKind::kFilter:
      op = std::make_unique<PhysicalFilter>(logical.output_schema,
                                            logical.predicate->Clone());
      break;
    case LogicalOpKind::kProject: {
      std::vector<BoundExprPtr> exprs;
      exprs.reserve(logical.projections.size());
      for (const auto& p : logical.projections) exprs.push_back(p->Clone());
      op = std::make_unique<PhysicalProject>(logical.output_schema,
                                             std::move(exprs));
      break;
    }
    case LogicalOpKind::kJoin: {
      size_t num_left = logical.children[0]->output_schema.num_columns();
      size_t num_total = logical.output_schema.num_columns();
      std::vector<size_t> lkeys, rkeys;
      std::vector<BoundExprPtr> residual;
      if (logical.join_condition) {
        ExtractEquiKeys(*logical.join_condition, num_left, num_total, &lkeys,
                        &rkeys, &residual);
      }
      if (!lkeys.empty()) {
        BoundExprPtr res =
            residual.empty() ? nullptr : CombineConjuncts(std::move(residual));
        auto join = std::make_unique<PhysicalHashJoin>(
            logical.output_schema, logical.join_type, std::move(lkeys),
            std::move(rkeys), std::move(res));
        if (cost != nullptr) {
          join->set_build_rows_estimate(
              cost->EstimateCardinality(*logical.children[1]));
        }
        op = std::move(join);
      } else {
        BoundExprPtr cond = logical.join_condition
                                ? logical.join_condition->Clone()
                                : nullptr;
        op = std::make_unique<PhysicalNestedLoopJoin>(
            logical.output_schema, logical.join_type, std::move(cond));
      }
      break;
    }
    case LogicalOpKind::kAggregate: {
      std::vector<BoundExprPtr> groups;
      for (const auto& g : logical.group_exprs) groups.push_back(g->Clone());
      std::vector<AggregateSpec> specs;
      for (const auto& a : logical.aggregates) specs.push_back(a.Clone());
      op = std::make_unique<PhysicalHashAggregate>(
          logical.output_schema, std::move(groups), std::move(specs));
      break;
    }
    case LogicalOpKind::kUnionAll:
      op = std::make_unique<PhysicalUnionAll>(logical.output_schema);
      break;
    case LogicalOpKind::kExcept:
      op = std::make_unique<PhysicalSetDifference>(logical.output_schema,
                                                   /*intersect=*/false);
      break;
    case LogicalOpKind::kIntersect:
      op = std::make_unique<PhysicalSetDifference>(logical.output_schema,
                                                   /*intersect=*/true);
      break;
    case LogicalOpKind::kDistinct:
      op = std::make_unique<PhysicalDistinct>(logical.output_schema);
      break;
    case LogicalOpKind::kSort: {
      std::vector<PhysicalSort::Key> keys;
      for (const auto& k : logical.sort_keys) {
        keys.push_back(PhysicalSort::Key{k.expr->Clone(), k.descending});
      }
      op = std::make_unique<PhysicalSort>(logical.output_schema,
                                          std::move(keys));
      break;
    }
    case LogicalOpKind::kLimit:
      op = std::make_unique<PhysicalLimit>(logical.output_schema,
                                           logical.limit, logical.offset);
      break;
    case LogicalOpKind::kDeltaRestrict:
      op = std::make_unique<PhysicalDeltaRestrict>(
          logical.output_schema, logical.delta_source, logical.delta_key_col,
          logical.delta_keep_matching);
      break;
  }
  if (!op) return Status::Internal("unhandled logical operator");
  for (auto& c : children) op->AddChild(std::move(c));
  return op;
}

Status PlanProgram(Program* program, Catalog* catalog) {
  CostModel cost(catalog);
  const CostModel* cost_ptr = catalog != nullptr ? &cost : nullptr;
  for (Step& step : program->steps) {
    if (step.plan && !step.physical) {
      DBSP_ASSIGN_OR_RETURN(step.physical,
                            CreatePhysicalPlan(*step.plan, cost_ptr));
    }
  }
  return Status::OK();
}

}  // namespace dbspinner
