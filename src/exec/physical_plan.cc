#include "exec/physical_plan.h"

#include "common/string_util.h"

namespace dbspinner {

void ExecStats::RewindWorkCountersTo(const ExecStats& base) {
  steps_executed = base.steps_executed;
  loop_iterations = base.loop_iterations;
  rows_materialized = base.rows_materialized;
  rows_shuffled = base.rows_shuffled;
  renames = base.renames;
  merge_updates = base.merge_updates;
  delta_rows = base.delta_rows;
  delta_probe_rows = base.delta_probe_rows;
  build_cache_hits = base.build_cache_hits;
  pipelines_run = base.pipelines_run;
  morsels_dispatched = base.morsels_dispatched;
  pipeline_rows_in = base.pipeline_rows_in;
  pipeline_rows_out = base.pipeline_rows_out;
  kernel_rows_filter = base.kernel_rows_filter;
  kernel_rows_project = base.kernel_rows_project;
  kernel_rows_probe = base.kernel_rows_probe;
  pipeline_ns = base.pipeline_ns;
  morsels_stolen = base.morsels_stolen;
  agg_partials_merged = base.agg_partials_merged;
  agg_rows_preaggregated = base.agg_rows_preaggregated;
}

std::string ExecStats::ToString() const {
  return StringPrintf(
      "ExecStats{steps=%lld, iterations=%lld, rows_materialized=%lld, "
      "rows_shuffled=%lld, renames=%lld, merge_updates=%lld, "
      "delta_rows=%lld, delta_probe_rows=%lld, build_cache_hits=%lld, "
      "faults_seen=%lld, step_retries=%lld, checkpoints_taken=%lld, "
      "restores=%lld, durable_checkpoints=%lld, verify_violations=%lld, "
      "queue_wait_us=%lld, "
      "admission_waits=%lld, cancel_checks=%lld, pipelines=%lld, "
      "morsels=%lld, pipe_rows_in=%lld, pipe_rows_out=%lld, "
      "kernel_filter=%lld, kernel_project=%lld, kernel_probe=%lld, "
      "morsels_stolen=%lld, agg_partials_merged=%lld, "
      "agg_rows_preaggregated=%lld, ivm_deltas_applied=%lld, "
      "ivm_rows_maintained=%lld, ivm_full_refreshes=%lld, "
      "ivm_fallbacks=%lld, pipeline_ms=%.3f}",
      static_cast<long long>(steps_executed),
      static_cast<long long>(loop_iterations),
      static_cast<long long>(rows_materialized),
      static_cast<long long>(rows_shuffled), static_cast<long long>(renames),
      static_cast<long long>(merge_updates),
      static_cast<long long>(delta_rows),
      static_cast<long long>(delta_probe_rows),
      static_cast<long long>(build_cache_hits),
      static_cast<long long>(faults_seen),
      static_cast<long long>(step_retries),
      static_cast<long long>(checkpoints_taken),
      static_cast<long long>(restores),
      static_cast<long long>(durable_checkpoints),
      static_cast<long long>(verify_violations),
      static_cast<long long>(queue_wait_us),
      static_cast<long long>(admission_waits),
      static_cast<long long>(cancel_checks),
      static_cast<long long>(pipelines_run),
      static_cast<long long>(morsels_dispatched),
      static_cast<long long>(pipeline_rows_in),
      static_cast<long long>(pipeline_rows_out),
      static_cast<long long>(kernel_rows_filter),
      static_cast<long long>(kernel_rows_project),
      static_cast<long long>(kernel_rows_probe),
      static_cast<long long>(morsels_stolen),
      static_cast<long long>(agg_partials_merged),
      static_cast<long long>(agg_rows_preaggregated),
      static_cast<long long>(ivm_deltas_applied),
      static_cast<long long>(ivm_rows_maintained),
      static_cast<long long>(ivm_full_refreshes),
      static_cast<long long>(ivm_fallbacks),
      static_cast<double>(pipeline_ns) / 1e6);
}

std::string PhysicalOp::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + Name();
  std::string detail = Describe();
  if (!detail.empty()) out += " [" + detail + "]";
  out += "\n";
  for (const auto& c : children_) out += c->ToString(indent + 1);
  return out;
}

Result<TablePtr> PhysicalScan::Execute(ExecContext& ctx) const {
  if (from_catalog_) {
    DBSP_ASSIGN_OR_RETURN(CatalogEntry * entry, ctx.catalog->Get(name_));
    return entry->table;
  }
  return ctx.registry->Get(name_);
}

Result<TablePtr> PhysicalValues::Execute(ExecContext& ctx) const {
  (void)ctx;
  auto out = Table::Make(output_schema_);
  for (const auto& row : rows_) out->AppendRow(row);
  return out;
}

}  // namespace dbspinner
