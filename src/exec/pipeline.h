// Morsel-driven vectorized pipeline executor (DESIGN.md §11).
//
// ExecuteOp is the single entry point for running any physical operator.
// With OptimizerOptions::vectorized_exec on, maximal streaming chains
// (scan→filter→project→probe→delta-restrict) are fused into one pipeline
// that pulls fixed-size morsels from the source table through compiled
// chunk kernels and materializes once, at the sink. Pipeline breakers
// (aggregate, sort, set ops, limit, MPP hash joins, loop boundaries) run
// their own Execute and recursively route their children back through
// ExecuteOp, so every breaker input is itself pipelined.
//
// With the toggle off this degenerates to PhysicalOp::Execute everywhere —
// the legacy operator-at-a-time executor, preserved as the differential
// baseline swept by the fuzzer and tests.

#pragma once

#include "exec/physical_plan.h"

namespace dbspinner {

Result<TablePtr> ExecuteOp(const PhysicalOp& op, ExecContext& ctx);

}  // namespace dbspinner
