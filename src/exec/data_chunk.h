// DataChunk: a morsel-sized view over a materialized table.
//
// The vectorized pipeline executor (exec/pipeline.cc, DESIGN.md §11) never
// copies rows between streaming operators. A chunk is a shared TablePtr plus
// either a contiguous row window or an absolute selection vector; filters
// and semi-joins refine the selection in place, projections and probes swap
// in a new dense base. Rows are copied exactly once, at the pipeline sink
// (or at a pipeline breaker), via the batch Append* paths of ColumnVector.

#pragma once

#include <cstdint>
#include <vector>

#include "storage/table.h"

namespace dbspinner {

/// A view of `size()` rows of a backing table. Cheap to copy when
/// contiguous; the selection vector moves with the chunk otherwise.
class DataChunk {
 public:
  DataChunk() = default;

  /// Contiguous window [begin, begin + count) over `base`.
  DataChunk(TablePtr base, size_t begin, size_t count)
      : base_(std::move(base)),
        begin_(static_cast<uint32_t>(begin)),
        count_(static_cast<uint32_t>(count)) {}

  const TablePtr& base() const { return base_; }
  const Table& table() const { return *base_; }

  size_t size() const { return has_sel_ ? sel_.size() : count_; }
  bool empty() const { return size() == 0; }
  bool contiguous() const { return !has_sel_; }
  uint32_t begin() const { return begin_; }

  /// Absolute base-table row id at chunk position `i`.
  uint32_t RowAt(size_t i) const {
    return has_sel_ ? sel_[i] : begin_ + static_cast<uint32_t>(i);
  }

  /// The absolute selection (valid only when !contiguous()).
  const std::vector<uint32_t>& selection() const { return sel_; }

  /// Replaces the view with an absolute selection into base().
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }

  /// Keeps only the given positions (indices into the *current* view, in
  /// increasing order), refining the selection in place.
  void Restrict(const std::vector<uint32_t>& positions);

  /// Dense copy of the chunk's rows (base schema), using the batch
  /// range/gather column paths.
  TablePtr Materialize() const;

  /// Appends the chunk's rows to `out` — one accumulator per base column,
  /// types already matching. This is the pipeline sink's copy.
  void AppendTo(std::vector<ColumnVectorPtr>* out) const;

 private:
  TablePtr base_;
  uint32_t begin_ = 0;
  uint32_t count_ = 0;
  bool has_sel_ = false;
  std::vector<uint32_t> sel_;
};

/// Splits `table` into contiguous chunks of at most `morsel_size` rows
/// (at least one chunk only when the table is non-empty).
std::vector<DataChunk> SplitIntoMorsels(const TablePtr& table,
                                        size_t morsel_size);

}  // namespace dbspinner
