#include "exec/pipeline_kernels.h"

namespace dbspinner {

namespace {

// A numeric comparison operand bound at compile time to a column ordinal or
// a constant; column pointers are re-resolved per chunk because every
// projection/probe stage swaps in a new base table.
struct KernelOperand {
  bool Compile(const BoundExpr& e, bool allow_null_const) {
    if (e.kind == BoundExprKind::kColumnRef) {
      if (e.type != TypeId::kInt64 && e.type != TypeId::kDouble) return false;
      col_index = e.column_index;
      is_column = true;
      is_int = e.type == TypeId::kInt64;
      return true;
    }
    if (e.kind == BoundExprKind::kConstant) {
      if (e.constant.is_null()) {
        if (!allow_null_const) return false;
        is_null_const = true;
        return true;
      }
      if (!IsNumeric(e.constant.type())) return false;
      is_int = e.constant.type() == TypeId::kInt64;
      const_int = e.constant.AsInt64();
      const_double = e.constant.AsDouble();
      return true;
    }
    return false;
  }

  // Re-binds the column pointer against this chunk's base. False when the
  // runtime column type disagrees with the compile-time type (never happens
  // for well-formed tables; the caller then falls back row-wise).
  bool Bind(const Table& base) {
    if (!is_column) return true;
    col = &base.column(col_index);
    return col->type() == (is_int ? TypeId::kInt64 : TypeId::kDouble);
  }

  bool IsNullAt(uint32_t r) const {
    return is_column ? col->IsNull(r) : is_null_const;
  }
  int64_t IntAt(uint32_t r) const {
    return is_column ? col->Int64At(r) : const_int;
  }
  double DoubleAt(uint32_t r) const {
    return is_column ? col->NumericAt(r) : const_double;
  }

  size_t col_index = 0;
  const ColumnVector* col = nullptr;
  bool is_column = false;
  bool is_null_const = false;
  bool is_int = true;
  int64_t const_int = 0;
  double const_double = 0;
};

bool IsComparison(BinaryOp op) {
  return op == BinaryOp::kEq || op == BinaryOp::kNe || op == BinaryOp::kLt ||
         op == BinaryOp::kLe || op == BinaryOp::kGt || op == BinaryOp::kGe;
}

bool IsKernelArith(BinaryOp op) {
  return op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul;
}

inline bool CmpInt(BinaryOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinaryOp::kEq: return a == b;
    case BinaryOp::kNe: return a != b;
    case BinaryOp::kLt: return a < b;
    case BinaryOp::kLe: return a <= b;
    case BinaryOp::kGt: return a > b;
    default: return a >= b;
  }
}

inline bool CmpDouble(BinaryOp op, double a, double b) {
  switch (op) {
    case BinaryOp::kEq: return a == b;
    case BinaryOp::kNe: return a != b;
    case BinaryOp::kLt: return a < b;
    case BinaryOp::kLe: return a <= b;
    case BinaryOp::kGt: return a > b;
    default: return a >= b;
  }
}

/// A bound comparison kernel over one chunk's base table.
struct CmpKernel {
  bool Bind(const BoundExpr& e, const Table& base) {
    op = e.binary_op;
    if (!l.Compile(*e.children[0], /*allow_null_const=*/false) ||
        !r.Compile(*e.children[1], /*allow_null_const=*/false)) {
      return false;
    }
    both_int = l.is_int && r.is_int;
    return l.Bind(base) && r.Bind(base);
  }

  // Appends passing absolute row ids of the chunk view to `sel`. Returns
  // false on the first NULL input (the caller must fall back row-wise: a
  // NULL conjunct does not short-circuit AND).
  bool FilterView(const DataChunk& chunk, std::vector<uint32_t>* sel) const {
    size_t n = chunk.size();
    if (both_int) {
      for (size_t i = 0; i < n; ++i) {
        uint32_t row = chunk.RowAt(i);
        if (l.IsNullAt(row) || r.IsNullAt(row)) return false;
        if (CmpInt(op, l.IntAt(row), r.IntAt(row))) sel->push_back(row);
      }
      return true;
    }
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = chunk.RowAt(i);
      if (l.IsNullAt(row) || r.IsNullAt(row)) return false;
      if (CmpDouble(op, l.DoubleAt(row), r.DoubleAt(row))) sel->push_back(row);
    }
    return true;
  }

  // In-place refinement of an absolute selection.
  bool FilterSel(std::vector<uint32_t>* sel) const {
    size_t out = 0;
    for (size_t i = 0; i < sel->size(); ++i) {
      uint32_t row = (*sel)[i];
      if (l.IsNullAt(row) || r.IsNullAt(row)) return false;
      bool pass = both_int ? CmpInt(op, l.IntAt(row), r.IntAt(row))
                           : CmpDouble(op, l.DoubleAt(row), r.DoubleAt(row));
      if (pass) (*sel)[out++] = row;
    }
    sel->resize(out);
    return true;
  }

  BinaryOp op = BinaryOp::kEq;
  KernelOperand l, r;
  bool both_int = false;
};

bool KernelizableComparison(const BoundExpr& e) {
  if (e.kind != BoundExprKind::kBinaryOp || !IsComparison(e.binary_op)) {
    return false;
  }
  KernelOperand l, r;
  return l.Compile(*e.children[0], /*allow_null_const=*/false) &&
         r.Compile(*e.children[1], /*allow_null_const=*/false);
}

}  // namespace

ChunkFilter::ChunkFilter(const BoundExpr* predicate) : predicate_(predicate) {
  std::vector<BoundExprPtr> conjuncts;
  SplitConjuncts(*predicate, &conjuncts);
  // Longest kernelizable prefix: a row dropped by a FALSE prefix conjunct is
  // one the row-wise AND short-circuits before any later conjunct, so error
  // semantics are preserved. A kernelizable conjunct past the first
  // non-kernel one must stay row-wise (it could mask an earlier error).
  size_t split = 0;
  while (split < conjuncts.size() && KernelizableComparison(*conjuncts[split])) {
    ++split;
  }
  kernel_prefix_.assign(std::make_move_iterator(conjuncts.begin()),
                        std::make_move_iterator(conjuncts.begin() + split));
  if (split < conjuncts.size()) {
    std::vector<BoundExprPtr> rest(
        std::make_move_iterator(conjuncts.begin() + split),
        std::make_move_iterator(conjuncts.end()));
    rest_ = CombineConjuncts(std::move(rest));
  }
}

Status ChunkFilter::ApplyRowWise(const BoundExpr& expr,
                                 DataChunk* chunk) const {
  const Table& base = chunk->table();
  size_t n = chunk->size();
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DBSP_ASSIGN_OR_RETURN(Value v, EvaluateExpr(expr, base, chunk->RowAt(i)));
    if (!v.is_null() && v.bool_value()) {
      keep.push_back(static_cast<uint32_t>(i));
    }
  }
  chunk->Restrict(keep);
  return Status::OK();
}

Status ChunkFilter::Apply(DataChunk* chunk, KernelCounters* counters) const {
  if (chunk->empty()) {
    chunk->SetSelection({});
    return Status::OK();
  }
  if (kernel_prefix_.empty()) return ApplyRowWise(*predicate_, chunk);

  const Table& base = chunk->table();
  std::vector<uint32_t> sel;
  sel.reserve(chunk->size());
  for (size_t k = 0; k < kernel_prefix_.size(); ++k) {
    CmpKernel kernel;
    bool ok = kernel.Bind(*kernel_prefix_[k], base);
    if (ok) {
      if (k == 0) {
        counters->filter_rows += static_cast<int64_t>(chunk->size());
        ok = kernel.FilterView(*chunk, &sel);
      } else {
        counters->filter_rows += static_cast<int64_t>(sel.size());
        ok = kernel.FilterSel(&sel);
      }
    }
    // A NULL input (or a type surprise) voids the kernel pass for this
    // chunk; the row-wise path reproduces the exact AND semantics.
    if (!ok) return ApplyRowWise(*predicate_, chunk);
  }
  chunk->SetSelection(std::move(sel));
  if (rest_ != nullptr && !chunk->empty()) {
    return ApplyRowWise(*rest_, chunk);
  }
  return Status::OK();
}

namespace {

// Batch projection kernel mirroring expr.cc's TryVectorizedBinary, but over
// a chunk's row view. Returns nullptr when no kernel applies.
ColumnVectorPtr TryChunkBinary(const BoundExpr& expr, const DataChunk& chunk) {
  if (expr.kind != BoundExprKind::kBinaryOp) return nullptr;
  BinaryOp op = expr.binary_op;
  bool is_arith = IsKernelArith(op);
  bool is_cmp = IsComparison(op);
  if (!is_arith && !is_cmp) return nullptr;

  KernelOperand l, r;
  if (!l.Compile(*expr.children[0], /*allow_null_const=*/true) ||
      !r.Compile(*expr.children[1], /*allow_null_const=*/true)) {
    return nullptr;
  }
  const Table& base = chunk.table();
  if (!l.Bind(base) || !r.Bind(base)) return nullptr;
  size_t n = chunk.size();

  auto out = std::make_shared<ColumnVector>(expr.type);
  out->Reserve(n);
  if (l.is_null_const || r.is_null_const) {
    for (size_t i = 0; i < n; ++i) out->AppendNull();
    return out;
  }

  bool both_int = l.is_int && r.is_int;
  if (is_arith && both_int && expr.type == TypeId::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = chunk.RowAt(i);
      if (l.IsNullAt(row) || r.IsNullAt(row)) {
        out->AppendNull();
        continue;
      }
      int64_t a = l.IntAt(row);
      int64_t b = r.IntAt(row);
      out->AppendInt64(op == BinaryOp::kAdd   ? a + b
                       : op == BinaryOp::kSub ? a - b
                                              : a * b);
    }
    return out;
  }
  if (is_arith && expr.type == TypeId::kDouble) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = chunk.RowAt(i);
      if (l.IsNullAt(row) || r.IsNullAt(row)) {
        out->AppendNull();
        continue;
      }
      double a = l.DoubleAt(row);
      double b = r.DoubleAt(row);
      out->AppendDouble(op == BinaryOp::kAdd   ? a + b
                        : op == BinaryOp::kSub ? a - b
                                               : a * b);
    }
    return out;
  }
  if (is_cmp) {
    for (size_t i = 0; i < n; ++i) {
      uint32_t row = chunk.RowAt(i);
      if (l.IsNullAt(row) || r.IsNullAt(row)) {
        out->AppendNull();
        continue;
      }
      bool res = both_int ? CmpInt(op, l.IntAt(row), r.IntAt(row))
                          : CmpDouble(op, l.DoubleAt(row), r.DoubleAt(row));
      out->AppendBool(res);
    }
    return out;
  }
  return nullptr;
}

}  // namespace

ChunkProjector::ChunkProjector(const std::vector<BoundExprPtr>* exprs,
                               const Schema* output_schema)
    : exprs_(exprs), output_schema_(output_schema) {}

Result<DataChunk> ChunkProjector::Apply(const DataChunk& chunk,
                                        KernelCounters* counters) const {
  const Table& base = chunk.table();
  size_t n = chunk.size();
  bool whole_base = chunk.contiguous() && chunk.begin() == 0 &&
                    n == base.num_rows();

  std::vector<ColumnVectorPtr> cols;
  cols.reserve(exprs_->size());
  for (size_t c = 0; c < exprs_->size(); ++c) {
    const BoundExpr& expr = *(*exprs_)[c];
    ColumnVectorPtr col;
    if (expr.kind == BoundExprKind::kColumnRef &&
        base.column(expr.column_index).type() == expr.type) {
      counters->project_rows += static_cast<int64_t>(n);
      if (whole_base) {
        // Zero copy: the chunk is the entire base table.
        col = base.column_ptr(expr.column_index);
      } else {
        col = std::make_shared<ColumnVector>(expr.type);
        if (chunk.contiguous()) {
          col->AppendRange(base.column(expr.column_index), chunk.begin(), n);
        } else {
          col->AppendGathered(base.column(expr.column_index),
                              chunk.selection());
        }
      }
    } else if ((col = TryChunkBinary(expr, chunk)) != nullptr) {
      counters->project_rows += static_cast<int64_t>(n);
    } else {
      col = std::make_shared<ColumnVector>(expr.type);
      col->Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        DBSP_ASSIGN_OR_RETURN(Value v,
                              EvaluateExpr(expr, base, chunk.RowAt(i)));
        col->Append(v);
      }
    }
    if (col->type() != output_schema_->column(c).type) {
      auto cast =
          std::make_shared<ColumnVector>(output_schema_->column(c).type);
      cast->AppendAll(*col);
      col = std::move(cast);
    }
    cols.push_back(std::move(col));
  }
  TablePtr out = Table::FromColumns(*output_schema_, std::move(cols));
  return DataChunk(out, 0, n);
}

}  // namespace dbspinner
