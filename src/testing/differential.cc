#include "testing/differential.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <thread>

#include "common/string_util.h"
#include "graph/reference_algorithms.h"
#include "server/session.h"
#include "testing/fuzz_rng.h"

namespace dbspinner {
namespace fuzz {

namespace {

EngineOptions BaseOptions(const DifferentialOptions& opts) {
  EngineOptions eo;
  eo.max_iterations_guard = opts.max_iterations_guard;
  eo.dev_break_rename_for_testing =
      opts.break_rename && eo.optimizer.enable_rename_optimization;
  eo.verify.verify_plans = opts.verify;
  eo.verify.enforce = opts.verify;
  return eo;
}

OracleOutcome RunSqlOracle(const FuzzCase& c, std::string name,
                           EngineOptions eo, const std::string& sql) {
  OracleOutcome out;
  out.name = std::move(name);
  Database db(std::move(eo));
  out.status = LoadCaseData(&db, c);
  if (!out.status.ok()) return out;
  Result<QueryResult> r = db.Execute(sql);
  out.status = r.status();
  if (r.ok()) {
    out.table = r->table;
    out.stats = r->stats;
  }
  return out;
}

// Disk round-trip oracle: load into a persistent database, close, reopen
// (recovery materializes every table from compressed extents), query.
OracleOutcome RunPersistenceOracle(const FuzzCase& c, std::string name,
                                   EngineOptions eo, const std::string& sql,
                                   const std::string& dir) {
  OracleOutcome out;
  out.name = std::move(name);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  eo.persistence.enabled = true;
  eo.persistence.path = dir;
  eo.persistence.sync = false;  // format round-trip only; no crash here
  eo.persistence.block_rows = 64;        // multi-block extents on small data
  eo.persistence.buffer_pool_blocks = 8; // scans must evict under pressure
  eo.persistence.manifest_every = 4;     // folds + extent GC mid-load
  {
    Database db(eo);
    out.status = LoadCaseData(&db, c);
    if (!out.status.ok()) return out;
  }
  // Reopen: the query below runs entirely against recovered state.
  Database db(eo);
  Result<QueryResult> r = db.Execute(sql);
  out.status = r.status();
  if (r.ok()) {
    out.table = r->table;
    out.stats = r->stats;
  }
  std::filesystem::remove_all(dir, ec);
  return out;
}

OracleOutcome RunProcedureOracle(const FuzzCase& c,
                                 const DifferentialOptions& opts) {
  OracleOutcome out;
  out.name = "procedure";
  Database db(BaseOptions(opts));
  out.status = LoadCaseData(&db, c);
  if (!out.status.ok()) return out;
  Procedure p = RenderProcedure(c.query);
  Result<QueryResult> r = p.Run(&db);
  out.status = r.status();
  if (r.ok()) out.table = r->table;
  return out;
}

// Ground-truth rows for the canonical families, computed by the reference
// implementations and shaped like the canonical query's final SELECT.
OracleOutcome RunReferenceOracle(const FuzzCase& c,
                                 std::vector<std::vector<Value>>* rows) {
  OracleOutcome out;
  out.name = "reference";
  out.status = Status::OK();
  graph::EdgeList g = graph::Generate(c.graph);

  std::unordered_map<int64_t, int64_t> status_map;
  const std::unordered_map<int64_t, int64_t>* status = nullptr;
  if (c.query.vs_join) {
    TablePtr vs = graph::BuildVertexStatusTable(g.num_nodes, c.status_fraction,
                                                c.status_seed);
    status_map = graph::StatusMap(*vs);
    status = &status_map;
  }

  switch (c.query.family) {
    case QueryFamily::kCanonicalPR: {
      // PRQuery: SELECT node, rank FROM pagerank
      for (const graph::PageRankRow& r :
           graph::ReferencePageRank(g, c.query.iterations, status)) {
        rows->push_back({Value::Int64(r.node),
                         r.rank ? Value::Double(*r.rank) : Value::Null()});
      }
      break;
    }
    case QueryFamily::kCanonicalSSSP: {
      // SSSPQuery: SELECT distance FROM sssp WHERE node = target
      for (const graph::SsspRow& r :
           graph::ReferenceSssp(g, c.query.iterations, c.query.source_node,
                                status)) {
        if (r.node == c.query.target_node) {
          rows->push_back({Value::Double(r.distance)});
        }
      }
      break;
    }
    case QueryFamily::kCanonicalFF: {
      // FFQuery (huge limit): SELECT node, friends WHERE MOD(node, m) = 0
      for (const graph::ForecastRow& r :
           graph::ReferenceForecast(g, c.query.iterations)) {
        if (r.node % c.query.filter_mod == 0) {
          rows->push_back({Value::Int64(r.node), Value::Double(r.friends)});
        }
      }
      break;
    }
    default:
      out.status = Status::Internal("no reference for this family");
      break;
  }
  return out;
}

bool RowLess(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int cmp = a[i].Compare(b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

std::string RowToString(const std::vector<Value>& row) {
  std::string s = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) s += ", ";
    s += row[i].ToString();
  }
  return s + ")";
}

bool CellsMatch(const Value& a, const Value& b, double eps) {
  if (a.is_null() != b.is_null()) return false;
  if (a.is_null()) return true;
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    return std::fabs(a.AsDouble() - b.AsDouble()) <= eps;
  }
  return a.ToString() == b.ToString();
}

}  // namespace

std::vector<std::vector<Value>> TableRows(const Table& t) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) rows.push_back(t.GetRow(r));
  return rows;
}

std::string DiffRowSets(const std::vector<std::vector<Value>>& a,
                        const std::vector<std::vector<Value>>& b, double eps) {
  if (a.size() != b.size()) {
    return StringPrintf("row count %zu vs %zu", a.size(), b.size());
  }
  if (a.empty()) return "";
  if (a[0].size() != b[0].size()) {
    return StringPrintf("column count %zu vs %zu", a[0].size(), b[0].size());
  }
  std::vector<std::vector<Value>> sa = a, sb = b;
  std::sort(sa.begin(), sa.end(), RowLess);
  std::sort(sb.begin(), sb.end(), RowLess);
  for (size_t r = 0; r < sa.size(); ++r) {
    for (size_t col = 0; col < sa[r].size(); ++col) {
      if (!CellsMatch(sa[r][col], sb[r][col], eps)) {
        return StringPrintf("row %zu differs: %s vs %s", r,
                            RowToString(sa[r]).c_str(),
                            RowToString(sb[r]).c_str());
      }
    }
  }
  return "";
}

std::string DiffReport::Describe(const FuzzCase& c) const {
  std::string s = "case: " + c.Label() + "\n";
  if (!ok) s += "FAILURE: " + failure + "\n";
  s += "sql:\n" + sql + "\n";
  for (const OracleOutcome& o : outcomes) {
    s += "  [" + o.name + "] " + o.status.ToString();
    if (o.status.ok() && o.table) {
      s += StringPrintf(" (%zu rows)", o.table->num_rows());
    }
    s += "\n";
  }
  return s;
}

DiffReport RunDifferential(const FuzzCase& c,
                           const DifferentialOptions& opts) {
  DiffReport report;
  report.sql = RenderQuery(c.query);

  // --- run the matrix -------------------------------------------------------
  report.outcomes.push_back(
      RunSqlOracle(c, "baseline", BaseOptions(opts), report.sql));

  for (const OptimizerToggles::Toggle& t : OptimizerToggles::All()) {
    EngineOptions eo = BaseOptions(opts);
    eo.optimizer.*t.member = false;
    eo.dev_break_rename_for_testing =
        opts.break_rename && eo.optimizer.enable_rename_optimization;
    report.outcomes.push_back(
        RunSqlOracle(c, std::string("no-") + t.name, eo, report.sql));
  }
  {
    EngineOptions eo = BaseOptions(opts);
    eo.optimizer = OptimizerToggles::AllSetTo(false);
    eo.dev_break_rename_for_testing = false;
    report.outcomes.push_back(RunSqlOracle(c, "all-off", eo, report.sql));
  }
  for (int workers : {2, 8}) {
    EngineOptions eo = BaseOptions(opts);
    eo.num_workers = workers;
    eo.mpp_min_rows_per_task = 1;
    report.outcomes.push_back(RunSqlOracle(
        c, StringPrintf("mpp-%d", workers), eo, report.sql));
  }
  for (size_t morsel : opts.morsel_sizes) {
    // Chunk-boundary equivalence: the vectorized pipeline must produce the
    // same rows no matter where morsel boundaries fall (group runs, join
    // matches, and NULL runs straddling chunks are the interesting cases).
    // Crossed with worker widths, the same sweep also covers the stealing
    // dispatcher, broadcast-fused probes, and partial pre-aggregation.
    for (int workers : opts.morsel_workers) {
      EngineOptions eo = BaseOptions(opts);
      eo.morsel_size = morsel;
      eo.num_workers = workers;
      if (workers > 1) eo.mpp_min_rows_per_task = 1;
      report.outcomes.push_back(RunSqlOracle(
          c,
          workers > 1 ? StringPrintf("morsel-%zu-w%d", morsel, workers)
                      : StringPrintf("morsel-%zu", morsel),
          eo, report.sql));
    }
  }
  if (!opts.persistence_dir.empty()) {
    for (int workers : opts.persistence_workers) {
      EngineOptions eo = BaseOptions(opts);
      eo.num_workers = workers;
      if (workers > 1) eo.mpp_min_rows_per_task = 1;
      report.outcomes.push_back(RunPersistenceOracle(
          c, StringPrintf("persist-w%d", workers), eo, report.sql,
          opts.persistence_dir + StringPrintf("/w%d", workers)));
    }
  }
  if (opts.fault_rate > 0.0) {
    // Crash/recovery equivalence: the same query under an injected-fault
    // schedule, with retry + checkpoint/restore recovery, must match the
    // fault-free baseline. Serial exercises the executor-level step sites;
    // MPP width 8 adds the exchange and dispatch sites.
    for (int workers : {1, 8}) {
      EngineOptions eo = BaseOptions(opts);
      eo.num_workers = workers;
      if (workers > 1) eo.mpp_min_rows_per_task = 1;
      eo.fault_injection.enabled = true;
      eo.fault_injection.seed =
          opts.fault_seed * 2 + static_cast<uint64_t>(workers);
      // Serial applies fault_rate to the executor's per-step sites only.
      // At width 8 the same rate would hit every per-task dispatch of
      // every parallel operator (8+ hits per op per loop iteration), so a
      // long generated loop sees hundreds of hits per checkpoint segment
      // and P(segment completes) ~ (1-rate)^hits collapses — bounded
      // restore recovery then livelocks by construction, not because
      // recovery is wrong. Normalize the per-task rate so per-segment
      // fault mass stays comparable to the serial schedule (same caveat
      // as the width-8 sweep in tests/fault_recovery_test.cc).
      eo.fault_injection.rate =
          workers > 1 ? opts.fault_rate / 10 : opts.fault_rate;
      eo.fault_injection.worker_lost_fraction = opts.worker_lost_fraction;
      eo.fault_tolerance.enable_recovery = true;
      eo.fault_tolerance.max_restores = 100000;
      report.outcomes.push_back(RunSqlOracle(
          c, workers == 1 ? "faults-serial" : "faults-mpp-8", eo,
          report.sql));
    }
  }
  if (HasProcedureLowering(c.query)) {
    report.outcomes.push_back(RunProcedureOracle(c, opts));
  }
  std::vector<std::vector<Value>> reference_rows;
  bool have_reference = c.query.family == QueryFamily::kCanonicalPR ||
                        c.query.family == QueryFamily::kCanonicalSSSP ||
                        c.query.family == QueryFamily::kCanonicalFF;
  if (have_reference) {
    report.outcomes.push_back(RunReferenceOracle(c, &reference_rows));
  }

  // --- classify and diff ----------------------------------------------------
  const OracleOutcome& baseline = report.outcomes[0];
  for (const OracleOutcome& o : report.outcomes) {
    if (o.status.code() == StatusCode::kInternal) {
      report.ok = false;
      report.failure =
          "[" + o.name + "] internal error: " + o.status.message();
      return report;
    }
  }

  if (!baseline.status.ok()) {
    // User-level rejection: fine, but every oracle must reject it too.
    for (const OracleOutcome& o : report.outcomes) {
      if (o.status.ok()) {
        report.ok = false;
        report.failure = "status mismatch: baseline rejected (" +
                         baseline.status.ToString() + ") but [" + o.name +
                         "] succeeded";
        return report;
      }
    }
    return report;
  }

  std::vector<std::vector<Value>> expected = TableRows(*baseline.table);
  for (size_t i = 1; i < report.outcomes.size(); ++i) {
    const OracleOutcome& o = report.outcomes[i];
    if (!o.status.ok()) {
      report.ok = false;
      report.failure = "status mismatch: baseline succeeded but [" + o.name +
                       "] failed: " + o.status.ToString();
      return report;
    }
    const std::vector<std::vector<Value>>& actual =
        (have_reference && o.name == "reference") ? reference_rows
                                                  : TableRows(*o.table);
    std::string diff = DiffRowSets(expected, actual, opts.eps);
    if (!diff.empty()) {
      report.ok = false;
      report.failure = "[baseline] vs [" + o.name + "]: " + diff;
      return report;
    }
  }

  // Work-accounting equivalence: oracles that run the identical program
  // serially (only the execution engine or chunk boundaries differ) must
  // also agree on the iteration-semantic counters — same loop trips, same
  // delta sizes, same rows surviving the fused vs. legacy DeltaRestrict.
  // Parallel oracles are excluded: reordered floating-point accumulation
  // can legitimately shift convergence by an iteration.
  auto delta_counters = [](const ExecStats& s) {
    return std::array<int64_t, 5>{s.loop_iterations, s.renames,
                                  s.merge_updates, s.delta_rows,
                                  s.delta_probe_rows};
  };
  for (const OracleOutcome& o : report.outcomes) {
    bool serial_same_plan =
        o.name == "no-vectorized_exec" ||
        (o.name.rfind("morsel-", 0) == 0 &&
         o.name.find("-w") == std::string::npos);
    if (!serial_same_plan || !o.status.ok()) continue;
    if (delta_counters(o.stats) != delta_counters(baseline.stats)) {
      report.ok = false;
      report.failure = StringPrintf(
          "[baseline] vs [%s]: delta-stats mismatch "
          "(iters/renames/merges/delta/probe %lld/%lld/%lld/%lld/%lld vs "
          "%lld/%lld/%lld/%lld/%lld)",
          o.name.c_str(),
          static_cast<long long>(baseline.stats.loop_iterations),
          static_cast<long long>(baseline.stats.renames),
          static_cast<long long>(baseline.stats.merge_updates),
          static_cast<long long>(baseline.stats.delta_rows),
          static_cast<long long>(baseline.stats.delta_probe_rows),
          static_cast<long long>(o.stats.loop_iterations),
          static_cast<long long>(o.stats.renames),
          static_cast<long long>(o.stats.merge_updates),
          static_cast<long long>(o.stats.delta_rows),
          static_cast<long long>(o.stats.delta_probe_rows));
      return report;
    }
  }
  return report;
}

DiffReport RunConcurrentSessions(const FuzzCase& c, int sessions,
                                 const DifferentialOptions& opts) {
  DiffReport report;
  report.sql = RenderQuery(c.query);
  sessions = std::max(1, sessions);
  constexpr int kReps = 2;

  Database db(BaseOptions(opts));
  {
    OracleOutcome load;
    load.name = "load";
    load.status = LoadCaseData(&db, c);
    if (!load.status.ok()) {
      // No data, nothing to race on; a load failure is its own outcome so
      // Describe() shows why the case was skipped.
      report.outcomes.push_back(std::move(load));
      return report;
    }
  }

  // Serial replay on the default session is the oracle.
  OracleOutcome serial;
  serial.name = "serial-replay";
  {
    Result<QueryResult> r = db.Execute(report.sql);
    serial.status = r.status();
    if (r.ok()) serial.table = r->table;
  }
  report.outcomes.push_back(serial);

  // Concurrent runs: N sessions, each repeating the query, all racing on
  // the same Database (shared catalog versions, shared scheduler, shared
  // worker pool, session-scoped temp names).
  server::SessionManager mgr(&db);
  std::vector<OracleOutcome> concurrent(
      static_cast<size_t>(sessions) * kReps);
  std::vector<std::thread> threads;
  threads.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      std::shared_ptr<server::Session> session = mgr.CreateSession();
      for (int rep = 0; rep < kReps; ++rep) {
        OracleOutcome& out = concurrent[static_cast<size_t>(s) * kReps + rep];
        out.name = StringPrintf("session-%d-rep-%d", s, rep);
        Result<QueryResult> r = session->Execute(report.sql);
        out.status = r.status();
        if (r.ok()) out.table = r->table;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (OracleOutcome& o : concurrent) {
    report.outcomes.push_back(std::move(o));
  }

  // Classify exactly like the oracle matrix: kInternal anywhere is an
  // engine bug; rejections must be unanimous; accepted rows must match the
  // serial replay as multisets.
  for (const OracleOutcome& o : report.outcomes) {
    if (o.status.code() == StatusCode::kInternal) {
      report.ok = false;
      report.failure =
          "[" + o.name + "] internal error: " + o.status.message();
      return report;
    }
  }
  if (!serial.status.ok()) {
    for (const OracleOutcome& o : report.outcomes) {
      if (o.status.ok()) {
        report.ok = false;
        report.failure = "status mismatch: serial replay rejected (" +
                         serial.status.ToString() + ") but [" + o.name +
                         "] succeeded";
        return report;
      }
    }
    return report;
  }
  std::vector<std::vector<Value>> expected = TableRows(*serial.table);
  for (size_t i = 1; i < report.outcomes.size(); ++i) {
    const OracleOutcome& o = report.outcomes[i];
    if (!o.status.ok()) {
      report.ok = false;
      report.failure = "status mismatch: serial replay succeeded but [" +
                       o.name + "] failed: " + o.status.ToString();
      return report;
    }
    std::string diff = DiffRowSets(expected, TableRows(*o.table), opts.eps);
    if (!diff.empty()) {
      report.ok = false;
      report.failure = "[serial-replay] vs [" + o.name + "]: " + diff;
      return report;
    }
  }
  return report;
}

DiffReport RunIvmDifferential(const FuzzCase& c,
                              const DifferentialOptions& opts) {
  DiffReport report;

  // The view panel pins one view per maintenance-plan shape, so every
  // mutation exercises the linear delta path, the join delta path (deltas
  // arriving from either input), the per-group aggregate fold (whose MIN
  // escalates to a full refresh when a delete retracts the current
  // minimum), and the recompute-on-read fallback.
  struct ViewDef {
    const char* name;
    const char* body;
  };
  static const ViewDef kViews[] = {
      {"ivm_filter",
       "SELECT src, dst, weight FROM edges WHERE MOD(src, 2) = 0"},
      {"ivm_join",
       "SELECT e.src, e.dst, vs.status FROM edges AS e "
       "JOIN vertexstatus AS vs ON vs.node = e.dst"},
      {"ivm_agg",
       "SELECT src, COUNT(*) AS c, SUM(weight) AS s, MIN(weight) AS mn "
       "FROM edges GROUP BY src"},
      {"ivm_distinct", "SELECT DISTINCT dst FROM edges"},
  };

  EngineOptions eo = BaseOptions(opts);
  if (opts.fault_rate > 0.0) {
    // Same serial fault schedule as the faults oracle: maintenance queries
    // run under injected faults with recovery on, and must neither leak a
    // failure into the mutating statement nor publish a wrong view version.
    eo.fault_injection.enabled = true;
    eo.fault_injection.seed = opts.fault_seed;
    eo.fault_injection.rate = opts.fault_rate;
    eo.fault_injection.worker_lost_fraction = opts.worker_lost_fraction;
    eo.fault_tolerance.enable_recovery = true;
    eo.fault_tolerance.max_restores = 100000;
  }
  Database db(eo);

  // report.sql accumulates the statement history, so a failing case prints
  // the exact replayable script next to the seed.
  auto fail = [&](const std::string& what) {
    report.ok = false;
    report.failure = what;
    return report;
  };
  // Summed ivm_* counters across every statement, reported as a final
  // "ivm-totals" outcome: a sweep where deltas_applied stays 0 would mean
  // the incremental paths never ran and the oracle is vacuous.
  ExecStats totals;
  auto run = [&](SessionState* session,
                 const std::string& sql) -> Result<QueryResult> {
    Result<QueryResult> r = session == nullptr
                                ? db.Execute(sql)
                                : db.ExecuteForSession(session, sql);
    if (r.ok()) {
      totals.ivm_deltas_applied += r->stats.ivm_deltas_applied;
      totals.ivm_rows_maintained += r->stats.ivm_rows_maintained;
      totals.ivm_full_refreshes += r->stats.ivm_full_refreshes;
      totals.ivm_fallbacks += r->stats.ivm_fallbacks;
    }
    if (!r.ok()) {
      // Every statement in this mode is canonical and must be accepted; a
      // failure (kInternal or otherwise) fails the case, so record it as
      // an outcome for Describe().
      OracleOutcome o;
      o.name = sql.size() > 60 ? sql.substr(0, 57) + "..." : sql;
      o.status = r.status();
      report.outcomes.push_back(std::move(o));
    }
    return r;
  };

  {
    Status load = LoadCaseData(&db, c);
    if (!load.ok()) return fail("load failed: " + load.ToString());
  }
  for (const ViewDef& v : kViews) {
    std::string sql =
        std::string("CREATE MATERIALIZED VIEW ") + v.name + " AS " + v.body;
    report.sql += sql + ";\n";
    Result<QueryResult> r = run(nullptr, sql);
    if (!r.ok()) {
      return fail("view creation failed: " + r.status().ToString());
    }
  }

  // One reader session per MPP width; reads are serial, so they share the
  // engine but never race (width >1 forces real task partitioning).
  const int kWidths[] = {1, 2, 8};
  std::vector<SessionState> readers;
  readers.reserve(3);
  for (int w : kWidths) {
    EngineOptions ro = eo;
    ro.num_workers = w;
    if (w > 1) ro.mpp_min_rows_per_task = 1;
    readers.emplace_back(ro);
    readers.back().temp_scope = StringPrintf("ivmw%d:", w);
  }

  FuzzRng rng(c.case_seed * 0x9e3779b97f4a7c15ULL + 0x1d3a5f7b);
  const int64_t n = std::max<int64_t>(2, c.graph.num_nodes);
  const int kSteps = 8;
  for (int step = 0; step < kSteps; ++step) {
    // Occasionally pin the delta budget to 1 so the capped path (forced
    // full refresh instead of incremental fold) runs under the oracle too.
    const bool clamp = rng.Chance(20);
    const int64_t saved_cap = db.options().ivm_max_delta_rows;
    if (clamp) db.options().ivm_max_delta_rows = 1;

    std::vector<std::string> stmts;
    const int roll = static_cast<int>(rng.Range(0, 99));
    if (roll < 30) {
      std::string sql = "INSERT INTO edges VALUES ";
      const int64_t rows = rng.Range(1, 3);
      for (int64_t r = 0; r < rows; ++r) {
        if (r > 0) sql += ", ";
        sql += StringPrintf("(%lld, %lld, %lld.5)",
                            static_cast<long long>(rng.Range(1, n)),
                            static_cast<long long>(rng.Range(1, n)),
                            static_cast<long long>(rng.Range(1, 9)));
      }
      stmts.push_back(sql);
    } else if (roll < 50) {
      stmts.push_back(StringPrintf(
          "UPDATE edges SET weight = weight + 1.5 WHERE src = %lld",
          static_cast<long long>(rng.Range(1, n))));
    } else if (roll < 65) {
      // Deleting a whole source's edges retracts entire groups and often
      // the group MIN, driving the aggregate view's escalation path.
      stmts.push_back(
          StringPrintf("DELETE FROM edges WHERE src = %lld",
                       static_cast<long long>(rng.Range(1, n))));
    } else if (roll < 75) {
      stmts.push_back(StringPrintf(
          "UPDATE vertexstatus SET status = 1 - status WHERE MOD(node, 5) "
          "= %lld",
          static_cast<long long>(rng.Range(0, 4))));
    } else if (roll < 85) {
      stmts.push_back(std::string("REFRESH MATERIALIZED VIEW ") +
                      kViews[rng.Range(0, 3)].name);
    } else {
      // Rolled-back work must leave every view exactly where it was (the
      // registry marks views stale and recomputes on the next read).
      stmts.push_back("BEGIN");
      stmts.push_back(StringPrintf(
          "INSERT INTO edges VALUES (%lld, %lld, 2.5)",
          static_cast<long long>(rng.Range(1, n)),
          static_cast<long long>(rng.Range(1, n))));
      stmts.push_back("ROLLBACK");
    }
    for (const std::string& sql : stmts) {
      report.sql += sql + ";\n";
      Result<QueryResult> r = run(nullptr, sql);
      if (!r.ok()) {
        db.options().ivm_max_delta_rows = saved_cap;
        return fail(StringPrintf("step %d: mutation failed: %s", step,
                                 r.status().ToString().c_str()));
      }
    }
    db.options().ivm_max_delta_rows = saved_cap;

    // Oracle: every view, at every width, equals its defining query
    // re-executed from scratch on the current data.
    for (const ViewDef& v : kViews) {
      Result<QueryResult> expect = run(nullptr, v.body);
      if (!expect.ok()) {
        return fail(StringPrintf("step %d: recompute of %s failed: %s",
                                 step, v.name,
                                 expect.status().ToString().c_str()));
      }
      std::vector<std::vector<Value>> expected = TableRows(*expect->table);
      for (size_t wi = 0; wi < readers.size(); ++wi) {
        std::string read_sql = std::string("SELECT * FROM ") + v.name;
        Result<QueryResult> got = run(&readers[wi], read_sql);
        if (!got.ok()) {
          return fail(StringPrintf(
              "step %d: read of %s at width %d failed: %s", step, v.name,
              kWidths[wi], got.status().ToString().c_str()));
        }
        std::string diff =
            DiffRowSets(expected, TableRows(*got->table), opts.eps);
        if (!diff.empty()) {
          return fail(StringPrintf(
              "step %d: view %s at width %d diverged from its defining "
              "query: %s",
              step, v.name, kWidths[wi], diff.c_str()));
        }
      }
    }
  }
  OracleOutcome summary;
  summary.name = "ivm-totals";
  summary.status = Status::OK();
  summary.stats = totals;
  report.outcomes.push_back(std::move(summary));
  return report;
}

}  // namespace fuzz
}  // namespace dbspinner
