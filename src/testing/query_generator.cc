#include "testing/query_generator.h"

#include <cmath>

#include "common/string_util.h"
#include "engine/workloads.h"
#include "graph/reference_algorithms.h"
#include "parser/parser.h"
#include "testing/fuzz_rng.h"

namespace dbspinner {
namespace fuzz {

namespace {

// ---------------------------------------------------------------------------
// Random scalar expressions. Everything here is chosen to keep the
// differential oracles sound:
//   - no division (divide-by-zero produces engine errors that would drown
//     the signal) and no unbounded products (int64 overflow is UB);
//   - when `integer_only`, no DOUBLE column/constant appears, so ORDER BY +
//     LIMIT cuts are tie-exact across plans (double sums may reorder under
//     MPP and flip ties at the cut).
// ---------------------------------------------------------------------------

struct ExprGen {
  FuzzRng* rng;
  std::vector<std::string> int_cols;   ///< BIGINT column references
  std::vector<std::string> num_cols;   ///< DOUBLE column references
  bool integer_only = false;
  bool allow_case = false;

  std::string IntConst() {
    return std::to_string(rng->Range(-9, 9));
  }

  std::string NumConst() {
    // Two-decimal constants render identically everywhere.
    return StringPrintf("%.2f", 0.05 * static_cast<double>(rng->Range(1, 60)));
  }

  std::string Cmp() {
    static const std::vector<std::string> kOps = {"<", "<=", ">", ">=",
                                                  "=",  "!="};
    return rng->Pick(kOps);
  }

  std::string Predicate(int depth) {
    if (depth > 0 && rng->Chance(35)) {
      const char* conj = rng->Chance(50) ? " AND " : " OR ";
      return "(" + Predicate(depth - 1) + conj + Predicate(depth - 1) + ")";
    }
    return Expr(0) + " " + Cmp() + " " + Expr(0);
  }

  std::string Expr(int depth) {
    int roll = static_cast<int>(rng->Range(0, 99));
    if (depth > 0 && roll < 30) {
      static const std::vector<std::string> kOps = {" + ", " - ", " * "};
      return "(" + Expr(depth - 1) + rng->Pick(kOps) + Expr(depth - 1) + ")";
    }
    if (depth > 0 && roll < 40) {
      return "ABS(" + Expr(depth - 1) + ")";
    }
    if (depth > 0 && roll < 48) {
      const char* fn = rng->Chance(50) ? "LEAST" : "GREATEST";
      return std::string(fn) + "(" + Expr(depth - 1) + ", " + Expr(depth - 1) +
             ")";
    }
    if (depth > 0 && roll < 55) {
      return "MOD(ABS(" + Expr(depth - 1) + "), " +
             std::to_string(rng->Range(2, 7)) + ")";
    }
    if (depth > 0 && allow_case && roll < 65) {
      return "CASE WHEN " + Predicate(0) + " THEN " + Expr(depth - 1) +
             " ELSE " + Expr(depth - 1) + " END";
    }
    if (roll < 80 || (int_cols.empty() && num_cols.empty())) {
      if (!integer_only && rng->Chance(25)) return NumConst();
      return IntConst();
    }
    if (!integer_only && !num_cols.empty() && rng->Chance(30)) {
      return rng->Pick(num_cols);
    }
    return int_cols.empty() ? IntConst() : rng->Pick(int_cols);
  }
};

// Picks an alias the parser will accept as a bare identifier.
std::string SafeAlias(FuzzRng* rng, int ordinal) {
  static const std::vector<std::string> kNames = {
      "c", "col", "x", "val", "out", "result"};
  std::string name = rng->Pick(kNames) + std::to_string(ordinal);
  // The generator never invents reserved words, but guard anyway: the
  // parser hook is the source of truth for what is legal.
  if (IsReservedKeyword(name)) name = "q_" + name;
  return name;
}

// ---------------------------------------------------------------------------
// Family renderers
// ---------------------------------------------------------------------------

std::string RenderScalarSelect(const QuerySpec& spec) {
  FuzzRng rng(spec.expr_seed);
  ExprGen gen;
  gen.rng = &rng;
  gen.integer_only = spec.use_order_limit;
  gen.allow_case = spec.use_case;
  gen.int_cols = {"e.src", "e.dst"};
  gen.num_cols = {"e.weight"};
  if (spec.join_vertexstatus) {
    gen.int_cols.push_back("vs.status");
  }
  if (spec.left_join) {
    gen.int_cols.push_back("e2.dst");
  }

  std::string from = "FROM edges AS e";
  if (spec.join_vertexstatus) {
    from += "\n  JOIN vertexstatus AS vs ON vs.node = e.dst";
  }
  if (spec.left_join) {
    from += "\n  LEFT JOIN edges AS e2 ON e.dst = e2.src";
  }

  std::string select;
  size_t num_cols;
  if (spec.use_group_by) {
    // Group by plain column refs; project the keys plus aggregates.
    std::vector<std::string> keys = {"e.src"};
    if (rng.Chance(40)) keys.push_back("e.dst");
    std::vector<std::string> items;
    for (size_t i = 0; i < keys.size(); ++i) {
      items.push_back(keys[i] + " AS " + SafeAlias(&rng, static_cast<int>(i)));
    }
    items.push_back("COUNT(*) AS cnt");
    if (!spec.use_order_limit && rng.Chance(60)) {
      static const std::vector<std::string> kAggs = {"SUM", "MIN", "MAX",
                                                     "AVG"};
      items.push_back(rng.Pick(kAggs) + "(" + gen.Expr(1) + ") AS agg0");
    }
    select = "SELECT ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) select += ", ";
      select += items[i];
    }
    select += "\n" + from;
    if (spec.use_where) select += "\nWHERE " + gen.Predicate(1);
    select += "\nGROUP BY ";
    for (size_t i = 0; i < keys.size(); ++i) {
      if (i) select += ", ";
      select += keys[i];
    }
    if (spec.use_having) {
      select += "\nHAVING COUNT(*) " + gen.Cmp() + " " +
                std::to_string(rng.Range(0, 4));
    }
    num_cols = items.size();
  } else {
    size_t width = static_cast<size_t>(rng.Range(1, 3));
    select = "SELECT ";
    for (size_t i = 0; i < width; ++i) {
      if (i) select += ", ";
      select += gen.Expr(2) + " AS " + SafeAlias(&rng, static_cast<int>(i));
    }
    select += "\n" + from;
    if (spec.use_where) select += "\nWHERE " + gen.Predicate(1);
    num_cols = width;
  }

  std::string sql = select;
  if (spec.use_union) {
    // Second arm over bare edges with a matching column count.
    ExprGen arm_gen;
    arm_gen.rng = &rng;
    arm_gen.integer_only = gen.integer_only;
    arm_gen.allow_case = gen.allow_case;
    arm_gen.int_cols = {"src", "dst"};
    arm_gen.num_cols = {"weight"};
    std::string arm = "SELECT ";
    for (size_t i = 0; i < num_cols; ++i) {
      if (i) arm += ", ";
      arm += arm_gen.Expr(1);
    }
    arm += " FROM edges";
    sql += spec.union_all ? "\nUNION ALL\n" : "\nUNION\n";
    sql += arm;
  }
  if (spec.use_order_limit) {
    sql += "\nORDER BY ";
    for (size_t i = 0; i < num_cols; ++i) {
      if (i) sql += ", ";
      sql += std::to_string(i + 1);
    }
    sql += "\nLIMIT " + std::to_string(spec.limit);
  }
  return sql;
}

// Constants derived deterministically from the expr seed for the iterative
// families. Shared between RenderQuery and RenderProcedure so the two
// lowerings execute the same arithmetic.
struct ChainParams {
  double factor;     ///< per-iteration growth
  double cap;        ///< LEAST cap (delta termination must converge)
  int val_agg;       ///< 0: COUNT(dst), 1: MAX(dst), 2: COUNT(*)
  int aux_agg;       ///< 0: MIN(dst), 1: MAX(dst)
};

ChainParams MakeChainParams(const QuerySpec& spec) {
  FuzzRng rng(spec.expr_seed);
  ChainParams p;
  p.factor = 1.0 + 0.01 * static_cast<double>(rng.Range(5, 45));
  p.cap = static_cast<double>(rng.Range(20, 80));
  p.val_agg = static_cast<int>(rng.Range(0, 2));
  p.aux_agg = static_cast<int>(rng.Range(0, 1));
  return p;
}

std::string ChainR0(const ChainParams& p) {
  const char* val = p.val_agg == 0 ? "COUNT(dst)"
                    : p.val_agg == 1 ? "MAX(dst)"
                                     : "COUNT(*)";
  const char* aux = p.aux_agg == 0 ? "MIN(dst)" : "MAX(dst)";
  return StringPrintf(
      "  SELECT src AS node, CAST(%s AS DOUBLE) AS val,\n"
      "         CAST(%s AS DOUBLE) AS aux\n"
      "  FROM edges GROUP BY src\n",
      val, aux);
}

std::string ChainRi(const QuerySpec& spec, const ChainParams& p,
                    const std::string& self) {
  if (spec.until == UntilKind::kDeltaLess) {
    return StringPrintf(
        "  SELECT node, LEAST(ROUND(CAST(val * %.2f AS NUMERIC), 5), %.1f),\n"
        "         aux\n"
        "  FROM %s\n",
        p.factor, p.cap, self.c_str());
  }
  return StringPrintf(
      "  SELECT node, ROUND(CAST(val * %.2f AS NUMERIC), 5), aux\n"
      "  FROM %s\n",
      p.factor, self.c_str());
}

std::string ChainQf(const QuerySpec& spec, const std::string& self) {
  std::string where;
  if (spec.qf_filter) {
    where = StringPrintf("\nWHERE MOD(node, %lld) = 0",
                         static_cast<long long>(spec.filter_mod));
  }
  if (spec.qf_aggregate) {
    return "SELECT COUNT(*), MIN(val), MAX(aux) FROM " + self + where;
  }
  return "SELECT node, val, aux FROM " + self + where;
}

std::string RenderUntil(const QuerySpec& spec) {
  switch (spec.until) {
    case UntilKind::kIterations:
      return StringPrintf("UNTIL %d ITERATIONS", spec.iterations);
    case UntilKind::kUpdates:
      return StringPrintf("UNTIL %d UPDATES", spec.iterations);
    case UntilKind::kDeltaLess:
      return "UNTIL DELTA < 1";
  }
  return "UNTIL 1 ITERATIONS";
}

std::string RenderIterativeChain(const QuerySpec& spec) {
  ChainParams p = MakeChainParams(spec);
  return "WITH ITERATIVE chain (node, val, aux)\nAS (\n" + ChainR0(p) +
         "ITERATE\n" + ChainRi(spec, p, "chain") + RenderUntil(spec) +
         " )\n" + ChainQf(spec, "chain");
}

struct JoinParams {
  double damping;
  double init_delta;
};

JoinParams MakeJoinParams(const QuerySpec& spec) {
  FuzzRng rng(spec.expr_seed);
  JoinParams p;
  p.damping = 0.05 * static_cast<double>(rng.Range(10, 19));  // 0.50..0.95
  p.init_delta = 0.05 * static_cast<double>(rng.Range(2, 6));
  return p;
}

std::string JoinR0(const JoinParams& p) {
  return StringPrintf(
      "  SELECT src, 0.0, %.2f\n"
      "  FROM (SELECT src FROM edges\n"
      "        UNION SELECT dst FROM edges)\n",
      p.init_delta);
}

std::string JoinRi(const QuerySpec& spec, const JoinParams& p,
                   const std::string& self) {
  std::string sql = StringPrintf(
      "  SELECT %s.node,\n"
      "         %s.rank + %s.delta,\n"
      "         %.2f * SUM(inrank.delta * inedges.weight)\n"
      "  FROM %s\n"
      "    LEFT JOIN edges AS inedges\n"
      "      ON %s.node = inedges.dst\n",
      self.c_str(), self.c_str(), self.c_str(), p.damping, self.c_str(),
      self.c_str());
  if (spec.vs_join) {
    sql +=
        "    JOIN vertexstatus AS avail\n"
        "      ON avail.node = inedges.dst\n";
  }
  sql += StringPrintf(
      "    LEFT JOIN %s AS inrank\n"
      "      ON inrank.node = inedges.src\n",
      self.c_str());
  if (spec.vs_join) {
    sql += "  WHERE avail.status != 0\n";
  }
  sql += StringPrintf("  GROUP BY %s.node, %s.rank + %s.delta\n",
                      self.c_str(), self.c_str(), self.c_str());
  return sql;
}

std::string JoinQf(const QuerySpec& spec, const std::string& self) {
  std::string where;
  if (spec.qf_filter) {
    where = StringPrintf("\nWHERE MOD(node, %lld) = 0",
                         static_cast<long long>(spec.filter_mod));
  }
  if (spec.qf_aggregate) {
    return "SELECT COUNT(*), MAX(delta) FROM " + self + where;
  }
  return "SELECT node, rank FROM " + self + where;
}

std::string RenderIterativeJoin(const QuerySpec& spec) {
  JoinParams p = MakeJoinParams(spec);
  return "WITH ITERATIVE pages (node, rank, delta)\nAS (\n" + JoinR0(p) +
         "ITERATE\n" + JoinRi(spec, p, "pages") + RenderUntil(spec) + " )\n" +
         JoinQf(spec, "pages");
}

std::string MergeR0(const QuerySpec& spec) {
  return StringPrintf(
      "  SELECT src, 9999999.0, CASE WHEN src = %lld\n"
      "         THEN 0.0 ELSE 9999999.0 END\n"
      "  FROM (SELECT src FROM edges\n"
      "        UNION SELECT dst FROM edges)\n",
      static_cast<long long>(spec.source_node));
}

std::string MergeRi(const QuerySpec& spec, const std::string& self) {
  std::string sql = StringPrintf(
      "  SELECT %s.node,\n"
      "         LEAST(%s.distance, %s.delta),\n"
      "         COALESCE(MIN(indist.delta\n"
      "                      + inedges.weight), 9999999.0)\n"
      "  FROM %s\n"
      "    LEFT JOIN edges AS inedges\n"
      "      ON %s.node = inedges.dst\n",
      self.c_str(), self.c_str(), self.c_str(), self.c_str(), self.c_str());
  if (spec.vs_join) {
    sql +=
        "    JOIN vertexstatus AS avail\n"
        "      ON avail.node = inedges.dst\n";
  }
  sql += StringPrintf(
      "    LEFT JOIN %s AS indist\n"
      "      ON indist.node = inedges.src\n"
      "  WHERE indist.delta != 9999999\n",
      self.c_str());
  if (spec.vs_join) {
    sql += "    AND avail.status != 0\n";
  }
  sql += StringPrintf("  GROUP BY %s.node, LEAST(%s.distance, %s.delta)\n",
                      self.c_str(), self.c_str(), self.c_str());
  return sql;
}

std::string MergeQf(const QuerySpec& spec, const std::string& self) {
  if (spec.qf_aggregate) {
    return "SELECT COUNT(*), MIN(distance) FROM " + self;
  }
  if (spec.qf_filter) {
    return StringPrintf("SELECT distance FROM %s WHERE node = %lld",
                        self.c_str(),
                        static_cast<long long>(spec.target_node));
  }
  return "SELECT node, distance FROM " + self;
}

std::string RenderIterativeMerge(const QuerySpec& spec) {
  return "WITH ITERATIVE dist (node, distance, delta)\nAS (\n" +
         MergeR0(spec) + "ITERATE\n" + MergeRi(spec, "dist") +
         RenderUntil(spec) + " )\n" + MergeQf(spec, "dist");
}

std::string RenderRecursive(const QuerySpec& spec) {
  const char* setop = spec.union_distinct ? "UNION" : "UNION ALL";
  std::string sql = StringPrintf(
      "WITH RECURSIVE reach (n, d) AS (\n"
      "  SELECT %lld, 0\n"
      "%s\n"
      "  SELECT edges.dst, reach.d + 1\n"
      "  FROM reach JOIN edges ON reach.n = edges.src\n"
      "  WHERE reach.d < %lld)\n",
      static_cast<long long>(spec.start_node), setop,
      static_cast<long long>(spec.depth_bound));
  if (spec.qf_aggregate) {
    sql += "SELECT COUNT(*), MAX(d) FROM reach";
  } else {
    sql += "SELECT n, COUNT(*) FROM reach GROUP BY n";
  }
  return sql;
}

}  // namespace

const char* FamilyName(QueryFamily family) {
  switch (family) {
    case QueryFamily::kScalarSelect:    return "scalar-select";
    case QueryFamily::kIterativeChain:  return "iterative-chain";
    case QueryFamily::kIterativeJoin:   return "iterative-join";
    case QueryFamily::kIterativeMerge:  return "iterative-merge";
    case QueryFamily::kRecursive:       return "recursive";
    case QueryFamily::kCanonicalPR:     return "canonical-pr";
    case QueryFamily::kCanonicalSSSP:   return "canonical-sssp";
    case QueryFamily::kCanonicalFF:     return "canonical-ff";
  }
  return "unknown";
}

std::string FuzzCase::Label() const {
  const char* kind = graph.kind == graph::GraphKind::kPreferentialAttachment
                         ? "pa"
                         : (graph.kind == graph::GraphKind::kUniform ? "uni"
                                                                     : "grid");
  return StringPrintf("%s %s n=%lld e=%lld gseed=%llu iters=%d eseed=%llu",
                      FamilyName(query.family), kind,
                      static_cast<long long>(graph.num_nodes),
                      static_cast<long long>(graph.num_edges),
                      static_cast<unsigned long long>(graph.seed),
                      query.iterations,
                      static_cast<unsigned long long>(query.expr_seed));
}

std::string RenderQuery(const QuerySpec& spec) {
  switch (spec.family) {
    case QueryFamily::kScalarSelect:
      return RenderScalarSelect(spec);
    case QueryFamily::kIterativeChain:
      return RenderIterativeChain(spec);
    case QueryFamily::kIterativeJoin:
      return RenderIterativeJoin(spec);
    case QueryFamily::kIterativeMerge:
      return RenderIterativeMerge(spec);
    case QueryFamily::kRecursive:
      return RenderRecursive(spec);
    case QueryFamily::kCanonicalPR:
      return spec.vs_join ? workloads::PRVSQuery(spec.iterations)
                          : workloads::PRQuery(spec.iterations);
    case QueryFamily::kCanonicalSSSP:
      return spec.vs_join
                 ? workloads::SSSPVSQuery(spec.iterations, spec.source_node,
                                          spec.target_node)
                 : workloads::SSSPQuery(spec.iterations, spec.source_node,
                                        spec.target_node);
    case QueryFamily::kCanonicalFF:
      // A huge LIMIT keeps the ORDER BY ... LIMIT cut away from double ties.
      return workloads::FFQuery(spec.iterations, spec.filter_mod, 1000000);
  }
  return "";
}

bool HasProcedureLowering(const QuerySpec& spec) {
  switch (spec.family) {
    case QueryFamily::kIterativeChain:
    case QueryFamily::kIterativeJoin:
    case QueryFamily::kIterativeMerge:
      // Data/delta termination has no fixed-trip procedural equivalent.
      // (The canonical families are excluded because the workloads'
      // procedures end with DROP statements, so Procedure::Run does not
      // return the Qf result; the generated families cover both the rename
      // and merge lowering paths anyway.)
      return spec.until == UntilKind::kIterations;
    default:
      return false;
  }
}

Procedure RenderProcedure(const QuerySpec& spec) {
  // Generic lowering of the generated iterative families: temp tables, one
  // statement at a time. The self-reference in Ri resolves to the main temp
  // table; merge-path bodies (Ri has WHERE) become UPDATE ... FROM, which
  // matches MergeUpdate semantics exactly (update matching keys, keep the
  // rest); rename-path bodies become a full DELETE + INSERT replacement.
  std::string r0, ri, qf;
  std::vector<std::string> cols;
  bool merge_path = false;
  switch (spec.family) {
    case QueryFamily::kIterativeChain: {
      ChainParams p = MakeChainParams(spec);
      r0 = ChainR0(p);
      ri = ChainRi(spec, p, "fz_main");
      qf = ChainQf(spec, "fz_main");
      cols = {"node", "val", "aux"};
      break;
    }
    case QueryFamily::kIterativeJoin: {
      JoinParams p = MakeJoinParams(spec);
      r0 = JoinR0(p);
      ri = JoinRi(spec, p, "fz_main");
      qf = JoinQf(spec, "fz_main");
      cols = {"node", "rank", "delta"};
      merge_path = spec.vs_join;  // the vertexstatus variant filters Ri
      break;
    }
    case QueryFamily::kIterativeMerge: {
      r0 = MergeR0(spec);
      ri = MergeRi(spec, "fz_main");
      qf = MergeQf(spec, "fz_main");
      cols = {"node", "distance", "delta"};
      merge_path = true;
      break;
    }
    default:
      return Procedure();  // HasProcedureLowering() was false
  }

  Procedure p;
  std::string decl = "(" + cols[0] + " BIGINT, " + cols[1] + " DOUBLE, " +
                     cols[2] + " DOUBLE)";
  p.Add("DROP TABLE IF EXISTS fz_main")
      .Add("DROP TABLE IF EXISTS fz_work")
      .Add("CREATE TABLE fz_main " + decl)
      .Add("CREATE TABLE fz_work " + decl)
      .Add("INSERT INTO fz_main\n" + r0)
      .BeginLoop(spec.iterations)
      .Add("DELETE FROM fz_work")
      .Add("INSERT INTO fz_work\n" + ri);
  if (merge_path) {
    p.Add("UPDATE fz_main\n  SET " + cols[1] + " = fz_work." + cols[1] +
          ", " + cols[2] + " = fz_work." + cols[2] +
          "\n  FROM fz_work\n  WHERE fz_main." + cols[0] + " = fz_work." +
          cols[0]);
  } else {
    p.Add("DELETE FROM fz_main")
        .Add("INSERT INTO fz_main SELECT " + cols[0] + ", " + cols[1] + ", " +
             cols[2] + " FROM fz_work");
  }
  // Qf last: Procedure::Run returns the final statement's result. The temp
  // tables stay behind, but each differential oracle gets a throwaway db.
  p.EndLoop().Add(qf);
  return p;
}

Status LoadCaseData(Database* db, const FuzzCase& c) {
  graph::EdgeList graph = graph::Generate(c.graph);
  return graph::LoadIntoDatabase(db, graph, c.status_fraction, c.status_seed);
}

QuerySpec QueryGenerator::NextSpec(QueryFamily family, uint64_t expr_seed,
                                   int64_t num_nodes) {
  FuzzRng rng(expr_seed);
  QuerySpec spec;
  spec.family = family;
  spec.expr_seed = rng.Fork();
  switch (family) {
    case QueryFamily::kScalarSelect:
      spec.join_vertexstatus = rng.Chance(40);
      spec.left_join = rng.Chance(30);
      spec.use_where = rng.Chance(60);
      spec.use_group_by = rng.Chance(45);
      spec.use_having = spec.use_group_by && rng.Chance(50);
      spec.use_union = rng.Chance(30);
      spec.union_all = rng.Chance(50);
      spec.use_case = rng.Chance(40);
      spec.use_order_limit = rng.Chance(30);
      spec.limit = static_cast<int>(rng.Range(1, 25));
      break;
    case QueryFamily::kIterativeChain: {
      int roll = static_cast<int>(rng.Range(0, 99));
      spec.until = roll < 60   ? UntilKind::kIterations
                   : roll < 80 ? UntilKind::kUpdates
                               : UntilKind::kDeltaLess;
      spec.iterations = static_cast<int>(rng.Range(0, 6));
      if (spec.until == UntilKind::kUpdates) {
        spec.iterations = static_cast<int>(rng.Range(1, 200));
      }
      spec.qf_filter = rng.Chance(50);
      spec.qf_aggregate = rng.Chance(30);
      spec.filter_mod = rng.Range(2, 7);
      break;
    }
    case QueryFamily::kIterativeJoin:
      spec.until = UntilKind::kIterations;
      spec.iterations = static_cast<int>(rng.Range(0, 5));
      spec.vs_join = rng.Chance(50);
      spec.qf_filter = rng.Chance(40);
      spec.qf_aggregate = rng.Chance(30);
      spec.filter_mod = rng.Range(2, 7);
      break;
    case QueryFamily::kIterativeMerge:
      spec.until = rng.Chance(75) ? UntilKind::kIterations
                                  : UntilKind::kUpdates;
      spec.iterations = static_cast<int>(
          spec.until == UntilKind::kUpdates ? rng.Range(1, 100)
                                            : rng.Range(0, 6));
      spec.vs_join = rng.Chance(40);
      spec.qf_filter = rng.Chance(40);
      spec.qf_aggregate = rng.Chance(30);
      spec.source_node = rng.Range(1, num_nodes);
      spec.target_node = rng.Range(1, num_nodes);
      break;
    case QueryFamily::kRecursive:
      spec.union_distinct = rng.Chance(65);
      spec.depth_bound = spec.union_distinct ? rng.Range(1, 8)
                                             : rng.Range(1, 3);
      spec.start_node = rng.Range(1, num_nodes);
      spec.qf_aggregate = rng.Chance(40);
      break;
    case QueryFamily::kCanonicalPR:
      spec.iterations = static_cast<int>(rng.Range(1, 5));
      spec.vs_join = rng.Chance(50);
      break;
    case QueryFamily::kCanonicalSSSP:
      spec.iterations = static_cast<int>(rng.Range(1, 6));
      spec.vs_join = rng.Chance(50);
      spec.source_node = rng.Range(1, num_nodes);
      spec.target_node = rng.Range(1, num_nodes);
      break;
    case QueryFamily::kCanonicalFF:
      spec.iterations = static_cast<int>(rng.Range(1, 5));
      spec.filter_mod = rng.Range(2, 10);
      break;
  }
  return spec;
}

FuzzCase QueryGenerator::NextCase() {
  FuzzCase c;
  c.case_seed = rng_.Fork();
  FuzzRng rng(c.case_seed);
  ++counter_;

  // Graph: small enough that the full oracle matrix stays fast, varied
  // enough to hit empty deltas, hubs, unreachable components and grids.
  int shape = static_cast<int>(rng.Range(0, 9));
  if (shape < 4) {
    c.graph.kind = graph::GraphKind::kPreferentialAttachment;
    c.graph.num_nodes = rng.Range(8, 120);
    c.graph.num_edges = c.graph.num_nodes * rng.Range(1, 5);
  } else if (shape < 8) {
    c.graph.kind = graph::GraphKind::kUniform;
    c.graph.num_nodes = rng.Range(4, 120);
    c.graph.num_edges = c.graph.num_nodes * rng.Range(1, 6);
  } else {
    c.graph.kind = graph::GraphKind::kGrid;
    static const std::vector<int64_t> kSides = {4, 16, 36, 64, 100};
    c.graph.num_nodes = rng.Pick(kSides);
    c.graph.num_edges = 0;
  }
  c.graph.seed = rng.Fork();
  c.status_fraction = 0.5 + 0.05 * static_cast<double>(rng.Range(0, 8));
  c.status_seed = rng.Fork();

  static const std::vector<QueryFamily> kFamilies = {
      QueryFamily::kScalarSelect,   QueryFamily::kScalarSelect,
      QueryFamily::kIterativeChain, QueryFamily::kIterativeChain,
      QueryFamily::kIterativeJoin,  QueryFamily::kIterativeJoin,
      QueryFamily::kIterativeMerge, QueryFamily::kIterativeMerge,
      QueryFamily::kRecursive,      QueryFamily::kCanonicalPR,
      QueryFamily::kCanonicalSSSP,  QueryFamily::kCanonicalFF,
  };
  QueryFamily family = rng.Pick(kFamilies);
  c.query = NextSpec(family, rng.Fork(), c.graph.num_nodes);
  return c;
}

}  // namespace fuzz
}  // namespace dbspinner
