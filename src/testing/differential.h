// Differential executor: runs one fuzz case under a matrix of oracles and
// diffs the results.
//
// Oracles (every one must agree with the baseline):
//   - per-rule:    all optimizations on vs. each OptimizerToggles rule
//                  individually disabled vs. all rules off;
//   - parallelism: MPP thread pool with 2 and 8 workers (task threshold
//                  forced to 1 row so small inputs really partition) vs.
//                  the serial baseline;
//   - lowering:    the iterative-CTE plan vs. the statement-at-a-time
//                  Procedure rendering of the same spec (Fig 11 baseline);
//   - ground truth: canonical workload queries vs. the C++ reference
//                  implementations in graph/reference_algorithms.
//
// Status classification: a query may legitimately fail (user-level rejection
// such as BindError), but then every oracle must reject it too, and no oracle
// may ever return StatusCode::kInternal — an Internal status is an engine
// bug by definition and fails the case on its own.

#pragma once

#include <string>
#include <vector>

#include "exec/physical_plan.h"
#include "testing/query_generator.h"

namespace dbspinner {
namespace fuzz {

/// Result of one oracle run.
struct OracleOutcome {
  std::string name;
  Status status;   ///< ok() implies `table` is the query result
  TablePtr table;
  ExecStats stats;  ///< execution counters (valid when status.ok())
};

struct DifferentialOptions {
  /// Fault injection: sets EngineOptions::dev_break_rename_for_testing on
  /// every rename-enabled oracle. Used to prove the harness catches bugs.
  bool break_rename = false;

  /// Runs the static plan/program verifier (src/verify/) in *enforcing*
  /// mode on every oracle. A diagnostic then surfaces as kInternal, which
  /// the status classifier treats as an engine bug — making the verifier a
  /// fuzzing oracle in its own right.
  bool verify = true;

  /// Small guard so a non-converging generated loop fails fast (and
  /// consistently across oracles) instead of spinning.
  int64_t max_iterations_guard = 4000;

  /// Absolute tolerance for DOUBLE cells (MPP aggregation reorders sums).
  double eps = 1e-6;

  /// Fault-schedule oracle dimension: when fault_rate > 0 two extra oracles
  /// ("faults-serial", "faults-mpp-8") run the query under a deterministic
  /// injected-fault schedule with executor recovery enabled. Recovery must
  /// reproduce the fault-free baseline exactly — any divergence (row diff,
  /// or a fault leaking out as a failure status) fails the case.
  double fault_rate = 0.0;
  uint64_t fault_seed = 1;

  /// Fraction of injected faults that simulate node death (kWorkerLost,
  /// checkpoint-restore path) instead of a transient retryable loss.
  double worker_lost_fraction = 0.0;

  /// Chunk-level oracle dimension: one extra oracle ("morsel-N") per entry
  /// runs the query with EngineOptions::morsel_size = N, so every chunk
  /// boundary placement (including degenerate 1-row morsels) must agree
  /// with the baseline and with the legacy row-at-a-time executor (which
  /// the "no-vectorized_exec" toggle oracle already covers).
  std::vector<size_t> morsel_sizes;

  /// Worker widths crossed with `morsel_sizes` (oracle "morsel-N-wW" for
  /// W > 1; plain "morsel-N" for W == 1). Widths above 1 run each morsel
  /// sweep through the stealing dispatcher with mpp_min_rows_per_task
  /// forced to 1, so morsel-boundary placement is exercised under every
  /// fused-parallel code path, not just serially.
  std::vector<int> morsel_workers = {1};

  /// Disk-backed oracle dimension (fuzz_sql --persistence): when non-empty,
  /// one oracle per width in `persistence_workers` loads the case into a
  /// persistent database under this directory, closes it, reopens it —
  /// recovery replays the manifest + WAL and decompresses every extent —
  /// and runs the query against the recovered tables. Small block and
  /// buffer-pool settings force multi-block extents and clock eviction, so
  /// the whole codec/buffer-manager/recovery stack must reproduce the
  /// in-memory baseline exactly. sync is off: no crash is simulated here
  /// (the durability harness owns kill testing), only format round-trips.
  std::string persistence_dir;
  std::vector<int> persistence_workers = {1, 2, 8};
};

/// Outcome of the whole oracle matrix for one case.
struct DiffReport {
  bool ok = true;
  std::string sql;      ///< rendered query under test
  std::string failure;  ///< first mismatch, human-readable; empty when ok
  std::vector<OracleOutcome> outcomes;

  /// Multi-line description (case label, SQL, per-oracle status).
  std::string Describe(const FuzzCase& c) const;
};

/// Runs `c` under the full oracle matrix.
DiffReport RunDifferential(const FuzzCase& c,
                           const DifferentialOptions& opts = {});

/// Concurrent-session differential mode (fuzz_sql --sessions=N): loads the
/// case once into a shared Database, replays the query serially on the
/// default session (the oracle), then runs it on `sessions` concurrent
/// server sessions, a few repetitions each. Every concurrent run must agree
/// with the serial replay — same accept/reject classification, identical
/// row multisets on success, and no kInternal anywhere. Catches snapshot /
/// registry-scoping / scheduler bugs that single-session sweeps cannot.
DiffReport RunConcurrentSessions(const FuzzCase& c, int sessions,
                                 const DifferentialOptions& opts = {});

/// Incremental-view differential mode (fuzz_sql --ivm): loads the case data
/// into one Database, registers a fixed panel of materialized views covering
/// every maintenance-plan shape (linear filter, linear join, GROUP BY
/// aggregate with a MIN that forces full-refresh escalation on retraction,
/// and a DISTINCT fallback), then replays a deterministic mutation sequence
/// derived from the case seed (INSERT / UPDATE / DELETE / REFRESH /
/// BEGIN-ROLLBACK, occasionally with ivm_max_delta_rows pinned to 1 so the
/// forced-full-refresh path runs too). After every mutation, each view's
/// maintained contents — read at MPP widths 1, 2 and 8 — must equal its
/// defining query re-executed from scratch, and no statement may return
/// kInternal. When opts.fault_rate > 0 the whole schedule runs under
/// injected faults with executor recovery enabled, so maintenance queries
/// must recover without leaking a failure or serving a stale view.
DiffReport RunIvmDifferential(const FuzzCase& c,
                              const DifferentialOptions& opts = {});

/// Compares two row multisets with numeric tolerance. Returns "" when
/// equivalent, else a description of the first difference.
std::string DiffRowSets(const std::vector<std::vector<Value>>& a,
                        const std::vector<std::vector<Value>>& b, double eps);

/// All rows of `t` as Values (helper shared with tests).
std::vector<std::vector<Value>> TableRows(const Table& t);

}  // namespace fuzz
}  // namespace dbspinner
