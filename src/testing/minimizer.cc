#include "testing/minimizer.h"

#include <functional>
#include <vector>

#include "common/string_util.h"

namespace dbspinner {
namespace fuzz {

namespace {

using Mutation = std::function<bool(FuzzCase*)>;  // false = not applicable

// The shrink moves, roughly ordered most-aggressive first so the minimizer
// converges in few differential runs. Each returns false when it would not
// change the case (already minimal in that dimension).
std::vector<Mutation> ShrinkMoves() {
  std::vector<Mutation> moves;
  auto add = [&moves](Mutation m) { moves.push_back(std::move(m)); };

  // Graph shrinks dominate runtime, so try them first.
  add([](FuzzCase* c) {
    if (c->graph.num_nodes <= 2) return false;
    c->graph.num_nodes /= 2;
    if (c->graph.num_nodes < 2) c->graph.num_nodes = 2;
    if (c->graph.kind == graph::GraphKind::kGrid) {
      // Grid graphs want a perfect square.
      int64_t side = 1;
      while ((side + 1) * (side + 1) <= c->graph.num_nodes) ++side;
      c->graph.num_nodes = side * side;
    }
    return true;
  });
  add([](FuzzCase* c) {
    if (c->graph.num_edges <= c->graph.num_nodes) return false;
    c->graph.num_edges /= 2;
    if (c->graph.num_edges < c->graph.num_nodes) {
      c->graph.num_edges = c->graph.num_nodes;
    }
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.iterations <= 0) return false;
    c->query.iterations /= 2;
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.iterations <= 0) return false;
    --c->query.iterations;
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.until == UntilKind::kIterations) return false;
    c->query.until = UntilKind::kIterations;
    if (c->query.iterations > 6) c->query.iterations = 3;
    return true;
  });

  auto clear_flag = [&add](bool QuerySpec::*flag) {
    add([flag](FuzzCase* c) {
      if (!(c->query.*flag)) return false;
      c->query.*flag = false;
      return true;
    });
  };
  clear_flag(&QuerySpec::use_union);
  clear_flag(&QuerySpec::use_having);
  clear_flag(&QuerySpec::use_group_by);
  clear_flag(&QuerySpec::use_order_limit);
  clear_flag(&QuerySpec::use_case);
  clear_flag(&QuerySpec::use_where);
  clear_flag(&QuerySpec::left_join);
  clear_flag(&QuerySpec::join_vertexstatus);
  clear_flag(&QuerySpec::qf_filter);
  clear_flag(&QuerySpec::qf_aggregate);
  clear_flag(&QuerySpec::vs_join);

  add([](FuzzCase* c) {
    if (c->query.depth_bound <= 1) return false;
    c->query.depth_bound /= 2;
    if (c->query.depth_bound < 1) c->query.depth_bound = 1;
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.limit <= 1) return false;
    c->query.limit = 1;
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.filter_mod <= 2) return false;
    c->query.filter_mod = 2;
    return true;
  });
  add([](FuzzCase* c) {
    if (c->query.start_node <= 1 && c->query.source_node <= 1 &&
        c->query.target_node <= 1) {
      return false;
    }
    c->query.start_node = 1;
    c->query.source_node = 1;
    c->query.target_node = 1;
    return true;
  });
  // Try the trivial expression stream last: it rewrites every generated
  // expression, which often changes the bug but sometimes simplifies it.
  add([](FuzzCase* c) {
    if (c->query.expr_seed == 1) return false;
    c->query.expr_seed = 1;
    return true;
  });
  return moves;
}

}  // namespace

MinimizeResult Minimize(const FuzzCase& failing,
                        const DifferentialOptions& opts) {
  MinimizeResult result;
  result.minimized = failing;
  result.report = RunDifferential(failing, opts);

  const std::vector<Mutation> moves = ShrinkMoves();
  bool progressed = true;
  // Fixpoint: retry the whole move list until no move shrinks further.
  while (progressed && result.candidates_tried < 400) {
    progressed = false;
    for (const Mutation& move : moves) {
      FuzzCase candidate = result.minimized;
      if (!move(&candidate)) continue;
      ++result.candidates_tried;
      DiffReport r = RunDifferential(candidate, opts);
      if (!r.ok) {
        result.minimized = candidate;
        result.report = std::move(r);
        ++result.shrinks_applied;
        progressed = true;
      }
    }
  }
  return result;
}

namespace {

const char* GraphKindName(graph::GraphKind kind) {
  switch (kind) {
    case graph::GraphKind::kPreferentialAttachment:
      return "kPreferentialAttachment";
    case graph::GraphKind::kUniform:
      return "kUniform";
    case graph::GraphKind::kGrid:
      return "kGrid";
  }
  return "kUniform";
}

const char* FamilyEnumName(QueryFamily family) {
  switch (family) {
    case QueryFamily::kScalarSelect:    return "kScalarSelect";
    case QueryFamily::kIterativeChain:  return "kIterativeChain";
    case QueryFamily::kIterativeJoin:   return "kIterativeJoin";
    case QueryFamily::kIterativeMerge:  return "kIterativeMerge";
    case QueryFamily::kRecursive:       return "kRecursive";
    case QueryFamily::kCanonicalPR:     return "kCanonicalPR";
    case QueryFamily::kCanonicalSSSP:   return "kCanonicalSSSP";
    case QueryFamily::kCanonicalFF:     return "kCanonicalFF";
  }
  return "kScalarSelect";
}

const char* UntilEnumName(UntilKind until) {
  switch (until) {
    case UntilKind::kIterations: return "kIterations";
    case UntilKind::kUpdates:    return "kUpdates";
    case UntilKind::kDeltaLess:  return "kDeltaLess";
  }
  return "kIterations";
}

void EmitBool(std::string* out, const char* field, bool value) {
  if (value) {
    *out += StringPrintf("  c.query.%s = true;\n", field);
  }
}

}  // namespace

std::string EmitGtestRepro(const FuzzCase& c, const DiffReport& report) {
  std::string out;
  out += "// Minimized repro generated by fuzz_sql.\n";
  out += "// Failure: " + report.failure + "\n";
  out += "// SQL under test:\n";
  for (const std::string& line : Split(report.sql, '\n')) {
    out += "//   " + line + "\n";
  }
  out += StringPrintf(
      "TEST(FuzzRegression, Case%llu) {\n"
      "  using namespace dbspinner;\n"
      "  fuzz::FuzzCase c;\n",
      static_cast<unsigned long long>(c.case_seed));
  out += StringPrintf("  c.graph.kind = graph::GraphKind::%s;\n",
                      GraphKindName(c.graph.kind));
  out += StringPrintf("  c.graph.num_nodes = %lld;\n",
                      static_cast<long long>(c.graph.num_nodes));
  out += StringPrintf("  c.graph.num_edges = %lld;\n",
                      static_cast<long long>(c.graph.num_edges));
  out += StringPrintf("  c.graph.seed = %lluULL;\n",
                      static_cast<unsigned long long>(c.graph.seed));
  out += StringPrintf("  c.status_fraction = %.2f;\n", c.status_fraction);
  out += StringPrintf("  c.status_seed = %lluULL;\n",
                      static_cast<unsigned long long>(c.status_seed));
  out += StringPrintf("  c.query.family = fuzz::QueryFamily::%s;\n",
                      FamilyEnumName(c.query.family));
  out += StringPrintf("  c.query.expr_seed = %lluULL;\n",
                      static_cast<unsigned long long>(c.query.expr_seed));
  out += StringPrintf("  c.query.iterations = %d;\n", c.query.iterations);
  out += StringPrintf("  c.query.until = fuzz::UntilKind::%s;\n",
                      UntilEnumName(c.query.until));
  EmitBool(&out, "join_vertexstatus", c.query.join_vertexstatus);
  EmitBool(&out, "left_join", c.query.left_join);
  EmitBool(&out, "use_where", c.query.use_where);
  EmitBool(&out, "use_group_by", c.query.use_group_by);
  EmitBool(&out, "use_having", c.query.use_having);
  EmitBool(&out, "use_union", c.query.use_union);
  EmitBool(&out, "union_all", c.query.union_all);
  EmitBool(&out, "use_case", c.query.use_case);
  EmitBool(&out, "use_order_limit", c.query.use_order_limit);
  EmitBool(&out, "vs_join", c.query.vs_join);
  EmitBool(&out, "qf_filter", c.query.qf_filter);
  EmitBool(&out, "qf_aggregate", c.query.qf_aggregate);
  out += StringPrintf("  c.query.limit = %d;\n", c.query.limit);
  out += StringPrintf("  c.query.filter_mod = %lld;\n",
                      static_cast<long long>(c.query.filter_mod));
  if (!c.query.union_distinct) out += "  c.query.union_distinct = false;\n";
  out += StringPrintf("  c.query.depth_bound = %lld;\n",
                      static_cast<long long>(c.query.depth_bound));
  out += StringPrintf("  c.query.start_node = %lld;\n",
                      static_cast<long long>(c.query.start_node));
  out += StringPrintf("  c.query.source_node = %lld;\n",
                      static_cast<long long>(c.query.source_node));
  out += StringPrintf("  c.query.target_node = %lld;\n",
                      static_cast<long long>(c.query.target_node));
  out +=
      "  fuzz::DiffReport report = fuzz::RunDifferential(c);\n"
      "  EXPECT_TRUE(report.ok) << report.Describe(c);\n"
      "}\n";
  return out;
}

}  // namespace fuzz
}  // namespace dbspinner
