// Seed-driven random query generation for the differential fuzzer.
//
// A generated case is a *structured spec*, not a SQL string: every optional
// clause is a field the minimizer can turn off and every constant a field it
// can shrink, after which Render() deterministically re-produces the SQL.
// The same spec also renders to a statement-at-a-time Procedure (the Fig 11
// baseline), which gives the differential runner its plan-vs-procedure
// oracle for free.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/procedure.h"
#include "graph/generator.h"
#include "testing/fuzz_rng.h"

namespace dbspinner {
namespace fuzz {

/// Query shapes the generator rotates through. The three iterative families
/// map to the paper's three body classes: pass-through arithmetic (FF,
/// rename path + pushdown-legal), join + aggregation (PR, rename path,
/// pushdown-illegal), and WHERE-filtered (SSSP, merge path). Canonical
/// families reuse the exact workload queries so results can also be checked
/// against graph/reference_algorithms.
enum class QueryFamily {
  kScalarSelect,    ///< random one-shot SELECT pipeline over edges
  kIterativeChain,  ///< FF-shaped iterative CTE (rename, pushdown-legal)
  kIterativeJoin,   ///< PR-shaped iterative CTE (joins + GROUP BY)
  kIterativeMerge,  ///< SSSP-shaped iterative CTE (WHERE -> merge by key)
  kRecursive,       ///< WITH RECURSIVE reachability with a depth bound
  kCanonicalPR,     ///< workloads::PRQuery / PRVSQuery
  kCanonicalSSSP,   ///< workloads::SSSPQuery / SSSPVSQuery
  kCanonicalFF,     ///< workloads::FFQuery
};

const char* FamilyName(QueryFamily family);

/// Loop-termination condition of a generated iterative CTE.
enum class UntilKind { kIterations, kUpdates, kDeltaLess };

/// One generated query, as shrinkable knobs. Render() is a pure function of
/// this struct, so (spec, graph spec) fully reproduces a case.
struct QuerySpec {
  QueryFamily family = QueryFamily::kScalarSelect;
  uint64_t expr_seed = 1;  ///< drives generated expressions and constants

  // --- scalar-select knobs -------------------------------------------------
  bool join_vertexstatus = false;  ///< INNER JOIN vertexstatus in FROM
  bool left_join = false;          ///< LEFT JOIN a second edges alias
  bool use_where = false;
  bool use_group_by = false;
  bool use_having = false;  ///< only with use_group_by
  bool use_union = false;   ///< UNION [ALL] with a second arm
  bool union_all = false;
  bool use_case = false;           ///< CASE expression in the select list
  bool use_order_limit = false;    ///< ORDER BY all columns + LIMIT
  int limit = 10;

  // --- iterative knobs -----------------------------------------------------
  int iterations = 3;  ///< UNTIL n ITERATIONS / n for UPDATES / DELTA bound
  UntilKind until = UntilKind::kIterations;
  bool vs_join = false;       ///< join vertexstatus inside Ri (and Qf legal)
  bool qf_filter = false;     ///< MOD(node, filter_mod) = 0 predicate in Qf
  bool qf_aggregate = false;  ///< aggregate instead of projection in Qf
  int64_t filter_mod = 2;

  // --- recursive knobs -----------------------------------------------------
  bool union_distinct = true;  ///< UNION vs UNION ALL recursion
  int64_t depth_bound = 6;
  int64_t start_node = 1;

  // --- canonical knobs -----------------------------------------------------
  int64_t source_node = 1;  ///< SSSP source
  int64_t target_node = 2;  ///< SSSP target
};

/// A complete fuzz case: data + query.
struct FuzzCase {
  uint64_t case_seed = 0;  ///< for labeling/repro only
  graph::GraphSpec graph;
  double status_fraction = 0.75;
  uint64_t status_seed = 7;
  QuerySpec query;

  /// Human-readable one-liner ("case 17: iterative-chain, uniform n=40 ...").
  std::string Label() const;
};

/// Renders the spec to SQL. Deterministic.
std::string RenderQuery(const QuerySpec& spec);

/// True when the spec has a statement-at-a-time lowering (iterative families
/// with a counted UNTIL; data/delta conditions cannot be expressed as a
/// fixed-trip procedural loop).
bool HasProcedureLowering(const QuerySpec& spec);

/// The Fig 11-style lowering: temp tables + DELETE/INSERT/UPDATE per
/// iteration. Only valid when HasProcedureLowering(spec).
Procedure RenderProcedure(const QuerySpec& spec);

/// Loads the case's generated graph into `db` (edges + vertexstatus).
Status LoadCaseData(Database* db, const FuzzCase& c);

/// Deterministic stream of fuzz cases: same seed, same sequence.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  FuzzCase NextCase();

 private:
  QuerySpec NextSpec(QueryFamily family, uint64_t expr_seed,
                     int64_t num_nodes);

  FuzzRng rng_;
  int64_t counter_ = 0;
};

}  // namespace fuzz
}  // namespace dbspinner
