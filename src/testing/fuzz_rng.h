// Deterministic RNG for the SQL fuzzer.
//
// std::mt19937 + distributions are not guaranteed bit-identical across
// standard libraries, and the whole point of `fuzz_sql --seed N` is that a
// seed reproduces the same case list on every machine. splitmix64 is tiny,
// well mixed, and fully specified.

#pragma once

#include <cstdint>
#include <vector>

namespace dbspinner {
namespace fuzz {

class FuzzRng {
 public:
  explicit FuzzRng(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits (splitmix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// True with probability `percent`/100.
  bool Chance(int percent) { return Range(0, 99) < percent; }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  template <typename T>
  const T& Pick(const std::vector<T>& options) {
    return options[static_cast<size_t>(Range(
        0, static_cast<int64_t>(options.size()) - 1))];
  }

  /// Derives an independent stream (for per-case sub-seeds).
  uint64_t Fork() { return Next() | 1; }

 private:
  uint64_t state_;
};

}  // namespace fuzz
}  // namespace dbspinner
