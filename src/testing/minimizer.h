// Test-case minimizer: greedily shrinks a failing (query spec, graph spec,
// options) triple while the differential still fails, then renders the result
// as a ready-to-paste gtest regression test.
//
// Because a FuzzCase is a structured spec (not a SQL string), shrinking is
// plain field surgery — turn a clause knob off, halve a count — and the
// renderer re-produces syntactically valid SQL at every step. Each candidate
// is accepted iff RunDifferential still reports a failure.

#pragma once

#include <string>

#include "testing/differential.h"

namespace dbspinner {
namespace fuzz {

struct MinimizeResult {
  FuzzCase minimized;
  DiffReport report;    ///< failing differential report of `minimized`
  int candidates_tried = 0;
  int shrinks_applied = 0;
};

/// Shrinks `failing` (which must fail RunDifferential under `opts`).
MinimizeResult Minimize(const FuzzCase& failing,
                        const DifferentialOptions& opts = {});

/// A compilable gtest TEST() reproducing the failure of `c`.
std::string EmitGtestRepro(const FuzzCase& c, const DiffReport& report);

}  // namespace fuzz
}  // namespace dbspinner
