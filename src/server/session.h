// Session / SessionManager: the concurrent serving layer over Database.
//
// A Session is one client's connection: it owns a SessionState (per-session
// EngineOptions overrides, transaction state, a session-scoped temp-name
// prefix) and funnels every statement through the SessionManager's
// QueryScheduler for admission. Statements from *different* sessions run
// concurrently — reads against pinned catalog snapshots, writes serialized
// on the engine's commit lock (see Database's class comment and
// DESIGN.md §10).
//
//   Database db;
//   server::SessionManager mgr(&db);
//   auto s1 = mgr.CreateSession();
//   auto s2 = mgr.CreateSession();
//   // ... hand s1/s2 to different threads ...
//   auto r = s1->Execute("SELECT ...");           // concurrent with s2
//   s1->CancelCurrent();                          // from any thread
//   auto t = s2->ExecuteWithDeadline("...", 50'000);  // 50ms budget

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "engine/database.h"
#include "server/query_scheduler.h"

namespace dbspinner {
namespace server {

class SessionManager;

/// One client session. Statements on a single Session are serialized by the
/// caller (a connection handler runs one statement at a time); distinct
/// Sessions are safe to drive from distinct threads. CancelCurrent() is the
/// one method safe to call concurrently with an in-flight Execute.
class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Per-session engine options; mutate between statements to override
  /// behavior for this session only (the shell's \set does this).
  EngineOptions& options() { return state_.options; }

  /// Executes one statement: admission -> snapshot/commit-lock execution.
  Result<QueryResult> Execute(const std::string& sql);

  /// Executes a ';'-separated script (one admission for the whole script,
  /// so a transaction block cannot be wedged open by admission rejection
  /// in the middle).
  Result<QueryResult> ExecuteScript(const std::string& sql);

  /// As Execute, but the query is killed with kCancelled once
  /// `timeout_micros` elapses — while queued or mid-loop in an iterative
  /// program.
  Result<QueryResult> ExecuteWithDeadline(const std::string& sql,
                                          int64_t timeout_micros);

  /// Requests cooperative cancellation of the in-flight statement (no-op if
  /// idle). Safe from any thread / signal-handler-adjacent contexts (the
  /// token is a pair of atomics).
  void CancelCurrent();

  bool InTransaction() const { return state_.InTransaction(); }

  /// Stats of the session's most recent statement (queue wait etc. are in
  /// QueryResult.stats; this exposes the scheduler-level view).
  SchedulerStats scheduler_stats() const;

 private:
  friend class SessionManager;
  Session(SessionManager* manager, uint64_t id, EngineOptions options);

  Result<QueryResult> RunAdmitted(
      const CancellationToken& token,
      const std::function<Result<QueryResult>()>& run);

  /// Installs `token` as the cancel target of the in-flight statement.
  void SetInflight(const CancellationToken& token);

  SessionManager* manager_;
  uint64_t id_;
  SessionState state_;

  /// Guards the handoff of the in-flight token to CancelCurrent (shared_ptr
  /// copy is not atomic; the token's own state is).
  mutable Mutex inflight_mu_;
  CancellationToken inflight_ DBSP_GUARDED_BY(inflight_mu_);
};

/// Creates sessions over one Database and owns the admission scheduler they
/// all share. Thread-safe.
class SessionManager {
 public:
  /// Reserved pseudo-session id for post-commit view maintenance in the
  /// scheduler's accounting (real session ids start at 1).
  static constexpr uint64_t kMaintenanceSessionId = 0;

  explicit SessionManager(Database* db, SchedulerOptions sched = {});
  ~SessionManager();

  /// New session whose options start as a copy of the database's defaults.
  std::shared_ptr<Session> CreateSession();
  std::shared_ptr<Session> CreateSession(EngineOptions options);

  Database* db() { return db_; }
  QueryScheduler& scheduler() { return scheduler_; }

  /// Sessions created minus sessions destroyed.
  size_t active_sessions() const;

 private:
  friend class Session;
  void OnSessionDestroyed(uint64_t id);

  Database* db_;
  QueryScheduler scheduler_;

  mutable Mutex mu_;
  uint64_t next_id_ DBSP_GUARDED_BY(mu_) = 1;
  size_t active_ DBSP_GUARDED_BY(mu_) = 0;
};

}  // namespace server
}  // namespace dbspinner
