// QueryScheduler: admission control for concurrent query serving.
//
// The engine multiplexes every session's queries onto one shared worker
// pool, so an unbounded burst of clients would convoy on the pool and blow
// up memory with half-built hash tables. The scheduler caps how many
// queries execute at once (max_concurrent_queries) and how many may wait
// (max_queue_depth); anything beyond that is rejected immediately with
// kUnavailable so clients get backpressure instead of unbounded latency.
//
// Fairness: when a slot frees up, it goes to the waiting query whose
// session currently has the fewest queries running (FIFO order breaks
// ties). A chatty session therefore cannot starve a quiet one: the quiet
// session's first query always beats the chatty session's fifth.
//
// Queued queries keep observing their CancellationToken, so a client
// cancel or deadline kills a query while it waits, before it ever touches
// the engine.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dbspinner {
namespace server {

struct SchedulerOptions {
  /// Queries allowed to execute simultaneously (minimum 1).
  int max_concurrent_queries = 4;
  /// Queries allowed to wait for admission; further arrivals are rejected
  /// with kUnavailable. 0 disables queueing (admit-or-reject).
  int max_queue_depth = 32;
};

/// Monotonic counters, readable at any time (returned by value).
struct SchedulerStats {
  int64_t admitted = 0;            ///< queries that got a slot
  int64_t queued = 0;              ///< of those, how many had to wait
  int64_t rejected_queue_full = 0; ///< arrivals bounced off the full queue
  int64_t cancelled_while_queued = 0;
  int64_t total_queue_wait_us = 0; ///< summed wait of all queued queries
};

/// Thread-safe admission controller. One instance per SessionManager.
class QueryScheduler {
 public:
  explicit QueryScheduler(SchedulerOptions opts = {});

  /// RAII admission slot: releases its concurrency slot (and promotes the
  /// next fair waiter) on destruction. Default-constructed slots hold
  /// nothing.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept { *this = std::move(other); }
    Slot& operator=(Slot&& other) noexcept;
    ~Slot() { Release(); }

    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

    bool admitted() const { return scheduler_ != nullptr; }
    /// How long this query waited for admission (0 if admitted at once).
    int64_t queue_wait_us() const { return queue_wait_us_; }
    bool queued() const { return queued_; }

   private:
    friend class QueryScheduler;
    QueryScheduler* scheduler_ = nullptr;
    uint64_t session_id_ = 0;
    int64_t queue_wait_us_ = 0;
    bool queued_ = false;

    void Release();
  };

  /// Blocks until the query is admitted, rejected, or cancelled.
  /// Returns kUnavailable("admission queue full") when the wait queue is at
  /// capacity, or kCancelled when `cancel` fires while queued.
  Result<Slot> Admit(uint64_t session_id, const CancellationToken& cancel);

  /// Non-blocking admission: grants a slot only when one is free and no
  /// fair waiter is ahead, else kUnavailable immediately. Used by
  /// post-commit view maintenance, which must never wait here — the
  /// committing statement may itself hold a slot, so queueing behind a
  /// saturated scheduler could deadlock on itself.
  Result<Slot> TryAdmit(uint64_t session_id);

  SchedulerStats stats() const;
  int running() const;

 private:
  /// One queued query. Heap-allocated and shared between the waiting
  /// thread and the queue so neither can dangle.
  struct Ticket {
    uint64_t session_id = 0;
    uint64_t seq = 0;        ///< FIFO tie-break
    bool granted = false;    ///< set by PromoteLocked with bookkeeping done
  };

  /// Called with mu_ held whenever a slot may have freed: picks the fair
  /// winner among waiters (fewest running queries for its session, then
  /// lowest seq), performs the admission bookkeeping, and wakes it.
  void PromoteLocked() DBSP_REQUIRES(mu_);

  void Release(uint64_t session_id);

  const SchedulerOptions opts_;

  mutable Mutex mu_;
  std::condition_variable_any cv_;  ///< waits directly on mu_
  int running_ DBSP_GUARDED_BY(mu_) = 0;
  uint64_t next_seq_ DBSP_GUARDED_BY(mu_) = 0;
  std::unordered_map<uint64_t, int> running_per_session_ DBSP_GUARDED_BY(mu_);
  std::deque<std::shared_ptr<Ticket>> waiters_ DBSP_GUARDED_BY(mu_);
  SchedulerStats stats_ DBSP_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace dbspinner
