#include "server/session.h"

namespace dbspinner {
namespace server {

Session::Session(SessionManager* manager, uint64_t id, EngineOptions options)
    : manager_(manager), id_(id), state_(std::move(options)) {
  // Session-scoped temp names: two sessions materializing "__working" in
  // their programs land on distinct registry keys by construction.
  state_.temp_scope = "s" + std::to_string(id) + ":";
}

Session::~Session() {
  // A dropped connection must not leave the engine's writer slot held: roll
  // back any open transaction (releases the commit lock — legal from this
  // thread, the lock is thread-agnostic — and restores the catalog
  // snapshot).
  if (state_.InTransaction()) {
    (void)manager_->db()->ExecuteForSession(&state_, "ROLLBACK");
  }
  manager_->OnSessionDestroyed(id_);
}

void Session::SetInflight(const CancellationToken& token) {
  MutexLock lock(inflight_mu_);
  inflight_ = token;
}

void Session::CancelCurrent() {
  CancellationToken token;
  {
    MutexLock lock(inflight_mu_);
    token = inflight_;
  }
  token.RequestCancel();  // no-op on an inert (idle) token
}

Result<QueryResult> Session::RunAdmitted(
    const CancellationToken& token,
    const std::function<Result<QueryResult>()>& run) {
  SetInflight(token);
  state_.cancel = token;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // A session holding the engine's writer slot (open transaction) bypasses
    // admission: every scheduler slot may be occupied by writers blocked on
    // that very slot, so queueing the COMMIT/ROLLBACK that releases it would
    // deadlock the engine. The transaction already serializes all other
    // writers, so the bypass cannot oversubscribe the pool with writes.
    if (state_.InTransaction()) {
      return run();
    }
    DBSP_ASSIGN_OR_RETURN(QueryScheduler::Slot slot,
                          manager_->scheduler().Admit(id_, token));
    // Queue-wait metadata is surfaced in the statement's ExecStats
    // (rendered by EXPLAIN ANALYZE as queue_wait_us / admission_waits).
    state_.queue_wait_us = slot.queue_wait_us();
    state_.queued = slot.queued();
    return run();  // slot releases here, promoting the next fair waiter
  }();
  state_.cancel = CancellationToken();
  SetInflight(CancellationToken());
  return result;
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  return RunAdmitted(CancellationToken::Make(), [&] {
    return manager_->db()->ExecuteForSession(&state_, sql);
  });
}

Result<QueryResult> Session::ExecuteScript(const std::string& sql) {
  return RunAdmitted(CancellationToken::Make(), [&] {
    return manager_->db()->ExecuteScriptForSession(&state_, sql);
  });
}

Result<QueryResult> Session::ExecuteWithDeadline(const std::string& sql,
                                                 int64_t timeout_micros) {
  CancellationToken token = CancellationToken::Make();
  token.SetDeadlineAfterMicros(timeout_micros);
  return RunAdmitted(token, [&] {
    return manager_->db()->ExecuteForSession(&state_, sql);
  });
}

SchedulerStats Session::scheduler_stats() const {
  return manager_->scheduler().stats();
}

SessionManager::SessionManager(Database* db, SchedulerOptions sched)
    : db_(db), scheduler_(sched) {
  // Post-commit view maintenance competes for an execution slot like a
  // client query, under the reserved maintenance pseudo-session, and its
  // queries observe the committing statement's cancellation token.
  // Non-blocking: the committing statement still holds its own slot, so
  // waiting here could deadlock a saturated scheduler — on rejection the
  // drain runs inline under the committer's slot instead.
  db_->set_maintenance_gate([this](const CancellationToken& cancel,
                                   const std::function<Status()>& drain) {
    (void)cancel;  // the drain's queries poll it; admission never waits
    auto slot = scheduler_.TryAdmit(kMaintenanceSessionId);
    (void)slot;
    return drain();  // slot (when granted) releases after the drain
  });
}

SessionManager::~SessionManager() {
  // The gate captures `this`; a Database outliving its manager must not
  // call into a destroyed scheduler.
  db_->set_maintenance_gate(nullptr);
}

std::shared_ptr<Session> SessionManager::CreateSession() {
  return CreateSession(db_->options());
}

std::shared_ptr<Session> SessionManager::CreateSession(EngineOptions options) {
  uint64_t id;
  {
    MutexLock lock(mu_);
    id = next_id_++;
    ++active_;
  }
  // Not make_shared: the constructor is private to force creation through
  // the manager (ids must be unique per manager).
  return std::shared_ptr<Session>(new Session(this, id, std::move(options)));
}

void SessionManager::OnSessionDestroyed(uint64_t id) {
  (void)id;
  MutexLock lock(mu_);
  --active_;
}

size_t SessionManager::active_sessions() const {
  MutexLock lock(mu_);
  return active_;
}

}  // namespace server
}  // namespace dbspinner
