#include "server/query_scheduler.h"

#include <algorithm>

namespace dbspinner {
namespace server {

namespace {
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

QueryScheduler::QueryScheduler(SchedulerOptions opts) : opts_([&] {
  SchedulerOptions o = opts;
  o.max_concurrent_queries = std::max(1, o.max_concurrent_queries);
  o.max_queue_depth = std::max(0, o.max_queue_depth);
  return o;
}()) {}

QueryScheduler::Slot& QueryScheduler::Slot::operator=(Slot&& other) noexcept {
  if (this != &other) {
    Release();
    scheduler_ = other.scheduler_;
    session_id_ = other.session_id_;
    queue_wait_us_ = other.queue_wait_us_;
    queued_ = other.queued_;
    other.scheduler_ = nullptr;
  }
  return *this;
}

void QueryScheduler::Slot::Release() {
  if (scheduler_ != nullptr) {
    scheduler_->Release(session_id_);
    scheduler_ = nullptr;
  }
}

Result<QueryScheduler::Slot> QueryScheduler::Admit(
    uint64_t session_id, const CancellationToken& cancel) {
  MutexLock lock(mu_);

  auto make_slot = [&](bool queued, int64_t wait_us) {
    Slot slot;
    slot.scheduler_ = this;
    slot.session_id_ = session_id;
    slot.queued_ = queued;
    slot.queue_wait_us_ = wait_us;
    return slot;
  };

  // Fast path: a free slot and nobody ahead of us.
  if (running_ < opts_.max_concurrent_queries && waiters_.empty()) {
    ++running_;
    ++running_per_session_[session_id];
    ++stats_.admitted;
    return make_slot(/*queued=*/false, /*wait_us=*/0);
  }

  if (static_cast<int>(waiters_.size()) >= opts_.max_queue_depth) {
    ++stats_.rejected_queue_full;
    return Status::Unavailable("admission queue full");
  }

  auto ticket = std::make_shared<Ticket>();
  ticket->session_id = session_id;
  ticket->seq = next_seq_++;
  waiters_.push_back(ticket);
  ++stats_.queued;
  const int64_t enqueued_at = NowMicros();

  // A slot may already be free (we queued only because others were ahead —
  // can't happen today since PromoteLocked drains eagerly, but harmless).
  PromoteLocked();

  // Wake periodically to observe cancellation/deadline even though nobody
  // notifies for it: a killed client must not occupy a queue position.
  while (!ticket->granted) {
    if (cancel.IsCancelled()) {
      waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), ticket),
                     waiters_.end());
      ++stats_.cancelled_while_queued;
      return cancel.Check();
    }
    cv_.wait_for(mu_, std::chrono::milliseconds(5));
  }

  const int64_t waited = NowMicros() - enqueued_at;
  stats_.total_queue_wait_us += waited;
  return make_slot(/*queued=*/true, waited);
}

Result<QueryScheduler::Slot> QueryScheduler::TryAdmit(uint64_t session_id) {
  MutexLock lock(mu_);
  if (running_ >= opts_.max_concurrent_queries || !waiters_.empty()) {
    return Status::Unavailable("no free admission slot");
  }
  ++running_;
  ++running_per_session_[session_id];
  ++stats_.admitted;
  Slot slot;
  slot.scheduler_ = this;
  slot.session_id_ = session_id;
  return slot;
}

void QueryScheduler::PromoteLocked() {
  // Read-only load lookup: operator[] would default-insert an entry for
  // every queued-but-idle session and leak one per session id for the
  // server's lifetime (Release only erases ids it finds).
  auto load_of = [this](uint64_t session_id) {
    auto it = running_per_session_.find(session_id);
    return it == running_per_session_.end() ? 0 : it->second;
  };
  while (running_ < opts_.max_concurrent_queries && !waiters_.empty()) {
    // Fair pick: fewest queries already running for the ticket's session;
    // FIFO (lowest seq) breaks ties.
    auto best = waiters_.begin();
    for (auto it = std::next(waiters_.begin()); it != waiters_.end(); ++it) {
      int best_load = load_of((*best)->session_id);
      int load = load_of((*it)->session_id);
      if (load < best_load ||
          (load == best_load && (*it)->seq < (*best)->seq)) {
        best = it;
      }
    }
    std::shared_ptr<Ticket> ticket = *best;
    waiters_.erase(best);
    // Bookkeeping happens at grant time, so concurrent releases can't
    // double-admit past the cap.
    ++running_;
    ++running_per_session_[ticket->session_id];
    ++stats_.admitted;
    ticket->granted = true;
  }
  cv_.notify_all();
}

void QueryScheduler::Release(uint64_t session_id) {
  MutexLock lock(mu_);
  --running_;
  auto it = running_per_session_.find(session_id);
  if (it != running_per_session_.end() && --it->second <= 0) {
    running_per_session_.erase(it);
  }
  PromoteLocked();
}

SchedulerStats QueryScheduler::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

int QueryScheduler::running() const {
  MutexLock lock(mu_);
  return running_;
}

}  // namespace server
}  // namespace dbspinner
