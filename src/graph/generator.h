// Synthetic graph generation.
//
// The paper evaluates on SNAP datasets (DBLP: 317,080 nodes / 1,049,866
// edges; Pokec: 1,632,803 / 30,622,564). We cannot redistribute those, so we
// generate graphs with the same node:edge proportions and a social-network
// degree skew (preferential attachment). Edge weights are 1/outdegree(src),
// the standard PageRank transition probability, which is also a valid
// positive length for SSSP.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "storage/table.h"

namespace dbspinner {
namespace graph {

enum class GraphKind {
  kPreferentialAttachment,  ///< power-law in-degree (social-network shaped)
  kUniform,                 ///< uniformly random endpoints
  kGrid,                    ///< 2D grid (deterministic; long SSSP paths)
};

struct GraphSpec {
  GraphKind kind = GraphKind::kPreferentialAttachment;
  int64_t num_nodes = 1000;
  int64_t num_edges = 5000;
  uint64_t seed = 42;
};

/// DBLP-shaped spec: 317,080 / `scale` nodes, 1,049,866 / `scale` edges.
GraphSpec DblpShaped(int64_t scale = 16, uint64_t seed = 42);

/// Pokec-shaped spec: 1,632,803 / `scale` nodes, 30,622,564 / `scale` edges.
GraphSpec PokecShaped(int64_t scale = 16, uint64_t seed = 43);

/// A generated edge list. Node ids are 1..num_nodes; weights are
/// 1/outdegree(src). Self-loops are excluded; parallel edges may occur
/// (multigraph), which every workload handles.
struct EdgeList {
  int64_t num_nodes = 0;
  std::vector<int64_t> src;
  std::vector<int64_t> dst;
  std::vector<double> weight;

  size_t num_edges() const { return src.size(); }
};

/// Generates a graph deterministically from `spec`.
EdgeList Generate(const GraphSpec& spec);

/// Builds the `edges(src, dst, weight)` table.
TablePtr BuildEdgesTable(const EdgeList& graph);

/// Builds `vertexstatus(node, status)` for nodes 1..num_nodes; roughly
/// `available_fraction` of nodes get status 1, the rest 0 (deterministic in
/// `seed`).
TablePtr BuildVertexStatusTable(int64_t num_nodes, double available_fraction,
                                uint64_t seed);

/// Registers `edges` (and `vertexstatus` when `available_fraction` >= 0)
/// into `db`.
Status LoadIntoDatabase(Database* db, const EdgeList& graph,
                        double available_fraction = 0.8,
                        uint64_t status_seed = 7);

}  // namespace graph
}  // namespace dbspinner
