#include "graph/generator.h"

#include <random>
#include <unordered_map>

namespace dbspinner {
namespace graph {

GraphSpec DblpShaped(int64_t scale, uint64_t seed) {
  GraphSpec spec;
  spec.kind = GraphKind::kPreferentialAttachment;
  spec.num_nodes = std::max<int64_t>(4, 317080 / scale);
  spec.num_edges = std::max<int64_t>(8, 1049866 / scale);
  spec.seed = seed;
  return spec;
}

GraphSpec PokecShaped(int64_t scale, uint64_t seed) {
  GraphSpec spec;
  spec.kind = GraphKind::kPreferentialAttachment;
  spec.num_nodes = std::max<int64_t>(4, 1632803 / scale);
  spec.num_edges = std::max<int64_t>(8, 30622564 / scale);
  spec.seed = seed;
  return spec;
}

namespace {

void FinalizeWeights(EdgeList* g) {
  std::unordered_map<int64_t, int64_t> outdeg;
  outdeg.reserve(static_cast<size_t>(g->num_nodes));
  for (int64_t s : g->src) ++outdeg[s];
  g->weight.resize(g->src.size());
  for (size_t i = 0; i < g->src.size(); ++i) {
    g->weight[i] = 1.0 / static_cast<double>(outdeg[g->src[i]]);
  }
}

EdgeList GeneratePreferential(const GraphSpec& spec) {
  EdgeList g;
  g.num_nodes = spec.num_nodes;
  std::mt19937_64 rng(spec.seed);
  int64_t n = spec.num_nodes;
  int64_t m = spec.num_edges;
  g.src.reserve(static_cast<size_t>(m));
  g.dst.reserve(static_cast<size_t>(m));

  // Endpoint pool: sampling uniformly from it is degree-proportional.
  std::vector<int64_t> pool;
  pool.reserve(static_cast<size_t>(2 * m));
  // Seed ring among the first few nodes so the pool is never empty.
  int64_t seed_nodes = std::min<int64_t>(n, 3);
  for (int64_t i = 1; i <= seed_nodes; ++i) {
    int64_t j = i % seed_nodes + 1;
    if (i == j) continue;
    g.src.push_back(i);
    g.dst.push_back(j);
    pool.push_back(i);
    pool.push_back(j);
  }
  // Each new node sends ~m/n edges to degree-biased targets.
  int64_t per_node = std::max<int64_t>(1, m / std::max<int64_t>(1, n));
  for (int64_t v = seed_nodes + 1; v <= n; ++v) {
    for (int64_t k = 0;
         k < per_node && static_cast<int64_t>(g.src.size()) < m; ++k) {
      int64_t target =
          pool[std::uniform_int_distribution<size_t>(0, pool.size() - 1)(rng)];
      if (target == v) target = (v % n) + 1 == v ? 1 : (v % n) + 1;
      g.src.push_back(v);
      g.dst.push_back(target);
      pool.push_back(v);
      pool.push_back(target);
    }
  }
  // Top up to the exact edge count with degree-biased random pairs.
  std::uniform_int_distribution<int64_t> uniform_node(1, n);
  while (static_cast<int64_t>(g.src.size()) < m) {
    int64_t s = uniform_node(rng);
    int64_t d =
        pool[std::uniform_int_distribution<size_t>(0, pool.size() - 1)(rng)];
    if (s == d) continue;
    g.src.push_back(s);
    g.dst.push_back(d);
    pool.push_back(s);
    pool.push_back(d);
  }
  FinalizeWeights(&g);
  return g;
}

EdgeList GenerateUniform(const GraphSpec& spec) {
  EdgeList g;
  g.num_nodes = spec.num_nodes;
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int64_t> uniform_node(1, spec.num_nodes);
  g.src.reserve(static_cast<size_t>(spec.num_edges));
  g.dst.reserve(static_cast<size_t>(spec.num_edges));
  while (static_cast<int64_t>(g.src.size()) < spec.num_edges) {
    int64_t s = uniform_node(rng);
    int64_t d = uniform_node(rng);
    if (s == d) continue;
    g.src.push_back(s);
    g.dst.push_back(d);
  }
  FinalizeWeights(&g);
  return g;
}

EdgeList GenerateGrid(const GraphSpec& spec) {
  // side x side grid; edges right and down. num_edges is ignored (the grid
  // shape determines it); num_nodes is rounded down to a square.
  EdgeList g;
  int64_t side = 1;
  while ((side + 1) * (side + 1) <= spec.num_nodes) ++side;
  g.num_nodes = side * side;
  auto id = [side](int64_t r, int64_t c) { return r * side + c + 1; };
  for (int64_t r = 0; r < side; ++r) {
    for (int64_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        g.src.push_back(id(r, c));
        g.dst.push_back(id(r, c + 1));
      }
      if (r + 1 < side) {
        g.src.push_back(id(r, c));
        g.dst.push_back(id(r + 1, c));
      }
    }
  }
  FinalizeWeights(&g);
  return g;
}

}  // namespace

EdgeList Generate(const GraphSpec& spec) {
  switch (spec.kind) {
    case GraphKind::kPreferentialAttachment:
      return GeneratePreferential(spec);
    case GraphKind::kUniform:
      return GenerateUniform(spec);
    case GraphKind::kGrid:
      return GenerateGrid(spec);
  }
  return EdgeList{};
}

TablePtr BuildEdgesTable(const EdgeList& graph) {
  Schema schema;
  schema.AddColumn("src", TypeId::kInt64);
  schema.AddColumn("dst", TypeId::kInt64);
  schema.AddColumn("weight", TypeId::kDouble);
  auto src = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto dst = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto weight = std::make_shared<ColumnVector>(TypeId::kDouble);
  size_t n = graph.num_edges();
  src->Reserve(n);
  dst->Reserve(n);
  weight->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    src->AppendInt64(graph.src[i]);
    dst->AppendInt64(graph.dst[i]);
    weight->AppendDouble(graph.weight[i]);
  }
  return Table::FromColumns(schema, {src, dst, weight});
}

TablePtr BuildVertexStatusTable(int64_t num_nodes, double available_fraction,
                                uint64_t seed) {
  Schema schema;
  schema.AddColumn("node", TypeId::kInt64);
  schema.AddColumn("status", TypeId::kInt64);
  auto node = std::make_shared<ColumnVector>(TypeId::kInt64);
  auto status = std::make_shared<ColumnVector>(TypeId::kInt64);
  node->Reserve(static_cast<size_t>(num_nodes));
  status->Reserve(static_cast<size_t>(num_nodes));
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int64_t i = 1; i <= num_nodes; ++i) {
    node->AppendInt64(i);
    status->AppendInt64(u(rng) < available_fraction ? 1 : 0);
  }
  return Table::FromColumns(schema, {node, status});
}

Status LoadIntoDatabase(Database* db, const EdgeList& graph,
                        double available_fraction, uint64_t status_seed) {
  DBSP_RETURN_NOT_OK(db->RegisterTable("edges", BuildEdgesTable(graph)));
  if (available_fraction >= 0) {
    DBSP_RETURN_NOT_OK(db->RegisterTable(
        "vertexstatus",
        BuildVertexStatusTable(graph.num_nodes, available_fraction,
                               status_seed),
        /*primary_key_col=*/0));
  }
  return Status::OK();
}

}  // namespace graph
}  // namespace dbspinner
