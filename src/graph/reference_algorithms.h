// Reference implementations of the paper's workloads, mirroring the SQL
// semantics *exactly* (including SQL NULL propagation). Used as ground truth
// by the integration tests: the iterative-CTE results must match these
// row-for-row, with and without every optimization enabled.

#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/generator.h"

namespace dbspinner {
namespace graph {

/// PageRank state per node. `rank`/`delta` are nullable to mirror the SQL
/// NULL propagation of the paper's Fig 2 query (nodes with no incoming
/// edges get a NULL delta, which then NULLs their rank).
struct PageRankRow {
  int64_t node;
  std::optional<double> rank;
  std::optional<double> delta;
};

/// Runs the Fig 2 PR query semantics for `iterations` rounds. When `status`
/// is non-null, runs the PR-VS variant: only nodes with status != 0 that
/// have at least one incoming edge are updated each round (merge
/// semantics); others keep their previous values.
std::vector<PageRankRow> ReferencePageRank(
    const EdgeList& graph, int iterations,
    const std::unordered_map<int64_t, int64_t>* status = nullptr);

struct SsspRow {
  int64_t node;
  double distance;
  double delta;
};

/// Runs the Fig 7 SSSP query semantics (sentinel 9999999; merge updates for
/// nodes with at least one explored incoming edge). `status` non-null runs
/// the -VS variant.
std::vector<SsspRow> ReferenceSssp(
    const EdgeList& graph, int iterations, int64_t source,
    const std::unordered_map<int64_t, int64_t>* status = nullptr);

struct ForecastRow {
  int64_t node;
  double friends;
  double friends_prev;
};

/// Runs the Fig 6 FF query semantics for `iterations` rounds (all nodes
/// with outgoing edges; geometric growth with ROUND(x, 5)).
std::vector<ForecastRow> ReferenceForecast(const EdgeList& graph,
                                           int iterations);

/// Distinct nodes of the graph (src union dst), ascending — the node set
/// every query's non-iterative part produces.
std::vector<int64_t> GraphNodes(const EdgeList& graph);

/// vertexstatus table contents as a map (for the reference -VS runs).
std::unordered_map<int64_t, int64_t> StatusMap(const Table& vertexstatus);

}  // namespace graph
}  // namespace dbspinner
