#include "graph/reference_algorithms.h"

#include <algorithm>
#include <cmath>

namespace dbspinner {
namespace graph {

std::vector<int64_t> GraphNodes(const EdgeList& graph) {
  std::unordered_set<int64_t> set;
  set.reserve(graph.num_edges() * 2);
  for (int64_t s : graph.src) set.insert(s);
  for (int64_t d : graph.dst) set.insert(d);
  std::vector<int64_t> nodes(set.begin(), set.end());
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::unordered_map<int64_t, int64_t> StatusMap(const Table& vertexstatus) {
  std::unordered_map<int64_t, int64_t> out;
  out.reserve(vertexstatus.num_rows());
  for (size_t i = 0; i < vertexstatus.num_rows(); ++i) {
    out[vertexstatus.column(0).Int64At(i)] = vertexstatus.column(1).Int64At(i);
  }
  return out;
}

namespace {

// Incoming adjacency: node -> list of (src, weight).
std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>>
IncomingEdges(const EdgeList& graph) {
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, double>>> in;
  in.reserve(graph.num_edges());
  for (size_t i = 0; i < graph.num_edges(); ++i) {
    in[graph.dst[i]].emplace_back(graph.src[i], graph.weight[i]);
  }
  return in;
}

}  // namespace

std::vector<PageRankRow> ReferencePageRank(
    const EdgeList& graph, int iterations,
    const std::unordered_map<int64_t, int64_t>* status) {
  std::vector<int64_t> nodes = GraphNodes(graph);
  auto incoming = IncomingEdges(graph);

  std::unordered_map<int64_t, size_t> index;
  index.reserve(nodes.size());
  std::vector<PageRankRow> state(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    index[nodes[i]] = i;
    state[i] = PageRankRow{nodes[i], 0.0, 0.15};
  }

  auto available = [&](int64_t node) {
    if (status == nullptr) return true;
    auto it = status->find(node);
    return it != status->end() && it->second != 0;
  };

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<PageRankRow> next = state;
    for (size_t i = 0; i < nodes.size(); ++i) {
      int64_t node = nodes[i];
      const auto in_it = incoming.find(node);
      bool has_incoming = in_it != incoming.end() && !in_it->second.empty();
      if (status != nullptr) {
        // PR-VS: the working table only contains available nodes with at
        // least one incoming edge; everything else keeps its old row.
        if (!available(node) || !has_incoming) continue;
      }
      // new rank = rank + delta (NULL-propagating).
      std::optional<double> new_rank;
      if (state[i].rank.has_value() && state[i].delta.has_value()) {
        new_rank = *state[i].rank + *state[i].delta;
      }
      // new delta = 0.85 * SUM(delta_src * w); SUM skips NULL terms and is
      // NULL when no non-NULL term exists (including "no incoming edges").
      std::optional<double> new_delta;
      if (has_incoming) {
        double sum = 0;
        bool any = false;
        for (const auto& [src, w] : in_it->second) {
          const PageRankRow& src_row = state[index[src]];
          if (src_row.delta.has_value()) {
            sum += *src_row.delta * w;
            any = true;
          }
        }
        if (any) new_delta = 0.85 * sum;
      }
      next[i].rank = new_rank;
      next[i].delta = new_delta;
    }
    state = std::move(next);
  }
  return state;
}

std::vector<SsspRow> ReferenceSssp(
    const EdgeList& graph, int iterations, int64_t source,
    const std::unordered_map<int64_t, int64_t>* status) {
  constexpr double kInf = 9999999;
  std::vector<int64_t> nodes = GraphNodes(graph);
  auto incoming = IncomingEdges(graph);

  std::unordered_map<int64_t, size_t> index;
  std::vector<SsspRow> state(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    index[nodes[i]] = i;
    state[i] = SsspRow{nodes[i], kInf, nodes[i] == source ? 0 : kInf};
  }

  auto available = [&](int64_t node) {
    if (status == nullptr) return true;
    auto it = status->find(node);
    return it != status->end() && it->second != 0;
  };

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<SsspRow> next = state;
    for (size_t i = 0; i < nodes.size(); ++i) {
      int64_t node = nodes[i];
      if (status != nullptr && !available(node)) continue;
      const auto in_it = incoming.find(node);
      if (in_it == incoming.end()) continue;  // LEFT JOIN row filtered by WHERE
      // Only rows with an explored source survive the WHERE clause.
      double best = kInf;
      bool any = false;
      for (const auto& [src, w] : in_it->second) {
        const SsspRow& src_row = state[index[src]];
        if (src_row.delta != kInf) {
          best = std::min(best, src_row.delta + w);
          any = true;
        }
      }
      if (!any) continue;  // node absent from the working table: keep old row
      next[i].distance = std::min(state[i].distance, state[i].delta);
      next[i].delta = best;
    }
    state = std::move(next);
  }
  return state;
}

std::vector<ForecastRow> ReferenceForecast(const EdgeList& graph,
                                           int iterations) {
  // R0: per source node, friends = COUNT(dst), friendsprev =
  // CEILING(friends * (1 - (src % 10) / 100)).
  std::unordered_map<int64_t, int64_t> outdeg;
  for (int64_t s : graph.src) ++outdeg[s];

  std::vector<ForecastRow> state;
  state.reserve(outdeg.size());
  for (const auto& [node, deg] : outdeg) {
    double friends = static_cast<double>(deg);
    double prev = std::ceil(
        friends * (1.0 - static_cast<double>(node % 10) / 100.0));
    state.push_back(ForecastRow{node, friends, prev});
  }
  std::sort(state.begin(), state.end(),
            [](const ForecastRow& a, const ForecastRow& b) {
              return a.node < b.node;
            });

  for (int iter = 0; iter < iterations; ++iter) {
    for (ForecastRow& row : state) {
      double next =
          std::round((row.friends / row.friends_prev) * row.friends * 1e5) /
          1e5;
      row.friends_prev = row.friends;
      row.friends = next;
    }
  }
  return state;
}

}  // namespace graph
}  // namespace dbspinner
