#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace dbspinner {
namespace graph {

Status WriteEdgeListFile(const EdgeList& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out << "# dbspinner edge list: src dst weight (" << graph.num_nodes
      << " nodes, " << graph.num_edges() << " edges)\n";
  for (size_t i = 0; i < graph.num_edges(); ++i) {
    out << graph.src[i] << ' ' << graph.dst[i] << ' ' << graph.weight[i]
        << '\n';
  }
  if (!out) {
    return Status::ExecutionError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<EdgeList> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  EdgeList g;
  bool any_weight = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    int64_t s, d;
    if (!(ss >> s >> d)) {
      return Status::ParseError("malformed edge at line " +
                                std::to_string(line_no) + " of " + path);
    }
    double w;
    if (ss >> w) {
      any_weight = true;
    } else {
      w = 0;
    }
    g.src.push_back(s);
    g.dst.push_back(d);
    g.weight.push_back(w);
    g.num_nodes = std::max({g.num_nodes, s, d});
  }
  if (!any_weight) {
    std::unordered_map<int64_t, int64_t> outdeg;
    for (int64_t s : g.src) ++outdeg[s];
    for (size_t i = 0; i < g.src.size(); ++i) {
      g.weight[i] = 1.0 / static_cast<double>(outdeg[g.src[i]]);
    }
  }
  return g;
}

}  // namespace graph
}  // namespace dbspinner
