// Edge-list file I/O (SNAP-style whitespace-separated text). Lets users
// load real datasets (e.g. the paper's DBLP/Pokec downloads) in place of the
// synthetic generators.

#pragma once

#include <string>

#include "common/status.h"
#include "graph/generator.h"

namespace dbspinner {
namespace graph {

/// Writes "src dst weight" lines (with a `# comment` header).
Status WriteEdgeListFile(const EdgeList& graph, const std::string& path);

/// Reads an edge-list file. Lines starting with '#' are skipped. Each data
/// line is "src dst [weight]"; when the weight column is absent everywhere,
/// weights are recomputed as 1/outdegree(src).
Result<EdgeList> ReadEdgeListFile(const std::string& path);

}  // namespace graph
}  // namespace dbspinner
