// Recursive-descent SQL parser.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"

namespace dbspinner {

/// Parses exactly one statement (a trailing ';' is allowed).
Result<StatementPtr> ParseStatement(const std::string& sql);

/// Parses a ';'-separated script into a statement list.
Result<std::vector<StatementPtr>> ParseScript(const std::string& sql);

/// Parses a standalone scalar expression (used by tests and tools).
Result<ParseExprPtr> ParseExpression(const std::string& text);

/// True if `word` (any case) is a reserved keyword of the grammar. The SQL
/// fuzzer's query generator uses this to keep generated identifiers legal.
bool IsReservedKeyword(const std::string& word);

}  // namespace dbspinner
