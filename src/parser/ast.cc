#include "parser/ast.h"

#include "common/string_util.h"

namespace dbspinner {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kConcat: return "||";
  }
  return "?";
}

ParseExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = ParseExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ParseExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = ParseExprKind::kColumnRef;
  e->qualifier = ToLower(qualifier);
  e->column_name = ToLower(column);
  return e;
}

ParseExprPtr MakeBinary(BinaryOp op, ParseExprPtr l, ParseExprPtr r) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = ParseExprKind::kBinaryOp;
  e->binary_op = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ParseExprPtr MakeUnary(UnaryOp op, ParseExprPtr operand) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = ParseExprKind::kUnaryOp;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ParseExprPtr MakeFunction(std::string name, std::vector<ParseExprPtr> args) {
  auto e = std::make_unique<ParseExpr>();
  e->kind = ParseExprKind::kFunctionCall;
  e->function_name = ToLower(name);
  e->children = std::move(args);
  return e;
}

ParseExprPtr ParseExpr::Clone() const {
  auto e = std::make_unique<ParseExpr>();
  e->kind = kind;
  e->literal = literal;
  e->qualifier = qualifier;
  e->column_name = column_name;
  e->binary_op = binary_op;
  e->unary_op = unary_op;
  e->function_name = function_name;
  e->distinct = distinct;
  e->cast_type = cast_type;
  e->negated = negated;
  e->case_has_else = case_has_else;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string ParseExpr::ToString() const {
  switch (kind) {
    case ParseExprKind::kLiteral:
      return literal.type() == TypeId::kString ? "'" + literal.ToString() + "'"
                                               : literal.ToString();
    case ParseExprKind::kColumnRef:
      return qualifier.empty() ? column_name : qualifier + "." + column_name;
    case ParseExprKind::kStar:
      return "*";
    case ParseExprKind::kBinaryOp:
      return "(" + children[0]->ToString() + " " + BinaryOpName(binary_op) +
             " " + children[1]->ToString() + ")";
    case ParseExprKind::kUnaryOp:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             children[0]->ToString();
    case ParseExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      if (distinct) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ParseExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + children[2 * i]->ToString() + " THEN " +
               children[2 * i + 1]->ToString();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case ParseExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             TypeName(cast_type) + ")";
    case ParseExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ParseExprKind::kIn: {
      std::string out = children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ParseExprKind::kBetween:
      return children[0]->ToString() + " BETWEEN " + children[1]->ToString() +
             " AND " + children[2]->ToString();
    case ParseExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE " : " LIKE ") +
             children[1]->ToString();
  }
  return "?";
}

TableRefPtr TableRef::Clone() const {
  auto t = std::make_unique<TableRef>();
  t->kind = kind;
  t->table_name = table_name;
  t->alias = alias;
  t->join_type = join_type;
  if (left) t->left = left->Clone();
  if (right) t->right = right->Clone();
  if (join_condition) t->join_condition = join_condition->Clone();
  if (subquery) t->subquery = subquery->Clone();
  return t;
}

SelectItem SelectItem::Clone() const {
  SelectItem s;
  s.expr = expr->Clone();
  s.alias = alias;
  return s;
}

QueryNodePtr QueryNode::Clone() const {
  auto q = std::make_unique<QueryNode>();
  q->kind = kind;
  q->distinct = distinct;
  for (const auto& item : select_list) q->select_list.push_back(item.Clone());
  if (from) q->from = from->Clone();
  if (where) q->where = where->Clone();
  for (const auto& g : group_by) q->group_by.push_back(g->Clone());
  if (having) q->having = having->Clone();
  q->set_op = set_op;
  if (left) q->left = left->Clone();
  if (right) q->right = right->Clone();
  for (const auto& o : order_by) {
    OrderByItem item;
    item.expr = o.expr->Clone();
    item.descending = o.descending;
    q->order_by.push_back(std::move(item));
  }
  q->limit = limit;
  q->offset = offset;
  return q;
}

TerminationCondition TerminationCondition::Clone() const {
  TerminationCondition t;
  t.kind = kind;
  t.n = n;
  if (expr) t.expr = expr->Clone();
  return t;
}

std::string TerminationCondition::ToString() const {
  switch (kind) {
    case Kind::kIterations:
      return std::to_string(n) + " ITERATIONS";
    case Kind::kUpdates:
      return std::to_string(n) + " UPDATES";
    case Kind::kAny:
      return "ANY(" + expr->ToString() + ")";
    case Kind::kAll:
      return "ALL(" + expr->ToString() + ")";
    case Kind::kDeltaLess:
      return "DELTA < " + std::to_string(n);
  }
  return "?";
}

const char* TerminationCondition::TypeName() const {
  switch (kind) {
    case Kind::kIterations:
    case Kind::kUpdates:
      return "Metadata";
    case Kind::kAny:
    case Kind::kAll:
      return "Data";
    case Kind::kDeltaLess:
      return "Delta";
  }
  return "?";
}

CteDef CteDef::Clone() const {
  CteDef c;
  c.name = name;
  c.column_names = column_names;
  c.kind = kind;
  if (query) c.query = query->Clone();
  if (init_query) c.init_query = init_query->Clone();
  if (iter_query) c.iter_query = iter_query->Clone();
  c.until = until.Clone();
  c.key_column = key_column;
  return c;
}

}  // namespace dbspinner
