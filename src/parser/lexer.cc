#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace dbspinner {

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier '" + text + "'";
    case TokenType::kIntLiteral:
      return "integer " + std::to_string(int_value);
    case TokenType::kFloatLiteral:
      return "float literal";
    case TokenType::kStringLiteral:
      return "string '" + text + "'";
    case TokenType::kSymbol:
      return "'" + text + "'";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      DBSP_RETURN_NOT_OK(SkipWhitespaceAndComments());
      if (pos_ >= sql_.size()) break;
      Token tok;
      tok.line = line_;
      tok.column = col_;
      char c = sql_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tok.type = TokenType::kIdentifier;
        tok.text = LexIdentifier();
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '.' && pos_ + 1 < sql_.size() &&
                  std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
        DBSP_RETURN_NOT_OK(LexNumber(&tok));
      } else if (c == '\'') {
        DBSP_RETURN_NOT_OK(LexString(&tok));
      } else if (c == '"') {
        DBSP_RETURN_NOT_OK(LexQuotedIdentifier(&tok));
      } else {
        DBSP_RETURN_NOT_OK(LexSymbol(&tok));
      }
      tokens.push_back(std::move(tok));
    }
    Token end;
    end.type = TokenType::kEnd;
    end.line = line_;
    end.column = col_;
    tokens.push_back(end);
    return tokens;
  }

 private:
  void Advance() {
    if (sql_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  Status SkipWhitespaceAndComments() {
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '-' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '-') {
        while (pos_ < sql_.size() && sql_[pos_] != '\n') Advance();
      } else if (c == '/' && pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '*') {
        size_t start_line = line_;
        Advance();
        Advance();
        while (pos_ + 1 < sql_.size() &&
               !(sql_[pos_] == '*' && sql_[pos_ + 1] == '/')) {
          Advance();
        }
        if (pos_ + 1 >= sql_.size()) {
          return Status::ParseError("unterminated block comment at line " +
                                    std::to_string(start_line));
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  std::string LexIdentifier() {
    size_t start = pos_;
    while (pos_ < sql_.size() &&
           (std::isalnum(static_cast<unsigned char>(sql_[pos_])) ||
            sql_[pos_] == '_')) {
      Advance();
    }
    return sql_.substr(start, pos_ - start);
  }

  Status LexNumber(Token* tok) {
    size_t start = pos_;
    bool is_float = false;
    while (pos_ < sql_.size() &&
           std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
      Advance();
    }
    if (pos_ < sql_.size() && sql_[pos_] == '.' &&
        !(pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '.')) {
      is_float = true;
      Advance();
      while (pos_ < sql_.size() &&
             std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
        Advance();
      }
    }
    if (pos_ < sql_.size() && (sql_[pos_] == 'e' || sql_[pos_] == 'E')) {
      size_t save = pos_;
      Advance();
      if (pos_ < sql_.size() && (sql_[pos_] == '+' || sql_[pos_] == '-')) {
        Advance();
      }
      if (pos_ < sql_.size() &&
          std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
        is_float = true;
        while (pos_ < sql_.size() &&
               std::isdigit(static_cast<unsigned char>(sql_[pos_]))) {
          Advance();
        }
      } else {
        pos_ = save;  // 'e' belongs to a following identifier
      }
    }
    std::string text = sql_.substr(start, pos_ - start);
    if (is_float) {
      tok->type = TokenType::kFloatLiteral;
      tok->float_value = std::strtod(text.c_str(), nullptr);
    } else {
      errno = 0;
      tok->type = TokenType::kIntLiteral;
      tok->int_value = std::strtoll(text.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Status::ParseError("integer literal out of range: " + text);
      }
    }
    tok->text = std::move(text);
    return Status::OK();
  }

  Status LexString(Token* tok) {
    size_t start_line = line_;
    Advance();  // opening quote
    std::string body;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < sql_.size() && sql_[pos_ + 1] == '\'') {
          body += '\'';  // escaped quote
          Advance();
          Advance();
          continue;
        }
        Advance();
        tok->type = TokenType::kStringLiteral;
        tok->text = std::move(body);
        return Status::OK();
      }
      body += c;
      Advance();
    }
    return Status::ParseError("unterminated string literal at line " +
                              std::to_string(start_line));
  }

  Status LexQuotedIdentifier(Token* tok) {
    size_t start_line = line_;
    Advance();
    std::string body;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '"') {
        Advance();
        tok->type = TokenType::kIdentifier;
        tok->text = std::move(body);
        return Status::OK();
      }
      body += c;
      Advance();
    }
    return Status::ParseError("unterminated quoted identifier at line " +
                              std::to_string(start_line));
  }

  Status LexSymbol(Token* tok) {
    char c = sql_[pos_];
    tok->type = TokenType::kSymbol;
    auto two = [&](char next) {
      return pos_ + 1 < sql_.size() && sql_[pos_ + 1] == next;
    };
    switch (c) {
      case '(': case ')': case ',': case '.': case ';':
      case '+': case '-': case '*': case '/': case '%':
        tok->text = std::string(1, c);
        Advance();
        return Status::OK();
      case '=':
        tok->text = "=";
        Advance();
        return Status::OK();
      case '!':
        if (two('=')) {
          tok->text = "!=";
          Advance();
          Advance();
          return Status::OK();
        }
        break;
      case '<':
        if (two('=')) {
          tok->text = "<=";
          Advance();
          Advance();
        } else if (two('>')) {
          tok->text = "!=";
          Advance();
          Advance();
        } else {
          tok->text = "<";
          Advance();
        }
        return Status::OK();
      case '>':
        if (two('=')) {
          tok->text = ">=";
          Advance();
          Advance();
        } else {
          tok->text = ">";
          Advance();
        }
        return Status::OK();
      case '|':
        if (two('|')) {
          tok->text = "||";
          Advance();
          Advance();
          return Status::OK();
        }
        break;
      default:
        break;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line_) +
                              ", column " + std::to_string(col_));
  }

  const std::string& sql_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  return Lexer(sql).Run();
}

}  // namespace dbspinner
