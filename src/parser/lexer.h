// SQL tokenizer.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbspinner {

enum class TokenType {
  kIdentifier,   ///< bare or "quoted" identifier / keyword (keywords are
                 ///< recognized case-insensitively by the parser)
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kSymbol,       ///< operator or punctuation; `text` holds the lexeme
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      ///< identifier (original case), symbol, or string body
  int64_t int_value = 0;
  double float_value = 0;
  size_t line = 1;
  size_t column = 1;

  std::string Describe() const;
};

/// Tokenizes `sql`. Symbols produced: ( ) , . ; + - * / % = != <> < <= > >=
/// || and standalone |. Comments: `-- ...\n` and `/* ... */`.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dbspinner
