// Abstract syntax tree produced by the SQL parser (unbound names).
//
// The grammar covers everything the paper's workloads need: SELECT with
// inner/left joins, GROUP BY/HAVING, ORDER BY/LIMIT, UNION [ALL], scalar
// functions, CASE, CAST, plus the WITH [RECURSIVE|ITERATIVE] clause and the
// DDL/DML statements used by the external/stored-procedure baselines
// (CREATE TABLE / INSERT / UPDATE [FROM] / DELETE / DROP TABLE), and EXPLAIN.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace dbspinner {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct ParseExpr;
using ParseExprPtr = std::unique_ptr<ParseExpr>;

enum class ParseExprKind {
  kLiteral,
  kColumnRef,
  kStar,        ///< `*` or `COUNT(*)` argument
  kBinaryOp,
  kUnaryOp,
  kFunctionCall,
  kCase,
  kCast,
  kIsNull,      ///< IS [NOT] NULL
  kIn,          ///< expr [NOT] IN (literal, ...)
  kBetween,     ///< expr BETWEEN lo AND hi
  kLike,        ///< expr [NOT] LIKE 'pattern' (% and _ wildcards)
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kConcat,
};

enum class UnaryOp { kNeg, kNot };

const char* BinaryOpName(BinaryOp op);

/// One node of an (unbound) expression tree.
struct ParseExpr {
  ParseExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: optional qualifier ("t.col"); names normalized lower-case.
  std::string qualifier;
  std::string column_name;

  // kBinaryOp / kUnaryOp
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;

  // kFunctionCall: normalized lower-case function name; `distinct` for
  // aggregate arguments (COUNT(DISTINCT x)).
  std::string function_name;
  bool distinct = false;

  // kCast
  TypeId cast_type = TypeId::kNull;

  // kIsNull / kIn
  bool negated = false;

  // Children. Layout by kind:
  //   kBinaryOp: [lhs, rhs]            kUnaryOp: [operand]
  //   kFunctionCall: args              kCast: [operand]
  //   kIsNull: [operand]               kIn: [operand, item...]
  //   kBetween: [operand, lo, hi]
  //   kCase: [when1, then1, when2, then2, ..., else?] — `case_has_else`
  std::vector<ParseExprPtr> children;
  bool case_has_else = false;

  /// Deep copy.
  ParseExprPtr Clone() const;

  /// SQL-ish rendering for diagnostics and plan printing.
  std::string ToString() const;
};

ParseExprPtr MakeLiteral(Value v);
ParseExprPtr MakeColumnRef(std::string qualifier, std::string column);
ParseExprPtr MakeBinary(BinaryOp op, ParseExprPtr l, ParseExprPtr r);
ParseExprPtr MakeUnary(UnaryOp op, ParseExprPtr operand);
ParseExprPtr MakeFunction(std::string name, std::vector<ParseExprPtr> args);

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

struct QueryNode;
using QueryNodePtr = std::unique_ptr<QueryNode>;

enum class JoinType { kInner, kLeft };

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

enum class TableRefKind { kBase, kJoin, kSubquery };

/// FROM-clause item: base table, join, or derived table.
struct TableRef {
  TableRefKind kind;

  // kBase
  std::string table_name;  ///< also resolves to CTEs in scope
  // kBase / kSubquery
  std::string alias;       ///< empty if none

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ParseExprPtr join_condition;  ///< ON expr (null for CROSS JOIN)

  // kSubquery
  QueryNodePtr subquery;

  TableRefPtr Clone() const;
};

// ---------------------------------------------------------------------------
// Query nodes (SELECT core and set operations)
// ---------------------------------------------------------------------------

struct SelectItem {
  ParseExprPtr expr;
  std::string alias;  ///< empty if none

  SelectItem Clone() const;
};

struct OrderByItem {
  ParseExprPtr expr;
  bool descending = false;
};

enum class QueryNodeKind { kSelect, kSetOp };
enum class SetOpKind { kUnion, kUnionAll, kExcept, kIntersect };

/// A SELECT block or a set operation over two query nodes.
struct QueryNode {
  QueryNodeKind kind;

  // --- kSelect ---
  bool distinct = false;
  std::vector<SelectItem> select_list;
  TableRefPtr from;       ///< null => SELECT of constants
  ParseExprPtr where;     ///< null if absent
  std::vector<ParseExprPtr> group_by;
  ParseExprPtr having;    ///< null if absent

  // --- kSetOp ---
  SetOpKind set_op = SetOpKind::kUnion;
  QueryNodePtr left;
  QueryNodePtr right;

  // ORDER BY / LIMIT [OFFSET] may attach to either kind (applies to the
  // whole node).
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  int64_t offset = 0;

  QueryNodePtr Clone() const;
};

// ---------------------------------------------------------------------------
// WITH clause
// ---------------------------------------------------------------------------

enum class CteKind { kRegular, kRecursive, kIterative };

/// Termination condition of an iterative CTE (paper §II, §VI-B).
struct TerminationCondition {
  enum class Kind {
    kIterations,  ///< UNTIL n ITERATIONS           (Metadata)
    kUpdates,     ///< UNTIL n UPDATES: stop when an iteration updates < n rows (Metadata)
    kAny,         ///< UNTIL ANY(expr): stop when >= 1 row satisfies expr (Data)
    kAll,         ///< UNTIL ALL(expr): stop when every row satisfies expr (Data)
    kDeltaLess,   ///< UNTIL DELTA < n: stop when < n rows changed vs previous iteration (Delta)
  };
  Kind kind = Kind::kIterations;
  int64_t n = 0;
  ParseExprPtr expr;  ///< for kAny/kAll, evaluated over the CTE table

  TerminationCondition Clone() const;
  std::string ToString() const;
  /// "Metadata" / "Data" / "Delta" — the Type field of Fig 3/4.
  const char* TypeName() const;
};

/// One CTE definition within a WITH clause.
struct CteDef {
  std::string name;
  std::vector<std::string> column_names;  ///< optional rename list
  CteKind kind = CteKind::kRegular;

  /// kRegular / kRecursive: the defining query (for recursive CTEs the
  /// top-level node must be a UNION [ALL] of base and recursive parts).
  QueryNodePtr query;

  // kIterative:
  QueryNodePtr init_query;  ///< R0
  QueryNodePtr iter_query;  ///< Ri
  TerminationCondition until;
  /// Optional `KEY (col)` marker naming the unique row identifier used for
  /// merging updates; defaults to the first column (see DESIGN.md).
  std::optional<std::string> key_column;

  CteDef Clone() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kCreateTable,
  kInsert,
  kUpdate,
  kDelete,
  kDropTable,
  kCreateView,   ///< CREATE MATERIALIZED VIEW v AS <query>
  kDropView,     ///< DROP MATERIALIZED VIEW [IF EXISTS] v
  kRefreshView,  ///< REFRESH MATERIALIZED VIEW v (forced full recompute)
  kExplain,
  kBegin,     ///< BEGIN [TRANSACTION]
  kCommit,    ///< COMMIT
  kRollback,  ///< ROLLBACK
  kCopy,      ///< COPY t TO/FROM 'file' [DELIMITER 'c']
};

struct ColumnDef {
  std::string name;
  TypeId type;
  bool primary_key = false;
};

struct Statement;
using StatementPtr = std::unique_ptr<Statement>;

/// A single parsed SQL statement.
struct Statement {
  StatementKind kind;

  // kSelect
  std::vector<CteDef> ctes;
  QueryNodePtr query;

  // kCreateTable: column definitions, or (CREATE TABLE ... AS) a source
  // query whose result seeds the table. kCreateView reuses `table_name`
  // (view name), `if_not_exists`, and `ctas_query` (the view body);
  // kDropView/kRefreshView reuse `table_name` (and `if_exists`).
  std::string table_name;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
  QueryNodePtr ctas_query;  ///< non-null for CREATE TABLE ... AS SELECT

  // kInsert: either VALUES rows or a source query (with optional CTEs).
  std::vector<std::vector<ParseExprPtr>> insert_values;
  QueryNodePtr insert_query;
  std::vector<std::string> insert_columns;  ///< optional target column list

  // kUpdate: SET assignments with optional FROM table and WHERE.
  std::vector<std::pair<std::string, ParseExprPtr>> set_clauses;
  TableRefPtr update_from;  ///< UPDATE t SET ... FROM <ref> WHERE ...
  ParseExprPtr where;       ///< also used by kDelete

  // kDropTable
  bool if_exists = false;

  // kExplain
  StatementPtr explained;
  bool explain_cost = false;     ///< EXPLAIN COST: include cost estimates
  bool explain_analyze = false;  ///< EXPLAIN ANALYZE: run + per-step timings
  bool explain_verify = false;   ///< EXPLAIN (VERIFY): append the static
                                 ///< verifier's report for the final program

  // kCopy
  bool copy_to = false;  ///< true: export (TO); false: import (FROM)
  std::string copy_path;
  char copy_delimiter = ',';
};

}  // namespace dbspinner
