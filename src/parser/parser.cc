#include "parser/parser.h"

#include <unordered_set>

#include "common/string_util.h"
#include "parser/lexer.h"

namespace dbspinner {

namespace {

// Reserved words that may not be used as implicit (AS-less) aliases.
const std::unordered_set<std::string>& ReservedWords() {
  static const std::unordered_set<std::string> kReserved = {
      "SELECT", "FROM",   "WHERE",  "GROUP",   "HAVING", "ORDER",  "LIMIT",
      "UNION",  "ALL",    "JOIN",   "LEFT",    "RIGHT",  "INNER",  "OUTER",
      "CROSS",  "ON",     "AS",     "ITERATE", "UNTIL",  "SET",    "VALUES",
      "WITH",   "AND",    "OR",     "NOT",     "CASE",   "WHEN",   "THEN",
      "ELSE",   "END",    "IS",     "NULL",    "IN",     "BETWEEN","DISTINCT",
      "INSERT", "UPDATE", "DELETE", "CREATE",  "DROP",   "EXPLAIN","BY",
      "INTO",   "TABLE",  "PRIMARY", "ASC",    "DESC",   "EXISTS",
      "IF",     "RECURSIVE", "ITERATIVE", "TRUE", "FALSE", "CAST",
      "EXCEPT", "INTERSECT", "OFFSET", "LIKE",
      // KEY / ITERATIONS / UPDATES / DELTA / ANY are contextual keywords
      // (they appear as column names in the paper's queries).
  };
  return kReserved;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseScriptTop() {
    std::vector<StatementPtr> out;
    while (!AtEnd()) {
      if (MatchSymbol(";")) continue;
      DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementTop());
      out.push_back(std::move(stmt));
    }
    return out;
  }

  Result<StatementPtr> ParseSingleStatement() {
    DBSP_ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatementTop());
    MatchSymbol(";");
    if (!AtEnd()) {
      return Err("unexpected " + Peek().Describe() + " after statement");
    }
    return stmt;
  }

  Result<ParseExprPtr> ParseSingleExpression() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr_());
    if (!AtEnd()) {
      return Err("unexpected " + Peek().Describe() + " after expression");
    }
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(const std::string& kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Err("expected " + kw + ", found " + Peek().Describe());
  }
  bool PeekSymbol(const std::string& sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool MatchSymbol(const std::string& sym) {
    if (PeekSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Err("expected '" + sym + "', found " + Peek().Describe());
  }

  Status Err(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " (line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) + ")");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Err(std::string("expected ") + what + ", found " +
                 Peek().Describe());
    }
    return Advance().text;
  }

  bool PeekNonReservedIdentifier() const {
    return Peek().type == TokenType::kIdentifier &&
           !ReservedWords().count(ToUpper(Peek().text));
  }

  // --- statements ----------------------------------------------------------

  Result<StatementPtr> ParseStatementTop() {
    if (PeekKeyword("EXPLAIN")) return ParseExplain();
    if (PeekKeyword("SELECT") || PeekKeyword("WITH") || PeekSymbol("(")) {
      return ParseSelectStatement();
    }
    if (PeekKeyword("CREATE")) return ParseCreateTable();
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("DROP")) return ParseDropTable();
    if (MatchKeyword("BEGIN")) {
      MatchKeyword("TRANSACTION");
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kBegin;
      return stmt;
    }
    if (MatchKeyword("COMMIT")) {
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kCommit;
      return stmt;
    }
    if (MatchKeyword("ROLLBACK")) {
      auto stmt = std::make_unique<Statement>();
      stmt->kind = StatementKind::kRollback;
      return stmt;
    }
    if (PeekKeyword("COPY")) return ParseCopy();
    if (PeekKeyword("REFRESH")) return ParseRefreshView();
    return Err("expected a statement, found " + Peek().Describe());
  }

  Result<StatementPtr> ParseExplain() {
    Advance();  // EXPLAIN
    bool with_cost = false;
    bool with_analyze = false;
    bool with_verify = false;
    if (MatchSymbol("(")) {
      // EXPLAIN (opt, opt, ...): parenthesized option list.
      do {
        if (MatchKeyword("COST")) {
          with_cost = true;
        } else if (MatchKeyword("ANALYZE")) {
          with_analyze = true;
        } else if (MatchKeyword("VERIFY")) {
          with_verify = true;
        } else {
          return Err("expected an EXPLAIN option (COST, ANALYZE, VERIFY), "
                     "found " +
                     Peek().Describe());
        }
      } while (MatchSymbol(","));
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      // Bare options, in any order.
      for (bool progressed = true; progressed;) {
        progressed = false;
        if (!with_cost && MatchKeyword("COST")) {
          with_cost = progressed = true;
        }
        if (!with_analyze && MatchKeyword("ANALYZE")) {
          with_analyze = progressed = true;
        }
        if (!with_verify && MatchKeyword("VERIFY")) {
          with_verify = progressed = true;
        }
      }
    }
    DBSP_ASSIGN_OR_RETURN(StatementPtr inner, ParseStatementTop());
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kExplain;
    stmt->explained = std::move(inner);
    stmt->explain_cost = with_cost;
    stmt->explain_analyze = with_analyze;
    stmt->explain_verify = with_verify;
    return stmt;
  }

  Result<StatementPtr> ParseSelectStatement() {
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kSelect;
    if (PeekKeyword("WITH")) {
      DBSP_ASSIGN_OR_RETURN(stmt->ctes, ParseWithClause());
    }
    DBSP_ASSIGN_OR_RETURN(stmt->query, ParseQueryExpr());
    return stmt;
  }

  Result<std::vector<CteDef>> ParseWithClause() {
    DBSP_RETURN_NOT_OK(ExpectKeyword("WITH"));
    CteKind default_kind = CteKind::kRegular;
    if (MatchKeyword("RECURSIVE")) {
      default_kind = CteKind::kRecursive;
    } else if (MatchKeyword("ITERATIVE")) {
      default_kind = CteKind::kIterative;
    }
    std::vector<CteDef> defs;
    bool recursive_with = default_kind == CteKind::kRecursive;
    while (true) {
      DBSP_ASSIGN_OR_RETURN(CteDef def, ParseCteDef(default_kind));
      defs.push_back(std::move(def));
      if (!MatchSymbol(",")) break;
      // ITERATIVE marks only the def it precedes; RECURSIVE (as in standard
      // SQL) covers the whole WITH list. A per-CTE marker may re-introduce
      // either kind: `..., ITERATIVE foo AS (...)`.
      default_kind = recursive_with ? CteKind::kRecursive : CteKind::kRegular;
      if (MatchKeyword("ITERATIVE")) {
        default_kind = CteKind::kIterative;
      } else if (MatchKeyword("RECURSIVE")) {
        default_kind = CteKind::kRecursive;
      }
    }
    return defs;
  }

  Result<CteDef> ParseCteDef(CteKind default_kind) {
    CteDef def;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("CTE name"));
    def.name = ToLower(name);
    if (MatchSymbol("(")) {
      while (true) {
        DBSP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        def.column_names.push_back(ToLower(col));
        if (!MatchSymbol(",")) break;
      }
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (MatchKeyword("KEY")) {
      DBSP_RETURN_NOT_OK(ExpectSymbol("("));
      DBSP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("key column"));
      def.key_column = ToLower(col);
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    DBSP_RETURN_NOT_OK(ExpectKeyword("AS"));
    DBSP_RETURN_NOT_OK(ExpectSymbol("("));
    DBSP_ASSIGN_OR_RETURN(def.query, ParseQueryExpr());
    if (PeekKeyword("ITERATE")) {
      if (default_kind != CteKind::kIterative) {
        return Err("ITERATE requires WITH ITERATIVE");
      }
      Advance();  // ITERATE
      def.kind = CteKind::kIterative;
      def.init_query = std::move(def.query);
      DBSP_ASSIGN_OR_RETURN(def.iter_query, ParseQueryExpr());
      DBSP_RETURN_NOT_OK(ExpectKeyword("UNTIL"));
      DBSP_ASSIGN_OR_RETURN(def.until, ParseTermination());
    } else if (default_kind == CteKind::kIterative) {
      return Err("WITH ITERATIVE CTE '" + def.name +
                 "' is missing an ITERATE clause");
    } else {
      def.kind = default_kind;
    }
    DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    return def;
  }

  Result<TerminationCondition> ParseTermination() {
    TerminationCondition tc;
    if (Peek().type == TokenType::kIntLiteral) {
      tc.n = Advance().int_value;
      if (MatchKeyword("ITERATIONS") || MatchKeyword("ITERATION")) {
        tc.kind = TerminationCondition::Kind::kIterations;
      } else if (MatchKeyword("UPDATES") || MatchKeyword("UPDATE")) {
        tc.kind = TerminationCondition::Kind::kUpdates;
      } else {
        return Err("expected ITERATIONS or UPDATES after count");
      }
      // 0 is allowed: UNTIL 0 ITERATIONS / 0 UPDATES never enters the loop
      // body, so the CTE is just its non-iterative part (the executor's
      // InitLoop pre-check skips the body entirely).
      if (tc.n < 0) return Err("termination count must be non-negative");
      return tc;
    }
    if (MatchKeyword("DELTA")) {
      DBSP_RETURN_NOT_OK(ExpectSymbol("<"));
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("expected integer after DELTA <");
      }
      tc.kind = TerminationCondition::Kind::kDeltaLess;
      tc.n = Advance().int_value;
      if (tc.n <= 0) return Err("DELTA bound must be positive");
      return tc;
    }
    if (MatchKeyword("ANY")) {
      DBSP_RETURN_NOT_OK(ExpectSymbol("("));
      tc.kind = TerminationCondition::Kind::kAny;
      DBSP_ASSIGN_OR_RETURN(tc.expr, ParseExpr_());
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
      return tc;
    }
    if (MatchKeyword("ALL")) {
      DBSP_RETURN_NOT_OK(ExpectSymbol("("));
      tc.kind = TerminationCondition::Kind::kAll;
      DBSP_ASSIGN_OR_RETURN(tc.expr, ParseExpr_());
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
      return tc;
    }
    return Err("expected termination condition after UNTIL");
  }

  Result<StatementPtr> ParseCopy() {
    Advance();  // COPY
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kCopy;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    if (MatchKeyword("TO")) {
      stmt->copy_to = true;
    } else if (MatchKeyword("FROM")) {
      stmt->copy_to = false;
    } else {
      return Err("expected TO or FROM in COPY");
    }
    if (Peek().type != TokenType::kStringLiteral) {
      return Err("expected a quoted file path in COPY");
    }
    stmt->copy_path = Advance().text;
    if (MatchKeyword("DELIMITER")) {
      if (Peek().type != TokenType::kStringLiteral ||
          Peek().text.size() != 1) {
        return Err("DELIMITER expects a single-character string");
      }
      stmt->copy_delimiter = Advance().text[0];
    }
    return stmt;
  }

  Result<StatementPtr> ParseCreateTable() {
    Advance();  // CREATE
    if (PeekKeyword("MATERIALIZED")) return ParseCreateView();
    DBSP_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kCreateTable;
    if (PeekKeyword("IF") && PeekKeyword("NOT", 1) && PeekKeyword("EXISTS", 2)) {
      pos_ += 3;
      stmt->if_not_exists = true;
    }
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    if (MatchKeyword("AS")) {
      // CREATE TABLE ... AS [WITH ...] SELECT ...
      if (PeekKeyword("WITH")) {
        DBSP_ASSIGN_OR_RETURN(stmt->ctes, ParseWithClause());
      }
      DBSP_ASSIGN_OR_RETURN(stmt->ctas_query, ParseQueryExpr());
      return stmt;
    }
    DBSP_RETURN_NOT_OK(ExpectSymbol("("));
    while (true) {
      ColumnDef col;
      DBSP_ASSIGN_OR_RETURN(std::string cname, ExpectIdentifier("column name"));
      col.name = ToLower(cname);
      DBSP_ASSIGN_OR_RETURN(std::string tname, ExpectIdentifier("type name"));
      DBSP_ASSIGN_OR_RETURN(col.type, ParseTypeName(tname));
      if (MatchKeyword("PRIMARY")) {
        DBSP_RETURN_NOT_OK(ExpectKeyword("KEY"));
        col.primary_key = true;
      }
      stmt->columns.push_back(std::move(col));
      if (!MatchSymbol(",")) break;
    }
    DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    return stmt;
  }

  Result<StatementPtr> ParseInsert() {
    Advance();  // INSERT
    DBSP_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kInsert;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    if (PeekSymbol("(") &&
        !(PeekKeyword("SELECT", 1) || PeekKeyword("WITH", 1))) {
      // Target column list (a '(' followed by SELECT/WITH is a source query).
      Advance();
      while (true) {
        DBSP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->insert_columns.push_back(ToLower(col));
        if (!MatchSymbol(",")) break;
      }
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    if (MatchKeyword("VALUES")) {
      while (true) {
        DBSP_RETURN_NOT_OK(ExpectSymbol("("));
        std::vector<ParseExprPtr> row;
        while (true) {
          DBSP_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr_());
          row.push_back(std::move(e));
          if (!MatchSymbol(",")) break;
        }
        DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
        stmt->insert_values.push_back(std::move(row));
        if (!MatchSymbol(",")) break;
      }
    } else {
      if (PeekKeyword("WITH")) {
        DBSP_ASSIGN_OR_RETURN(stmt->ctes, ParseWithClause());
      }
      DBSP_ASSIGN_OR_RETURN(stmt->insert_query, ParseQueryExpr());
    }
    return stmt;
  }

  Result<StatementPtr> ParseUpdate() {
    Advance();  // UPDATE
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kUpdate;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    DBSP_RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      DBSP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      DBSP_RETURN_NOT_OK(ExpectSymbol("="));
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr_());
      stmt->set_clauses.emplace_back(ToLower(col), std::move(e));
      if (!MatchSymbol(",")) break;
    }
    if (MatchKeyword("FROM")) {
      DBSP_ASSIGN_OR_RETURN(stmt->update_from, ParseTableRef());
    }
    if (MatchKeyword("WHERE")) {
      DBSP_ASSIGN_OR_RETURN(stmt->where, ParseExpr_());
    }
    return stmt;
  }

  Result<StatementPtr> ParseDelete() {
    Advance();  // DELETE
    DBSP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kDelete;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    if (MatchKeyword("WHERE")) {
      DBSP_ASSIGN_OR_RETURN(stmt->where, ParseExpr_());
    }
    return stmt;
  }

  Result<StatementPtr> ParseDropTable() {
    Advance();  // DROP
    if (PeekKeyword("MATERIALIZED")) return ParseDropView();
    DBSP_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kDropTable;
    if (PeekKeyword("IF") && PeekKeyword("EXISTS", 1)) {
      pos_ += 2;
      stmt->if_exists = true;
    }
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    stmt->table_name = ToLower(name);
    return stmt;
  }

  // CREATE MATERIALIZED VIEW [IF NOT EXISTS] v AS <query-expr>. The body is
  // a bare query expression: WITH-clause bodies are rejected so a view's
  // definition stays renderable/re-parseable for the manifest (and iterative
  // CTE bodies, which cannot be incrementally maintained, never sneak in).
  Result<StatementPtr> ParseCreateView() {
    DBSP_RETURN_NOT_OK(ExpectKeyword("MATERIALIZED"));
    DBSP_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kCreateView;
    if (PeekKeyword("IF") && PeekKeyword("NOT", 1) && PeekKeyword("EXISTS", 2)) {
      pos_ += 3;
      stmt->if_not_exists = true;
    }
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
    stmt->table_name = ToLower(name);
    DBSP_RETURN_NOT_OK(ExpectKeyword("AS"));
    if (PeekKeyword("WITH")) {
      return Err("materialized view bodies cannot use WITH; inline the CTE");
    }
    DBSP_ASSIGN_OR_RETURN(stmt->ctas_query, ParseQueryExpr());
    return stmt;
  }

  Result<StatementPtr> ParseDropView() {
    DBSP_RETURN_NOT_OK(ExpectKeyword("MATERIALIZED"));
    DBSP_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kDropView;
    if (PeekKeyword("IF") && PeekKeyword("EXISTS", 1)) {
      pos_ += 2;
      stmt->if_exists = true;
    }
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
    stmt->table_name = ToLower(name);
    return stmt;
  }

  Result<StatementPtr> ParseRefreshView() {
    Advance();  // REFRESH
    DBSP_RETURN_NOT_OK(ExpectKeyword("MATERIALIZED"));
    DBSP_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    auto stmt = std::make_unique<Statement>();
    stmt->kind = StatementKind::kRefreshView;
    DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
    stmt->table_name = ToLower(name);
    return stmt;
  }

  // --- query expressions ---------------------------------------------------

  Result<QueryNodePtr> ParseQueryExpr() {
    DBSP_ASSIGN_OR_RETURN(QueryNodePtr left, ParseQueryTerm());
    while (PeekKeyword("UNION") || PeekKeyword("EXCEPT") ||
           PeekKeyword("INTERSECT")) {
      SetOpKind op;
      if (MatchKeyword("UNION")) {
        op = MatchKeyword("ALL") ? SetOpKind::kUnionAll : SetOpKind::kUnion;
      } else if (MatchKeyword("EXCEPT")) {
        op = SetOpKind::kExcept;
      } else {
        Advance();  // INTERSECT
        op = SetOpKind::kIntersect;
      }
      DBSP_ASSIGN_OR_RETURN(QueryNodePtr right, ParseQueryTerm());
      auto node = std::make_unique<QueryNode>();
      node->kind = QueryNodeKind::kSetOp;
      node->set_op = op;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    if (MatchKeyword("ORDER")) {
      DBSP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderByItem item;
        DBSP_ASSIGN_OR_RETURN(item.expr, ParseExpr_());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        left->order_by.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("expected integer after LIMIT");
      }
      left->limit = Advance().int_value;
      if (MatchKeyword("OFFSET")) {
        if (Peek().type != TokenType::kIntLiteral) {
          return Err("expected integer after OFFSET");
        }
        left->offset = Advance().int_value;
      }
    } else if (MatchKeyword("OFFSET")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Err("expected integer after OFFSET");
      }
      left->offset = Advance().int_value;
    }
    return left;
  }

  Result<QueryNodePtr> ParseQueryTerm() {
    if (MatchSymbol("(")) {
      DBSP_ASSIGN_OR_RETURN(QueryNodePtr inner, ParseQueryExpr());
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return ParseSelectCore();
  }

  Result<QueryNodePtr> ParseSelectCore() {
    DBSP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto node = std::make_unique<QueryNode>();
    node->kind = QueryNodeKind::kSelect;
    node->distinct = MatchKeyword("DISTINCT");
    // Select list.
    while (true) {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.expr = std::make_unique<ParseExpr>();
        item.expr->kind = ParseExprKind::kStar;
      } else if (PeekNonReservedIdentifier() && PeekSymbol(".", 1) &&
                 PeekSymbol("*", 2)) {
        // qualified star: t.*
        item.expr = std::make_unique<ParseExpr>();
        item.expr->kind = ParseExprKind::kStar;
        item.expr->qualifier = ToLower(Advance().text);
        Advance();  // .
        Advance();  // *
      } else {
        DBSP_ASSIGN_OR_RETURN(item.expr, ParseExpr_());
      }
      if (MatchKeyword("AS")) {
        DBSP_ASSIGN_OR_RETURN(std::string alias, ExpectIdentifier("alias"));
        item.alias = ToLower(alias);
      } else if (PeekNonReservedIdentifier()) {
        item.alias = ToLower(Advance().text);
      }
      node->select_list.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
    if (MatchKeyword("FROM")) {
      DBSP_ASSIGN_OR_RETURN(node->from, ParseFromClause());
    }
    if (MatchKeyword("WHERE")) {
      DBSP_ASSIGN_OR_RETURN(node->where, ParseExpr_());
    }
    if (MatchKeyword("GROUP")) {
      DBSP_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        DBSP_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr_());
        node->group_by.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("HAVING")) {
      DBSP_ASSIGN_OR_RETURN(node->having, ParseExpr_());
    }
    return node;
  }

  Result<TableRefPtr> ParseFromClause() {
    DBSP_ASSIGN_OR_RETURN(TableRefPtr left, ParseTableRef());
    // Comma-separated FROM items are cross joins.
    while (MatchSymbol(",")) {
      DBSP_ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRef());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->join_type = JoinType::kInner;
      join->left = std::move(left);
      join->right = std::move(right);
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTableRef() {
    DBSP_ASSIGN_OR_RETURN(TableRefPtr left, ParseTablePrimary());
    while (true) {
      JoinType type = JoinType::kInner;
      bool is_cross = false;
      if (PeekKeyword("JOIN")) {
        Advance();
      } else if (PeekKeyword("INNER") && PeekKeyword("JOIN", 1)) {
        pos_ += 2;
      } else if (PeekKeyword("LEFT")) {
        Advance();
        MatchKeyword("OUTER");
        DBSP_RETURN_NOT_OK(ExpectKeyword("JOIN"));
        type = JoinType::kLeft;
      } else if (PeekKeyword("CROSS") && PeekKeyword("JOIN", 1)) {
        pos_ += 2;
        is_cross = true;
      } else {
        break;
      }
      DBSP_ASSIGN_OR_RETURN(TableRefPtr right, ParseTablePrimary());
      auto join = std::make_unique<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->join_type = type;
      join->left = std::move(left);
      join->right = std::move(right);
      if (!is_cross) {
        DBSP_RETURN_NOT_OK(ExpectKeyword("ON"));
        DBSP_ASSIGN_OR_RETURN(join->join_condition, ParseExpr_());
      }
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTablePrimary() {
    auto ref = std::make_unique<TableRef>();
    if (MatchSymbol("(")) {
      ref->kind = TableRefKind::kSubquery;
      DBSP_ASSIGN_OR_RETURN(ref->subquery, ParseQueryExpr());
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    } else {
      DBSP_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
      ref->kind = TableRefKind::kBase;
      ref->table_name = ToLower(name);
    }
    if (MatchKeyword("AS")) {
      DBSP_ASSIGN_OR_RETURN(std::string alias, ExpectIdentifier("alias"));
      ref->alias = ToLower(alias);
    } else if (PeekNonReservedIdentifier()) {
      ref->alias = ToLower(Advance().text);
    }
    return ref;
  }

  // --- expressions (precedence climbing) -----------------------------------

  Result<ParseExprPtr> ParseExpr_() { return ParseOr(); }

  Result<ParseExprPtr> ParseOr() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseAnd() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ParseExprPtr> ParseComparison() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (PeekKeyword("IS")) {
      Advance();
      bool negated = MatchKeyword("NOT");
      DBSP_RETURN_NOT_OK(ExpectKeyword("NULL"));
      auto e = std::make_unique<ParseExpr>();
      e->kind = ParseExprKind::kIsNull;
      e->negated = negated;
      e->children.push_back(std::move(left));
      return e;
    }
    // [NOT] IN ( ... ) / [NOT] BETWEEN lo AND hi / [NOT] LIKE pattern
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("IN", 1) || PeekKeyword("BETWEEN", 1) ||
         PeekKeyword("LIKE", 1))) {
      Advance();
      negated = true;
    }
    if (PeekKeyword("LIKE")) {
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr pattern, ParseAdditive());
      auto e = std::make_unique<ParseExpr>();
      e->kind = ParseExprKind::kLike;
      e->negated = negated;
      e->children.push_back(std::move(left));
      e->children.push_back(std::move(pattern));
      return e;
    }
    if (PeekKeyword("IN")) {
      Advance();
      DBSP_RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_unique<ParseExpr>();
      e->kind = ParseExprKind::kIn;
      e->negated = negated;
      e->children.push_back(std::move(left));
      while (true) {
        DBSP_ASSIGN_OR_RETURN(ParseExprPtr item, ParseExpr_());
        e->children.push_back(std::move(item));
        if (!MatchSymbol(",")) break;
      }
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    if (PeekKeyword("BETWEEN")) {
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr lo, ParseAdditive());
      DBSP_RETURN_NOT_OK(ExpectKeyword("AND"));
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr hi, ParseAdditive());
      auto e = std::make_unique<ParseExpr>();
      e->kind = ParseExprKind::kBetween;
      e->children.push_back(std::move(left));
      e->children.push_back(std::move(lo));
      e->children.push_back(std::move(hi));
      ParseExprPtr result = std::move(e);
      if (negated) result = MakeUnary(UnaryOp::kNot, std::move(result));
      return result;
    }
    static const std::pair<const char*, BinaryOp> kCmps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kCmps) {
      if (PeekSymbol(sym)) {
        Advance();
        DBSP_ASSIGN_OR_RETURN(ParseExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ParseExprPtr> ParseAdditive() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (PeekSymbol("-")) {
        op = BinaryOp::kSub;
      } else if (PeekSymbol("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseMultiplicative() {
    DBSP_ASSIGN_OR_RETURN(ParseExprPtr left, ParseUnaryExpr());
    while (true) {
      BinaryOp op;
      if (PeekSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (PeekSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (PeekSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      Advance();
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr right, ParseUnaryExpr());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ParseExprPtr> ParseUnaryExpr() {
    if (MatchSymbol("-")) {
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr operand, ParseUnaryExpr());
      // Fold negative literals immediately for cleaner plans.
      if (operand->kind == ParseExprKind::kLiteral &&
          !operand->literal.is_null()) {
        if (operand->literal.type() == TypeId::kInt64) {
          return MakeLiteral(Value::Int64(-operand->literal.int64_value()));
        }
        if (operand->literal.type() == TypeId::kDouble) {
          return MakeLiteral(Value::Double(-operand->literal.double_value()));
        }
      }
      return MakeUnary(UnaryOp::kNeg, std::move(operand));
    }
    MatchSymbol("+");
    return ParsePrimary();
  }

  Result<ParseExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral:
        Advance();
        return MakeLiteral(Value::Int64(t.int_value));
      case TokenType::kFloatLiteral:
        Advance();
        return MakeLiteral(Value::Double(t.float_value));
      case TokenType::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          DBSP_ASSIGN_OR_RETURN(ParseExprPtr e, ParseExpr_());
          DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
          return e;
        }
        break;
      case TokenType::kIdentifier:
        return ParseIdentifierExpr();
      case TokenType::kEnd:
        break;
    }
    return Err("expected an expression, found " + Peek().Describe());
  }

  Result<ParseExprPtr> ParseIdentifierExpr() {
    if (MatchKeyword("NULL")) return MakeLiteral(Value::Null());
    if (MatchKeyword("TRUE")) return MakeLiteral(Value::Bool(true));
    if (MatchKeyword("FALSE")) return MakeLiteral(Value::Bool(false));
    if (PeekKeyword("CASE")) return ParseCase();
    if (PeekKeyword("CAST")) return ParseCast();

    // Reserved words may not start an expression (quote them to use as
    // identifiers).
    if (ReservedWords().count(ToUpper(Peek().text))) {
      return Err("unexpected keyword " + Peek().Describe() +
                 " in expression");
    }
    std::string first = Advance().text;

    // Function call?
    if (PeekSymbol("(")) {
      Advance();
      auto e = std::make_unique<ParseExpr>();
      e->kind = ParseExprKind::kFunctionCall;
      e->function_name = ToLower(first);
      if (MatchKeyword("DISTINCT")) e->distinct = true;
      if (PeekSymbol("*")) {
        Advance();
        auto star = std::make_unique<ParseExpr>();
        star->kind = ParseExprKind::kStar;
        e->children.push_back(std::move(star));
      } else if (!PeekSymbol(")")) {
        while (true) {
          DBSP_ASSIGN_OR_RETURN(ParseExprPtr arg, ParseExpr_());
          e->children.push_back(std::move(arg));
          if (!MatchSymbol(",")) break;
        }
      }
      DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }

    // Qualified column: t.col
    if (PeekSymbol(".")) {
      Advance();
      DBSP_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      return MakeColumnRef(first, col);
    }
    return MakeColumnRef("", first);
  }

  Result<ParseExprPtr> ParseCase() {
    Advance();  // CASE
    auto e = std::make_unique<ParseExpr>();
    e->kind = ParseExprKind::kCase;
    // Simple CASE (CASE x WHEN v ...) is normalized to searched CASE.
    ParseExprPtr operand;
    if (!PeekKeyword("WHEN")) {
      DBSP_ASSIGN_OR_RETURN(operand, ParseExpr_());
    }
    if (!PeekKeyword("WHEN")) return Err("expected WHEN in CASE");
    while (MatchKeyword("WHEN")) {
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr when, ParseExpr_());
      if (operand) {
        when = MakeBinary(BinaryOp::kEq, operand->Clone(), std::move(when));
      }
      DBSP_RETURN_NOT_OK(ExpectKeyword("THEN"));
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr then, ParseExpr_());
      e->children.push_back(std::move(when));
      e->children.push_back(std::move(then));
    }
    if (MatchKeyword("ELSE")) {
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr els, ParseExpr_());
      e->children.push_back(std::move(els));
      e->case_has_else = true;
    }
    DBSP_RETURN_NOT_OK(ExpectKeyword("END"));
    return e;
  }

  Result<ParseExprPtr> ParseCast() {
    Advance();  // CAST
    DBSP_RETURN_NOT_OK(ExpectSymbol("("));
    auto e = std::make_unique<ParseExpr>();
    e->kind = ParseExprKind::kCast;
    {
      DBSP_ASSIGN_OR_RETURN(ParseExprPtr operand, ParseExpr_());
      e->children.push_back(std::move(operand));
    }
    DBSP_RETURN_NOT_OK(ExpectKeyword("AS"));
    DBSP_ASSIGN_OR_RETURN(std::string tname, ExpectIdentifier("type name"));
    // Allow two-word "DOUBLE PRECISION".
    if (EqualsIgnoreCase(tname, "DOUBLE") && PeekKeyword("PRECISION")) {
      Advance();
    }
    DBSP_ASSIGN_OR_RETURN(e->cast_type, ParseTypeName(tname));
    DBSP_RETURN_NOT_OK(ExpectSymbol(")"));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseStatement(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseSingleStatement();
}

Result<std::vector<StatementPtr>> ParseScript(const std::string& sql) {
  DBSP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseScriptTop();
}

Result<ParseExprPtr> ParseExpression(const std::string& text) {
  DBSP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseSingleExpression();
}

bool IsReservedKeyword(const std::string& word) {
  return ReservedWords().count(ToUpper(word)) > 0;
}

}  // namespace dbspinner
